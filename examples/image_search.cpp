// Content-based image retrieval with relevance feedback — the MARS use
// case that motivates the hybrid tree's arbitrary-distance-function
// support (paper §1, §3.5 and [13, 21]).
//
// A distance-based index (SS-tree, M-tree) bakes one metric into its
// structure; reweighting the metric between feedback iterations would
// invalidate the index. The hybrid tree is feature-based: the same index
// answers every iteration, each with a different weighted metric.
//
//   $ ./image_search

#include <cmath>
#include <cstdio>

#include "core/hybrid_tree.h"
#include "data/generators.h"
#include "data/workload.h"

using namespace ht;

namespace {

/// Standard deviation re-weighting (a simplified MindReader/MARS update):
/// dimensions on which the relevant examples agree get high weight.
std::vector<double> FeedbackWeights(const Dataset& data,
                                    const std::vector<uint64_t>& relevant) {
  const uint32_t dim = data.dim();
  std::vector<double> mean(dim, 0.0), var(dim, 0.0), weights(dim, 1.0);
  if (relevant.size() < 2) return weights;
  for (uint64_t id : relevant) {
    auto row = data.Row(id);
    for (uint32_t d = 0; d < dim; ++d) mean[d] += row[d];
  }
  for (auto& m : mean) m /= static_cast<double>(relevant.size());
  for (uint64_t id : relevant) {
    auto row = data.Row(id);
    for (uint32_t d = 0; d < dim; ++d) {
      const double diff = row[d] - mean[d];
      var[d] += diff * diff;
    }
  }
  for (uint32_t d = 0; d < dim; ++d) {
    weights[d] = 1.0 / (1e-4 + var[d] / static_cast<double>(relevant.size()));
  }
  // Normalize so weights average to 1 (keeps distances comparable).
  double sum = 0.0;
  for (double w : weights) sum += w;
  for (auto& w : weights) w *= dim / sum;
  return weights;
}

}  // namespace

int main() {
  // "Image collection": 30,000 synthetic 32-bin color histograms.
  const uint32_t kBins = 32;
  Rng rng(7);
  Dataset histograms = GenColhist(30000, kBins, rng);
  histograms.NormalizeUnitCube();

  MemPagedFile file(kDefaultPageSize);
  HybridTreeOptions options;
  options.dim = kBins;
  options.els_bits = 8;
  auto tree = HybridTree::Create(options, &file).ValueOrDie();
  for (size_t i = 0; i < histograms.size(); ++i) {
    HT_CHECK_OK(tree->Insert(histograms.Row(i), i));
  }
  std::printf("indexed %zu image histograms (%u bins)\n", histograms.size(),
              kBins);

  // The user queries with image #123 ("find me images like this one").
  const uint64_t query_image = 123;
  auto query = histograms.Row(query_image);

  // Iteration 0: plain L1 (histogram intersection analogue, as in [18]).
  L1Metric l1;
  auto page0 = tree->SearchKnn(query, 10, l1).ValueOrDie();
  std::printf("\niteration 0 (L1): top-10 ids:");
  for (const auto& [dist, id] : page0) {
    std::printf(" %llu", static_cast<unsigned long long>(id));
  }
  std::printf("\n");

  // The user marks a few of the results as relevant; the system reweights
  // the metric and re-queries THE SAME INDEX — no rebuild.
  std::vector<uint64_t> relevant;
  for (size_t i = 0; i < page0.size(); i += 2) relevant.push_back(page0[i].second);
  for (int iteration = 1; iteration <= 3; ++iteration) {
    WeightedL2Metric weighted(FeedbackWeights(histograms, relevant));
    tree->pool().ResetStats();
    auto page = tree->SearchKnn(query, 10, weighted).ValueOrDie();
    std::printf("iteration %d (weighted L2): top-10 ids:", iteration);
    for (const auto& [dist, id] : page) {
      std::printf(" %llu", static_cast<unsigned long long>(id));
    }
    std::printf("  [%llu page reads]\n",
                static_cast<unsigned long long>(
                    tree->pool().stats().logical_reads));
    // Feedback loop: keep every other result as "relevant".
    relevant.clear();
    for (size_t i = 0; i < page.size(); i += 2) relevant.push_back(page[i].second);
  }

  // Final iteration: a full quadratic-form (ellipsoid) metric — the
  // MindReader-style update where correlated bins get off-diagonal weight.
  std::vector<double> w(static_cast<size_t>(kBins) * kBins, 0.0);
  const auto diag = FeedbackWeights(histograms, relevant);
  for (uint32_t i = 0; i < kBins; ++i) w[i * kBins + i] = diag[i];
  // Neighboring bins in the 8x4 color grid are correlated (color spill).
  for (uint32_t i = 0; i + 1 < kBins; ++i) {
    const double c = 0.15 * std::sqrt(diag[i] * diag[i + 1]);
    w[i * kBins + i + 1] = w[(i + 1) * kBins + i] = c;
  }
  QuadraticFormMetric ellipsoid(kBins, w);
  auto final_page = tree->SearchKnn(query, 10, ellipsoid).ValueOrDie();
  std::printf("final iteration (quadratic form): top-10 ids:");
  for (const auto& [dist, id] : final_page) {
    std::printf(" %llu", static_cast<unsigned long long>(id));
  }
  std::printf("\n");

  std::printf(
      "\nEvery iteration used a different distance function on one index —\n"
      "the capability that distance-based structures (SS-tree, M-tree)\n"
      "cannot offer (paper §3.5).\n");
  return 0;
}
