// Persistence: build a hybrid tree on disk, flush it, reopen it in a
// fresh process state, and keep querying/updating — the tree is a regular
// disk-based index (paper §3.5: "completely dynamic ... like other disk
// based index structures (e.g., B-tree, R-tree)").
//
//   $ ./persistence_demo [path]

#include <cstdio>

#include "core/hybrid_tree.h"
#include "data/generators.h"
#include "data/workload.h"

using namespace ht;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/hybrid_tree_demo.htf";
  const uint32_t kDim = 16;
  Rng rng(23);
  Dataset data = GenClustered(20000, kDim, 8, 0.06, rng);

  // --- Phase 1: create, load, flush, close. -------------------------------
  {
    auto file = DiskPagedFile::Create(path, kDefaultPageSize).ValueOrDie();
    HybridTreeOptions options;
    options.dim = kDim;
    // In-page ELS codes persist with the tree (kInMemory would be rebuilt
    // on open — also fine, just one extra DFS).
    options.els_mode = ElsMode::kInPage;
    options.els_bits = 4;
    auto tree = HybridTree::Create(options, file.get()).ValueOrDie();
    for (size_t i = 0; i < data.size(); ++i) {
      HT_CHECK_OK(tree->Insert(data.Row(i), i));
    }
    HT_CHECK_OK(tree->Flush());
    std::printf("phase 1: built and flushed %llu entries to %s (%u pages)\n",
                static_cast<unsigned long long>(tree->size()), path.c_str(),
                file->page_count());
  }

  // --- Phase 2: reopen and use. --------------------------------------------
  {
    auto file = DiskPagedFile::Open(path).ValueOrDie();
    auto tree = HybridTree::Open(file.get()).ValueOrDie();
    std::printf("phase 2: reopened; size=%llu height=%u dim=%u\n",
                static_cast<unsigned long long>(tree->size()), tree->height(),
                tree->options().dim);
    HT_CHECK_OK(tree->CheckInvariants());

    Box query = MakeBoxQuery(data.Row(17), 0.2);
    auto hits = tree->SearchBox(query).ValueOrDie();
    std::printf("window query after reopen: %zu hits\n", hits.size());

    // The reopened tree stays fully dynamic.
    Rng rng2(29);
    Dataset more = GenClustered(1000, kDim, 8, 0.06, rng2);
    for (size_t i = 0; i < more.size(); ++i) {
      HT_CHECK_OK(tree->Insert(more.Row(i), 1000000 + i));
    }
    for (size_t i = 0; i < 500; ++i) {
      HT_CHECK_OK(tree->Delete(data.Row(i), i));
    }
    HT_CHECK_OK(tree->CheckInvariants());
    HT_CHECK_OK(tree->Flush());
    std::printf("phase 2: +1000 inserts, -500 deletes; size=%llu\n",
                static_cast<unsigned long long>(tree->size()));
  }

  // --- Phase 3: reopen again and verify the updates stuck. -----------------
  {
    auto file = DiskPagedFile::Open(path).ValueOrDie();
    auto tree = HybridTree::Open(file.get()).ValueOrDie();
    std::printf("phase 3: size=%llu after second reopen (expect 20500)\n",
                static_cast<unsigned long long>(tree->size()));
    HT_CHECK_OK(tree->CheckInvariants());
    L2Metric l2;
    auto nn = tree->SearchKnn(data.Row(1000), 3, l2).ValueOrDie();
    std::printf("3-NN of object 1000: ");
    for (const auto& [dist, id] : nn) {
      std::printf("%llu(%.3f) ", static_cast<unsigned long long>(id), dist);
    }
    std::printf("\n");
  }
  std::remove(path.c_str());
  return 0;
}
