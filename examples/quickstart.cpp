// Quickstart: build a hybrid tree over a small feature dataset, then run
// the three query types the structure supports — window (box) queries,
// distance-range queries, and k-nearest-neighbor queries — under different
// distance metrics.
//
//   $ ./quickstart

#include <cstdio>

#include "core/hybrid_tree.h"
#include "data/generators.h"
#include "data/workload.h"

using namespace ht;

int main() {
  // 1. An in-memory paged file + a tree over 8-d feature vectors.
  //    (Use DiskPagedFile for a persistent index; see persistence_demo.)
  MemPagedFile file(kDefaultPageSize);
  HybridTreeOptions options;
  options.dim = 8;
  auto tree_or = HybridTree::Create(options, &file);
  HT_CHECK_OK(tree_or.status());
  auto tree = std::move(tree_or).ValueOrDie();

  // 2. Insert 10,000 synthetic feature vectors (ids = row indices).
  //    Coordinates must lie in the normalized feature space [0,1]^dim.
  Rng rng(42);
  Dataset data = GenClustered(10000, options.dim, /*clusters=*/6,
                              /*sigma=*/0.08, rng);
  for (size_t i = 0; i < data.size(); ++i) {
    HT_CHECK_OK(tree->Insert(data.Row(i), i));
  }
  std::printf("indexed %llu vectors, tree height %u\n",
              static_cast<unsigned long long>(tree->size()), tree->height());

  // 3. Window query: all objects inside a box.
  const Box window = MakeBoxQuery(data.Row(0), /*side=*/0.15);
  auto box_hits = tree->SearchBox(window).ValueOrDie();
  std::printf("window query around object 0: %zu hits\n", box_hits.size());

  // 4. Distance-range query: all objects within L1 distance 0.4.
  L1Metric l1;
  auto range_hits = tree->SearchRange(data.Row(0), 0.4, l1).ValueOrDie();
  std::printf("L1 range query (r=0.4): %zu hits\n", range_hits.size());

  // 5. k-NN query. The metric is chosen per query — the same index serves
  //    L1, L2, weighted metrics, or your own DistanceMetric subclass.
  L2Metric l2;
  auto nn = tree->SearchKnn(data.Row(0), 5, l2).ValueOrDie();
  std::printf("5 nearest neighbors of object 0 (L2):\n");
  for (const auto& [dist, id] : nn) {
    std::printf("  id=%llu distance=%.4f\n",
                static_cast<unsigned long long>(id), dist);
  }

  // 6. Deletion keeps the structure balanced (eliminate-and-reinsert).
  HT_CHECK_OK(tree->Delete(data.Row(0), 0));
  std::printf("deleted object 0; size now %llu\n",
              static_cast<unsigned long long>(tree->size()));

  // 7. Access accounting: how many page reads did the last query cost?
  tree->pool().ResetStats();
  (void)tree->SearchKnn(data.Row(1), 5, l2).ValueOrDie();
  std::printf("that 5-NN query touched %llu pages\n",
              static_cast<unsigned long long>(
                  tree->pool().stats().logical_reads));
  return 0;
}
