// Shape similarity search over Fourier descriptors — the FOURIER workload
// of the paper's evaluation (§4, dataset 1). Polygons are described by the
// leading DFT coefficients of their boundary; similar shapes have nearby
// descriptors, so shape retrieval is k-NN in descriptor space.
//
//   $ ./shape_search

#include <cstdio>

#include "core/hybrid_tree.h"
#include "data/generators.h"
#include "data/workload.h"

using namespace ht;

int main() {
  // 50,000 polygon boundary descriptors, 16-d (8 complex coefficients).
  const uint32_t kDim = 16;
  Rng rng(11);
  Dataset shapes = GenFourier(50000, kDim, rng);

  MemPagedFile file(kDefaultPageSize);
  HybridTreeOptions options;
  options.dim = kDim;
  options.els_bits = 8;
  auto tree = HybridTree::Create(options, &file).ValueOrDie();
  for (size_t i = 0; i < shapes.size(); ++i) {
    HT_CHECK_OK(tree->Insert(shapes.Row(i), i));
  }
  auto stats = tree->ComputeStats().ValueOrDie();
  std::printf("indexed %zu shape descriptors\n%s\n", shapes.size(),
              stats.ToString().c_str());

  // Find the 8 most similar shapes to three probes, comparing the index's
  // work against a full scan.
  L2Metric l2;
  for (uint64_t probe : {100ull, 2000ull, 31337ull}) {
    tree->pool().ResetStats();
    auto nn = tree->SearchKnn(shapes.Row(probe), 8, l2).ValueOrDie();
    const uint64_t pages = tree->pool().stats().logical_reads;
    std::printf("\nshapes similar to #%llu (8-NN, L2): ",
                static_cast<unsigned long long>(probe));
    for (const auto& [dist, id] : nn) {
      std::printf("%llu(%.3f) ", static_cast<unsigned long long>(id), dist);
    }
    const uint64_t scan_pages =
        (shapes.size() + DataNode::Capacity(kDim, kDefaultPageSize) - 1) /
        DataNode::Capacity(kDim, kDefaultPageSize);
    std::printf("\n  %llu page reads vs %llu for a linear scan (%.1f%%)\n",
                static_cast<unsigned long long>(pages),
                static_cast<unsigned long long>(scan_pages),
                100.0 * static_cast<double>(pages) /
                    static_cast<double>(scan_pages));
  }

  // Dimensionality trade-off: the paper truncates the descriptors to 8-d
  // and 12-d prefixes. Fewer coefficients = coarser shape matching but a
  // cheaper index; the implicit-dimensionality-reduction property (§3.3,
  // Lemma 1) means the hybrid tree already focuses its splits on the
  // informative leading coefficients.
  Dataset truncated = shapes.Prefix(8);
  MemPagedFile file8(kDefaultPageSize);
  HybridTreeOptions options8 = options;
  options8.dim = 8;
  auto tree8 = HybridTree::Create(options8, &file8).ValueOrDie();
  for (size_t i = 0; i < truncated.size(); ++i) {
    HT_CHECK_OK(tree8->Insert(truncated.Row(i), i));
  }
  tree8->pool().ResetStats();
  (void)tree8->SearchKnn(truncated.Row(100), 8, l2).ValueOrDie();
  std::printf("\n8-d prefix index: the same 8-NN probe costs %llu reads\n",
              static_cast<unsigned long long>(
                  tree8->pool().stats().logical_reads));
  return 0;
}
