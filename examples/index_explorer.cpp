// Index explorer: builds hybrid trees over each surrogate dataset, prints
// their per-level structure, and breaks down what a query actually costs —
// a guided tour of the data structure for new users.
//
//   $ ./index_explorer [n]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/bulk_load.h"
#include "core/hybrid_tree.h"
#include "data/generators.h"
#include "data/workload.h"

using namespace ht;

namespace {

void Explore(const char* name, Dataset data, double selectivity) {
  std::printf("\n=== %s: %zu vectors, %u-d ===\n", name, data.size(),
              data.dim());
  MemPagedFile file(kDefaultPageSize);
  HybridTreeOptions options;
  options.dim = data.dim();
  options.els_bits = 8;
  auto tree = BulkLoad(options, &file, data).ValueOrDie();

  TreeStats stats = tree->ComputeStats().ValueOrDie();
  std::printf("%s\n", stats.ToString().c_str());

  Rng rng(99);
  const double side = CalibrateBoxSide(data, selectivity, 20, rng);
  auto centers = MakeQueryCenters(data, 50, rng);
  uint64_t accesses = 0, results = 0;
  for (const auto& c : centers) {
    Box q = MakeBoxQuery(c, side);
    tree->pool().ResetStats();
    results += tree->SearchBox(q).ValueOrDie().size();
    accesses += tree->pool().stats().logical_reads;
  }
  const double per_query =
      static_cast<double>(accesses) / static_cast<double>(centers.size());
  const double scan_pages = std::ceil(
      static_cast<double>(data.size()) /
      static_cast<double>(DataNode::Capacity(data.dim(), kDefaultPageSize)));
  std::printf(
      "window queries (side %.3f, %.2f%% selectivity): %.1f results, "
      "%.1f pages/query — %.1f%% of the %g-page scan "
      "(normalized I/O %.4f vs scan 0.1)\n",
      side, 100.0 * selectivity,
      static_cast<double>(results) / static_cast<double>(centers.size()),
      per_query, 100.0 * per_query / scan_pages, scan_pages,
      per_query / scan_pages);

  // Distance query under two different metrics on the same index.
  L1Metric l1;
  L2Metric l2;
  for (const DistanceMetric* m :
       std::initializer_list<const DistanceMetric*>{&l1, &l2}) {
    tree->pool().ResetStats();
    auto nn = tree->SearchKnn(centers[0], 5, *m).ValueOrDie();
    std::printf("5-NN under %s: nearest distance %.4f, %llu pages\n",
                m->Name().c_str(), nn.empty() ? 0.0 : nn[0].first,
                static_cast<unsigned long long>(
                    tree->pool().stats().logical_reads));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  {
    Rng rng(1);
    Explore("FOURIER surrogate (shape descriptors)", GenFourier(n, 16, rng),
            0.0007);
  }
  {
    Rng rng(2);
    Dataset d = GenColhist(n, 64, rng);
    d.NormalizeUnitCube();
    Explore("COLHIST surrogate (color histograms)", std::move(d), 0.002);
  }
  {
    Rng rng(3);
    Explore("clustered synthetic", GenClustered(n, 8, 6, 0.05, rng), 0.002);
  }
  return 0;
}
