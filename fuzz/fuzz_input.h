// Copyright 2026 The HybridTree Authors.
// Minimal byte-stream consumer for the fuzz harnesses: structure-aware
// targets peel typed values off the front of the raw input. Exhausted
// streams return zeros, so every input prefix is a valid program.

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace ht::fuzz {

class Input {
 public:
  Input(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool empty() const { return off_ >= size_; }
  size_t remaining() const { return size_ - off_; }

  uint8_t U8() {
    if (off_ >= size_) return 0;
    return data_[off_++];
  }

  uint16_t U16() { return static_cast<uint16_t>(U8() | (U8() << 8)); }

  uint32_t U32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(U8()) << (8 * i);
    return v;
  }

  /// A value in [lo, hi] (inclusive); lo when the range is degenerate.
  uint32_t InRange(uint32_t lo, uint32_t hi) {
    if (hi <= lo) return lo;
    return lo + U32() % (hi - lo + 1);
  }

  /// A float in [0, 1] — always finite, the normalized feature space.
  float Unit() {
    return static_cast<float>(U16()) / 65535.0f;
  }

  /// The rest of the stream as a raw span.
  const uint8_t* rest() const { return data_ + off_; }
  size_t rest_size() const { return size_ - off_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t off_ = 0;
};

}  // namespace ht::fuzz
