// Copyright 2026 The HybridTree Authors.
// Fuzz target: the binary page codec (common/codec.h) and the ELS bit
// packer / coder (core/els.h).
//
// Input layout: [dim u8][bits u8][payload...]. The payload drives three
// independent exercises:
//   1. Reader over the raw payload — arbitrary interleaved typed reads
//      must bound-check, never crash, and report torn input via status().
//   2. els_detail::PutBits/GetBits — packed writes at fuzz-chosen bit
//      offsets/widths must read back exactly (the integer-promotion
//      hotspot from the UBSan hunt).
//   3. ElsCodec — Encode/Decode round-trips on fuzz-built boxes must obey
//      the conservativeness contract (decoded ⊇ live∩ref), as must
//      Reencode under a region change and ExtendToInclude for any point.

#include <cstdint>
#include <vector>

#include "common/codec.h"
#include "common/macros.h"
#include "core/els.h"
#include "fuzz_input.h"
#include "geometry/box.h"

namespace ht {
namespace {

/// A non-degenerate box inside the unit cube (lo <= hi per dimension).
Box UnitBox(fuzz::Input& in, uint32_t dim) {
  std::vector<float> lo(dim), hi(dim);
  for (uint32_t d = 0; d < dim; ++d) {
    float a = in.Unit(), b = in.Unit();
    lo[d] = a < b ? a : b;
    hi[d] = a < b ? b : a;
  }
  return Box::FromBounds(std::move(lo), std::move(hi));
}

void FuzzReader(const uint8_t* data, size_t size) {
  Reader r(data, size);
  // A fixed instruction wheel of typed reads, driven until exhaustion;
  // the Reader must clamp every access and latch a Corruption status.
  for (int i = 0; r.ok() && i < 64; ++i) {
    switch (i % 7) {
      case 0: (void)r.GetU8(); break;
      case 1: (void)r.GetU16(); break;
      case 2: (void)r.GetU32(); break;
      case 3: (void)r.GetU64(); break;
      case 4: (void)r.GetF32(); break;
      case 5: (void)r.GetF64(); break;
      default: {
        uint8_t sink[3];
        r.GetBytes(sink, sizeof(sink));
        break;
      }
    }
  }
  (void)r.status();
}

void FuzzBitPacker(fuzz::Input& in) {
  // Up to 16 packed (offset, width, value) writes, then exact reads.
  // PutBits writes into a pre-sized buffer (Encode allocates CodeBytes()
  // up front), so size for the worst case: start offset + 16 * 16 bits.
  struct Put {
    size_t off;
    uint32_t nbits;
    uint32_t value;
  };
  std::vector<Put> puts;
  const int n = static_cast<int>(in.InRange(1, 16));
  size_t off = in.InRange(0, 64);
  std::vector<uint8_t> buf((off + 16 * 16 + 7) / 8 + 4, 0);
  for (int i = 0; i < n; ++i) {
    const uint32_t nbits = in.InRange(1, 16);
    const uint32_t value = in.U32() & ((1u << nbits) - 1);
    els_detail::PutBits(buf, off, value, nbits);
    puts.push_back({off, nbits, value});
    off += nbits;
  }
  for (const Put& p : puts) {
    HT_CHECK(els_detail::GetBits(buf, p.off, p.nbits) == p.value);
  }
}

void FuzzElsCodec(fuzz::Input& in, uint32_t dim, uint32_t bits) {
  ElsCodec codec(dim, bits);
  const Box ref = UnitBox(in, dim);
  const Box live = UnitBox(in, dim);

  const ElsCode code = codec.Encode(live, ref);
  HT_CHECK(code.size() == codec.CodeBytes());
  const Box dec = codec.Decode(code, ref);
  // Conservativeness: decoding never loses live space inside the region.
  const Box clipped = live.Intersection(ref);
  if (!clipped.IsEmpty()) {
    HT_CHECK(dec.ContainsBox(clipped));
  }

  // Region migration must stay conservative w.r.t. the old decoded box.
  const Box new_ref = UnitBox(in, dim);
  const ElsCode moved = codec.Reencode(code, ref, new_ref);
  const Box moved_dec = codec.Decode(moved, new_ref);
  const Box dec_in_new = dec.Intersection(new_ref);
  if (!dec_in_new.IsEmpty()) {
    HT_CHECK(moved_dec.ContainsBox(dec_in_new));
  }

  // Growing a code to cover a point must actually cover it (when the
  // point is inside the reference region at all).
  std::vector<float> p(dim);
  for (uint32_t d = 0; d < dim; ++d) p[d] = in.Unit();
  const ElsCode grown = codec.ExtendToInclude(code, ref, p);
  if (ref.ContainsPoint(p)) {
    HT_CHECK(codec.Decode(grown, ref).ContainsPoint(p));
  }

  // The full code covers the whole region.
  HT_CHECK(codec.Decode(codec.FullCode(), ref).ContainsBox(ref));
}

}  // namespace
}  // namespace ht

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  ht::fuzz::Input in(data, size);
  const uint32_t dim = in.InRange(1, 16);
  const uint32_t bits = in.InRange(1, 16);
  ht::FuzzReader(in.rest(), in.rest_size());
  ht::FuzzBitPacker(in);
  ht::FuzzElsCodec(in, dim, bits);
  return 0;
}
