// Copyright 2026 The HybridTree Authors.
// Driver for toolchains without libFuzzer (gcc): replays corpus files
// passed as arguments through LLVMFuzzerTestOneInput, and with no
// arguments sweeps a deterministic pseudo-random input set so the target
// still exercises its code paths (build-bot smoke without clang).
//
// Under clang the real libFuzzer runtime replaces this file entirely
// (-fsanitize=fuzzer provides main).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

std::vector<uint8_t> ReadFile(const char* path) {
  std::vector<uint8_t> buf;
  FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  uint8_t chunk[4096];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    buf.insert(buf.end(), chunk, chunk + n);
  }
  std::fclose(f);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      std::vector<uint8_t> data = ReadFile(argv[i]);
      LLVMFuzzerTestOneInput(data.data(), data.size());
      std::printf("ok %s (%zu bytes)\n", argv[i], data.size());
    }
    return 0;
  }
  // Deterministic sweep: xorshift-filled inputs of growing size. Not a
  // coverage-guided search — just enough churn to smoke the target.
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::vector<uint8_t> data;
  for (int round = 0; round < 2000; ++round) {
    const size_t size = 1 + (round * 7) % 1024;
    data.resize(size);
    for (size_t i = 0; i < size; ++i) {
      data[i] = static_cast<uint8_t>(next() >> ((i % 8) * 8));
    }
    LLVMFuzzerTestOneInput(data.data(), data.size());
  }
  std::printf("ok: 2000 deterministic inputs\n");
  return 0;
}
