// Copyright 2026 The HybridTree Authors.
// Fuzz target: node deserialization from arbitrary page images.
//
// Input layout: [dim u8][els u8][page image...]. A torn, truncated, or
// attacker-shaped page must produce a Corruption status (or a scan with
// ok() == false) — never a crash, hang, or out-of-bounds access. Pages
// that DO parse are exercised further: every entry/child is visited and
// the node is re-serialized and re-parsed, which must agree with the
// first parse (the codec is deterministic both ways).

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/macros.h"
#include "core/node.h"
#include "fuzz_input.h"

namespace ht {
namespace {

void FuzzDataNode(const uint8_t* page, size_t size, uint32_t dim) {
  auto parsed = DataNode::Deserialize(page, size, dim);
  if (!parsed.ok()) return;
  DataNode& node = *parsed;
  for (const auto& e : node.entries) {
    HT_CHECK(e.vec.size() == dim);
  }
  (void)node.ComputeLiveBr(dim);
  // Round-trip: what came off a page must fit a page of the same size.
  const size_t need =
      DataNode::kHeaderBytes + node.entries.size() * DataNode::EntryBytes(dim);
  HT_CHECK(need <= size);
  std::vector<uint8_t> out(size, 0);
  node.Serialize(out.data(), out.size(), dim);
  auto again = DataNode::Deserialize(out.data(), out.size(), dim);
  HT_CHECK(again.ok());
  HT_CHECK(again->entries.size() == node.entries.size());
}

void FuzzDataPageScan(const uint8_t* page, size_t size, uint32_t dim) {
  DataPageScan scan(page, size, dim);
  if (!scan.ok()) return;
  // The zero-copy scan and the materializing parse must agree.
  auto parsed = DataNode::Deserialize(page, size, dim);
  HT_CHECK(parsed.ok());
  HT_CHECK(scan.count() == parsed->entries.size());
  for (size_t i = 0; i < scan.count(); ++i) {
    HT_CHECK(scan.id(i) == parsed->entries[i].id);
    auto v = scan.vec(i);
    HT_CHECK(v.size() == dim);
    HT_CHECK(std::memcmp(v.data(), parsed->entries[i].vec.data(),
                         dim * sizeof(float)) == 0);
  }
}

void FuzzIndexNode(const uint8_t* page, size_t size, bool els_in_page,
                   size_t code_bytes, uint32_t dim) {
  auto parsed =
      IndexNode::Deserialize(page, size, els_in_page, code_bytes, dim);
  if (!parsed.ok()) return;
  IndexNode& node = *parsed;
  HT_CHECK(node.NumChildren() >= 1);
  HT_CHECK(node.NumKdNodes() >= 1);

  // Every child is reachable exactly once via CollectChildren; Deserialize
  // bounded every split_dim by `dim`, so the box accesses are in range.
  std::vector<ChildRef> kids;
  node.CollectChildren(Box::UnitCube(dim), &kids);
  HT_CHECK(kids.size() == node.NumChildren());

  const size_t need = node.SerializedSize(els_in_page);
  if (need <= size) {
    std::vector<uint8_t> out(size, 0);
    node.Serialize(out.data(), out.size(), els_in_page, code_bytes);
    auto again = IndexNode::Deserialize(out.data(), out.size(), els_in_page,
                                        code_bytes, dim);
    HT_CHECK(again.ok());
    HT_CHECK(again->NumChildren() == node.NumChildren());
    HT_CHECK(again->NumKdNodes() == node.NumKdNodes());
    HT_CHECK(again->level == node.level);
  }

  // Sidecar plumbing: extracting and re-attaching the ELS blob preserves
  // the leaf codes byte for byte.
  if (code_bytes > 0) {
    const std::vector<uint8_t> blob = node.ExtractElsBlob(code_bytes);
    HT_CHECK(blob.size() == node.NumChildren() * code_bytes);
    IndexNode copy;
    copy.level = node.level;
    copy.root = node.root->Clone();
    copy.AttachElsBlob(blob, code_bytes);
    HT_CHECK(copy.ExtractElsBlob(code_bytes) == blob);
  }
}

}  // namespace
}  // namespace ht

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  ht::fuzz::Input in(data, size);
  const uint32_t dim = in.InRange(1, 64);
  const uint8_t els = in.U8();
  const bool els_in_page = (els & 1) != 0;
  // 0, or the code bytes for bits 1..8 at this dim.
  const size_t code_bytes =
      els_in_page ? (2 * dim * (1 + (els >> 1) % 8) + 7) / 8 : 0;
  const uint8_t* page = in.rest();
  const size_t page_size = in.rest_size();
  ht::FuzzDataNode(page, page_size, dim);
  ht::FuzzDataPageScan(page, page_size, dim);
  ht::FuzzIndexNode(page, page_size, els_in_page, code_bytes, dim);
  return 0;
}
