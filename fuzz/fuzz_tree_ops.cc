// Copyright 2026 The HybridTree Authors.
// Fuzz target: a tree-operation interpreter. The input is a little
// program — a config prefix followed by opcodes — replayed against a
// HybridTree AND a SeqScan baseline over the same in-memory file
// abstraction. Every query's result is cross-checked between the two;
// the deep validator runs at checkpoints; a final flush/reopen round
// trips the whole state through the page images.
//
// This is the structure-aware half of the fuzz suite: instead of feeding
// random bytes to a parser, it feeds random *workloads* to the live data
// structure, hunting for divergence between the hybrid tree's pruned
// search paths and ground truth.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/seqscan.h"
#include "common/macros.h"
#include "core/hybrid_tree.h"
#include "fuzz_input.h"
#include "geometry/metrics.h"

namespace ht {
namespace {

constexpr size_t kMaxOps = 300;
constexpr size_t kMaxLive = 600;

void RunProgram(fuzz::Input& in) {
  HybridTreeOptions o;
  o.dim = in.InRange(2, 8);
  o.page_size = 512;
  o.els_mode = static_cast<ElsMode>(in.InRange(0, 2));
  o.els_bits = o.els_mode == ElsMode::kOff ? 0 : in.InRange(1, 8);

  MemPagedFile tree_file(o.page_size);
  MemPagedFile scan_file(o.page_size);
  auto tree_r = HybridTree::Create(o, &tree_file);
  auto scan_r = SeqScan::Create(o.dim, &scan_file);
  HT_CHECK(tree_r.ok() && scan_r.ok());
  std::unique_ptr<HybridTree> tree = std::move(tree_r).ValueOrDie();
  std::unique_ptr<SeqScan> scan = std::move(scan_r).ValueOrDie();
  tree->pool().SetPinTracking(true);

  // The oracle's view of what is stored: (id -> vector).
  std::vector<std::pair<uint64_t, std::vector<float>>> live;
  uint64_t next_id = 0;
  const L2Metric l2;

  auto point = [&]() {
    std::vector<float> p(o.dim);
    for (auto& x : p) x = in.Unit();
    return p;
  };
  auto check_sorted_eq = [](std::vector<uint64_t> a, std::vector<uint64_t> b) {
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    HT_CHECK(a == b);
  };

  for (size_t op_count = 0; op_count < kMaxOps && !in.empty(); ++op_count) {
    const uint8_t op = in.U8();
    switch (op % 6) {
      case 0:
      case 1: {  // insert (weighted 2x: programs should grow trees)
        if (live.size() >= kMaxLive) break;
        std::vector<float> p = point();
        HT_CHECK_OK(tree->Insert(p, next_id));
        HT_CHECK_OK(scan->Insert(p, next_id));
        live.emplace_back(next_id, std::move(p));
        ++next_id;
        break;
      }
      case 2: {  // delete a live entry
        if (live.empty()) break;
        const size_t i = in.InRange(0, static_cast<uint32_t>(live.size() - 1));
        HT_CHECK_OK(tree->Delete(live[i].second, live[i].first));
        HT_CHECK_OK(scan->Delete(live[i].second, live[i].first));
        live[i] = std::move(live.back());
        live.pop_back();
        break;
      }
      case 3: {  // box query
        std::vector<float> lo = point(), hi = lo;
        const float side = in.Unit();
        for (uint32_t d = 0; d < o.dim; ++d) hi[d] += side;
        const Box q = Box::FromBounds(std::move(lo), std::move(hi));
        auto a = tree->SearchBox(q);
        auto b = scan->SearchBox(q);
        HT_CHECK(a.ok() && b.ok());
        check_sorted_eq(std::move(a).ValueOrDie(), std::move(b).ValueOrDie());
        break;
      }
      case 4: {  // range query
        const std::vector<float> c = point();
        const double radius = 0.05 + in.Unit();
        auto a = tree->SearchRange(c, radius, l2);
        auto b = scan->SearchRange(c, radius, l2);
        HT_CHECK(a.ok() && b.ok());
        check_sorted_eq(std::move(a).ValueOrDie(), std::move(b).ValueOrDie());
        break;
      }
      default: {  // k-NN: distances must match ground truth exactly
        if (live.empty()) break;
        const std::vector<float> c = point();
        const size_t k = in.InRange(1, 8);
        auto a = tree->SearchKnn(c, k, l2);
        auto b = scan->SearchKnn(c, k, l2);
        HT_CHECK(a.ok() && b.ok());
        HT_CHECK(a->size() == b->size());
        for (size_t i = 0; i < a->size(); ++i) {
          // Batch kernels may sum in a different order than the scalar
          // metric; distances agree to accumulation noise.
          HT_CHECK(std::abs((*a)[i].first - (*b)[i].first) <= 1e-9);
        }
        break;
      }
    }
    if (op_count % 64 == 63) {
      HT_CHECK_OK(tree->CheckInvariants());
    }
  }

  HT_CHECK(tree->size() == live.size());
  HT_CHECK_OK(tree->CheckInvariants());

  // Durability: everything must survive a flush + cold reopen.
  HT_CHECK_OK(tree->Flush());
  tree.reset();
  auto reopened = HybridTree::Open(&tree_file);
  HT_CHECK(reopened.ok());
  tree = std::move(reopened).ValueOrDie();
  HT_CHECK(tree->size() == live.size());
  HT_CHECK_OK(tree->CheckInvariants());
  auto all = tree->SearchBox(Box::UnitCube(o.dim));
  HT_CHECK(all.ok());
  std::vector<uint64_t> want;
  want.reserve(live.size());
  for (const auto& [id, v] : live) want.push_back(id);
  std::sort(want.begin(), want.end());
  std::vector<uint64_t> got = std::move(all).ValueOrDie();
  std::sort(got.begin(), got.end());
  HT_CHECK(got == want);
}

}  // namespace
}  // namespace ht

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  ht::fuzz::Input in(data, size);
  ht::RunProgram(in);
  return 0;
}
