// Copyright 2026 The HybridTree Authors.
// Annotated synchronization primitives: the only place in the library that
// touches raw std::mutex / std::shared_mutex / std::condition_variable
// (the lint CI job greps for strays). Three things layer here:
//
//   1. Clang Thread Safety capabilities (common/thread_annotations.h):
//      ht::Mutex / ht::SharedMutex are CAPABILITY types, the guards are
//      SCOPED_CAPABILITY, so `HT_GUARDED_BY(mu_)` fields and
//      `HT_REQUIRES(mu_)` functions are checked at compile time by the CI
//      thread-safety job.
//   2. The runtime lock-rank checker (common/lock_rank.h): a ranked mutex
//      reports acquisitions/releases to the per-thread rank stack, which
//      aborts on out-of-order acquisition when checking is enabled.
//      Unranked mutexes (default) never call into the checker.
//   3. Conditional locking: BufferPool, QuantStore, and the tree's parsed
//      node cache skip their locks entirely in single-threaded mode. The
//      guards take an (mu, enabled) constructor that is a no-op when
//      `enabled` is false but still CLAIMS the capability to the static
//      analysis. That over-approximation is sound by the library's
//      protocol: disabled means "single-threaded by contract", and the
//      discipline being checked is that the code is WRITTEN as if the
//      lock were held — so the same annotated code paths serve both
//      modes, and flipping a mode can never invalidate the analysis.
//
// In release builds without lock-rank checking, every wrapper compiles to
// the bare std operation (annotations are attributes, the rank hook is
// skipped for unranked locks and is one relaxed load when disabled), so
// results and performance are unchanged.

#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/lock_rank.h"
#include "common/macros.h"
#include "common/thread_annotations.h"

namespace ht {

class CondVar;

/// Annotated exclusive mutex. Construct with a LockRank (and a name for
/// rank-violation reports) when the lock participates in a nesting chain;
/// default-constructed mutexes are invisible to the rank checker.
class HT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}
  HT_DISALLOW_COPY_AND_ASSIGN(Mutex);

  void Lock() HT_ACQUIRE() {
    // Rank check BEFORE the blocking lock: an inversion aborts with both
    // stacks instead of deadlocking.
    if (rank_ != LockRank::kUnranked) {
      lock_rank::OnAcquire(this, rank_, name_);
    }
    mu_.lock();
  }

  bool TryLock() HT_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    if (rank_ != LockRank::kUnranked) {
      lock_rank::OnTryAcquire(this, rank_, name_);
    }
    return true;
  }

  void Unlock() HT_RELEASE() {
    if (rank_ != LockRank::kUnranked) {
      lock_rank::OnRelease(this, rank_, name_);
    }
    mu_.unlock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
  LockRank rank_ = LockRank::kUnranked;
  const char* name_ = "";
};

/// Annotated shared (reader-writer) mutex. Shared and exclusive
/// acquisitions participate in the rank discipline identically.
class HT_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}
  HT_DISALLOW_COPY_AND_ASSIGN(SharedMutex);

  void Lock() HT_ACQUIRE() {
    if (rank_ != LockRank::kUnranked) {
      lock_rank::OnAcquire(this, rank_, name_);
    }
    mu_.lock();
  }
  void Unlock() HT_RELEASE() {
    if (rank_ != LockRank::kUnranked) {
      lock_rank::OnRelease(this, rank_, name_);
    }
    mu_.unlock();
  }
  void LockShared() HT_ACQUIRE_SHARED() {
    if (rank_ != LockRank::kUnranked) {
      lock_rank::OnAcquire(this, rank_, name_);
    }
    mu_.lock_shared();
  }
  void UnlockShared() HT_RELEASE_SHARED() {
    if (rank_ != LockRank::kUnranked) {
      lock_rank::OnRelease(this, rank_, name_);
    }
    mu_.unlock_shared();
  }

 private:
  std::shared_mutex mu_;
  LockRank rank_ = LockRank::kUnranked;
  const char* name_ = "";
};

/// Scoped exclusive lock on a Mutex. Relockable (Unlock()/Lock() members)
/// to express drop-and-reacquire dances, and conditional via the
/// (mu, enabled) constructor — see the file comment for why a disabled
/// guard still claims the capability statically.
class HT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) HT_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
    held_ = true;
  }
  MutexLock(Mutex* mu, bool enabled) HT_ACQUIRE(mu)
      : mu_(mu), enabled_(enabled) {
    if (enabled_) mu_->Lock();
    held_ = true;  // logically held either way (single-threaded contract)
  }
  ~MutexLock() HT_RELEASE() {
    if (held_ && enabled_) mu_->Unlock();
  }
  HT_DISALLOW_COPY_AND_ASSIGN(MutexLock);

  /// Drop the lock mid-scope (no-op on a disabled guard).
  void Unlock() HT_RELEASE() {
    HT_DCHECK(held_);
    if (enabled_) mu_->Unlock();
    held_ = false;
  }
  /// Reacquire after Unlock().
  void Lock() HT_ACQUIRE() {
    HT_DCHECK(!held_);
    if (enabled_) mu_->Lock();
    held_ = true;
  }

 private:
  friend class CondVar;
  Mutex* mu_;
  bool enabled_ = true;  // false: conditional guard in single-thread mode
  bool held_ = false;    // logically held (tracks Unlock()/Lock())
};

/// Scoped shared lock on a SharedMutex (conditional like MutexLock).
class HT_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) HT_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ReaderLock(SharedMutex* mu, bool enabled) HT_ACQUIRE_SHARED(mu)
      : mu_(mu), enabled_(enabled) {
    if (enabled_) mu_->LockShared();
  }
  ~ReaderLock() HT_RELEASE() {
    if (enabled_) mu_->UnlockShared();
  }
  HT_DISALLOW_COPY_AND_ASSIGN(ReaderLock);

 private:
  SharedMutex* mu_;
  bool enabled_ = true;
};

/// Scoped exclusive lock on a SharedMutex (conditional like MutexLock).
class HT_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) HT_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  WriterLock(SharedMutex* mu, bool enabled) HT_ACQUIRE(mu)
      : mu_(mu), enabled_(enabled) {
    if (enabled_) mu_->Lock();
  }
  ~WriterLock() HT_RELEASE() {
    if (enabled_) mu_->Unlock();
  }
  HT_DISALLOW_COPY_AND_ASSIGN(WriterLock);

 private:
  SharedMutex* mu_;
  bool enabled_ = true;
};

/// Condition variable working with ht::Mutex through a live MutexLock.
/// The guard must be an ENABLED, held guard (condition waits are
/// meaningless without a real lock; all library call sites wait only in
/// concurrent mode). During the blocked window the mutex's rank is popped
/// from the thread's rank stack and re-recorded on wake-up, so a wait
/// neither poisons the stack nor trips the order check when the OS hands
/// the mutex back in arbitrary order.
class CondVar {
 public:
  CondVar() = default;
  HT_DISALLOW_COPY_AND_ASSIGN(CondVar);

  /// Atomically releases `lock`, blocks, reacquires. Spurious wake-ups
  /// possible; callers loop on their predicate.
  void Wait(MutexLock& lock) {
    Mutex* mu = PrepareWait(lock);
    std::unique_lock<std::mutex> ul(mu->mu_, std::adopt_lock);
    cv_.wait(ul);
    ul.release();
    FinishWait(mu);
  }

  /// Wait with a deadline; std::cv_status::timeout when it passed.
  template <class Clock, class Duration>
  std::cv_status WaitUntil(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    Mutex* mu = PrepareWait(lock);
    std::unique_lock<std::mutex> ul(mu->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(ul, deadline);
    ul.release();
    FinishWait(mu);
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  static Mutex* PrepareWait(MutexLock& lock) {
    HT_DCHECK(lock.enabled_ && lock.held_);
    Mutex* mu = lock.mu_;
    if (mu->rank_ != LockRank::kUnranked) {
      lock_rank::OnRelease(mu, mu->rank_, mu->name_);
    }
    return mu;
  }
  static void FinishWait(Mutex* mu) {
    if (mu->rank_ != LockRank::kUnranked) {
      lock_rank::OnCvReacquire(mu, mu->rank_, mu->name_);
    }
  }

  std::condition_variable cv_;
};

/// Annotation-only capability ("role" in the Clang docs): a zero-size
/// token for protocols enforced by CONVENTION rather than a runtime lock
/// — here, the tree's shared-read / exclusive-write contract. Public
/// entry points acquire the role internally (so callers and tests are
/// untouched), private helpers carry HT_REQUIRES / HT_REQUIRES_SHARED on
/// it, and the whole thing compiles to nothing: the acquire/release
/// members have empty bodies and exist only for their attributes.
class HT_CAPABILITY("role") Role {
 public:
  Role() = default;
  HT_DISALLOW_COPY_AND_ASSIGN(Role);

  void Acquire() const HT_ACQUIRE() {}
  void AcquireShared() const HT_ACQUIRE_SHARED() {}
  void Release() const HT_RELEASE() {}
  void ReleaseShared() const HT_RELEASE_SHARED() {}
};

/// Scoped shared hold of a Role (read side of a protocol).
class HT_SCOPED_CAPABILITY SharedRole {
 public:
  explicit SharedRole(const Role* role) HT_ACQUIRE_SHARED(role)
      : role_(role) {
    role_->AcquireShared();
  }
  ~SharedRole() HT_RELEASE() { role_->ReleaseShared(); }
  HT_DISALLOW_COPY_AND_ASSIGN(SharedRole);

 private:
  const Role* role_;
};

/// Scoped exclusive hold of a Role (write side of a protocol).
class HT_SCOPED_CAPABILITY ExclusiveRole {
 public:
  explicit ExclusiveRole(const Role* role) HT_ACQUIRE(role) : role_(role) {
    role_->Acquire();
  }
  ~ExclusiveRole() HT_RELEASE() { role_->Release(); }
  HT_DISALLOW_COPY_AND_ASSIGN(ExclusiveRole);

 private:
  const Role* role_;
};

}  // namespace ht
