// Copyright 2026 The HybridTree Authors.
// Little-endian binary encoding/decoding for on-disk page layouts.
//
// All on-disk structures in the library serialize through these helpers so
// that page images are byte-identical across platforms. A Writer appends to
// a fixed-capacity buffer (a page image); a Reader consumes one with bounds
// checking.

#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace ht {

/// Appends fixed-width little-endian values to a caller-owned buffer.
/// Overflow beyond `capacity` is an HT_CHECK failure: callers must size
/// nodes to their page before serializing (see *::SerializedSize()).
class Writer {
 public:
  Writer(uint8_t* buf, size_t capacity) : buf_(buf), cap_(capacity) {}

  void PutU8(uint8_t v) { PutRaw(&v, 1); }
  void PutU16(uint16_t v) { PutLe(v); }
  void PutU32(uint32_t v) { PutLe(v); }
  void PutU64(uint64_t v) { PutLe(v); }
  void PutI16(int16_t v) { PutLe(static_cast<uint16_t>(v)); }
  void PutI32(int32_t v) { PutLe(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutLe(static_cast<uint64_t>(v)); }
  void PutF32(float v) {
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutLe(bits);
  }
  void PutF64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutLe(bits);
  }
  void PutBytes(const void* data, size_t n) { PutRaw(data, n); }

  size_t offset() const { return off_; }
  size_t remaining() const { return cap_ - off_; }

 private:
  template <typename U>
  void PutLe(U v) {
    uint8_t tmp[sizeof(U)];
    for (size_t i = 0; i < sizeof(U); ++i) {
      tmp[i] = static_cast<uint8_t>(v >> (8 * i));
    }
    PutRaw(tmp, sizeof(U));
  }
  void PutRaw(const void* data, size_t n) {
    HT_CHECK(off_ + n <= cap_);
    std::memcpy(buf_ + off_, data, n);
    off_ += n;
  }

  uint8_t* buf_;
  size_t cap_;
  size_t off_ = 0;
};

/// Consumes fixed-width little-endian values from a buffer. Reads past the
/// end are Corruption errors surfaced through ok()/status() — a torn or
/// malformed page must not crash the process.
class Reader {
 public:
  Reader(const uint8_t* buf, size_t size) : buf_(buf), size_(size) {}

  uint8_t GetU8() { return GetLe<uint8_t>(); }
  uint16_t GetU16() { return GetLe<uint16_t>(); }
  uint32_t GetU32() { return GetLe<uint32_t>(); }
  uint64_t GetU64() { return GetLe<uint64_t>(); }
  int16_t GetI16() { return static_cast<int16_t>(GetLe<uint16_t>()); }
  int32_t GetI32() { return static_cast<int32_t>(GetLe<uint32_t>()); }
  int64_t GetI64() { return static_cast<int64_t>(GetLe<uint64_t>()); }
  float GetF32() {
    uint32_t bits = GetLe<uint32_t>();
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  double GetF64() {
    uint64_t bits = GetLe<uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  void GetBytes(void* out, size_t n) {
    if (!CheckAvail(n)) {
      std::memset(out, 0, n);
      return;
    }
    std::memcpy(out, buf_ + off_, n);
    off_ += n;
  }

  bool ok() const { return ok_; }
  Status status() const {
    return ok_ ? Status::OK() : Status::Corruption("short read in page decode");
  }
  size_t offset() const { return off_; }
  size_t remaining() const { return size_ - off_; }

 private:
  template <typename U>
  U GetLe() {
    if (!CheckAvail(sizeof(U))) return U{};
    U v = 0;
    for (size_t i = 0; i < sizeof(U); ++i) {
      v |= static_cast<U>(static_cast<U>(buf_[off_ + i]) << (8 * i));
    }
    off_ += sizeof(U);
    return v;
  }
  bool CheckAvail(size_t n) {
    if (!ok_ || off_ + n > size_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const uint8_t* buf_;
  size_t size_;
  size_t off_ = 0;
  bool ok_ = true;
};

}  // namespace ht
