#include "common/lock_rank.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define HT_LOCK_RANK_HAVE_BACKTRACE 1
#endif
#endif

namespace ht {
namespace lock_rank {

namespace {

// Deep lock nesting would itself be a bug; the deepest legal chain in the
// rank table is 3 (manager -> shard -> file).
constexpr int kMaxHeld = 32;

struct HeldEntry {
  const void* mu;
  uint32_t rank;
  const char* name;
};

// Trivially-destructible TLS so the hooks stay safe during thread
// teardown (no dynamic allocation on the lock path).
thread_local HeldEntry g_held[kMaxHeld];
thread_local int g_held_count = 0;

// Relaxed everywhere: the flag gates a per-thread check with no shared
// payload to publish; SetEnabled's contract (flip only while no ranked
// lock is held) makes a momentarily stale read harmless.
#ifdef HT_DEBUG_LOCK_RANK
std::atomic<bool> g_enabled{true};
#else
std::atomic<bool> g_enabled{false};
#endif

[[noreturn]] void Die(const HeldEntry& conflict, const void* mu,
                      uint32_t rank, const char* name) {
  std::fprintf(stderr,
               "\n*** lock-rank violation ***\n"
               "acquiring:  %s (rank %u, %p)\n"
               "conflicts:  %s (rank %u, %p) already held — a lock may "
               "only be acquired at a rank strictly below every held rank\n"
               "held stack (outermost first):\n",
               name, rank, mu, conflict.name, conflict.rank, conflict.mu);
  for (int i = 0; i < g_held_count; ++i) {
    std::fprintf(stderr, "  [%d] %s (rank %u, %p)\n", i, g_held[i].name,
                 g_held[i].rank, g_held[i].mu);
  }
#ifdef HT_LOCK_RANK_HAVE_BACKTRACE
  void* frames[32];
  const int n = ::backtrace(frames, 32);
  std::fprintf(stderr, "acquisition backtrace:\n");
  ::backtrace_symbols_fd(frames, n, 2);
#endif
  std::fflush(stderr);
  std::abort();
}

void Push(const void* mu, uint32_t rank, const char* name) {
  if (g_held_count < kMaxHeld) {
    g_held[g_held_count++] = HeldEntry{mu, rank, name};
  }
}

}  // namespace

void SetEnabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void OnAcquire(const void* mu, LockRank rank, const char* name) {
  if (!Enabled()) return;
  const uint32_t r = static_cast<uint32_t>(rank);
  for (int i = 0; i < g_held_count; ++i) {
    // Strictly-below-everything-held: equal ranks are rejected too (locks
    // sharing a rank are never held simultaneously by design), which also
    // catches same-lock recursion.
    if (g_held[i].rank <= r) Die(g_held[i], mu, r, name);
  }
  Push(mu, r, name);
}

void OnTryAcquire(const void* mu, LockRank rank, const char* name) {
  if (!Enabled()) return;
  // A try-acquire that succeeded out of order cannot have deadlocked (it
  // would have failed instead), so record the hold without the check.
  Push(mu, static_cast<uint32_t>(rank), name);
}

void OnCvReacquire(const void* mu, LockRank rank, const char* name) {
  if (!Enabled()) return;
  // Condition-variable wake-up: the mutex is reacquired by the OS in
  // whatever order threads wake; the original acquisition already passed
  // the order check, so re-record without repeating it.
  Push(mu, static_cast<uint32_t>(rank), name);
}

void OnRelease(const void* mu, LockRank /*rank*/, const char* /*name*/) {
  if (!Enabled()) return;
  // Out-of-order release is legal; drop the most recent record for `mu`.
  for (int i = g_held_count - 1; i >= 0; --i) {
    if (g_held[i].mu == mu) {
      for (int j = i; j + 1 < g_held_count; ++j) g_held[j] = g_held[j + 1];
      --g_held_count;
      return;
    }
  }
  // Not found: the lock was acquired before checking was enabled. Ignore.
}

std::vector<uint32_t> HeldRanks() {
  std::vector<uint32_t> out;
  out.reserve(static_cast<size_t>(g_held_count));
  for (int i = 0; i < g_held_count; ++i) out.push_back(g_held[i].rank);
  return out;
}

}  // namespace lock_rank
}  // namespace ht
