// Copyright 2026 The HybridTree Authors.
// Deterministic pseudo-random number generation (xoshiro256**).
//
// All dataset/workload generation in the repository routes through Rng so
// that experiments are reproducible from a single seed.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace ht {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm),
/// seeded via splitmix64. Fast, high quality, and deterministic across
/// platforms (unlike std::mt19937 distributions, whose output is not
/// specified identically by all standard libraries).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
  }

  uint64_t NextU64() {
    auto rotl = [](uint64_t v, int k) { return (v << k) | (v >> (64 - k)); };
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n) { return NextU64() % n; }

  /// Standard normal via Box-Muller.
  double NextGaussian() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    double mag = std::sqrt(-2.0 * std::log(u1));
    cached_ = mag * std::sin(2.0 * M_PI * u2);
    have_cached_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
  }

  /// Exponential with rate lambda.
  double NextExponential(double lambda) {
    double u = NextDouble();
    if (u < 1e-300) u = 1e-300;
    return -std::log(u) / lambda;
  }

  /// Gamma(shape, 1) via Marsaglia-Tsang; used for Dirichlet sampling in the
  /// COLHIST generator.
  double NextGamma(double shape) {
    if (shape < 1.0) {
      // Boost to shape+1 then scale back (Marsaglia-Tsang trick).
      double u = NextDouble();
      if (u < 1e-300) u = 1e-300;
      return NextGamma(shape + 1.0) * std::pow(u, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
      double x = NextGaussian();
      double v = 1.0 + c * x;
      if (v <= 0.0) continue;
      v = v * v * v;
      double u = NextDouble();
      if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
      if (u > 1e-300 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
        return d * v;
    }
  }

  /// Zipf-distributed integer in [0, n) with exponent `s` (s > 0). Uses
  /// inverse-CDF over precomputed weights supplied by the caller to stay
  /// allocation-free here; see ZipfSampler below for the cached variant.
  template <typename It>
  size_t SampleDiscrete(It cdf_begin, It cdf_end) {
    const double u = NextDouble();
    auto it = std::lower_bound(cdf_begin, cdf_end, u);
    if (it == cdf_end) --it;
    return static_cast<size_t>(it - cdf_begin);
  }

 private:
  uint64_t s_[4];
  bool have_cached_ = false;
  double cached_ = 0.0;
};

/// Cached-CDF Zipf sampler over [0, n).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double exponent) : cdf_(n) {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  size_t Sample(Rng& rng) const {
    const double u = rng.NextDouble();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end()) --it;
    return static_cast<size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace ht
