// Copyright 2026 The HybridTree Authors.
// Status: lightweight success/error return type (no exceptions).

#pragma once

#include <memory>
#include <string>
#include <utility>

namespace ht {

/// Error taxonomy for the library. Kept deliberately small; the message
/// carries the detail.
enum class StatusCode : unsigned char {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIOError = 3,
  kCorruption = 4,
  kNotSupported = 5,
  kOutOfRange = 6,
  kAlreadyExists = 7,
  kResourceExhausted = 8,
  kInternal = 9,
  kCancelled = 10,
  kDeadlineExceeded = 11,
};

/// Returned by all fallible operations. The OK state is represented by a
/// null internal pointer, so returning Status::OK() costs one pointer move.
///
/// The class itself is [[nodiscard]]: every function returning a Status —
/// across src/common, src/storage, src/core, src/exec, and src/baselines —
/// makes the caller handle (or explicitly void-cast) the result. Combined
/// with HT_WERROR=ON in CI, a silently dropped error is a build break, not
/// a latent index corruption.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_unique<Rep>(Rep{code, std::move(msg)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->msg : kEmpty;
  }

  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }

  /// Human-readable "Code: message" rendering for logs and tests.
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string msg;
  };
  void CopyFrom(const Status& other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
  }
  std::unique_ptr<Rep> rep_;
};

}  // namespace ht
