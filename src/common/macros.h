// Copyright 2026 The HybridTree Authors.
// Error-propagation and checking macros used across the library.
//
// The library does not use C++ exceptions: fallible operations return
// ht::Status or ht::Result<T>, and these macros propagate failures up the
// call stack (Arrow/RocksDB style).
//
// Macro contracts (locked by status_test.cc):
//   * Every macro evaluates its expression argument EXACTLY ONCE — side
//     effects in the argument run once on both the success and the failure
//     path — except HT_DCHECK under NDEBUG, whose condition is compiled but
//     never evaluated (conditions must be side-effect free).
//   * Internal temporaries use __COUNTER__-unique names, so macros nest and
//     repeat within one scope without shadowing, and an argument expression
//     may itself contain a variable named like any internal temporary.
//   * Arguments containing top-level commas (e.g. std::pair<A, B> in
//     HT_ASSIGN_OR_RETURN's lhs) must be parenthesized or aliased by the
//     caller; the preprocessor splits on commas before C++ sees them.

#pragma once

#include <cstdio>
#include <cstdlib>

#define HT_CONCAT_(a, b) a##b
#define HT_CONCAT(a, b) HT_CONCAT_(a, b)

// Propagates a non-ok Status from the current function. `expr` is
// evaluated exactly once.
#define HT_RETURN_NOT_OK(expr) \
  HT_RETURN_NOT_OK_IMPL(HT_CONCAT(_ht_status_, __COUNTER__), expr)

#define HT_RETURN_NOT_OK_IMPL(st, expr)   \
  do {                                    \
    ::ht::Status st = (expr);             \
    if (!st.ok()) return st;              \
  } while (0)

// Evaluates an expression producing Result<T> exactly once; on success
// binds the value to `lhs`, on failure returns the error Status.
#define HT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                             \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).ValueUnsafe();

#define HT_ASSIGN_OR_RETURN(lhs, rexpr) \
  HT_ASSIGN_OR_RETURN_IMPL(HT_CONCAT(_ht_result_, __COUNTER__), lhs, rexpr)

// Internal invariant check. Active in all build types: index corruption
// must never be silently ignored in a storage system.
#define HT_CHECK(cond)                                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "HT_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

// Aborts on a non-ok Status. `expr` is evaluated exactly once.
#define HT_CHECK_OK(expr) \
  HT_CHECK_OK_IMPL(HT_CONCAT(_ht_status_, __COUNTER__), expr)

#define HT_CHECK_OK_IMPL(st, expr)                                         \
  do {                                                                     \
    ::ht::Status st = (expr);                                              \
    if (!st.ok()) {                                                        \
      std::fprintf(stderr, "HT_CHECK_OK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, st.ToString().c_str());                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
// The condition stays visible to the compiler (type errors and unused-
// variable warnings behave identically in both build types) but is never
// evaluated at runtime.
#define HT_DCHECK(cond)        \
  do {                         \
    if (false) { (void)(cond); } \
  } while (0)
#else
#define HT_DCHECK(cond) HT_CHECK(cond)
#endif

#define HT_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;         \
  TypeName& operator=(const TypeName&) = delete
