// Copyright 2026 The HybridTree Authors.
// Error-propagation and checking macros used across the library.
//
// The library does not use C++ exceptions: fallible operations return
// ht::Status or ht::Result<T>, and these macros propagate failures up the
// call stack (Arrow/RocksDB style).

#pragma once

#include <cstdio>
#include <cstdlib>

// Propagates a non-ok Status from the current function.
#define HT_RETURN_NOT_OK(expr)                    \
  do {                                            \
    ::ht::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                    \
  } while (0)

// Evaluates an expression producing Result<T>; on success binds the value
// to `lhs`, on failure returns the error Status.
#define HT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                             \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).ValueUnsafe();

#define HT_CONCAT_(a, b) a##b
#define HT_CONCAT(a, b) HT_CONCAT_(a, b)

#define HT_ASSIGN_OR_RETURN(lhs, rexpr) \
  HT_ASSIGN_OR_RETURN_IMPL(HT_CONCAT(_ht_result_, __COUNTER__), lhs, rexpr)

// Internal invariant check. Active in all build types: index corruption
// must never be silently ignored in a storage system.
#define HT_CHECK(cond)                                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "HT_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define HT_CHECK_OK(expr)                                                  \
  do {                                                                     \
    ::ht::Status _st = (expr);                                             \
    if (!_st.ok()) {                                                       \
      std::fprintf(stderr, "HT_CHECK_OK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, _st.ToString().c_str());                      \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define HT_DCHECK(cond) \
  do {                  \
  } while (0)
#else
#define HT_DCHECK(cond) HT_CHECK(cond)
#endif

#define HT_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;         \
  TypeName& operator=(const TypeName&) = delete
