// Copyright 2026 The HybridTree Authors.
// Runtime lock-rank (lock-ordering) checker: the dynamic complement to the
// static Clang Thread Safety annotations in thread_annotations.h.
//
// Every ht::Mutex / ht::SharedMutex (common/sync.h) may carry a LockRank.
// The checker keeps a per-thread stack of held ranks and enforces the
// global order below: a thread may acquire a ranked lock only if its rank
// is STRICTLY LOWER than the rank of every ranked lock it already holds
// (outer locks have higher ranks). Acquiring out of order — the necessary
// condition for lock-cycle deadlocks — aborts immediately with both the
// held-lock stack and the offending acquisition, even on interleavings
// where no deadlock actually manifests (that is the point: TSAN only sees
// cycles it happens to schedule; the rank checker turns a latent inversion
// into a deterministic failure on first occurrence).
//
// ---------------------------------------------------------------------------
// Global lock-order table (one rank per locking domain; acquire top-down).
// Locks on the same rank are never held simultaneously — the checker
// rejects same-rank nesting too. See DESIGN.md §12 for the narrative.
//
//   rank  capability                      holder
//   1200  kCacheManager                   CacheManager::mu_
//   1100  kServerTenantMap                Server::tenants_mu_
//   1000  kAdmissionTenantMap             AdmissionController::tenants_mu_
//    900  kAdmissionTenant                AdmissionController::TenantState::mu
//    800  kServerTenantStats              Server::TenantState::latency_mu / io_mu
//    700  kThreadPool                     ThreadPool::mu_
//    600  kServeScatter                   ShardedIndex scratch_mu_ / Shard::io_mu,
//                                         scatter Latch::mu_, SharedTopK::mu_
//    500  kTreeNodeCache                  HybridTree::node_cache_mu_
//    400  kQuantStore                     QuantStore::mu_
//    300  kPoolPrefetch                   BufferPool::prefetch_mu_
//    200  kPoolShard                      BufferPool::Shard::mu (16 striped)
//    100  kPoolFile                       BufferPool::file_mu_
//     50  kPoolPinTable                   BufferPool::pin_mu_
//
// The load-bearing nestings this order admits:
//   * CacheManager::Rebalance holds kCacheManager while retargeting pools:
//     1200 -> 200 (shard eviction) -> 100 (write-back file lock).
//   * BufferPool::Fetch/Flush hold a shard lock across file I/O
//     (200 -> 100) and pin-tracking (200 -> 50).
//   * Server::Snapshot / ResetMetrics hold tenants_mu_ (shared) while
//     draining per-tenant metric locks (1100 -> 800).
//   * prefetch_mu_ (300) is documented as "before a shard lock, never
//     after one" in buffer_pool.h; ranking it above kPoolShard makes the
//     documented order machine-checked.
// Everything else is acquire-release-before-next (no nesting), so any new
// nesting some future change introduces gets checked against this table.
// ---------------------------------------------------------------------------
//
// Cost model: checking is OFF by default. The ht::Mutex fast path for a
// RANKED mutex is one call into OnAcquire/OnRelease, which returns after a
// relaxed atomic load when checking is disabled; unranked mutexes (the
// default constructor) skip the call entirely, so code outside the core
// locking domains pays nothing. Building with -DHT_DEBUG_LOCK_RANK=ON
// (wired into the TSAN CI job) enables checking at startup; tests can also
// flip it at runtime via SetEnabled. Behavior with checking enabled is
// abort-or-nothing: the checker never blocks, reorders, or otherwise
// perturbs execution, so release results stay byte-identical.

#pragma once

#include <cstdint>
#include <vector>

namespace ht {

/// Global lock ranks (see the table above). Higher = outer = acquired
/// earlier. kUnranked locks are invisible to the checker.
enum class LockRank : uint32_t {
  kUnranked = 0,
  kPoolPinTable = 50,
  kPoolFile = 100,
  kPoolShard = 200,
  kPoolPrefetch = 300,
  kQuantStore = 400,
  kTreeNodeCache = 500,
  kServeScatter = 600,
  kThreadPool = 700,
  kServerTenantStats = 800,
  kAdmissionTenant = 900,
  kAdmissionTenantMap = 1000,
  kServerTenantMap = 1100,
  kCacheManager = 1200,
};

namespace lock_rank {

/// Turns checking on or off process-wide. Defaults to on when the binary
/// was compiled with HT_DEBUG_LOCK_RANK, off otherwise. Thread-safe, but
/// flip it only while no ranked lock is held (entries recorded while
/// enabled are forgotten if a release happens while disabled).
void SetEnabled(bool on);
bool Enabled();

/// Hooks called by ht::Mutex / ht::SharedMutex for ranked locks. OnAcquire
/// must run BEFORE the underlying lock() so an inversion aborts instead of
/// deadlocking. OnTryAcquire records the hold without the order check (a
/// failed-order try_lock cannot contribute to a deadlock cycle — it would
/// simply fail). OnCvReacquire re-records a hold released around a
/// condition-variable wait, also without the order check (the wake-up
/// reacquisition order is the OS's choice, not the code's).
void OnAcquire(const void* mu, LockRank rank, const char* name);
void OnTryAcquire(const void* mu, LockRank rank, const char* name);
void OnCvReacquire(const void* mu, LockRank rank, const char* name);
void OnRelease(const void* mu, LockRank rank, const char* name);

/// Ranks currently held by the calling thread, outermost first (test
/// introspection; empty when checking is disabled).
std::vector<uint32_t> HeldRanks();

}  // namespace lock_rank
}  // namespace ht
