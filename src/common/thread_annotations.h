// Copyright 2026 The HybridTree Authors.
// Clang Thread Safety Analysis annotation macros (no-ops elsewhere).
//
// These wrap Clang's capability attributes so the lock discipline that
// DESIGN.md §12 states in prose is machine-checked at compile time: which
// mutex guards which field (HT_GUARDED_BY), which functions must be called
// with a lock held (HT_REQUIRES / HT_REQUIRES_SHARED), and which functions
// acquire or release capabilities (HT_ACQUIRE / HT_RELEASE). The CI
// `thread-safety` job builds with clang and -Werror=thread-safety
// -Wthread-safety-beta, so a violation is a build break, not a review
// comment. Under gcc (the default local toolchain) every macro expands to
// nothing and the annotated code is byte-identical to unannotated code.
//
// Naming follows the attribute names in the Clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed HT_
// like every other macro in this codebase.
//
// Policy for HT_NO_THREAD_SAFETY_ANALYSIS: target zero uses. Any escape
// must carry a comment explaining why the analysis cannot see the
// invariant and what enforces it instead (see DESIGN.md §12).

#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define HT_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef HT_THREAD_ANNOTATION
#define HT_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a class as a capability (something that can be held, e.g. a
/// mutex). The string names the capability kind in diagnostics.
#define HT_CAPABILITY(x) HT_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose lifetime acquires/releases a capability.
#define HT_SCOPED_CAPABILITY HT_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define HT_GUARDED_BY(x) HT_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose POINTEE may only be accessed while holding `x`.
#define HT_PT_GUARDED_BY(x) HT_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares lock-order edges between capabilities (documentation to the
/// analysis; runtime enforcement is the lock-rank checker).
#define HT_ACQUIRED_BEFORE(...) HT_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define HT_ACQUIRED_AFTER(...) HT_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Caller must hold the capability exclusively (resp. at least shared).
#define HT_REQUIRES(...) \
  HT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define HT_REQUIRES_SHARED(...) \
  HT_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (held on return, not on entry).
#define HT_ACQUIRE(...) HT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define HT_ACQUIRE_SHARED(...) \
  HT_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, not on return).
#define HT_RELEASE(...) HT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define HT_RELEASE_SHARED(...) \
  HT_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define HT_RELEASE_GENERIC(...) \
  HT_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define HT_TRY_ACQUIRE(...) \
  HT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define HT_TRY_ACQUIRE_SHARED(...) \
  HT_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (non-reentrancy / deadlock guard).
#define HT_EXCLUDES(...) HT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (tells the analysis so).
#define HT_ASSERT_CAPABILITY(x) HT_THREAD_ANNOTATION(assert_capability(x))
#define HT_ASSERT_SHARED_CAPABILITY(x) \
  HT_THREAD_ANNOTATION(assert_shared_capability(x))

/// Function returns a reference to the named capability.
#define HT_RETURN_CAPABILITY(x) HT_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: function body is not analyzed. Target: zero uses; any
/// use must carry a justification comment (DESIGN.md §12).
#define HT_NO_THREAD_SAFETY_ANALYSIS \
  HT_THREAD_ANNOTATION(no_thread_safety_analysis)
