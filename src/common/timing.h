// Copyright 2026 The HybridTree Authors.
// Wall-clock and CPU timers for the evaluation harness.

#pragma once

#include <chrono>
#include <ctime>

namespace ht {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }
  void Restart() { start_ = std::chrono::steady_clock::now(); }
  /// Elapsed seconds since construction or last Restart().
  double Seconds() const {
    auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double>(d).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Process CPU-time stopwatch; this is the quantity the paper's
/// "CPU time" / "normalized CPU cost" plots use.
class CpuTimer {
 public:
  CpuTimer() { Restart(); }
  void Restart() { start_ = Now(); }
  double Seconds() const { return Now() - start_; }

 private:
  static double Now() {
    timespec ts;
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
  }
  double start_;
};

}  // namespace ht
