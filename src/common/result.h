// Copyright 2026 The HybridTree Authors.
// Result<T>: value-or-Status return type (no exceptions).

#pragma once

#include <utility>
#include <variant>

#include "common/macros.h"
#include "common/status.h"

namespace ht {

/// Holds either a value of type T or an error Status. Construction from a
/// non-OK Status yields the error state; construction from T yields the
/// value state. Constructing from an OK Status is a programming error.
///
/// [[nodiscard]] for the same reason as Status: ignoring a Result loses
/// both the value and the error (see status.h).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : var_(std::move(value)) {}  // NOLINT implicit
  Result(Status status) : var_(std::move(status)) {  // NOLINT implicit
    HT_CHECK(!std::get<Status>(var_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(var_);
  }

  const T& ValueOrDie() const& {
    HT_CHECK(ok());
    return std::get<T>(var_);
  }
  T& ValueOrDie() & {
    HT_CHECK(ok());
    return std::get<T>(var_);
  }
  T ValueOrDie() && {
    HT_CHECK(ok());
    return std::move(std::get<T>(var_));
  }

  /// Extracts the value without checking; used by HT_ASSIGN_OR_RETURN
  /// after the ok() check has been performed.
  T ValueUnsafe() && { return std::move(std::get<T>(var_)); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> var_;
};

}  // namespace ht
