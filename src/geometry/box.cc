#include "geometry/box.h"

#include <cstdio>

namespace ht {

std::string Box::ToString() const {
  std::string s = "[";
  char buf[64];
  for (uint32_t d = 0; d < dim(); ++d) {
    std::snprintf(buf, sizeof(buf), "%s(%.4g,%.4g)", d ? " " : "", lo_[d],
                  hi_[d]);
    s += buf;
  }
  s += "]";
  return s;
}

}  // namespace ht
