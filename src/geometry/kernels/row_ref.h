// Copyright 2026 The HybridTree Authors.
// Per-row scalar reference loops shared by every dispatch tier (internal).
//
// The scalar tier applies these to whole pages; the SIMD tiers apply them
// to the tail rows left over after the vector-width row groups. Cross-tier
// bit-identity rests on this being the ONLY scalar formulation: the vector
// lanes replay exactly this accumulation order and checkpoint schedule.
// These are the loops the pre-dispatch metrics.h batch kernels inlined;
// they must not be "improved" independently of the SIMD tiers.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "geometry/kernels/kernels.h"
#include "geometry/quantize.h"

namespace ht::kernels::detail {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// Final-bound slack factor for the code-filter kernels.
inline constexpr double kOneMinusSlack = 1.0 - quant::kLbSlack;

inline double RowL1(const float* q, size_t dim, const float* row,
                    double bound) {
  double s = 0.0;
  size_t d = 0;
  while (d < dim) {
    const size_t end = std::min(dim, d + kAbandonBlock);
    for (; d < end; ++d) {
      s += std::fabs(static_cast<double>(q[d]) - row[d]);
    }
    if (s > bound) break;
  }
  return d == dim ? s : kInf;
}

/// `b2` is AbandonSquare(bound), applied once by the caller.
inline double RowL2(const float* q, size_t dim, const float* row, double b2) {
  double s = 0.0;
  size_t d = 0;
  while (d < dim) {
    const size_t end = std::min(dim, d + kAbandonBlock);
    for (; d < end; ++d) {
      const double diff = static_cast<double>(q[d]) - row[d];
      s += diff * diff;
    }
    if (s > b2) break;
  }
  return d == dim ? std::sqrt(s) : kInf;
}

inline double RowLInf(const float* q, size_t dim, const float* row,
                      double bound) {
  double m = 0.0;
  size_t d = 0;
  while (d < dim) {
    const size_t end = std::min(dim, d + kAbandonBlock);
    for (; d < end; ++d) {
      const double diff = std::fabs(static_cast<double>(q[d]) - row[d]);
      if (diff > m) m = diff;
    }
    if (m > bound) break;
  }
  return d == dim ? m : kInf;
}

/// `b2` is AbandonSquare(bound). Accumulation is w[d] * diff * diff with
/// the scalar's left association: (w * diff) * diff.
inline double RowWL2(const float* q, const double* w, size_t dim,
                     const float* row, double b2) {
  double s = 0.0;
  size_t d = 0;
  while (d < dim) {
    const size_t end = std::min(dim, d + kAbandonBlock);
    for (; d < end; ++d) {
      const double diff = static_cast<double>(q[d]) - row[d];
      s += w[d] * diff * diff;
    }
    if (s > b2) break;
  }
  return d == dim ? std::sqrt(s) : kInf;
}

// --- Transposed-layout reference rows (see kernels.h kTBlock) --------------
//
// Identical accumulation to the Row* loops above; only the addressing
// differs — element d of lane `lane` in block base `tb` is
// tb[d * kTBlock + lane], a verbatim copy of that row's row[d].

inline double RowTL1(const float* q, size_t dim, const float* tb, size_t lane,
                     double bound) {
  double s = 0.0;
  size_t d = 0;
  while (d < dim) {
    const size_t end = std::min(dim, d + kAbandonBlock);
    for (; d < end; ++d) {
      s += std::fabs(static_cast<double>(q[d]) - tb[d * kTBlock + lane]);
    }
    if (s > bound) break;
  }
  return d == dim ? s : kInf;
}

inline double RowTL2(const float* q, size_t dim, const float* tb, size_t lane,
                     double b2) {
  double s = 0.0;
  size_t d = 0;
  while (d < dim) {
    const size_t end = std::min(dim, d + kAbandonBlock);
    for (; d < end; ++d) {
      const double diff =
          static_cast<double>(q[d]) - tb[d * kTBlock + lane];
      s += diff * diff;
    }
    if (s > b2) break;
  }
  return d == dim ? std::sqrt(s) : kInf;
}

inline double RowTLInf(const float* q, size_t dim, const float* tb,
                       size_t lane, double bound) {
  double m = 0.0;
  size_t d = 0;
  while (d < dim) {
    const size_t end = std::min(dim, d + kAbandonBlock);
    for (; d < end; ++d) {
      const double diff =
          std::fabs(static_cast<double>(q[d]) - tb[d * kTBlock + lane]);
      if (diff > m) m = diff;
    }
    if (m > bound) break;
  }
  return d == dim ? m : kInf;
}

inline double RowTWL2(const float* q, const double* w, size_t dim,
                      const float* tb, size_t lane, double b2) {
  double s = 0.0;
  size_t d = 0;
  while (d < dim) {
    const size_t end = std::min(dim, d + kAbandonBlock);
    for (; d < end; ++d) {
      const double diff =
          static_cast<double>(q[d]) - tb[d * kTBlock + lane];
      s += w[d] * diff * diff;
    }
    if (s > b2) break;
  }
  return d == dim ? std::sqrt(s) : kInf;
}

// --- Code-filter reference rows (soundness only; see quantize.h) -----------

/// Per-dimension gap between the query and the padded cell of code c.
inline float CodeGap(float above, float below, float scale, uint8_t c) {
  const float cw = scale * static_cast<float>(c);
  float g = cw - above;
  const float g2 = below - cw;
  if (g2 > g) g = g2;
  if (g < 0.0f) g = 0.0f;
  return g;
}

inline double RowCodeL1(const float* above, const float* below,
                        const float* scale, size_t stride,
                        const uint8_t* row) {
  double s = 0.0;
  for (size_t d = 0; d < stride; ++d) {
    s += static_cast<double>(CodeGap(above[d], below[d], scale[d], row[d]));
  }
  return s * kOneMinusSlack;
}

inline double RowCodeL2(const float* above, const float* below,
                        const float* scale, size_t stride,
                        const uint8_t* row) {
  double s = 0.0;
  for (size_t d = 0; d < stride; ++d) {
    const float g = CodeGap(above[d], below[d], scale[d], row[d]);
    s += static_cast<double>(g) * g;
  }
  return std::sqrt(s) * kOneMinusSlack;
}

inline double RowCodeLInf(const float* above, const float* below,
                          const float* scale, size_t stride,
                          const uint8_t* row) {
  float m = 0.0f;
  for (size_t d = 0; d < stride; ++d) {
    const float g = CodeGap(above[d], below[d], scale[d], row[d]);
    if (g > m) m = g;
  }
  return static_cast<double>(m) * kOneMinusSlack;
}

inline double RowCodeWL2(const float* above, const float* below,
                         const float* scale, const float* wf, size_t stride,
                         const uint8_t* row) {
  double s = 0.0;
  for (size_t d = 0; d < stride; ++d) {
    const float g = CodeGap(above[d], below[d], scale[d], row[d]);
    s += static_cast<double>(wf[d]) * g * g;
  }
  return std::sqrt(s) * kOneMinusSlack;
}

// --- Transposed-code reference rows ----------------------------------------
//
// Same per-dimension gap math and accumulation order as the RowCode* loops,
// addressing the transposed mirror (tc[d * kTBlock + lane]) and iterating
// only the real dims — the row-major loops' padding lanes contribute
// exactly 0.0, so the sums are bitwise equal.

// The Raw* variants return the accumulator BEFORE the final slack multiply
// (and before the sqrt for the squared metrics) — the value the fused mask
// kernels (ctm_*) compare against quant::FilterThreshold(bound).

inline double RowCodeTRawL1(const float* above, const float* below,
                            const float* scale, size_t dim,
                            const uint8_t* tcb, size_t lane) {
  double s = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    s += static_cast<double>(
        CodeGap(above[d], below[d], scale[d], tcb[d * kTBlock + lane]));
  }
  return s;
}

inline double RowCodeTRawL2(const float* above, const float* below,
                            const float* scale, size_t dim,
                            const uint8_t* tcb, size_t lane) {
  double s = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    const float g =
        CodeGap(above[d], below[d], scale[d], tcb[d * kTBlock + lane]);
    s += static_cast<double>(g) * g;
  }
  return s;
}

inline double RowCodeTRawLInf(const float* above, const float* below,
                              const float* scale, size_t dim,
                              const uint8_t* tcb, size_t lane) {
  float m = 0.0f;
  for (size_t d = 0; d < dim; ++d) {
    const float g =
        CodeGap(above[d], below[d], scale[d], tcb[d * kTBlock + lane]);
    if (g > m) m = g;
  }
  return static_cast<double>(m);
}

inline double RowCodeTRawWL2(const float* above, const float* below,
                             const float* scale, const float* wf, size_t dim,
                             const uint8_t* tcb, size_t lane) {
  double s = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    const float g =
        CodeGap(above[d], below[d], scale[d], tcb[d * kTBlock + lane]);
    s += static_cast<double>(wf[d]) * g * g;
  }
  return s;
}

inline double RowCodeTL1(const float* above, const float* below,
                         const float* scale, size_t dim, const uint8_t* tcb,
                         size_t lane) {
  return RowCodeTRawL1(above, below, scale, dim, tcb, lane) * kOneMinusSlack;
}

inline double RowCodeTL2(const float* above, const float* below,
                         const float* scale, size_t dim, const uint8_t* tcb,
                         size_t lane) {
  return std::sqrt(RowCodeTRawL2(above, below, scale, dim, tcb, lane)) *
         kOneMinusSlack;
}

inline double RowCodeTLInf(const float* above, const float* below,
                           const float* scale, size_t dim, const uint8_t* tcb,
                           size_t lane) {
  return RowCodeTRawLInf(above, below, scale, dim, tcb, lane) *
         kOneMinusSlack;
}

inline double RowCodeTWL2(const float* above, const float* below,
                          const float* scale, const float* wf, size_t dim,
                          const uint8_t* tcb, size_t lane) {
  return std::sqrt(RowCodeTRawWL2(above, below, scale, wf, dim, tcb, lane)) *
         kOneMinusSlack;
}

}  // namespace ht::kernels::detail
