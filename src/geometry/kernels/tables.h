// Copyright 2026 The HybridTree Authors.
// Internal: per-tier kernel table accessors, linked by dispatch.cc. The
// SIMD tables exist only when CMake found the compiler flags (the
// HT_KERNELS_* definitions are target-wide on ht_geometry).

#pragma once

#include "geometry/kernels/kernels.h"

namespace ht::kernels {

const KernelTable& ScalarTable();
#ifdef HT_KERNELS_AVX2
const KernelTable& Avx2Table();
#endif
#ifdef HT_KERNELS_AVX512
const KernelTable& Avx512Table();
#endif

}  // namespace ht::kernels
