// Copyright 2026 The HybridTree Authors.
// Scalar kernel tier: the reference implementation every other tier must
// match bit-for-bit (float kernels) or stay below (code kernels). These
// are the loops the metrics' batch overrides contained before dispatch
// existed; GCC/Clang auto-vectorize the inter-checkpoint blocks but may
// not reassociate the sequential double accumulation, which is exactly
// the property the bit-identity contract pins.

#include "geometry/kernels/row_ref.h"
#include "geometry/kernels/tables.h"

namespace ht::kernels {
namespace {

void L1Scalar(const float* q, size_t dim, const float* pts, size_t stride,
              size_t n, double bound, double* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = detail::RowL1(q, dim, pts + i * stride, bound);
  }
}

void L2Scalar(const float* q, size_t dim, const float* pts, size_t stride,
              size_t n, double bound, double* out) {
  const double b2 = AbandonSquare(bound);
  for (size_t i = 0; i < n; ++i) {
    out[i] = detail::RowL2(q, dim, pts + i * stride, b2);
  }
}

void LInfScalar(const float* q, size_t dim, const float* pts, size_t stride,
                size_t n, double bound, double* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = detail::RowLInf(q, dim, pts + i * stride, bound);
  }
}

void WL2Scalar(const float* q, const double* w, size_t dim, const float* pts,
               size_t stride, size_t n, double bound, double* out) {
  const double b2 = AbandonSquare(bound);
  for (size_t i = 0; i < n; ++i) {
    out[i] = detail::RowWL2(q, w, dim, pts + i * stride, b2);
  }
}

void CodeL1Scalar(const float* above, const float* below, const float* scale,
                  size_t stride, const uint8_t* codes, size_t n,
                  double* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = detail::RowCodeL1(above, below, scale, stride, codes + i * stride);
  }
}

void CodeL2Scalar(const float* above, const float* below, const float* scale,
                  size_t stride, const uint8_t* codes, size_t n,
                  double* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = detail::RowCodeL2(above, below, scale, stride, codes + i * stride);
  }
}

void CodeLInfScalar(const float* above, const float* below, const float* scale,
                    size_t stride, const uint8_t* codes, size_t n,
                    double* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] =
        detail::RowCodeLInf(above, below, scale, stride, codes + i * stride);
  }
}

void CodeWL2Scalar(const float* above, const float* below, const float* scale,
                   const float* wf, size_t stride, const uint8_t* codes,
                   size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = detail::RowCodeWL2(above, below, scale, wf, stride,
                                codes + i * stride);
  }
}

void TL1Scalar(const float* q, size_t dim, const float* t, size_t nblocks,
               double bound, double* out) {
  for (size_t b = 0; b < nblocks; ++b) {
    const float* tb = t + b * dim * kTBlock;
    for (size_t lane = 0; lane < kTBlock; ++lane) {
      out[b * kTBlock + lane] = detail::RowTL1(q, dim, tb, lane, bound);
    }
  }
}

void TL2Scalar(const float* q, size_t dim, const float* t, size_t nblocks,
               double bound, double* out) {
  const double b2 = AbandonSquare(bound);
  for (size_t b = 0; b < nblocks; ++b) {
    const float* tb = t + b * dim * kTBlock;
    for (size_t lane = 0; lane < kTBlock; ++lane) {
      out[b * kTBlock + lane] = detail::RowTL2(q, dim, tb, lane, b2);
    }
  }
}

void TLInfScalar(const float* q, size_t dim, const float* t, size_t nblocks,
                 double bound, double* out) {
  for (size_t b = 0; b < nblocks; ++b) {
    const float* tb = t + b * dim * kTBlock;
    for (size_t lane = 0; lane < kTBlock; ++lane) {
      out[b * kTBlock + lane] = detail::RowTLInf(q, dim, tb, lane, bound);
    }
  }
}

void TWL2Scalar(const float* q, const double* w, size_t dim, const float* t,
                size_t nblocks, double bound, double* out) {
  const double b2 = AbandonSquare(bound);
  for (size_t b = 0; b < nblocks; ++b) {
    const float* tb = t + b * dim * kTBlock;
    for (size_t lane = 0; lane < kTBlock; ++lane) {
      out[b * kTBlock + lane] = detail::RowTWL2(q, w, dim, tb, lane, b2);
    }
  }
}

void CTL1Scalar(const float* above, const float* below, const float* scale,
                size_t dim, const uint8_t* tcodes, size_t nblocks,
                double* out) {
  for (size_t b = 0; b < nblocks; ++b) {
    const uint8_t* tcb = tcodes + b * dim * kTBlock;
    for (size_t lane = 0; lane < kTBlock; ++lane) {
      out[b * kTBlock + lane] =
          detail::RowCodeTL1(above, below, scale, dim, tcb, lane);
    }
  }
}

void CTL2Scalar(const float* above, const float* below, const float* scale,
                size_t dim, const uint8_t* tcodes, size_t nblocks,
                double* out) {
  for (size_t b = 0; b < nblocks; ++b) {
    const uint8_t* tcb = tcodes + b * dim * kTBlock;
    for (size_t lane = 0; lane < kTBlock; ++lane) {
      out[b * kTBlock + lane] =
          detail::RowCodeTL2(above, below, scale, dim, tcb, lane);
    }
  }
}

void CTLInfScalar(const float* above, const float* below, const float* scale,
                  size_t dim, const uint8_t* tcodes, size_t nblocks,
                  double* out) {
  for (size_t b = 0; b < nblocks; ++b) {
    const uint8_t* tcb = tcodes + b * dim * kTBlock;
    for (size_t lane = 0; lane < kTBlock; ++lane) {
      out[b * kTBlock + lane] =
          detail::RowCodeTLInf(above, below, scale, dim, tcb, lane);
    }
  }
}

void CTWL2Scalar(const float* above, const float* below, const float* scale,
                 const float* wf, size_t dim, const uint8_t* tcodes,
                 size_t nblocks, double* out) {
  for (size_t b = 0; b < nblocks; ++b) {
    const uint8_t* tcb = tcodes + b * dim * kTBlock;
    for (size_t lane = 0; lane < kTBlock; ++lane) {
      out[b * kTBlock + lane] =
          detail::RowCodeTWL2(above, below, scale, wf, dim, tcb, lane);
    }
  }
}

void CTML1Scalar(const float* above, const float* below, const float* scale,
                 size_t dim, const uint8_t* tcodes, size_t nblocks,
                 double threshold, uint8_t* masks) {
  for (size_t b = 0; b < nblocks; ++b) {
    const uint8_t* tcb = tcodes + b * dim * kTBlock;
    uint8_t m = 0;
    for (size_t lane = 0; lane < kTBlock; ++lane) {
      if (detail::RowCodeTRawL1(above, below, scale, dim, tcb, lane) <=
          threshold) {
        m |= static_cast<uint8_t>(1u << lane);
      }
    }
    masks[b] = m;
  }
}

void CTML2Scalar(const float* above, const float* below, const float* scale,
                 size_t dim, const uint8_t* tcodes, size_t nblocks,
                 double threshold, uint8_t* masks) {
  for (size_t b = 0; b < nblocks; ++b) {
    const uint8_t* tcb = tcodes + b * dim * kTBlock;
    uint8_t m = 0;
    for (size_t lane = 0; lane < kTBlock; ++lane) {
      if (detail::RowCodeTRawL2(above, below, scale, dim, tcb, lane) <=
          threshold) {
        m |= static_cast<uint8_t>(1u << lane);
      }
    }
    masks[b] = m;
  }
}

void CTMLInfScalar(const float* above, const float* below, const float* scale,
                   size_t dim, const uint8_t* tcodes, size_t nblocks,
                   double threshold, uint8_t* masks) {
  for (size_t b = 0; b < nblocks; ++b) {
    const uint8_t* tcb = tcodes + b * dim * kTBlock;
    uint8_t m = 0;
    for (size_t lane = 0; lane < kTBlock; ++lane) {
      if (detail::RowCodeTRawLInf(above, below, scale, dim, tcb, lane) <=
          threshold) {
        m |= static_cast<uint8_t>(1u << lane);
      }
    }
    masks[b] = m;
  }
}

void CTMWL2Scalar(const float* above, const float* below, const float* scale,
                  const float* wf, size_t dim, const uint8_t* tcodes,
                  size_t nblocks, double threshold, uint8_t* masks) {
  for (size_t b = 0; b < nblocks; ++b) {
    const uint8_t* tcb = tcodes + b * dim * kTBlock;
    uint8_t m = 0;
    for (size_t lane = 0; lane < kTBlock; ++lane) {
      if (detail::RowCodeTRawWL2(above, below, scale, wf, dim, tcb, lane) <=
          threshold) {
        m |= static_cast<uint8_t>(1u << lane);
      }
    }
    masks[b] = m;
  }
}

// Box predicates: the reference the SIMD tiers must match boolean-for-
// boolean. Ordered compares mean a NaN bound never satisfies a
// disjointness / escape test, so NaN boxes intersect and contain.
bool BoxIntersectsScalar(const float* alo, const float* ahi, const float* blo,
                         const float* bhi, size_t dim) {
  for (size_t d = 0; d < dim; ++d) {
    if (bhi[d] < alo[d] || blo[d] > ahi[d]) return false;
  }
  return true;
}

bool BoxContainsScalar(const float* alo, const float* ahi, const float* blo,
                       const float* bhi, size_t dim) {
  for (size_t d = 0; d < dim; ++d) {
    if (blo[d] < alo[d] || bhi[d] > ahi[d]) return false;
  }
  return true;
}

}  // namespace

const KernelTable& ScalarTable() {
  static const KernelTable table = {
      SimdTier::kScalar, &L1Scalar,      &L2Scalar,       &LInfScalar,
      &WL2Scalar,        &CodeL1Scalar,  &CodeL2Scalar,   &CodeLInfScalar,
      &CodeWL2Scalar,    &TL1Scalar,     &TL2Scalar,      &TLInfScalar,
      &TWL2Scalar,       &CTL1Scalar,    &CTL2Scalar,     &CTLInfScalar,
      &CTWL2Scalar,      &CTML1Scalar,   &CTML2Scalar,    &CTMLInfScalar,
      &CTMWL2Scalar,     &BoxIntersectsScalar,            &BoxContainsScalar};
  return table;
}

}  // namespace ht::kernels
