// Copyright 2026 The HybridTree Authors.
// Tier selection: CPUID once at startup, HT_SIMD override, ForceTier hook.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/macros.h"
#include "geometry/kernels/tables.h"

namespace ht::kernels {
namespace {

/// ForceTier state: -1 = not forced, otherwise a SimdTier value. Relaxed:
/// the override is set in test setup before kernels run; a racing reader
/// would only dispatch one call at the previous tier, and every tier
/// returns bit-identical results by contract.
std::atomic<int> g_forced_tier{-1};

SimdTier DetectBestTier() {
#if defined(__x86_64__) || defined(__i386__)
#ifdef HT_KERNELS_AVX512
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl")) {
    return SimdTier::kAvx512;
  }
#endif
#ifdef HT_KERNELS_AVX2
  if (__builtin_cpu_supports("avx2")) return SimdTier::kAvx2;
#endif
#endif
  return SimdTier::kScalar;
}

/// Startup selection: best supported tier, clamped-down HT_SIMD override.
SimdTier SelectStartupTier() {
  const SimdTier best = BestSupportedTier();
  const char* env = std::getenv("HT_SIMD");
  if (env == nullptr || env[0] == '\0') return best;
  SimdTier req;
  if (std::strcmp(env, "scalar") == 0) {
    req = SimdTier::kScalar;
  } else if (std::strcmp(env, "avx2") == 0) {
    req = SimdTier::kAvx2;
  } else if (std::strcmp(env, "avx512") == 0) {
    req = SimdTier::kAvx512;
  } else {
    std::fprintf(stderr, "HT_SIMD: unknown tier \"%s\"; using %s\n", env,
                 TierName(best));
    return best;
  }
  if (req > best) {
    std::fprintf(stderr,
                 "HT_SIMD: %s not supported by this CPU/build; using %s\n",
                 env, TierName(best));
    return best;
  }
  return req;
}

}  // namespace

const char* TierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

SimdTier BestSupportedTier() {
  static const SimdTier best = DetectBestTier();
  return best;
}

bool TierSupported(SimdTier tier) { return tier <= BestSupportedTier(); }

const KernelTable& TableForTier(SimdTier tier) {
  HT_CHECK(TierSupported(tier));
#ifdef HT_KERNELS_AVX512
  if (tier == SimdTier::kAvx512) return Avx512Table();
#endif
#ifdef HT_KERNELS_AVX2
  if (tier == SimdTier::kAvx2) return Avx2Table();
#endif
  return ScalarTable();
}

SimdTier ActiveTier() {
  const int forced = g_forced_tier.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<SimdTier>(forced);
  static const SimdTier startup = SelectStartupTier();
  return startup;
}

const KernelTable& Active() { return TableForTier(ActiveTier()); }

void ForceTier(SimdTier tier) {
  HT_CHECK(TierSupported(tier));
  g_forced_tier.store(static_cast<int>(tier), std::memory_order_relaxed);
}

void ClearForcedTier() {
  g_forced_tier.store(-1, std::memory_order_relaxed);
}

}  // namespace ht::kernels
