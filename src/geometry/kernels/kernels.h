// Copyright 2026 The HybridTree Authors.
// Runtime-dispatched SIMD distance kernels for the data-page scan hot path.
//
// Three tiers — scalar (mandatory fallback, the reference), AVX2, and
// AVX-512 (compiled only when the toolchain supports the flags; executed
// only when CPUID reports support) — each providing bounded batch-distance
// kernels for L1/L2/LInf/WeightedL2 over the DataPageScan::block() layout,
// plus u8 code-filter kernels for the quantized page sidecars. The tier is
// selected ONCE at startup: best CPUID-supported tier, overridable with
// HT_SIMD=scalar|avx2|avx512 (unsupported requests clamp down to the best
// supported tier), and pinnable in-process with ForceTier() for tests and
// benches.
//
// Bit-identity contract (the float kernels). Every tier must produce
// outputs bit-identical to the scalar reference for every row within the
// bound. The SIMD tiers achieve this by vectorizing ACROSS ROWS, one row
// per double lane: each lane replays the scalar per-row accumulation
// exactly — same element order, same double-precision sub/mul/add sequence
// (never FMA: the scalar build contracts nothing, so the vector lanes must
// not either; these files are compiled without -mfma and use separate
// mul/add intrinsics), same every-kAbandonBlock checkpoint schedule, and
// abandonment only at checkpoints strictly before the final block (the
// scalar loop's break on the final checkpoint still emits the finished
// value, so a lane may only go dead early). Tails (n % lanes) fall back to
// the shared scalar row routines.
//
// The code-filter kernels have a weaker contract — soundness, not
// bit-stability: out[i] <= true distance, always (see geometry/quantize.h
// for the rounding-error budget). Their horizontal reductions reassociate
// freely across tiers; callers must never emit a code bound as a distance.

#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace ht::kernels {

/// Early-abandon checkpoint interval: partial sums are tested against the
/// bound only every kAbandonBlock dimensions so the accumulation loop stays
/// auto-vectorizable between checkpoints (the KDTREE2 trick). The SIMD
/// tiers replicate the same schedule so abandonment decisions — and hence
/// outputs — are bit-identical to the scalar reference.
inline constexpr size_t kAbandonBlock = 8;

/// Abandon threshold in squared-distance space: the smallest partial sum
/// that *provably* implies sqrt(full_sum) > bound. Monotone non-negative
/// accumulation means full_sum >= partial_sum, and sqrt is correctly
/// rounded, so a few ulps of slack over bound^2 make the implication hold
/// under rounding; without the slack a row with distance == bound could be
/// wrongly abandoned. +infinity (never abandon) for unbounded inputs.
inline double AbandonSquare(double bound) {
  const double b2 = bound * bound;
  return b2 + 8.0 * std::numeric_limits<double>::epsilon() * b2;
}

enum class SimdTier : uint8_t { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

const char* TierName(SimdTier tier);

/// Bounded batch distance over a row-major float block (the signature of
/// DistanceMetric::BatchDistanceWithBound, minus the span). Passing
/// bound = +infinity never abandons, so one kernel also serves the
/// unbounded BatchDistance contract (out[i] exact for every row).
using BatchBoundFn = void (*)(const float* q, size_t dim, const float* pts,
                              size_t stride, size_t n, double bound,
                              double* out);
/// WeightedL2 variant; `w` is the metric's per-dimension weight vector.
using BatchBoundWeightedFn = void (*)(const float* q, const double* w,
                                      size_t dim, const float* pts,
                                      size_t stride, size_t n, double bound,
                                      double* out);

/// Code-filter kernels: sound lower bounds from 8-bit sidecar codes.
/// `above`/`below`/`scale` are quant::FilterScratch prep arrays and the
/// `codes` rows are zero-padded to `stride` = quant::PaddedDim(dim) bytes;
/// kernels may consume all `stride` lanes (padding lanes contribute zero
/// by construction). out[i] <= Distance(q, v_i) always.
using CodeBoundFn = void (*)(const float* above, const float* below,
                             const float* scale, size_t stride,
                             const uint8_t* codes, size_t n, double* out);
using CodeBoundWeightedFn = void (*)(const float* above, const float* below,
                                     const float* scale, const float* wf,
                                     size_t stride, const uint8_t* codes,
                                     size_t n, double* out);

/// Row-block transposed layout: `kTBlock` rows per block, dimension-major
/// within a block, so element d of the block's rows is the contiguous
/// 8-float group t[(b * dim + d) * kTBlock .. +7]. The page sidecar
/// (storage/quant_store.h) builds this mirror so the SIMD tiers replace
/// the 8-scalar-load row gather with one aligned 32-byte load — same
/// values, same per-lane accumulation order, so bit-identity is
/// unaffected. Kernels cover exactly nblocks * kTBlock rows; the caller
/// handles the n % kTBlock tail rows against the original page block.
inline constexpr size_t kTBlock = 8;

using BatchBoundTFn = void (*)(const float* q, size_t dim, const float* t,
                               size_t nblocks, double bound, double* out);
using BatchBoundTWeightedFn = void (*)(const float* q, const double* w,
                                       size_t dim, const float* t,
                                       size_t nblocks, double bound,
                                       double* out);

/// Row-parallel code-filter kernels over the transposed code mirror
/// (tcodes[(b * dim + d) * kTBlock + lane], unpadded dims): one contiguous
/// 8-byte code load per dimension instead of a per-row pass, and the final
/// sqrt is amortized across the block's lanes instead of serializing one
/// row at a time. Each lane replays the row-major scalar reference's
/// accumulation order (float gaps widened to double, summed in dimension
/// order), so — unlike the row-major SIMD code kernels, which reassociate
/// in their horizontal reductions — these outputs are bitwise identical
/// across tiers. Covers nblocks * kTBlock rows; the caller routes the tail
/// rows through the row-major code kernels above.
using CodeBoundTFn = void (*)(const float* above, const float* below,
                              const float* scale, size_t dim,
                              const uint8_t* tcodes, size_t nblocks,
                              double* out);
using CodeBoundTWeightedFn = void (*)(const float* above, const float* below,
                                      const float* scale, const float* wf,
                                      size_t dim, const uint8_t* tcodes,
                                      size_t nblocks, double* out);

/// Fused filter variants of the transposed code kernels: instead of
/// materializing per-row lower bounds, each block's raw accumulators (the
/// pre-slack, pre-sqrt lane values — see quant::FilterThreshold for the
/// threshold transform that makes the comparison equivalent) are compared
/// in-register against `threshold` and ONE SURVIVOR BIT PER ROW is written:
/// bit `lane` of masks[b] covers row b * kTBlock + lane. This removes the
/// vector sqrt, the 8-byte-per-row bound store, and the caller's re-read
/// compare loop from the 99%-pruned fast path. Accumulation replays the
/// same per-lane order as ct_*, and IEEE compares treat -0.0 == +0.0, so
/// masks are bitwise identical across tiers for full blocks. Tail rows
/// (count % kTBlock) are the caller's job, as with ct_*.
using CodeMaskTFn = void (*)(const float* above, const float* below,
                             const float* scale, size_t dim,
                             const uint8_t* tcodes, size_t nblocks,
                             double threshold, uint8_t* masks);
using CodeMaskTWeightedFn = void (*)(const float* above, const float* below,
                                     const float* scale, const float* wf,
                                     size_t dim, const uint8_t* tcodes,
                                     size_t nblocks, double threshold,
                                     uint8_t* masks);

/// Directory-node box predicates over raw per-dimension bound arrays
/// (`a` is the node BR, `b` the probe box; closed intervals, `dim`
/// floats each). box_intersects is Box::Intersects — false iff some
/// dimension proves disjointness (bhi[d] < alo[d] || blo[d] > ahi[d]);
/// box_contains is Box::ContainsBox — false iff some dimension proves
/// b escapes a (blo[d] < alo[d] || bhi[d] > ahi[d]). The SIMD tiers use
/// ordered-quiet compares, so a NaN bound never proves disjointness or
/// escape — exactly the scalar loop's ordered-compare behavior — and
/// results are identical across tiers for every input, NaN included.
using BoxPredFn = bool (*)(const float* alo, const float* ahi,
                           const float* blo, const float* bhi, size_t dim);

struct KernelTable {
  SimdTier tier;
  BatchBoundFn l1;
  BatchBoundFn l2;
  BatchBoundFn linf;
  BatchBoundWeightedFn wl2;
  CodeBoundFn code_l1;
  CodeBoundFn code_l2;
  CodeBoundFn code_linf;
  CodeBoundWeightedFn code_wl2;
  BatchBoundTFn tl1;
  BatchBoundTFn tl2;
  BatchBoundTFn tlinf;
  BatchBoundTWeightedFn twl2;
  CodeBoundTFn ct_l1;
  CodeBoundTFn ct_l2;
  CodeBoundTFn ct_linf;
  CodeBoundTWeightedFn ct_wl2;
  CodeMaskTFn ctm_l1;
  CodeMaskTFn ctm_l2;
  CodeMaskTFn ctm_linf;
  CodeMaskTWeightedFn ctm_wl2;
  BoxPredFn box_intersects;
  BoxPredFn box_contains;
};

/// The table the metrics dispatch through (see the selection rules above).
const KernelTable& Active();
SimdTier ActiveTier();

/// Best tier this build + CPU can execute (CPUID, cached).
SimdTier BestSupportedTier();
bool TierSupported(SimdTier tier);

/// Table for a specific supported tier (HT_CHECKs TierSupported).
const KernelTable& TableForTier(SimdTier tier);

/// Pins the active tier in-process, overriding CPUID and HT_SIMD — the
/// tier-sweep hook for tests and benches. The tier must be supported.
void ForceTier(SimdTier tier);
/// Reverts ForceTier to the startup selection.
void ClearForcedTier();

}  // namespace ht::kernels
