// Copyright 2026 The HybridTree Authors.
// AVX2 kernel tier. Vectorizes ACROSS ROWS — four page rows per __m256d,
// one row per double lane — so each lane replays the scalar per-row
// accumulation exactly: same element order, separate mul/add (no FMA; this
// file is compiled with -mavx2 only, never -mfma, and GCC/Clang do not
// contract explicit intrinsics), and the same every-kAbandonBlock
// checkpoint schedule via a sticky per-lane dead mask. A lane goes dead
// only at checkpoints strictly before the final block — the scalar loop's
// break on the final checkpoint still emits the finished value — which is
// what keeps outputs bit-identical to the scalar tier (batch_kernel_test
// sweeps this per tier). Dead lanes keep accumulating (harmless: finite
// float inputs cannot overflow a double sum) and are blended to +infinity
// at the end.
//
// The u8 code-filter kernels vectorize ACROSS DIMENSIONS instead (rows are
// only PaddedDim(dim) bytes): gaps are computed in float lanes and
// accumulated in double lanes, so the only float-relative errors are
// per-term — covered by the quantize.h slack, independent of dim.

#ifdef HT_KERNELS_AVX2

#include <immintrin.h>

#include "geometry/kernels/row_ref.h"
#include "geometry/kernels/tables.h"

namespace ht::kernels {
namespace {

/// Element d of four strided rows, widened to double lanes.
inline __m256d Load4(const float* r0, const float* r1, const float* r2,
                     const float* r3, size_t d) {
  return _mm256_cvtps_pd(_mm_setr_ps(r0[d], r1[d], r2[d], r3[d]));
}

inline double HSum4(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
}

inline float HMax8(__m256 v) {
  const __m128 m4 = _mm_max_ps(_mm256_castps256_ps128(v),
                               _mm256_extractf128_ps(v, 1));
  const __m128 m2 = _mm_max_ps(m4, _mm_movehl_ps(m4, m4));
  const __m128 m1 = _mm_max_ss(m2, _mm_shuffle_ps(m2, m2, 1));
  return _mm_cvtss_f32(m1);
}

constexpr int kAllLanes = 0xf;

void L1Avx2(const float* q, size_t dim, const float* pts, size_t stride,
            size_t n, double bound, double* out) {
  const __m256d vbound = _mm256_set1_pd(bound);
  const __m256d vinf = _mm256_set1_pd(detail::kInf);
  const __m256d kAbsMask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float* r0 = pts + i * stride;
    const float* r1 = r0 + stride;
    const float* r2 = r1 + stride;
    const float* r3 = r2 + stride;
    __m256d s = _mm256_setzero_pd();
    __m256d dead = _mm256_setzero_pd();
    bool all_dead = false;
    size_t d = 0;
    while (d < dim) {
      const size_t end = d + kAbandonBlock < dim ? d + kAbandonBlock : dim;
      for (; d < end; ++d) {
        const __m256d qd = _mm256_set1_pd(static_cast<double>(q[d]));
        const __m256d diff = _mm256_sub_pd(qd, Load4(r0, r1, r2, r3, d));
        s = _mm256_add_pd(s, _mm256_and_pd(diff, kAbsMask));
      }
      if (end < dim) {
        dead = _mm256_or_pd(dead, _mm256_cmp_pd(s, vbound, _CMP_GT_OQ));
        if (_mm256_movemask_pd(dead) == kAllLanes) {
          all_dead = true;
          break;
        }
      }
    }
    _mm256_storeu_pd(out + i,
                     all_dead ? vinf : _mm256_blendv_pd(s, vinf, dead));
  }
  for (; i < n; ++i) out[i] = detail::RowL1(q, dim, pts + i * stride, bound);
}

void L2Avx2(const float* q, size_t dim, const float* pts, size_t stride,
            size_t n, double bound, double* out) {
  const double b2 = AbandonSquare(bound);
  const __m256d vb2 = _mm256_set1_pd(b2);
  const __m256d vinf = _mm256_set1_pd(detail::kInf);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float* r0 = pts + i * stride;
    const float* r1 = r0 + stride;
    const float* r2 = r1 + stride;
    const float* r3 = r2 + stride;
    __m256d s = _mm256_setzero_pd();
    __m256d dead = _mm256_setzero_pd();
    bool all_dead = false;
    size_t d = 0;
    while (d < dim) {
      const size_t end = d + kAbandonBlock < dim ? d + kAbandonBlock : dim;
      for (; d < end; ++d) {
        const __m256d qd = _mm256_set1_pd(static_cast<double>(q[d]));
        const __m256d diff = _mm256_sub_pd(qd, Load4(r0, r1, r2, r3, d));
        s = _mm256_add_pd(s, _mm256_mul_pd(diff, diff));
      }
      if (end < dim) {
        dead = _mm256_or_pd(dead, _mm256_cmp_pd(s, vb2, _CMP_GT_OQ));
        if (_mm256_movemask_pd(dead) == kAllLanes) {
          all_dead = true;
          break;
        }
      }
    }
    _mm256_storeu_pd(
        out + i,
        all_dead ? vinf : _mm256_blendv_pd(_mm256_sqrt_pd(s), vinf, dead));
  }
  for (; i < n; ++i) out[i] = detail::RowL2(q, dim, pts + i * stride, b2);
}

void LInfAvx2(const float* q, size_t dim, const float* pts, size_t stride,
              size_t n, double bound, double* out) {
  const __m256d vbound = _mm256_set1_pd(bound);
  const __m256d vinf = _mm256_set1_pd(detail::kInf);
  const __m256d kAbsMask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float* r0 = pts + i * stride;
    const float* r1 = r0 + stride;
    const float* r2 = r1 + stride;
    const float* r3 = r2 + stride;
    __m256d m = _mm256_setzero_pd();
    __m256d dead = _mm256_setzero_pd();
    bool all_dead = false;
    size_t d = 0;
    while (d < dim) {
      const size_t end = d + kAbandonBlock < dim ? d + kAbandonBlock : dim;
      for (; d < end; ++d) {
        const __m256d qd = _mm256_set1_pd(static_cast<double>(q[d]));
        const __m256d diff = _mm256_sub_pd(qd, Load4(r0, r1, r2, r3, d));
        m = _mm256_max_pd(m, _mm256_and_pd(diff, kAbsMask));
      }
      if (end < dim) {
        dead = _mm256_or_pd(dead, _mm256_cmp_pd(m, vbound, _CMP_GT_OQ));
        if (_mm256_movemask_pd(dead) == kAllLanes) {
          all_dead = true;
          break;
        }
      }
    }
    _mm256_storeu_pd(out + i,
                     all_dead ? vinf : _mm256_blendv_pd(m, vinf, dead));
  }
  for (; i < n; ++i) out[i] = detail::RowLInf(q, dim, pts + i * stride, bound);
}

void WL2Avx2(const float* q, const double* w, size_t dim, const float* pts,
             size_t stride, size_t n, double bound, double* out) {
  const double b2 = AbandonSquare(bound);
  const __m256d vb2 = _mm256_set1_pd(b2);
  const __m256d vinf = _mm256_set1_pd(detail::kInf);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float* r0 = pts + i * stride;
    const float* r1 = r0 + stride;
    const float* r2 = r1 + stride;
    const float* r3 = r2 + stride;
    __m256d s = _mm256_setzero_pd();
    __m256d dead = _mm256_setzero_pd();
    bool all_dead = false;
    size_t d = 0;
    while (d < dim) {
      const size_t end = d + kAbandonBlock < dim ? d + kAbandonBlock : dim;
      for (; d < end; ++d) {
        const __m256d qd = _mm256_set1_pd(static_cast<double>(q[d]));
        const __m256d wd = _mm256_set1_pd(w[d]);
        const __m256d diff = _mm256_sub_pd(qd, Load4(r0, r1, r2, r3, d));
        // Scalar association: s += (w[d] * diff) * diff.
        s = _mm256_add_pd(s, _mm256_mul_pd(_mm256_mul_pd(wd, diff), diff));
      }
      if (end < dim) {
        dead = _mm256_or_pd(dead, _mm256_cmp_pd(s, vb2, _CMP_GT_OQ));
        if (_mm256_movemask_pd(dead) == kAllLanes) {
          all_dead = true;
          break;
        }
      }
    }
    _mm256_storeu_pd(
        out + i,
        all_dead ? vinf : _mm256_blendv_pd(_mm256_sqrt_pd(s), vinf, dead));
  }
  for (; i < n; ++i) out[i] = detail::RowWL2(q, w, dim, pts + i * stride, b2);
}

// --- Code-filter kernels (soundness only; dims padded to kDimPad) ----------

/// Gap vector for 8 dimensions starting at d: max(0, cw - above, below - cw)
/// with cw = code * scale, all in float lanes.
inline __m256 Gap8(const float* above, const float* below, const float* scale,
                   const uint8_t* row, size_t d) {
  const __m128i b8 =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(row + d));
  const __m256 c = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(b8));
  const __m256 cw = _mm256_mul_ps(c, _mm256_loadu_ps(scale + d));
  const __m256 g1 = _mm256_sub_ps(cw, _mm256_loadu_ps(above + d));
  const __m256 g2 = _mm256_sub_ps(_mm256_loadu_ps(below + d), cw);
  return _mm256_max_ps(_mm256_setzero_ps(), _mm256_max_ps(g1, g2));
}

/// acc += sum of the 8 float lanes of v, in double lanes.
inline __m256d AccumulateWide(__m256d acc, __m256 v) {
  acc = _mm256_add_pd(acc, _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
  return _mm256_add_pd(acc, _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)));
}

void CodeL1Avx2(const float* above, const float* below, const float* scale,
                size_t stride, const uint8_t* codes, size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) {
    const uint8_t* row = codes + i * stride;
    __m256d acc = _mm256_setzero_pd();
    for (size_t d = 0; d < stride; d += 8) {
      acc = AccumulateWide(acc, Gap8(above, below, scale, row, d));
    }
    out[i] = HSum4(acc) * detail::kOneMinusSlack;
  }
}

void CodeL2Avx2(const float* above, const float* below, const float* scale,
                size_t stride, const uint8_t* codes, size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) {
    const uint8_t* row = codes + i * stride;
    __m256d acc = _mm256_setzero_pd();
    for (size_t d = 0; d < stride; d += 8) {
      const __m256 g = Gap8(above, below, scale, row, d);
      acc = AccumulateWide(acc, _mm256_mul_ps(g, g));
    }
    out[i] = std::sqrt(HSum4(acc)) * detail::kOneMinusSlack;
  }
}

void CodeLInfAvx2(const float* above, const float* below, const float* scale,
                  size_t stride, const uint8_t* codes, size_t n,
                  double* out) {
  for (size_t i = 0; i < n; ++i) {
    const uint8_t* row = codes + i * stride;
    __m256 m = _mm256_setzero_ps();
    for (size_t d = 0; d < stride; d += 8) {
      m = _mm256_max_ps(m, Gap8(above, below, scale, row, d));
    }
    out[i] = static_cast<double>(HMax8(m)) * detail::kOneMinusSlack;
  }
}

void CodeWL2Avx2(const float* above, const float* below, const float* scale,
                 const float* wf, size_t stride, const uint8_t* codes,
                 size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) {
    const uint8_t* row = codes + i * stride;
    __m256d acc = _mm256_setzero_pd();
    for (size_t d = 0; d < stride; d += 8) {
      const __m256 g = Gap8(above, below, scale, row, d);
      const __m256 t = _mm256_mul_ps(_mm256_mul_ps(g, g),
                                     _mm256_loadu_ps(wf + d));
      acc = AccumulateWide(acc, t);
    }
    out[i] = std::sqrt(HSum4(acc)) * detail::kOneMinusSlack;
  }
}

// --- Transposed-layout kernels (see kernels.h kTBlock) ---------------------
//
// Each kTBlock(=8)-row block is processed as two 4-lane halves; element d
// of a half is one contiguous 16-byte load (tb + d*8 + half*4) instead of
// Load4's four scalar loads. Same per-lane values and accumulation order,
// so the bit-identity argument is unchanged from the strided kernels.

inline __m256d LoadT4(const float* tb, size_t d, size_t half) {
  return _mm256_cvtps_pd(_mm_loadu_ps(tb + d * kTBlock + half * 4));
}

void TL1Avx2(const float* q, size_t dim, const float* t, size_t nblocks,
             double bound, double* out) {
  const __m256d vbound = _mm256_set1_pd(bound);
  const __m256d vinf = _mm256_set1_pd(detail::kInf);
  const __m256d kAbsMask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  for (size_t b = 0; b < nblocks; ++b) {
    const float* tb = t + b * dim * kTBlock;
    for (size_t half = 0; half < 2; ++half) {
      __m256d s = _mm256_setzero_pd();
      __m256d dead = _mm256_setzero_pd();
      bool all_dead = false;
      size_t d = 0;
      while (d < dim) {
        const size_t end = d + kAbandonBlock < dim ? d + kAbandonBlock : dim;
        for (; d < end; ++d) {
          const __m256d qd = _mm256_set1_pd(static_cast<double>(q[d]));
          const __m256d diff = _mm256_sub_pd(qd, LoadT4(tb, d, half));
          s = _mm256_add_pd(s, _mm256_and_pd(diff, kAbsMask));
        }
        if (end < dim) {
          dead = _mm256_or_pd(dead, _mm256_cmp_pd(s, vbound, _CMP_GT_OQ));
          if (_mm256_movemask_pd(dead) == kAllLanes) {
            all_dead = true;
            break;
          }
        }
      }
      _mm256_storeu_pd(out + b * kTBlock + half * 4,
                       all_dead ? vinf : _mm256_blendv_pd(s, vinf, dead));
    }
  }
}

void TL2Avx2(const float* q, size_t dim, const float* t, size_t nblocks,
             double bound, double* out) {
  const double b2 = AbandonSquare(bound);
  const __m256d vb2 = _mm256_set1_pd(b2);
  const __m256d vinf = _mm256_set1_pd(detail::kInf);
  for (size_t b = 0; b < nblocks; ++b) {
    const float* tb = t + b * dim * kTBlock;
    for (size_t half = 0; half < 2; ++half) {
      __m256d s = _mm256_setzero_pd();
      __m256d dead = _mm256_setzero_pd();
      bool all_dead = false;
      size_t d = 0;
      while (d < dim) {
        const size_t end = d + kAbandonBlock < dim ? d + kAbandonBlock : dim;
        for (; d < end; ++d) {
          const __m256d qd = _mm256_set1_pd(static_cast<double>(q[d]));
          const __m256d diff = _mm256_sub_pd(qd, LoadT4(tb, d, half));
          s = _mm256_add_pd(s, _mm256_mul_pd(diff, diff));
        }
        if (end < dim) {
          dead = _mm256_or_pd(dead, _mm256_cmp_pd(s, vb2, _CMP_GT_OQ));
          if (_mm256_movemask_pd(dead) == kAllLanes) {
            all_dead = true;
            break;
          }
        }
      }
      _mm256_storeu_pd(
          out + b * kTBlock + half * 4,
          all_dead ? vinf : _mm256_blendv_pd(_mm256_sqrt_pd(s), vinf, dead));
    }
  }
}

void TLInfAvx2(const float* q, size_t dim, const float* t, size_t nblocks,
               double bound, double* out) {
  const __m256d vbound = _mm256_set1_pd(bound);
  const __m256d vinf = _mm256_set1_pd(detail::kInf);
  const __m256d kAbsMask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  for (size_t b = 0; b < nblocks; ++b) {
    const float* tb = t + b * dim * kTBlock;
    for (size_t half = 0; half < 2; ++half) {
      __m256d m = _mm256_setzero_pd();
      __m256d dead = _mm256_setzero_pd();
      bool all_dead = false;
      size_t d = 0;
      while (d < dim) {
        const size_t end = d + kAbandonBlock < dim ? d + kAbandonBlock : dim;
        for (; d < end; ++d) {
          const __m256d qd = _mm256_set1_pd(static_cast<double>(q[d]));
          const __m256d diff = _mm256_sub_pd(qd, LoadT4(tb, d, half));
          m = _mm256_max_pd(m, _mm256_and_pd(diff, kAbsMask));
        }
        if (end < dim) {
          dead = _mm256_or_pd(dead, _mm256_cmp_pd(m, vbound, _CMP_GT_OQ));
          if (_mm256_movemask_pd(dead) == kAllLanes) {
            all_dead = true;
            break;
          }
        }
      }
      _mm256_storeu_pd(out + b * kTBlock + half * 4,
                       all_dead ? vinf : _mm256_blendv_pd(m, vinf, dead));
    }
  }
}

void TWL2Avx2(const float* q, const double* w, size_t dim, const float* t,
              size_t nblocks, double bound, double* out) {
  const double b2 = AbandonSquare(bound);
  const __m256d vb2 = _mm256_set1_pd(b2);
  const __m256d vinf = _mm256_set1_pd(detail::kInf);
  for (size_t b = 0; b < nblocks; ++b) {
    const float* tb = t + b * dim * kTBlock;
    for (size_t half = 0; half < 2; ++half) {
      __m256d s = _mm256_setzero_pd();
      __m256d dead = _mm256_setzero_pd();
      bool all_dead = false;
      size_t d = 0;
      while (d < dim) {
        const size_t end = d + kAbandonBlock < dim ? d + kAbandonBlock : dim;
        for (; d < end; ++d) {
          const __m256d qd = _mm256_set1_pd(static_cast<double>(q[d]));
          const __m256d wd = _mm256_set1_pd(w[d]);
          const __m256d diff = _mm256_sub_pd(qd, LoadT4(tb, d, half));
          // Scalar association: s += (w[d] * diff) * diff.
          s = _mm256_add_pd(s, _mm256_mul_pd(_mm256_mul_pd(wd, diff), diff));
        }
        if (end < dim) {
          dead = _mm256_or_pd(dead, _mm256_cmp_pd(s, vb2, _CMP_GT_OQ));
          if (_mm256_movemask_pd(dead) == kAllLanes) {
            all_dead = true;
            break;
          }
        }
      }
      _mm256_storeu_pd(
          out + b * kTBlock + half * 4,
          all_dead ? vinf : _mm256_blendv_pd(_mm256_sqrt_pd(s), vinf, dead));
    }
  }
}

// --- Transposed-code kernels (row-parallel code bounds) --------------------
//
// One contiguous 8-byte code load covers dimension d of all 8 rows of a
// block, and the per-row horizontal reduce + scalar sqrt of the row-major
// code kernels becomes one vector sqrt per 4-lane half. Gap math is in
// float (bitwise the scalar CodeGap, modulo -0.0 vs +0.0, which every
// consumer treats identically), squares/accumulation in double lanes in
// dimension order — exactly RowCodeT*'s sequence, so outputs are bitwise
// identical to the scalar tier.

/// Gaps for the 8 rows of one transposed block at dimension d.
inline __m256 GapT8(const float* above, const float* below,
                    const float* scale, const uint8_t* tcb, size_t d) {
  const __m128i b8 =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(tcb + d * kTBlock));
  const __m256 c = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(b8));
  const __m256 cw = _mm256_mul_ps(c, _mm256_set1_ps(scale[d]));
  const __m256 g1 = _mm256_sub_ps(cw, _mm256_set1_ps(above[d]));
  const __m256 g2 = _mm256_sub_ps(_mm256_set1_ps(below[d]), cw);
  return _mm256_max_ps(_mm256_setzero_ps(), _mm256_max_ps(g1, g2));
}

inline __m256d LowPd(__m256 v) {
  return _mm256_cvtps_pd(_mm256_castps256_ps128(v));
}
inline __m256d HighPd(__m256 v) {
  return _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
}

void CTL1Avx2(const float* above, const float* below, const float* scale,
              size_t dim, const uint8_t* tcodes, size_t nblocks,
              double* out) {
  const __m256d slack = _mm256_set1_pd(detail::kOneMinusSlack);
  for (size_t b = 0; b < nblocks; ++b) {
    const uint8_t* tcb = tcodes + b * dim * kTBlock;
    __m256d lo = _mm256_setzero_pd();
    __m256d hi = _mm256_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m256 g = GapT8(above, below, scale, tcb, d);
      lo = _mm256_add_pd(lo, LowPd(g));
      hi = _mm256_add_pd(hi, HighPd(g));
    }
    _mm256_storeu_pd(out + b * kTBlock, _mm256_mul_pd(lo, slack));
    _mm256_storeu_pd(out + b * kTBlock + 4, _mm256_mul_pd(hi, slack));
  }
}

void CTL2Avx2(const float* above, const float* below, const float* scale,
              size_t dim, const uint8_t* tcodes, size_t nblocks,
              double* out) {
  const __m256d slack = _mm256_set1_pd(detail::kOneMinusSlack);
  for (size_t b = 0; b < nblocks; ++b) {
    const uint8_t* tcb = tcodes + b * dim * kTBlock;
    __m256d lo = _mm256_setzero_pd();
    __m256d hi = _mm256_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m256 g = GapT8(above, below, scale, tcb, d);
      // Widen BEFORE squaring: the scalar reference squares in double.
      const __m256d gl = LowPd(g);
      const __m256d gh = HighPd(g);
      lo = _mm256_add_pd(lo, _mm256_mul_pd(gl, gl));
      hi = _mm256_add_pd(hi, _mm256_mul_pd(gh, gh));
    }
    _mm256_storeu_pd(out + b * kTBlock,
                     _mm256_mul_pd(_mm256_sqrt_pd(lo), slack));
    _mm256_storeu_pd(out + b * kTBlock + 4,
                     _mm256_mul_pd(_mm256_sqrt_pd(hi), slack));
  }
}

void CTLInfAvx2(const float* above, const float* below, const float* scale,
                size_t dim, const uint8_t* tcodes, size_t nblocks,
                double* out) {
  const __m256d slack = _mm256_set1_pd(detail::kOneMinusSlack);
  for (size_t b = 0; b < nblocks; ++b) {
    const uint8_t* tcb = tcodes + b * dim * kTBlock;
    __m256 m = _mm256_setzero_ps();
    for (size_t d = 0; d < dim; ++d) {
      m = _mm256_max_ps(m, GapT8(above, below, scale, tcb, d));
    }
    // maxps can leave -0.0 where the scalar's strict > keeps +0.0; adding
    // +0.0 canonicalizes without changing any other value.
    m = _mm256_add_ps(m, _mm256_setzero_ps());
    _mm256_storeu_pd(out + b * kTBlock, _mm256_mul_pd(LowPd(m), slack));
    _mm256_storeu_pd(out + b * kTBlock + 4,
                     _mm256_mul_pd(HighPd(m), slack));
  }
}

void CTWL2Avx2(const float* above, const float* below, const float* scale,
               const float* wf, size_t dim, const uint8_t* tcodes,
               size_t nblocks, double* out) {
  const __m256d slack = _mm256_set1_pd(detail::kOneMinusSlack);
  for (size_t b = 0; b < nblocks; ++b) {
    const uint8_t* tcb = tcodes + b * dim * kTBlock;
    __m256d lo = _mm256_setzero_pd();
    __m256d hi = _mm256_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m256 g = GapT8(above, below, scale, tcb, d);
      const __m256d wd = _mm256_set1_pd(static_cast<double>(wf[d]));
      const __m256d gl = LowPd(g);
      const __m256d gh = HighPd(g);
      // Scalar association: s += ((double)wf[d] * g) * g.
      lo = _mm256_add_pd(lo, _mm256_mul_pd(_mm256_mul_pd(wd, gl), gl));
      hi = _mm256_add_pd(hi, _mm256_mul_pd(_mm256_mul_pd(wd, gh), gh));
    }
    _mm256_storeu_pd(out + b * kTBlock,
                     _mm256_mul_pd(_mm256_sqrt_pd(lo), slack));
    _mm256_storeu_pd(out + b * kTBlock + 4,
                     _mm256_mul_pd(_mm256_sqrt_pd(hi), slack));
  }
}

// --- Fused mask-filter kernels (kernels.h ctm_*) ---------------------------
//
// Same raw accumulators as the CT kernels above, but no slack multiply, no
// sqrt, and no per-row double store: each 4-lane half is compared against
// the precomputed threshold in-register and movemask collapses the block to
// one survivor byte. Lane accumulation order matches RowCodeTRaw*, and IEEE
// <= treats -0.0 == +0.0, so masks are bitwise identical across tiers.

/// Survivor bits for one block's two 4-double halves: bit i = lane i.
inline uint8_t MaskFromHalves(__m256d lo, __m256d hi, __m256d t) {
  const int mlo = _mm256_movemask_pd(_mm256_cmp_pd(lo, t, _CMP_LE_OQ));
  const int mhi = _mm256_movemask_pd(_mm256_cmp_pd(hi, t, _CMP_LE_OQ));
  return static_cast<uint8_t>(mlo | (mhi << 4));
}

void CTML1Avx2(const float* above, const float* below, const float* scale,
               size_t dim, const uint8_t* tcodes, size_t nblocks,
               double threshold, uint8_t* masks) {
  const __m256d t = _mm256_set1_pd(threshold);
  for (size_t b = 0; b < nblocks; ++b) {
    const uint8_t* tcb = tcodes + b * dim * kTBlock;
    __m256d lo = _mm256_setzero_pd();
    __m256d hi = _mm256_setzero_pd();
    uint8_t m = 0;
    size_t d = 0;
    // Abandon the block once every lane exceeds the threshold: the sums
    // are monotone non-decreasing, so an early 0 mask is bitwise what
    // full accumulation would produce.
    while (d < dim) {
      const size_t end = d + kAbandonBlock < dim ? d + kAbandonBlock : dim;
      for (; d < end; ++d) {
        const __m256 g = GapT8(above, below, scale, tcb, d);
        lo = _mm256_add_pd(lo, LowPd(g));
        hi = _mm256_add_pd(hi, HighPd(g));
      }
      m = MaskFromHalves(lo, hi, t);
      if (m == 0) break;
    }
    masks[b] = d == dim ? m : 0;
  }
}

void CTML2Avx2(const float* above, const float* below, const float* scale,
               size_t dim, const uint8_t* tcodes, size_t nblocks,
               double threshold, uint8_t* masks) {
  const __m256d t = _mm256_set1_pd(threshold);
  for (size_t b = 0; b < nblocks; ++b) {
    const uint8_t* tcb = tcodes + b * dim * kTBlock;
    __m256d lo = _mm256_setzero_pd();
    __m256d hi = _mm256_setzero_pd();
    uint8_t m = 0;
    size_t d = 0;
    while (d < dim) {
      const size_t end = d + kAbandonBlock < dim ? d + kAbandonBlock : dim;
      for (; d < end; ++d) {
        const __m256 g = GapT8(above, below, scale, tcb, d);
        // Widen BEFORE squaring: the scalar reference squares in double.
        const __m256d gl = LowPd(g);
        const __m256d gh = HighPd(g);
        lo = _mm256_add_pd(lo, _mm256_mul_pd(gl, gl));
        hi = _mm256_add_pd(hi, _mm256_mul_pd(gh, gh));
      }
      m = MaskFromHalves(lo, hi, t);
      if (m == 0) break;
    }
    masks[b] = d == dim ? m : 0;
  }
}

void CTMLInfAvx2(const float* above, const float* below, const float* scale,
                 size_t dim, const uint8_t* tcodes, size_t nblocks,
                 double threshold, uint8_t* masks) {
  const __m256d t = _mm256_set1_pd(threshold);
  for (size_t b = 0; b < nblocks; ++b) {
    const uint8_t* tcb = tcodes + b * dim * kTBlock;
    __m256 m = _mm256_setzero_ps();
    uint8_t alive = 0;
    size_t d = 0;
    while (d < dim) {
      const size_t end = d + kAbandonBlock < dim ? d + kAbandonBlock : dim;
      for (; d < end; ++d) {
        m = _mm256_max_ps(m, GapT8(above, below, scale, tcb, d));
      }
      // No -0.0 canonicalization needed here: the compare treats -0 == +0.
      alive = MaskFromHalves(LowPd(m), HighPd(m), t);
      if (alive == 0) break;
    }
    masks[b] = d == dim ? alive : 0;
  }
}

void CTMWL2Avx2(const float* above, const float* below, const float* scale,
                const float* wf, size_t dim, const uint8_t* tcodes,
                size_t nblocks, double threshold, uint8_t* masks) {
  const __m256d t = _mm256_set1_pd(threshold);
  for (size_t b = 0; b < nblocks; ++b) {
    const uint8_t* tcb = tcodes + b * dim * kTBlock;
    __m256d lo = _mm256_setzero_pd();
    __m256d hi = _mm256_setzero_pd();
    uint8_t m = 0;
    size_t d = 0;
    while (d < dim) {
      const size_t end = d + kAbandonBlock < dim ? d + kAbandonBlock : dim;
      for (; d < end; ++d) {
        const __m256 g = GapT8(above, below, scale, tcb, d);
        const __m256d wd = _mm256_set1_pd(static_cast<double>(wf[d]));
        const __m256d gl = LowPd(g);
        const __m256d gh = HighPd(g);
        // Scalar association: s += ((double)wf[d] * g) * g.
        lo = _mm256_add_pd(lo, _mm256_mul_pd(_mm256_mul_pd(wd, gl), gl));
        hi = _mm256_add_pd(hi, _mm256_mul_pd(_mm256_mul_pd(wd, gh), gh));
      }
      m = MaskFromHalves(lo, hi, t);
      if (m == 0) break;
    }
    masks[b] = d == dim ? m : 0;
  }
}

// Box predicates: 8 dimensions per iteration. _CMP_LT_OQ / _CMP_GT_OQ are
// ordered-quiet, so a NaN lane never raises a disjointness / escape bit —
// identical to the scalar reference's ordered compares. Only the boolean
// is observable, so testing 8 dims at once matches the scalar early-exit.
bool BoxIntersectsAvx2(const float* alo, const float* ahi, const float* blo,
                       const float* bhi, size_t dim) {
  size_t d = 0;
  for (; d + 8 <= dim; d += 8) {
    const __m256 al = _mm256_loadu_ps(alo + d);
    const __m256 ah = _mm256_loadu_ps(ahi + d);
    const __m256 bl = _mm256_loadu_ps(blo + d);
    const __m256 bh = _mm256_loadu_ps(bhi + d);
    const __m256 disjoint = _mm256_or_ps(_mm256_cmp_ps(bh, al, _CMP_LT_OQ),
                                         _mm256_cmp_ps(bl, ah, _CMP_GT_OQ));
    if (_mm256_movemask_ps(disjoint) != 0) return false;
  }
  for (; d < dim; ++d) {
    if (bhi[d] < alo[d] || blo[d] > ahi[d]) return false;
  }
  return true;
}

bool BoxContainsAvx2(const float* alo, const float* ahi, const float* blo,
                     const float* bhi, size_t dim) {
  size_t d = 0;
  for (; d + 8 <= dim; d += 8) {
    const __m256 al = _mm256_loadu_ps(alo + d);
    const __m256 ah = _mm256_loadu_ps(ahi + d);
    const __m256 bl = _mm256_loadu_ps(blo + d);
    const __m256 bh = _mm256_loadu_ps(bhi + d);
    const __m256 escapes = _mm256_or_ps(_mm256_cmp_ps(bl, al, _CMP_LT_OQ),
                                        _mm256_cmp_ps(bh, ah, _CMP_GT_OQ));
    if (_mm256_movemask_ps(escapes) != 0) return false;
  }
  for (; d < dim; ++d) {
    if (blo[d] < alo[d] || bhi[d] > ahi[d]) return false;
  }
  return true;
}

}  // namespace

const KernelTable& Avx2Table() {
  static const KernelTable table = {
      SimdTier::kAvx2, &L1Avx2,      &L2Avx2,       &LInfAvx2,
      &WL2Avx2,        &CodeL1Avx2,  &CodeL2Avx2,   &CodeLInfAvx2,
      &CodeWL2Avx2,    &TL1Avx2,     &TL2Avx2,      &TLInfAvx2,
      &TWL2Avx2,       &CTL1Avx2,    &CTL2Avx2,     &CTLInfAvx2,
      &CTWL2Avx2,      &CTML1Avx2,   &CTML2Avx2,    &CTMLInfAvx2,
      &CTMWL2Avx2,     &BoxIntersectsAvx2,          &BoxContainsAvx2};
  return table;
}

}  // namespace ht::kernels

#endif  // HT_KERNELS_AVX2
