// Copyright 2026 The HybridTree Authors.
// AVX-512 kernel tier: eight rows per __m512d, one row per double lane,
// with the dead-lane bookkeeping in a __mmask8. Same bit-identity scheme
// as the AVX2 tier (see avx2.cc): per-lane replay of the scalar
// accumulation, separate mul/add (no FMA contraction of intrinsics),
// checkpoints every kAbandonBlock dims, lanes go dead only strictly before
// the final block. Requires avx512f+bw+dq+vl at runtime (dispatch.cc
// checks CPUID); compiled only when the toolchain supports the flags.

#ifdef HT_KERNELS_AVX512

#include <immintrin.h>

#include "geometry/kernels/row_ref.h"
#include "geometry/kernels/tables.h"

namespace ht::kernels {
namespace {

/// Element d of eight rows starting at `base` (stride floats apart),
/// widened to double lanes.
inline __m512d Load8(const float* base, size_t stride, size_t d) {
  const float* r = base + d;
  const __m128 lo = _mm_setr_ps(r[0], r[stride], r[2 * stride], r[3 * stride]);
  const __m128 hi = _mm_setr_ps(r[4 * stride], r[5 * stride], r[6 * stride],
                                r[7 * stride]);
  return _mm512_insertf64x4(_mm512_castpd256_pd512(_mm256_cvtps_pd(lo)),
                            _mm256_cvtps_pd(hi), 1);
}

constexpr __mmask8 kAllLanes = 0xff;

void L1Avx512(const float* q, size_t dim, const float* pts, size_t stride,
              size_t n, double bound, double* out) {
  const __m512d vbound = _mm512_set1_pd(bound);
  const __m512d vinf = _mm512_set1_pd(detail::kInf);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const float* base = pts + i * stride;
    __m512d s = _mm512_setzero_pd();
    __mmask8 dead = 0;
    bool all_dead = false;
    size_t d = 0;
    while (d < dim) {
      const size_t end = d + kAbandonBlock < dim ? d + kAbandonBlock : dim;
      for (; d < end; ++d) {
        const __m512d qd = _mm512_set1_pd(static_cast<double>(q[d]));
        const __m512d diff = _mm512_sub_pd(qd, Load8(base, stride, d));
        s = _mm512_add_pd(s, _mm512_abs_pd(diff));
      }
      if (end < dim) {
        dead |= _mm512_cmp_pd_mask(s, vbound, _CMP_GT_OQ);
        if (dead == kAllLanes) {
          all_dead = true;
          break;
        }
      }
    }
    _mm512_storeu_pd(out + i,
                     all_dead ? vinf : _mm512_mask_blend_pd(dead, s, vinf));
  }
  for (; i < n; ++i) out[i] = detail::RowL1(q, dim, pts + i * stride, bound);
}

void L2Avx512(const float* q, size_t dim, const float* pts, size_t stride,
              size_t n, double bound, double* out) {
  const double b2 = AbandonSquare(bound);
  const __m512d vb2 = _mm512_set1_pd(b2);
  const __m512d vinf = _mm512_set1_pd(detail::kInf);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const float* base = pts + i * stride;
    __m512d s = _mm512_setzero_pd();
    __mmask8 dead = 0;
    bool all_dead = false;
    size_t d = 0;
    while (d < dim) {
      const size_t end = d + kAbandonBlock < dim ? d + kAbandonBlock : dim;
      for (; d < end; ++d) {
        const __m512d qd = _mm512_set1_pd(static_cast<double>(q[d]));
        const __m512d diff = _mm512_sub_pd(qd, Load8(base, stride, d));
        s = _mm512_add_pd(s, _mm512_mul_pd(diff, diff));
      }
      if (end < dim) {
        dead |= _mm512_cmp_pd_mask(s, vb2, _CMP_GT_OQ);
        if (dead == kAllLanes) {
          all_dead = true;
          break;
        }
      }
    }
    _mm512_storeu_pd(
        out + i,
        all_dead ? vinf : _mm512_mask_blend_pd(dead, _mm512_sqrt_pd(s), vinf));
  }
  for (; i < n; ++i) out[i] = detail::RowL2(q, dim, pts + i * stride, b2);
}

void LInfAvx512(const float* q, size_t dim, const float* pts, size_t stride,
                size_t n, double bound, double* out) {
  const __m512d vbound = _mm512_set1_pd(bound);
  const __m512d vinf = _mm512_set1_pd(detail::kInf);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const float* base = pts + i * stride;
    __m512d m = _mm512_setzero_pd();
    __mmask8 dead = 0;
    bool all_dead = false;
    size_t d = 0;
    while (d < dim) {
      const size_t end = d + kAbandonBlock < dim ? d + kAbandonBlock : dim;
      for (; d < end; ++d) {
        const __m512d qd = _mm512_set1_pd(static_cast<double>(q[d]));
        const __m512d diff = _mm512_sub_pd(qd, Load8(base, stride, d));
        m = _mm512_max_pd(m, _mm512_abs_pd(diff));
      }
      if (end < dim) {
        dead |= _mm512_cmp_pd_mask(m, vbound, _CMP_GT_OQ);
        if (dead == kAllLanes) {
          all_dead = true;
          break;
        }
      }
    }
    _mm512_storeu_pd(out + i,
                     all_dead ? vinf : _mm512_mask_blend_pd(dead, m, vinf));
  }
  for (; i < n; ++i) out[i] = detail::RowLInf(q, dim, pts + i * stride, bound);
}

void WL2Avx512(const float* q, const double* w, size_t dim, const float* pts,
               size_t stride, size_t n, double bound, double* out) {
  const double b2 = AbandonSquare(bound);
  const __m512d vb2 = _mm512_set1_pd(b2);
  const __m512d vinf = _mm512_set1_pd(detail::kInf);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const float* base = pts + i * stride;
    __m512d s = _mm512_setzero_pd();
    __mmask8 dead = 0;
    bool all_dead = false;
    size_t d = 0;
    while (d < dim) {
      const size_t end = d + kAbandonBlock < dim ? d + kAbandonBlock : dim;
      for (; d < end; ++d) {
        const __m512d qd = _mm512_set1_pd(static_cast<double>(q[d]));
        const __m512d wd = _mm512_set1_pd(w[d]);
        const __m512d diff = _mm512_sub_pd(qd, Load8(base, stride, d));
        // Scalar association: s += (w[d] * diff) * diff.
        s = _mm512_add_pd(s, _mm512_mul_pd(_mm512_mul_pd(wd, diff), diff));
      }
      if (end < dim) {
        dead |= _mm512_cmp_pd_mask(s, vb2, _CMP_GT_OQ);
        if (dead == kAllLanes) {
          all_dead = true;
          break;
        }
      }
    }
    _mm512_storeu_pd(
        out + i,
        all_dead ? vinf : _mm512_mask_blend_pd(dead, _mm512_sqrt_pd(s), vinf));
  }
  for (; i < n; ++i) out[i] = detail::RowWL2(q, w, dim, pts + i * stride, b2);
}

// --- Code-filter kernels (soundness only; dims padded to kDimPad) ----------

/// Gap vector for 16 dimensions starting at d (see avx2.cc Gap8).
inline __m512 Gap16(const float* above, const float* below, const float* scale,
                    const uint8_t* row, size_t d) {
  const __m128i b16 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + d));
  const __m512 c = _mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(b16));
  const __m512 cw = _mm512_mul_ps(c, _mm512_loadu_ps(scale + d));
  const __m512 g1 = _mm512_sub_ps(cw, _mm512_loadu_ps(above + d));
  const __m512 g2 = _mm512_sub_ps(_mm512_loadu_ps(below + d), cw);
  return _mm512_max_ps(_mm512_setzero_ps(), _mm512_max_ps(g1, g2));
}

/// acc += sum of the 16 float lanes of v, in double lanes.
inline __m512d AccumulateWide(__m512d acc, __m512 v) {
  acc = _mm512_add_pd(acc, _mm512_cvtps_pd(_mm512_castps512_ps256(v)));
  return _mm512_add_pd(acc, _mm512_cvtps_pd(_mm512_extractf32x8_ps(v, 1)));
}

void CodeL1Avx512(const float* above, const float* below, const float* scale,
                  size_t stride, const uint8_t* codes, size_t n,
                  double* out) {
  for (size_t i = 0; i < n; ++i) {
    const uint8_t* row = codes + i * stride;
    __m512d acc = _mm512_setzero_pd();
    for (size_t d = 0; d < stride; d += 16) {
      acc = AccumulateWide(acc, Gap16(above, below, scale, row, d));
    }
    out[i] = _mm512_reduce_add_pd(acc) * detail::kOneMinusSlack;
  }
}

void CodeL2Avx512(const float* above, const float* below, const float* scale,
                  size_t stride, const uint8_t* codes, size_t n,
                  double* out) {
  for (size_t i = 0; i < n; ++i) {
    const uint8_t* row = codes + i * stride;
    __m512d acc = _mm512_setzero_pd();
    for (size_t d = 0; d < stride; d += 16) {
      const __m512 g = Gap16(above, below, scale, row, d);
      acc = AccumulateWide(acc, _mm512_mul_ps(g, g));
    }
    out[i] = std::sqrt(_mm512_reduce_add_pd(acc)) * detail::kOneMinusSlack;
  }
}

void CodeLInfAvx512(const float* above, const float* below,
                    const float* scale, size_t stride, const uint8_t* codes,
                    size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) {
    const uint8_t* row = codes + i * stride;
    __m512 m = _mm512_setzero_ps();
    for (size_t d = 0; d < stride; d += 16) {
      m = _mm512_max_ps(m, Gap16(above, below, scale, row, d));
    }
    out[i] =
        static_cast<double>(_mm512_reduce_max_ps(m)) * detail::kOneMinusSlack;
  }
}

void CodeWL2Avx512(const float* above, const float* below, const float* scale,
                   const float* wf, size_t stride, const uint8_t* codes,
                   size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) {
    const uint8_t* row = codes + i * stride;
    __m512d acc = _mm512_setzero_pd();
    for (size_t d = 0; d < stride; d += 16) {
      const __m512 g = Gap16(above, below, scale, row, d);
      const __m512 t =
          _mm512_mul_ps(_mm512_mul_ps(g, g), _mm512_loadu_ps(wf + d));
      acc = AccumulateWide(acc, t);
    }
    out[i] = std::sqrt(_mm512_reduce_add_pd(acc)) * detail::kOneMinusSlack;
  }
}

// --- Transposed-layout kernels (see kernels.h kTBlock) ---------------------
//
// One kTBlock(=8)-row block per __m512d: element d of all eight rows is a
// single contiguous 32-byte load + one widening convert, replacing Load8's
// eight scalar loads. Same per-lane values and accumulation order, so the
// bit-identity argument is unchanged from the strided kernels.

inline __m512d LoadT8(const float* tb, size_t d) {
  return _mm512_cvtps_pd(_mm256_loadu_ps(tb + d * kTBlock));
}

void TL1Avx512(const float* q, size_t dim, const float* t, size_t nblocks,
               double bound, double* out) {
  const __m512d vbound = _mm512_set1_pd(bound);
  const __m512d vinf = _mm512_set1_pd(detail::kInf);
  for (size_t b = 0; b < nblocks; ++b) {
    const float* tb = t + b * dim * kTBlock;
    __m512d s = _mm512_setzero_pd();
    __mmask8 dead = 0;
    bool all_dead = false;
    size_t d = 0;
    while (d < dim) {
      const size_t end = d + kAbandonBlock < dim ? d + kAbandonBlock : dim;
      for (; d < end; ++d) {
        const __m512d qd = _mm512_set1_pd(static_cast<double>(q[d]));
        const __m512d diff = _mm512_sub_pd(qd, LoadT8(tb, d));
        s = _mm512_add_pd(s, _mm512_abs_pd(diff));
      }
      if (end < dim) {
        dead |= _mm512_cmp_pd_mask(s, vbound, _CMP_GT_OQ);
        if (dead == kAllLanes) {
          all_dead = true;
          break;
        }
      }
    }
    _mm512_storeu_pd(out + b * kTBlock,
                     all_dead ? vinf : _mm512_mask_blend_pd(dead, s, vinf));
  }
}

void TL2Avx512(const float* q, size_t dim, const float* t, size_t nblocks,
               double bound, double* out) {
  const double b2 = AbandonSquare(bound);
  const __m512d vb2 = _mm512_set1_pd(b2);
  const __m512d vinf = _mm512_set1_pd(detail::kInf);
  for (size_t b = 0; b < nblocks; ++b) {
    const float* tb = t + b * dim * kTBlock;
    __m512d s = _mm512_setzero_pd();
    __mmask8 dead = 0;
    bool all_dead = false;
    size_t d = 0;
    while (d < dim) {
      const size_t end = d + kAbandonBlock < dim ? d + kAbandonBlock : dim;
      for (; d < end; ++d) {
        const __m512d qd = _mm512_set1_pd(static_cast<double>(q[d]));
        const __m512d diff = _mm512_sub_pd(qd, LoadT8(tb, d));
        s = _mm512_add_pd(s, _mm512_mul_pd(diff, diff));
      }
      if (end < dim) {
        dead |= _mm512_cmp_pd_mask(s, vb2, _CMP_GT_OQ);
        if (dead == kAllLanes) {
          all_dead = true;
          break;
        }
      }
    }
    _mm512_storeu_pd(
        out + b * kTBlock,
        all_dead ? vinf : _mm512_mask_blend_pd(dead, _mm512_sqrt_pd(s), vinf));
  }
}

void TLInfAvx512(const float* q, size_t dim, const float* t, size_t nblocks,
                 double bound, double* out) {
  const __m512d vbound = _mm512_set1_pd(bound);
  const __m512d vinf = _mm512_set1_pd(detail::kInf);
  for (size_t b = 0; b < nblocks; ++b) {
    const float* tb = t + b * dim * kTBlock;
    __m512d m = _mm512_setzero_pd();
    __mmask8 dead = 0;
    bool all_dead = false;
    size_t d = 0;
    while (d < dim) {
      const size_t end = d + kAbandonBlock < dim ? d + kAbandonBlock : dim;
      for (; d < end; ++d) {
        const __m512d qd = _mm512_set1_pd(static_cast<double>(q[d]));
        const __m512d diff = _mm512_sub_pd(qd, LoadT8(tb, d));
        m = _mm512_max_pd(m, _mm512_abs_pd(diff));
      }
      if (end < dim) {
        dead |= _mm512_cmp_pd_mask(m, vbound, _CMP_GT_OQ);
        if (dead == kAllLanes) {
          all_dead = true;
          break;
        }
      }
    }
    _mm512_storeu_pd(out + b * kTBlock,
                     all_dead ? vinf : _mm512_mask_blend_pd(dead, m, vinf));
  }
}

void TWL2Avx512(const float* q, const double* w, size_t dim, const float* t,
                size_t nblocks, double bound, double* out) {
  const double b2 = AbandonSquare(bound);
  const __m512d vb2 = _mm512_set1_pd(b2);
  const __m512d vinf = _mm512_set1_pd(detail::kInf);
  for (size_t b = 0; b < nblocks; ++b) {
    const float* tb = t + b * dim * kTBlock;
    __m512d s = _mm512_setzero_pd();
    __mmask8 dead = 0;
    bool all_dead = false;
    size_t d = 0;
    while (d < dim) {
      const size_t end = d + kAbandonBlock < dim ? d + kAbandonBlock : dim;
      for (; d < end; ++d) {
        const __m512d qd = _mm512_set1_pd(static_cast<double>(q[d]));
        const __m512d wd = _mm512_set1_pd(w[d]);
        const __m512d diff = _mm512_sub_pd(qd, LoadT8(tb, d));
        // Scalar association: s += (w[d] * diff) * diff.
        s = _mm512_add_pd(s, _mm512_mul_pd(_mm512_mul_pd(wd, diff), diff));
      }
      if (end < dim) {
        dead |= _mm512_cmp_pd_mask(s, vb2, _CMP_GT_OQ);
        if (dead == kAllLanes) {
          all_dead = true;
          break;
        }
      }
    }
    _mm512_storeu_pd(
        out + b * kTBlock,
        all_dead ? vinf : _mm512_mask_blend_pd(dead, _mm512_sqrt_pd(s), vinf));
  }
}

// --- Transposed-code kernels (row-parallel code bounds) --------------------
//
// See the AVX2 file's section comment; here one __m512d covers the whole
// 8-row block, so each dimension is one 8-byte code load + widen and the
// final sqrt serves all 8 rows at once. Accumulation replays RowCodeT*'s
// order exactly — outputs are bitwise identical to the scalar tier.

/// Gaps for the 8 rows of one transposed block at dimension d.
inline __m256 GapCT8(const float* above, const float* below,
                     const float* scale, const uint8_t* tcb, size_t d) {
  const __m128i b8 =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(tcb + d * kTBlock));
  const __m256 c = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(b8));
  const __m256 cw = _mm256_mul_ps(c, _mm256_set1_ps(scale[d]));
  const __m256 g1 = _mm256_sub_ps(cw, _mm256_set1_ps(above[d]));
  const __m256 g2 = _mm256_sub_ps(_mm256_set1_ps(below[d]), cw);
  return _mm256_max_ps(_mm256_setzero_ps(), _mm256_max_ps(g1, g2));
}

void CTL1Avx512(const float* above, const float* below, const float* scale,
                size_t dim, const uint8_t* tcodes, size_t nblocks,
                double* out) {
  const __m512d slack = _mm512_set1_pd(detail::kOneMinusSlack);
  for (size_t b = 0; b < nblocks; ++b) {
    const uint8_t* tcb = tcodes + b * dim * kTBlock;
    __m512d s = _mm512_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      s = _mm512_add_pd(
          s, _mm512_cvtps_pd(GapCT8(above, below, scale, tcb, d)));
    }
    _mm512_storeu_pd(out + b * kTBlock, _mm512_mul_pd(s, slack));
  }
}

void CTL2Avx512(const float* above, const float* below, const float* scale,
                size_t dim, const uint8_t* tcodes, size_t nblocks,
                double* out) {
  const __m512d slack = _mm512_set1_pd(detail::kOneMinusSlack);
  for (size_t b = 0; b < nblocks; ++b) {
    const uint8_t* tcb = tcodes + b * dim * kTBlock;
    __m512d s = _mm512_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      // Widen BEFORE squaring: the scalar reference squares in double.
      const __m512d g = _mm512_cvtps_pd(GapCT8(above, below, scale, tcb, d));
      s = _mm512_add_pd(s, _mm512_mul_pd(g, g));
    }
    _mm512_storeu_pd(out + b * kTBlock,
                     _mm512_mul_pd(_mm512_sqrt_pd(s), slack));
  }
}

void CTLInfAvx512(const float* above, const float* below, const float* scale,
                  size_t dim, const uint8_t* tcodes, size_t nblocks,
                  double* out) {
  const __m512d slack = _mm512_set1_pd(detail::kOneMinusSlack);
  for (size_t b = 0; b < nblocks; ++b) {
    const uint8_t* tcb = tcodes + b * dim * kTBlock;
    __m256 m = _mm256_setzero_ps();
    for (size_t d = 0; d < dim; ++d) {
      m = _mm256_max_ps(m, GapCT8(above, below, scale, tcb, d));
    }
    // maxps can leave -0.0 where the scalar's strict > keeps +0.0; adding
    // +0.0 canonicalizes without changing any other value.
    m = _mm256_add_ps(m, _mm256_setzero_ps());
    _mm512_storeu_pd(out + b * kTBlock,
                     _mm512_mul_pd(_mm512_cvtps_pd(m), slack));
  }
}

void CTWL2Avx512(const float* above, const float* below, const float* scale,
                 const float* wf, size_t dim, const uint8_t* tcodes,
                 size_t nblocks, double* out) {
  const __m512d slack = _mm512_set1_pd(detail::kOneMinusSlack);
  for (size_t b = 0; b < nblocks; ++b) {
    const uint8_t* tcb = tcodes + b * dim * kTBlock;
    __m512d s = _mm512_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m512d g = _mm512_cvtps_pd(GapCT8(above, below, scale, tcb, d));
      const __m512d wd = _mm512_set1_pd(static_cast<double>(wf[d]));
      // Scalar association: s += ((double)wf[d] * g) * g.
      s = _mm512_add_pd(s, _mm512_mul_pd(_mm512_mul_pd(wd, g), g));
    }
    _mm512_storeu_pd(out + b * kTBlock,
                     _mm512_mul_pd(_mm512_sqrt_pd(s), slack));
  }
}

// --- Fused mask-filter kernels (kernels.h ctm_*) ---------------------------
//
// Same raw accumulators as the CT kernels above, minus the slack multiply,
// sqrt, and per-row store: one _mm512_cmp_pd_mask against the precomputed
// threshold collapses the 8-row block straight to its survivor byte. IEEE
// <= treats -0.0 == +0.0, so no canonicalization is needed and masks stay
// bitwise identical across tiers.

// The mask kernels may abandon a block once EVERY lane's accumulator
// exceeds the threshold: the sums are monotone non-decreasing (each step
// adds a non-negative term, and fl(s + x) >= s for x >= 0), so a dead
// block stays dead and writing 0 early is bitwise what full accumulation
// would produce. With pages spatially clustered, most blocks of a
// 99%-pruned scan die within the first checkpoint.

void CTML1Avx512(const float* above, const float* below, const float* scale,
                 size_t dim, const uint8_t* tcodes, size_t nblocks,
                 double threshold, uint8_t* masks) {
  const __m512d t = _mm512_set1_pd(threshold);
  for (size_t b = 0; b < nblocks; ++b) {
    const uint8_t* tcb = tcodes + b * dim * kTBlock;
    __m512d s = _mm512_setzero_pd();
    uint8_t m = 0;
    size_t d = 0;
    while (d < dim) {
      const size_t end = d + kAbandonBlock < dim ? d + kAbandonBlock : dim;
      for (; d < end; ++d) {
        s = _mm512_add_pd(
            s, _mm512_cvtps_pd(GapCT8(above, below, scale, tcb, d)));
      }
      m = static_cast<uint8_t>(_mm512_cmp_pd_mask(s, t, _CMP_LE_OQ));
      if (m == 0) break;
    }
    masks[b] = d == dim ? m : 0;
  }
}

void CTML2Avx512(const float* above, const float* below, const float* scale,
                 size_t dim, const uint8_t* tcodes, size_t nblocks,
                 double threshold, uint8_t* masks) {
  const __m512d t = _mm512_set1_pd(threshold);
  for (size_t b = 0; b < nblocks; ++b) {
    const uint8_t* tcb = tcodes + b * dim * kTBlock;
    __m512d s = _mm512_setzero_pd();
    uint8_t m = 0;
    size_t d = 0;
    while (d < dim) {
      const size_t end = d + kAbandonBlock < dim ? d + kAbandonBlock : dim;
      for (; d < end; ++d) {
        // Widen BEFORE squaring: the scalar reference squares in double.
        const __m512d g =
            _mm512_cvtps_pd(GapCT8(above, below, scale, tcb, d));
        s = _mm512_add_pd(s, _mm512_mul_pd(g, g));
      }
      m = static_cast<uint8_t>(_mm512_cmp_pd_mask(s, t, _CMP_LE_OQ));
      if (m == 0) break;
    }
    masks[b] = d == dim ? m : 0;
  }
}

void CTMLInfAvx512(const float* above, const float* below, const float* scale,
                   size_t dim, const uint8_t* tcodes, size_t nblocks,
                   double threshold, uint8_t* masks) {
  const __m512d t = _mm512_set1_pd(threshold);
  for (size_t b = 0; b < nblocks; ++b) {
    const uint8_t* tcb = tcodes + b * dim * kTBlock;
    __m256 m = _mm256_setzero_ps();
    uint8_t alive = 0;
    size_t d = 0;
    while (d < dim) {
      const size_t end = d + kAbandonBlock < dim ? d + kAbandonBlock : dim;
      for (; d < end; ++d) {
        m = _mm256_max_ps(m, GapCT8(above, below, scale, tcb, d));
      }
      alive = static_cast<uint8_t>(
          _mm512_cmp_pd_mask(_mm512_cvtps_pd(m), t, _CMP_LE_OQ));
      if (alive == 0) break;
    }
    masks[b] = d == dim ? alive : 0;
  }
}

void CTMWL2Avx512(const float* above, const float* below, const float* scale,
                  const float* wf, size_t dim, const uint8_t* tcodes,
                  size_t nblocks, double threshold, uint8_t* masks) {
  const __m512d t = _mm512_set1_pd(threshold);
  for (size_t b = 0; b < nblocks; ++b) {
    const uint8_t* tcb = tcodes + b * dim * kTBlock;
    __m512d s = _mm512_setzero_pd();
    uint8_t m = 0;
    size_t d = 0;
    while (d < dim) {
      const size_t end = d + kAbandonBlock < dim ? d + kAbandonBlock : dim;
      for (; d < end; ++d) {
        const __m512d g =
            _mm512_cvtps_pd(GapCT8(above, below, scale, tcb, d));
        const __m512d wd = _mm512_set1_pd(static_cast<double>(wf[d]));
        // Scalar association: s += ((double)wf[d] * g) * g.
        s = _mm512_add_pd(s, _mm512_mul_pd(_mm512_mul_pd(wd, g), g));
      }
      m = static_cast<uint8_t>(_mm512_cmp_pd_mask(s, t, _CMP_LE_OQ));
      if (m == 0) break;
    }
    masks[b] = d == dim ? m : 0;
  }
}

// Box predicates: 16 dimensions per masked compare; _CMP_LT_OQ/_CMP_GT_OQ
// never set a mask bit for NaN lanes, matching the scalar reference. The
// sub-16 tail is scalar (boxes are short; one pass, not a hot loop).
bool BoxIntersectsAvx512(const float* alo, const float* ahi, const float* blo,
                         const float* bhi, size_t dim) {
  size_t d = 0;
  for (; d + 16 <= dim; d += 16) {
    const __m512 al = _mm512_loadu_ps(alo + d);
    const __m512 ah = _mm512_loadu_ps(ahi + d);
    const __m512 bl = _mm512_loadu_ps(blo + d);
    const __m512 bh = _mm512_loadu_ps(bhi + d);
    const __mmask16 disjoint =
        _mm512_cmp_ps_mask(bh, al, _CMP_LT_OQ) |
        _mm512_cmp_ps_mask(bl, ah, _CMP_GT_OQ);
    if (disjoint != 0) return false;
  }
  for (; d < dim; ++d) {
    if (bhi[d] < alo[d] || blo[d] > ahi[d]) return false;
  }
  return true;
}

bool BoxContainsAvx512(const float* alo, const float* ahi, const float* blo,
                       const float* bhi, size_t dim) {
  size_t d = 0;
  for (; d + 16 <= dim; d += 16) {
    const __m512 al = _mm512_loadu_ps(alo + d);
    const __m512 ah = _mm512_loadu_ps(ahi + d);
    const __m512 bl = _mm512_loadu_ps(blo + d);
    const __m512 bh = _mm512_loadu_ps(bhi + d);
    const __mmask16 escapes = _mm512_cmp_ps_mask(bl, al, _CMP_LT_OQ) |
                              _mm512_cmp_ps_mask(bh, ah, _CMP_GT_OQ);
    if (escapes != 0) return false;
  }
  for (; d < dim; ++d) {
    if (blo[d] < alo[d] || bhi[d] > ahi[d]) return false;
  }
  return true;
}

}  // namespace

const KernelTable& Avx512Table() {
  static const KernelTable table = {
      SimdTier::kAvx512, &L1Avx512,      &L2Avx512,       &LInfAvx512,
      &WL2Avx512,        &CodeL1Avx512,  &CodeL2Avx512,   &CodeLInfAvx512,
      &CodeWL2Avx512,    &TL1Avx512,     &TL2Avx512,      &TLInfAvx512,
      &TWL2Avx512,       &CTL1Avx512,    &CTL2Avx512,     &CTLInfAvx512,
      &CTWL2Avx512,      &CTML1Avx512,   &CTML2Avx512,    &CTMLInfAvx512,
      &CTMWL2Avx512,     &BoxIntersectsAvx512,            &BoxContainsAvx512};
  return table;
}

}  // namespace ht::kernels

#endif  // HT_KERNELS_AVX512
