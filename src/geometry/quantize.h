// Copyright 2026 The HybridTree Authors.
// Conservative scalar quantization shared by ELS (§3.4) and the per-page
// 8-bit vector sidecars.
//
// One rule, used everywhere: round so the bound is never too tight. ELS
// rounds box boundaries outward (lo down, hi up) onto a 2^bits grid; the
// sidecar filter pads the decoded cell interval outward before measuring
// the gap to the query. Both make pruning decisions conservative, so a
// quantized bound can never drop a true result.

#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace ht::quant {

/// Grid cell of `v` on the 2^bits grid over [lo, hi], rounding DOWN — the
/// conservative choice for a lower boundary (and the cell *containing* v,
/// used by the sidecar codes). Degenerate intervals (hi <= lo) map to cell
/// 0. Result is in [0, 2^bits - 1].
inline uint32_t QuantizeLo(float v, float lo, float hi, uint32_t bits) {
  const uint32_t cells = 1u << bits;
  if (hi <= lo) return 0;
  double frac = (static_cast<double>(v) - lo) / (static_cast<double>(hi) - lo);
  double cell = std::floor(frac * cells);
  if (cell < 0) cell = 0;
  if (cell > cells - 1) cell = cells - 1;
  return static_cast<uint32_t>(cell);
}

/// Grid cell of `v`, rounding UP — conservative for an upper boundary.
/// Degenerate intervals map to cell 2^bits. Result is in [1, 2^bits].
inline uint32_t QuantizeHi(float v, float lo, float hi, uint32_t bits) {
  const uint32_t cells = 1u << bits;
  if (hi <= lo) return cells;
  double frac = (static_cast<double>(v) - lo) / (static_cast<double>(hi) - lo);
  double cell = std::ceil(frac * cells);
  if (cell < 1) cell = 1;
  if (cell > cells) cell = cells;
  return static_cast<uint32_t>(cell);
}

// --- Per-page 8-bit vector sidecar filter ----------------------------------
//
// A sidecar stores one byte per dimension per point of a data page:
// c_d = QuantizeLo(v_d, lo_d, hi_d, 8) on the page's live bounding region
// [lo_d, hi_d] — ELS's relative encoding applied one level down, to the
// points inside a page. The filter lower-bounds the distance from a query
// q to the original float v using only the codes:
//
//   In exact arithmetic v_d lies in the cell [lo_d + c_d w_d,
//   lo_d + (c_d+1) w_d] with w_d = (hi_d - lo_d)/256 (clamped cells cover
//   their side of the grid). Padding the cell by kCellPad cells on each
//   side absorbs the encoder's floating-point rounding with orders of
//   magnitude to spare, so with t_d = q_d - lo_d the per-dimension gap
//
//     gap_d = max(0, c_d w_d - above_d, below_d - c_d w_d)
//     above_d = t_d + kCellPad w_d + kQueryPad |t_d|
//     below_d = t_d - (1 + kCellPad) w_d - kQueryPad |t_d|
//
//   satisfies gap_d <= |q_d - v_d|, and any monotone metric of per-
//   dimension gaps lower-bounds the true distance.
//
// Error budget (why two pads and a slack, not one epsilon):
//  * kCellPad (2^-10 cells) covers every error proportional to the cell
//    width w_d: the encoder's double-precision rounding (~2^-43 cells) and
//    the float rounding of c_d * scale_d (<= 2^-15 cells).
//  * kQueryPad (2^-20, relative to |t_d|) covers the float rounding of
//    above_d / below_d themselves (<= 2^-23 |t_d|), which is NOT
//    proportional to w_d — on a near-degenerate dimension it would dwarf
//    any cell-relative pad.
//  * kLbSlack (multiplicative, applied to the final bound) covers the
//    remaining errors that are relative to the (already sound) gaps:
//    the gap subtraction's own rounding, squaring, the double-precision
//    accumulation, and the final sqrt.
// Degenerate dimensions (hi_d <= lo_d, all stored values equal lo_d) need
// no special case: codes are 0 and w_d = 0, so the formula above reduces
// to gap_d = max(0, |t_d| - kQueryPad |t_d|) <= |q_d - v_d|.
//
// The bounds are deliberately NOT bit-stable across SIMD tiers (horizontal
// reductions reassociate); only soundness is guaranteed. Refined results —
// the only values callers may emit — are bit-identical at every tier.

/// Sidecar code precision: one byte per dimension.
inline constexpr uint32_t kSidecarBits = 8;
inline constexpr double kSidecarCells = 256.0;

/// Cell-relative outward pad (in cells) on the decoded interval.
inline constexpr double kCellPad = 0x1p-10;

/// Query-offset-relative outward pad on the prep values.
inline constexpr double kQueryPad = 0x1p-20;

/// Multiplicative slack on the final lower bound: lb *= (1 - kLbSlack).
inline constexpr double kLbSlack = 1e-5;

/// Sidecar rows (and the prep arrays below) are padded to a multiple of
/// kDimPad dimensions so every SIMD tier consumes whole vectors with no
/// tail loop. Padding lanes are constructed to contribute exactly zero:
/// codes 0, scale 0, above 0, below -1 give gap = max(0, 0, -1) = 0.
inline constexpr size_t kDimPad = 16;

constexpr size_t PaddedDim(size_t dim) {
  return (dim + kDimPad - 1) / kDimPad * kDimPad;
}

/// Non-owning view of one page's sidecar, as consumed by the code-filter
/// kernels (kernels::KernelTable code_* entries via
/// DistanceMetric::CodeLowerBounds).
struct PageCodesView {
  const uint8_t* codes;  ///< count rows of stride bytes; 64-byte aligned
  size_t stride;         ///< bytes between rows; == PaddedDim(dim)
  size_t count;          ///< number of points
  uint32_t dim;          ///< feature-space dimensionality
  const float* grid_lo;  ///< page live BR, dim floats
  const float* grid_hi;  ///< page live BR, dim floats
  /// Transposed code mirror: kernels::kTBlock rows per block,
  /// dimension-major (tcodes[b*dim*8 + d*8 + lane]), unpadded, covering
  /// full_blocks * kTBlock rows. The row-parallel ct_* kernels consume it;
  /// the count % kTBlock tail rows go through the row-major codes above.
  const uint8_t* tcodes;
  size_t full_blocks;
};

/// Reusable per-query buffers for the code filter (lives in SearchScratch,
/// so steady-state filtered scans allocate nothing).
struct FilterScratch {
  std::vector<float> above;  ///< t_d + pads (PaddedDim floats)
  std::vector<float> below;  ///< t_d - w_d - pads
  std::vector<float> scale;  ///< w_d (codes multiply by this)
  std::vector<float> wf;     ///< per-dimension metric weights (WeightedL2)
};

/// Fills the prep arrays for one (query, page-grid) pair. O(dim); the
/// kernels then amortize it over every point of the page.
inline void PrepareFilter(const float* q, const float* grid_lo,
                          const float* grid_hi, uint32_t dim,
                          FilterScratch* s) {
  const size_t padded = PaddedDim(dim);
  if (s->above.size() < padded) {
    s->above.resize(padded);
    s->below.resize(padded);
    s->scale.resize(padded);
  }
  for (size_t d = 0; d < dim; ++d) {
    const double lo = grid_lo[d];
    const double w = (static_cast<double>(grid_hi[d]) - lo) / kSidecarCells;
    const double t = static_cast<double>(q[d]) - lo;
    const double pad = kCellPad * w + kQueryPad * std::fabs(t);
    s->above[d] = static_cast<float>(t + pad);
    s->below[d] = static_cast<float>(t - w - pad);
    s->scale[d] = static_cast<float>(w);
  }
  for (size_t d = dim; d < padded; ++d) {
    s->above[d] = 0.0f;
    s->below[d] = -1.0f;
    s->scale[d] = 0.0f;
  }
}

/// Survivor threshold for the fused mask kernels (kernels.h ctm_*), which
/// compare each row's RAW accumulator — the value before the final
/// (1 - kLbSlack) multiply, and before the sqrt for the squared metrics —
/// against a single precomputed double. Chosen so that the mask rule keeps
/// every row the `lb <= bound` rule keeps: the raw accumulator is computed
/// by the exact same sequence as the bound kernels', so undoing the slack
/// (and squaring, for L2-like metrics) with a couple of extra rounding
/// steps only needs a hair of upward inflation (1 + 2^-40, orders of
/// magnitude above the few-ulp error of this transform) to stay a sound
/// superset. Over-inclusion merely costs an exact refinement;
/// under-inclusion would drop a true result. Overflow to +infinity on
/// huge bounds keeps every row — also sound.
inline double FilterThreshold(double bound, bool squared) {
  constexpr double kUp = 1.0 + 0x1p-40;
  double t = bound / (1.0 - kLbSlack) * kUp;
  if (squared) t = t * t * kUp;
  return t;
}

/// Converts metric weights for the weighted code kernels (zero-padded).
inline void PrepareWeights(const double* w, uint32_t dim, FilterScratch* s) {
  const size_t padded = PaddedDim(dim);
  if (s->wf.size() < padded) s->wf.resize(padded);
  for (size_t d = 0; d < dim; ++d) s->wf[d] = static_cast<float>(w[d]);
  for (size_t d = dim; d < padded; ++d) s->wf[d] = 0.0f;
}

/// Encodes one vector against the page grid: one byte per dimension, the
/// containing cell (QuantizeLo). The filter pads the cell interval on both
/// sides, so floor is the right rounding for both boundaries here.
inline void EncodeSidecarRow(const float* v, const float* grid_lo,
                             const float* grid_hi, uint32_t dim,
                             uint8_t* out) {
  for (uint32_t d = 0; d < dim; ++d) {
    out[d] = static_cast<uint8_t>(
        QuantizeLo(v[d], grid_lo[d], grid_hi[d], kSidecarBits));
  }
}

}  // namespace ht::quant
