// Copyright 2026 The HybridTree Authors.
// Axis-aligned k-dimensional bounding boxes (the paper's BRs).

#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/macros.h"
#include "geometry/kernels/kernels.h"

namespace ht {

/// A k-dimensional axis-aligned box [lo[i], hi[i]] per dimension. Boxes are
/// closed intervals; a box with lo > hi in any dimension is "empty".
class Box {
 public:
  Box() = default;

  /// A box covering the whole normalized feature space [0,1]^dim (the paper
  /// assumes a normalized feature space, §3.2).
  static Box UnitCube(uint32_t dim) {
    Box b;
    b.lo_.assign(dim, 0.0f);
    b.hi_.assign(dim, 1.0f);
    return b;
  }

  /// The "empty" box (identity for ExtendToInclude).
  static Box Empty(uint32_t dim) {
    Box b;
    b.lo_.assign(dim, std::numeric_limits<float>::max());
    b.hi_.assign(dim, std::numeric_limits<float>::lowest());
    return b;
  }

  /// A degenerate box around a single point.
  static Box FromPoint(std::span<const float> p) {
    Box b;
    b.lo_.assign(p.begin(), p.end());
    b.hi_.assign(p.begin(), p.end());
    return b;
  }

  static Box FromBounds(std::vector<float> lo, std::vector<float> hi) {
    HT_DCHECK(lo.size() == hi.size());
    Box b;
    b.lo_ = std::move(lo);
    b.hi_ = std::move(hi);
    return b;
  }

  uint32_t dim() const { return static_cast<uint32_t>(lo_.size()); }
  float lo(uint32_t d) const { return lo_[d]; }
  float hi(uint32_t d) const { return hi_[d]; }
  void set_lo(uint32_t d, float v) { lo_[d] = v; }
  void set_hi(uint32_t d, float v) { hi_[d] = v; }
  std::span<const float> lo() const { return lo_; }
  std::span<const float> hi() const { return hi_; }

  bool IsEmpty() const {
    for (uint32_t d = 0; d < dim(); ++d) {
      if (lo_[d] > hi_[d]) return true;
    }
    return dim() == 0;
  }

  /// Extent (side length) along dimension d.
  float Extent(uint32_t d) const { return hi_[d] - lo_[d]; }

  /// The dimension with the largest extent — the paper's EDA-optimal data
  /// node split dimension (§3.2).
  uint32_t MaxExtentDim() const {
    uint32_t best = 0;
    float best_e = Extent(0);
    for (uint32_t d = 1; d < dim(); ++d) {
      if (Extent(d) > best_e) {
        best_e = Extent(d);
        best = d;
      }
    }
    return best;
  }

  bool ContainsPoint(std::span<const float> p) const {
    for (uint32_t d = 0; d < dim(); ++d) {
      if (p[d] < lo_[d] || p[d] > hi_[d]) return false;
    }
    return true;
  }

  /// Both predicates dispatch through the runtime-selected SIMD tier
  /// (kernels::Active()); every tier is boolean-identical to the scalar
  /// per-dimension loop, NaN bounds included (batch_kernel_test sweeps
  /// this). The directory-node overlap test in range/kNN descent is the
  /// hot caller.
  bool ContainsBox(const Box& o) const {
    return kernels::Active().box_contains(lo_.data(), hi_.data(),
                                          o.lo_.data(), o.hi_.data(),
                                          lo_.size());
  }

  bool Intersects(const Box& o) const {
    return kernels::Active().box_intersects(lo_.data(), hi_.data(),
                                            o.lo_.data(), o.hi_.data(),
                                            lo_.size());
  }

  /// Geometric intersection (may be empty).
  Box Intersection(const Box& o) const {
    Box b = *this;
    for (uint32_t d = 0; d < dim(); ++d) {
      if (o.lo_[d] > b.lo_[d]) b.lo_[d] = o.lo_[d];
      if (o.hi_[d] < b.hi_[d]) b.hi_[d] = o.hi_[d];
    }
    return b;
  }

  /// Grows this box to include point p.
  void ExtendToInclude(std::span<const float> p) {
    for (uint32_t d = 0; d < dim(); ++d) {
      if (p[d] < lo_[d]) lo_[d] = p[d];
      if (p[d] > hi_[d]) hi_[d] = p[d];
    }
  }

  /// Grows this box to include box o.
  void ExtendToInclude(const Box& o) {
    for (uint32_t d = 0; d < dim(); ++d) {
      if (o.lo_[d] < lo_[d]) lo_[d] = o.lo_[d];
      if (o.hi_[d] > hi_[d]) hi_[d] = o.hi_[d];
    }
  }

  /// Volume. Uses double accumulation; high-dimensional volumes underflow
  /// gracefully toward 0, which is acceptable for tie-breaking uses.
  double Volume() const {
    double v = 1.0;
    for (uint32_t d = 0; d < dim(); ++d) {
      float e = Extent(d);
      if (e < 0) return 0.0;
      v *= static_cast<double>(e);
    }
    return v;
  }

  /// Sum of side lengths (the R*-tree "margin").
  double Margin() const {
    double m = 0.0;
    for (uint32_t d = 0; d < dim(); ++d) m += Extent(d);
    return m;
  }

  /// Volume of the overlap with `o` (0 if disjoint).
  double OverlapVolume(const Box& o) const {
    double v = 1.0;
    for (uint32_t d = 0; d < dim(); ++d) {
      float l = lo_[d] > o.lo_[d] ? lo_[d] : o.lo_[d];
      float h = hi_[d] < o.hi_[d] ? hi_[d] : o.hi_[d];
      if (h <= l) return 0.0;
      v *= static_cast<double>(h - l);
    }
    return v;
  }

  /// Increase in volume needed to include p (DP-tree ChooseSubtree cost).
  double EnlargementForPoint(std::span<const float> p) const {
    double before = Volume();
    Box b = *this;
    b.ExtendToInclude(p);
    return b.Volume() - before;
  }

  /// The probability that a uniformly-placed box query with side `r`
  /// overlaps this box inside the unit data space: the Minkowski sum volume
  /// prod_d (extent_d + r), clipped to [0,1] per factor (§3.2 of the paper;
  /// the clip accounts for the BR+query exceeding the data space).
  double MinkowskiOverlapProb(double r) const {
    double v = 1.0;
    for (uint32_t d = 0; d < dim(); ++d) {
      double f = static_cast<double>(Extent(d)) + r;
      if (f > 1.0) f = 1.0;
      v *= f;
    }
    return v;
  }

  bool operator==(const Box& o) const { return lo_ == o.lo_ && hi_ == o.hi_; }

  std::string ToString() const;

 private:
  std::vector<float> lo_;
  std::vector<float> hi_;
};

}  // namespace ht
