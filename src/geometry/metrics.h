// Copyright 2026 The HybridTree Authors.
// Distance metrics for distance-based queries (§3.5).
//
// The hybrid tree is a *feature-based* index: the partitioning is
// independent of the distance function, so the metric can be chosen per
// query — including between iterations of a relevance-feedback loop (the
// MARS use case the paper motivates). A metric must supply the
// point-to-point distance and a lower bound on the distance from a point to
// any point inside a box (MINDIST), which drives branch-and-bound pruning.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/macros.h"
#include "geometry/box.h"
#include "geometry/kernels/kernels.h"
#include "geometry/quantize.h"

namespace ht {

/// Abstract distance function. Implementations must be symmetric and
/// non-negative; MinDistToBox must never exceed the true minimum distance
/// (otherwise pruning would drop results).
class DistanceMetric {
 public:
  virtual ~DistanceMetric() = default;

  virtual double Distance(std::span<const float> a,
                          std::span<const float> b) const = 0;

  /// Lower bound on Distance(q, x) over all x in `box`.
  virtual double MinDistToBox(std::span<const float> q,
                              const Box& box) const = 0;

  /// Lower bound on Distance(q, x) over all x in the *Euclidean* ball
  /// B(center, radius) — the bounding-sphere component of SR-tree regions.
  /// The default (0) disables sphere pruning, which is always sound.
  virtual double MinDistToSphere(std::span<const float> q,
                                 std::span<const float> center,
                                 double radius) const {
    (void)q;
    (void)center;
    (void)radius;
    return 0.0;
  }

  // --- Batched distance kernels (query hot path) ---------------------------
  //
  // `pts` is a row-major block of `n` rows of q.size() host-order floats
  // with `stride` floats between consecutive row starts — exactly the float
  // payload of a serialized data page (see DataPageScan::block()). One
  // virtual dispatch covers the whole page; inside, the loop runs over raw
  // pointers and auto-vectorizes.
  //
  // Contract: out[i] must be bit-identical to Distance(q, row_i). Batch
  // kernels are an execution strategy, never an approximation. The default
  // implementation loops over rows calling the virtual Distance() — sound
  // for every metric, and the scalar baseline bench_hotpath measures.
  virtual void BatchDistance(std::span<const float> q, const float* pts,
                             size_t stride, size_t n, double* out) const {
    for (size_t i = 0; i < n; ++i) {
      out[i] = Distance(q, std::span<const float>(pts + i * stride, q.size()));
    }
  }

  /// Early-abandoning variant. `bound` (>= 0, may be +infinity or
  /// numeric_limits<double>::max()) is the caller's current pruning
  /// threshold — a query radius or the k-th candidate distance. For every
  /// row whose true distance is <= bound, out[i] is the exact,
  /// bit-identical distance; a row whose distance exceeds bound may be
  /// abandoned mid-accumulation, in which case out[i] is any value > bound
  /// (specialized kernels write +infinity). Callers must therefore only
  /// ever test out[i] <= bound — never consume an above-bound value as a
  /// distance. Outputs are NaN-free for NaN-free inputs. The default never
  /// abandons (always sound).
  virtual void BatchDistanceWithBound(std::span<const float> q,
                                      const float* pts, size_t stride,
                                      size_t n, double bound,
                                      double* out) const {
    (void)bound;
    BatchDistance(q, pts, stride, n, out);
  }

  /// BatchDistanceWithBound over a sidecar's transposed float mirror
  /// (kernels.h kTBlock layout): fills out[0 .. nblocks * kTBlock) and
  /// returns true. The mirror holds the page's exact float values, so the
  /// results are bit-identical to the strided kernels — the SIMD tiers
  /// just get contiguous aligned loads instead of per-row gathers.
  /// Returns false when the metric has no transposed kernel (the caller
  /// then uses the strided path); the caller also covers the
  /// count % kTBlock tail rows itself.
  virtual bool BatchDistanceTransposedWithBound(std::span<const float> q,
                                                const float* t,
                                                size_t nblocks, double bound,
                                                double* out) const {
    (void)q;
    (void)t;
    (void)nblocks;
    (void)bound;
    (void)out;
    return false;
  }

  /// Sound lower bounds from a page's 8-bit quantized sidecar: fills
  /// out[i] <= Distance(q, v_i) for every row, where v_i is the original
  /// float vector page.codes row i was built from, and returns true.
  /// Returns false when the metric has no code kernel (the caller then
  /// scans the full floats — always sound). Bounds are NOT bit-stable
  /// across SIMD dispatch tiers — only refined distances are — so callers
  /// must only ever compare out[i] against a pruning bound, never emit it.
  virtual bool CodeLowerBounds(std::span<const float> q,
                               const quant::PageCodesView& page,
                               quant::FilterScratch* scratch,
                               double* out) const {
    (void)q;
    (void)page;
    (void)scratch;
    (void)out;
    return false;
  }

  /// Fused form of CodeLowerBounds for the pruning fast path: writes one
  /// survivor bit per row into `masks` (bit i of masks[b] covers row
  /// b * kernels::kTBlock + i; ceil(count / kTBlock) bytes, unused tail
  /// bits zero) instead of materializing bounds. A set bit means the row's
  /// code bound does not exceed `bound` (modulo the hair of upward slack in
  /// quant::FilterThreshold — extra survivors are sound, they just get
  /// refined exactly); a clear bit proves the row's true distance exceeds
  /// `bound`. Returns false when the metric has no mask kernel (caller
  /// falls back to CodeLowerBounds). Masks ARE bitwise identical across
  /// SIMD dispatch tiers (see kernels.h CodeMaskTFn).
  virtual bool CodeFilterMasks(std::span<const float> q,
                               const quant::PageCodesView& page, double bound,
                               quant::FilterScratch* scratch,
                               uint8_t* masks) const {
    (void)q;
    (void)page;
    (void)bound;
    (void)scratch;
    (void)masks;
    return false;
  }

  /// True when the metric implements the code-space machinery
  /// (CodeLowerBounds / CodeFilterMasks and the transposed mirror kernel).
  /// The default matches the base-class fallbacks above: no code-space
  /// bound exists, so QuantFilter must not even BUILD the 8-bit sidecar —
  /// it would only cache pages the metric can never filter with. The
  /// kernel-backed metrics override this to true.
  virtual bool SupportsCodeFilter() const { return false; }

  virtual std::string Name() const = 0;
};

namespace metric_detail {
inline double EuclideanDistance(std::span<const float> a,
                                std::span<const float> b) {
  double s = 0.0;
  for (size_t d = 0; d < a.size(); ++d) {
    const double diff = static_cast<double>(a[d]) - b[d];
    s += diff * diff;
  }
  return std::sqrt(s);
}

// The early-abandon checkpoint constants moved to geometry/kernels/kernels.h
// (the dispatch tiers replicate the same schedule); aliased here for the
// existing metric_detail:: spellings.
using kernels::AbandonSquare;
using kernels::kAbandonBlock;
}  // namespace metric_detail

namespace metric_detail {
/// Survivor bits for the count % kTBlock tail rows of a mask filter, from
/// row-major code bounds: the tail is at most kTBlock - 1 rows, so the
/// plain lb <= bound rule costs nothing and needs no threshold transform.
inline uint8_t TailMask(const double* lb, size_t n, double bound) {
  uint8_t m = 0;
  for (size_t i = 0; i < n; ++i) {
    if (lb[i] <= bound) m |= static_cast<uint8_t>(1u << i);
  }
  return m;
}
}  // namespace metric_detail

namespace metric_detail {
/// Per-dimension gap between q[d] and the interval [lo,hi]; 0 if inside.
inline double AxisGap(double q, double lo, double hi) {
  if (q < lo) return lo - q;
  if (q > hi) return q - hi;
  return 0.0;
}
}  // namespace metric_detail

/// Minkowski L_p metric for finite p >= 1. Specialized subclasses exist for
/// the common p = 1 and p = 2 cases (avoiding pow in the inner loop).
class LpMetric : public DistanceMetric {
 public:
  explicit LpMetric(double p) : p_(p) { HT_CHECK(p >= 1.0); }

  double Distance(std::span<const float> a,
                  std::span<const float> b) const override {
    double s = 0.0;
    for (size_t d = 0; d < a.size(); ++d) {
      s += std::pow(std::fabs(static_cast<double>(a[d]) - b[d]), p_);
    }
    return std::pow(s, 1.0 / p_);
  }

  double MinDistToBox(std::span<const float> q,
                      const Box& box) const override {
    double s = 0.0;
    for (uint32_t d = 0; d < box.dim(); ++d) {
      double g = metric_detail::AxisGap(q[d], box.lo(d), box.hi(d));
      if (g > 0.0) s += std::pow(g, p_);
    }
    return std::pow(s, 1.0 / p_);
  }

  std::string Name() const override {
    // %g trims trailing zeros: "L2" for p = 2.0, "L2.5" for p = 2.5
    // (std::to_string would print "L2.000000").
    char buf[32];
    std::snprintf(buf, sizeof(buf), "L%g", p_);
    return buf;
  }

  double p() const { return p_; }

 private:
  double p_;
};

/// Manhattan distance — the metric the paper uses for its distance-based
/// query experiments (Figure 7(c),(d), following [18]).
class L1Metric final : public DistanceMetric {
 public:
  double Distance(std::span<const float> a,
                  std::span<const float> b) const override {
    double s = 0.0;
    for (size_t d = 0; d < a.size(); ++d) {
      s += std::fabs(static_cast<double>(a[d]) - b[d]);
    }
    return s;
  }
  double MinDistToBox(std::span<const float> q,
                      const Box& box) const override {
    double s = 0.0;
    for (uint32_t d = 0; d < box.dim(); ++d) {
      s += metric_detail::AxisGap(q[d], box.lo(d), box.hi(d));
    }
    return s;
  }
  double MinDistToSphere(std::span<const float> q,
                         std::span<const float> center,
                         double radius) const override {
    // ||x||_1 >= ||x||_2, so the Euclidean gap lower-bounds the L1 gap.
    return std::max(0.0, metric_detail::EuclideanDistance(q, center) - radius);
  }
  // Batch kernels dispatch to the active SIMD tier (scalar / AVX2 /
  // AVX-512; see geometry/kernels/kernels.h). The unbounded variant is the
  // bounded kernel at bound = +infinity: the abandon checkpoints never
  // fire, so every row gets the exact, bit-identical distance.
  void BatchDistance(std::span<const float> q, const float* pts, size_t stride,
                     size_t n, double* out) const override {
    kernels::Active().l1(q.data(), q.size(), pts, stride, n,
                         std::numeric_limits<double>::infinity(), out);
  }
  void BatchDistanceWithBound(std::span<const float> q, const float* pts,
                              size_t stride, size_t n, double bound,
                              double* out) const override {
    // L1 accumulates the distance itself, so the partial sum compares
    // against the bound directly (monotone: abandoning is exact).
    kernels::Active().l1(q.data(), q.size(), pts, stride, n, bound, out);
  }
  bool BatchDistanceTransposedWithBound(std::span<const float> q,
                                        const float* t, size_t nblocks,
                                        double bound,
                                        double* out) const override {
    kernels::Active().tl1(q.data(), q.size(), t, nblocks, bound, out);
    return true;
  }
  bool CodeLowerBounds(std::span<const float> q,
                       const quant::PageCodesView& page,
                       quant::FilterScratch* scratch,
                       double* out) const override {
    quant::PrepareFilter(q.data(), page.grid_lo, page.grid_hi, page.dim,
                         scratch);
    const kernels::KernelTable& t = kernels::Active();
    // Full 8-row blocks go through the row-parallel transposed-code
    // kernel; the tail rows through the row-major one.
    const size_t done = page.full_blocks * kernels::kTBlock;
    if (done > 0) {
      t.ct_l1(scratch->above.data(), scratch->below.data(),
              scratch->scale.data(), page.dim, page.tcodes, page.full_blocks,
              out);
    }
    if (done < page.count) {
      t.code_l1(scratch->above.data(), scratch->below.data(),
                scratch->scale.data(), page.stride,
                page.codes + done * page.stride, page.count - done,
                out + done);
    }
    return true;
  }
  bool CodeFilterMasks(std::span<const float> q,
                       const quant::PageCodesView& page, double bound,
                       quant::FilterScratch* scratch,
                       uint8_t* masks) const override {
    quant::PrepareFilter(q.data(), page.grid_lo, page.grid_hi, page.dim,
                         scratch);
    const kernels::KernelTable& t = kernels::Active();
    if (page.full_blocks > 0) {
      t.ctm_l1(scratch->above.data(), scratch->below.data(),
               scratch->scale.data(), page.dim, page.tcodes, page.full_blocks,
               quant::FilterThreshold(bound, /*squared=*/false), masks);
    }
    const size_t done = page.full_blocks * kernels::kTBlock;
    if (done < page.count) {
      double lb[kernels::kTBlock];
      t.code_l1(scratch->above.data(), scratch->below.data(),
                scratch->scale.data(), page.stride,
                page.codes + done * page.stride, page.count - done, lb);
      masks[page.full_blocks] =
          metric_detail::TailMask(lb, page.count - done, bound);
    }
    return true;
  }
  bool SupportsCodeFilter() const override { return true; }
  std::string Name() const override { return "L1"; }
};

/// Euclidean distance.
class L2Metric final : public DistanceMetric {
 public:
  double Distance(std::span<const float> a,
                  std::span<const float> b) const override {
    double s = 0.0;
    for (size_t d = 0; d < a.size(); ++d) {
      double diff = static_cast<double>(a[d]) - b[d];
      s += diff * diff;
    }
    return std::sqrt(s);
  }
  double MinDistToBox(std::span<const float> q,
                      const Box& box) const override {
    double s = 0.0;
    for (uint32_t d = 0; d < box.dim(); ++d) {
      double g = metric_detail::AxisGap(q[d], box.lo(d), box.hi(d));
      s += g * g;
    }
    return std::sqrt(s);
  }
  double MinDistToSphere(std::span<const float> q,
                         std::span<const float> center,
                         double radius) const override {
    return std::max(0.0, metric_detail::EuclideanDistance(q, center) - radius);
  }
  // See L1Metric: batch kernels dispatch to the active SIMD tier.
  void BatchDistance(std::span<const float> q, const float* pts, size_t stride,
                     size_t n, double* out) const override {
    kernels::Active().l2(q.data(), q.size(), pts, stride, n,
                         std::numeric_limits<double>::infinity(), out);
  }
  void BatchDistanceWithBound(std::span<const float> q, const float* pts,
                              size_t stride, size_t n, double bound,
                              double* out) const override {
    kernels::Active().l2(q.data(), q.size(), pts, stride, n, bound, out);
  }
  bool BatchDistanceTransposedWithBound(std::span<const float> q,
                                        const float* t, size_t nblocks,
                                        double bound,
                                        double* out) const override {
    kernels::Active().tl2(q.data(), q.size(), t, nblocks, bound, out);
    return true;
  }
  bool CodeLowerBounds(std::span<const float> q,
                       const quant::PageCodesView& page,
                       quant::FilterScratch* scratch,
                       double* out) const override {
    quant::PrepareFilter(q.data(), page.grid_lo, page.grid_hi, page.dim,
                         scratch);
    const kernels::KernelTable& t = kernels::Active();
    const size_t done = page.full_blocks * kernels::kTBlock;
    if (done > 0) {
      t.ct_l2(scratch->above.data(), scratch->below.data(),
              scratch->scale.data(), page.dim, page.tcodes, page.full_blocks,
              out);
    }
    if (done < page.count) {
      t.code_l2(scratch->above.data(), scratch->below.data(),
                scratch->scale.data(), page.stride,
                page.codes + done * page.stride, page.count - done,
                out + done);
    }
    return true;
  }
  bool CodeFilterMasks(std::span<const float> q,
                       const quant::PageCodesView& page, double bound,
                       quant::FilterScratch* scratch,
                       uint8_t* masks) const override {
    quant::PrepareFilter(q.data(), page.grid_lo, page.grid_hi, page.dim,
                         scratch);
    const kernels::KernelTable& t = kernels::Active();
    if (page.full_blocks > 0) {
      t.ctm_l2(scratch->above.data(), scratch->below.data(),
               scratch->scale.data(), page.dim, page.tcodes, page.full_blocks,
               quant::FilterThreshold(bound, /*squared=*/true), masks);
    }
    const size_t done = page.full_blocks * kernels::kTBlock;
    if (done < page.count) {
      double lb[kernels::kTBlock];
      t.code_l2(scratch->above.data(), scratch->below.data(),
                scratch->scale.data(), page.stride,
                page.codes + done * page.stride, page.count - done, lb);
      masks[page.full_blocks] =
          metric_detail::TailMask(lb, page.count - done, bound);
    }
    return true;
  }
  bool SupportsCodeFilter() const override { return true; }
  std::string Name() const override { return "L2"; }
};

/// Chebyshev distance.
class LInfMetric final : public DistanceMetric {
 public:
  double Distance(std::span<const float> a,
                  std::span<const float> b) const override {
    double m = 0.0;
    for (size_t d = 0; d < a.size(); ++d) {
      double diff = std::fabs(static_cast<double>(a[d]) - b[d]);
      if (diff > m) m = diff;
    }
    return m;
  }
  double MinDistToBox(std::span<const float> q,
                      const Box& box) const override {
    double m = 0.0;
    for (uint32_t d = 0; d < box.dim(); ++d) {
      double g = metric_detail::AxisGap(q[d], box.lo(d), box.hi(d));
      if (g > m) m = g;
    }
    return m;
  }
  double MinDistToSphere(std::span<const float> q,
                         std::span<const float> center,
                         double radius) const override {
    // ||x||_inf >= ||x||_2 / sqrt(d).
    const double d2 = metric_detail::EuclideanDistance(q, center);
    return std::max(0.0, (d2 - radius) /
                             std::sqrt(static_cast<double>(q.size())));
  }
  // See L1Metric: batch kernels dispatch to the active SIMD tier.
  void BatchDistance(std::span<const float> q, const float* pts, size_t stride,
                     size_t n, double* out) const override {
    kernels::Active().linf(q.data(), q.size(), pts, stride, n,
                           std::numeric_limits<double>::infinity(), out);
  }
  void BatchDistanceWithBound(std::span<const float> q, const float* pts,
                              size_t stride, size_t n, double bound,
                              double* out) const override {
    // The running max is the distance so far; exceeding the bound once is
    // final (max is monotone), so abandoning is exact.
    kernels::Active().linf(q.data(), q.size(), pts, stride, n, bound, out);
  }
  bool BatchDistanceTransposedWithBound(std::span<const float> q,
                                        const float* t, size_t nblocks,
                                        double bound,
                                        double* out) const override {
    kernels::Active().tlinf(q.data(), q.size(), t, nblocks, bound, out);
    return true;
  }
  bool CodeLowerBounds(std::span<const float> q,
                       const quant::PageCodesView& page,
                       quant::FilterScratch* scratch,
                       double* out) const override {
    quant::PrepareFilter(q.data(), page.grid_lo, page.grid_hi, page.dim,
                         scratch);
    const kernels::KernelTable& t = kernels::Active();
    const size_t done = page.full_blocks * kernels::kTBlock;
    if (done > 0) {
      t.ct_linf(scratch->above.data(), scratch->below.data(),
                scratch->scale.data(), page.dim, page.tcodes,
                page.full_blocks, out);
    }
    if (done < page.count) {
      t.code_linf(scratch->above.data(), scratch->below.data(),
                  scratch->scale.data(), page.stride,
                  page.codes + done * page.stride, page.count - done,
                  out + done);
    }
    return true;
  }
  bool CodeFilterMasks(std::span<const float> q,
                       const quant::PageCodesView& page, double bound,
                       quant::FilterScratch* scratch,
                       uint8_t* masks) const override {
    quant::PrepareFilter(q.data(), page.grid_lo, page.grid_hi, page.dim,
                         scratch);
    const kernels::KernelTable& t = kernels::Active();
    if (page.full_blocks > 0) {
      t.ctm_linf(scratch->above.data(), scratch->below.data(),
                 scratch->scale.data(), page.dim, page.tcodes,
                 page.full_blocks,
                 quant::FilterThreshold(bound, /*squared=*/false), masks);
    }
    const size_t done = page.full_blocks * kernels::kTBlock;
    if (done < page.count) {
      double lb[kernels::kTBlock];
      t.code_linf(scratch->above.data(), scratch->below.data(),
                  scratch->scale.data(), page.stride,
                  page.codes + done * page.stride, page.count - done, lb);
      masks[page.full_blocks] =
          metric_detail::TailMask(lb, page.count - done, bound);
    }
    return true;
  }
  bool SupportsCodeFilter() const override { return true; }
  std::string Name() const override { return "Linf"; }
};

/// Weighted Euclidean distance: sqrt(sum_d w_d (a_d - b_d)^2), w_d >= 0.
/// The relevance-feedback example re-weights dimensions between iterations
/// of the same query — the arbitrary-distance-function capability the paper
/// highlights over distance-based indexes (SS-tree, M-tree).
class WeightedL2Metric final : public DistanceMetric {
 public:
  explicit WeightedL2Metric(std::vector<double> weights)
      : w_(std::move(weights)) {
    double min_w = std::numeric_limits<double>::max();
    for (double w : w_) {
      HT_CHECK(w >= 0.0);
      min_w = std::min(min_w, w);
    }
    sqrt_min_w_ = std::sqrt(min_w);
  }

  double Distance(std::span<const float> a,
                  std::span<const float> b) const override {
    double s = 0.0;
    for (size_t d = 0; d < a.size(); ++d) {
      double diff = static_cast<double>(a[d]) - b[d];
      s += w_[d] * diff * diff;
    }
    return std::sqrt(s);
  }
  double MinDistToBox(std::span<const float> q,
                      const Box& box) const override {
    double s = 0.0;
    for (uint32_t d = 0; d < box.dim(); ++d) {
      double g = metric_detail::AxisGap(q[d], box.lo(d), box.hi(d));
      s += w_[d] * g * g;
    }
    return std::sqrt(s);
  }
  double MinDistToSphere(std::span<const float> q,
                         std::span<const float> center,
                         double radius) const override {
    // d_w(q,x) >= sqrt(min_d w_d) * ||q - x||_2. sqrt(min_w) is fixed for
    // the life of the metric, so it is computed once in the constructor.
    const double d2 = metric_detail::EuclideanDistance(q, center);
    return sqrt_min_w_ * std::max(0.0, d2 - radius);
  }
  // See L1Metric: batch kernels dispatch to the active SIMD tier.
  void BatchDistance(std::span<const float> q, const float* pts, size_t stride,
                     size_t n, double* out) const override {
    kernels::Active().wl2(q.data(), w_.data(), q.size(), pts, stride, n,
                          std::numeric_limits<double>::infinity(), out);
  }
  void BatchDistanceWithBound(std::span<const float> q, const float* pts,
                              size_t stride, size_t n, double bound,
                              double* out) const override {
    kernels::Active().wl2(q.data(), w_.data(), q.size(), pts, stride, n,
                          bound, out);
  }
  bool BatchDistanceTransposedWithBound(std::span<const float> q,
                                        const float* t, size_t nblocks,
                                        double bound,
                                        double* out) const override {
    kernels::Active().twl2(q.data(), w_.data(), q.size(), t, nblocks, bound,
                           out);
    return true;
  }
  bool CodeLowerBounds(std::span<const float> q,
                       const quant::PageCodesView& page,
                       quant::FilterScratch* scratch,
                       double* out) const override {
    quant::PrepareFilter(q.data(), page.grid_lo, page.grid_hi, page.dim,
                         scratch);
    quant::PrepareWeights(w_.data(), page.dim, scratch);
    const kernels::KernelTable& t = kernels::Active();
    const size_t done = page.full_blocks * kernels::kTBlock;
    if (done > 0) {
      t.ct_wl2(scratch->above.data(), scratch->below.data(),
               scratch->scale.data(), scratch->wf.data(), page.dim,
               page.tcodes, page.full_blocks, out);
    }
    if (done < page.count) {
      t.code_wl2(scratch->above.data(), scratch->below.data(),
                 scratch->scale.data(), scratch->wf.data(), page.stride,
                 page.codes + done * page.stride, page.count - done,
                 out + done);
    }
    return true;
  }
  bool CodeFilterMasks(std::span<const float> q,
                       const quant::PageCodesView& page, double bound,
                       quant::FilterScratch* scratch,
                       uint8_t* masks) const override {
    quant::PrepareFilter(q.data(), page.grid_lo, page.grid_hi, page.dim,
                         scratch);
    quant::PrepareWeights(w_.data(), page.dim, scratch);
    const kernels::KernelTable& t = kernels::Active();
    if (page.full_blocks > 0) {
      t.ctm_wl2(scratch->above.data(), scratch->below.data(),
                scratch->scale.data(), scratch->wf.data(), page.dim,
                page.tcodes, page.full_blocks,
                quant::FilterThreshold(bound, /*squared=*/true), masks);
    }
    const size_t done = page.full_blocks * kernels::kTBlock;
    if (done < page.count) {
      double lb[kernels::kTBlock];
      t.code_wl2(scratch->above.data(), scratch->below.data(),
                 scratch->scale.data(), scratch->wf.data(), page.stride,
                 page.codes + done * page.stride, page.count - done, lb);
      masks[page.full_blocks] =
          metric_detail::TailMask(lb, page.count - done, bound);
    }
    return true;
  }
  bool SupportsCodeFilter() const override { return true; }
  std::string Name() const override { return "WeightedL2"; }

  const std::vector<double>& weights() const { return w_; }

 private:
  std::vector<double> w_;
  double sqrt_min_w_ = 0.0;
};

/// Generalized ellipsoid (quadratic-form) distance
/// d(a,b) = sqrt((a-b)^T W (a-b)) for a symmetric positive semi-definite
/// matrix W — the full MindReader/MARS relevance-feedback metric the paper
/// cites ([13], [21]): cross-dimension correlations learned from feedback
/// become off-diagonal entries of W. Feature-based indexes answer it on
/// the same tree; distance-based ones cannot.
///
/// MINDIST lower bounds use d_W(x,y) >= sqrt(lambda_min(W)) * ||x-y||_2
/// with lambda_min bounded from below (cheaply, conservatively) by the
/// Gershgorin circle theorem: lambda_min >= min_i(W_ii - sum_{j!=i}|W_ij|),
/// clamped at 0. A zero bound disables box/sphere pruning but never
/// affects correctness.
class QuadraticFormMetric final : public DistanceMetric {
 public:
  /// `matrix` is row-major dim x dim; it must be symmetric PSD (checked
  /// only for symmetry; PSD is the caller's contract as with [13]).
  QuadraticFormMetric(uint32_t dim, std::vector<double> matrix)
      : dim_(dim), w_(std::move(matrix)) {
    HT_CHECK(w_.size() == static_cast<size_t>(dim_) * dim_);
    double lo = std::numeric_limits<double>::max();
    for (uint32_t i = 0; i < dim_; ++i) {
      HT_CHECK(w_[i * dim_ + i] >= 0.0);
      double off = 0.0;
      for (uint32_t j = 0; j < dim_; ++j) {
        HT_CHECK(std::fabs(w_[i * dim_ + j] - w_[j * dim_ + i]) < 1e-9);
        if (j != i) off += std::fabs(w_[i * dim_ + j]);
      }
      lo = std::min(lo, w_[i * dim_ + i] - off);
    }
    sqrt_lambda_min_ = std::sqrt(std::max(0.0, lo));
  }

  double Distance(std::span<const float> a,
                  std::span<const float> b) const override {
    double s = 0.0;
    for (uint32_t i = 0; i < dim_; ++i) {
      const double di = static_cast<double>(a[i]) - b[i];
      const double* row = &w_[static_cast<size_t>(i) * dim_];
      double acc = 0.0;
      for (uint32_t j = 0; j < dim_; ++j) {
        acc += row[j] * (static_cast<double>(a[j]) - b[j]);
      }
      s += di * acc;
    }
    return std::sqrt(std::max(0.0, s));
  }

  double MinDistToBox(std::span<const float> q,
                      const Box& box) const override {
    if (sqrt_lambda_min_ == 0.0) return 0.0;
    double s = 0.0;
    for (uint32_t d = 0; d < box.dim(); ++d) {
      const double g = metric_detail::AxisGap(q[d], box.lo(d), box.hi(d));
      s += g * g;
    }
    return sqrt_lambda_min_ * std::sqrt(s);
  }

  double MinDistToSphere(std::span<const float> q,
                         std::span<const float> center,
                         double radius) const override {
    const double d2 = metric_detail::EuclideanDistance(q, center);
    return sqrt_lambda_min_ * std::max(0.0, d2 - radius);
  }

  std::string Name() const override { return "QuadraticForm"; }

  /// The Gershgorin lower bound actually used for pruning (tests).
  double sqrt_lambda_min() const { return sqrt_lambda_min_; }

 private:
  uint32_t dim_;
  std::vector<double> w_;
  double sqrt_lambda_min_ = 0.0;
};

}  // namespace ht
