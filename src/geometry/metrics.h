// Copyright 2026 The HybridTree Authors.
// Distance metrics for distance-based queries (§3.5).
//
// The hybrid tree is a *feature-based* index: the partitioning is
// independent of the distance function, so the metric can be chosen per
// query — including between iterations of a relevance-feedback loop (the
// MARS use case the paper motivates). A metric must supply the
// point-to-point distance and a lower bound on the distance from a point to
// any point inside a box (MINDIST), which drives branch-and-bound pruning.

#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/macros.h"
#include "geometry/box.h"

namespace ht {

/// Abstract distance function. Implementations must be symmetric and
/// non-negative; MinDistToBox must never exceed the true minimum distance
/// (otherwise pruning would drop results).
class DistanceMetric {
 public:
  virtual ~DistanceMetric() = default;

  virtual double Distance(std::span<const float> a,
                          std::span<const float> b) const = 0;

  /// Lower bound on Distance(q, x) over all x in `box`.
  virtual double MinDistToBox(std::span<const float> q,
                              const Box& box) const = 0;

  /// Lower bound on Distance(q, x) over all x in the *Euclidean* ball
  /// B(center, radius) — the bounding-sphere component of SR-tree regions.
  /// The default (0) disables sphere pruning, which is always sound.
  virtual double MinDistToSphere(std::span<const float> q,
                                 std::span<const float> center,
                                 double radius) const {
    (void)q;
    (void)center;
    (void)radius;
    return 0.0;
  }

  virtual std::string Name() const = 0;
};

namespace metric_detail {
inline double EuclideanDistance(std::span<const float> a,
                                std::span<const float> b) {
  double s = 0.0;
  for (size_t d = 0; d < a.size(); ++d) {
    const double diff = static_cast<double>(a[d]) - b[d];
    s += diff * diff;
  }
  return std::sqrt(s);
}
}  // namespace metric_detail

namespace metric_detail {
/// Per-dimension gap between q[d] and the interval [lo,hi]; 0 if inside.
inline double AxisGap(double q, double lo, double hi) {
  if (q < lo) return lo - q;
  if (q > hi) return q - hi;
  return 0.0;
}
}  // namespace metric_detail

/// Minkowski L_p metric for finite p >= 1. Specialized subclasses exist for
/// the common p = 1 and p = 2 cases (avoiding pow in the inner loop).
class LpMetric : public DistanceMetric {
 public:
  explicit LpMetric(double p) : p_(p) { HT_CHECK(p >= 1.0); }

  double Distance(std::span<const float> a,
                  std::span<const float> b) const override {
    double s = 0.0;
    for (size_t d = 0; d < a.size(); ++d) {
      s += std::pow(std::fabs(static_cast<double>(a[d]) - b[d]), p_);
    }
    return std::pow(s, 1.0 / p_);
  }

  double MinDistToBox(std::span<const float> q,
                      const Box& box) const override {
    double s = 0.0;
    for (uint32_t d = 0; d < box.dim(); ++d) {
      double g = metric_detail::AxisGap(q[d], box.lo(d), box.hi(d));
      if (g > 0.0) s += std::pow(g, p_);
    }
    return std::pow(s, 1.0 / p_);
  }

  std::string Name() const override {
    return "L" + std::to_string(p_);
  }

  double p() const { return p_; }

 private:
  double p_;
};

/// Manhattan distance — the metric the paper uses for its distance-based
/// query experiments (Figure 7(c),(d), following [18]).
class L1Metric final : public DistanceMetric {
 public:
  double Distance(std::span<const float> a,
                  std::span<const float> b) const override {
    double s = 0.0;
    for (size_t d = 0; d < a.size(); ++d) {
      s += std::fabs(static_cast<double>(a[d]) - b[d]);
    }
    return s;
  }
  double MinDistToBox(std::span<const float> q,
                      const Box& box) const override {
    double s = 0.0;
    for (uint32_t d = 0; d < box.dim(); ++d) {
      s += metric_detail::AxisGap(q[d], box.lo(d), box.hi(d));
    }
    return s;
  }
  double MinDistToSphere(std::span<const float> q,
                         std::span<const float> center,
                         double radius) const override {
    // ||x||_1 >= ||x||_2, so the Euclidean gap lower-bounds the L1 gap.
    return std::max(0.0, metric_detail::EuclideanDistance(q, center) - radius);
  }
  std::string Name() const override { return "L1"; }
};

/// Euclidean distance.
class L2Metric final : public DistanceMetric {
 public:
  double Distance(std::span<const float> a,
                  std::span<const float> b) const override {
    double s = 0.0;
    for (size_t d = 0; d < a.size(); ++d) {
      double diff = static_cast<double>(a[d]) - b[d];
      s += diff * diff;
    }
    return std::sqrt(s);
  }
  double MinDistToBox(std::span<const float> q,
                      const Box& box) const override {
    double s = 0.0;
    for (uint32_t d = 0; d < box.dim(); ++d) {
      double g = metric_detail::AxisGap(q[d], box.lo(d), box.hi(d));
      s += g * g;
    }
    return std::sqrt(s);
  }
  double MinDistToSphere(std::span<const float> q,
                         std::span<const float> center,
                         double radius) const override {
    return std::max(0.0, metric_detail::EuclideanDistance(q, center) - radius);
  }
  std::string Name() const override { return "L2"; }
};

/// Chebyshev distance.
class LInfMetric final : public DistanceMetric {
 public:
  double Distance(std::span<const float> a,
                  std::span<const float> b) const override {
    double m = 0.0;
    for (size_t d = 0; d < a.size(); ++d) {
      double diff = std::fabs(static_cast<double>(a[d]) - b[d]);
      if (diff > m) m = diff;
    }
    return m;
  }
  double MinDistToBox(std::span<const float> q,
                      const Box& box) const override {
    double m = 0.0;
    for (uint32_t d = 0; d < box.dim(); ++d) {
      double g = metric_detail::AxisGap(q[d], box.lo(d), box.hi(d));
      if (g > m) m = g;
    }
    return m;
  }
  double MinDistToSphere(std::span<const float> q,
                         std::span<const float> center,
                         double radius) const override {
    // ||x||_inf >= ||x||_2 / sqrt(d).
    const double d2 = metric_detail::EuclideanDistance(q, center);
    return std::max(0.0, (d2 - radius) /
                             std::sqrt(static_cast<double>(q.size())));
  }
  std::string Name() const override { return "Linf"; }
};

/// Weighted Euclidean distance: sqrt(sum_d w_d (a_d - b_d)^2), w_d >= 0.
/// The relevance-feedback example re-weights dimensions between iterations
/// of the same query — the arbitrary-distance-function capability the paper
/// highlights over distance-based indexes (SS-tree, M-tree).
class WeightedL2Metric final : public DistanceMetric {
 public:
  explicit WeightedL2Metric(std::vector<double> weights)
      : w_(std::move(weights)) {
    for (double w : w_) HT_CHECK(w >= 0.0);
  }

  double Distance(std::span<const float> a,
                  std::span<const float> b) const override {
    double s = 0.0;
    for (size_t d = 0; d < a.size(); ++d) {
      double diff = static_cast<double>(a[d]) - b[d];
      s += w_[d] * diff * diff;
    }
    return std::sqrt(s);
  }
  double MinDistToBox(std::span<const float> q,
                      const Box& box) const override {
    double s = 0.0;
    for (uint32_t d = 0; d < box.dim(); ++d) {
      double g = metric_detail::AxisGap(q[d], box.lo(d), box.hi(d));
      s += w_[d] * g * g;
    }
    return std::sqrt(s);
  }
  double MinDistToSphere(std::span<const float> q,
                         std::span<const float> center,
                         double radius) const override {
    // d_w(q,x) >= sqrt(min_d w_d) * ||q - x||_2.
    double min_w = std::numeric_limits<double>::max();
    for (double w : w_) min_w = std::min(min_w, w);
    const double d2 = metric_detail::EuclideanDistance(q, center);
    return std::sqrt(min_w) * std::max(0.0, d2 - radius);
  }
  std::string Name() const override { return "WeightedL2"; }

  const std::vector<double>& weights() const { return w_; }

 private:
  std::vector<double> w_;
};

/// Generalized ellipsoid (quadratic-form) distance
/// d(a,b) = sqrt((a-b)^T W (a-b)) for a symmetric positive semi-definite
/// matrix W — the full MindReader/MARS relevance-feedback metric the paper
/// cites ([13], [21]): cross-dimension correlations learned from feedback
/// become off-diagonal entries of W. Feature-based indexes answer it on
/// the same tree; distance-based ones cannot.
///
/// MINDIST lower bounds use d_W(x,y) >= sqrt(lambda_min(W)) * ||x-y||_2
/// with lambda_min bounded from below (cheaply, conservatively) by the
/// Gershgorin circle theorem: lambda_min >= min_i(W_ii - sum_{j!=i}|W_ij|),
/// clamped at 0. A zero bound disables box/sphere pruning but never
/// affects correctness.
class QuadraticFormMetric final : public DistanceMetric {
 public:
  /// `matrix` is row-major dim x dim; it must be symmetric PSD (checked
  /// only for symmetry; PSD is the caller's contract as with [13]).
  QuadraticFormMetric(uint32_t dim, std::vector<double> matrix)
      : dim_(dim), w_(std::move(matrix)) {
    HT_CHECK(w_.size() == static_cast<size_t>(dim_) * dim_);
    double lo = std::numeric_limits<double>::max();
    for (uint32_t i = 0; i < dim_; ++i) {
      HT_CHECK(w_[i * dim_ + i] >= 0.0);
      double off = 0.0;
      for (uint32_t j = 0; j < dim_; ++j) {
        HT_CHECK(std::fabs(w_[i * dim_ + j] - w_[j * dim_ + i]) < 1e-9);
        if (j != i) off += std::fabs(w_[i * dim_ + j]);
      }
      lo = std::min(lo, w_[i * dim_ + i] - off);
    }
    sqrt_lambda_min_ = std::sqrt(std::max(0.0, lo));
  }

  double Distance(std::span<const float> a,
                  std::span<const float> b) const override {
    double s = 0.0;
    for (uint32_t i = 0; i < dim_; ++i) {
      const double di = static_cast<double>(a[i]) - b[i];
      const double* row = &w_[static_cast<size_t>(i) * dim_];
      double acc = 0.0;
      for (uint32_t j = 0; j < dim_; ++j) {
        acc += row[j] * (static_cast<double>(a[j]) - b[j]);
      }
      s += di * acc;
    }
    return std::sqrt(std::max(0.0, s));
  }

  double MinDistToBox(std::span<const float> q,
                      const Box& box) const override {
    if (sqrt_lambda_min_ == 0.0) return 0.0;
    double s = 0.0;
    for (uint32_t d = 0; d < box.dim(); ++d) {
      const double g = metric_detail::AxisGap(q[d], box.lo(d), box.hi(d));
      s += g * g;
    }
    return sqrt_lambda_min_ * std::sqrt(s);
  }

  double MinDistToSphere(std::span<const float> q,
                         std::span<const float> center,
                         double radius) const override {
    const double d2 = metric_detail::EuclideanDistance(q, center);
    return sqrt_lambda_min_ * std::max(0.0, d2 - radius);
  }

  std::string Name() const override { return "QuadraticForm"; }

  /// The Gershgorin lower bound actually used for pruning (tests).
  double sqrt_lambda_min() const { return sqrt_lambda_min_; }

 private:
  uint32_t dim_;
  std::vector<double> w_;
  double sqrt_lambda_min_ = 0.0;
};

}  // namespace ht
