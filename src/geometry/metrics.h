// Copyright 2026 The HybridTree Authors.
// Distance metrics for distance-based queries (§3.5).
//
// The hybrid tree is a *feature-based* index: the partitioning is
// independent of the distance function, so the metric can be chosen per
// query — including between iterations of a relevance-feedback loop (the
// MARS use case the paper motivates). A metric must supply the
// point-to-point distance and a lower bound on the distance from a point to
// any point inside a box (MINDIST), which drives branch-and-bound pruning.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/macros.h"
#include "geometry/box.h"

namespace ht {

/// Abstract distance function. Implementations must be symmetric and
/// non-negative; MinDistToBox must never exceed the true minimum distance
/// (otherwise pruning would drop results).
class DistanceMetric {
 public:
  virtual ~DistanceMetric() = default;

  virtual double Distance(std::span<const float> a,
                          std::span<const float> b) const = 0;

  /// Lower bound on Distance(q, x) over all x in `box`.
  virtual double MinDistToBox(std::span<const float> q,
                              const Box& box) const = 0;

  /// Lower bound on Distance(q, x) over all x in the *Euclidean* ball
  /// B(center, radius) — the bounding-sphere component of SR-tree regions.
  /// The default (0) disables sphere pruning, which is always sound.
  virtual double MinDistToSphere(std::span<const float> q,
                                 std::span<const float> center,
                                 double radius) const {
    (void)q;
    (void)center;
    (void)radius;
    return 0.0;
  }

  // --- Batched distance kernels (query hot path) ---------------------------
  //
  // `pts` is a row-major block of `n` rows of q.size() host-order floats
  // with `stride` floats between consecutive row starts — exactly the float
  // payload of a serialized data page (see DataPageScan::block()). One
  // virtual dispatch covers the whole page; inside, the loop runs over raw
  // pointers and auto-vectorizes.
  //
  // Contract: out[i] must be bit-identical to Distance(q, row_i). Batch
  // kernels are an execution strategy, never an approximation. The default
  // implementation loops over rows calling the virtual Distance() — sound
  // for every metric, and the scalar baseline bench_hotpath measures.
  virtual void BatchDistance(std::span<const float> q, const float* pts,
                             size_t stride, size_t n, double* out) const {
    for (size_t i = 0; i < n; ++i) {
      out[i] = Distance(q, std::span<const float>(pts + i * stride, q.size()));
    }
  }

  /// Early-abandoning variant. `bound` (>= 0, may be +infinity or
  /// numeric_limits<double>::max()) is the caller's current pruning
  /// threshold — a query radius or the k-th candidate distance. For every
  /// row whose true distance is <= bound, out[i] is the exact,
  /// bit-identical distance; a row whose distance exceeds bound may be
  /// abandoned mid-accumulation, in which case out[i] is any value > bound
  /// (specialized kernels write +infinity). Callers must therefore only
  /// ever test out[i] <= bound — never consume an above-bound value as a
  /// distance. Outputs are NaN-free for NaN-free inputs. The default never
  /// abandons (always sound).
  virtual void BatchDistanceWithBound(std::span<const float> q,
                                      const float* pts, size_t stride,
                                      size_t n, double bound,
                                      double* out) const {
    (void)bound;
    BatchDistance(q, pts, stride, n, out);
  }

  virtual std::string Name() const = 0;
};

namespace metric_detail {
inline double EuclideanDistance(std::span<const float> a,
                                std::span<const float> b) {
  double s = 0.0;
  for (size_t d = 0; d < a.size(); ++d) {
    const double diff = static_cast<double>(a[d]) - b[d];
    s += diff * diff;
  }
  return std::sqrt(s);
}

/// Early-abandon checkpoint interval: partial sums are tested against the
/// bound only every kAbandonBlock dimensions so the accumulation loop stays
/// auto-vectorizable between checkpoints (the KDTREE2 trick).
inline constexpr size_t kAbandonBlock = 8;

/// Abandon threshold in squared-distance space: the smallest partial sum
/// that *provably* implies sqrt(full_sum) > bound. Monotone non-negative
/// accumulation means full_sum >= partial_sum, and sqrt is correctly
/// rounded, so a few ulps of slack over bound^2 make the implication hold
/// under rounding; without the slack a row with distance == bound could be
/// wrongly abandoned. +infinity (never abandon) for unbounded inputs.
inline double AbandonSquare(double bound) {
  const double b2 = bound * bound;
  return b2 + 8.0 * std::numeric_limits<double>::epsilon() * b2;
}
}  // namespace metric_detail

namespace metric_detail {
/// Per-dimension gap between q[d] and the interval [lo,hi]; 0 if inside.
inline double AxisGap(double q, double lo, double hi) {
  if (q < lo) return lo - q;
  if (q > hi) return q - hi;
  return 0.0;
}
}  // namespace metric_detail

/// Minkowski L_p metric for finite p >= 1. Specialized subclasses exist for
/// the common p = 1 and p = 2 cases (avoiding pow in the inner loop).
class LpMetric : public DistanceMetric {
 public:
  explicit LpMetric(double p) : p_(p) { HT_CHECK(p >= 1.0); }

  double Distance(std::span<const float> a,
                  std::span<const float> b) const override {
    double s = 0.0;
    for (size_t d = 0; d < a.size(); ++d) {
      s += std::pow(std::fabs(static_cast<double>(a[d]) - b[d]), p_);
    }
    return std::pow(s, 1.0 / p_);
  }

  double MinDistToBox(std::span<const float> q,
                      const Box& box) const override {
    double s = 0.0;
    for (uint32_t d = 0; d < box.dim(); ++d) {
      double g = metric_detail::AxisGap(q[d], box.lo(d), box.hi(d));
      if (g > 0.0) s += std::pow(g, p_);
    }
    return std::pow(s, 1.0 / p_);
  }

  std::string Name() const override {
    // %g trims trailing zeros: "L2" for p = 2.0, "L2.5" for p = 2.5
    // (std::to_string would print "L2.000000").
    char buf[32];
    std::snprintf(buf, sizeof(buf), "L%g", p_);
    return buf;
  }

  double p() const { return p_; }

 private:
  double p_;
};

/// Manhattan distance — the metric the paper uses for its distance-based
/// query experiments (Figure 7(c),(d), following [18]).
class L1Metric final : public DistanceMetric {
 public:
  double Distance(std::span<const float> a,
                  std::span<const float> b) const override {
    double s = 0.0;
    for (size_t d = 0; d < a.size(); ++d) {
      s += std::fabs(static_cast<double>(a[d]) - b[d]);
    }
    return s;
  }
  double MinDistToBox(std::span<const float> q,
                      const Box& box) const override {
    double s = 0.0;
    for (uint32_t d = 0; d < box.dim(); ++d) {
      s += metric_detail::AxisGap(q[d], box.lo(d), box.hi(d));
    }
    return s;
  }
  double MinDistToSphere(std::span<const float> q,
                         std::span<const float> center,
                         double radius) const override {
    // ||x||_1 >= ||x||_2, so the Euclidean gap lower-bounds the L1 gap.
    return std::max(0.0, metric_detail::EuclideanDistance(q, center) - radius);
  }
  void BatchDistance(std::span<const float> q, const float* pts, size_t stride,
                     size_t n, double* out) const override {
    const size_t dim = q.size();
    for (size_t i = 0; i < n; ++i) {
      const float* row = pts + i * stride;
      double s = 0.0;
      for (size_t d = 0; d < dim; ++d) {
        s += std::fabs(static_cast<double>(q[d]) - row[d]);
      }
      out[i] = s;
    }
  }
  void BatchDistanceWithBound(std::span<const float> q, const float* pts,
                              size_t stride, size_t n, double bound,
                              double* out) const override {
    // L1 accumulates the distance itself, so the partial sum compares
    // against the bound directly (monotone: abandoning is exact).
    const size_t dim = q.size();
    for (size_t i = 0; i < n; ++i) {
      const float* row = pts + i * stride;
      double s = 0.0;
      size_t d = 0;
      while (d < dim) {
        const size_t end = std::min(dim, d + metric_detail::kAbandonBlock);
        for (; d < end; ++d) {
          s += std::fabs(static_cast<double>(q[d]) - row[d]);
        }
        if (s > bound) break;
      }
      out[i] = d == dim ? s : std::numeric_limits<double>::infinity();
    }
  }
  std::string Name() const override { return "L1"; }
};

/// Euclidean distance.
class L2Metric final : public DistanceMetric {
 public:
  double Distance(std::span<const float> a,
                  std::span<const float> b) const override {
    double s = 0.0;
    for (size_t d = 0; d < a.size(); ++d) {
      double diff = static_cast<double>(a[d]) - b[d];
      s += diff * diff;
    }
    return std::sqrt(s);
  }
  double MinDistToBox(std::span<const float> q,
                      const Box& box) const override {
    double s = 0.0;
    for (uint32_t d = 0; d < box.dim(); ++d) {
      double g = metric_detail::AxisGap(q[d], box.lo(d), box.hi(d));
      s += g * g;
    }
    return std::sqrt(s);
  }
  double MinDistToSphere(std::span<const float> q,
                         std::span<const float> center,
                         double radius) const override {
    return std::max(0.0, metric_detail::EuclideanDistance(q, center) - radius);
  }
  void BatchDistance(std::span<const float> q, const float* pts, size_t stride,
                     size_t n, double* out) const override {
    const size_t dim = q.size();
    for (size_t i = 0; i < n; ++i) {
      const float* row = pts + i * stride;
      double s = 0.0;
      for (size_t d = 0; d < dim; ++d) {
        const double diff = static_cast<double>(q[d]) - row[d];
        s += diff * diff;
      }
      out[i] = std::sqrt(s);
    }
  }
  void BatchDistanceWithBound(std::span<const float> q, const float* pts,
                              size_t stride, size_t n, double bound,
                              double* out) const override {
    const double b2 = metric_detail::AbandonSquare(bound);
    const size_t dim = q.size();
    for (size_t i = 0; i < n; ++i) {
      const float* row = pts + i * stride;
      double s = 0.0;
      size_t d = 0;
      while (d < dim) {
        const size_t end = std::min(dim, d + metric_detail::kAbandonBlock);
        for (; d < end; ++d) {
          const double diff = static_cast<double>(q[d]) - row[d];
          s += diff * diff;
        }
        if (s > b2) break;
      }
      out[i] = d == dim ? std::sqrt(s) : std::numeric_limits<double>::infinity();
    }
  }
  std::string Name() const override { return "L2"; }
};

/// Chebyshev distance.
class LInfMetric final : public DistanceMetric {
 public:
  double Distance(std::span<const float> a,
                  std::span<const float> b) const override {
    double m = 0.0;
    for (size_t d = 0; d < a.size(); ++d) {
      double diff = std::fabs(static_cast<double>(a[d]) - b[d]);
      if (diff > m) m = diff;
    }
    return m;
  }
  double MinDistToBox(std::span<const float> q,
                      const Box& box) const override {
    double m = 0.0;
    for (uint32_t d = 0; d < box.dim(); ++d) {
      double g = metric_detail::AxisGap(q[d], box.lo(d), box.hi(d));
      if (g > m) m = g;
    }
    return m;
  }
  double MinDistToSphere(std::span<const float> q,
                         std::span<const float> center,
                         double radius) const override {
    // ||x||_inf >= ||x||_2 / sqrt(d).
    const double d2 = metric_detail::EuclideanDistance(q, center);
    return std::max(0.0, (d2 - radius) /
                             std::sqrt(static_cast<double>(q.size())));
  }
  void BatchDistance(std::span<const float> q, const float* pts, size_t stride,
                     size_t n, double* out) const override {
    const size_t dim = q.size();
    for (size_t i = 0; i < n; ++i) {
      const float* row = pts + i * stride;
      double m = 0.0;
      for (size_t d = 0; d < dim; ++d) {
        const double diff = std::fabs(static_cast<double>(q[d]) - row[d]);
        if (diff > m) m = diff;
      }
      out[i] = m;
    }
  }
  void BatchDistanceWithBound(std::span<const float> q, const float* pts,
                              size_t stride, size_t n, double bound,
                              double* out) const override {
    // The running max is the distance so far; exceeding the bound once is
    // final (max is monotone), so abandoning is exact.
    const size_t dim = q.size();
    for (size_t i = 0; i < n; ++i) {
      const float* row = pts + i * stride;
      double m = 0.0;
      size_t d = 0;
      while (d < dim) {
        const size_t end = std::min(dim, d + metric_detail::kAbandonBlock);
        for (; d < end; ++d) {
          const double diff = std::fabs(static_cast<double>(q[d]) - row[d]);
          if (diff > m) m = diff;
        }
        if (m > bound) break;
      }
      out[i] = d == dim ? m : std::numeric_limits<double>::infinity();
    }
  }
  std::string Name() const override { return "Linf"; }
};

/// Weighted Euclidean distance: sqrt(sum_d w_d (a_d - b_d)^2), w_d >= 0.
/// The relevance-feedback example re-weights dimensions between iterations
/// of the same query — the arbitrary-distance-function capability the paper
/// highlights over distance-based indexes (SS-tree, M-tree).
class WeightedL2Metric final : public DistanceMetric {
 public:
  explicit WeightedL2Metric(std::vector<double> weights)
      : w_(std::move(weights)) {
    double min_w = std::numeric_limits<double>::max();
    for (double w : w_) {
      HT_CHECK(w >= 0.0);
      min_w = std::min(min_w, w);
    }
    sqrt_min_w_ = std::sqrt(min_w);
  }

  double Distance(std::span<const float> a,
                  std::span<const float> b) const override {
    double s = 0.0;
    for (size_t d = 0; d < a.size(); ++d) {
      double diff = static_cast<double>(a[d]) - b[d];
      s += w_[d] * diff * diff;
    }
    return std::sqrt(s);
  }
  double MinDistToBox(std::span<const float> q,
                      const Box& box) const override {
    double s = 0.0;
    for (uint32_t d = 0; d < box.dim(); ++d) {
      double g = metric_detail::AxisGap(q[d], box.lo(d), box.hi(d));
      s += w_[d] * g * g;
    }
    return std::sqrt(s);
  }
  double MinDistToSphere(std::span<const float> q,
                         std::span<const float> center,
                         double radius) const override {
    // d_w(q,x) >= sqrt(min_d w_d) * ||q - x||_2. sqrt(min_w) is fixed for
    // the life of the metric, so it is computed once in the constructor.
    const double d2 = metric_detail::EuclideanDistance(q, center);
    return sqrt_min_w_ * std::max(0.0, d2 - radius);
  }
  void BatchDistance(std::span<const float> q, const float* pts, size_t stride,
                     size_t n, double* out) const override {
    const size_t dim = q.size();
    const double* w = w_.data();
    for (size_t i = 0; i < n; ++i) {
      const float* row = pts + i * stride;
      double s = 0.0;
      for (size_t d = 0; d < dim; ++d) {
        const double diff = static_cast<double>(q[d]) - row[d];
        s += w[d] * diff * diff;
      }
      out[i] = std::sqrt(s);
    }
  }
  void BatchDistanceWithBound(std::span<const float> q, const float* pts,
                              size_t stride, size_t n, double bound,
                              double* out) const override {
    const double b2 = metric_detail::AbandonSquare(bound);
    const size_t dim = q.size();
    const double* w = w_.data();
    for (size_t i = 0; i < n; ++i) {
      const float* row = pts + i * stride;
      double s = 0.0;
      size_t d = 0;
      while (d < dim) {
        const size_t end = std::min(dim, d + metric_detail::kAbandonBlock);
        for (; d < end; ++d) {
          const double diff = static_cast<double>(q[d]) - row[d];
          s += w[d] * diff * diff;
        }
        if (s > b2) break;
      }
      out[i] = d == dim ? std::sqrt(s) : std::numeric_limits<double>::infinity();
    }
  }
  std::string Name() const override { return "WeightedL2"; }

  const std::vector<double>& weights() const { return w_; }

 private:
  std::vector<double> w_;
  double sqrt_min_w_ = 0.0;
};

/// Generalized ellipsoid (quadratic-form) distance
/// d(a,b) = sqrt((a-b)^T W (a-b)) for a symmetric positive semi-definite
/// matrix W — the full MindReader/MARS relevance-feedback metric the paper
/// cites ([13], [21]): cross-dimension correlations learned from feedback
/// become off-diagonal entries of W. Feature-based indexes answer it on
/// the same tree; distance-based ones cannot.
///
/// MINDIST lower bounds use d_W(x,y) >= sqrt(lambda_min(W)) * ||x-y||_2
/// with lambda_min bounded from below (cheaply, conservatively) by the
/// Gershgorin circle theorem: lambda_min >= min_i(W_ii - sum_{j!=i}|W_ij|),
/// clamped at 0. A zero bound disables box/sphere pruning but never
/// affects correctness.
class QuadraticFormMetric final : public DistanceMetric {
 public:
  /// `matrix` is row-major dim x dim; it must be symmetric PSD (checked
  /// only for symmetry; PSD is the caller's contract as with [13]).
  QuadraticFormMetric(uint32_t dim, std::vector<double> matrix)
      : dim_(dim), w_(std::move(matrix)) {
    HT_CHECK(w_.size() == static_cast<size_t>(dim_) * dim_);
    double lo = std::numeric_limits<double>::max();
    for (uint32_t i = 0; i < dim_; ++i) {
      HT_CHECK(w_[i * dim_ + i] >= 0.0);
      double off = 0.0;
      for (uint32_t j = 0; j < dim_; ++j) {
        HT_CHECK(std::fabs(w_[i * dim_ + j] - w_[j * dim_ + i]) < 1e-9);
        if (j != i) off += std::fabs(w_[i * dim_ + j]);
      }
      lo = std::min(lo, w_[i * dim_ + i] - off);
    }
    sqrt_lambda_min_ = std::sqrt(std::max(0.0, lo));
  }

  double Distance(std::span<const float> a,
                  std::span<const float> b) const override {
    double s = 0.0;
    for (uint32_t i = 0; i < dim_; ++i) {
      const double di = static_cast<double>(a[i]) - b[i];
      const double* row = &w_[static_cast<size_t>(i) * dim_];
      double acc = 0.0;
      for (uint32_t j = 0; j < dim_; ++j) {
        acc += row[j] * (static_cast<double>(a[j]) - b[j]);
      }
      s += di * acc;
    }
    return std::sqrt(std::max(0.0, s));
  }

  double MinDistToBox(std::span<const float> q,
                      const Box& box) const override {
    if (sqrt_lambda_min_ == 0.0) return 0.0;
    double s = 0.0;
    for (uint32_t d = 0; d < box.dim(); ++d) {
      const double g = metric_detail::AxisGap(q[d], box.lo(d), box.hi(d));
      s += g * g;
    }
    return sqrt_lambda_min_ * std::sqrt(s);
  }

  double MinDistToSphere(std::span<const float> q,
                         std::span<const float> center,
                         double radius) const override {
    const double d2 = metric_detail::EuclideanDistance(q, center);
    return sqrt_lambda_min_ * std::max(0.0, d2 - radius);
  }

  std::string Name() const override { return "QuadraticForm"; }

  /// The Gershgorin lower bound actually used for pruning (tests).
  double sqrt_lambda_min() const { return sqrt_lambda_min_; }

 private:
  uint32_t dim_;
  std::vector<double> w_;
  double sqrt_lambda_min_ = 0.0;
};

}  // namespace ht
