// Copyright 2026 The HybridTree Authors.
// Fixed-size page abstraction shared by all disk-based index structures.

#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace ht {

/// Page identifier within a PagedFile. Page 0 is reserved by convention for
/// file metadata; kInvalidPageId marks "no page".
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xffffffffu;

/// Default page size used throughout the paper's evaluation (§4: "we use a
/// page size of 4096 bytes").
inline constexpr size_t kDefaultPageSize = 4096;

/// A page image in memory. Owns `size` bytes, zero-initialized.
class Page {
 public:
  explicit Page(size_t size = kDefaultPageSize) : data_(size, 0) {}

  uint8_t* data() { return data_.data(); }
  const uint8_t* data() const { return data_.data(); }
  size_t size() const { return data_.size(); }

  void Zero() { std::memset(data_.data(), 0, data_.size()); }

 private:
  std::vector<uint8_t> data_;
};

}  // namespace ht
