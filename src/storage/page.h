// Copyright 2026 The HybridTree Authors.
// Fixed-size page abstraction shared by all disk-based index structures.

#pragma once

#include <cstdint>
#include <cstring>
#include <new>
#include <utility>

namespace ht {

/// Page identifier within a PagedFile. Page 0 is reserved by convention for
/// file metadata; kInvalidPageId marks "no page".
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xffffffffu;

/// Default page size used throughout the paper's evaluation (§4: "we use a
/// page size of 4096 bytes").
inline constexpr size_t kDefaultPageSize = 4096;

/// A page image in memory. Owns `size` bytes, zero-initialized.
///
/// The buffer is aligned to kAlignment (one cache line, and enough for any
/// current SIMD load width) so batched distance kernels scanning a pinned
/// frame start from an aligned base. Point blocks inside a data page still
/// sit at arbitrary float offsets (the 4-byte header precedes them), so the
/// kernels use unaligned loads — the frame alignment buys predictable cache
/// -line splits, not aligned-instruction selection.
class Page {
 public:
  static constexpr size_t kAlignment = 64;

  explicit Page(size_t size = kDefaultPageSize)
      : size_(size), data_(Allocate(size)) {
    std::memset(data_, 0, size_);
  }
  Page(const Page& other) : size_(other.size_), data_(Allocate(other.size_)) {
    std::memcpy(data_, other.data_, size_);
  }
  Page(Page&& other) noexcept
      : size_(std::exchange(other.size_, 0)),
        data_(std::exchange(other.data_, nullptr)) {}
  Page& operator=(const Page& other) {
    if (this != &other) {
      Page copy(other);
      *this = std::move(copy);
    }
    return *this;
  }
  Page& operator=(Page&& other) noexcept {
    if (this != &other) {
      Deallocate(data_);
      size_ = std::exchange(other.size_, 0);
      data_ = std::exchange(other.data_, nullptr);
    }
    return *this;
  }
  ~Page() { Deallocate(data_); }

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

  void Zero() { std::memset(data_, 0, size_); }

 private:
  static uint8_t* Allocate(size_t size) {
    if (size == 0) return nullptr;
    return static_cast<uint8_t*>(
        ::operator new(size, std::align_val_t{kAlignment}));
  }
  static void Deallocate(uint8_t* p) {
    if (p != nullptr) ::operator delete(p, std::align_val_t{kAlignment});
  }

  size_t size_;
  uint8_t* data_;
};

}  // namespace ht
