#include "storage/buffer_pool.h"

#include <algorithm>
#include <map>
#include <string>

namespace ht {

namespace {
/// Thread-local per-worker accounting sink (see IoStatsScope).
thread_local IoStats* g_tls_io_sink = nullptr;
/// Thread-local access class for the calling thread (see AccessClassScope).
thread_local AccessClass g_tls_access_class = AccessClass::kQuery;
}  // namespace

// ---------------------------------------------------------------------------
// IoStatsScope / AccessClassScope
// ---------------------------------------------------------------------------

IoStatsScope::IoStatsScope(IoStats* sink) : prev_(g_tls_io_sink) {
  g_tls_io_sink = sink;
}

IoStatsScope::~IoStatsScope() { g_tls_io_sink = prev_; }

AccessClassScope::AccessClassScope(AccessClass cls)
    : prev_(g_tls_access_class) {
  g_tls_access_class = cls;
}

AccessClassScope::~AccessClassScope() { g_tls_access_class = prev_; }

AccessClass CurrentAccessClass() { return g_tls_access_class; }

// ---------------------------------------------------------------------------
// PageHandle
// ---------------------------------------------------------------------------

size_t PageHandle::size() const {
  HT_DCHECK(valid());
  return pool_->page_size();
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(id_, frame_);
    if (pin_token_ != 0) pool_->UntrackPin(pin_token_);
    pool_ = nullptr;
    frame_ = nullptr;
    id_ = kInvalidPageId;
    pin_token_ = 0;
  }
}

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

BufferPool::BufferPool(PagedFile* file, size_t capacity_pages,
                       CachePolicy policy)
    : file_(file),
      policy_(policy),
      capacity_(capacity_pages),
      shard_capacity_(capacity_pages) {
#ifdef HT_DEBUG_VALIDATE
  pin_tracking_.store(true, std::memory_order_relaxed);
#endif
}

BufferPool::~BufferPool() {
  DrainPrefetch();
  // Best effort write-back; durability requires an explicit FlushAll.
  (void)FlushAll();
}

Status BufferPool::SetConcurrentMode(bool on) {
  if (on == concurrent_) return Status::OK();
  DrainPrefetch();
  if (pinned_frames() != 0) {
    return Status::InvalidArgument(
        "BufferPool mode switch requires no pinned frames");
  }
  // Collect every cached frame, flip the mode, and re-bucket under the new
  // ShardIndex mapping. Recency within each segment is rebuilt arbitrarily;
  // recency order across a mode switch is not meaningful anyway. Segment
  // membership (probation/protected/prefetch-queue) is preserved.
  std::unordered_map<PageId, std::unique_ptr<Frame>> all;
  for (Shard& s : shards_) {
    // Mode switches require quiescence (no other thread inside the pool),
    // so the guard claims the shard capability without locking.
    MutexLock lock(&s.mu, /*enabled=*/false);
    for (auto& [id, f] : s.frames) {
      if (f->in_lru) {
        ListFor(s, f->segment).erase(f->lru_it);
        f->in_lru = false;
      }
      all.emplace(id, std::move(f));
    }
    s.frames.clear();
    s.lru.clear();
    s.protected_lru.clear();
    s.prefetch_queue.clear();
  }
  concurrent_ = on;
  const size_t cap = capacity_.load(std::memory_order_relaxed);
  shard_capacity_.store(
      concurrent_ ? (cap == 0 ? 0 : (cap + kShardCount - 1) / kShardCount)
                  : cap,
      std::memory_order_relaxed);
  for (auto& [id, f] : all) {
    Shard& s = ShardFor(id);
    MutexLock lock(&s.mu, /*enabled=*/false);  // same quiescence contract
    std::list<PageId>& list = ListFor(s, f->segment);
    list.push_front(id);
    f->lru_it = list.begin();
    f->in_lru = true;
    s.frames.emplace(id, std::move(f));
  }
  return Status::OK();
}

Status BufferPool::SetCapacity(size_t capacity_pages) {
  // Relaxed store: the capacity target is advisory — each reader acts on
  // whatever value it observes under its own shard lock, and a stale
  // target only delays (never corrupts) the resize.
  capacity_.store(capacity_pages, std::memory_order_relaxed);
  const size_t per_shard =
      concurrent_ ? (capacity_pages == 0
                         ? 0
                         : (capacity_pages + kShardCount - 1) / kShardCount)
                  : capacity_pages;
  shard_capacity_.store(per_shard, std::memory_order_relaxed);
  if (per_shard == 0) return Status::OK();
  // Best-effort shrink: evict unpinned frames down to the new target. A
  // pinned overage is left in place — it drains as pins release and later
  // misses evict down to target (EvictOneIfNeeded loops while over).
  for (Shard& shard : shards_) {
    MutexLock lock(&shard.mu, concurrent_);
    while (shard.frames.size() > per_shard) {
      if (!EvictVictimLocked(shard).ok()) break;  // everything left is pinned
    }
  }
  return Status::OK();
}

uint8_t BufferPool::SketchTouch(Shard& shard, PageId id) {
  // Age first (halving every ~16x-capacity touches keeps the counters a
  // sliding-window frequency estimate, TinyLFU-style), THEN bump. The
  // sketch itself is plain shard state under the shard lock; only the
  // capacity target is atomic (relaxed: stale values merely shift the
  // halving period).
  const size_t cap = shard_capacity_.load(std::memory_order_relaxed);
  const uint64_t halve_period =
      cap == 0 ? 4096 : std::max<uint64_t>(64, 16 * static_cast<uint64_t>(cap));
  if (++shard.sketch_ops >= halve_period) {
    shard.sketch_ops = 0;
    for (uint8_t& c : shard.sketch) c = static_cast<uint8_t>(c >> 1);
  }
  uint8_t& ctr =
      shard.sketch[(static_cast<uint64_t>(id) * 0x9E3779B97F4A7C15ull) >> 56];
  if (ctr < kSketchMax) ++ctr;
  return ctr;
}

size_t BufferPool::ProtectedCapacity() const {
  const size_t cap = shard_capacity_.load(std::memory_order_relaxed);
  if (cap == 0) return 0;  // unbounded pool: no budget enforced
  // Keep a probationary floor of ~20% of the shard (at least one frame) so
  // new admissions always have somewhere to live without displacing the
  // protected set; the rest is the protected budget.
  const size_t probation_floor = std::max<size_t>(1, cap / 5);
  return cap > probation_floor ? cap - probation_floor : 0;
}

void BufferPool::EnforceProtectedCapLocked(Shard& shard) {
  if (shard_capacity_.load(std::memory_order_relaxed) == 0) return;
  const size_t cap = ProtectedCapacity();
  while (shard.protected_lru.size() > cap) {
    // Demote the protected tail to the probationary MRU position: it gets
    // one more chance to be re-referenced before reaching the LRU tail.
    auto tail = std::prev(shard.protected_lru.end());
    Frame* f = shard.frames.find(*tail)->second.get();
    f->segment = CacheSegment::kProbation;
    shard.lru.splice(shard.lru.begin(), shard.protected_lru, tail);
    // splice moves the node intact, so f->lru_it (== tail) stays valid and
    // now points into shard.lru.
  }
}

void BufferPool::TouchHitLocked(Shard& shard, PageId id, Frame* f) {
  const AccessClass cls = CurrentAccessClass();
  if (f->prefetched) {
    f->prefetched = false;
    f->admit_class = cls;  // first demand reference re-attributes the frame
    ++shard.stats.prefetch_hits;
    if (IoStats* tls = g_tls_io_sink) ++tls->prefetch_hits;
  }
  if (f->in_lru) {
    // Splice out of the frame's CURRENT segment list (before any segment
    // change below), recycling the node for a later unpin.
    std::list<PageId>& list = ListFor(shard, f->segment);
    shard.lru_spares.splice(shard.lru_spares.begin(), list, f->lru_it);
    f->in_lru = false;
  }
  if (policy_ == CachePolicy::kSlru) {
    const uint8_t freq = SketchTouch(shard, id);
    if (f->segment == CacheSegment::kPrefetchQueue) {
      // First demand reference to a prefetched frame: plain admission into
      // probation — one touch is not yet evidence of reuse.
      f->segment = CacheSegment::kProbation;
    } else if (f->segment == CacheSegment::kProbation &&
               (cls == AccessClass::kQuery || freq >= kSketchPromote)) {
      // Re-reference promotes: always for query traffic, only with sketch
      // evidence of multi-touch for scan/prefetch/ingest traffic, so a
      // repeated full scan cannot flood the protected segment.
      f->segment = CacheSegment::kProtected;
    }
  }
}

internal::CacheSegment BufferPool::AdmitSegmentLocked(Shard& shard,
                                                      PageId id) {
  if (policy_ != CachePolicy::kSlru) return CacheSegment::kProbation;
  const uint8_t freq = SketchTouch(shard, id);
  if (CurrentAccessClass() == AccessClass::kQuery && freq >= kSketchPromote) {
    // A recently-hot page that a burst pushed out: readmit straight to
    // protected instead of making it climb out of probation again.
    return CacheSegment::kProtected;
  }
  return CacheSegment::kProbation;
}

Result<PageHandle> BufferPool::Fetch(PageId id, std::source_location loc) {
  Shard& shard = ShardFor(id);
  MutexLock lock(&shard.mu, concurrent_);
  const size_t cls = static_cast<size_t>(CurrentAccessClass());
  ++shard.stats.logical_reads;
  if (IoStats* tls = g_tls_io_sink) ++tls->logical_reads;
  bool checked_inflight = false;
  for (;;) {
    auto it = shard.frames.find(id);
    if (it != shard.frames.end()) {
      Frame* f = it->second.get();
      ++shard.stats.class_hits[cls];
      if (IoStats* tls = g_tls_io_sink) ++tls->class_hits[cls];
      TouchHitLocked(shard, id, f);
      ++f->pins;
      return PageHandle(this, id, f, TrackPin(id, loc));
    }
    // Miss. If an async prefetch of this page is in flight, wait for the
    // fill instead of issuing a duplicate read, then re-check the map.
    // The atomic fast path keeps the no-prefetch miss free of prefetch_mu_
    // traffic; the guard also keeps serial mode (claimed, unlocked shard
    // guard) out of the unlock/relock dance. The dance runs at most once:
    // the shard lock is dropped during it, so the map MUST be re-checked
    // afterwards (a racing Fetch/fill may have installed the frame in the
    // window — installing a duplicate would dangle the returned pin), and
    // the one-shot guard keeps a busy in-flight set elsewhere in the pool
    // from looping this fetch forever.
    //
    // Memory order: acquire pairs with the release increments in
    // Prefetch/FillPrefetch, so a nonzero observation happens-after the
    // inflight_ insert it reflects. The gate is only an optimization
    // either way — the authoritative membership check runs under
    // prefetch_mu_, and a stale zero just means this fetch reads the page
    // itself (the fill detects the installed frame and drops its copy).
    if (concurrent_ && !checked_inflight &&
        inflight_count_.load(std::memory_order_acquire) > 0) {
      checked_inflight = true;
      lock.Unlock();
      {
        MutexLock pl(&prefetch_mu_);
        while (inflight_.count(id) != 0) {
          prefetch_cv_.Wait(pl);
        }
      }
      lock.Lock();
      // The fill installed the frame (retry finds it) or dropped it
      // (no room / read error: retry falls through to a normal miss).
      continue;
    }
    break;
  }
  ++shard.stats.class_misses[cls];
  if (IoStats* tls = g_tls_io_sink) ++tls->class_misses[cls];
  HT_RETURN_NOT_OK(EvictOneIfNeeded(shard, /*demand=*/true));
  auto frame = std::make_unique<Frame>(file_->page_size());
  {
    // Shared lock: positional reads run concurrently with each other and
    // only exclude allocation/extension and write-back.
    ReaderLock flock(&file_mu_, concurrent_);
    HT_RETURN_NOT_OK(file_->Read(id, &frame->page));
  }
  ++shard.stats.physical_reads;
  if (IoStats* tls = g_tls_io_sink) ++tls->physical_reads;
  Frame* f = frame.get();
  f->pins = 1;
  f->admit_class = CurrentAccessClass();
  f->segment = AdmitSegmentLocked(shard, id);
  shard.frames.emplace(id, std::move(frame));
  return PageHandle(this, id, f, TrackPin(id, loc));
}

Status BufferPool::FetchMany(std::span<const PageId> ids,
                             std::vector<PageHandle>* out,
                             std::source_location loc) {
  out->clear();
  if (ids.empty()) return Status::OK();
  out->reserve(ids.size());
  const size_t cls = static_cast<size_t>(CurrentAccessClass());

  // Pass 1: pin hits, leave placeholder handles for misses, and collect
  // each distinct missing id once (ReadBatch tolerates duplicates, but a
  // duplicate here would install two frames for one page).
  std::vector<PageId> miss_ids;
  std::vector<std::unique_ptr<Frame>> miss_frames;
  std::vector<Page*> miss_pages;
  std::unordered_map<PageId, size_t> miss_slot;  // id -> index in miss_*
  for (PageId id : ids) {
    Shard& shard = ShardFor(id);
    MutexLock lock(&shard.mu, concurrent_);
    ++shard.stats.logical_reads;
    if (IoStats* tls = g_tls_io_sink) ++tls->logical_reads;
    auto it = shard.frames.find(id);
    if (it != shard.frames.end()) {
      Frame* f = it->second.get();
      ++shard.stats.class_hits[cls];
      if (IoStats* tls = g_tls_io_sink) ++tls->class_hits[cls];
      TouchHitLocked(shard, id, f);
      ++f->pins;
      out->push_back(PageHandle(this, id, f, TrackPin(id, loc)));
    } else {
      ++shard.stats.class_misses[cls];
      if (IoStats* tls = g_tls_io_sink) ++tls->class_misses[cls];
      out->push_back(PageHandle());
      if (miss_slot.emplace(id, miss_ids.size()).second) {
        miss_ids.push_back(id);
        auto frame = std::make_unique<Frame>(file_->page_size());
        miss_pages.push_back(&frame->page);
        miss_frames.push_back(std::move(frame));
      }
    }
  }
  if (miss_ids.empty()) return Status::OK();

  // One round trip for every miss.
  Status read_status;
  {
    ReaderLock flock(&file_mu_, concurrent_);
    read_status = file_->ReadBatch(miss_ids, miss_pages);
  }
  if (!read_status.ok()) {
    out->clear();  // releases every pass-1 pin
    return read_status;
  }
  {
    Shard& shard = ShardFor(miss_ids[0]);
    MutexLock lock(&shard.mu, concurrent_);
    ++shard.stats.batch_reads;
    if (IoStats* tls = g_tls_io_sink) ++tls->batch_reads;
  }

  // Pass 2: install each miss (first occurrence) and pin every occurrence.
  // A frame may already be present — installed by an earlier duplicate in
  // this very batch, or by a racing Fetch/prefetch fill — in which case the
  // existing frame wins and our read is discarded.
  for (size_t i = 0; i < ids.size(); ++i) {
    if ((*out)[i].valid()) continue;
    const PageId id = ids[i];
    Shard& shard = ShardFor(id);
    MutexLock lock(&shard.mu, concurrent_);
    Frame* f;
    auto it = shard.frames.find(id);
    if (it != shard.frames.end()) {
      f = it->second.get();
      f->prefetched = false;  // pinned through us, not through a prior hit
      if (f->in_lru) {
        // Splice out of the frame's current segment list BEFORE any
        // segment fix-up below.
        std::list<PageId>& list = ListFor(shard, f->segment);
        shard.lru_spares.splice(shard.lru_spares.begin(), list, f->lru_it);
        f->in_lru = false;
      }
      if (f->segment == CacheSegment::kPrefetchQueue) {
        // First demand reference to a prefetched frame: admit to probation
        // and attribute it to this batch's class.
        f->segment = CacheSegment::kProbation;
        f->admit_class = CurrentAccessClass();
      }
    } else {
      Status evict_status = EvictOneIfNeeded(shard, /*demand=*/true);
      if (!evict_status.ok()) {
        lock.Unlock();  // out->clear() re-locks shards
        out->clear();
        return evict_status;
      }
      ++shard.stats.physical_reads;
      if (IoStats* tls = g_tls_io_sink) ++tls->physical_reads;
      auto& frame = miss_frames[miss_slot.find(id)->second];
      HT_CHECK(frame != nullptr);
      f = frame.get();
      f->admit_class = CurrentAccessClass();
      f->segment = AdmitSegmentLocked(shard, id);
      shard.frames.emplace(id, std::move(frame));
    }
    ++f->pins;
    (*out)[i] = PageHandle(this, id, f, TrackPin(id, loc));
  }
  return Status::OK();
}

void BufferPool::Prefetch(std::span<const PageId> ids) {
  if (ids.empty()) return;
  // Filter: keep each id once, and only if not already cached. Linear
  // dedup — prefetch batches are a handful of pages (the frontier depth).
  std::vector<PageId> need;
  need.reserve(ids.size());
  for (PageId id : ids) {
    if (std::find(need.begin(), need.end(), id) != need.end()) continue;
    Shard& shard = ShardFor(id);
    MutexLock lock(&shard.mu, concurrent_);
    if (shard.frames.find(id) != shard.frames.end()) continue;
    need.push_back(id);
  }
  if (need.empty()) return;

  bool async = false;
  if (concurrent_ && async_exec_) {
    MutexLock pl(&prefetch_mu_);
    need.erase(std::remove_if(need.begin(), need.end(),
                              [this](PageId id) HT_REQUIRES(prefetch_mu_) {
                                return inflight_.count(id) != 0;
                              }),
               need.end());
    if (need.empty()) return;
    inflight_.insert(need.begin(), need.end());
    // Release pairs with the acquire gate in Fetch: a fetch observing the
    // new count happens-after these inserts (see the Fetch comment).
    inflight_count_.fetch_add(need.size(), std::memory_order_release);
    async = true;
  }

  {
    Shard& shard = ShardFor(need[0]);
    MutexLock lock(&shard.mu, concurrent_);
    shard.stats.prefetch_issued += need.size();
    if (IoStats* tls = g_tls_io_sink) tls->prefetch_issued += need.size();
  }

  if (async) {
    std::vector<PageId> task_ids = need;
    const bool accepted =
        async_exec_([this, ids2 = std::move(task_ids)]() mutable {
          FillPrefetch(std::move(ids2), /*async=*/true);
        });
    // Executor refused (e.g. saturated queue): fill on this thread, still
    // clearing the inflight marks we just planted.
    if (!accepted) FillPrefetch(std::move(need), /*async=*/true);
  } else {
    FillPrefetch(std::move(need), /*async=*/false);
  }
}

void BufferPool::FillPrefetch(std::vector<PageId> ids, bool async) {
  std::vector<std::unique_ptr<Frame>> frames;
  std::vector<Page*> pages;
  frames.reserve(ids.size());
  pages.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    frames.push_back(std::make_unique<Frame>(file_->page_size()));
    pages.push_back(&frames.back()->page);
  }
  Status read_status;
  {
    ReaderLock flock(&file_mu_, concurrent_);
    read_status = file_->ReadBatch(ids, pages);
  }
  // Read errors are swallowed: prefetch is best-effort, and the Fetch that
  // actually needs the page will surface the error.
  if (read_status.ok()) {
    {
      Shard& shard = ShardFor(ids[0]);
      MutexLock lock(&shard.mu, concurrent_);
      ++shard.stats.batch_reads;
      if (IoStats* tls = g_tls_io_sink) ++tls->batch_reads;
    }
    // Each batch advances its shards' prefetch generation (once per shard
    // per call, BEFORE the first install evicts): leftovers from older
    // batches become stale and are reclaimed first to make room, while
    // this batch's own fills are spared until the next one lands.
    std::array<bool, kShardCount> bumped{};
    for (size_t i = 0; i < ids.size(); ++i) {
      const PageId id = ids[i];
      Shard& shard = ShardFor(id);
      MutexLock lock(&shard.mu, concurrent_);
      if (shard.frames.find(id) != shard.frames.end()) continue;  // raced
      if (policy_ == CachePolicy::kSlru && !bumped[ShardIndex(id)]) {
        bumped[ShardIndex(id)] = true;
        ++shard.prefetch_gen;
      }
      // Speculative fill: never overflow a pinned-full shard — drop the
      // page instead and let demand re-read it if it is actually needed.
      if (!EvictOneIfNeeded(shard, /*demand=*/false).ok()) continue;
      ++shard.stats.physical_reads;
      if (IoStats* tls = g_tls_io_sink) ++tls->physical_reads;
      Frame* f = frames[i].get();
      f->prefetched = true;
      f->admit_class = AccessClass::kPrefetch;
      // kSlru parks never-referenced fills on the evict-first prefetch
      // queue; kLru keeps the historical LRU-front insertion.
      if (policy_ == CachePolicy::kSlru) {
        f->segment = CacheSegment::kPrefetchQueue;
        f->fill_gen = shard.prefetch_gen;
      }
      std::list<PageId>& list = ListFor(shard, f->segment);
      list.push_front(id);
      f->lru_it = list.begin();
      f->in_lru = true;
      shard.frames.emplace(id, std::move(frames[i]));
    }
  }
  if (async) {
    // Clear the in-flight marks only after every shard lock is released
    // (lock order: prefetch_mu_ never follows a shard lock) and notify
    // both Fetch waiters and DrainPrefetch. The notify happens under the
    // lock on purpose: once a drainer (e.g. the destructor) re-acquires
    // prefetch_mu_ and sees inflight_ empty, this thread is provably done
    // touching the condition variable, so tearing the pool down is safe.
    MutexLock pl(&prefetch_mu_);
    for (PageId id : ids) inflight_.erase(id);
    // Release for the same acquire pairing as the fetch_add in Prefetch.
    inflight_count_.fetch_sub(ids.size(), std::memory_order_release);
    prefetch_cv_.NotifyAll();
  }
}

bool BufferPool::Cached(PageId id) const {
  const Shard& shard = shards_[ShardIndex(id)];
  MutexLock lock(&shard.mu, concurrent_);
  return shard.frames.find(id) != shard.frames.end();
}

void BufferPool::DrainPrefetch() {
  MutexLock pl(&prefetch_mu_);
  while (!inflight_.empty()) prefetch_cv_.Wait(pl);
}

void BufferPool::SetPrefetchExecutor(AsyncExec exec) {
  // Quiesce before swapping so no in-flight task outlives its executor's
  // guarantees (detaching is documented to block until fills drain).
  DrainPrefetch();
  async_exec_ = std::move(exec);
}

Result<PageHandle> BufferPool::New(std::source_location loc) {
  PageId id;
  {
    WriterLock flock(&file_mu_, concurrent_);
    HT_ASSIGN_OR_RETURN(id, file_->Allocate());
  }
  Shard& shard = ShardFor(id);
  MutexLock lock(&shard.mu, concurrent_);
  ++shard.stats.allocations;
  ++shard.stats.logical_reads;  // a new node still costs one access to write
  if (IoStats* tls = g_tls_io_sink) {
    ++tls->allocations;
    ++tls->logical_reads;
  }
  HT_RETURN_NOT_OK(EvictOneIfNeeded(shard, /*demand=*/true));
  auto frame = std::make_unique<Frame>(file_->page_size());
  frame->dirty = true;
  frame->pins = 1;
  // Fresh pages enter probation regardless of policy: the page has never
  // been referenced, so there is no reuse evidence yet.
  frame->admit_class = CurrentAccessClass();
  Frame* f = frame.get();
  shard.frames.emplace(id, std::move(frame));
  return PageHandle(this, id, f, TrackPin(id, loc));
}

Status BufferPool::Free(PageId id) {
  Shard& shard = ShardFor(id);
  {
    MutexLock lock(&shard.mu, concurrent_);
    auto it = shard.frames.find(id);
    if (it != shard.frames.end()) {
      Frame* f = it->second.get();
      if (f->pins != 0) {
        return Status::InvalidArgument("BufferPool::Free of pinned page " +
                                       std::to_string(id));
      }
      if (f->in_lru) ListFor(shard, f->segment).erase(f->lru_it);
      shard.frames.erase(it);
    }
    ++shard.stats.frees;
    if (IoStats* tls = g_tls_io_sink) ++tls->frees;
  }
  WriterLock flock(&file_mu_, concurrent_);
  return file_->Free(id);
}

void BufferPool::Unpin(PageId id, Frame* f) {
  Shard& shard = ShardFor(id);
  MutexLock lock(&shard.mu, concurrent_);
  HT_CHECK(f != nullptr && f->pins > 0);
  if (--f->pins == 0) {
    std::list<PageId>& list = ListFor(shard, f->segment);
    if (!shard.lru_spares.empty()) {
      shard.lru_spares.front() = id;
      list.splice(list.begin(), shard.lru_spares, shard.lru_spares.begin());
    } else {
      list.push_front(id);
    }
    f->lru_it = list.begin();
    f->in_lru = true;
    if (policy_ == CachePolicy::kSlru &&
        f->segment == CacheSegment::kProtected) {
      EnforceProtectedCapLocked(shard);
    }
  }
}

Status BufferPool::EvictOneIfNeeded(Shard& shard, bool demand) {
  const size_t cap = shard_capacity_.load(std::memory_order_relaxed);
  if (cap == 0) return Status::OK();
  // Loops only after a capacity shrink (or a pin overflow, below) left the
  // shard over target; at a fixed capacity this evicts at most one frame,
  // exactly like classic LRU.
  while (shard.frames.size() >= cap) {
    Status s = EvictVictimLocked(shard);
    if (s.ok()) continue;
    if (demand && s.IsResourceExhausted()) {
      // Every resident frame is pinned by an in-flight query. A demand
      // fetch must not fail on that transient state — concurrent workers
      // would see spurious ResourceExhausted whenever their pins happen
      // to overlap — so admit the frame over capacity and let this very
      // loop evict back down to target once pins release.
      ++shard.stats.pin_overflows;
      if (IoStats* tls = g_tls_io_sink) ++tls->pin_overflows;
      return Status::OK();
    }
    return s;
  }
  return Status::OK();
}

Status BufferPool::EvictVictimLocked(Shard& shard) {
  // Victim order under kSlru: STALE prefetch fills first (prefetched
  // before the shard's newest batch and still never referenced —
  // abandoned speculation), then the probationary tail, then any
  // remaining prefetch fills, then (only when nothing else is left) the
  // protected tail. The staleness gate matters: the batch a traversal
  // just issued is about to be consumed, and evicting it to make room
  // for the next demand miss would waste the batched read AND force a
  // blocking re-read. kLru keeps the single-list recency order.
  PageId victim = kInvalidPageId;
  bool found = false;
  auto take = [&](std::list<PageId>& list) {
    if (list.empty()) return false;
    victim = list.back();
    list.pop_back();
    return true;
  };
  auto take_stale_prefetch = [&]() HT_REQUIRES(shard.mu) {
    if (shard.prefetch_queue.empty()) return false;
    const PageId id = shard.prefetch_queue.back();
    auto fit = shard.frames.find(id);
    HT_CHECK(fit != shard.frames.end());
    if (fit->second->fill_gen >= shard.prefetch_gen) return false;
    victim = id;
    shard.prefetch_queue.pop_back();
    return true;
  };
  if (policy_ == CachePolicy::kSlru) {
    found = take_stale_prefetch() || take(shard.lru) ||
            take(shard.prefetch_queue) || take(shard.protected_lru);
  } else {
    found = take(shard.lru);
  }
  if (!found) {
    return Status::ResourceExhausted("buffer pool full and all pages pinned");
  }
  auto it = shard.frames.find(victim);
  HT_CHECK(it != shard.frames.end() && it->second->pins == 0);
  HT_RETURN_NOT_OK(WriteBack(shard, victim, it->second.get()));
  const size_t cls = static_cast<size_t>(it->second->admit_class);
  shard.frames.erase(it);
  ++shard.stats.evictions;
  ++shard.stats.class_evictions[cls];
  if (IoStats* tls = g_tls_io_sink) {
    ++tls->evictions;
    ++tls->class_evictions[cls];
  }
  return Status::OK();
}

Status BufferPool::WriteBack(Shard& shard, PageId id, Frame* f) {
  if (f->dirty) {
    {
      WriterLock flock(&file_mu_, concurrent_);
      HT_RETURN_NOT_OK(file_->Write(id, f->page));
    }
    ++shard.stats.writes;
    if (IoStats* tls = g_tls_io_sink) ++tls->writes;
    f->dirty = false;
  }
  return Status::OK();
}

Status BufferPool::FlushShardLocked(Shard& shard, PageId skip) {
  // Collect the dirty set under the shard lock (frames are address-stable
  // and cannot be evicted while the lock is held), then issue ONE batched
  // round trip. A singleton set degrades to a plain Write — no duplicate
  // scan, no iovec setup — via the existing WriteBack path.
  std::vector<PageId> ids;
  std::vector<const Page*> pages;
  Frame* single = nullptr;
  for (auto& [id, f] : shard.frames) {
    if (!f->dirty || id == skip) continue;
    ids.push_back(id);
    pages.push_back(&f->page);
    single = f.get();
  }
  if (ids.empty()) return Status::OK();
  if (ids.size() == 1) return WriteBack(shard, ids[0], single);
  {
    WriterLock flock(&file_mu_, concurrent_);
    HT_RETURN_NOT_OK(file_->WriteBatch(ids, pages));
  }
  // Clear dirty flags only after the whole batch succeeded; on error the
  // frames stay dirty and a retry re-sends them.
  for (PageId id : ids) shard.frames.find(id)->second->dirty = false;
  shard.stats.writes += ids.size();
  ++shard.stats.batch_writes;
  if (IoStats* tls = g_tls_io_sink) {
    tls->writes += ids.size();
    ++tls->batch_writes;
  }
  return Status::OK();
}

Status BufferPool::FlushAll() { return FlushAllExcept(kInvalidPageId); }

Status BufferPool::FlushAllExcept(PageId skip) {
  for (Shard& shard : shards_) {
    MutexLock lock(&shard.mu, concurrent_);
    HT_RETURN_NOT_OK(FlushShardLocked(shard, skip));
  }
  return Status::OK();
}

Status BufferPool::FlushPage(PageId id) {
  Shard& shard = ShardFor(id);
  MutexLock lock(&shard.mu, concurrent_);
  auto it = shard.frames.find(id);
  if (it == shard.frames.end()) return Status::OK();
  return WriteBack(shard, id, it->second.get());
}

Status BufferPool::EvictAll() {
  // Finish any in-flight prefetch first: a fill landing after the sweep
  // would silently warm a cache the caller just made cold.
  DrainPrefetch();
  HT_RETURN_NOT_OK(FlushAll());
  for (Shard& shard : shards_) {
    MutexLock lock(&shard.mu, concurrent_);
    for (auto it = shard.frames.begin(); it != shard.frames.end();) {
      if (it->second->pins == 0) {
        if (it->second->in_lru) {
          ListFor(shard, it->second->segment).erase(it->second->lru_it);
        }
        it = shard.frames.erase(it);
      } else {
        ++it;
      }
    }
  }
  return Status::OK();
}

void BufferPool::CountScan(PageId id, uint64_t rows, uint64_t survivors,
                           bool filtered, bool cursor) {
  const auto charge = [&](IoStats* s) {
    if (cursor) {
      s->cursor_scan_points += rows;
      if (filtered) {
        s->cursor_quant_refined += survivors;
        s->cursor_quant_pruned += rows - survivors;
      }
    } else {
      s->scan_points += rows;
      if (filtered) {
        s->quant_refined += survivors;
        s->quant_pruned += rows - survivors;
      }
    }
  };
  Shard& shard = ShardFor(id);
  MutexLock lock(&shard.mu, concurrent_);
  charge(&shard.stats);
  if (IoStats* tls = g_tls_io_sink) charge(tls);
}

const IoStats& BufferPool::stats() const {
  agg_stats_ = StatsSnapshot();
  return agg_stats_;
}

IoStats BufferPool::StatsSnapshot() const {
  IoStats total;
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mu, concurrent_);
    total.Accumulate(shard.stats);
  }
  return total;
}

void BufferPool::ResetStats() {
  for (Shard& shard : shards_) {
    MutexLock lock(&shard.mu, concurrent_);
    shard.stats.Reset();
  }
}

BufferPool::CacheSnapshot BufferPool::SnapshotCache() const {
  CacheSnapshot snap;
  snap.policy = policy_;
  snap.capacity_pages = capacity_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mu, concurrent_);
    snap.cached_pages += shard.frames.size();
    snap.probation_pages += shard.lru.size();
    snap.protected_pages += shard.protected_lru.size();
    snap.prefetch_queue_pages += shard.prefetch_queue.size();
    for (const auto& [id, f] : shard.frames) {
      if (f->pins > 0) ++snap.pinned_pages;
    }
    snap.stats.Accumulate(shard.stats);
  }
  return snap;
}

size_t BufferPool::cached_frames() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mu, concurrent_);
    n += shard.frames.size();
  }
  return n;
}

size_t BufferPool::pinned_frames() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mu, concurrent_);
    for (const auto& [id, f] : shard.frames) {
      if (f->pins > 0) ++n;
    }
  }
  return n;
}

// ---------------------------------------------------------------------------
// Debug pin tracking
// ---------------------------------------------------------------------------

void BufferPool::SetPinTracking(bool on) {
  {
    MutexLock lk(&pin_mu_);
    live_pins_.clear();
  }
  // Relaxed: the flag is flipped only at quiescence (documented contract);
  // pin paths need atomicity, not ordering, to read it.
  pin_tracking_.store(on, std::memory_order_relaxed);
}

uint64_t BufferPool::TrackPin(PageId id, const std::source_location& loc) {
  if (!pin_tracking_.load(std::memory_order_relaxed)) return 0;
  // Relaxed fetch_add: tokens only need to be unique, not ordered.
  const uint64_t token =
      next_pin_token_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lk(&pin_mu_);
  live_pins_.emplace(token,
                     PinSite{id, loc.file_name(), loc.line(),
                             loc.function_name()});
  return token;
}

void BufferPool::UntrackPin(uint64_t token) {
  MutexLock lk(&pin_mu_);
  live_pins_.erase(token);
}

Status BufferPool::AssertNoPins() const {
  // Count pins under the shard locks first; pin_mu_ is a leaf lock, so the
  // attribution pass runs after every shard lock is released.
  uint64_t total_pins = 0;
  uint64_t frames = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mu, concurrent_);
    for (const auto& [id, f] : shard.frames) {
      if (f->pins > 0) {
        ++frames;
        total_pins += static_cast<uint64_t>(f->pins);
      }
    }
  }
  if (total_pins == 0) return Status::OK();

  std::string msg = "buffer pool pin leak: " + std::to_string(total_pins) +
                    " pin(s) on " + std::to_string(frames) + " frame(s)";
  if (pin_tracking_.load(std::memory_order_relaxed)) {
    // Group live registrations by call site for attribution.
    std::map<std::string, std::pair<uint64_t, std::string>> by_site;
    MutexLock lk(&pin_mu_);
    for (const auto& [token, site] : live_pins_) {
      std::string key = std::string(site.file) + ":" +
                        std::to_string(site.line) + " (" + site.function + ")";
      auto& slot = by_site[key];
      ++slot.first;
      if (!slot.second.empty()) slot.second += ",";
      slot.second += std::to_string(site.page);
    }
    for (const auto& [site, info] : by_site) {
      msg += "\n  " + std::to_string(info.first) + " pin(s) from " + site +
             " on page(s) [" + info.second + "]";
    }
  } else {
    msg += " (enable SetPinTracking for call-site attribution)";
  }
  return Status::Internal(std::move(msg));
}

}  // namespace ht
