#include "storage/buffer_pool.h"

namespace ht {

namespace {
/// Thread-local per-worker accounting sink (see IoStatsScope).
thread_local IoStats* g_tls_io_sink = nullptr;
}  // namespace

// ---------------------------------------------------------------------------
// IoStatsScope
// ---------------------------------------------------------------------------

IoStatsScope::IoStatsScope(IoStats* sink) : prev_(g_tls_io_sink) {
  g_tls_io_sink = sink;
}

IoStatsScope::~IoStatsScope() { g_tls_io_sink = prev_; }

// ---------------------------------------------------------------------------
// PageHandle
// ---------------------------------------------------------------------------

size_t PageHandle::size() const {
  HT_DCHECK(valid());
  return pool_->page_size();
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(id_, frame_);
    pool_ = nullptr;
    frame_ = nullptr;
    id_ = kInvalidPageId;
  }
}

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

BufferPool::BufferPool(PagedFile* file, size_t capacity_pages)
    : file_(file), capacity_(capacity_pages), shard_capacity_(capacity_pages) {}

BufferPool::~BufferPool() {
  // Best effort write-back; durability requires an explicit FlushAll.
  (void)FlushAll();
}

Status BufferPool::SetConcurrentMode(bool on) {
  if (on == concurrent_) return Status::OK();
  if (pinned_frames() != 0) {
    return Status::InvalidArgument(
        "BufferPool mode switch requires no pinned frames");
  }
  // Collect every cached frame, flip the mode, and re-bucket under the new
  // ShardIndex mapping. LRU recency is rebuilt arbitrarily; recency order
  // across a mode switch is not meaningful anyway.
  std::unordered_map<PageId, std::unique_ptr<Frame>> all;
  for (Shard& s : shards_) {
    for (auto& [id, f] : s.frames) {
      if (f->in_lru) {
        s.lru.erase(f->lru_it);
        f->in_lru = false;
      }
      all.emplace(id, std::move(f));
    }
    s.frames.clear();
    s.lru.clear();
  }
  concurrent_ = on;
  shard_capacity_ =
      concurrent_ ? (capacity_ == 0 ? 0 : (capacity_ + kShardCount - 1) /
                                              kShardCount)
                  : capacity_;
  for (auto& [id, f] : all) {
    Shard& s = ShardFor(id);
    s.lru.push_front(id);
    f->lru_it = s.lru.begin();
    f->in_lru = true;
    s.frames.emplace(id, std::move(f));
  }
  return Status::OK();
}

Result<PageHandle> BufferPool::Fetch(PageId id) {
  Shard& shard = ShardFor(id);
  auto lock = LockShard(shard);
  ++shard.stats.logical_reads;
  if (IoStats* tls = g_tls_io_sink) ++tls->logical_reads;
  Frame* f;
  auto it = shard.frames.find(id);
  if (it == shard.frames.end()) {
    HT_RETURN_NOT_OK(EvictOneIfNeeded(shard));
    auto frame = std::make_unique<Frame>(file_->page_size());
    {
      auto flock = LockFile();
      HT_RETURN_NOT_OK(file_->Read(id, &frame->page));
    }
    ++shard.stats.physical_reads;
    if (IoStats* tls = g_tls_io_sink) ++tls->physical_reads;
    f = frame.get();
    shard.frames.emplace(id, std::move(frame));
  } else {
    f = it->second.get();
    if (f->in_lru) {
      shard.lru_spares.splice(shard.lru_spares.begin(), shard.lru, f->lru_it);
      f->in_lru = false;
    }
  }
  ++f->pins;
  return PageHandle(this, id, f);
}

Result<PageHandle> BufferPool::New() {
  PageId id;
  {
    auto flock = LockFile();
    HT_ASSIGN_OR_RETURN(id, file_->Allocate());
  }
  Shard& shard = ShardFor(id);
  auto lock = LockShard(shard);
  ++shard.stats.allocations;
  ++shard.stats.logical_reads;  // a new node still costs one access to write
  if (IoStats* tls = g_tls_io_sink) {
    ++tls->allocations;
    ++tls->logical_reads;
  }
  HT_RETURN_NOT_OK(EvictOneIfNeeded(shard));
  auto frame = std::make_unique<Frame>(file_->page_size());
  frame->dirty = true;
  frame->pins = 1;
  Frame* f = frame.get();
  shard.frames.emplace(id, std::move(frame));
  return PageHandle(this, id, f);
}

Status BufferPool::Free(PageId id) {
  Shard& shard = ShardFor(id);
  {
    auto lock = LockShard(shard);
    auto it = shard.frames.find(id);
    if (it != shard.frames.end()) {
      Frame* f = it->second.get();
      if (f->pins != 0) {
        return Status::InvalidArgument("BufferPool::Free of pinned page " +
                                       std::to_string(id));
      }
      if (f->in_lru) shard.lru.erase(f->lru_it);
      shard.frames.erase(it);
    }
    ++shard.stats.frees;
    if (IoStats* tls = g_tls_io_sink) ++tls->frees;
  }
  auto flock = LockFile();
  return file_->Free(id);
}

void BufferPool::Unpin(PageId id, Frame* f) {
  Shard& shard = ShardFor(id);
  auto lock = LockShard(shard);
  HT_CHECK(f != nullptr && f->pins > 0);
  if (--f->pins == 0) {
    if (!shard.lru_spares.empty()) {
      shard.lru_spares.front() = id;
      shard.lru.splice(shard.lru.begin(), shard.lru_spares,
                       shard.lru_spares.begin());
    } else {
      shard.lru.push_front(id);
    }
    f->lru_it = shard.lru.begin();
    f->in_lru = true;
  }
}

Status BufferPool::EvictOneIfNeeded(Shard& shard) {
  if (shard_capacity_ == 0 || shard.frames.size() < shard_capacity_) {
    return Status::OK();
  }
  if (shard.lru.empty()) {
    return Status::ResourceExhausted("buffer pool full and all pages pinned");
  }
  // Evict the least recently used unpinned page (of this shard).
  PageId victim = shard.lru.back();
  shard.lru.pop_back();
  auto it = shard.frames.find(victim);
  HT_CHECK(it != shard.frames.end() && it->second->pins == 0);
  HT_RETURN_NOT_OK(WriteBack(victim, it->second.get()));
  shard.frames.erase(it);
  ++shard.stats.evictions;
  if (IoStats* tls = g_tls_io_sink) ++tls->evictions;
  return Status::OK();
}

Status BufferPool::WriteBack(PageId id, Frame* f) {
  if (f->dirty) {
    {
      auto flock = LockFile();
      HT_RETURN_NOT_OK(file_->Write(id, f->page));
    }
    Shard& shard = ShardFor(id);  // caller already holds the shard lock
    ++shard.stats.writes;
    if (IoStats* tls = g_tls_io_sink) ++tls->writes;
    f->dirty = false;
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (Shard& shard : shards_) {
    auto lock = LockShard(shard);
    for (auto& [id, f] : shard.frames) {
      HT_RETURN_NOT_OK(WriteBack(id, f.get()));
    }
  }
  return Status::OK();
}

Status BufferPool::EvictAll() {
  HT_RETURN_NOT_OK(FlushAll());
  for (Shard& shard : shards_) {
    auto lock = LockShard(shard);
    for (auto it = shard.frames.begin(); it != shard.frames.end();) {
      if (it->second->pins == 0) {
        if (it->second->in_lru) shard.lru.erase(it->second->lru_it);
        it = shard.frames.erase(it);
      } else {
        ++it;
      }
    }
  }
  return Status::OK();
}

const IoStats& BufferPool::stats() const {
  agg_stats_ = StatsSnapshot();
  return agg_stats_;
}

IoStats BufferPool::StatsSnapshot() const {
  IoStats total;
  for (const Shard& shard : shards_) {
    auto lock = LockShard(shard);
    total.Accumulate(shard.stats);
  }
  return total;
}

void BufferPool::ResetStats() {
  for (Shard& shard : shards_) {
    auto lock = LockShard(shard);
    shard.stats.Reset();
  }
}

size_t BufferPool::cached_frames() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    auto lock = LockShard(shard);
    n += shard.frames.size();
  }
  return n;
}

size_t BufferPool::pinned_frames() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    auto lock = LockShard(shard);
    for (const auto& [id, f] : shard.frames) {
      if (f->pins > 0) ++n;
    }
  }
  return n;
}

}  // namespace ht
