#include "storage/buffer_pool.h"

namespace ht {

// ---------------------------------------------------------------------------
// PageHandle
// ---------------------------------------------------------------------------

uint8_t* PageHandle::data() {
  HT_CHECK(valid());
  return pool_->FindFrame(id_)->page.data();
}

const uint8_t* PageHandle::data() const {
  HT_CHECK(valid());
  return pool_->FindFrame(id_)->page.data();
}

size_t PageHandle::size() const {
  HT_CHECK(valid());
  return pool_->page_size();
}

void PageHandle::MarkDirty() {
  HT_CHECK(valid());
  pool_->FindFrame(id_)->dirty = true;
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(id_);
    pool_ = nullptr;
    id_ = kInvalidPageId;
  }
}

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

BufferPool::BufferPool(PagedFile* file, size_t capacity_pages)
    : file_(file), capacity_(capacity_pages) {}

BufferPool::~BufferPool() {
  // Best effort write-back; durability requires an explicit FlushAll.
  (void)FlushAll();
}

BufferPool::Frame* BufferPool::FindFrame(PageId id) {
  auto it = frames_.find(id);
  return it == frames_.end() ? nullptr : it->second.get();
}

Result<PageHandle> BufferPool::Fetch(PageId id) {
  ++stats_.logical_reads;
  Frame* f = FindFrame(id);
  if (f == nullptr) {
    HT_RETURN_NOT_OK(EvictOneIfNeeded());
    auto frame = std::make_unique<Frame>(file_->page_size());
    HT_RETURN_NOT_OK(file_->Read(id, &frame->page));
    ++stats_.physical_reads;
    f = frame.get();
    frames_.emplace(id, std::move(frame));
  } else if (f->in_lru) {
    lru_.erase(f->lru_it);
    f->in_lru = false;
  }
  ++f->pins;
  return PageHandle(this, id);
}

Result<PageHandle> BufferPool::New() {
  HT_ASSIGN_OR_RETURN(PageId id, file_->Allocate());
  ++stats_.allocations;
  ++stats_.logical_reads;  // a new node still costs one access to write
  HT_RETURN_NOT_OK(EvictOneIfNeeded());
  auto frame = std::make_unique<Frame>(file_->page_size());
  frame->dirty = true;
  frame->pins = 1;
  frames_.emplace(id, std::move(frame));
  return PageHandle(this, id);
}

Status BufferPool::Free(PageId id) {
  Frame* f = FindFrame(id);
  if (f != nullptr) {
    if (f->pins != 0) {
      return Status::InvalidArgument("BufferPool::Free of pinned page " +
                                     std::to_string(id));
    }
    if (f->in_lru) lru_.erase(f->lru_it);
    frames_.erase(id);
  }
  ++stats_.frees;
  return file_->Free(id);
}

void BufferPool::Unpin(PageId id) {
  Frame* f = FindFrame(id);
  HT_CHECK(f != nullptr && f->pins > 0);
  if (--f->pins == 0) {
    lru_.push_front(id);
    f->lru_it = lru_.begin();
    f->in_lru = true;
  }
}

Status BufferPool::EvictOneIfNeeded() {
  if (capacity_ == 0 || frames_.size() < capacity_) return Status::OK();
  if (lru_.empty()) {
    return Status::ResourceExhausted("buffer pool full and all pages pinned");
  }
  // Evict the least recently used unpinned page.
  PageId victim = lru_.back();
  lru_.pop_back();
  Frame* f = FindFrame(victim);
  HT_CHECK(f != nullptr && f->pins == 0);
  HT_RETURN_NOT_OK(WriteBack(victim, f));
  frames_.erase(victim);
  ++stats_.evictions;
  return Status::OK();
}

Status BufferPool::WriteBack(PageId id, Frame* f) {
  if (f->dirty) {
    HT_RETURN_NOT_OK(file_->Write(id, f->page));
    ++stats_.writes;
    f->dirty = false;
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (auto& [id, f] : frames_) {
    HT_RETURN_NOT_OK(WriteBack(id, f.get()));
  }
  return Status::OK();
}

Status BufferPool::EvictAll() {
  HT_RETURN_NOT_OK(FlushAll());
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (it->second->pins == 0) {
      if (it->second->in_lru) lru_.erase(it->second->lru_it);
      it = frames_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

size_t BufferPool::pinned_frames() const {
  size_t n = 0;
  for (const auto& [id, f] : frames_) {
    if (f->pins > 0) ++n;
  }
  return n;
}

}  // namespace ht
