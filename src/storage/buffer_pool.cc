#include "storage/buffer_pool.h"

#include <algorithm>
#include <map>
#include <string>

namespace ht {

namespace {
/// Thread-local per-worker accounting sink (see IoStatsScope).
thread_local IoStats* g_tls_io_sink = nullptr;
}  // namespace

// ---------------------------------------------------------------------------
// IoStatsScope
// ---------------------------------------------------------------------------

IoStatsScope::IoStatsScope(IoStats* sink) : prev_(g_tls_io_sink) {
  g_tls_io_sink = sink;
}

IoStatsScope::~IoStatsScope() { g_tls_io_sink = prev_; }

// ---------------------------------------------------------------------------
// PageHandle
// ---------------------------------------------------------------------------

size_t PageHandle::size() const {
  HT_DCHECK(valid());
  return pool_->page_size();
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(id_, frame_);
    if (pin_token_ != 0) pool_->UntrackPin(pin_token_);
    pool_ = nullptr;
    frame_ = nullptr;
    id_ = kInvalidPageId;
    pin_token_ = 0;
  }
}

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

BufferPool::BufferPool(PagedFile* file, size_t capacity_pages)
    : file_(file), capacity_(capacity_pages), shard_capacity_(capacity_pages) {
#ifdef HT_DEBUG_VALIDATE
  pin_tracking_.store(true, std::memory_order_relaxed);
#endif
}

BufferPool::~BufferPool() {
  DrainPrefetch();
  // Best effort write-back; durability requires an explicit FlushAll.
  (void)FlushAll();
}

Status BufferPool::SetConcurrentMode(bool on) {
  if (on == concurrent_) return Status::OK();
  DrainPrefetch();
  if (pinned_frames() != 0) {
    return Status::InvalidArgument(
        "BufferPool mode switch requires no pinned frames");
  }
  // Collect every cached frame, flip the mode, and re-bucket under the new
  // ShardIndex mapping. LRU recency is rebuilt arbitrarily; recency order
  // across a mode switch is not meaningful anyway.
  std::unordered_map<PageId, std::unique_ptr<Frame>> all;
  for (Shard& s : shards_) {
    for (auto& [id, f] : s.frames) {
      if (f->in_lru) {
        s.lru.erase(f->lru_it);
        f->in_lru = false;
      }
      all.emplace(id, std::move(f));
    }
    s.frames.clear();
    s.lru.clear();
  }
  concurrent_ = on;
  shard_capacity_ =
      concurrent_ ? (capacity_ == 0 ? 0 : (capacity_ + kShardCount - 1) /
                                              kShardCount)
                  : capacity_;
  for (auto& [id, f] : all) {
    Shard& s = ShardFor(id);
    s.lru.push_front(id);
    f->lru_it = s.lru.begin();
    f->in_lru = true;
    s.frames.emplace(id, std::move(f));
  }
  return Status::OK();
}

Result<PageHandle> BufferPool::Fetch(PageId id, std::source_location loc) {
  Shard& shard = ShardFor(id);
  auto lock = LockShard(shard);
  ++shard.stats.logical_reads;
  if (IoStats* tls = g_tls_io_sink) ++tls->logical_reads;
  bool checked_inflight = false;
  for (;;) {
    auto it = shard.frames.find(id);
    if (it != shard.frames.end()) {
      Frame* f = it->second.get();
      if (f->prefetched) {
        f->prefetched = false;
        ++shard.stats.prefetch_hits;
        if (IoStats* tls = g_tls_io_sink) ++tls->prefetch_hits;
      }
      if (f->in_lru) {
        shard.lru_spares.splice(shard.lru_spares.begin(), shard.lru,
                                f->lru_it);
        f->in_lru = false;
      }
      ++f->pins;
      return PageHandle(this, id, f, TrackPin(id, loc));
    }
    // Miss. If an async prefetch of this page is in flight, wait for the
    // fill instead of issuing a duplicate read, then re-check the map.
    // The atomic fast path keeps the no-prefetch miss free of prefetch_mu_
    // traffic; the guard also keeps serial mode (non-owning shard lock)
    // out of the unlock/relock dance. The dance runs at most once: the
    // shard lock is dropped during it, so the map MUST be re-checked
    // afterwards (a racing Fetch/fill may have installed the frame in the
    // window — installing a duplicate would dangle the returned pin), and
    // the one-shot guard keeps a busy in-flight set elsewhere in the pool
    // from looping this fetch forever.
    if (concurrent_ && !checked_inflight &&
        inflight_count_.load(std::memory_order_acquire) > 0) {
      checked_inflight = true;
      lock.unlock();
      {
        std::unique_lock<std::mutex> pl(prefetch_mu_);
        while (inflight_.count(id) != 0) {
          prefetch_cv_.wait(pl);
        }
      }
      lock.lock();
      // The fill installed the frame (retry finds it) or dropped it
      // (no room / read error: retry falls through to a normal miss).
      continue;
    }
    break;
  }
  HT_RETURN_NOT_OK(EvictOneIfNeeded(shard));
  auto frame = std::make_unique<Frame>(file_->page_size());
  {
    // Shared lock: positional reads run concurrently with each other and
    // only exclude allocation/extension and write-back.
    auto flock = LockFileShared();
    HT_RETURN_NOT_OK(file_->Read(id, &frame->page));
  }
  ++shard.stats.physical_reads;
  if (IoStats* tls = g_tls_io_sink) ++tls->physical_reads;
  Frame* f = frame.get();
  f->pins = 1;
  shard.frames.emplace(id, std::move(frame));
  return PageHandle(this, id, f, TrackPin(id, loc));
}

Status BufferPool::FetchMany(std::span<const PageId> ids,
                             std::vector<PageHandle>* out,
                             std::source_location loc) {
  out->clear();
  if (ids.empty()) return Status::OK();
  out->reserve(ids.size());

  // Pass 1: pin hits, leave placeholder handles for misses, and collect
  // each distinct missing id once (ReadBatch tolerates duplicates, but a
  // duplicate here would install two frames for one page).
  std::vector<PageId> miss_ids;
  std::vector<std::unique_ptr<Frame>> miss_frames;
  std::vector<Page*> miss_pages;
  std::unordered_map<PageId, size_t> miss_slot;  // id -> index in miss_*
  for (PageId id : ids) {
    Shard& shard = ShardFor(id);
    auto lock = LockShard(shard);
    ++shard.stats.logical_reads;
    if (IoStats* tls = g_tls_io_sink) ++tls->logical_reads;
    auto it = shard.frames.find(id);
    if (it != shard.frames.end()) {
      Frame* f = it->second.get();
      if (f->prefetched) {
        f->prefetched = false;
        ++shard.stats.prefetch_hits;
        if (IoStats* tls = g_tls_io_sink) ++tls->prefetch_hits;
      }
      if (f->in_lru) {
        shard.lru_spares.splice(shard.lru_spares.begin(), shard.lru,
                                f->lru_it);
        f->in_lru = false;
      }
      ++f->pins;
      out->push_back(PageHandle(this, id, f, TrackPin(id, loc)));
    } else {
      out->push_back(PageHandle());
      if (miss_slot.emplace(id, miss_ids.size()).second) {
        miss_ids.push_back(id);
        auto frame = std::make_unique<Frame>(file_->page_size());
        miss_pages.push_back(&frame->page);
        miss_frames.push_back(std::move(frame));
      }
    }
  }
  if (miss_ids.empty()) return Status::OK();

  // One round trip for every miss.
  Status read_status;
  {
    auto flock = LockFileShared();
    read_status = file_->ReadBatch(miss_ids, miss_pages);
  }
  if (!read_status.ok()) {
    out->clear();  // releases every pass-1 pin
    return read_status;
  }
  {
    Shard& shard = ShardFor(miss_ids[0]);
    auto lock = LockShard(shard);
    ++shard.stats.batch_reads;
    if (IoStats* tls = g_tls_io_sink) ++tls->batch_reads;
  }

  // Pass 2: install each miss (first occurrence) and pin every occurrence.
  // A frame may already be present — installed by an earlier duplicate in
  // this very batch, or by a racing Fetch/prefetch fill — in which case the
  // existing frame wins and our read is discarded.
  for (size_t i = 0; i < ids.size(); ++i) {
    if ((*out)[i].valid()) continue;
    const PageId id = ids[i];
    Shard& shard = ShardFor(id);
    auto lock = LockShard(shard);
    Frame* f;
    auto it = shard.frames.find(id);
    if (it != shard.frames.end()) {
      f = it->second.get();
      f->prefetched = false;  // pinned through us, not through a prior hit
      if (f->in_lru) {
        shard.lru_spares.splice(shard.lru_spares.begin(), shard.lru,
                                f->lru_it);
        f->in_lru = false;
      }
    } else {
      Status evict_status = EvictOneIfNeeded(shard);
      if (!evict_status.ok()) {
        if (lock.owns_lock()) lock.unlock();  // out->clear() re-locks shards
        out->clear();
        return evict_status;
      }
      ++shard.stats.physical_reads;
      if (IoStats* tls = g_tls_io_sink) ++tls->physical_reads;
      auto& frame = miss_frames[miss_slot.find(id)->second];
      HT_CHECK(frame != nullptr);
      f = frame.get();
      shard.frames.emplace(id, std::move(frame));
    }
    ++f->pins;
    (*out)[i] = PageHandle(this, id, f, TrackPin(id, loc));
  }
  return Status::OK();
}

void BufferPool::Prefetch(std::span<const PageId> ids) {
  if (ids.empty()) return;
  // Filter: keep each id once, and only if not already cached. Linear
  // dedup — prefetch batches are a handful of pages (the frontier depth).
  std::vector<PageId> need;
  need.reserve(ids.size());
  for (PageId id : ids) {
    if (std::find(need.begin(), need.end(), id) != need.end()) continue;
    Shard& shard = ShardFor(id);
    auto lock = LockShard(shard);
    if (shard.frames.find(id) != shard.frames.end()) continue;
    need.push_back(id);
  }
  if (need.empty()) return;

  bool async = false;
  if (concurrent_ && async_exec_) {
    std::lock_guard<std::mutex> pl(prefetch_mu_);
    need.erase(std::remove_if(need.begin(), need.end(),
                              [this](PageId id) {
                                return inflight_.count(id) != 0;
                              }),
               need.end());
    if (need.empty()) return;
    inflight_.insert(need.begin(), need.end());
    inflight_count_.fetch_add(need.size(), std::memory_order_release);
    async = true;
  }

  {
    Shard& shard = ShardFor(need[0]);
    auto lock = LockShard(shard);
    shard.stats.prefetch_issued += need.size();
    if (IoStats* tls = g_tls_io_sink) tls->prefetch_issued += need.size();
  }

  if (async) {
    std::vector<PageId> task_ids = need;
    const bool accepted = async_exec_([this, ids2 = std::move(task_ids)]() mutable {
      FillPrefetch(std::move(ids2), /*async=*/true);
    });
    // Executor refused (e.g. saturated queue): fill on this thread, still
    // clearing the inflight marks we just planted.
    if (!accepted) FillPrefetch(std::move(need), /*async=*/true);
  } else {
    FillPrefetch(std::move(need), /*async=*/false);
  }
}

void BufferPool::FillPrefetch(std::vector<PageId> ids, bool async) {
  std::vector<std::unique_ptr<Frame>> frames;
  std::vector<Page*> pages;
  frames.reserve(ids.size());
  pages.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    frames.push_back(std::make_unique<Frame>(file_->page_size()));
    pages.push_back(&frames.back()->page);
  }
  Status read_status;
  {
    auto flock = LockFileShared();
    read_status = file_->ReadBatch(ids, pages);
  }
  // Read errors are swallowed: prefetch is best-effort, and the Fetch that
  // actually needs the page will surface the error.
  if (read_status.ok()) {
    {
      Shard& shard = ShardFor(ids[0]);
      auto lock = LockShard(shard);
      ++shard.stats.batch_reads;
      if (IoStats* tls = g_tls_io_sink) ++tls->batch_reads;
    }
    for (size_t i = 0; i < ids.size(); ++i) {
      const PageId id = ids[i];
      Shard& shard = ShardFor(id);
      auto lock = LockShard(shard);
      if (shard.frames.find(id) != shard.frames.end()) continue;  // raced
      if (!EvictOneIfNeeded(shard).ok()) continue;  // no room: drop page
      ++shard.stats.physical_reads;
      if (IoStats* tls = g_tls_io_sink) ++tls->physical_reads;
      Frame* f = frames[i].get();
      f->prefetched = true;
      shard.lru.push_front(id);
      f->lru_it = shard.lru.begin();
      f->in_lru = true;
      shard.frames.emplace(id, std::move(frames[i]));
    }
  }
  if (async) {
    // Clear the in-flight marks only after every shard lock is released
    // (lock order: prefetch_mu_ never follows a shard lock) and notify
    // both Fetch waiters and DrainPrefetch. The notify happens under the
    // lock on purpose: once a drainer (e.g. the destructor) re-acquires
    // prefetch_mu_ and sees inflight_ empty, this thread is provably done
    // touching the condition variable, so tearing the pool down is safe.
    std::lock_guard<std::mutex> pl(prefetch_mu_);
    for (PageId id : ids) inflight_.erase(id);
    inflight_count_.fetch_sub(ids.size(), std::memory_order_release);
    prefetch_cv_.notify_all();
  }
}

bool BufferPool::Cached(PageId id) const {
  const Shard& shard = shards_[ShardIndex(id)];
  auto lock = LockShard(shard);
  return shard.frames.find(id) != shard.frames.end();
}

void BufferPool::DrainPrefetch() {
  std::unique_lock<std::mutex> pl(prefetch_mu_);
  prefetch_cv_.wait(pl, [this] { return inflight_.empty(); });
}

void BufferPool::SetPrefetchExecutor(AsyncExec exec) {
  // Quiesce before swapping so no in-flight task outlives its executor's
  // guarantees (detaching is documented to block until fills drain).
  DrainPrefetch();
  async_exec_ = std::move(exec);
}

Result<PageHandle> BufferPool::New(std::source_location loc) {
  PageId id;
  {
    auto flock = LockFile();
    HT_ASSIGN_OR_RETURN(id, file_->Allocate());
  }
  Shard& shard = ShardFor(id);
  auto lock = LockShard(shard);
  ++shard.stats.allocations;
  ++shard.stats.logical_reads;  // a new node still costs one access to write
  if (IoStats* tls = g_tls_io_sink) {
    ++tls->allocations;
    ++tls->logical_reads;
  }
  HT_RETURN_NOT_OK(EvictOneIfNeeded(shard));
  auto frame = std::make_unique<Frame>(file_->page_size());
  frame->dirty = true;
  frame->pins = 1;
  Frame* f = frame.get();
  shard.frames.emplace(id, std::move(frame));
  return PageHandle(this, id, f, TrackPin(id, loc));
}

Status BufferPool::Free(PageId id) {
  Shard& shard = ShardFor(id);
  {
    auto lock = LockShard(shard);
    auto it = shard.frames.find(id);
    if (it != shard.frames.end()) {
      Frame* f = it->second.get();
      if (f->pins != 0) {
        return Status::InvalidArgument("BufferPool::Free of pinned page " +
                                       std::to_string(id));
      }
      if (f->in_lru) shard.lru.erase(f->lru_it);
      shard.frames.erase(it);
    }
    ++shard.stats.frees;
    if (IoStats* tls = g_tls_io_sink) ++tls->frees;
  }
  auto flock = LockFile();
  return file_->Free(id);
}

void BufferPool::Unpin(PageId id, Frame* f) {
  Shard& shard = ShardFor(id);
  auto lock = LockShard(shard);
  HT_CHECK(f != nullptr && f->pins > 0);
  if (--f->pins == 0) {
    if (!shard.lru_spares.empty()) {
      shard.lru_spares.front() = id;
      shard.lru.splice(shard.lru.begin(), shard.lru_spares,
                       shard.lru_spares.begin());
    } else {
      shard.lru.push_front(id);
    }
    f->lru_it = shard.lru.begin();
    f->in_lru = true;
  }
}

Status BufferPool::EvictOneIfNeeded(Shard& shard) {
  if (shard_capacity_ == 0 || shard.frames.size() < shard_capacity_) {
    return Status::OK();
  }
  if (shard.lru.empty()) {
    return Status::ResourceExhausted("buffer pool full and all pages pinned");
  }
  // Evict the least recently used unpinned page (of this shard).
  PageId victim = shard.lru.back();
  shard.lru.pop_back();
  auto it = shard.frames.find(victim);
  HT_CHECK(it != shard.frames.end() && it->second->pins == 0);
  HT_RETURN_NOT_OK(WriteBack(victim, it->second.get()));
  shard.frames.erase(it);
  ++shard.stats.evictions;
  if (IoStats* tls = g_tls_io_sink) ++tls->evictions;
  return Status::OK();
}

Status BufferPool::WriteBack(PageId id, Frame* f) {
  if (f->dirty) {
    {
      auto flock = LockFile();
      HT_RETURN_NOT_OK(file_->Write(id, f->page));
    }
    Shard& shard = ShardFor(id);  // caller already holds the shard lock
    ++shard.stats.writes;
    if (IoStats* tls = g_tls_io_sink) ++tls->writes;
    f->dirty = false;
  }
  return Status::OK();
}

Status BufferPool::FlushShardLocked(Shard& shard, PageId skip) {
  // Collect the dirty set under the shard lock (frames are address-stable
  // and cannot be evicted while the lock is held), then issue ONE batched
  // round trip. A singleton set degrades to a plain Write — no duplicate
  // scan, no iovec setup — via the existing WriteBack path.
  std::vector<PageId> ids;
  std::vector<const Page*> pages;
  Frame* single = nullptr;
  for (auto& [id, f] : shard.frames) {
    if (!f->dirty || id == skip) continue;
    ids.push_back(id);
    pages.push_back(&f->page);
    single = f.get();
  }
  if (ids.empty()) return Status::OK();
  if (ids.size() == 1) return WriteBack(ids[0], single);
  {
    auto flock = LockFile();
    HT_RETURN_NOT_OK(file_->WriteBatch(ids, pages));
  }
  // Clear dirty flags only after the whole batch succeeded; on error the
  // frames stay dirty and a retry re-sends them.
  for (PageId id : ids) shard.frames.find(id)->second->dirty = false;
  shard.stats.writes += ids.size();
  ++shard.stats.batch_writes;
  if (IoStats* tls = g_tls_io_sink) {
    tls->writes += ids.size();
    ++tls->batch_writes;
  }
  return Status::OK();
}

Status BufferPool::FlushAll() { return FlushAllExcept(kInvalidPageId); }

Status BufferPool::FlushAllExcept(PageId skip) {
  for (Shard& shard : shards_) {
    auto lock = LockShard(shard);
    HT_RETURN_NOT_OK(FlushShardLocked(shard, skip));
  }
  return Status::OK();
}

Status BufferPool::FlushPage(PageId id) {
  Shard& shard = ShardFor(id);
  auto lock = LockShard(shard);
  auto it = shard.frames.find(id);
  if (it == shard.frames.end()) return Status::OK();
  return WriteBack(id, it->second.get());
}

Status BufferPool::EvictAll() {
  // Finish any in-flight prefetch first: a fill landing after the sweep
  // would silently warm a cache the caller just made cold.
  DrainPrefetch();
  HT_RETURN_NOT_OK(FlushAll());
  for (Shard& shard : shards_) {
    auto lock = LockShard(shard);
    for (auto it = shard.frames.begin(); it != shard.frames.end();) {
      if (it->second->pins == 0) {
        if (it->second->in_lru) shard.lru.erase(it->second->lru_it);
        it = shard.frames.erase(it);
      } else {
        ++it;
      }
    }
  }
  return Status::OK();
}

void BufferPool::CountScan(PageId id, uint64_t rows, uint64_t survivors,
                           bool filtered) {
  Shard& shard = ShardFor(id);
  auto lock = LockShard(shard);
  shard.stats.scan_points += rows;
  if (filtered) {
    shard.stats.quant_refined += survivors;
    shard.stats.quant_pruned += rows - survivors;
  }
  if (IoStats* tls = g_tls_io_sink) {
    tls->scan_points += rows;
    if (filtered) {
      tls->quant_refined += survivors;
      tls->quant_pruned += rows - survivors;
    }
  }
}

const IoStats& BufferPool::stats() const {
  agg_stats_ = StatsSnapshot();
  return agg_stats_;
}

IoStats BufferPool::StatsSnapshot() const {
  IoStats total;
  for (const Shard& shard : shards_) {
    auto lock = LockShard(shard);
    total.Accumulate(shard.stats);
  }
  return total;
}

void BufferPool::ResetStats() {
  for (Shard& shard : shards_) {
    auto lock = LockShard(shard);
    shard.stats.Reset();
  }
}

size_t BufferPool::cached_frames() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    auto lock = LockShard(shard);
    n += shard.frames.size();
  }
  return n;
}

size_t BufferPool::pinned_frames() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    auto lock = LockShard(shard);
    for (const auto& [id, f] : shard.frames) {
      if (f->pins > 0) ++n;
    }
  }
  return n;
}

// ---------------------------------------------------------------------------
// Debug pin tracking
// ---------------------------------------------------------------------------

void BufferPool::SetPinTracking(bool on) {
  {
    std::lock_guard<std::mutex> lk(pin_mu_);
    live_pins_.clear();
  }
  pin_tracking_.store(on, std::memory_order_relaxed);
}

uint64_t BufferPool::TrackPin(PageId id, const std::source_location& loc) {
  if (!pin_tracking_.load(std::memory_order_relaxed)) return 0;
  const uint64_t token =
      next_pin_token_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(pin_mu_);
  live_pins_.emplace(token,
                     PinSite{id, loc.file_name(), loc.line(),
                             loc.function_name()});
  return token;
}

void BufferPool::UntrackPin(uint64_t token) {
  std::lock_guard<std::mutex> lk(pin_mu_);
  live_pins_.erase(token);
}

Status BufferPool::AssertNoPins() const {
  // Count pins under the shard locks first; pin_mu_ is a leaf lock, so the
  // attribution pass runs after every shard lock is released.
  uint64_t total_pins = 0;
  uint64_t frames = 0;
  for (const Shard& shard : shards_) {
    auto lock = LockShard(shard);
    for (const auto& [id, f] : shard.frames) {
      if (f->pins > 0) {
        ++frames;
        total_pins += static_cast<uint64_t>(f->pins);
      }
    }
  }
  if (total_pins == 0) return Status::OK();

  std::string msg = "buffer pool pin leak: " + std::to_string(total_pins) +
                    " pin(s) on " + std::to_string(frames) + " frame(s)";
  if (pin_tracking_.load(std::memory_order_relaxed)) {
    // Group live registrations by call site for attribution.
    std::map<std::string, std::pair<uint64_t, std::string>> by_site;
    std::lock_guard<std::mutex> lk(pin_mu_);
    for (const auto& [token, site] : live_pins_) {
      std::string key = std::string(site.file) + ":" +
                        std::to_string(site.line) + " (" + site.function + ")";
      auto& slot = by_site[key];
      ++slot.first;
      if (!slot.second.empty()) slot.second += ",";
      slot.second += std::to_string(site.page);
    }
    for (const auto& [site, info] : by_site) {
      msg += "\n  " + std::to_string(info.first) + " pin(s) from " + site +
             " on page(s) [" + info.second + "]";
    }
  } else {
    msg += " (enable SetPinTracking for call-site attribution)";
  }
  return Status::Internal(std::move(msg));
}

}  // namespace ht
