#include "storage/paged_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/codec.h"

namespace ht {

// ---------------------------------------------------------------------------
// MemPagedFile
// ---------------------------------------------------------------------------

MemPagedFile::MemPagedFile(size_t page_size) : page_size_(page_size) {}

Status MemPagedFile::Read(PageId id, Page* out) {
  if (id >= pages_.size() || pages_[id] == nullptr) {
    return Status::NotFound("MemPagedFile: read of unallocated page " +
                            std::to_string(id));
  }
  if (out->size() != page_size_) {
    return Status::InvalidArgument("page buffer size mismatch");
  }
  std::memcpy(out->data(), pages_[id]->data(), page_size_);
  ++stats_.physical_reads;
  return Status::OK();
}

Status MemPagedFile::Write(PageId id, const Page& page) {
  if (id >= pages_.size() || pages_[id] == nullptr) {
    return Status::NotFound("MemPagedFile: write of unallocated page " +
                            std::to_string(id));
  }
  if (page.size() != page_size_) {
    return Status::InvalidArgument("page buffer size mismatch");
  }
  std::memcpy(pages_[id]->data(), page.data(), page_size_);
  ++stats_.writes;
  return Status::OK();
}

Result<PageId> MemPagedFile::Allocate() {
  ++stats_.allocations;
  if (!free_list_.empty()) {
    PageId id = free_list_.back();
    free_list_.pop_back();
    pages_[id] = std::make_unique<Page>(page_size_);
    return id;
  }
  pages_.push_back(std::make_unique<Page>(page_size_));
  return static_cast<PageId>(pages_.size() - 1);
}

Status MemPagedFile::Free(PageId id) {
  if (id >= pages_.size() || pages_[id] == nullptr) {
    return Status::InvalidArgument("MemPagedFile: double free of page " +
                                   std::to_string(id));
  }
  pages_[id] = nullptr;
  free_list_.push_back(id);
  ++stats_.frees;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// DiskPagedFile
// ---------------------------------------------------------------------------

namespace {
constexpr uint32_t kMagic = 0x48544446;  // "HTDF"
constexpr size_t kSuperblockSize = 24;   // magic,pagesize,count,freehead + pad
}  // namespace

DiskPagedFile::DiskPagedFile(int fd, size_t page_size)
    : fd_(fd), page_size_(page_size) {}

DiskPagedFile::~DiskPagedFile() {
  if (fd_ >= 0) {
    // Best effort; callers needing durability must Sync() explicitly.
    (void)WriteSuperblock();
    ::close(fd_);
  }
}

Result<std::unique_ptr<DiskPagedFile>> DiskPagedFile::Create(
    const std::string& path, size_t page_size) {
  if (page_size < 64) {
    return Status::InvalidArgument("page size too small");
  }
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  auto f = std::unique_ptr<DiskPagedFile>(new DiskPagedFile(fd, page_size));
  HT_RETURN_NOT_OK(f->WriteSuperblock());
  return f;
}

Result<std::unique_ptr<DiskPagedFile>> DiskPagedFile::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  uint8_t sb[kSuperblockSize];
  ssize_t n = ::pread(fd, sb, sizeof(sb), 0);
  if (n != static_cast<ssize_t>(sizeof(sb))) {
    ::close(fd);
    return Status::Corruption("short superblock in " + path);
  }
  Reader r(sb, sizeof(sb));
  uint32_t magic = r.GetU32();
  uint32_t page_size = r.GetU32();
  uint32_t page_count = r.GetU32();
  uint32_t free_head = r.GetU32();
  if (magic != kMagic) {
    ::close(fd);
    return Status::Corruption("bad magic in " + path);
  }
  auto f = std::unique_ptr<DiskPagedFile>(new DiskPagedFile(fd, page_size));
  f->page_count_ = page_count;
  f->free_head_ = free_head;
  return f;
}

Status DiskPagedFile::WriteSuperblock() {
  uint8_t sb[kSuperblockSize] = {0};
  Writer w(sb, sizeof(sb));
  w.PutU32(kMagic);
  w.PutU32(static_cast<uint32_t>(page_size_));
  w.PutU32(page_count_);
  w.PutU32(free_head_);
  return WriteRaw(0, sb, sizeof(sb));
}

Status DiskPagedFile::ReadRaw(uint64_t offset, void* buf, size_t n) {
  ssize_t got = ::pread(fd_, buf, n, static_cast<off_t>(offset));
  if (got != static_cast<ssize_t>(n)) {
    return Status::IOError("pread failed: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Status DiskPagedFile::WriteRaw(uint64_t offset, const void* buf, size_t n) {
  ssize_t put = ::pwrite(fd_, buf, n, static_cast<off_t>(offset));
  if (put != static_cast<ssize_t>(n)) {
    return Status::IOError("pwrite failed: " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Status DiskPagedFile::Read(PageId id, Page* out) {
  if (id >= page_count_) {
    return Status::NotFound("DiskPagedFile: read of unallocated page " +
                            std::to_string(id));
  }
  if (out->size() != page_size_) {
    return Status::InvalidArgument("page buffer size mismatch");
  }
  ++stats_.physical_reads;
  return ReadRaw((static_cast<uint64_t>(id) + 1) * page_size_, out->data(),
                 page_size_);
}

Status DiskPagedFile::Write(PageId id, const Page& page) {
  if (id >= page_count_) {
    return Status::NotFound("DiskPagedFile: write of unallocated page " +
                            std::to_string(id));
  }
  if (page.size() != page_size_) {
    return Status::InvalidArgument("page buffer size mismatch");
  }
  ++stats_.writes;
  return WriteRaw((static_cast<uint64_t>(id) + 1) * page_size_, page.data(),
                  page_size_);
}

Result<PageId> DiskPagedFile::Allocate() {
  ++stats_.allocations;
  if (free_head_ != kInvalidPageId) {
    PageId id = free_head_;
    // The first 4 bytes of a free page link to the next free page.
    uint8_t link[4];
    HT_RETURN_NOT_OK(
        ReadRaw((static_cast<uint64_t>(id) + 1) * page_size_, link, 4));
    Reader r(link, 4);
    free_head_ = r.GetU32();
    return id;
  }
  PageId id = page_count_++;
  // Extend the file with a zero page so subsequent reads succeed.
  Page zero(page_size_);
  HT_RETURN_NOT_OK(WriteRaw((static_cast<uint64_t>(id) + 1) * page_size_,
                            zero.data(), page_size_));
  return id;
}

Status DiskPagedFile::Free(PageId id) {
  if (id >= page_count_) {
    return Status::InvalidArgument("DiskPagedFile: free of unallocated page");
  }
  uint8_t link[4];
  Writer w(link, 4);
  w.PutU32(free_head_);
  HT_RETURN_NOT_OK(
      WriteRaw((static_cast<uint64_t>(id) + 1) * page_size_, link, 4));
  free_head_ = id;
  ++stats_.frees;
  return Status::OK();
}

Status DiskPagedFile::Sync() {
  HT_RETURN_NOT_OK(WriteSuperblock());
  if (::fsync(fd_) != 0) {
    return Status::IOError("fsync failed: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace ht
