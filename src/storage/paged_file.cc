#include "storage/paged_file.h"

#include <fcntl.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <numeric>

#include "common/codec.h"

namespace ht {

// ---------------------------------------------------------------------------
// PagedFile (base)
// ---------------------------------------------------------------------------

IoStats PagedFile::stats() const {
  IoStats s;
  s.physical_reads = counters_.physical_reads.load(std::memory_order_relaxed);
  s.writes = counters_.writes.load(std::memory_order_relaxed);
  s.allocations = counters_.allocations.load(std::memory_order_relaxed);
  s.frees = counters_.frees.load(std::memory_order_relaxed);
  s.batch_reads = counters_.batch_reads.load(std::memory_order_relaxed);
  s.batch_writes = counters_.batch_writes.load(std::memory_order_relaxed);
  return s;
}

void PagedFile::ResetStats() {
  counters_.physical_reads.store(0, std::memory_order_relaxed);
  counters_.writes.store(0, std::memory_order_relaxed);
  counters_.allocations.store(0, std::memory_order_relaxed);
  counters_.frees.store(0, std::memory_order_relaxed);
  counters_.batch_reads.store(0, std::memory_order_relaxed);
  counters_.batch_writes.store(0, std::memory_order_relaxed);
}

namespace {
/// Shared validation for WriteBatch: every id distinct, every page buffer
/// present and correctly sized. Runs before any I/O in every backend.
Status ValidateWriteBatch(std::span<const PageId> ids,
                          std::span<const Page* const> pages,
                          size_t page_size) {
  if (ids.size() != pages.size()) {
    return Status::InvalidArgument("WriteBatch: ids/pages length mismatch");
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    if (pages[i] == nullptr || pages[i]->size() != page_size) {
      return Status::InvalidArgument("page buffer size mismatch");
    }
  }
  // O(n log n) duplicate check over a scratch copy; write batches are
  // bounded by the dirty set, so this never dominates the I/O it guards.
  std::vector<PageId> sorted(ids.begin(), ids.end());
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    return Status::InvalidArgument("WriteBatch: duplicate page id in batch");
  }
  return Status::OK();
}
}  // namespace

Status PagedFile::ReadBatch(std::span<const PageId> ids,
                            std::span<Page* const> outs) {
  if (ids.size() != outs.size()) {
    return Status::InvalidArgument("ReadBatch: ids/outs length mismatch");
  }
  if (ids.empty()) return Status::OK();
  counters_.batch_reads.fetch_add(1, std::memory_order_relaxed);
  for (size_t i = 0; i < ids.size(); ++i) {
    HT_RETURN_NOT_OK(Read(ids[i], outs[i]));
  }
  return Status::OK();
}

Status PagedFile::WriteBatch(std::span<const PageId> ids,
                             std::span<const Page* const> pages) {
  HT_RETURN_NOT_OK(ValidateWriteBatch(ids, pages, page_size()));
  if (ids.empty()) return Status::OK();
  counters_.batch_writes.fetch_add(1, std::memory_order_relaxed);
  for (size_t i = 0; i < ids.size(); ++i) {
    HT_RETURN_NOT_OK(Write(ids[i], *pages[i]));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// MemPagedFile
// ---------------------------------------------------------------------------

MemPagedFile::MemPagedFile(size_t page_size) : page_size_(page_size) {}

Status MemPagedFile::Read(PageId id, Page* out) {
  if (id >= pages_.size() || pages_[id] == nullptr) {
    return Status::NotFound("MemPagedFile: read of unallocated page " +
                            std::to_string(id));
  }
  if (out->size() != page_size_) {
    return Status::InvalidArgument("page buffer size mismatch");
  }
  std::memcpy(out->data(), pages_[id]->data(), page_size_);
  BumpReads(1);
  return Status::OK();
}

Status MemPagedFile::ReadBatch(std::span<const PageId> ids,
                               std::span<Page* const> outs) {
  if (ids.size() != outs.size()) {
    return Status::InvalidArgument("ReadBatch: ids/outs length mismatch");
  }
  if (ids.empty()) return Status::OK();
  for (size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] >= pages_.size() || pages_[ids[i]] == nullptr) {
      return Status::NotFound("MemPagedFile: batch read of unallocated page " +
                              std::to_string(ids[i]));
    }
    if (outs[i] == nullptr || outs[i]->size() != page_size_) {
      return Status::InvalidArgument("page buffer size mismatch");
    }
  }
  counters_.batch_reads.fetch_add(1, std::memory_order_relaxed);
  BumpReads(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    std::memcpy(outs[i]->data(), pages_[ids[i]]->data(), page_size_);
  }
  return Status::OK();
}

Status MemPagedFile::Write(PageId id, const Page& page) {
  if (id >= pages_.size() || pages_[id] == nullptr) {
    return Status::NotFound("MemPagedFile: write of unallocated page " +
                            std::to_string(id));
  }
  if (page.size() != page_size_) {
    return Status::InvalidArgument("page buffer size mismatch");
  }
  std::memcpy(pages_[id]->data(), page.data(), page_size_);
  counters_.writes.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status MemPagedFile::WriteBatch(std::span<const PageId> ids,
                                std::span<const Page* const> pages) {
  HT_RETURN_NOT_OK(ValidateWriteBatch(ids, pages, page_size_));
  if (ids.empty()) return Status::OK();
  for (PageId id : ids) {
    if (id >= pages_.size() || pages_[id] == nullptr) {
      return Status::NotFound("MemPagedFile: batch write of unallocated page " +
                              std::to_string(id));
    }
  }
  counters_.batch_writes.fetch_add(1, std::memory_order_relaxed);
  counters_.writes.fetch_add(ids.size(), std::memory_order_relaxed);
  for (size_t i = 0; i < ids.size(); ++i) {
    std::memcpy(pages_[ids[i]]->data(), pages[i]->data(), page_size_);
  }
  return Status::OK();
}

Result<PageId> MemPagedFile::Allocate() {
  counters_.allocations.fetch_add(1, std::memory_order_relaxed);
  if (!free_list_.empty()) {
    PageId id = free_list_.back();
    free_list_.pop_back();
    pages_[id] = std::make_unique<Page>(page_size_);
    return id;
  }
  pages_.push_back(std::make_unique<Page>(page_size_));
  return static_cast<PageId>(pages_.size() - 1);
}

Status MemPagedFile::Free(PageId id) {
  if (id >= pages_.size() || pages_[id] == nullptr) {
    return Status::InvalidArgument("MemPagedFile: double free of page " +
                                   std::to_string(id));
  }
  pages_[id] = nullptr;
  free_list_.push_back(id);
  counters_.frees.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// DiskPagedFile
// ---------------------------------------------------------------------------

namespace {
constexpr uint32_t kMagic = 0x48544446;  // "HTDF"
constexpr size_t kSuperblockSize = 24;   // magic,pagesize,count,freehead + pad
}  // namespace

DiskPagedFile::DiskPagedFile(int fd, size_t page_size)
    : fd_(fd), page_size_(page_size) {}

DiskPagedFile::~DiskPagedFile() {
  if (fd_ >= 0) {
    // Best effort; callers needing durability must Sync() explicitly.
    (void)WriteSuperblock();
    ::close(fd_);
  }
}

Result<std::unique_ptr<DiskPagedFile>> DiskPagedFile::Create(
    const std::string& path, size_t page_size) {
  if (page_size < 64) {
    return Status::InvalidArgument("page size too small");
  }
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  auto f = std::unique_ptr<DiskPagedFile>(new DiskPagedFile(fd, page_size));
  HT_RETURN_NOT_OK(f->WriteSuperblock());
  return f;
}

Result<std::unique_ptr<DiskPagedFile>> DiskPagedFile::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  uint8_t sb[kSuperblockSize];
  ssize_t n = ::pread(fd, sb, sizeof(sb), 0);
  if (n != static_cast<ssize_t>(sizeof(sb))) {
    ::close(fd);
    return Status::Corruption("short superblock in " + path);
  }
  Reader r(sb, sizeof(sb));
  uint32_t magic = r.GetU32();
  uint32_t page_size = r.GetU32();
  uint32_t page_count = r.GetU32();
  uint32_t free_head = r.GetU32();
  if (magic != kMagic) {
    ::close(fd);
    return Status::Corruption("bad magic in " + path);
  }
  auto f = std::unique_ptr<DiskPagedFile>(new DiskPagedFile(fd, page_size));
  f->page_count_ = page_count;
  f->free_head_ = free_head;
  return f;
}

Status DiskPagedFile::WriteSuperblock() {
  uint8_t sb[kSuperblockSize] = {0};
  Writer w(sb, sizeof(sb));
  w.PutU32(kMagic);
  w.PutU32(static_cast<uint32_t>(page_size_));
  w.PutU32(page_count_);
  w.PutU32(free_head_);
  return WriteRaw(0, sb, sizeof(sb));
}

// POSIX permits pread/pwrite to transfer fewer bytes than requested (and
// to fail with EINTR before transferring anything); a short transfer is
// not an error, so both raw helpers loop until the full range is moved.

Status DiskPagedFile::ReadRaw(uint64_t offset, void* buf, size_t n) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  size_t left = n;
  while (left > 0) {
    const ssize_t got = ::pread(fd_, p, left, static_cast<off_t>(offset));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pread failed: " +
                             std::string(std::strerror(errno)));
    }
    if (got == 0) {
      return Status::IOError("pread hit EOF mid-read (file truncated?)");
    }
    p += got;
    offset += static_cast<uint64_t>(got);
    left -= static_cast<size_t>(got);
  }
  return Status::OK();
}

Status DiskPagedFile::WriteRaw(uint64_t offset, const void* buf, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  size_t left = n;
  while (left > 0) {
    const ssize_t put = ::pwrite(fd_, p, left, static_cast<off_t>(offset));
    if (put < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pwrite failed: " +
                             std::string(std::strerror(errno)));
    }
    if (put == 0) {
      return Status::IOError("pwrite made no progress");
    }
    p += put;
    offset += static_cast<uint64_t>(put);
    left -= static_cast<size_t>(put);
  }
  return Status::OK();
}

Status DiskPagedFile::Read(PageId id, Page* out) {
  if (id >= page_count_) {
    return Status::NotFound("DiskPagedFile: read of unallocated page " +
                            std::to_string(id));
  }
  if (out->size() != page_size_) {
    return Status::InvalidArgument("page buffer size mismatch");
  }
  BumpReads(1);
  return ReadRaw((static_cast<uint64_t>(id) + 1) * page_size_, out->data(),
                 page_size_);
}

Status DiskPagedFile::ReadBatch(std::span<const PageId> ids,
                                std::span<Page* const> outs) {
  if (ids.size() != outs.size()) {
    return Status::InvalidArgument("ReadBatch: ids/outs length mismatch");
  }
  if (ids.empty()) return Status::OK();
  // Validate the whole batch before any I/O so a bad id cannot leave the
  // caller with a half-filled batch it believes succeeded.
  for (size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] >= page_count_) {
      return Status::NotFound("DiskPagedFile: batch read of unallocated page " +
                              std::to_string(ids[i]));
    }
    if (outs[i] == nullptr || outs[i]->size() != page_size_) {
      return Status::InvalidArgument("page buffer size mismatch");
    }
  }
  counters_.batch_reads.fetch_add(1, std::memory_order_relaxed);
  BumpReads(ids.size());

  // Sort request indices by file offset; runs of strictly adjacent pages
  // coalesce into one vectored preadv call each. Duplicate ids break a run
  // (equal offsets are not adjacent), so every occurrence is still filled.
  std::vector<uint32_t> order(ids.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](uint32_t a, uint32_t b) { return ids[a] < ids[b]; });

  // Linux caps one vectored call at IOV_MAX (1024) segments.
  constexpr size_t kMaxIov = 1024;
  std::vector<struct iovec> iov;
  size_t run_start = 0;
  while (run_start < order.size()) {
    size_t run_end = run_start + 1;
    while (run_end < order.size() &&
           ids[order[run_end]] == ids[order[run_end - 1]] + 1 &&
           run_end - run_start < kMaxIov) {
      ++run_end;
    }
    iov.clear();
    for (size_t i = run_start; i < run_end; ++i) {
      iov.push_back({outs[order[i]]->data(), page_size_});
    }
    uint64_t offset =
        (static_cast<uint64_t>(ids[order[run_start]]) + 1) * page_size_;
    // Loop on short transfers / EINTR, advancing through the iovec array.
    size_t vec_idx = 0;
    size_t vec_off = 0;  // bytes already filled in iov[vec_idx]
    while (vec_idx < iov.size()) {
      struct iovec first = iov[vec_idx];
      first.iov_base = static_cast<uint8_t*>(first.iov_base) + vec_off;
      first.iov_len -= vec_off;
      std::vector<struct iovec> rest;
      rest.push_back(first);
      rest.insert(rest.end(), iov.begin() + vec_idx + 1, iov.end());
      ssize_t got = ::preadv(fd_, rest.data(), static_cast<int>(rest.size()),
                             static_cast<off_t>(offset));
      if (got < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("preadv failed: " +
                               std::string(std::strerror(errno)));
      }
      if (got == 0) {
        return Status::IOError("preadv hit EOF mid-batch (file truncated?)");
      }
      offset += static_cast<uint64_t>(got);
      size_t advanced = static_cast<size_t>(got);
      while (advanced > 0 && vec_idx < iov.size()) {
        const size_t remaining = iov[vec_idx].iov_len - vec_off;
        if (advanced >= remaining) {
          advanced -= remaining;
          ++vec_idx;
          vec_off = 0;
        } else {
          vec_off += advanced;
          advanced = 0;
        }
      }
    }
    run_start = run_end;
  }
  return Status::OK();
}

Status DiskPagedFile::Write(PageId id, const Page& page) {
  if (id >= page_count_) {
    return Status::NotFound("DiskPagedFile: write of unallocated page " +
                            std::to_string(id));
  }
  if (page.size() != page_size_) {
    return Status::InvalidArgument("page buffer size mismatch");
  }
  counters_.writes.fetch_add(1, std::memory_order_relaxed);
  return WriteRaw((static_cast<uint64_t>(id) + 1) * page_size_, page.data(),
                  page_size_);
}

Status DiskPagedFile::WriteBatch(std::span<const PageId> ids,
                                 std::span<const Page* const> pages) {
  // Validate the whole batch before any I/O so a bad id cannot leave the
  // file with a half-applied batch (the ReadBatch contract, dualized).
  HT_RETURN_NOT_OK(ValidateWriteBatch(ids, pages, page_size_));
  if (ids.empty()) return Status::OK();
  for (PageId id : ids) {
    if (id >= page_count_) {
      return Status::NotFound("DiskPagedFile: batch write of unallocated page " +
                              std::to_string(id));
    }
  }
  counters_.batch_writes.fetch_add(1, std::memory_order_relaxed);
  counters_.writes.fetch_add(ids.size(), std::memory_order_relaxed);

  // Sort request indices by file offset; runs of strictly adjacent pages
  // coalesce into one vectored pwritev call each. Duplicates were rejected
  // above, so every run is a strictly increasing offset range.
  std::vector<uint32_t> order(ids.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](uint32_t a, uint32_t b) { return ids[a] < ids[b]; });

  // Linux caps one vectored call at IOV_MAX (1024) segments.
  constexpr size_t kMaxIov = 1024;
  std::vector<struct iovec> iov;
  size_t run_start = 0;
  while (run_start < order.size()) {
    size_t run_end = run_start + 1;
    while (run_end < order.size() &&
           ids[order[run_end]] == ids[order[run_end - 1]] + 1 &&
           run_end - run_start < kMaxIov) {
      ++run_end;
    }
    iov.clear();
    for (size_t i = run_start; i < run_end; ++i) {
      // iovec carries void* even for gather writes; the buffers are never
      // modified through it.
      iov.push_back(
          {const_cast<uint8_t*>(pages[order[i]]->data()), page_size_});
    }
    uint64_t offset =
        (static_cast<uint64_t>(ids[order[run_start]]) + 1) * page_size_;
    // Loop on short transfers / EINTR, advancing through the iovec array.
    size_t vec_idx = 0;
    size_t vec_off = 0;  // bytes already written from iov[vec_idx]
    while (vec_idx < iov.size()) {
      struct iovec first = iov[vec_idx];
      first.iov_base = static_cast<uint8_t*>(first.iov_base) + vec_off;
      first.iov_len -= vec_off;
      std::vector<struct iovec> rest;
      rest.push_back(first);
      rest.insert(rest.end(), iov.begin() + vec_idx + 1, iov.end());
      ssize_t put = ::pwritev(fd_, rest.data(), static_cast<int>(rest.size()),
                              static_cast<off_t>(offset));
      if (put < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("pwritev failed: " +
                               std::string(std::strerror(errno)));
      }
      if (put == 0) {
        return Status::IOError("pwritev made no progress");
      }
      offset += static_cast<uint64_t>(put);
      size_t advanced = static_cast<size_t>(put);
      while (advanced > 0 && vec_idx < iov.size()) {
        const size_t remaining = iov[vec_idx].iov_len - vec_off;
        if (advanced >= remaining) {
          advanced -= remaining;
          ++vec_idx;
          vec_off = 0;
        } else {
          vec_off += advanced;
          advanced = 0;
        }
      }
    }
    run_start = run_end;
  }
  return Status::OK();
}

Result<PageId> DiskPagedFile::Allocate() {
  counters_.allocations.fetch_add(1, std::memory_order_relaxed);
  if (free_head_ != kInvalidPageId) {
    PageId id = free_head_;
    // The first 4 bytes of a free page link to the next free page.
    uint8_t link[4];
    HT_RETURN_NOT_OK(
        ReadRaw((static_cast<uint64_t>(id) + 1) * page_size_, link, 4));
    Reader r(link, 4);
    free_head_ = r.GetU32();
    return id;
  }
  PageId id = page_count_++;
  // Extend the file with a zero page so subsequent reads succeed.
  Page zero(page_size_);
  HT_RETURN_NOT_OK(WriteRaw((static_cast<uint64_t>(id) + 1) * page_size_,
                            zero.data(), page_size_));
  return id;
}

Status DiskPagedFile::Free(PageId id) {
  if (id >= page_count_) {
    return Status::InvalidArgument("DiskPagedFile: free of unallocated page");
  }
  uint8_t link[4];
  Writer w(link, 4);
  w.PutU32(free_head_);
  HT_RETURN_NOT_OK(
      WriteRaw((static_cast<uint64_t>(id) + 1) * page_size_, link, 4));
  free_head_ = id;
  counters_.frees.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status DiskPagedFile::Sync() {
  HT_RETURN_NOT_OK(WriteSuperblock());
  if (::fsync(fd_) != 0) {
    return Status::IOError("fsync failed: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace ht
