// Copyright 2026 The HybridTree Authors.
// LatencyInjectingPagedFile: a PagedFile decorator that charges a fixed
// per-call plus per-page delay on every read — and, with a separately
// configured write cost model, on every blocking write — making cold-I/O
// experiments deterministic and portable. The I/O-pipeline cost model:
//
//     cost(Read)          = per_call + per_page
//     cost(ReadBatch(n))  = per_call + n * per_page
//     cost(Write)         = write_per_call + write_per_page
//     cost(WriteBatch(n)) = write_per_call + n * write_per_page
//
// i.e. a batched/vectored transfer pays the call setup (seek, syscall,
// device latency) once, so coalescing n pages into one round trip saves
// (n-1) * per_call — the effect bench_io sweeps on the read side and
// bench_ingest sweeps on the write side, asserted via read_calls() /
// write_calls(). Write latencies default to 0 so read-path experiments
// are unaffected unless they opt in.
//
// Delays use sleep_for (not a busy spin), so a background prefetch thread
// — or a parallel bulk-load worker writing its own page range — genuinely
// overlaps injected latency with another thread's work even on a
// single-core host.
//
// Thread-safety matches the wrapped file: reads may run concurrently, as
// may writes of disjoint page sets (the call counters are atomic);
// allocation and same-page write/read races require external
// serialization.

#pragma once

#include <atomic>
#include <chrono>
#include <thread>

#include "storage/paged_file.h"

namespace ht {

class LatencyInjectingPagedFile final : public PagedFile {
 public:
  /// Wraps `base` (not owned; must outlive this wrapper). Latencies are in
  /// seconds and may be changed at any quiescent point via set_latency().
  explicit LatencyInjectingPagedFile(PagedFile* base,
                                     double per_call_seconds = 0.0,
                                     double per_page_seconds = 0.0)
      : base_(base) {
    set_latency(per_call_seconds, per_page_seconds);
  }

  void set_latency(double per_call_seconds, double per_page_seconds) {
    per_call_ns_.store(ToNs(per_call_seconds), std::memory_order_relaxed);
    per_page_ns_.store(ToNs(per_page_seconds), std::memory_order_relaxed);
  }

  /// Write cost model, independent of the read model (defaults to free so
  /// read-path experiments keep their historical behaviour).
  void set_write_latency(double per_call_seconds, double per_page_seconds) {
    write_per_call_ns_.store(ToNs(per_call_seconds),
                             std::memory_order_relaxed);
    write_per_page_ns_.store(ToNs(per_page_seconds),
                             std::memory_order_relaxed);
  }

  /// Number of blocking read round trips observed (Read and ReadBatch
  /// calls each count once, regardless of batch size).
  uint64_t read_calls() const {
    return read_calls_.load(std::memory_order_relaxed);
  }
  void ResetReadCalls() { read_calls_.store(0, std::memory_order_relaxed); }

  /// Number of blocking write round trips observed (Write and WriteBatch
  /// calls each count once, regardless of batch size) — the write
  /// amplification figure bench_ingest reports.
  uint64_t write_calls() const {
    return write_calls_.load(std::memory_order_relaxed);
  }
  void ResetWriteCalls() { write_calls_.store(0, std::memory_order_relaxed); }

  size_t page_size() const override { return base_->page_size(); }
  PageId page_count() const override { return base_->page_count(); }

  Status Read(PageId id, Page* out) override {
    read_calls_.fetch_add(1, std::memory_order_relaxed);
    Inject(1);
    return base_->Read(id, out);
  }

  Status ReadBatch(std::span<const PageId> ids,
                   std::span<Page* const> outs) override {
    if (ids.empty()) return base_->ReadBatch(ids, outs);
    read_calls_.fetch_add(1, std::memory_order_relaxed);
    Inject(ids.size());
    return base_->ReadBatch(ids, outs);
  }

  Status Write(PageId id, const Page& page) override {
    write_calls_.fetch_add(1, std::memory_order_relaxed);
    InjectWrite(1);
    return base_->Write(id, page);
  }

  Status WriteBatch(std::span<const PageId> ids,
                    std::span<const Page* const> pages) override {
    if (ids.empty()) return base_->WriteBatch(ids, pages);
    write_calls_.fetch_add(1, std::memory_order_relaxed);
    InjectWrite(ids.size());
    return base_->WriteBatch(ids, pages);
  }

  // Allocation/free are not delayed: allocation extends the file inside
  // the same OS write the cost model already charges when the page content
  // lands, and charging it twice would double-count bulk loads.
  Result<PageId> Allocate() override { return base_->Allocate(); }
  Status Free(PageId id) override { return base_->Free(id); }
  Status Sync() override { return base_->Sync(); }

  IoStats stats() const override { return base_->stats(); }
  void ResetStats() override { base_->ResetStats(); }

 private:
  static int64_t ToNs(double seconds) {
    return static_cast<int64_t>(seconds * 1e9);
  }

  void Inject(size_t pages) {
    const int64_t ns =
        per_call_ns_.load(std::memory_order_relaxed) +
        static_cast<int64_t>(pages) *
            per_page_ns_.load(std::memory_order_relaxed);
    if (ns > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
  }

  void InjectWrite(size_t pages) {
    const int64_t ns =
        write_per_call_ns_.load(std::memory_order_relaxed) +
        static_cast<int64_t>(pages) *
            write_per_page_ns_.load(std::memory_order_relaxed);
    if (ns > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
  }

  PagedFile* base_;
  /// Relaxed throughout: the knobs are set by the bench driver between
  /// phases and polled by I/O threads (a stale read injects the previous
  /// latency once), and the call counters are independent tallies with no
  /// ordering relationship to any other data.
  std::atomic<int64_t> per_call_ns_{0};
  std::atomic<int64_t> per_page_ns_{0};
  std::atomic<int64_t> write_per_call_ns_{0};
  std::atomic<int64_t> write_per_page_ns_{0};
  std::atomic<uint64_t> read_calls_{0};
  std::atomic<uint64_t> write_calls_{0};
};

}  // namespace ht
