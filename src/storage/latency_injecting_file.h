// Copyright 2026 The HybridTree Authors.
// LatencyInjectingPagedFile: a PagedFile decorator that charges a fixed
// per-call plus per-page delay on every read, making cold-I/O experiments
// deterministic and portable. The I/O-pipeline cost model it encodes:
//
//     cost(Read)          = per_call + per_page
//     cost(ReadBatch(n))  = per_call + n * per_page
//
// i.e. a batched/vectored read pays the call setup (seek, syscall,
// device latency) once, so coalescing n misses into one round trip saves
// (n-1) * per_call — exactly the effect bench_io sweeps and the prefetch
// integration test asserts via read_calls().
//
// Delays use sleep_for (not a busy spin), so a background prefetch thread
// genuinely overlaps injected latency with the query thread's CPU work
// even on a single-core host.
//
// Thread-safety matches the wrapped file: reads may run concurrently (the
// call counter is atomic); mutation requires external serialization.

#pragma once

#include <atomic>
#include <chrono>
#include <thread>

#include "storage/paged_file.h"

namespace ht {

class LatencyInjectingPagedFile final : public PagedFile {
 public:
  /// Wraps `base` (not owned; must outlive this wrapper). Latencies are in
  /// seconds and may be changed at any quiescent point via set_latency().
  explicit LatencyInjectingPagedFile(PagedFile* base,
                                     double per_call_seconds = 0.0,
                                     double per_page_seconds = 0.0)
      : base_(base) {
    set_latency(per_call_seconds, per_page_seconds);
  }

  void set_latency(double per_call_seconds, double per_page_seconds) {
    per_call_ns_.store(ToNs(per_call_seconds), std::memory_order_relaxed);
    per_page_ns_.store(ToNs(per_page_seconds), std::memory_order_relaxed);
  }

  /// Number of blocking read round trips observed (Read and ReadBatch
  /// calls each count once, regardless of batch size).
  uint64_t read_calls() const {
    return read_calls_.load(std::memory_order_relaxed);
  }
  void ResetReadCalls() { read_calls_.store(0, std::memory_order_relaxed); }

  size_t page_size() const override { return base_->page_size(); }
  PageId page_count() const override { return base_->page_count(); }

  Status Read(PageId id, Page* out) override {
    read_calls_.fetch_add(1, std::memory_order_relaxed);
    Inject(1);
    return base_->Read(id, out);
  }

  Status ReadBatch(std::span<const PageId> ids,
                   std::span<Page* const> outs) override {
    if (ids.empty()) return base_->ReadBatch(ids, outs);
    read_calls_.fetch_add(1, std::memory_order_relaxed);
    Inject(ids.size());
    return base_->ReadBatch(ids, outs);
  }

  // Writes/allocation are not delayed: the experiments this wrapper
  // serves measure the read path (the paper's "disk accesses per query").
  Status Write(PageId id, const Page& page) override {
    return base_->Write(id, page);
  }
  Result<PageId> Allocate() override { return base_->Allocate(); }
  Status Free(PageId id) override { return base_->Free(id); }
  Status Sync() override { return base_->Sync(); }

  IoStats stats() const override { return base_->stats(); }
  void ResetStats() override { base_->ResetStats(); }

 private:
  static int64_t ToNs(double seconds) {
    return static_cast<int64_t>(seconds * 1e9);
  }

  void Inject(size_t pages) {
    const int64_t ns =
        per_call_ns_.load(std::memory_order_relaxed) +
        static_cast<int64_t>(pages) *
            per_page_ns_.load(std::memory_order_relaxed);
    if (ns > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
  }

  PagedFile* base_;
  std::atomic<int64_t> per_call_ns_{0};
  std::atomic<int64_t> per_page_ns_{0};
  std::atomic<uint64_t> read_calls_{0};
};

}  // namespace ht
