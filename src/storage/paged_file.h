// Copyright 2026 The HybridTree Authors.
// PagedFile: the backing store for all disk-based trees in the repository.
//
// Two backends implement the interface: DiskPagedFile (POSIX file I/O, used
// by the persistence example and the persistence tests) and MemPagedFile
// (in-memory, used by tests and by benchmarks where only *counted* I/O
// matters — the paper's metrics are access counts and normalized ratios, so
// the benchmarks do not need to pay real disk latency).
//
// Free pages are tracked with an intrusive freelist threaded through the
// first 4 bytes of each free page, so allocation state persists on disk.

#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/io_stats.h"
#include "storage/page.h"

namespace ht {

/// Abstract fixed-page-size random access file.
///
/// Thread-safety contract (the basis of the buffer pool's prefetch and
/// write-back pipelines): Read() and ReadBatch() are safe to call
/// concurrently from multiple threads, and concurrently with
/// Write()/WriteBatch() of *other* pages — the disk backend uses
/// positional pread/preadv/pwritev (no shared file offset) and the memory
/// backend only touches the target pages' bytes. Write()/WriteBatch()
/// calls touching disjoint page sets may likewise run concurrently (the
/// parallel bulk loader writes disjoint preallocated ranges from worker
/// threads). Allocate(), Free(), Sync(), and a write racing a read of the
/// SAME page require external serialization (BufferPool keeps its file
/// mutex for exactly those).
class PagedFile {
 public:
  virtual ~PagedFile() = default;

  /// Page size in bytes; constant for the lifetime of the file.
  virtual size_t page_size() const = 0;

  /// Number of pages ever allocated (including freed ones still on disk).
  virtual PageId page_count() const = 0;

  /// Reads page `id` into `out` (must have size() == page_size()).
  virtual Status Read(PageId id, Page* out) = 0;

  /// Reads ids[i] into *outs[i] in one round trip. `ids` and `outs` must
  /// have equal length; every output page must have size() == page_size().
  /// Duplicate ids are allowed (each occurrence is filled). Backends
  /// validate the whole batch before issuing I/O, so on error no promise
  /// is made about output contents but the file itself is untouched.
  /// Counts one batch_read plus ids.size() physical reads.
  /// The default implementation is a loop over Read(); DiskPagedFile
  /// overrides it with offset-sorted, coalesced preadv calls.
  virtual Status ReadBatch(std::span<const PageId> ids,
                           std::span<Page* const> outs);

  /// Writes `page` (size() == page_size()) as page `id`.
  virtual Status Write(PageId id, const Page& page) = 0;

  /// Writes *pages[i] as page ids[i] in one round trip — the write-side
  /// dual of ReadBatch, with the same validate-before-I/O contract: the
  /// whole batch (lengths, ids, page sizes) is checked before any byte is
  /// written, so on error the file is untouched. Unlike ReadBatch,
  /// duplicate ids are rejected (InvalidArgument): after offset sorting,
  /// "which occurrence wins" would be unspecified, and no caller has a
  /// legitimate reason to write one page twice in a single batch.
  /// Counts one batch_write plus ids.size() writes.
  /// The default implementation is a loop over Write(); DiskPagedFile
  /// overrides it with offset-sorted, coalesced pwritev calls.
  virtual Status WriteBatch(std::span<const PageId> ids,
                            std::span<const Page* const> pages);

  /// Allocates a fresh (or recycled) page id.
  virtual Result<PageId> Allocate() = 0;

  /// Returns page `id` to the freelist. The page must not be used again
  /// until re-allocated.
  virtual Status Free(PageId id) = 0;

  /// Flushes buffered writes to durable storage (no-op for memory backend).
  virtual Status Sync() = 0;

  /// Snapshot of the raw file-level I/O statistics. Counters are relaxed
  /// atomics so concurrent readers (prefetch threads + query threads) can
  /// bump them without locks; the snapshot is not a consistent cut across
  /// counters, which is fine for accounting.
  virtual IoStats stats() const;
  virtual void ResetStats();

 protected:
  /// Lock-free counters (see stats()). Only the fields a raw file can
  /// observe are tracked; logical reads and cache behaviour belong to
  /// BufferPool. All accesses are relaxed: each counter is an independent
  /// tally, readers tolerate torn cross-counter views, and no counter
  /// publishes any other data.
  struct Counters {
    std::atomic<uint64_t> physical_reads{0};
    std::atomic<uint64_t> writes{0};
    std::atomic<uint64_t> allocations{0};
    std::atomic<uint64_t> frees{0};
    std::atomic<uint64_t> batch_reads{0};
    std::atomic<uint64_t> batch_writes{0};
  };
  void BumpReads(uint64_t n) {
    counters_.physical_reads.fetch_add(n, std::memory_order_relaxed);
  }

  Counters counters_;
};

/// In-memory backend.
class MemPagedFile final : public PagedFile {
 public:
  explicit MemPagedFile(size_t page_size = kDefaultPageSize);

  size_t page_size() const override { return page_size_; }
  PageId page_count() const override {
    return static_cast<PageId>(pages_.size());
  }
  Status Read(PageId id, Page* out) override;
  // Nothing to coalesce in memory, but the whole batch is still validated
  // before the first copy so a bad id cannot leave a half-filled batch.
  Status ReadBatch(std::span<const PageId> ids,
                   std::span<Page* const> outs) override;
  Status Write(PageId id, const Page& page) override;
  // Same validate-then-copy shape as ReadBatch: a bad id or duplicate
  // cannot leave a half-applied batch.
  Status WriteBatch(std::span<const PageId> ids,
                    std::span<const Page* const> pages) override;
  Result<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Sync() override { return Status::OK(); }

 private:
  size_t page_size_;
  std::vector<std::unique_ptr<Page>> pages_;
  std::vector<PageId> free_list_;
};

/// POSIX file backend. The freelist head lives in the caller's metadata
/// page by convention; DiskPagedFile itself persists a tiny superblock
/// (page count + freelist head) in a sidecar header region at offset 0,
/// and user pages start at offset page_size.
class DiskPagedFile final : public PagedFile {
 public:
  ~DiskPagedFile() override;

  /// Creates a new file (truncating any existing one).
  static Result<std::unique_ptr<DiskPagedFile>> Create(
      const std::string& path, size_t page_size = kDefaultPageSize);

  /// Opens an existing file created by Create().
  static Result<std::unique_ptr<DiskPagedFile>> Open(const std::string& path);

  size_t page_size() const override { return page_size_; }
  PageId page_count() const override { return page_count_; }
  Status Read(PageId id, Page* out) override;
  /// Scatter-gather implementation: requests are sorted by file offset,
  /// adjacent pages are coalesced into single vectored preadv calls.
  Status ReadBatch(std::span<const PageId> ids,
                   std::span<Page* const> outs) override;
  Status Write(PageId id, const Page& page) override;
  /// Gather-write implementation: requests are sorted by file offset,
  /// adjacent pages are coalesced into single vectored pwritev calls.
  Status WriteBatch(std::span<const PageId> ids,
                    std::span<const Page* const> pages) override;
  Result<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Sync() override;

 private:
  DiskPagedFile(int fd, size_t page_size);
  Status WriteSuperblock();
  Status ReadRaw(uint64_t offset, void* buf, size_t n);
  Status WriteRaw(uint64_t offset, const void* buf, size_t n);

  int fd_ = -1;
  size_t page_size_ = 0;
  PageId page_count_ = 0;
  PageId free_head_ = kInvalidPageId;
};

}  // namespace ht
