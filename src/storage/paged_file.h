// Copyright 2026 The HybridTree Authors.
// PagedFile: the backing store for all disk-based trees in the repository.
//
// Two backends implement the interface: DiskPagedFile (POSIX file I/O, used
// by the persistence example and the persistence tests) and MemPagedFile
// (in-memory, used by tests and by benchmarks where only *counted* I/O
// matters — the paper's metrics are access counts and normalized ratios, so
// the benchmarks do not need to pay real disk latency).
//
// Free pages are tracked with an intrusive freelist threaded through the
// first 4 bytes of each free page, so allocation state persists on disk.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/io_stats.h"
#include "storage/page.h"

namespace ht {

/// Abstract fixed-page-size random access file.
class PagedFile {
 public:
  virtual ~PagedFile() = default;

  /// Page size in bytes; constant for the lifetime of the file.
  virtual size_t page_size() const = 0;

  /// Number of pages ever allocated (including freed ones still on disk).
  virtual PageId page_count() const = 0;

  /// Reads page `id` into `out` (must have size() == page_size()).
  virtual Status Read(PageId id, Page* out) = 0;

  /// Writes `page` (size() == page_size()) as page `id`.
  virtual Status Write(PageId id, const Page& page) = 0;

  /// Allocates a fresh (or recycled) page id.
  virtual Result<PageId> Allocate() = 0;

  /// Returns page `id` to the freelist. The page must not be used again
  /// until re-allocated.
  virtual Status Free(PageId id) = 0;

  /// Flushes buffered writes to durable storage (no-op for memory backend).
  virtual Status Sync() = 0;

  /// Raw file-level I/O statistics.
  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 protected:
  IoStats stats_;
};

/// In-memory backend.
class MemPagedFile final : public PagedFile {
 public:
  explicit MemPagedFile(size_t page_size = kDefaultPageSize);

  size_t page_size() const override { return page_size_; }
  PageId page_count() const override {
    return static_cast<PageId>(pages_.size());
  }
  Status Read(PageId id, Page* out) override;
  Status Write(PageId id, const Page& page) override;
  Result<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Sync() override { return Status::OK(); }

 private:
  size_t page_size_;
  std::vector<std::unique_ptr<Page>> pages_;
  std::vector<PageId> free_list_;
};

/// POSIX file backend. The freelist head lives in the caller's metadata
/// page by convention; DiskPagedFile itself persists a tiny superblock
/// (page count + freelist head) in a sidecar header region at offset 0,
/// and user pages start at offset page_size.
class DiskPagedFile final : public PagedFile {
 public:
  ~DiskPagedFile() override;

  /// Creates a new file (truncating any existing one).
  static Result<std::unique_ptr<DiskPagedFile>> Create(
      const std::string& path, size_t page_size = kDefaultPageSize);

  /// Opens an existing file created by Create().
  static Result<std::unique_ptr<DiskPagedFile>> Open(const std::string& path);

  size_t page_size() const override { return page_size_; }
  PageId page_count() const override { return page_count_; }
  Status Read(PageId id, Page* out) override;
  Status Write(PageId id, const Page& page) override;
  Result<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Sync() override;

 private:
  DiskPagedFile(int fd, size_t page_size);
  Status WriteSuperblock();
  Status ReadRaw(uint64_t offset, void* buf, size_t n);
  Status WriteRaw(uint64_t offset, const void* buf, size_t n);

  int fd_ = -1;
  size_t page_size_ = 0;
  PageId page_count_ = 0;
  PageId free_head_ = kInvalidPageId;
};

}  // namespace ht
