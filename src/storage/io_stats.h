// Copyright 2026 The HybridTree Authors.
// I/O accounting for the paged storage engine and the evaluation harness.

#pragma once

#include <cstdint>

namespace ht {

/// Counters maintained by BufferPool / PagedFile. "Logical" reads count
/// every page fetch requested by an index structure; "physical" reads count
/// fetches that missed the buffer pool and touched the backing file.
///
/// The paper reports *disk accesses per query* assuming each visited node
/// costs one random access, and normalizes sequential scan by a factor of
/// 10 (sequential I/O ≈ 10x faster than random). The harness therefore uses
/// logical reads with a cold (or bypassed) cache as the figure-of-merit and
/// keeps physical counters for buffer-pool experiments.
struct IoStats {
  uint64_t logical_reads = 0;
  uint64_t physical_reads = 0;
  uint64_t writes = 0;
  uint64_t allocations = 0;
  uint64_t frees = 0;
  uint64_t evictions = 0;

  void Reset() { *this = IoStats{}; }

  /// Adds `other` into this (used to merge per-shard / per-worker counters).
  void Accumulate(const IoStats& other) {
    logical_reads += other.logical_reads;
    physical_reads += other.physical_reads;
    writes += other.writes;
    allocations += other.allocations;
    frees += other.frees;
    evictions += other.evictions;
  }

  IoStats Delta(const IoStats& since) const {
    IoStats d;
    d.logical_reads = logical_reads - since.logical_reads;
    d.physical_reads = physical_reads - since.physical_reads;
    d.writes = writes - since.writes;
    d.allocations = allocations - since.allocations;
    d.frees = frees - since.frees;
    d.evictions = evictions - since.evictions;
    return d;
  }
};

}  // namespace ht
