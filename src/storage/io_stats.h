// Copyright 2026 The HybridTree Authors.
// I/O accounting for the paged storage engine and the evaluation harness.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace ht {

/// Buffer-pool eviction policy (see storage/buffer_pool.h). kLru is the
/// classic recency-only pool the paper figures use; kSlru is the
/// scan-resistant segmented policy (probationary + protected segments with
/// a frequency sketch) — byte-identical query RESULTS either way, only the
/// physical-read pattern differs.
enum class CachePolicy : uint8_t { kLru = 0, kSlru = 1 };

/// Access classes for buffer-pool traffic, threaded from the call sites via
/// AccessClassScope (storage/buffer_pool.h). The class drives SLRU
/// admission (scans and bulk loads enter the probationary segment only, so
/// one-touch streams never displace the multi-touch query working set) and
/// splits the cache counters below for observability.
enum class AccessClass : uint8_t {
  kQuery = 0,     // point/box/range/k-NN search traversal (the default)
  kScan = 1,      // full-tree sweeps: ScanAll, ELS rebuild, stats/validation
  kPrefetch = 2,  // speculative fills issued by the prefetch pipeline
  kIngest = 3,    // Insert/InsertBatch/Delete/Flush/bulk-load write paths
};
inline constexpr size_t kNumAccessClasses = 4;

inline const char* AccessClassName(AccessClass c) {
  switch (c) {
    case AccessClass::kQuery:
      return "query";
    case AccessClass::kScan:
      return "scan";
    case AccessClass::kPrefetch:
      return "prefetch";
    case AccessClass::kIngest:
      return "ingest";
  }
  return "unknown";
}

/// Counters maintained by BufferPool / PagedFile. "Logical" reads count
/// every page fetch requested by an index structure; "physical" reads count
/// fetches that missed the buffer pool and touched the backing file.
///
/// The paper reports *disk accesses per query* assuming each visited node
/// costs one random access, and normalizes sequential scan by a factor of
/// 10 (sequential I/O ≈ 10x faster than random). The harness therefore uses
/// logical reads with a cold (or bypassed) cache as the figure-of-merit and
/// keeps physical counters for buffer-pool experiments.
struct IoStats {
  uint64_t logical_reads = 0;
  uint64_t physical_reads = 0;
  uint64_t writes = 0;
  uint64_t allocations = 0;
  uint64_t frees = 0;
  uint64_t evictions = 0;
  /// Number of ReadBatch round trips issued to a backing file (each may
  /// cover many pages; the per-page cost is in physical_reads).
  uint64_t batch_reads = 0;
  /// Number of WriteBatch round trips issued to a backing file (the
  /// write-side dual of batch_reads; per-page cost is in writes).
  uint64_t batch_writes = 0;
  /// Pages handed to the prefetch pipeline (scheduled for a best-effort,
  /// non-pinning fill). Prefetched fills count as physical reads only —
  /// never as logical reads, which stay the paper's figure-of-merit.
  uint64_t prefetch_issued = 0;
  /// Fetches that hit a frame brought in by prefetch (first pin only).
  uint64_t prefetch_hits = 0;
  /// Points entering a batched data-page distance scan (filtered or not).
  uint64_t scan_points = 0;
  /// Points that survived the quantized-code filter and were refined with
  /// an exact distance. Only bumped on filtered scans.
  uint64_t quant_refined = 0;
  /// Points pruned by the quantized-code lower bound without an exact
  /// distance computation. scan_points on a filtered page splits exactly
  /// into quant_refined + quant_pruned.
  uint64_t quant_pruned = 0;
  /// Cursor-path duals of scan_points / quant_refined / quant_pruned:
  /// data-page scans driven by an incremental KnnCursor count here INSTEAD
  /// of the batch-path counters above, so cursor-path pruning (the serving
  /// tier's scatter-gather k-NN) is distinguishable from batch-path
  /// pruning. Same splitting invariant: cursor_scan_points on a filtered
  /// page is exactly cursor_quant_refined + cursor_quant_pruned.
  uint64_t cursor_scan_points = 0;
  uint64_t cursor_quant_refined = 0;
  uint64_t cursor_quant_pruned = 0;
  /// Demand fetches (Fetch / FetchMany / New) admitted over a shard's
  /// capacity target because every resident frame was pinned by concurrent
  /// queries. The overflow is transient: the eviction loop drains the
  /// shard back to target as soon as pins release. A persistently nonzero
  /// rate means the pool is undersized for its concurrency.
  uint64_t pin_overflows = 0;

  /// Per-access-class cache counters, indexed by AccessClass. Hits and
  /// misses cover demand accesses (Fetch / FetchMany) only — New() and
  /// prefetch fills are counted by allocations / prefetch_issued above —
  /// so class_hits[c] + class_misses[c] is class c's demand-fetch count.
  /// Evictions are charged to the class that ADMITTED the victim frame
  /// (kPrefetch for prefetched-never-referenced pages), which is what
  /// makes scan/prefetch cache pollution directly visible.
  std::array<uint64_t, kNumAccessClasses> class_hits{};
  std::array<uint64_t, kNumAccessClasses> class_misses{};
  std::array<uint64_t, kNumAccessClasses> class_evictions{};

  void Reset() { *this = IoStats{}; }

  /// Buffer-pool hit rate over the counted window: the fraction of logical
  /// reads served without touching the backing file.
  double HitRate() const {
    if (logical_reads == 0) return 0.0;
    const uint64_t misses =
        physical_reads < logical_reads ? physical_reads : logical_reads;
    return 1.0 - static_cast<double>(misses) /
                     static_cast<double>(logical_reads);
  }

  /// Fraction of all scanned points — batch and cursor paths combined —
  /// pruned by the quantized-code lower bound without an exact distance
  /// computation. 0 when no points were scanned.
  double QuantPruneRate() const {
    const uint64_t total = scan_points + cursor_scan_points;
    if (total == 0) return 0.0;
    return static_cast<double>(quant_pruned + cursor_quant_pruned) /
           static_cast<double>(total);
  }

  /// Demand-fetch hit rate of one access class (class_hits over
  /// class_hits + class_misses); 0 when the class saw no traffic.
  double ClassHitRate(AccessClass c) const {
    const uint64_t h = class_hits[static_cast<size_t>(c)];
    const uint64_t m = class_misses[static_cast<size_t>(c)];
    if (h + m == 0) return 0.0;
    return static_cast<double>(h) / static_cast<double>(h + m);
  }

  /// Adds `other` into this (used to merge per-shard / per-worker counters).
  void Accumulate(const IoStats& other) {
    logical_reads += other.logical_reads;
    physical_reads += other.physical_reads;
    writes += other.writes;
    allocations += other.allocations;
    frees += other.frees;
    evictions += other.evictions;
    batch_reads += other.batch_reads;
    batch_writes += other.batch_writes;
    prefetch_issued += other.prefetch_issued;
    prefetch_hits += other.prefetch_hits;
    scan_points += other.scan_points;
    quant_refined += other.quant_refined;
    quant_pruned += other.quant_pruned;
    cursor_scan_points += other.cursor_scan_points;
    cursor_quant_refined += other.cursor_quant_refined;
    cursor_quant_pruned += other.cursor_quant_pruned;
    pin_overflows += other.pin_overflows;
    for (size_t c = 0; c < kNumAccessClasses; ++c) {
      class_hits[c] += other.class_hits[c];
      class_misses[c] += other.class_misses[c];
      class_evictions[c] += other.class_evictions[c];
    }
  }

  IoStats Delta(const IoStats& since) const {
    IoStats d;
    d.logical_reads = logical_reads - since.logical_reads;
    d.physical_reads = physical_reads - since.physical_reads;
    d.writes = writes - since.writes;
    d.allocations = allocations - since.allocations;
    d.frees = frees - since.frees;
    d.evictions = evictions - since.evictions;
    d.batch_reads = batch_reads - since.batch_reads;
    d.batch_writes = batch_writes - since.batch_writes;
    d.prefetch_issued = prefetch_issued - since.prefetch_issued;
    d.prefetch_hits = prefetch_hits - since.prefetch_hits;
    d.scan_points = scan_points - since.scan_points;
    d.quant_refined = quant_refined - since.quant_refined;
    d.quant_pruned = quant_pruned - since.quant_pruned;
    d.cursor_scan_points = cursor_scan_points - since.cursor_scan_points;
    d.cursor_quant_refined = cursor_quant_refined - since.cursor_quant_refined;
    d.cursor_quant_pruned = cursor_quant_pruned - since.cursor_quant_pruned;
    d.pin_overflows = pin_overflows - since.pin_overflows;
    for (size_t c = 0; c < kNumAccessClasses; ++c) {
      d.class_hits[c] = class_hits[c] - since.class_hits[c];
      d.class_misses[c] = class_misses[c] - since.class_misses[c];
      d.class_evictions[c] = class_evictions[c] - since.class_evictions[c];
    }
    return d;
  }
};

}  // namespace ht
