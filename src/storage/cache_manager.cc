#include "storage/cache_manager.h"

#include <algorithm>

namespace ht {

CacheManager::CacheManager(CacheManagerOptions options)
    : options_(options) {}

void CacheManager::DemandTotals(const IoStats& s, uint64_t* hits,
                                uint64_t* misses) {
  *hits = 0;
  *misses = 0;
  for (size_t c = 0; c < kNumAccessClasses; ++c) {
    *hits += s.class_hits[c];
    *misses += s.class_misses[c];
  }
}

void CacheManager::SplitEvenLocked() {
  if (entries_.empty() || options_.total_budget_pages == 0) return;
  const size_t share = std::max(
      options_.min_pool_pages, options_.total_budget_pages / entries_.size());
  for (Entry& e : entries_) {
    (void)e.pool->SetCapacity(share);
    e.last = e.pool->StatsSnapshot();
  }
}

void CacheManager::Register(const std::string& name, BufferPool* pool) {
  MutexLock lk(&mu_);
  for (const Entry& e : entries_) {
    if (e.pool == pool) return;
  }
  Entry e;
  e.name = name;
  e.pool = pool;
  e.last = pool->StatsSnapshot();
  entries_.push_back(std::move(e));
  SplitEvenLocked();
}

void CacheManager::Unregister(BufferPool* pool) {
  MutexLock lk(&mu_);
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [pool](const Entry& e) { return e.pool == pool; });
  if (it == entries_.end()) return;
  entries_.erase(it);
  SplitEvenLocked();
}

void CacheManager::MaybeRebalance() {
  const uint64_t interval = std::max<uint64_t>(1, options_.rebalance_interval);
  if ((tick_.fetch_add(1, std::memory_order_relaxed) + 1) % interval != 0) {
    return;
  }
  Rebalance();
}

void CacheManager::Rebalance() {
  MutexLock lk(&mu_);
  if (entries_.empty() || options_.total_budget_pages == 0) return;
  const size_t n = entries_.size();
  const size_t floor = options_.min_pool_pages;
  if (options_.total_budget_pages <= floor * n) {
    // Budget too small to differentiate: hold the even split.
    return;
  }
  const size_t spread = options_.total_budget_pages - floor * n;

  // Marginal utility proxy: demand misses in the window since the last
  // rebalance. A miss is exactly the event more capacity could have turned
  // into a hit, so the miss share is the capacity share (the +1 keeps idle
  // pools defined and lets them decay toward the floor rather than to 0).
  std::vector<IoStats> now(n);
  std::vector<double> weight(n);
  double weight_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    now[i] = entries_[i].pool->StatsSnapshot();
    const IoStats delta = now[i].Delta(entries_[i].last);
    uint64_t hits = 0, misses = 0;
    DemandTotals(delta, &hits, &misses);
    weight[i] = static_cast<double>(misses) + 1.0;
    weight_sum += weight[i];
  }

  // Raw demand split -> smooth against the current target -> renormalize so
  // rounding never leaks budget, then apply.
  std::vector<double> target(n);
  double target_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double raw = static_cast<double>(floor) +
                       static_cast<double>(spread) * weight[i] / weight_sum;
    const double cur = static_cast<double>(entries_[i].pool->capacity());
    target[i] = options_.smoothing * raw + (1.0 - options_.smoothing) * cur;
    target[i] = std::max(target[i], static_cast<double>(floor));
    target_sum += target[i];
  }
  const double scale =
      static_cast<double>(options_.total_budget_pages) / target_sum;
  for (size_t i = 0; i < n; ++i) {
    const size_t pages = std::max(
        floor, static_cast<size_t>(target[i] * scale));
    (void)entries_[i].pool->SetCapacity(pages);
    entries_[i].last = now[i];
  }
}

size_t CacheManager::pool_count() const {
  MutexLock lk(&mu_);
  return entries_.size();
}

std::vector<CacheManager::PoolReport> CacheManager::Report() const {
  MutexLock lk(&mu_);
  std::vector<PoolReport> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    PoolReport r;
    r.name = e.name;
    r.capacity_pages = e.pool->capacity();
    const IoStats delta = e.pool->StatsSnapshot().Delta(e.last);
    DemandTotals(delta, &r.window_hits, &r.window_misses);
    const uint64_t total = r.window_hits + r.window_misses;
    r.window_hit_rate =
        total == 0 ? 0.0
                   : static_cast<double>(r.window_hits) /
                         static_cast<double>(total);
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace ht
