// Copyright 2026 The HybridTree Authors.
// Per-data-page 8-bit quantized sidecars for the filter-then-refine scan
// path. Each sidecar stores, for every point on a data page, one uint8 code
// per dimension relative to the page's live bounding region (min/max over
// the page's points per dimension). A scan first computes a sound lower
// bound on each point's distance from the codes (geometry/quantize.h,
// kernels code_* entries) and refines only the survivors with exact
// distances — results stay byte-identical to the unfiltered path.
//
// Sidecars are derived data, rebuilt from page contents on demand: they are
// built lazily on the first scan of a page (not at write time, so
// ingest pays nothing and trees opened from disk are covered) and
// invalidated whenever the page is rewritten or freed.
//
// Each sidecar also carries two transposed mirrors (kernels::kTBlock rows
// per block, dimension-major within a block): the page's float block, so
// the SIMD batch kernels replace their per-dimension row gather with one
// contiguous aligned load (kernels.h, tl1/tl2/tlinf/twl2 entries), and the
// codes, so the code-bound pass runs row-parallel with no per-row
// horizontal reduction (ct_* entries). The float mirror holds the exact
// same values as the page, so distances computed through it are
// bit-identical to the strided path.

#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/sync.h"
#include "geometry/kernels/kernels.h"
#include "geometry/quantize.h"
#include "storage/page.h"

namespace ht {

/// Immutable quantized image of one data page's point block. Rows are
/// padded to quant::PaddedDim(dim) bytes (zero-filled padding) in a
/// 64-byte-aligned buffer so the code kernels can consume full strides
/// with no tail handling.
class QuantizedPage {
 public:
  /// Builds codes for `count` points laid out at `block` with
  /// `stride_floats` floats between consecutive points (DataPageScan
  /// layout: dim coordinates first, trailing slack ignored).
  QuantizedPage(const float* block, size_t stride_floats, size_t count,
                uint32_t dim);

  QuantizedPage(const QuantizedPage&) = delete;
  QuantizedPage& operator=(const QuantizedPage&) = delete;

  quant::PageCodesView view() const {
    return quant::PageCodesView{codes_.get(),    stride_,
                                count_,          dim_,
                                grid_lo_.data(), grid_hi_.data(),
                                tc_.get(),       full_blocks_};
  }
  size_t count() const { return count_; }
  uint32_t dim() const { return dim_; }

  /// Transposed float mirror covering full_blocks() * kernels::kTBlock
  /// rows (the count % kTBlock tail rows stay on the page's own block).
  const float* tfloats() const { return tf_.get(); }
  size_t full_blocks() const { return full_blocks_; }

  /// True when this sidecar is exactly what (re)building from the given
  /// block would produce — grid, codes, zeroed padding bytes, and the
  /// transposed mirror. Used by the validator to detect stale sidecars.
  bool Matches(const float* block, size_t stride_floats, size_t count,
               uint32_t dim) const;

 private:
  struct AlignedFree {
    void operator()(void* p) const {
      ::operator delete(p, std::align_val_t{Page::kAlignment});
    }
  };

  uint32_t dim_;
  size_t count_;
  size_t stride_;       // bytes per code row, == quant::PaddedDim(dim_)
  size_t full_blocks_;  // count_ / kernels::kTBlock
  std::vector<float> grid_lo_;
  std::vector<float> grid_hi_;
  std::unique_ptr<uint8_t, AlignedFree> codes_;
  std::unique_ptr<float, AlignedFree> tf_;
  std::unique_ptr<uint8_t, AlignedFree> tc_;  // transposed codes (unpadded)
};

/// Cache of sidecars keyed by data-page id. Mirrors the tree's conditional
/// locking scheme: lookups/builds take the shared_mutex only when
/// `concurrent` is set (single-threaded searches skip the lock); mutations
/// (Invalidate/Clear) always lock — they happen on the write path, which is
/// externally serialized but may race with nothing anyway and are cheap.
class QuantStore {
 public:
  /// Returns the sidecar for `id`, building (outside the lock) and caching
  /// it on first use. Returns nullptr when count == 0. Safe for concurrent
  /// readers when `concurrent` is true; a racing double build keeps the
  /// first inserted copy.
  std::shared_ptr<const QuantizedPage> GetOrBuild(PageId id,
                                                  const float* block,
                                                  size_t stride_floats,
                                                  size_t count, uint32_t dim,
                                                  bool concurrent) const;

  /// Returns the cached sidecar for `id`, or nullptr (never builds).
  std::shared_ptr<const QuantizedPage> Lookup(PageId id) const;

  /// Drops the sidecar for `id` (page rewritten or freed). No-op if absent.
  void Invalidate(PageId id);

  void Clear();

  size_t CachedPages() const;

  /// Snapshot of all cached page ids (validator: every cached sidecar must
  /// correspond to a live data page with matching contents).
  std::vector<PageId> Snapshot() const;

 private:
  /// Leaf in the tree read path: taken while a data page is pinned, below
  /// any tree/pool lock. When `concurrent` is false the guards claim the
  /// capability without locking (single-threaded contract).
  mutable SharedMutex mu_{LockRank::kQuantStore, "QuantStore::mu_"};
  mutable std::unordered_map<PageId, std::shared_ptr<const QuantizedPage>>
      cache_ HT_GUARDED_BY(mu_);
};

}  // namespace ht
