// Copyright 2026 The HybridTree Authors.
// CacheManager: one global page-cache memory budget across many BufferPools.
//
// The serving layer (serve/sharded_index.h) gives every shard its own
// BufferPool, which in isolation means a fixed 1/N split of cache memory no
// matter how skewed the traffic is. The CacheManager owns the global budget
// instead: pools register with it (receiving an even split to start) and a
// periodic Rebalance() retargets each pool's capacity by observed marginal
// utility — pools whose recent window shows more demand misses (misses are
// where extra capacity pays off) are granted more pages, subject to a
// per-pool floor, with exponential smoothing so one bursty window cannot
// thrash capacities. Capacity changes are applied through
// BufferPool::SetCapacity, which is safe against concurrent fetch traffic,
// so rebalancing never blocks queries.
//
// Thread safety: all methods are safe to call concurrently; one internal
// mutex serializes registration and rebalancing. The manager never holds a
// pool's shard locks except inside SetCapacity/StatsSnapshot calls, and
// pools never call back into the manager, so there is no lock cycle.
//
// Lifetime: callers must Unregister a pool before destroying it (the
// ShardedIndex does this in its destructor). The manager does not own pools.

#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "common/sync.h"
#include "storage/buffer_pool.h"
#include "storage/io_stats.h"

namespace ht {

struct CacheManagerOptions {
  /// Global budget, in pages, split across every registered pool. 0 means
  /// unbounded: registration leaves every pool at capacity 0 (no limit)
  /// and Rebalance is a no-op.
  size_t total_budget_pages = 0;
  /// No pool is ever retargeted below this floor (keeps a cold tenant from
  /// being starved to the point where a single query thrashes).
  size_t min_pool_pages = 64;
  /// MaybeRebalance() triggers an actual Rebalance() every this many calls
  /// (the serving layer calls it once per request).
  uint64_t rebalance_interval = 256;
  /// Exponential-smoothing factor applied to capacity retargets: the new
  /// target is smoothing * raw + (1 - smoothing) * current. 1.0 jumps
  /// straight to the raw demand split; small values adapt slowly.
  double smoothing = 0.5;
};

class CacheManager {
 public:
  explicit CacheManager(CacheManagerOptions options = {});
  HT_DISALLOW_COPY_AND_ASSIGN(CacheManager);

  /// Registers `pool` under `name` (for reporting) and re-splits the budget
  /// evenly across all registered pools. Idempotent per pool pointer.
  void Register(const std::string& name, BufferPool* pool);

  /// Removes `pool` from management, leaving its current capacity in place,
  /// and re-spreads the freed budget across the remaining pools. No-op if
  /// the pool was never registered.
  void Unregister(BufferPool* pool);

  /// Count-gated rebalance hook for request paths: every
  /// rebalance_interval-th call runs Rebalance(). Cheap otherwise (one
  /// relaxed atomic increment).
  void MaybeRebalance();

  /// Retargets every registered pool's capacity by the demand misses
  /// observed since the previous rebalance (see the file comment).
  void Rebalance();

  size_t total_budget_pages() const { return options_.total_budget_pages; }
  size_t pool_count() const;

  /// Point-in-time per-pool accounting for metrics export.
  struct PoolReport {
    std::string name;
    size_t capacity_pages = 0;  // pool's current target
    uint64_t window_hits = 0;   // demand hits since the last rebalance
    uint64_t window_misses = 0;
    double window_hit_rate = 0.0;
  };
  std::vector<PoolReport> Report() const;

 private:
  struct Entry {
    std::string name;
    BufferPool* pool = nullptr;
    /// Counter snapshot at the last rebalance; the delta against the
    /// pool's live counters is the observation window.
    IoStats last;
  };

  /// Sum of demand hits/misses across all access classes in `s`.
  static void DemandTotals(const IoStats& s, uint64_t* hits,
                           uint64_t* misses);
  /// Splits the budget evenly across entries_.
  void SplitEvenLocked() HT_REQUIRES(mu_);

  const CacheManagerOptions options_;
  /// Outermost lock in the pool hierarchy: Rebalance/SetCapacity take each
  /// pool's shard locks while mu_ is held (see common/lock_rank.h).
  mutable Mutex mu_{LockRank::kCacheManager, "CacheManager::mu_"};
  std::vector<Entry> entries_ HT_GUARDED_BY(mu_);
  /// Relaxed counter: MaybeRebalance only needs a unique per-call value to
  /// gate the interval; no ordering with any other data.
  std::atomic<uint64_t> tick_{0};
};

}  // namespace ht
