// Copyright 2026 The HybridTree Authors.
// BufferPool: pin-counted LRU page cache over a PagedFile.
//
// All trees in the repository perform node I/O through a BufferPool. Every
// Fetch/New counts one *logical* read — the unit the paper plots as "disk
// accesses per query" (one random access per node visited). Pool misses
// additionally count physical reads on the backing file.

#pragma once

#include <list>
#include <memory>
#include <unordered_map>

#include "common/macros.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/paged_file.h"

namespace ht {

class BufferPool;

/// RAII pin on a buffered page. While a handle is alive the frame cannot be
/// evicted. Call MarkDirty() after mutating data().
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept { MoveFrom(other); }
  PageHandle& operator=(PageHandle&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(other);
    }
    return *this;
  }
  ~PageHandle() { Release(); }
  HT_DISALLOW_COPY_AND_ASSIGN(PageHandle);

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }
  uint8_t* data();
  const uint8_t* data() const;
  size_t size() const;
  void MarkDirty();

  /// Drops the pin early (before destruction).
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, PageId id) : pool_(pool), id_(id) {}
  void MoveFrom(PageHandle& other) {
    pool_ = other.pool_;
    id_ = other.id_;
    other.pool_ = nullptr;
    other.id_ = kInvalidPageId;
  }

  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
};

/// LRU buffer pool. Not thread-safe (the index structures are single-
/// threaded per the paper's evaluation; concurrency is future work).
class BufferPool {
 public:
  /// `capacity_pages` of 0 means unbounded (everything stays cached, still
  /// counting logical reads — the configuration the benchmarks use, since
  /// the figure-of-merit is access counts, not cache behaviour).
  BufferPool(PagedFile* file, size_t capacity_pages);
  ~BufferPool();
  HT_DISALLOW_COPY_AND_ASSIGN(BufferPool);

  /// Fetches and pins page `id`.
  Result<PageHandle> Fetch(PageId id);

  /// Allocates a new page, pins it, and marks it dirty (so the zeroed or
  /// caller-filled image reaches the file on eviction/flush).
  Result<PageHandle> New();

  /// Frees page `id`; it must be unpinned. Drops any cached frame.
  Status Free(PageId id);

  /// Writes all dirty frames back to the file.
  Status FlushAll();

  /// Drops every unpinned frame (writing back dirty ones). Used by the
  /// harness to make each query cold.
  Status EvictAll();

  size_t page_size() const { return file_->page_size(); }
  PagedFile* file() { return file_; }

  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  /// Number of frames currently cached (for tests).
  size_t cached_frames() const { return frames_.size(); }
  /// Number of currently pinned frames (for tests).
  size_t pinned_frames() const;

 private:
  friend class PageHandle;

  struct Frame {
    Page page;
    int pins = 0;
    bool dirty = false;
    std::list<PageId>::iterator lru_it;  // valid iff pins == 0
    bool in_lru = false;
    explicit Frame(size_t page_size) : page(page_size) {}
  };

  Frame* FindFrame(PageId id);
  void Unpin(PageId id);
  Status EvictOneIfNeeded();
  Status WriteBack(PageId id, Frame* f);

  PagedFile* file_;
  size_t capacity_;
  std::unordered_map<PageId, std::unique_ptr<Frame>> frames_;
  std::list<PageId> lru_;  // front = most recent
  IoStats stats_;
};

}  // namespace ht
