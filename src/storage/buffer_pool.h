// Copyright 2026 The HybridTree Authors.
// BufferPool: pin-counted page cache over a PagedFile, with a choice of
// eviction policy (classic LRU, or a scan-resistant segmented LRU).
//
// All trees in the repository perform node I/O through a BufferPool. Every
// Fetch/New counts one *logical* read — the unit the paper plots as "disk
// accesses per query" (one random access per node visited). Pool misses
// additionally count physical reads on the backing file.
//
// Eviction policy. Two modes, fixed at construction:
//
//   * CachePolicy::kLru (the default): the classic recency-only pool —
//     behaviour and accounting are exactly the pre-SLRU pool, byte for
//     byte, which is what the paper-figure benchmarks and the regression
//     tests pin down.
//
//   * CachePolicy::kSlru: scan-resistant segmented LRU. Each shard keeps
//     three lists — a PROBATIONARY segment (new admissions), a PROTECTED
//     segment (~80% of capacity, promoted on re-reference), and a
//     prefetch queue (prefetched-but-never-referenced fills) — plus a
//     small frequency sketch (aged 4-bit counters). Eviction order is
//     STALE prefetch-queue pages (prefetched before the newest batch and
//     still never referenced), then the probationary tail, then any
//     remaining prefetch fills, then — only when nothing else is left —
//     the protected tail; so speculative and one-touch pages go first
//     while the batch a traversal is just about to consume is spared.
//     Promotion is driven by the caller's access class
//     (below): a query-class re-reference promotes probation → protected;
//     scan/prefetch/ingest re-references promote only when the sketch says
//     the page is genuinely multi-touch. A query-class MISS whose sketch
//     count is already hot is admitted straight to protected (the page was
//     recently hot and got pushed out by a burst). Query results are
//     byte-identical under either policy — only physical I/O differs.
//
// Access classes: call sites tag their traffic by installing a
// thread-local AccessClassScope (kQuery is the untagged default; the tree
// tags ScanAll/ELS-rebuild/stats sweeps kScan and the mutation paths
// kIngest; prefetch fills are tagged internally). The class selects the
// SLRU admission rule above and splits the IoStats class_* counters.
//
// Threading model. The pool has two modes:
//
//   * Serial mode (the default, and the state every pool starts in): no
//     locks are taken anywhere — behaviour, performance, and accounting are
//     exactly the classic single-threaded pool the paper figures use.
//
//   * Concurrent mode (SetConcurrentMode(true)): frames are partitioned
//     into kShardCount lock-striped shards, each with its own mutex, frame
//     map, segment lists, and IoStats counters, so concurrent readers can
//     pin/unpin pages safely. Backing-file reads (misses, batch fills,
//     prefetch fills) run under a SHARED file lock — pread/preadv are
//     positional and thread-safe, so concurrent misses no longer serialize
//     behind each other; only allocation/extension, Free, and dirty
//     write-back take the file lock exclusively. Logical-read accounting
//     stays exact: every Fetch/New increments its shard's counter under
//     the shard lock, and stats() sums the shards.
//
// Batched and prefetching I/O (the cold-cache pipeline):
//
//   * FetchMany pins a whole batch of pages, reading every miss in ONE
//     PagedFile::ReadBatch round trip (DiskPagedFile coalesces adjacent
//     pages into vectored preadv calls).
//
//   * Prefetch is a best-effort, NON-pinning fill: pages already cached
//     (or already in flight) are skipped, the rest are read in one batch
//     and parked unpinned — at the LRU front (kLru) or on the dedicated
//     prefetch queue (kSlru), where never-referenced fills are the FIRST
//     eviction victims instead of aging out mid-LRU. With an attached
//     async executor (SetPrefetchExecutor, concurrent mode only) the fill
//     runs on a background I/O thread and overlaps with the caller;
//     otherwise it is a synchronous batched round trip. Prefetch counts NO
//     logical reads — prefetched fills are physical reads only, so the
//     paper's figure-of-merit (logical accesses) is byte-identical with
//     prefetch on or off. prefetch_issued / prefetch_hits / batch_reads
//     counters expose pipeline effectiveness; a Fetch that lands on a
//     prefetched frame counts one prefetch_hit (first pin only). A Fetch
//     that misses while the page's fill is in flight waits for the fill
//     instead of re-reading (async mode), so prefetched I/O is never
//     duplicated.
//
// Capacity is adjustable at runtime (SetCapacity), safe against concurrent
// fetches — this is the hook CacheManager (storage/cache_manager.h) uses
// to rebalance one global memory budget across many pools.
//
// The intended usage protocol is shared-read / exclusive-write (see
// core/hybrid_tree.h): any number of threads may Fetch/Release concurrently
// in concurrent mode, but mutation (MarkDirty, New, Free) requires the
// caller to hold exclusive access to the index. Mode switches require
// quiescence (no pinned frames, no threads inside the pool).
//
// Per-worker accounting: a worker thread may install a thread-local
// IoStatsScope; while it is alive, every pool operation performed by that
// thread is additionally counted into the scope's sink. This is how the
// query executor attributes I/O to individual workers without contending
// on shared counters.

#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <list>
#include <memory>
#include <source_location>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "storage/io_stats.h"
#include "storage/paged_file.h"

namespace ht {

class BufferPool;

namespace internal {

/// Which SLRU list a frame belongs to while unpinned (kLru keeps every
/// frame in kProbation, which aliases the single LRU list).
enum class CacheSegment : uint8_t {
  kProbation = 0,
  kProtected = 1,
  kPrefetchQueue = 2,
};

/// One cached page. Heap-allocated and address-stable for its lifetime in
/// the pool, so pinned handles can keep a direct pointer.
struct PageFrame {
  Page page;
  int pins = 0;
  bool dirty = false;
  std::list<PageId>::iterator lru_it;  // valid iff in_lru
  bool in_lru = false;
  /// Set when the frame was filled by Prefetch and not yet pinned; the
  /// first Fetch that pins it counts one prefetch_hit and clears this.
  bool prefetched = false;
  /// Shard prefetch generation at fill time (prefetch-queue frames only):
  /// once a NEWER batch has landed in the shard, a still-unreferenced fill
  /// is stale and becomes the first eviction victim. Fresh fills — the
  /// batch the current traversal is about to consume — are spared until
  /// probation is exhausted.
  uint64_t fill_gen = 0;
  /// Segment the frame belongs to (or will re-enter on unpin).
  CacheSegment segment = CacheSegment::kProbation;
  /// Class of the access that admitted the frame (kPrefetch until a
  /// prefetched frame's first real reference); evictions are charged here.
  AccessClass admit_class = AccessClass::kQuery;
  explicit PageFrame(size_t page_size) : page(page_size) {}
};

}  // namespace internal

/// RAII pin on a buffered page. While a handle is alive the frame cannot be
/// evicted. Call MarkDirty() after mutating data(). The handle caches the
/// frame pointer, so data()/MarkDirty() are lock-free in both pool modes.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept { MoveFrom(other); }
  PageHandle& operator=(PageHandle&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(other);
    }
    return *this;
  }
  ~PageHandle() { Release(); }
  HT_DISALLOW_COPY_AND_ASSIGN(PageHandle);

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }
  uint8_t* data() {
    HT_DCHECK(valid());
    return frame_->page.data();
  }
  const uint8_t* data() const {
    HT_DCHECK(valid());
    return frame_->page.data();
  }
  size_t size() const;
  /// Requires exclusive access to the index (writers only; see the
  /// threading model above).
  void MarkDirty() {
    HT_DCHECK(valid());
    frame_->dirty = true;
  }

  /// Drops the pin early (before destruction).
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, PageId id, internal::PageFrame* frame,
             uint64_t pin_token = 0)
      : pool_(pool), frame_(frame), id_(id), pin_token_(pin_token) {}
  void MoveFrom(PageHandle& other) {
    pool_ = other.pool_;
    frame_ = other.frame_;
    id_ = other.id_;
    pin_token_ = other.pin_token_;
    other.pool_ = nullptr;
    other.frame_ = nullptr;
    other.id_ = kInvalidPageId;
    other.pin_token_ = 0;
  }

  BufferPool* pool_ = nullptr;
  internal::PageFrame* frame_ = nullptr;
  PageId id_ = kInvalidPageId;
  /// Debug pin-tracking registry key; 0 when tracking was off at pin time.
  uint64_t pin_token_ = 0;
};

/// Installs a thread-local IoStats sink for the calling thread: while the
/// scope is alive, every BufferPool operation this thread performs is also
/// counted into `*sink` (in addition to the pool's own counters). Scopes
/// nest; destruction restores the previous sink.
class IoStatsScope {
 public:
  explicit IoStatsScope(IoStats* sink);
  ~IoStatsScope();
  HT_DISALLOW_COPY_AND_ASSIGN(IoStatsScope);

 private:
  IoStats* prev_;
};

/// Tags the calling thread's buffer-pool traffic with an access class for
/// the scope's lifetime (see the file comment; kQuery is the untagged
/// default). Scopes nest; destruction restores the previous class.
class AccessClassScope {
 public:
  explicit AccessClassScope(AccessClass cls);
  ~AccessClassScope();
  HT_DISALLOW_COPY_AND_ASSIGN(AccessClassScope);

 private:
  AccessClass prev_;
};

/// The calling thread's current access class (kQuery with no scope alive).
AccessClass CurrentAccessClass();

/// Pin-counted page cache (policy + threading model in the file comment).
class BufferPool {
 public:
  /// `capacity_pages` of 0 means unbounded (everything stays cached, still
  /// counting logical reads — the configuration the benchmarks use, since
  /// the figure-of-merit is access counts, not cache behaviour). In
  /// concurrent mode a nonzero capacity is enforced per shard
  /// (ceil(capacity / kShardCount) frames each), so global eviction order
  /// is approximate; serial mode keeps the exact global order. The policy
  /// is fixed for the pool's lifetime.
  BufferPool(PagedFile* file, size_t capacity_pages,
             CachePolicy policy = CachePolicy::kLru);
  ~BufferPool();
  HT_DISALLOW_COPY_AND_ASSIGN(BufferPool);

  /// Number of lock stripes used in concurrent mode.
  static constexpr size_t kShardCount = 16;

  /// Switches between serial (lock-free) and concurrent (lock-striped)
  /// mode. Requires quiescence: no pinned frames and no other thread inside
  /// the pool. Cached frames are re-bucketed; stats are preserved.
  Status SetConcurrentMode(bool on);
  bool concurrent_mode() const { return concurrent_; }

  CachePolicy policy() const { return policy_; }
  /// Current capacity target in pages (0 = unbounded).
  size_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }

  /// Retargets the pool's capacity at runtime (the CacheManager rebalance
  /// hook). Safe against concurrent Fetch/Release traffic: growth takes
  /// effect lazily, shrinking evicts unpinned frames immediately (pinned
  /// overage drains as pins release and later misses evict down to the new
  /// target). 0 = unbounded.
  Status SetCapacity(size_t capacity_pages);

  /// Fetches and pins page `id`. The defaulted source_location captures
  /// the caller for debug pin-leak attribution (see SetPinTracking); it
  /// costs nothing while tracking is off.
  Result<PageHandle> Fetch(
      PageId id,
      std::source_location loc = std::source_location::current());

  /// Fetches and pins every page of `ids` (out->at(i) pins ids[i]); all
  /// misses are read from the backing file in ONE ReadBatch round trip.
  /// Duplicate ids are allowed (each handle holds its own pin on the
  /// shared frame). Each requested page counts one logical read, exactly
  /// like an equivalent sequence of Fetch calls. On error no pins are
  /// retained. All ids must resolve simultaneously, so a bounded pool
  /// needs capacity for the whole batch on top of existing pins.
  Status FetchMany(std::span<const PageId> ids, std::vector<PageHandle>* out,
                   std::source_location loc = std::source_location::current());

  /// Best-effort, non-pinning prefetch: pages already cached or already in
  /// flight are skipped; the remaining misses are read in one batch and
  /// inserted unpinned, tagged as prefetched (kSlru parks them on the
  /// evict-first prefetch queue). Counts NO logical reads (fills are
  /// physical reads only) and never evicts a pinned frame — pages that
  /// don't fit are silently dropped, as are read errors (the later Fetch
  /// will surface them). Runs asynchronously on the attached executor when
  /// one is set and the pool is in concurrent mode; synchronously (one
  /// batched round trip) otherwise.
  void Prefetch(std::span<const PageId> ids);

  /// Task-submission hook for async prefetch, e.g. wrapping
  /// exec::ThreadPool::Submit (the storage layer stays independent of the
  /// exec layer). The callback returns false if it cannot accept the task,
  /// in which case the fill runs synchronously. Passing nullptr detaches
  /// the executor and BLOCKS until all in-flight fills have drained.
  /// Attach/detach from one thread at a time, not concurrently with
  /// Prefetch callers.
  using AsyncExec = std::function<bool(std::function<void()>)>;
  void SetPrefetchExecutor(AsyncExec exec);

  /// True if page `id` currently has a frame (pinned or not). A point-in-
  /// time probe — the answer can be stale by the time the caller acts on
  /// it — used to gate prefetch batching (only batch when the next fetch
  /// would miss anyway). Counts nothing.
  bool Cached(PageId id) const;

  /// Allocates a new page, pins it, and marks it dirty (so the zeroed or
  /// caller-filled image reaches the file on eviction/flush).
  Result<PageHandle> New(
      std::source_location loc = std::source_location::current());

  /// Frees page `id`; it must be unpinned. Drops any cached frame.
  Status Free(PageId id);

  /// Writes all dirty frames back to the file. Batched: each shard's
  /// dirty set goes out in ONE PagedFile::WriteBatch round trip
  /// (DiskPagedFile coalesces adjacent pages into vectored pwritev; a
  /// single dirty frame degrades to a plain Write) under the exclusive
  /// file lock, instead of one Write per frame. In serial mode all frames
  /// live in shard 0, so the whole pool flushes in one round trip.
  Status FlushAll();

  /// FlushAll minus one page: used by HybridTree::Flush to make every
  /// tree page durable BEFORE the metadata page is written, so a torn
  /// flush can never install a new root over missing pages.
  Status FlushAllExcept(PageId skip);

  /// Writes back a single page's frame if it is cached and dirty (no-op
  /// otherwise). The second phase of the ordered flush.
  Status FlushPage(PageId id);

  /// Drops every unpinned frame (writing back dirty ones via the batched
  /// FlushAll). Used by the harness to make each query cold.
  Status EvictAll();

  size_t page_size() const { return file_->page_size(); }
  PagedFile* file() { return file_; }

  /// Accounts one batched data-page distance scan against page `id`:
  /// `rows` points entered the scan; when `filtered` is set, `survivors`
  /// of them passed the quantized-code filter and were refined exactly
  /// (the rest were pruned by the code lower bound). Counted into the
  /// page's shard stats and the thread-local IoStatsScope sink, like any
  /// other pool operation. Scans driven by an incremental KnnCursor pass
  /// `cursor` and are charged to the cursor_* duals instead, so the two
  /// scan paths stay separately observable.
  void CountScan(PageId id, uint64_t rows, uint64_t survivors, bool filtered,
                 bool cursor = false);

  /// Sum of the shard counters. The returned reference stays valid but is
  /// only refreshed by the next stats() call. Call from one thread at a
  /// time; safe while readers run in concurrent mode (shard locks are
  /// taken), racy only if two threads call stats() simultaneously.
  const IoStats& stats() const;
  /// Same totals, returned by value (preferred in concurrent code).
  IoStats StatsSnapshot() const;
  void ResetStats();

  /// Point-in-time cache gauges for metrics export. capacity_pages is the
  /// current TARGET (what SetCapacity last applied; 0 = unbounded) and
  /// cached_pages the current occupancy — they diverge transiently while
  /// pinned frames hold a shrink above target. Segment sizes cover
  /// UNPINNED frames (pinned ones are in no list).
  struct CacheSnapshot {
    CachePolicy policy = CachePolicy::kLru;
    size_t capacity_pages = 0;
    size_t cached_pages = 0;
    size_t pinned_pages = 0;
    size_t probation_pages = 0;
    size_t protected_pages = 0;
    size_t prefetch_queue_pages = 0;
    /// Cumulative counters (the same totals as StatsSnapshot).
    IoStats stats;
  };
  CacheSnapshot SnapshotCache() const;

  /// Number of frames currently cached (for tests).
  size_t cached_frames() const;
  /// Number of currently pinned frames (for tests).
  size_t pinned_frames() const;

  // --- debug pin tracking (leak attribution) -------------------------------
  // Every search/insert/delete must release all pins it takes; a leaked pin
  // wedges eviction and — under the shared-read protocol — blocks mode
  // switches forever. With tracking ON, each pin records the source
  // location of the Fetch/FetchMany/New that created it, and AssertNoPins
  // attributes outstanding pins to those call sites. Tracking defaults to
  // ON in HT_DEBUG_VALIDATE builds and OFF otherwise (the hot path then
  // pays one relaxed atomic load per pin).

  /// Enables/disables pin tracking. Flip only while no frame is pinned and
  /// no other thread is inside the pool (same quiescence rule as
  /// SetConcurrentMode).
  void SetPinTracking(bool on);
  bool pin_tracking() const {
    return pin_tracking_.load(std::memory_order_relaxed);
  }

  /// OK iff no frame is pinned. Otherwise an Internal error naming every
  /// outstanding pin — with file:line:function attribution when tracking
  /// was on at pin time — so the leaking call site is identified directly
  /// from the failure message.
  Status AssertNoPins() const;

 private:
  friend class PageHandle;

  using Frame = internal::PageFrame;
  using CacheSegment = internal::CacheSegment;

  /// Frequency sketch: per-shard aged counters (256 buckets, saturating at
  /// kSketchMax, halved every ~16x-capacity accesses). A count >=
  /// kSketchPromote marks a page as multi-touch for the admission and
  /// promotion rules in the file comment.
  static constexpr size_t kSketchSize = 256;
  static constexpr uint8_t kSketchMax = 15;
  static constexpr uint8_t kSketchPromote = 3;

  struct Shard {
    /// Guards every field of the shard. In serial mode call sites pass
    /// enabled=false guards, which claim the capability to the static
    /// analysis without locking (see common/sync.h: the pool is
    /// single-threaded by contract in that mode).
    mutable Mutex mu{LockRank::kPoolShard, "BufferPool::Shard::mu"};
    std::unordered_map<PageId, std::unique_ptr<Frame>> frames
        HT_GUARDED_BY(mu);
    /// Probationary segment in kSlru; the ONLY list in kLru. front = most
    /// recent; unpinned frames only.
    std::list<PageId> lru HT_GUARDED_BY(mu);
    /// Protected segment (kSlru only): frames promoted on re-reference.
    std::list<PageId> protected_lru HT_GUARDED_BY(mu);
    /// Prefetched-but-never-referenced fills (kSlru only): first victims.
    std::list<PageId> prefetch_queue HT_GUARDED_BY(mu);
    /// Recycled list nodes: the pin/unpin hot path moves nodes between
    /// the segment lists and this one with splice() instead of erasing/
    /// reinserting, so a warm Fetch/Release cycle performs no heap
    /// allocation. Bounded by the peak number of simultaneously pinned
    /// frames.
    std::list<PageId> lru_spares HT_GUARDED_BY(mu);
    /// Frequency sketch (kSlru only; see the constants above).
    std::array<uint8_t, kSketchSize> sketch HT_GUARDED_BY(mu){};
    uint64_t sketch_ops HT_GUARDED_BY(mu) = 0;
    /// Bumped once per prefetch batch landing in this shard; compared
    /// against PageFrame::fill_gen to age out abandoned prefetches.
    uint64_t prefetch_gen HT_GUARDED_BY(mu) = 0;
    IoStats stats HT_GUARDED_BY(mu);
  };

  size_t ShardIndex(PageId id) const {
    return concurrent_ ? static_cast<size_t>(id) % kShardCount : 0;
  }
  Shard& ShardFor(PageId id) { return shards_[ShardIndex(id)]; }

  /// The list a frame in `segment` lives on (always `lru` under kLru).
  std::list<PageId>& ListFor(Shard& shard, CacheSegment segment)
      HT_REQUIRES(shard.mu) {
    switch (segment) {
      case CacheSegment::kProtected:
        return shard.protected_lru;
      case CacheSegment::kPrefetchQueue:
        return shard.prefetch_queue;
      case CacheSegment::kProbation:
        break;
    }
    return shard.lru;
  }

  void Unpin(PageId id, Frame* f);
  /// Registers a live pin in the tracking registry; returns the token the
  /// handle must carry (0 when tracking is off).
  uint64_t TrackPin(PageId id, const std::source_location& loc);
  void UntrackPin(uint64_t token);

  /// Ages + bumps the sketch counter for `id`; returns the new count.
  /// kSlru only.
  uint8_t SketchTouch(Shard& shard, PageId id) HT_REQUIRES(shard.mu);
  /// Per-shard protected-segment budget (~80% of the shard capacity;
  /// 0 = unbounded pool, no budget enforced).
  size_t ProtectedCapacity() const;
  /// Hit-path bookkeeping under the shard lock: prefetch_hit accounting,
  /// splice out of the frame's segment list, and the SLRU promotion rules.
  void TouchHitLocked(Shard& shard, PageId id, Frame* f)
      HT_REQUIRES(shard.mu);
  /// Admission segment for a freshly missed page (kSlru: sketch-hot
  /// query-class misses go straight to protected). Touches the sketch.
  CacheSegment AdmitSegmentLocked(Shard& shard, PageId id)
      HT_REQUIRES(shard.mu);
  /// Demotes the protected tail into probation until the segment fits its
  /// budget.
  void EnforceProtectedCapLocked(Shard& shard) HT_REQUIRES(shard.mu);
  /// Evicts down to the shard capacity (at most one eviction in steady
  /// state). When every resident frame is pinned, `demand` decides the
  /// outcome: demand fetches admit the new frame over capacity (counted
  /// in pin_overflows; the loop drains the shard back to target once pins
  /// release) so concurrent queries never fail on transient pin
  /// saturation, while speculative fills (demand=false) report
  /// ResourceExhausted and the caller drops the page.
  Status EvictOneIfNeeded(Shard& shard, bool demand) HT_REQUIRES(shard.mu);
  /// Evicts one unpinned frame in policy order (kSlru: prefetch queue,
  /// then probation, then protected; kLru: the LRU tail), charging the
  /// eviction to the victim's admitting class.
  Status EvictVictimLocked(Shard& shard) HT_REQUIRES(shard.mu);
  /// Writes one dirty frame back (takes the file lock: shard -> file
  /// order per the rank table in common/lock_rank.h).
  Status WriteBack(Shard& shard, PageId id, Frame* f)
      HT_REQUIRES(shard.mu);
  /// Writes this shard's dirty frames (minus `skip`) in one WriteBatch.
  /// Takes the file lock internally (same shard -> file order).
  Status FlushShardLocked(Shard& shard, PageId skip) HT_REQUIRES(shard.mu);

  /// Reads `ids` (all distinct, none cached at issue time) in one batch
  /// and installs the frames unpinned + prefetch-tagged. Runs on the
  /// caller's thread (sync mode) or an executor thread (async mode); in
  /// async mode, clears the ids from inflight_ when done. Never holds a
  /// shard lock while touching prefetch_mu_.
  void FillPrefetch(std::vector<PageId> ids, bool async);
  /// Blocks until no prefetch fill is in flight.
  void DrainPrefetch();

  PagedFile* file_;
  const CachePolicy policy_;
  /// Capacity target and its per-shard derivative. Atomic so SetCapacity
  /// can retarget while fetches run; readers load relaxed under their
  /// shard lock.
  std::atomic<size_t> capacity_;
  std::atomic<size_t> shard_capacity_;
  bool concurrent_ = false;
  std::array<Shard, kShardCount> shards_;
  /// File-access ordering lock: miss reads, batch fills, and prefetch
  /// fills hold it SHARED (positional reads are thread-safe and may
  /// overlap each other); allocation/extension, Free, and dirty
  /// write-back hold it EXCLUSIVE so they never overlap a read of the
  /// same file. It orders OPERATIONS, not data — file_ itself is a const
  /// pointer and metadata reads like page_size() are lock-free — so no
  /// field is GUARDED_BY it; the capability still participates in the
  /// analysis through the scoped guards and in the rank order (shard ->
  /// file). Serial mode passes enabled=false guards like the shard locks.
  mutable SharedMutex file_mu_{LockRank::kPoolFile, "BufferPool::file_mu_"};
  mutable IoStats agg_stats_;  // scratch for stats()

  /// Async prefetch state. inflight_ holds ids whose background fill has
  /// been scheduled but not finished; Fetch waits on prefetch_cv_ instead
  /// of issuing a duplicate read. Lock order: prefetch_mu_ may be taken
  /// with no shard lock held, or before a shard lock — never after one
  /// (ranked above kPoolShard, so the rank checker enforces exactly that).
  AsyncExec async_exec_;
  Mutex prefetch_mu_{LockRank::kPoolPrefetch, "BufferPool::prefetch_mu_"};
  CondVar prefetch_cv_;
  std::unordered_set<PageId> inflight_ HT_GUARDED_BY(prefetch_mu_);
  /// == inflight_.size(); lets the Fetch miss path skip the prefetch_mu_
  /// round trip entirely when nothing is in flight (the common case).
  /// Release on update / acquire on the skip-check: a fetch that sees a
  /// nonzero count must also see the inflight_ entries published before
  /// the increment once it takes prefetch_mu_ (zero needs no ordering —
  /// there is nothing to observe).
  std::atomic<size_t> inflight_count_{0};

  /// Debug pin tracking (see SetPinTracking). Token -> pin site for every
  /// live pin taken while tracking was on. pin_mu_ is a leaf lock: it may
  /// be acquired while a shard lock is held, and nothing is ever acquired
  /// under it.
  struct PinSite {
    PageId page;
    const char* file;
    unsigned line;
    const char* function;
  };
  /// Relaxed: the tracking flag is flipped only between operations (a pin
  /// that races the flip is simply not attributed), and the token counter
  /// only needs uniqueness, not ordering.
  std::atomic<bool> pin_tracking_{false};
  std::atomic<uint64_t> next_pin_token_{1};
  mutable Mutex pin_mu_{LockRank::kPoolPinTable, "BufferPool::pin_mu_"};
  std::unordered_map<uint64_t, PinSite> live_pins_ HT_GUARDED_BY(pin_mu_);
};

}  // namespace ht
