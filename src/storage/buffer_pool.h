// Copyright 2026 The HybridTree Authors.
// BufferPool: pin-counted LRU page cache over a PagedFile.
//
// All trees in the repository perform node I/O through a BufferPool. Every
// Fetch/New counts one *logical* read — the unit the paper plots as "disk
// accesses per query" (one random access per node visited). Pool misses
// additionally count physical reads on the backing file.
//
// Threading model. The pool has two modes:
//
//   * Serial mode (the default, and the state every pool starts in): no
//     locks are taken anywhere — behaviour, performance, and accounting are
//     exactly the classic single-threaded pool the paper figures use.
//
//   * Concurrent mode (SetConcurrentMode(true)): frames are partitioned
//     into kShardCount lock-striped shards, each with its own mutex, frame
//     map, LRU list, and IoStats counters, so concurrent readers can
//     pin/unpin pages safely. Backing-file I/O (misses, write-backs,
//     allocation) is serialized behind one file mutex. Logical-read
//     accounting stays exact: every Fetch/New increments its shard's
//     counter under the shard lock, and stats() sums the shards.
//
// The intended usage protocol is shared-read / exclusive-write (see
// core/hybrid_tree.h): any number of threads may Fetch/Release concurrently
// in concurrent mode, but mutation (MarkDirty, New, Free) requires the
// caller to hold exclusive access to the index. Mode switches require
// quiescence (no pinned frames, no threads inside the pool).
//
// Per-worker accounting: a worker thread may install a thread-local
// IoStatsScope; while it is alive, every pool operation performed by that
// thread is additionally counted into the scope's sink. This is how the
// query executor attributes I/O to individual workers without contending
// on shared counters.

#pragma once

#include <array>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/macros.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/paged_file.h"

namespace ht {

class BufferPool;

namespace internal {
/// One cached page. Heap-allocated and address-stable for its lifetime in
/// the pool, so pinned handles can keep a direct pointer.
struct PageFrame {
  Page page;
  int pins = 0;
  bool dirty = false;
  std::list<PageId>::iterator lru_it;  // valid iff in_lru
  bool in_lru = false;
  explicit PageFrame(size_t page_size) : page(page_size) {}
};
}  // namespace internal

/// RAII pin on a buffered page. While a handle is alive the frame cannot be
/// evicted. Call MarkDirty() after mutating data(). The handle caches the
/// frame pointer, so data()/MarkDirty() are lock-free in both pool modes.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept { MoveFrom(other); }
  PageHandle& operator=(PageHandle&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(other);
    }
    return *this;
  }
  ~PageHandle() { Release(); }
  HT_DISALLOW_COPY_AND_ASSIGN(PageHandle);

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }
  uint8_t* data() {
    HT_DCHECK(valid());
    return frame_->page.data();
  }
  const uint8_t* data() const {
    HT_DCHECK(valid());
    return frame_->page.data();
  }
  size_t size() const;
  /// Requires exclusive access to the index (writers only; see the
  /// threading model above).
  void MarkDirty() {
    HT_DCHECK(valid());
    frame_->dirty = true;
  }

  /// Drops the pin early (before destruction).
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, PageId id, internal::PageFrame* frame)
      : pool_(pool), frame_(frame), id_(id) {}
  void MoveFrom(PageHandle& other) {
    pool_ = other.pool_;
    frame_ = other.frame_;
    id_ = other.id_;
    other.pool_ = nullptr;
    other.frame_ = nullptr;
    other.id_ = kInvalidPageId;
  }

  BufferPool* pool_ = nullptr;
  internal::PageFrame* frame_ = nullptr;
  PageId id_ = kInvalidPageId;
};

/// Installs a thread-local IoStats sink for the calling thread: while the
/// scope is alive, every BufferPool operation this thread performs is also
/// counted into `*sink` (in addition to the pool's own counters). Scopes
/// nest; destruction restores the previous sink.
class IoStatsScope {
 public:
  explicit IoStatsScope(IoStats* sink);
  ~IoStatsScope();
  HT_DISALLOW_COPY_AND_ASSIGN(IoStatsScope);

 private:
  IoStats* prev_;
};

/// LRU buffer pool (see the threading model in the file comment).
class BufferPool {
 public:
  /// `capacity_pages` of 0 means unbounded (everything stays cached, still
  /// counting logical reads — the configuration the benchmarks use, since
  /// the figure-of-merit is access counts, not cache behaviour). In
  /// concurrent mode a nonzero capacity is enforced per shard
  /// (ceil(capacity / kShardCount) frames each), so global LRU order is
  /// approximate; serial mode keeps the exact global LRU.
  BufferPool(PagedFile* file, size_t capacity_pages);
  ~BufferPool();
  HT_DISALLOW_COPY_AND_ASSIGN(BufferPool);

  /// Number of lock stripes used in concurrent mode.
  static constexpr size_t kShardCount = 16;

  /// Switches between serial (lock-free) and concurrent (lock-striped)
  /// mode. Requires quiescence: no pinned frames and no other thread inside
  /// the pool. Cached frames are re-bucketed; stats are preserved.
  Status SetConcurrentMode(bool on);
  bool concurrent_mode() const { return concurrent_; }

  /// Fetches and pins page `id`.
  Result<PageHandle> Fetch(PageId id);

  /// Allocates a new page, pins it, and marks it dirty (so the zeroed or
  /// caller-filled image reaches the file on eviction/flush).
  Result<PageHandle> New();

  /// Frees page `id`; it must be unpinned. Drops any cached frame.
  Status Free(PageId id);

  /// Writes all dirty frames back to the file.
  Status FlushAll();

  /// Drops every unpinned frame (writing back dirty ones). Used by the
  /// harness to make each query cold.
  Status EvictAll();

  size_t page_size() const { return file_->page_size(); }
  PagedFile* file() { return file_; }

  /// Sum of the shard counters. The returned reference stays valid but is
  /// only refreshed by the next stats() call. Call from one thread at a
  /// time; safe while readers run in concurrent mode (shard locks are
  /// taken), racy only if two threads call stats() simultaneously.
  const IoStats& stats() const;
  /// Same totals, returned by value (preferred in concurrent code).
  IoStats StatsSnapshot() const;
  void ResetStats();

  /// Number of frames currently cached (for tests).
  size_t cached_frames() const;
  /// Number of currently pinned frames (for tests).
  size_t pinned_frames() const;

 private:
  friend class PageHandle;

  using Frame = internal::PageFrame;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<PageId, std::unique_ptr<Frame>> frames;
    std::list<PageId> lru;  // front = most recent; unpinned frames only
    /// Recycled LRU nodes: the pin/unpin hot path moves nodes between
    /// `lru` and this list with splice() instead of erasing/reinserting,
    /// so a warm Fetch/Release cycle performs no heap allocation. Bounded
    /// by the peak number of simultaneously pinned frames.
    std::list<PageId> lru_spares;
    IoStats stats;
  };

  size_t ShardIndex(PageId id) const {
    return concurrent_ ? static_cast<size_t>(id) % kShardCount : 0;
  }
  Shard& ShardFor(PageId id) { return shards_[ShardIndex(id)]; }
  /// Empty (no-op) lock in serial mode, a real lock in concurrent mode.
  std::unique_lock<std::mutex> LockShard(const Shard& s) const {
    return concurrent_ ? std::unique_lock<std::mutex>(s.mu)
                       : std::unique_lock<std::mutex>();
  }
  std::unique_lock<std::mutex> LockFile() const {
    return concurrent_ ? std::unique_lock<std::mutex>(file_mu_)
                       : std::unique_lock<std::mutex>();
  }

  void Unpin(PageId id, Frame* f);
  /// Caller holds the shard lock (concurrent mode) or is single-threaded.
  Status EvictOneIfNeeded(Shard& shard);
  Status WriteBack(PageId id, Frame* f);

  PagedFile* file_;
  size_t capacity_;
  size_t shard_capacity_;  // derived: per-shard cap in the current mode
  bool concurrent_ = false;
  std::array<Shard, kShardCount> shards_;
  mutable std::mutex file_mu_;  // guards file_ I/O in concurrent mode
  mutable IoStats agg_stats_;   // scratch for stats()
};

}  // namespace ht
