// Copyright 2026 The HybridTree Authors.

#include "storage/quant_store.h"

#include <cstring>

#include "common/macros.h"

namespace ht {

QuantizedPage::QuantizedPage(const float* block, size_t stride_floats,
                             size_t count, uint32_t dim)
    : dim_(dim),
      count_(count),
      stride_(quant::PaddedDim(dim)),
      grid_lo_(dim),
      grid_hi_(dim) {
  HT_CHECK(count > 0 && dim > 0);
  // Grid = the page's live bounding region: min/max per dimension over the
  // resident points. Tightest possible uniform grid for this page.
  for (uint32_t d = 0; d < dim; ++d) {
    grid_lo_[d] = block[d];
    grid_hi_[d] = block[d];
  }
  for (size_t i = 1; i < count; ++i) {
    const float* row = block + i * stride_floats;
    for (uint32_t d = 0; d < dim; ++d) {
      if (row[d] < grid_lo_[d]) grid_lo_[d] = row[d];
      if (row[d] > grid_hi_[d]) grid_hi_[d] = row[d];
    }
  }
  const size_t bytes = count * stride_;
  codes_.reset(static_cast<uint8_t*>(
      ::operator new(bytes, std::align_val_t{Page::kAlignment})));
  std::memset(codes_.get(), 0, bytes);
  for (size_t i = 0; i < count; ++i) {
    quant::EncodeSidecarRow(block + i * stride_floats, grid_lo_.data(),
                            grid_hi_.data(), dim, codes_.get() + i * stride_);
  }
  // Transposed mirrors: kTBlock rows per block, dimension-major, so
  // element d of a block's rows is one contiguous group — 32-byte-aligned
  // floats for the batch kernels, 8 bytes of codes for the ct_* kernels.
  full_blocks_ = count / kernels::kTBlock;
  if (full_blocks_ > 0) {
    const size_t tf_floats = full_blocks_ * dim * kernels::kTBlock;
    tf_.reset(static_cast<float*>(::operator new(
        tf_floats * sizeof(float), std::align_val_t{Page::kAlignment})));
    tc_.reset(static_cast<uint8_t*>(::operator new(
        tf_floats, std::align_val_t{Page::kAlignment})));
    for (size_t b = 0; b < full_blocks_; ++b) {
      float* tb = tf_.get() + b * dim * kernels::kTBlock;
      uint8_t* tcb = tc_.get() + b * dim * kernels::kTBlock;
      for (size_t lane = 0; lane < kernels::kTBlock; ++lane) {
        const size_t i = b * kernels::kTBlock + lane;
        const float* row = block + i * stride_floats;
        const uint8_t* crow = codes_.get() + i * stride_;
        for (uint32_t d = 0; d < dim; ++d) {
          tb[d * kernels::kTBlock + lane] = row[d];
          tcb[d * kernels::kTBlock + lane] = crow[d];
        }
      }
    }
  }
}

bool QuantizedPage::Matches(const float* block, size_t stride_floats,
                            size_t count, uint32_t dim) const {
  if (count != count_ || dim != dim_) return false;
  QuantizedPage fresh(block, stride_floats, count, dim);
  const size_t tf_bytes =
      full_blocks_ * dim * kernels::kTBlock * sizeof(float);
  // tc_ needs no separate check: it is a deterministic re-layout of the
  // codes bytes compared below.
  return fresh.grid_lo_ == grid_lo_ && fresh.grid_hi_ == grid_hi_ &&
         std::memcmp(fresh.codes_.get(), codes_.get(), count * stride_) == 0 &&
         (tf_bytes == 0 ||
          std::memcmp(fresh.tf_.get(), tf_.get(), tf_bytes) == 0);
}

std::shared_ptr<const QuantizedPage> QuantStore::GetOrBuild(
    PageId id, const float* block, size_t stride_floats, size_t count,
    uint32_t dim, bool concurrent) const {
  if (count == 0) return nullptr;
  // Single code path for both modes: when `concurrent` is false the guards
  // claim the capability without locking, so the serial path keeps its
  // zero-synchronization cost while the analysis sees one locked protocol.
  {
    ReaderLock lock(&mu_, concurrent);
    auto it = cache_.find(id);
    if (it != cache_.end()) return it->second;
  }
  // Build outside any lock: encoding is the expensive part and the input
  // block belongs to a pinned page, so it cannot move underneath us.
  auto built =
      std::make_shared<const QuantizedPage>(block, stride_floats, count, dim);
  WriterLock lock(&mu_, concurrent);
  // A racing reader may have built the same sidecar; keep the first.
  return cache_.emplace(id, std::move(built)).first->second;
}

std::shared_ptr<const QuantizedPage> QuantStore::Lookup(PageId id) const {
  ReaderLock lock(&mu_);
  auto it = cache_.find(id);
  return it != cache_.end() ? it->second : nullptr;
}

void QuantStore::Invalidate(PageId id) {
  WriterLock lock(&mu_);
  cache_.erase(id);
}

void QuantStore::Clear() {
  WriterLock lock(&mu_);
  cache_.clear();
}

size_t QuantStore::CachedPages() const {
  ReaderLock lock(&mu_);
  return cache_.size();
}

std::vector<PageId> QuantStore::Snapshot() const {
  ReaderLock lock(&mu_);
  std::vector<PageId> ids;
  ids.reserve(cache_.size());
  for (const auto& [id, page] : cache_) ids.push_back(id);
  return ids;
}

}  // namespace ht
