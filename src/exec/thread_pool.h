// Copyright 2026 The HybridTree Authors.
// ThreadPool: fixed-size worker pool with a FIFO work queue, graceful
// shutdown, and Status-based error propagation (no exceptions — tasks
// return ht::Status like every other fallible operation in the library).
//
// Lifecycle: workers start in the constructor and exit when Shutdown()
// (or the destructor) is called AND the queue has drained — shutdown is
// graceful, every submitted task runs. Wait() is a barrier for callers
// that reuse the pool across batches: it blocks until the queue is empty
// and no task is running, then returns (and clears) the first non-OK
// Status produced by a task since the previous Wait()/Shutdown().

#pragma once

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "common/sync.h"

namespace ht {

class ThreadPool {
 public:
  /// A fallible unit of work. The first non-OK return value is retained
  /// and surfaced by Wait()/Shutdown(); later tasks still run.
  using Task = std::function<Status()>;

  /// Starts `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();
  HT_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `task`; InvalidArgument after Shutdown() has begun.
  Status Submit(Task task);

  /// Blocks until every submitted task has finished. Returns the first
  /// non-OK task Status since the last Wait()/Shutdown() (and resets it).
  Status Wait();

  /// Drains the queue, joins all workers, and rejects future Submits.
  /// Idempotent. Returns the first non-OK task Status like Wait().
  Status Shutdown();

 private:
  void WorkerLoop();

  mutable Mutex mu_{LockRank::kThreadPool, "ThreadPool::mu_"};
  CondVar work_cv_;  // signaled on submit and shutdown
  CondVar idle_cv_;  // signaled when the pool may be idle
  std::deque<Task> queue_ HT_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;
  size_t running_ HT_GUARDED_BY(mu_) = 0;  // tasks currently executing
  bool stop_ HT_GUARDED_BY(mu_) = false;
  Status first_error_ HT_GUARDED_BY(mu_);
};

}  // namespace ht
