#include "exec/thread_pool.h"

#include <algorithm>
#include <utility>

namespace ht {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { (void)Shutdown(); }

Status ThreadPool::Submit(Task task) {
  {
    MutexLock lock(&mu_);
    if (stop_) {
      return Status::InvalidArgument("ThreadPool::Submit after Shutdown");
    }
    queue_.push_back(std::move(task));
  }
  work_cv_.NotifyOne();
  return Status::OK();
}

Status ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (!(queue_.empty() && running_ == 0)) idle_cv_.Wait(lock);
  Status s = std::move(first_error_);
  first_error_ = Status::OK();
  return s;
}

Status ThreadPool::Shutdown() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  MutexLock lock(&mu_);
  Status s = std::move(first_error_);
  first_error_ = Status::OK();
  return s;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      MutexLock lock(&mu_);
      while (!(stop_ || !queue_.empty())) work_cv_.Wait(lock);
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    Status s = task();
    {
      MutexLock lock(&mu_);
      --running_;
      if (!s.ok() && first_error_.ok()) first_error_ = std::move(s);
    }
    // A finished task can only make the pool idle; waiters re-check.
    idle_cv_.NotifyAll();
  }
}

}  // namespace ht
