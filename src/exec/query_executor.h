// Copyright 2026 The HybridTree Authors.
// QueryExecutor: serves a batch of box / distance-range / k-NN queries
// concurrently against one shared HybridTree.
//
// This is the serving layer the ROADMAP's north star asks for: tree search
// parallelizes trivially across queries once traversal state is per-query
// (KDTREE 2 makes the same observation), so the executor fans a Workload
// out to a ThreadPool, runs every query through the tree's const,
// re-entrant read paths, and aggregates per-worker IoStats plus latency
// percentiles (p50/p95/p99).
//
// Concurrency protocol (shared-read / exclusive-write): Run() flips the
// tree into concurrent-read mode for the duration of the batch and flips
// it back afterwards. While Run() is in flight the caller MUST NOT mutate
// the tree (Insert/Delete/Flush) — readers share, writers exclude. Between
// batches the tree is back in its serial single-threaded configuration, so
// the paper benchmarks and their exact logical-read accounting are
// unaffected.
//
// Work distribution is a single atomic cursor over the query array: workers
// claim the next unclaimed query, write its result into its private slot
// (no two workers ever touch the same slot), and record latency and I/O in
// worker-local structures merged after the pool barrier. Results are
// therefore byte-identical to a single-threaded run regardless of
// scheduling.
//
// Hot-path buffers: the executor pools one SearchScratch per worker,
// persisted across queries AND across Run() batches, and routes every
// query through the tree's *Into APIs. After each worker's first query of
// its first batch, the steady-state search loop performs no heap
// allocation (see core/search_scratch.h).
//
// Cancellation and deadlines: Run() honours an optional external cancel
// flag and the executor's own Cancel(), checked before each query; a
// per-batch deadline marks queries that had not started in time as
// DeadlineExceeded. Queries already executing always finish (index reads
// are short); the batch report counts completed/cancelled/expired queries
// separately.

#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/hybrid_tree.h"
#include "exec/latency.h"
#include "exec/thread_pool.h"
#include "geometry/box.h"
#include "geometry/metrics.h"
#include "storage/io_stats.h"

namespace ht {

/// One query of a batch workload.
struct Query {
  enum class Type : uint8_t { kBox = 0, kRange = 1, kKnn = 2 };

  Type type = Type::kBox;
  Box box;                    // kBox
  std::vector<float> center;  // kRange / kKnn
  double radius = 0.0;        // kRange
  size_t k = 0;               // kKnn

  static Query MakeBox(Box b) {
    Query q;
    q.type = Type::kBox;
    q.box = std::move(b);
    return q;
  }
  static Query MakeRange(std::vector<float> center, double radius) {
    Query q;
    q.type = Type::kRange;
    q.center = std::move(center);
    q.radius = radius;
    return q;
  }
  static Query MakeKnn(std::vector<float> center, size_t k) {
    Query q;
    q.type = Type::kKnn;
    q.center = std::move(center);
    q.k = k;
    return q;
  }
};

/// A batch of queries. `metric` is required when any query is a range or
/// k-NN query and must outlive the Run() call.
struct Workload {
  std::vector<Query> queries;
  const DistanceMetric* metric = nullptr;
};

/// Per-batch execution controls.
struct ExecOptions {
  /// Wall-clock budget for the batch in seconds; 0 = no deadline. Queries
  /// not started when the budget expires finish as DeadlineExceeded.
  double deadline_seconds = 0.0;
  /// Optional external cancellation flag, polled before each query.
  const std::atomic<bool>* cancel = nullptr;
  /// Optional dedicated I/O pool for async prefetch fills: when set, Run()
  /// attaches it to the tree's buffer pool for the duration of the batch
  /// (see BufferPool::SetPrefetchExecutor), so queries with a nonzero
  /// prefetch depth overlap their cold-cache reads with computation. MUST
  /// be a different pool from the query pool — a fill task queued behind
  /// the very queries waiting for it would deadlock the batch; Run()
  /// rejects io_pool == the query pool. Not owned; must outlive Run().
  ThreadPool* io_pool = nullptr;
  /// Optional per-request I/O accounting sink: when set, the serving tier
  /// (ShardedIndex::RunOnShards) additionally accumulates the request's
  /// scatter-task IoStats — including the per-access-class cache counters —
  /// into it, so a server can attribute cache behaviour to the tenant that
  /// caused it. Written after the scatter barrier; not owned.
  IoStats* request_io = nullptr;
  /// k-NN recall knobs, exact by default (see core KnnSearchLimits for the
  /// semantics). epsilon makes every k-NN (1+epsilon)-approximate.
  double knn_epsilon = 0.0;
  /// Total k-NN leaf-visit budget per query; 0 = unlimited. The sharded
  /// tier splits it evenly across shards (ceil division, so the budget is
  /// never under-provisioned by rounding).
  size_t knn_max_leaf_visits = 0;
  /// Optional accounting sink for the knobs above: leaf visits and
  /// early-terminated traversals accumulate here (one count per shard
  /// traversal in the sharded tier). Written after the scatter barrier,
  /// like request_io; not owned.
  struct KnnExecStats* knn_stats = nullptr;
};

/// Aggregated k-NN approximation accounting for one request or batch.
struct KnnExecStats {
  /// Data pages (leaves) scanned by k-NN traversals.
  uint64_t leaf_visits = 0;
  /// Traversals an approximation knob cut short of the exact search.
  uint64_t early_terminations = 0;

  void Accumulate(const KnnExecStats& other) {
    leaf_visits += other.leaf_visits;
    early_terminations += other.early_terminations;
  }
};

/// Outcome of one query. Exactly one of `ids` / `neighbors` is populated
/// (by query type) when `status` is OK.
struct QueryResult {
  Status status;
  std::vector<uint64_t> ids;                          // box / range
  std::vector<std::pair<double, uint64_t>> neighbors; // knn
  double seconds = 0.0;  // latency (successful queries only)
};

/// Aggregated outcome of a batch.
struct BatchReport {
  std::vector<QueryResult> results;  // one slot per workload query, in order
  size_t completed = 0;  // status OK
  size_t cancelled = 0;  // status Cancelled
  size_t expired = 0;    // status DeadlineExceeded
  size_t failed = 0;     // any other non-OK status
  double wall_seconds = 0.0;
  double qps = 0.0;  // completed / wall_seconds
  LatencySummary latency;            // over completed queries
  IoStats io;                        // sum of per_worker_io
  std::vector<IoStats> per_worker_io;  // one entry per pool worker
  KnnExecStats knn;  // k-NN approximation accounting (sum over workers)
};

/// Batch query executor over one shared tree and one thread pool. Neither
/// is owned; both must outlive the executor. The pool may be reused across
/// executors/batches (Run() uses ThreadPool::Wait() as its barrier, so
/// don't share one pool between concurrently Run()ing executors).
class QueryExecutor {
 public:
  QueryExecutor(HybridTree* tree, ThreadPool* pool)
      : tree_(tree), pool_(pool) {}

  /// Executes the workload. Blocks until every query has a result slot.
  /// Statuses of individual queries are per-slot; Run() itself only fails
  /// on invalid arguments or pool/mode-switch errors.
  Result<BatchReport> Run(const Workload& workload,
                          const ExecOptions& options = {});

  /// Requests cancellation of the batch currently Run()ning (callable from
  /// any thread). Queries not yet started finish as Cancelled.
  void Cancel() { cancel_.store(true, std::memory_order_relaxed); }

 private:
  HybridTree* tree_;
  ThreadPool* pool_;
  /// Relaxed: pure flag with no payload to publish; workers poll it per
  /// query and a slightly late observation only delays cancellation.
  std::atomic<bool> cancel_{false};
  /// One SearchScratch per pool worker (index = worker slot), grown in
  /// Run() and kept warm across batches. Workers never share an entry.
  std::vector<SearchScratch> worker_scratch_;
};

}  // namespace ht
