#include "exec/query_executor.h"

#include <utility>

#include "common/timing.h"

namespace ht {

namespace {

/// Runs one query against the tree's const read paths, writing results
/// straight into the slot's vectors through the *Into APIs so the worker's
/// pooled scratch (and the slot's own capacity, on retry) is reused. k-NN
/// queries run under the batch's recall knobs (`limits`, exact by default)
/// and fold their visit accounting into the worker-local `knn`.
void RunOne(const HybridTree& tree, const Query& q,
            const DistanceMetric* metric, const KnnSearchLimits& limits,
            SearchScratch* scratch, QueryResult* out, KnnExecStats* knn) {
  switch (q.type) {
    case Query::Type::kBox:
      out->status = tree.SearchBoxInto(q.box, scratch, &out->ids);
      return;
    case Query::Type::kRange:
      out->status =
          tree.SearchRangeInto(q.center, q.radius, *metric, scratch,
                               &out->ids);
      return;
    case Query::Type::kKnn: {
      KnnSearchInfo info;
      out->status = tree.SearchKnnBoundedInto(q.center, q.k, *metric, limits,
                                              scratch, &out->neighbors,
                                              &info);
      if (out->status.ok()) {
        knn->leaf_visits += info.leaf_visits;
        if (info.early_terminated) ++knn->early_terminations;
      }
      return;
    }
  }
  out->status = Status::InvalidArgument("unknown query type");
}

}  // namespace

Result<BatchReport> QueryExecutor::Run(const Workload& workload,
                                       const ExecOptions& options) {
  if (tree_ == nullptr || pool_ == nullptr) {
    return Status::InvalidArgument("QueryExecutor requires a tree and a pool");
  }
  if (workload.metric == nullptr) {
    for (const Query& q : workload.queries) {
      if (q.type != Query::Type::kBox) {
        return Status::InvalidArgument(
            "workload has range/knn queries but no metric");
      }
    }
  }

  if (options.io_pool == pool_ && options.io_pool != nullptr) {
    return Status::InvalidArgument(
        "io_pool must be distinct from the query pool (prefetch fills "
        "queued behind queries that wait on them would deadlock)");
  }

  cancel_.store(false, std::memory_order_relaxed);

  const size_t n = workload.queries.size();
  const size_t n_workers = pool_->num_threads();

  if (options.knn_epsilon < 0.0) {
    return Status::InvalidArgument("knn_epsilon must be non-negative");
  }
  KnnSearchLimits knn_limits;
  knn_limits.epsilon = options.knn_epsilon;
  knn_limits.max_leaf_visits = options.knn_max_leaf_visits;

  BatchReport report;
  report.results.resize(n);
  report.per_worker_io.assign(n_workers, IoStats{});
  std::vector<std::vector<double>> worker_latencies(n_workers);
  std::vector<KnnExecStats> worker_knn(n_workers);
  // One scratch per worker, persisted across Run() calls so the hot-path
  // buffers stay warm between batches. Never shrunk.
  if (worker_scratch_.size() < n_workers) worker_scratch_.resize(n_workers);

  // Shared-read phase begins: no tree mutation until the pool barrier.
  const bool was_concurrent = tree_->concurrent_reads();
  HT_RETURN_NOT_OK(tree_->SetConcurrentReads(true));
  if (options.io_pool != nullptr) {
    // Route prefetch fills to the dedicated I/O pool for this batch. The
    // adapter keeps storage independent of exec (it only sees a callable).
    ThreadPool* io = options.io_pool;
    tree_->pool().SetPrefetchExecutor([io](std::function<void()> fill) {
      return io
          ->Submit([f = std::move(fill)]() mutable {
            f();
            return Status::OK();
          })
          .ok();
    });
  }

  // Relaxed cursor: fetch_add's atomicity alone guarantees each index is
  // claimed exactly once; the query array is immutable during the batch,
  // so no claimed slot needs ordering against other memory.
  std::atomic<size_t> next{0};
  WallTimer batch_timer;
  const double deadline = options.deadline_seconds;
  const std::atomic<bool>* external_cancel = options.cancel;

  for (size_t w = 0; w < n_workers; ++w) {
    Status submit = pool_->Submit([&, w]() -> Status {
      IoStatsScope io_scope(&report.per_worker_io[w]);
      std::vector<double>& latencies = worker_latencies[w];
      SearchScratch& scratch = worker_scratch_[w];
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return Status::OK();
        QueryResult& slot = report.results[i];
        if (cancel_.load(std::memory_order_relaxed) ||
            (external_cancel != nullptr &&
             external_cancel->load(std::memory_order_relaxed))) {
          slot.status = Status::Cancelled("batch cancelled");
          continue;
        }
        if (deadline > 0.0 && batch_timer.Seconds() > deadline) {
          slot.status = Status::DeadlineExceeded("batch deadline exceeded");
          continue;
        }
        WallTimer t;
        RunOne(*tree_, workload.queries[i], workload.metric, knn_limits,
               &scratch, &slot, &worker_knn[w]);
        if (slot.status.ok()) {
          slot.seconds = t.Seconds();
          latencies.push_back(slot.seconds);
        }
      }
    });
    if (!submit.ok()) {
      (void)pool_->Wait();
      if (options.io_pool != nullptr) tree_->pool().SetPrefetchExecutor(nullptr);
      (void)tree_->SetConcurrentReads(was_concurrent);
      return submit;
    }
  }

  Status pool_status = pool_->Wait();
  report.wall_seconds = batch_timer.Seconds();

  // Shared-read phase over: detach the prefetch executor (blocks until
  // in-flight fills drain — they reference this batch's buffer pool
  // state), then restore the serial configuration.
  if (options.io_pool != nullptr) tree_->pool().SetPrefetchExecutor(nullptr);
  HT_RETURN_NOT_OK(tree_->SetConcurrentReads(was_concurrent));
  HT_RETURN_NOT_OK(pool_status);

  std::vector<double> all_latencies;
  for (const auto& v : worker_latencies) {
    all_latencies.insert(all_latencies.end(), v.begin(), v.end());
  }
  report.latency = SummarizeLatencies(std::move(all_latencies));
  for (const IoStats& io : report.per_worker_io) report.io.Accumulate(io);
  for (const KnnExecStats& kn : worker_knn) report.knn.Accumulate(kn);
  if (options.knn_stats != nullptr) options.knn_stats->Accumulate(report.knn);

  for (const QueryResult& r : report.results) {
    if (r.status.ok()) {
      ++report.completed;
    } else if (r.status.IsCancelled()) {
      ++report.cancelled;
    } else if (r.status.IsDeadlineExceeded()) {
      ++report.expired;
    } else {
      ++report.failed;
    }
  }
  if (report.wall_seconds > 0.0) {
    report.qps =
        static_cast<double>(report.completed) / report.wall_seconds;
  }
  return report;
}

}  // namespace ht
