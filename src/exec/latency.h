// Copyright 2026 The HybridTree Authors.
// Latency aggregation for the batch query executor: per-worker samples are
// collected lock-free (each worker owns its vector) and merged into
// nearest-rank percentiles after the batch barrier.

#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace ht {

/// Summary of a latency sample set, in seconds.
struct LatencySummary {
  size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Nearest-rank percentile of an ascending-sorted sample vector;
/// `q` in [0,1]. Zero for an empty vector.
inline double PercentileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t n = sorted.size();
  size_t rank = static_cast<size_t>(q * static_cast<double>(n));
  if (rank >= n) rank = n - 1;
  return sorted[rank];
}

/// Consumes (sorts) `samples` and summarizes them.
inline LatencySummary SummarizeLatencies(std::vector<double> samples) {
  LatencySummary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  s.p50 = PercentileSorted(samples, 0.50);
  s.p95 = PercentileSorted(samples, 0.95);
  s.p99 = PercentileSorted(samples, 0.99);
  s.max = samples.back();
  return s;
}

}  // namespace ht
