// Copyright 2026 The HybridTree Authors.
// Dataset generators reproducing the statistical character of the paper's
// evaluation data (see DESIGN.md §4 for the substitution rationale).

#pragma once

#include <cstdint>

#include "common/rng.h"
#include "data/dataset.h"

namespace ht {

/// Uniform points in [0,1]^dim (used by tests and ablations; not a paper
/// dataset).
Dataset GenUniform(size_t n, uint32_t dim, Rng& rng);

/// Gaussian clusters in [0,1]^dim, clipped to the cube.
Dataset GenClustered(size_t n, uint32_t dim, uint32_t clusters, double sigma,
                     Rng& rng);

/// FOURIER surrogate (paper dataset 1): each vector holds the first dim/2
/// complex DFT coefficients (interleaved re, im) of the boundary of a
/// random smooth polygon, min-max normalized to [0,1]^dim. Boundary
/// smoothness yields the strong energy decay across coefficients that the
/// real dataset exhibits (per-dimension variance falls off with the
/// coefficient index), which is what exercises EDA-optimal split-dimension
/// choice and implicit dimensionality reduction. `dim` must be even; the
/// paper's 8-d/12-d variants are prefixes of the 16-d data
/// (Dataset::Prefix).
Dataset GenFourier(size_t n, uint32_t dim, Rng& rng,
                   uint32_t polygon_vertices = 32);

/// COLHIST surrogate (paper dataset 2): synthetic color histograms over
/// `bins` color-space cells (paper: 4x4=16, 8x4=32, 8x8=64). Each "image"
/// mixes a few Zipf-popular dominant bins with Dirichlet weights plus a
/// low-mass noise floor; rows are non-negative and sum to 1, matching the
/// sparsity and skew of real Corel histograms.
Dataset GenColhist(size_t n, uint32_t bins, Rng& rng);

}  // namespace ht
