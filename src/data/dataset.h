// Copyright 2026 The HybridTree Authors.
// Dataset: a dense row-major collection of k-d feature vectors.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "common/status.h"

namespace ht {

/// In-memory feature-vector dataset. Row i is the feature vector of object
/// i; object ids are the row indices. Provides binary save/load so that
/// generated datasets can be reused across benchmark runs.
class Dataset {
 public:
  Dataset() = default;
  Dataset(uint32_t dim, size_t n) : dim_(dim), values_(n * dim, 0.0f) {}

  uint32_t dim() const { return dim_; }
  size_t size() const { return dim_ == 0 ? 0 : values_.size() / dim_; }

  std::span<const float> Row(size_t i) const {
    return std::span<const float>(values_.data() + i * dim_, dim_);
  }
  std::span<float> MutableRow(size_t i) {
    return std::span<float>(values_.data() + i * dim_, dim_);
  }

  void Append(std::span<const float> row) {
    HT_DCHECK(row.size() == dim_);
    values_.insert(values_.end(), row.begin(), row.end());
  }

  /// Keeps only the first `dim` coordinates of every row — how the paper
  /// derives its 8-d and 12-d FOURIER variants from the 16-d vectors.
  Dataset Prefix(uint32_t dim) const;

  /// Keeps only the first `n` rows — used for the database-size scalability
  /// experiment (Figure 7(a),(b)).
  Dataset Head(size_t n) const;

  /// Per-dimension min-max normalization into [0,1] (the paper assumes a
  /// normalized feature space). Constant dimensions map to 0.
  void NormalizeUnitCube();

  /// Binary round-trip (magic, dim, count, float32 rows).
  Status SaveTo(const std::string& path) const;
  static Result<Dataset> LoadFrom(const std::string& path);

 private:
  uint32_t dim_ = 0;
  std::vector<float> values_;
};

}  // namespace ht
