// Copyright 2026 The HybridTree Authors.
// Query workload generation + brute-force ground truth.
//
// The paper keeps selectivity constant across dimensionalities and
// database sizes (0.07% for FOURIER, 0.2% for COLHIST) and draws queries
// "randomly distributed in the data space with appropriately chosen
// ranges". With sparse high-dimensional data a uniformly-placed center has
// near-zero hit probability at any sane range, so — as in essentially all
// follow-up evaluations — we place query centers at jittered data points
// and calibrate the range (box side / metric radius) by binary search until
// the average selectivity matches the target.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "geometry/box.h"
#include "geometry/metrics.h"

namespace ht {

/// Query centers: jittered samples of the data distribution, clipped to the
/// unit cube.
std::vector<std::vector<float>> MakeQueryCenters(const Dataset& data, size_t n,
                                                 Rng& rng,
                                                 double jitter = 0.01);

/// A box query of side `side` centered at `center`, clipped to [0,1]^dim.
Box MakeBoxQuery(std::span<const float> center, double side);

/// Binary-searches the box side length whose expected selectivity over
/// `probes` random centers is `target` (fraction in (0,1)). The data may be
/// subsampled internally for speed; the result is the calibrated side.
double CalibrateBoxSide(const Dataset& data, double target, size_t probes,
                        Rng& rng);

/// Binary-searches the metric radius for distance-range queries, same
/// contract as CalibrateBoxSide.
double CalibrateRangeRadius(const Dataset& data, const DistanceMetric& metric,
                            double target, size_t probes, Rng& rng);

/// Brute-force reference answers (also the spec for the SeqScan baseline).
std::vector<uint64_t> BruteForceBox(const Dataset& data, const Box& query);
std::vector<uint64_t> BruteForceRange(const Dataset& data,
                                      std::span<const float> center,
                                      double radius,
                                      const DistanceMetric& metric);
/// k nearest neighbors as (distance, id), ascending by distance, ties by id.
std::vector<std::pair<double, uint64_t>> BruteForceKnn(
    const Dataset& data, std::span<const float> center, size_t k,
    const DistanceMetric& metric);

}  // namespace ht
