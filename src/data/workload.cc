#include "data/workload.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace ht {

std::vector<std::vector<float>> MakeQueryCenters(const Dataset& data, size_t n,
                                                 Rng& rng, double jitter) {
  HT_CHECK(data.size() > 0);
  std::vector<std::vector<float>> centers;
  centers.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto row = data.Row(rng.NextBelow(data.size()));
    std::vector<float> c(row.begin(), row.end());
    for (auto& v : c) {
      double x = v + jitter * rng.NextGaussian();
      v = static_cast<float>(std::clamp(x, 0.0, 1.0));
    }
    centers.push_back(std::move(c));
  }
  return centers;
}

Box MakeBoxQuery(std::span<const float> center, double side) {
  const uint32_t dim = static_cast<uint32_t>(center.size());
  std::vector<float> lo(dim), hi(dim);
  for (uint32_t d = 0; d < dim; ++d) {
    lo[d] = static_cast<float>(std::max(0.0, center[d] - side / 2));
    hi[d] = static_cast<float>(std::min(1.0, center[d] + side / 2));
  }
  return Box::FromBounds(std::move(lo), std::move(hi));
}

namespace {

/// Row indices of a speed-bounding subsample (or everything if small).
std::vector<size_t> Subsample(const Dataset& data, size_t cap, Rng& rng) {
  std::vector<size_t> idx;
  if (data.size() <= cap) {
    idx.resize(data.size());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  } else {
    idx.reserve(cap);
    for (size_t i = 0; i < cap; ++i) idx.push_back(rng.NextBelow(data.size()));
  }
  return idx;
}

double MeanBoxSelectivity(const Dataset& data,
                          const std::vector<size_t>& sample,
                          const std::vector<std::vector<float>>& centers,
                          double side) {
  double total = 0.0;
  for (const auto& c : centers) {
    const Box q = MakeBoxQuery(c, side);
    size_t hits = 0;
    for (size_t i : sample) {
      if (q.ContainsPoint(data.Row(i))) ++hits;
    }
    total += static_cast<double>(hits) / static_cast<double>(sample.size());
  }
  return total / static_cast<double>(centers.size());
}

double MeanRangeSelectivity(const Dataset& data,
                            const std::vector<size_t>& sample,
                            const std::vector<std::vector<float>>& centers,
                            const DistanceMetric& metric, double radius) {
  double total = 0.0;
  for (const auto& c : centers) {
    size_t hits = 0;
    for (size_t i : sample) {
      if (metric.Distance(c, data.Row(i)) <= radius) ++hits;
    }
    total += static_cast<double>(hits) / static_cast<double>(sample.size());
  }
  return total / static_cast<double>(centers.size());
}

}  // namespace

double CalibrateBoxSide(const Dataset& data, double target, size_t probes,
                        Rng& rng) {
  HT_CHECK(target > 0.0 && target < 1.0);
  auto sample = Subsample(data, 20000, rng);
  auto centers = MakeQueryCenters(data, probes, rng);
  double lo = 0.0, hi = 2.0;  // side 2 covers the whole unit cube
  for (int iter = 0; iter < 40; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (MeanBoxSelectivity(data, sample, centers, mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double CalibrateRangeRadius(const Dataset& data, const DistanceMetric& metric,
                            double target, size_t probes, Rng& rng) {
  HT_CHECK(target > 0.0 && target < 1.0);
  auto sample = Subsample(data, 20000, rng);
  auto centers = MakeQueryCenters(data, probes, rng);
  // Upper bound: L1 diameter of the unit cube is dim; every metric we ship
  // is bounded by it on [0,1]^dim.
  double lo = 0.0, hi = static_cast<double>(data.dim());
  for (int iter = 0; iter < 40; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (MeanRangeSelectivity(data, sample, centers, metric, mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

std::vector<uint64_t> BruteForceBox(const Dataset& data, const Box& query) {
  std::vector<uint64_t> out;
  for (size_t i = 0; i < data.size(); ++i) {
    if (query.ContainsPoint(data.Row(i))) out.push_back(i);
  }
  return out;
}

std::vector<uint64_t> BruteForceRange(const Dataset& data,
                                      std::span<const float> center,
                                      double radius,
                                      const DistanceMetric& metric) {
  std::vector<uint64_t> out;
  for (size_t i = 0; i < data.size(); ++i) {
    if (metric.Distance(center, data.Row(i)) <= radius) out.push_back(i);
  }
  return out;
}

std::vector<std::pair<double, uint64_t>> BruteForceKnn(
    const Dataset& data, std::span<const float> center, size_t k,
    const DistanceMetric& metric) {
  std::vector<std::pair<double, uint64_t>> all;
  all.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    all.emplace_back(metric.Distance(center, data.Row(i)), i);
  }
  if (k > all.size()) k = all.size();
  std::partial_sort(all.begin(), all.begin() + k, all.end());
  all.resize(k);
  return all;
}

}  // namespace ht
