#include "data/dataset.h"

#include <cstdio>
#include <limits>

#include "common/codec.h"

namespace ht {

Dataset Dataset::Prefix(uint32_t dim) const {
  HT_CHECK(dim <= dim_);
  Dataset out(dim, size());
  for (size_t i = 0; i < size(); ++i) {
    auto src = Row(i);
    auto dst = out.MutableRow(i);
    for (uint32_t d = 0; d < dim; ++d) dst[d] = src[d];
  }
  return out;
}

Dataset Dataset::Head(size_t n) const {
  if (n > size()) n = size();
  Dataset out(dim_, n);
  for (size_t i = 0; i < n; ++i) {
    auto src = Row(i);
    auto dst = out.MutableRow(i);
    for (uint32_t d = 0; d < dim_; ++d) dst[d] = src[d];
  }
  return out;
}

void Dataset::NormalizeUnitCube() {
  if (size() == 0) return;
  std::vector<float> mn(dim_, std::numeric_limits<float>::max());
  std::vector<float> mx(dim_, std::numeric_limits<float>::lowest());
  for (size_t i = 0; i < size(); ++i) {
    auto r = Row(i);
    for (uint32_t d = 0; d < dim_; ++d) {
      if (r[d] < mn[d]) mn[d] = r[d];
      if (r[d] > mx[d]) mx[d] = r[d];
    }
  }
  for (size_t i = 0; i < size(); ++i) {
    auto r = MutableRow(i);
    for (uint32_t d = 0; d < dim_; ++d) {
      float range = mx[d] - mn[d];
      r[d] = range > 0 ? (r[d] - mn[d]) / range : 0.0f;
    }
  }
}

namespace {
constexpr uint32_t kDatasetMagic = 0x48544453;  // "HTDS"
}

Status Dataset::SaveTo(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("fopen(" + path + ") for write");
  uint8_t header[16];
  Writer w(header, sizeof(header));
  w.PutU32(kDatasetMagic);
  w.PutU32(dim_);
  w.PutU64(static_cast<uint64_t>(size()));
  bool ok = std::fwrite(header, 1, sizeof(header), f) == sizeof(header);
  ok = ok && (values_.empty() ||
              std::fwrite(values_.data(), sizeof(float), values_.size(), f) ==
                  values_.size());
  std::fclose(f);
  return ok ? Status::OK() : Status::IOError("short write to " + path);
}

Result<Dataset> Dataset::LoadFrom(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("fopen(" + path + ") for read");
  uint8_t header[16];
  if (std::fread(header, 1, sizeof(header), f) != sizeof(header)) {
    std::fclose(f);
    return Status::Corruption("short dataset header in " + path);
  }
  Reader r(header, sizeof(header));
  uint32_t magic = r.GetU32();
  uint32_t dim = r.GetU32();
  uint64_t n = r.GetU64();
  if (magic != kDatasetMagic) {
    std::fclose(f);
    return Status::Corruption("bad dataset magic in " + path);
  }
  Dataset out(dim, static_cast<size_t>(n));
  size_t want = static_cast<size_t>(n) * dim;
  if (want > 0 &&
      std::fread(out.values_.data(), sizeof(float), want, f) != want) {
    std::fclose(f);
    return Status::Corruption("short dataset body in " + path);
  }
  std::fclose(f);
  return out;
}

}  // namespace ht
