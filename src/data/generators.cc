#include "data/generators.h"

#include <cmath>
#include <vector>

#include "common/macros.h"

namespace ht {

Dataset GenUniform(size_t n, uint32_t dim, Rng& rng) {
  Dataset out(dim, n);
  for (size_t i = 0; i < n; ++i) {
    auto row = out.MutableRow(i);
    for (uint32_t d = 0; d < dim; ++d) {
      row[d] = static_cast<float>(rng.NextDouble());
    }
  }
  return out;
}

Dataset GenClustered(size_t n, uint32_t dim, uint32_t clusters, double sigma,
                     Rng& rng) {
  HT_CHECK(clusters > 0);
  std::vector<float> centers(static_cast<size_t>(clusters) * dim);
  for (auto& c : centers) c = static_cast<float>(rng.NextDouble());
  Dataset out(dim, n);
  for (size_t i = 0; i < n; ++i) {
    const float* c = &centers[(rng.NextBelow(clusters)) * dim];
    auto row = out.MutableRow(i);
    for (uint32_t d = 0; d < dim; ++d) {
      double v = c[d] + sigma * rng.NextGaussian();
      if (v < 0.0) v = 0.0;
      if (v > 1.0) v = 1.0;
      row[d] = static_cast<float>(v);
    }
  }
  return out;
}

Dataset GenFourier(size_t n, uint32_t dim, Rng& rng,
                   uint32_t polygon_vertices) {
  HT_CHECK(dim % 2 == 0 && dim >= 2);
  const uint32_t v = polygon_vertices;
  const uint32_t ncoef = dim / 2;
  HT_CHECK(ncoef < v);
  Dataset out(dim, n);
  std::vector<double> re(v), im(v);
  for (size_t i = 0; i < n; ++i) {
    // Random smooth closed boundary: radius = 1 + sum of a few random
    // low-frequency harmonics. Low-pass content => DFT energy decays with
    // coefficient index, like Fourier shape descriptors of real polygons.
    const uint32_t harmonics = 3 + static_cast<uint32_t>(rng.NextBelow(4));
    std::vector<double> amp(harmonics), phase(harmonics);
    for (uint32_t h = 0; h < harmonics; ++h) {
      amp[h] = rng.Uniform(0.0, 0.5) / (1.0 + h);
      phase[h] = rng.Uniform(0.0, 2.0 * M_PI);
    }
    const double scale = rng.Uniform(0.5, 2.0);
    const double jitter = rng.Uniform(0.0, 0.08);
    for (uint32_t j = 0; j < v; ++j) {
      const double t = 2.0 * M_PI * j / v;
      double r = 1.0;
      for (uint32_t h = 0; h < harmonics; ++h) {
        r += amp[h] * std::cos((h + 1) * t + phase[h]);
      }
      r = scale * (r + jitter * rng.NextGaussian());
      re[j] = r * std::cos(t);
      im[j] = r * std::sin(t);
    }
    // First ncoef DFT coefficients (k = 1..ncoef; k = 0 is the centroid,
    // which shape descriptors discard for translation invariance).
    auto row = out.MutableRow(i);
    for (uint32_t k = 1; k <= ncoef; ++k) {
      double cre = 0.0, cim = 0.0;
      for (uint32_t j = 0; j < v; ++j) {
        const double ang = -2.0 * M_PI * k * j / v;
        const double c = std::cos(ang), s = std::sin(ang);
        cre += re[j] * c - im[j] * s;
        cim += re[j] * s + im[j] * c;
      }
      row[2 * (k - 1)] = static_cast<float>(cre / v);
      row[2 * (k - 1) + 1] = static_cast<float>(cim / v);
    }
  }
  out.NormalizeUnitCube();
  return out;
}

namespace {
/// Factors `bins` into the paper's color-space grid shapes: 16 = 4x4,
/// 32 = 8x4, 64 = 8x8 (width x height); other counts get the widest
/// near-square factorization.
void GridShape(uint32_t bins, uint32_t* w, uint32_t* h) {
  uint32_t best_w = bins, best_h = 1;
  for (uint32_t cand = 1; cand * cand <= bins; ++cand) {
    if (bins % cand == 0) {
      best_h = cand;
      best_w = bins / cand;
    }
  }
  *w = best_w;
  *h = best_h;
}
}  // namespace

Dataset GenColhist(size_t n, uint32_t bins, Rng& rng) {
  HT_CHECK(bins >= 4);
  uint32_t gw, gh;
  GridShape(bins, &gw, &gh);
  // Global popularity of color bins is skewed in photo collections
  // (sky/skin/vegetation colors dominate), but collections are *diverse*:
  // half of each image's dominant colors come from the popular pool, the
  // other half from anywhere in the color space.
  ZipfSampler popularity(bins, 1.0);
  Dataset out(bins, n);
  std::vector<double> weights;
  for (size_t i = 0; i < n; ++i) {
    auto row = out.MutableRow(i);
    for (uint32_t d = 0; d < bins; ++d) row[d] = 0.0f;
    // Several dominant colors per image with Dirichlet(0.7) mixture
    // weights.
    const uint32_t k = 2 + static_cast<uint32_t>(rng.NextBelow(7));
    weights.assign(k, 0.0);
    double wsum = 0.0;
    for (uint32_t j = 0; j < k; ++j) {
      weights[j] = rng.NextGamma(0.7);
      wsum += weights[j];
    }
    const double noise_mass = rng.Uniform(0.01, 0.08);
    for (uint32_t j = 0; j < k; ++j) {
      const size_t bin = rng.NextDouble() < 0.7
                             ? popularity.Sample(rng)
                             : rng.NextBelow(bins);
      const double mass = (1.0 - noise_mass) * weights[j] / wsum;
      // Quantization spill: real histograms smear each color over the
      // neighboring cells of the color-space grid (~70% own bin, the rest
      // into the 4-neighborhood).
      const uint32_t bx = static_cast<uint32_t>(bin) % gw;
      const uint32_t by = static_cast<uint32_t>(bin) / gw;
      const double spill = rng.Uniform(0.15, 0.35);
      row[bin] += static_cast<float>(mass * (1.0 - spill));
      double spread = 0.0;
      uint32_t neighbors[4];
      uint32_t n_neighbors = 0;
      if (bx > 0) neighbors[n_neighbors++] = by * gw + (bx - 1);
      if (bx + 1 < gw) neighbors[n_neighbors++] = by * gw + (bx + 1);
      if (by > 0) neighbors[n_neighbors++] = (by - 1) * gw + bx;
      if (by + 1 < gh) neighbors[n_neighbors++] = (by + 1) * gw + bx;
      for (uint32_t t = 0; t < n_neighbors; ++t) {
        const double share = spill / n_neighbors;
        row[neighbors[t]] += static_cast<float>(mass * share);
        spread += share;
      }
      // Grid-corner bins spill less; fold the remainder back into the bin.
      row[bin] += static_cast<float>(mass * (spill - spread));
    }
    // Noise floor over a random subset of bins (sensor noise, textures).
    const uint32_t noisy =
        bins / 8 + static_cast<uint32_t>(rng.NextBelow(bins / 4));
    double nsum = 0.0;
    std::vector<double> nval(noisy);
    for (uint32_t j = 0; j < noisy; ++j) {
      nval[j] = rng.NextExponential(1.0);
      nsum += nval[j];
    }
    for (uint32_t j = 0; j < noisy; ++j) {
      const size_t bin = rng.NextBelow(bins);
      row[bin] += static_cast<float>(noise_mass * nval[j] / nsum);
    }
    // Renormalize exactly to sum 1 (float accumulation drift).
    double total = 0.0;
    for (uint32_t d = 0; d < bins; ++d) total += row[d];
    for (uint32_t d = 0; d < bins; ++d) {
      row[d] = static_cast<float>(row[d] / total);
    }
  }
  return out;
}

}  // namespace ht
