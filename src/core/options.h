// Copyright 2026 The HybridTree Authors.
// Tuning knobs for the hybrid tree.

#pragma once

#include <cstdint>

#include "storage/io_stats.h"
#include "storage/page.h"

namespace ht {

/// Node-splitting policy (Figure 5(a),(b) compares these).
enum class SplitPolicy : uint8_t {
  /// The paper's policy (§3.2/§3.3): minimize the increase in the expected
  /// number of disk accesses (EDA). Data nodes split on the maximum-extent
  /// dimension at the position closest to the middle; index nodes pick the
  /// dimension minimizing (w_d + r)/(s_d + r).
  kEdaOptimal = 0,
  /// VAMSplit-style policy (White & Jain [24]): maximum-variance dimension,
  /// median split position.
  kVamSplit = 1,
};

/// Where Encoded Live Space codes live (§3.4). The paper stores them in
/// memory ("for 8K page, 4 bit precision and 64-d space, the overhead is
/// less than 1% of the database size and can be stored in memory").
enum class ElsMode : uint8_t {
  /// No dead-space elimination; the BR of a child is its kd region.
  kOff = 0,
  /// Codes kept in a memory-resident sidecar; node fanout is unaffected.
  /// After reopening a persisted tree the sidecar is rebuilt by one DFS.
  kInMemory = 1,
  /// Codes serialized into the index pages; fully persistent but reduces
  /// fanout by 2*dim*bits bits per child.
  kInPage = 2,
};

/// Query-size model used by the EDA-optimal index-node split (§3.3): the
/// expected increase in disk accesses depends on the query side length r.
enum class QuerySizeModel : uint8_t {
  /// All queries have side `expected_query_side` (the paper's experimental
  /// setting: "In our experiments, we use all queries of the same size").
  kFixed = 0,
  /// r uniform on [0,1]: cost(d) = integral_0^1 (w_d+r)/(s_d+r) dr,
  /// which has the closed form 1 + (w_d - s_d) ln((s_d+1)/s_d).
  kUniform = 1,
};

struct HybridTreeOptions {
  /// Feature-space dimensionality (immutable once the tree is created).
  uint32_t dim = 2;

  /// Page size in bytes; the paper evaluates with 4096.
  size_t page_size = kDefaultPageSize;

  /// Minimum fill fraction of a data node (guaranteed utilization). A split
  /// leaves each side with at least ceil(frac * capacity) entries.
  double data_node_min_util = 0.40;

  /// Minimum fraction of children on each side of an index-node split.
  double index_node_min_util = 0.33;

  SplitPolicy split_policy = SplitPolicy::kEdaOptimal;

  ElsMode els_mode = ElsMode::kInMemory;

  /// ELS precision in bits per boundary; the paper finds 4 bits eliminate
  /// most dead space (Figure 5(c)).
  uint32_t els_bits = 4;

  QuerySizeModel query_size_model = QuerySizeModel::kFixed;

  /// Expected box-query side length r for QuerySizeModel::kFixed.
  double expected_query_side = 0.1;

  /// Buffer pool capacity in pages; 0 = unbounded (benchmarks measure
  /// logical accesses, which are cache-independent).
  size_t buffer_pool_pages = 0;

  /// Buffer-pool eviction policy. kSlru (the default) is the scan-resistant
  /// segmented policy: full-tree scans, bulk loads, and prefetched-but-
  /// never-referenced pages cannot displace the multi-touch query working
  /// set. kLru restores the classic recency-only pool. Query results are
  /// byte-identical either way — only the physical-read pattern differs —
  /// and at unbounded capacity (the default) the policies are
  /// indistinguishable. Runtime-only: not persisted by Flush()/Open().
  CachePolicy cache_policy = CachePolicy::kSlru;

  /// Kill switch for the batched data-page distance kernels and the
  /// scan-level containment shortcut (forces the per-point scalar
  /// reference hot path). Results are identical either way — this exists
  /// for the byte-identity tests and bench_hotpath's before/after
  /// comparison. Runtime-only: not persisted by Flush()/Open().
  bool disable_batch_kernels = false;

  /// Enables the per-data-page 8-bit quantized filter-then-refine scan
  /// path for range and (bounded) k-NN queries: a sound lower bound on
  /// each point's distance is computed from cached uint8 codes and only
  /// the survivors get an exact distance. Results are byte-identical
  /// either way — the lower bound never prunes a true hit, and refinement
  /// replays the exact kernel arithmetic. Sidecars are built lazily on
  /// first scan and invalidated on page writes; turning this off only
  /// stops filtering (cached sidecars are kept). Runtime-only: not
  /// persisted by Flush()/Open().
  bool quant_sidecars = true;

  /// Frontier-driven prefetch depth for the cold-cache I/O pipeline: on
  /// each best-first k-NN pop the tree prefetches up to this many
  /// next-best frontier pages alongside the popped one, and box/range
  /// descents prefetch all qualifying children of an index node before
  /// recursing. 0 disables prefetch (the default, and the paper's access
  /// pattern). Results and logical-read counts are identical at any
  /// depth — prefetch only batches and overlaps physical I/O. Runtime-only:
  /// not persisted by Flush()/Open(); adjustable via SetPrefetchDepth().
  size_t prefetch_depth = 0;
};

}  // namespace ht
