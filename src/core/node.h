// Copyright 2026 The HybridTree Authors.
// In-memory node representations and page (de)serialization for the
// hybrid tree (§3.1 of the paper).
//
// A data node stores (id, vector) entries. An index node stores a kd-tree
// whose internal nodes carry a split dimension and *two* split positions —
// lsp, the upper boundary of the left partition, and rsp, the lower
// boundary of the right partition. lsp == rsp is a clean split; lsp > rsp
// encodes an overlapping split (allowed only when a clean split would have
// cascaded, §3.1); lsp < rsp encodes a gap (dead space owned by neither
// side, produced by the minimum-overlap bipartition). The kd-tree's leaves
// are the node's children; each leaf optionally carries an ELS code (§3.4).

#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "core/els.h"
#include "geometry/box.h"
#include "storage/page.h"

namespace ht {

// ---------------------------------------------------------------------------
// Data nodes
// ---------------------------------------------------------------------------

/// One indexed object: external id + feature vector.
struct DataEntry {
  uint64_t id = 0;
  std::vector<float> vec;
};

/// Leaf page: a flat bag of entries.
struct DataNode {
  std::vector<DataEntry> entries;

  static constexpr size_t kHeaderBytes = 4;  // kind u8, pad u8, count u16
  static size_t EntryBytes(uint32_t dim) { return 8 + 4 * static_cast<size_t>(dim); }
  /// Max entries per page.
  static size_t Capacity(uint32_t dim, size_t page_size) {
    return (page_size - kHeaderBytes) / EntryBytes(dim);
  }

  /// Exact bounding box of the stored entries (the live BR).
  Box ComputeLiveBr(uint32_t dim) const;

  void Serialize(uint8_t* page, size_t page_size, uint32_t dim) const;
  static Result<DataNode> Deserialize(const uint8_t* page, size_t page_size,
                                      uint32_t dim);
};

/// Zero-copy read access to a serialized data page: queries scan entries
/// in place instead of materializing a DataNode (which allocates one
/// vector per entry — far too expensive on the search hot path).
///
/// The fast path reinterprets the page's little-endian float32 payload
/// directly (entries are 4-byte aligned by construction); on big-endian
/// platforms coordinates are decoded into a scratch row per access.
class DataPageScan {
 public:
  DataPageScan(const uint8_t* page, size_t page_size, uint32_t dim);

  /// False when the page is not a data page (callers must check).
  bool ok() const { return ok_; }
  size_t count() const { return count_; }

  uint64_t id(size_t i) const;
  std::span<const float> vec(size_t i) const;

  /// Little-endian fast path for batch distance kernels: the page's float
  /// payload as one contiguous row-major block. Row i's vector starts at
  /// block() + i * stride_floats() (the next entry's 8-byte id prefix
  /// rides along inside the stride). Returns nullptr when the page is not
  /// a valid data page or on big-endian hosts — callers must then fall
  /// back to per-row vec().
  const float* block() const;
  /// Row-to-row stride of block(), in floats (= dim + 2).
  size_t stride_floats() const { return stride_ / sizeof(float); }

 private:
  const uint8_t* page_;
  uint32_t dim_;
  size_t count_ = 0;
  size_t stride_ = 0;
  bool ok_ = false;
  mutable std::vector<float> scratch_;  // big-endian fallback only
};

// ---------------------------------------------------------------------------
// Index nodes
// ---------------------------------------------------------------------------

/// Intra-node kd-tree node. A leaf (left == nullptr) references one child
/// page of the hybrid tree; an internal node splits the region on
/// `split_dim` at positions (lsp, rsp).
struct KdNode {
  std::unique_ptr<KdNode> left;
  std::unique_ptr<KdNode> right;
  uint32_t split_dim = 0;
  float lsp = 0.0f;
  float rsp = 0.0f;
  // Leaf payload.
  PageId child = kInvalidPageId;
  ElsCode els;
  /// In-memory only (never serialized): the decoded live box, precomputed
  /// when a parsed node enters the read cache. dim() == 0 means "not set".
  Box cached_live;

  bool IsLeaf() const { return left == nullptr; }

  static std::unique_ptr<KdNode> MakeLeaf(PageId child, ElsCode els = {}) {
    auto n = std::make_unique<KdNode>();
    n->child = child;
    n->els = std::move(els);
    return n;
  }
  static std::unique_ptr<KdNode> MakeInternal(uint32_t dim, float lsp,
                                              float rsp,
                                              std::unique_ptr<KdNode> l,
                                              std::unique_ptr<KdNode> r) {
    auto n = std::make_unique<KdNode>();
    n->split_dim = dim;
    n->lsp = lsp;
    n->rsp = rsp;
    n->left = std::move(l);
    n->right = std::move(r);
    return n;
  }

  std::unique_ptr<KdNode> Clone() const;
};

/// The BR of the left/right kd child given the parent region `br`
/// (the "logical mapping" of §3.1: left = br ∩ {x_d <= lsp},
/// right = br ∩ {x_d >= rsp}).
Box KdLeftBr(const Box& br, const KdNode& n);
Box KdRightBr(const Box& br, const KdNode& n);

/// A child reference materialized from the kd-tree: the leaf, its kd
/// region, and (when requested) its decoded live box.
struct ChildRef {
  KdNode* leaf = nullptr;
  Box kd_br;
};

/// Index page: intra-node kd-tree plus the tree level of this node
/// (level 1 = children are data nodes).
struct IndexNode {
  uint8_t level = 1;
  std::unique_ptr<KdNode> root;

  size_t NumChildren() const;
  /// Count of kd-tree nodes (internal + leaf).
  size_t NumKdNodes() const;
  /// Dimensions used by any internal kd node (the set D_n of Lemma 1).
  std::vector<uint32_t> UsedDims(uint32_t dim) const;

  /// All leaves with their kd regions, in left-to-right order.
  void CollectChildren(const Box& node_br, std::vector<ChildRef>* out) const;

  /// Serialized byte size with the given ELS policy.
  size_t SerializedSize(bool els_in_page) const;

  void Serialize(uint8_t* page, size_t page_size, bool els_in_page,
                 size_t els_code_bytes) const;
  /// `dim`, when nonzero, bounds every kd split dimension: a corrupt page
  /// whose split_dim is out of range is rejected here instead of causing
  /// out-of-bounds Box access in CollectChildren / the search walks.
  static Result<IndexNode> Deserialize(const uint8_t* page, size_t page_size,
                                       bool els_in_page,
                                       size_t els_code_bytes,
                                       uint32_t dim = 0);

  /// ELS sidecar support (ElsMode::kInMemory): extract / attach the leaf
  /// codes in deterministic left-to-right leaf order.
  std::vector<uint8_t> ExtractElsBlob(size_t els_code_bytes) const;
  void AttachElsBlob(const std::vector<uint8_t>& blob, size_t els_code_bytes);
};

/// Peeks at the node kind byte of a serialized page.
enum class NodeKind : uint8_t { kData = 1, kIndex = 2, kMeta = 3 };
NodeKind PeekNodeKind(const uint8_t* page);

}  // namespace ht
