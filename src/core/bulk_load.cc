#include "core/bulk_load.h"

#include <algorithm>
#include <functional>
#include <cmath>
#include <numeric>

#include "core/split.h"
#include "exec/thread_pool.h"

namespace ht {

namespace {

/// A built subtree: its page, its exact live box, and its tree level.
struct Built {
  PageId page = kInvalidPageId;
  Box live;
};

/// Live bounding box of a subset of rows.
Box SubsetLiveBr(const Dataset& data, const std::vector<uint32_t>& ids) {
  Box br = Box::Empty(data.dim());
  for (uint32_t i : ids) br.ExtendToInclude(data.Row(i));
  return br;
}

}  // namespace

/// One partition step (contract in bulk_load.h): the cut is positioned so
/// a multiple of target_leaf lands on the left (downstream leaves pack
/// tightly). Both the serial and the parallel loader call it — and so does
/// the serve layer's kd-region sharder — which is what makes every
/// consumer's result independent of thread count.
size_t PartitionSubset(const Dataset& data, const HybridTreeOptions& options,
                       size_t capacity, size_t target_leaf,
                       std::vector<uint32_t>& ids) {
  const size_t n_leaves = (ids.size() + target_leaf - 1) / target_leaf;
  const Box live = SubsetLiveBr(data, ids);
  uint32_t dim = live.MaxExtentDim();
  if (options.split_policy == SplitPolicy::kVamSplit) {
    double best_var = -1.0;
    for (uint32_t d = 0; d < options.dim; ++d) {
      double mean = 0.0;
      for (uint32_t i : ids) mean += data.Row(i)[d];
      mean /= static_cast<double>(ids.size());
      double var = 0.0;
      for (uint32_t i : ids) {
        const double diff = data.Row(i)[d] - mean;
        var += diff * diff;
      }
      if (var > best_var) {
        best_var = var;
        dim = d;
      }
    }
  }
  std::stable_sort(ids.begin(), ids.end(), [&](uint32_t a, uint32_t b) {
    return data.Row(a)[dim] < data.Row(b)[dim];
  });
  const size_t left_leaves = std::max<size_t>(1, n_leaves / 2);
  const size_t target_cut = std::clamp<size_t>(
      ids.size() * left_leaves / n_leaves, 1, ids.size() - 1);
  // Keep duplicates of the boundary value together (clean split): take
  // whichever tie-free cut (advancing or retreating) stays closer to the
  // target.
  size_t fwd = target_cut;
  while (fwd < ids.size() &&
         data.Row(ids[fwd])[dim] == data.Row(ids[fwd - 1])[dim]) {
    ++fwd;
  }
  size_t bwd = target_cut;
  while (bwd > 1 &&
         data.Row(ids[bwd])[dim] == data.Row(ids[bwd - 1])[dim]) {
    --bwd;
  }
  size_t cut = (fwd >= ids.size() ||
                (bwd > 1 && target_cut - bwd <= fwd - target_cut))
                   ? bwd
                   : fwd;
  // A huge duplicate block can leave either clean cut with an under-
  // filled side; fall back to splitting the block by count (overlapping
  // identical values, same handling as the dynamic degenerate split).
  const size_t floor_entries = std::max<size_t>(
      1, static_cast<size_t>(options.data_node_min_util *
                             static_cast<double>(capacity)));
  if (cut < floor_entries || ids.size() - cut < floor_entries) {
    cut = ids.size() / 2;
  }
  return cut;
}

namespace {

/// A pending subset in the parallel loader's breadth-first partition: the
/// rows plus the left/right path (0 = left) taken from the root cut.
/// Terminal subsets sorted by path reproduce the serial loader's
/// depth-first leaf order exactly.
struct PartitionTask {
  std::vector<uint8_t> path;
  std::vector<uint32_t> ids;
};

/// Parallel stage 1: partitions `data` into packed leaf subsets with
/// breadth-first rounds over a thread pool (each round cuts every active
/// subset concurrently), then allocates the leaves' page ids serially —
/// the same ascending run the serial loader gets — and fans the
/// serialize-and-write work out in disjoint contiguous chunks, one direct
/// PagedFile::WriteBatch per worker.
Status BuildLeavesParallel(const HybridTreeOptions& options, PagedFile* file,
                           const Dataset& data, size_t capacity,
                           size_t target_leaf, size_t threads,
                           std::vector<Built>* level) {
  ThreadPool pool(threads);
  std::vector<PartitionTask> frontier(1);
  frontier[0].ids.resize(data.size());
  std::iota(frontier[0].ids.begin(), frontier[0].ids.end(), 0u);
  std::vector<PartitionTask> leaves;
  while (!frontier.empty()) {
    std::vector<PartitionTask> active;
    for (PartitionTask& t : frontier) {
      const size_t n_leaves = (t.ids.size() + target_leaf - 1) / target_leaf;
      if (n_leaves <= 1 && t.ids.size() <= capacity) {
        leaves.push_back(std::move(t));
      } else {
        active.push_back(std::move(t));
      }
    }
    // Two children per active task, written into preallocated slots so the
    // workers never touch shared containers.
    std::vector<PartitionTask> children(active.size() * 2);
    for (size_t i = 0; i < active.size(); ++i) {
      HT_RETURN_NOT_OK(pool.Submit([&, i]() -> Status {
        PartitionTask& t = active[i];
        const size_t cut =
            PartitionSubset(data, options, capacity, target_leaf, t.ids);
        PartitionTask& left = children[2 * i];
        PartitionTask& right = children[2 * i + 1];
        left.path = t.path;
        left.path.push_back(0);
        left.ids.assign(t.ids.begin(),
                        t.ids.begin() + static_cast<ptrdiff_t>(cut));
        right.path = std::move(t.path);
        right.path.push_back(1);
        right.ids.assign(t.ids.begin() + static_cast<ptrdiff_t>(cut),
                         t.ids.end());
        return Status::OK();
      }));
    }
    HT_RETURN_NOT_OK(pool.Wait());
    frontier = std::move(children);
  }
  std::sort(leaves.begin(), leaves.end(),
            [](const PartitionTask& a, const PartitionTask& b) {
              return a.path < b.path;
            });

  std::vector<PageId> pages(leaves.size());
  for (size_t i = 0; i < leaves.size(); ++i) {
    HT_ASSIGN_OR_RETURN(pages[i], file->Allocate());
  }
  level->resize(leaves.size());
  const size_t chunk = (leaves.size() + threads - 1) / threads;
  for (size_t begin = 0; begin < leaves.size(); begin += chunk) {
    const size_t end = std::min(begin + chunk, leaves.size());
    HT_RETURN_NOT_OK(pool.Submit([&, begin, end]() -> Status {
      std::vector<Page> bufs;
      bufs.reserve(end - begin);
      std::vector<PageId> ids;
      ids.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        DataNode node;
        node.entries.reserve(leaves[i].ids.size());
        for (uint32_t r : leaves[i].ids) {
          auto row = data.Row(r);
          node.entries.push_back(
              DataEntry{r, std::vector<float>(row.begin(), row.end())});
        }
        bufs.emplace_back(file->page_size());
        node.Serialize(bufs.back().data(), bufs.back().size(), options.dim);
        ids.push_back(pages[i]);
        (*level)[i] = Built{pages[i], node.ComputeLiveBr(options.dim)};
      }
      std::vector<const Page*> ptrs;
      ptrs.reserve(bufs.size());
      for (const Page& p : bufs) ptrs.push_back(&p);
      return file->WriteBatch(ids, ptrs);
    }));
  }
  return pool.Wait();
}

}  // namespace

Result<std::unique_ptr<HybridTree>> BulkLoad(const HybridTreeOptions& options,
                                             PagedFile* file,
                                             const Dataset& data,
                                             const BulkLoadOptions& bulk) {
  // Bulk loading is a one-pass write stream: tag it so a bounded SLRU pool
  // keeps it out of the protected segment.
  AccessClassScope ac(AccessClass::kIngest);
  if (data.dim() != options.dim) {
    return Status::InvalidArgument("dataset dimensionality mismatch");
  }
  for (size_t i = 0; i < data.size(); ++i) {
    for (float v : data.Row(i)) {
      if (!(v >= 0.0f && v <= 1.0f)) {
        return Status::InvalidArgument(
            "bulk data outside the normalized feature space [0,1]^dim");
      }
    }
  }
  // Create() builds the metadata page and an empty root data page; the
  // loader then fills pages bottom-up and repoints the root.
  HT_ASSIGN_OR_RETURN(auto tree, HybridTree::Create(options, file));
  if (data.size() == 0) return tree;
  // The loader is the tree's only client until it returns: it writes index
  // nodes and the metadata page directly, so it holds the exclusive role
  // for the whole build. (Stage-1 worker threads only partition rows and
  // serialize fresh pages; they never touch annotated tree state.)
  ExclusiveRole role(&tree->rw_contract_);

  const size_t capacity = tree->data_capacity_;
  const double fill = std::clamp(bulk.fill,
                                 options.data_node_min_util, 1.0);
  const size_t target_leaf =
      std::max<size_t>(1, static_cast<size_t>(fill * capacity));

  // --- Stage 1: recursive EDA-guided partitioning into packed leaves. -----
  // Leaves come out in kd order, so contiguous runs are spatially coherent.
  std::vector<Built> level;  // leaves in partition order

  if (bulk.threads > 1) {
    HT_RETURN_NOT_OK(BuildLeavesParallel(options, file, data, capacity,
                                         target_leaf, bulk.threads, &level));
  } else {
    std::vector<uint32_t> all(data.size());
    std::iota(all.begin(), all.end(), 0u);

    std::function<Status(std::vector<uint32_t>&)> build_leaves =
        [&](std::vector<uint32_t>& ids) -> Status {
      // L leaves of ~n/L entries each; recursion stops at L == 1. Splitting
      // at the (L/2)-leaf boundary spreads the remainder across all leaves
      // instead of dumping it into an under-filled tail leaf.
      const size_t n_leaves = (ids.size() + target_leaf - 1) / target_leaf;
      if (n_leaves <= 1 && ids.size() <= capacity) {
        DataNode node;
        node.entries.reserve(ids.size());
        for (uint32_t i : ids) {
          auto row = data.Row(i);
          node.entries.push_back(
              DataEntry{i, std::vector<float>(row.begin(), row.end())});
        }
        HT_ASSIGN_OR_RETURN(PageHandle h, tree->pool_->New());
        node.Serialize(h.data(), h.size(), options.dim);
        h.MarkDirty();
        level.push_back(Built{h.id(), node.ComputeLiveBr(options.dim)});
        return Status::OK();
      }
      const size_t cut =
          PartitionSubset(data, options, capacity, target_leaf, ids);
      std::vector<uint32_t> left(ids.begin(),
                                 ids.begin() + static_cast<ptrdiff_t>(cut));
      std::vector<uint32_t> right(ids.begin() + static_cast<ptrdiff_t>(cut),
                                  ids.end());
      ids.clear();
      ids.shrink_to_fit();
      HT_RETURN_NOT_OK(build_leaves(left));
      return build_leaves(right);
    };
    HT_RETURN_NOT_OK(build_leaves(all));
  }

  // --- Stage 2: build index levels over contiguous runs. ------------------
  // Children per node are limited by serialized size; estimate the run
  // length from the record sizes, then verify against the real size.
  const size_t els_bytes = tree->els_in_page() ? tree->codec_.CodeBytes() : 0;
  const size_t per_child = 5 + els_bytes + 15;  // leaf + amortized internal
  const size_t max_children = std::max<size_t>(
      2, (options.page_size - 4) / per_child);

  uint8_t level_no = 0;
  while (level.size() > 1) {
    ++level_no;
    std::vector<Built> next;
    // Even grouping with every node receiving at least 2 children (a tree,
    // not a linked list; also keeps every level's node type uniform).
    size_t nodes = (level.size() + max_children - 1) / max_children;
    if (level.size() / nodes < 2) nodes = std::max<size_t>(1, level.size() / 2);
    const size_t base = level.size() / nodes;
    const size_t rem = level.size() % nodes;
    size_t start = 0;
    for (size_t g = 0; g < nodes; ++g) {
      const size_t take = base + (g < rem ? 1 : 0);
      const size_t end = start + take;
      std::vector<HybridTree::ChildItem> items;
      Box node_live = Box::Empty(options.dim);
      for (size_t i = start; i < end; ++i) {
        node_live.ExtendToInclude(level[i].live);
        items.push_back(HybridTree::ChildItem{level[i].page, level[i].live,
                                              level[i].live});
      }
      start = end;
      IndexNode node;
      node.level = level_no;
      HT_CHECK(items.size() >= 2);
      node.root = tree->BuildKdTree(std::move(items),
                                    Box::UnitCube(options.dim));
      HT_CHECK(node.SerializedSize(tree->els_in_page()) <= options.page_size);
      HT_ASSIGN_OR_RETURN(PageHandle h, tree->pool_->New());
      const PageId page = h.id();
      h.Release();
      HT_RETURN_NOT_OK(tree->WriteIndexNode(page, node));
      next.push_back(Built{page, node_live});
    }
    level = std::move(next);
  }

  // Repoint the root (freeing the placeholder empty data page).
  const PageId placeholder = tree->root_;
  tree->root_ = level[0].page;
  tree->height_ = level_no;
  tree->count_ = data.size();
  tree->quant_store_.Invalidate(placeholder);
  HT_RETURN_NOT_OK(tree->pool_->Free(placeholder));
  HT_RETURN_NOT_OK(tree->WriteMeta());
  return tree;
}

}  // namespace ht
