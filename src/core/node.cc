#include "core/node.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/codec.h"
#include "common/macros.h"

namespace ht {

// ---------------------------------------------------------------------------
// DataNode
// ---------------------------------------------------------------------------

Box DataNode::ComputeLiveBr(uint32_t dim) const {
  Box br = Box::Empty(dim);
  for (const auto& e : entries) br.ExtendToInclude(e.vec);
  return br;
}

void DataNode::Serialize(uint8_t* page, size_t page_size, uint32_t dim) const {
  Writer w(page, page_size);
  w.PutU8(static_cast<uint8_t>(NodeKind::kData));
  w.PutU8(0);
  HT_CHECK(entries.size() <= 0xffff);
  w.PutU16(static_cast<uint16_t>(entries.size()));
  for (const auto& e : entries) {
    HT_DCHECK(e.vec.size() == dim);
    w.PutU64(e.id);
    for (uint32_t d = 0; d < dim; ++d) w.PutF32(e.vec[d]);
  }
}

Result<DataNode> DataNode::Deserialize(const uint8_t* page, size_t page_size,
                                       uint32_t dim) {
  Reader r(page, page_size);
  const uint8_t kind = r.GetU8();
  if (kind != static_cast<uint8_t>(NodeKind::kData)) {
    return Status::Corruption("expected data node page");
  }
  r.GetU8();
  const uint16_t count = r.GetU16();
  DataNode node;
  node.entries.resize(count);
  for (uint16_t i = 0; i < count; ++i) {
    node.entries[i].id = r.GetU64();
    node.entries[i].vec.resize(dim);
    for (uint32_t d = 0; d < dim; ++d) node.entries[i].vec[d] = r.GetF32();
  }
  HT_RETURN_NOT_OK(r.status());
  return node;
}

// ---------------------------------------------------------------------------
// DataPageScan
// ---------------------------------------------------------------------------

DataPageScan::DataPageScan(const uint8_t* page, size_t page_size,
                           uint32_t dim)
    : page_(page), dim_(dim) {
  if (page_size < DataNode::kHeaderBytes ||
      page[0] != static_cast<uint8_t>(NodeKind::kData)) {
    return;
  }
  count_ = static_cast<size_t>(page[2]) | (static_cast<size_t>(page[3]) << 8);
  stride_ = DataNode::EntryBytes(dim);
  if (DataNode::kHeaderBytes + count_ * stride_ > page_size) {
    count_ = 0;
    return;
  }
  ok_ = true;
  if constexpr (std::endian::native != std::endian::little) {
    scratch_.resize(dim);
  }
}

uint64_t DataPageScan::id(size_t i) const {
  HT_DCHECK(i < count_);
  const uint8_t* p = page_ + DataNode::kHeaderBytes + i * stride_;
  uint64_t v = 0;
  for (int b = 7; b >= 0; --b) v = (v << 8) | p[b];
  return v;
}

const float* DataPageScan::block() const {
  if (!ok_) return nullptr;
  if constexpr (std::endian::native == std::endian::little) {
    // Entries start at offset 4 with a 4-divisible stride, so every row's
    // float payload (8 bytes past the entry start) is 4-byte aligned.
    return reinterpret_cast<const float*>(page_ + DataNode::kHeaderBytes + 8);
  } else {
    return nullptr;
  }
}

std::span<const float> DataPageScan::vec(size_t i) const {
  HT_DCHECK(i < count_);
  const uint8_t* p = page_ + DataNode::kHeaderBytes + i * stride_ + 8;
  if constexpr (std::endian::native == std::endian::little) {
    // Entries start at offset 4 and have a 4-divisible stride, so the
    // float payload (8 bytes in) is 4-byte aligned.
    return std::span<const float>(reinterpret_cast<const float*>(p), dim_);
  } else {
    for (uint32_t d = 0; d < dim_; ++d) {
      uint32_t bits = static_cast<uint32_t>(p[4 * d]) |
                      (static_cast<uint32_t>(p[4 * d + 1]) << 8) |
                      (static_cast<uint32_t>(p[4 * d + 2]) << 16) |
                      (static_cast<uint32_t>(p[4 * d + 3]) << 24);
      float v;
      std::memcpy(&v, &bits, sizeof(v));
      scratch_[d] = v;
    }
    return scratch_;
  }
}

// ---------------------------------------------------------------------------
// KdNode helpers
// ---------------------------------------------------------------------------

std::unique_ptr<KdNode> KdNode::Clone() const {
  auto n = std::make_unique<KdNode>();
  n->split_dim = split_dim;
  n->lsp = lsp;
  n->rsp = rsp;
  n->child = child;
  n->els = els;
  if (left) n->left = left->Clone();
  if (right) n->right = right->Clone();
  return n;
}

Box KdLeftBr(const Box& br, const KdNode& n) {
  Box b = br;
  if (n.lsp < b.hi(n.split_dim)) b.set_hi(n.split_dim, n.lsp);
  return b;
}

Box KdRightBr(const Box& br, const KdNode& n) {
  Box b = br;
  if (n.rsp > b.lo(n.split_dim)) b.set_lo(n.split_dim, n.rsp);
  return b;
}

// ---------------------------------------------------------------------------
// IndexNode
// ---------------------------------------------------------------------------

namespace {

size_t CountChildren(const KdNode* n) {
  if (n == nullptr) return 0;
  if (n->IsLeaf()) return 1;
  return CountChildren(n->left.get()) + CountChildren(n->right.get());
}

size_t CountKdNodes(const KdNode* n) {
  if (n == nullptr) return 0;
  if (n->IsLeaf()) return 1;
  return 1 + CountKdNodes(n->left.get()) + CountKdNodes(n->right.get());
}

void CollectChildrenRec(KdNode* n, const Box& br,
                        std::vector<ChildRef>* out) {
  if (n->IsLeaf()) {
    out->push_back(ChildRef{n, br});
    return;
  }
  CollectChildrenRec(n->left.get(), KdLeftBr(br, *n), out);
  CollectChildrenRec(n->right.get(), KdRightBr(br, *n), out);
}

void CollectUsedDimsRec(const KdNode* n, std::vector<bool>* used) {
  if (n == nullptr || n->IsLeaf()) return;
  (*used)[n->split_dim] = true;
  CollectUsedDimsRec(n->left.get(), used);
  CollectUsedDimsRec(n->right.get(), used);
}

}  // namespace

size_t IndexNode::NumChildren() const { return CountChildren(root.get()); }
size_t IndexNode::NumKdNodes() const { return CountKdNodes(root.get()); }

std::vector<uint32_t> IndexNode::UsedDims(uint32_t dim) const {
  std::vector<bool> used(dim, false);
  CollectUsedDimsRec(root.get(), &used);
  std::vector<uint32_t> out;
  for (uint32_t d = 0; d < dim; ++d) {
    if (used[d]) out.push_back(d);
  }
  return out;
}

void IndexNode::CollectChildren(const Box& node_br,
                                std::vector<ChildRef>* out) const {
  out->clear();
  if (root) CollectChildrenRec(root.get(), node_br, out);
}

// ---------------------------------------------------------------------------
// IndexNode serialization
//
// Layout: kind u8, level u8, kd_count u16, root implicit at record 0.
// Records are flattened in preorder. Internal: tag=0, dim u16, lsp f32,
// rsp f32, left u16, right u16. Leaf: tag=1, child u32, [els code bytes].
// ---------------------------------------------------------------------------

namespace {
constexpr size_t kIndexHeaderBytes = 4;
constexpr size_t kInternalRecordBytes = 1 + 2 + 4 + 4 + 2 + 2;
constexpr size_t kLeafRecordBytes = 1 + 4;

size_t SerializedSizeRec(const KdNode* n, bool els_in_page) {
  if (n->IsLeaf()) {
    return kLeafRecordBytes + (els_in_page ? n->els.size() : 0);
  }
  return kInternalRecordBytes + SerializedSizeRec(n->left.get(), els_in_page) +
         SerializedSizeRec(n->right.get(), els_in_page);
}

void FlattenPreorder(KdNode* n, std::vector<KdNode*>* out) {
  out->push_back(n);
  if (!n->IsLeaf()) {
    FlattenPreorder(n->left.get(), out);
    FlattenPreorder(n->right.get(), out);
  }
}

void CollectLeavesRec(KdNode* n, std::vector<KdNode*>* out) {
  if (n->IsLeaf()) {
    out->push_back(n);
    return;
  }
  CollectLeavesRec(n->left.get(), out);
  CollectLeavesRec(n->right.get(), out);
}

}  // namespace

size_t IndexNode::SerializedSize(bool els_in_page) const {
  return kIndexHeaderBytes +
         (root ? SerializedSizeRec(root.get(), els_in_page) : 0);
}

void IndexNode::Serialize(uint8_t* page, size_t page_size, bool els_in_page,
                          size_t els_code_bytes) const {
  std::vector<KdNode*> order;
  if (root) FlattenPreorder(root.get(), &order);
  HT_CHECK(order.size() <= 0xffff);

  // Preorder positions for child index fields. Linear scan per lookup is
  // fine at intra-node scale (at most a few hundred kd nodes per page).
  std::vector<const KdNode*> ptrs(order.begin(), order.end());
  auto index_of = [&](const KdNode* n) -> uint16_t {
    for (size_t i = 0; i < ptrs.size(); ++i) {
      if (ptrs[i] == n) return static_cast<uint16_t>(i);
    }
    HT_CHECK(false);
    return 0;
  };

  Writer w(page, page_size);
  w.PutU8(static_cast<uint8_t>(NodeKind::kIndex));
  w.PutU8(level);
  w.PutU16(static_cast<uint16_t>(order.size()));
  for (const KdNode* n : order) {
    if (n->IsLeaf()) {
      w.PutU8(1);
      w.PutU32(n->child);
      if (els_in_page && els_code_bytes > 0) {
        // The tree maintains the invariant that every leaf carries a code
        // whenever ELS is enabled (codes are computed at split time).
        HT_CHECK(n->els.size() == els_code_bytes);
        w.PutBytes(n->els.data(), n->els.size());
      }
    } else {
      w.PutU8(0);
      w.PutU16(static_cast<uint16_t>(n->split_dim));
      w.PutF32(n->lsp);
      w.PutF32(n->rsp);
      w.PutU16(index_of(n->left.get()));
      w.PutU16(index_of(n->right.get()));
    }
  }
}

Result<IndexNode> IndexNode::Deserialize(const uint8_t* page, size_t page_size,
                                         bool els_in_page,
                                         size_t els_code_bytes, uint32_t dim) {
  Reader r(page, page_size);
  const uint8_t kind = r.GetU8();
  if (kind != static_cast<uint8_t>(NodeKind::kIndex)) {
    return Status::Corruption("expected index node page");
  }
  IndexNode node;
  node.level = r.GetU8();
  const uint16_t count = r.GetU16();
  if (count == 0) return Status::Corruption("index node with no kd nodes");

  struct Raw {
    bool leaf;
    uint32_t dim;
    float lsp, rsp;
    uint16_t left, right;
    PageId child;
    ElsCode els;
  };
  std::vector<Raw> raws(count);
  for (uint16_t i = 0; i < count; ++i) {
    Raw& raw = raws[i];
    raw.leaf = r.GetU8() == 1;
    if (raw.leaf) {
      raw.child = r.GetU32();
      if (els_in_page && els_code_bytes > 0) {
        raw.els.resize(els_code_bytes);
        r.GetBytes(raw.els.data(), els_code_bytes);
      }
    } else {
      raw.dim = r.GetU16();
      if (dim != 0 && raw.dim >= dim) {
        return Status::Corruption("kd split dimension out of range");
      }
      raw.lsp = r.GetF32();
      raw.rsp = r.GetF32();
      raw.left = r.GetU16();
      raw.right = r.GetU16();
      if (raw.left >= count || raw.right >= count) {
        return Status::Corruption("kd child index out of range");
      }
    }
  }
  HT_RETURN_NOT_OK(r.status());

  // Rebuild the pointer tree. Records were written in preorder, so every
  // child index is greater than its parent's; build back-to-front.
  std::vector<std::unique_ptr<KdNode>> nodes(count);
  for (int i = count - 1; i >= 0; --i) {
    const Raw& raw = raws[i];
    auto n = std::make_unique<KdNode>();
    if (raw.leaf) {
      n->child = raw.child;
      n->els = std::move(raws[i].els);
    } else {
      n->split_dim = raw.dim;
      n->lsp = raw.lsp;
      n->rsp = raw.rsp;
      // raw.left == raw.right would pass the null checks (both are still
      // unconsumed here) and then the second move below would leave a
      // half-linked internal node — found by fuzzing, so checked first.
      if (raw.left == raw.right || raw.left <= static_cast<uint16_t>(i) ||
          raw.right <= static_cast<uint16_t>(i) || !nodes[raw.left] ||
          !nodes[raw.right]) {
        return Status::Corruption("kd tree preorder violated");
      }
      n->left = std::move(nodes[raw.left]);
      n->right = std::move(nodes[raw.right]);
    }
    nodes[i] = std::move(n);
  }
  node.root = std::move(nodes[0]);
  return node;
}

std::vector<uint8_t> IndexNode::ExtractElsBlob(size_t els_code_bytes) const {
  std::vector<KdNode*> leaves;
  if (root) CollectLeavesRec(root.get(), &leaves);
  std::vector<uint8_t> blob;
  blob.reserve(leaves.size() * els_code_bytes);
  for (const KdNode* leaf : leaves) {
    HT_CHECK(leaf->els.size() == els_code_bytes);
    blob.insert(blob.end(), leaf->els.begin(), leaf->els.end());
  }
  return blob;
}

void IndexNode::AttachElsBlob(const std::vector<uint8_t>& blob,
                              size_t els_code_bytes) {
  std::vector<KdNode*> leaves;
  if (root) CollectLeavesRec(root.get(), &leaves);
  if (blob.size() != leaves.size() * els_code_bytes) return;  // stale sidecar
  for (size_t i = 0; i < leaves.size(); ++i) {
    leaves[i]->els.assign(blob.begin() + i * els_code_bytes,
                          blob.begin() + (i + 1) * els_code_bytes);
  }
}

NodeKind PeekNodeKind(const uint8_t* page) {
  return static_cast<NodeKind>(page[0]);
}

}  // namespace ht
