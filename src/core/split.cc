#include "core/split.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/macros.h"

namespace ht {

namespace {

/// Dimensions ordered by the policy's preference for data-node splits:
/// extent (EDA-optimal) or variance (VAMSplit), descending.
std::vector<uint32_t> RankDataSplitDims(const Box& br,
                                        const std::vector<DataEntry>& entries,
                                        SplitPolicy policy) {
  const uint32_t dim = br.dim();
  std::vector<double> variance(dim, 0.0);
  for (uint32_t d = 0; d < dim; ++d) {
    double mean = 0.0;
    for (const auto& e : entries) mean += e.vec[d];
    mean /= static_cast<double>(entries.size());
    double var = 0.0;
    for (const auto& e : entries) {
      const double diff = e.vec[d] - mean;
      var += diff * diff;
    }
    variance[d] = var;
  }
  std::vector<uint32_t> order(dim);
  std::iota(order.begin(), order.end(), 0u);
  if (policy == SplitPolicy::kEdaOptimal) {
    // The EDA increase r/(s_d + r) makes every near-maximal extent equally
    // (near-)optimal; real feature data ties constantly (after min-max
    // normalization the root BR has extent 1.0 in EVERY dimension). Break
    // ties among dimensions within 5% of the max extent by variance.
    double max_extent = 0.0;
    for (uint32_t d = 0; d < dim; ++d) {
      max_extent = std::max(max_extent, static_cast<double>(br.Extent(d)));
    }
    const double threshold = 0.95 * max_extent;
    std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      const bool a_top = br.Extent(a) >= threshold;
      const bool b_top = br.Extent(b) >= threshold;
      if (a_top != b_top) return a_top;
      if (a_top && b_top) return variance[a] > variance[b];
      return br.Extent(a) > br.Extent(b);
    });
  } else {
    std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return variance[a] > variance[b];
    });
  }
  return order;
}

/// Attempts a clean value split of `entries` along `d` with position
/// closest to `target` such that both sides hold >= min_count. Returns
/// false when every entry has the same value along `d` (or no position
/// satisfies utilization).
bool TrySplitAlongDim(const std::vector<DataEntry>& entries, uint32_t d,
                      float target, size_t min_count, DataSplit* out) {
  const size_t n = entries.size();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return entries[a].vec[d] < entries[b].vec[d];
  });
  // Candidate positions: midpoints of distinct adjacent values. A split at
  // pos_j puts order[0..j] left, order[j+1..] right.
  float best_pos = 0.0f;
  size_t best_j = 0;
  double best_gap = std::numeric_limits<double>::max();
  bool found = false;
  for (size_t j = 0; j + 1 < n; ++j) {
    const float a = entries[order[j]].vec[d];
    const float b = entries[order[j + 1]].vec[d];
    if (a == b) continue;
    const size_t left_count = j + 1;
    const size_t right_count = n - left_count;
    if (left_count < min_count || right_count < min_count) continue;
    const float pos = a + (b - a) / 2;
    const double gap = std::fabs(static_cast<double>(pos) - target);
    if (gap < best_gap) {
      best_gap = gap;
      best_pos = pos;
      best_j = j;
      found = true;
    }
  }
  if (!found) return false;
  out->dim = d;
  out->pos = best_pos;
  out->degenerate = false;
  out->left.assign(order.begin(), order.begin() + best_j + 1);
  out->right.assign(order.begin() + best_j + 1, order.end());
  return true;
}

double Median(std::vector<float> v) {
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace

DataSplit ChooseDataSplit(const Box& br, const std::vector<DataEntry>& entries,
                          size_t min_count, SplitPolicy policy) {
  HT_CHECK(entries.size() >= 2);
  HT_CHECK(min_count >= 1 && 2 * min_count <= entries.size());
  const auto order = RankDataSplitDims(br, entries, policy);
  DataSplit out;
  for (uint32_t d : order) {
    float target;
    if (policy == SplitPolicy::kEdaOptimal) {
      // "As close to the middle as possible" (§3.2): middle of the BR
      // extent, which tends toward cubic BRs with small surface area.
      target = br.lo(d) + br.Extent(d) / 2;
    } else {
      std::vector<float> vals;
      vals.reserve(entries.size());
      for (const auto& e : entries) vals.push_back(e.vec[d]);
      target = static_cast<float>(Median(std::move(vals)));
    }
    if (TrySplitAlongDim(entries, d, target, min_count, &out)) return out;
  }
  // Degenerate: identical points along every dimension. Partition by count;
  // both regions meet at the common value on the preferred dimension.
  const uint32_t d = order.front();
  out.dim = d;
  out.pos = entries.front().vec[d];
  out.degenerate = true;
  out.left.clear();
  out.right.clear();
  const size_t half = entries.size() / 2;
  for (uint32_t i = 0; i < entries.size(); ++i) {
    (i < half ? out.left : out.right).push_back(i);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Index node splits
// ---------------------------------------------------------------------------

Bipartition BipartitionSegments(const std::vector<Segment>& segs,
                                size_t min_count) {
  const size_t n = segs.size();
  HT_CHECK(n >= 2);
  if (min_count < 1) min_count = 1;
  if (2 * min_count > n) min_count = n / 2;

  std::vector<uint32_t> by_lo(n), by_hi(n);
  std::iota(by_lo.begin(), by_lo.end(), 0u);
  by_hi = by_lo;
  std::stable_sort(by_lo.begin(), by_lo.end(), [&](uint32_t a, uint32_t b) {
    return segs[a].lo < segs[b].lo;
  });
  std::stable_sort(by_hi.begin(), by_hi.end(), [&](uint32_t a, uint32_t b) {
    return segs[a].hi > segs[b].hi;
  });

  Bipartition out;
  std::vector<bool> assigned(n, false);
  float lsp = -std::numeric_limits<float>::max();
  float rsp = std::numeric_limits<float>::max();
  size_t ai = 0, bi = 0;

  // Phase 1: alternately pull the leftmost remaining segment into the left
  // group and the rightmost remaining into the right group, until both
  // meet the utilization floor.
  while (out.left.size() < min_count || out.right.size() < min_count) {
    bool progressed = false;
    if (out.left.size() < min_count) {
      while (ai < n && assigned[by_lo[ai]]) ++ai;
      if (ai < n) {
        const uint32_t s = by_lo[ai];
        assigned[s] = true;
        out.left.push_back(s);
        lsp = std::max(lsp, segs[s].hi);
        progressed = true;
      }
    }
    if (out.right.size() < min_count) {
      while (bi < n && assigned[by_hi[bi]]) ++bi;
      if (bi < n) {
        const uint32_t s = by_hi[bi];
        assigned[s] = true;
        out.right.push_back(s);
        rsp = std::min(rsp, segs[s].lo);
        progressed = true;
      }
    }
    if (!progressed) break;  // ran out of segments (min_count too large)
  }

  // Phase 2: the rest go to the group needing the least elongation,
  // ignoring utilization (paper, §3.3).
  for (uint32_t s = 0; s < n; ++s) {
    if (assigned[s]) continue;
    const double grow_left = std::max(0.0, double(segs[s].hi) - lsp);
    const double grow_right = std::max(0.0, rsp - double(segs[s].lo));
    if (grow_left <= grow_right) {
      out.left.push_back(s);
      lsp = std::max(lsp, segs[s].hi);
    } else {
      out.right.push_back(s);
      rsp = std::min(rsp, segs[s].lo);
    }
  }

  // Defensive fallback for pathological inputs: never return an empty side.
  if (out.left.empty() || out.right.empty()) {
    out.left.clear();
    out.right.clear();
    lsp = -std::numeric_limits<float>::max();
    rsp = std::numeric_limits<float>::max();
    for (size_t i = 0; i < n; ++i) {
      const uint32_t s = by_lo[i];
      if (i < n / 2) {
        out.left.push_back(s);
        lsp = std::max(lsp, segs[s].hi);
      } else {
        out.right.push_back(s);
        rsp = std::min(rsp, segs[s].lo);
      }
    }
  }

  out.lsp = lsp;
  out.rsp = rsp;
  out.overlap = std::max(0.0, static_cast<double>(lsp) - rsp);
  return out;
}

double IndexSplitCost(double s, double w, QuerySizeModel model, double r) {
  switch (model) {
    case QuerySizeModel::kFixed:
      return (w + r) / (s + r);
    case QuerySizeModel::kUniform: {
      const double se = std::max(s, 1e-9);
      return 1.0 + (w - se) * std::log((se + 1.0) / se);
    }
  }
  return 1.0;
}

IndexSplit ChooseIndexSplit(const Box& br, const std::vector<Box>& child_brs,
                            size_t min_count,
                            const std::vector<uint32_t>& candidate_dims,
                            SplitPolicy policy, QuerySizeModel model,
                            double r) {
  HT_CHECK(child_brs.size() >= 2);
  IndexSplit best;

  auto segments_along = [&](uint32_t d) {
    std::vector<Segment> segs(child_brs.size());
    for (size_t i = 0; i < child_brs.size(); ++i) {
      segs[i] = Segment{child_brs[i].lo(d), child_brs[i].hi(d)};
    }
    return segs;
  };

  if (policy == SplitPolicy::kVamSplit) {
    // Maximum variance of child-region centers.
    uint32_t best_d = candidate_dims.empty() ? 0 : candidate_dims.front();
    double best_var = -1.0;
    const auto& dims = candidate_dims;
    for (uint32_t d : dims) {
      double mean = 0.0;
      for (const auto& b : child_brs) mean += 0.5 * (b.lo(d) + b.hi(d));
      mean /= static_cast<double>(child_brs.size());
      double var = 0.0;
      for (const auto& b : child_brs) {
        const double c = 0.5 * (b.lo(d) + b.hi(d)) - mean;
        var += c * c;
      }
      if (var > best_var) {
        best_var = var;
        best_d = d;
      }
    }
    best.dim = best_d;
    best.parts = BipartitionSegments(segments_along(best_d), min_count);
    best.valid = true;
    return best;
  }

  // EDA-optimal: pre-compute the best split positions per candidate
  // dimension, then pick the dimension with minimal expected cost (§3.3).
  double best_cost = std::numeric_limits<double>::max();
  for (uint32_t d : candidate_dims) {
    const double s = br.Extent(d);
    if (s <= 0.0) continue;
    Bipartition parts = BipartitionSegments(segments_along(d), min_count);
    const double cost = IndexSplitCost(s, parts.overlap, model, r);
    if (cost < best_cost) {
      best_cost = cost;
      best.dim = d;
      best.parts = std::move(parts);
      best.valid = true;
    }
  }
  if (!best.valid) {
    // Every candidate dimension was degenerate (point-like region); fall
    // back to a count-based bipartition on the first candidate.
    best.dim = candidate_dims.empty() ? 0 : candidate_dims.front();
    best.parts = BipartitionSegments(segments_along(best.dim), min_count);
    best.valid = true;
  }
  return best;
}

}  // namespace ht
