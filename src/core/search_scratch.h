// Copyright 2026 The HybridTree Authors.
// Reusable per-query buffers for the HybridTree search hot paths.
//
// A SearchScratch owns every dynamically-sized structure a search needs:
// the batch-kernel distance output buffer (page granularity), the
// best-first traversal frontier (a vector-backed binary min-heap), the
// bounded k-NN candidate heap (a vector-backed binary max-heap, replacing
// std::priority_queue so the backing store survives across queries), and
// the intra-node kd-walk stack. Buffers are cleared — never shrunk — at
// the start of each search, so after one warm-up query the steady-state
// search loop performs no heap allocation (verified by search_alloc_test).
//
// Ownership rules:
//  * One scratch serves one query at a time. It may be reused freely
//    across queries, query types, and trees.
//  * Concurrent queries need distinct scratches — exec::QueryExecutor
//    pools one per worker thread.
//  * Passing nullptr to the scratch-taking search overloads makes the tree
//    use a function-local scratch: always correct, but it re-allocates per
//    query. Callers on a hot path should hold a scratch.

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "geometry/quantize.h"
#include "storage/page.h"

namespace ht {

struct KdNode;

class SearchScratch {
 public:
  SearchScratch() = default;
  SearchScratch(SearchScratch&&) = default;
  SearchScratch& operator=(SearchScratch&&) = default;

 private:
  friend class HybridTree;

  /// Pending subtree of the best-first k-NN traversal, keyed by the
  /// MINDIST lower bound to its live region.
  struct PageRef {
    double dist;
    PageId page;
  };

  /// One child page a box/range descent has committed to visiting:
  /// collected during the intra-node kd walk, prefetched as a batch, then
  /// descended in the original preorder (so results are byte-identical
  /// with prefetch on or off). `contained` carries the box search's
  /// scan-level-pruning flag; range search leaves it false.
  struct Descent {
    PageId page;
    bool contained;
  };

  std::vector<double> dist;       // batch-kernel outputs, one per page row
  std::vector<PageRef> frontier;  // k-NN best-first min-heap backing store
  std::vector<std::pair<double, uint64_t>> best;  // bounded k max-heap
  std::vector<const KdNode*> stack;               // intra-node kd walk
  std::vector<Descent> descents;  // collect-then-descend (base-marked)
  std::vector<PageId> prefetch_ids;   // batch under construction
  std::vector<PageRef> prefetch_top;  // k-NN next-best frontier sample
  std::vector<double> lb;             // quantized-code lower bounds
  std::vector<uint8_t> masks;         // fused-filter survivor bits
  std::vector<uint32_t> survivors;    // rows passing the code filter
  quant::FilterScratch quant;         // per-(query,page) filter prep
};

}  // namespace ht
