// Copyright 2026 The HybridTree Authors.
// Bottom-up bulk construction of a hybrid tree from a dataset.
//
// Incremental insertion yields ~65-70% data-node fill (each split leaves
// two half-full nodes); bulk loading packs data nodes to a target fill by
// recursive EDA-guided partitioning of the whole dataset, then builds the
// index levels over spatially contiguous runs. The result is a smaller
// tree with tighter live regions — the standard practice for initial loads
// (the paper's VAMSplit comparison [24] is itself a bulk-load algorithm).

#pragma once

#include <memory>
#include <vector>

#include "common/result.h"
#include "core/hybrid_tree.h"
#include "data/dataset.h"

namespace ht {

struct BulkLoadOptions {
  /// Target data-node fill fraction (clamped to [min_util, 1]).
  double fill = 0.9;
  /// Worker threads for stage 1 (partitioning and leaf writes); 0 or 1
  /// selects the serial loader. The parallel loader produces a
  /// byte-identical file: partition cuts depend only on the data (never on
  /// thread scheduling), leaves get the same page ids in the same
  /// depth-first order, and workers serialize disjoint contiguous page
  /// ranges straight to the file with one PagedFile::WriteBatch per chunk —
  /// bypassing the buffer pool so each worker's blocking write latency
  /// overlaps the others'.
  size_t threads = 0;
};

/// Builds a hybrid tree over `data` (row ids become object ids) in `file`,
/// which must be empty. The returned tree is fully dynamic afterwards.
Result<std::unique_ptr<HybridTree>> BulkLoad(const HybridTreeOptions& options,
                                             PagedFile* file,
                                             const Dataset& data,
                                             const BulkLoadOptions& bulk = {});

/// One EDA/VAM-guided partition step over a row-id subset: chooses the
/// split dimension by `options.split_policy` on the subset's live box,
/// sorts `ids` along it, and returns the cut index, keeping duplicate
/// boundary values together and falling back to a count split when a
/// duplicate block would leave either side under `capacity *
/// data_node_min_util` entries. A pure function of (data, options,
/// subset) — never of thread scheduling — which is what makes both the
/// parallel bulk loader and the serve layer's kd-region sharder
/// deterministic. `target_leaf` is the intended entries-per-leaf (or
/// per-partition) granularity the cut is aligned to.
size_t PartitionSubset(const Dataset& data, const HybridTreeOptions& options,
                       size_t capacity, size_t target_leaf,
                       std::vector<uint32_t>& ids);

}  // namespace ht
