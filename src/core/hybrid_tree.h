// Copyright 2026 The HybridTree Authors.
// The hybrid tree (Chakrabarti & Mehrotra, ICDE 1999): a paginated
// multidimensional index for high-dimensional feature spaces that combines
// space-partitioning (1-d kd-splits per node, fanout independent of
// dimensionality, fast intra-node search) with data-partitioning
// relaxations (splits may overlap instead of cascading, preserving the
// utilization guarantee).
//
// Usage:
//   MemPagedFile file;                        // or DiskPagedFile
//   HybridTreeOptions opts; opts.dim = 64;
//   auto tree = HybridTree::Create(opts, &file).ValueOrDie();
//   tree->Insert(vec, id);
//   auto hits = tree->SearchBox(query_box);
//   auto nn = tree->SearchKnn(center, 10, L1Metric());
//
// The tree is fully dynamic (inserts/deletes interleave with queries) and
// supports point, box, distance-range and k-NN queries under arbitrary
// user-supplied distance metrics (§3.5).
//
// Concurrency: shared-read / exclusive-write. All query methods (SearchBox,
// SearchPoint, CountBox, ScanAll, SearchRange, SearchKnn[Approx], cursors)
// are const and keep their traversal state in per-query stack/heap
// structures, so after SetConcurrentReads(true) any number of threads may
// run them concurrently against one tree (the buffer pool switches to its
// lock-striped mode and the parsed-node cache takes a reader-writer lock;
// see storage/buffer_pool.h). Mutation (Insert, Delete, Flush, RebuildEls)
// requires exclusive access: the caller must guarantee no query is in
// flight — the exclusive-write half of the protocol is enforced by the
// caller (e.g. exec::QueryExecutor runs only reads), not by this class.
// Mode switches themselves require the same exclusivity. The protocol is
// expressed to Clang's thread-safety analysis through the annotation-only
// rw_contract_ capability (see DESIGN.md §12): read entry points acquire
// it shared, mutators exclusively, and internal helpers declare which half
// they need.

#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "core/els.h"
#include "core/node.h"
#include "core/options.h"
#include "core/search_scratch.h"
#include "core/stats.h"
#include "geometry/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/paged_file.h"
#include "storage/quant_store.h"

namespace ht {

class Dataset;
struct BulkLoadOptions;
class HybridTree;

/// Bottom-up bulk construction (see core/bulk_load.h).
Result<std::unique_ptr<HybridTree>> BulkLoad(const HybridTreeOptions& options,
                                             PagedFile* file,
                                             const Dataset& data,
                                             const BulkLoadOptions& bulk);

/// Approximation knobs for bounded k-NN search. Default-constructed limits
/// are exact and unlimited — with them, SearchKnnBoundedInto runs the same
/// code path as SearchKnnInto bit-for-bit (every knob check compiles to a
/// comparison that can never fire).
struct KnnSearchLimits {
  /// (1+epsilon)-approximate: the traversal stops once the best frontier
  /// MINDIST exceeds bound/(1+epsilon), so every reported distance is
  /// within a (1+epsilon) factor of the true k-th distance. 0 = exact.
  double epsilon = 0.0;
  /// Data-page (leaf) visit budget: the search stops after scanning this
  /// many leaves, returning the best candidates found so far. 0 = no
  /// budget. The budget bounds work, not quality — recall degrades
  /// gracefully because best-first order visits the most promising leaves
  /// first.
  size_t max_leaf_visits = 0;
};

/// Per-query accounting filled by the bounded k-NN search.
struct KnnSearchInfo {
  /// Data pages scanned by this query.
  uint64_t leaf_visits = 0;
  /// True when an approximation knob cut the traversal short of exact: the
  /// visit budget ran out, or the epsilon rule stopped (or skipped a
  /// subtree) while the exact search would still have visited it. Always
  /// false for default limits.
  bool early_terminated = false;
};

/// Knobs for an incremental KnnCursor (see HybridTree::OpenKnnCursor).
/// Default-constructed options reproduce the unbounded exact cursor
/// bit-for-bit.
struct KnnCursorOptions {
  /// Declared result bound: the consumer promises to use only entries up
  /// to the `limit`-th smallest distance of the full stream. The cursor
  /// then maintains a running k-th-distance bound over every entry it has
  /// enqueued and uses it to (a) drive the quantized filter-then-refine
  /// page scan and (b) prune subtrees that provably cannot contribute.
  /// Entries at distance <= that bound are still yielded in exact
  /// ascending order (ties at the bound included — the stream may exceed
  /// `limit` entries, it never misses one at or under the bound). 0 = no
  /// declared bound: pure streaming, no filtering.
  size_t limit = 0;
  /// (1+epsilon)-approximate streaming (needs limit > 0 to have a bound to
  /// compare against): subtrees whose MINDIST * (1+epsilon) exceeds the
  /// running self-bound are skipped. 0 = exact.
  double epsilon = 0.0;
  /// Leaf-visit budget, as in KnnSearchLimits. Once exhausted the cursor
  /// yields the already-materialized entries and drops every pending
  /// subtree. 0 = no budget.
  size_t max_leaf_visits = 0;
  /// Optional external radius that only ever tightens (monotonically
  /// non-increasing), e.g. the serving layer's shared cross-shard k-th
  /// distance. Read with memory_order_relaxed: it is a monotone pruning
  /// hint with no associated data — a stale (too large) value only weakens
  /// pruning, never correctness. Used for entry-level filtering always,
  /// and for subtree pruning only in fully exact mode (epsilon == 0 and no
  /// budget), so that budgeted traversals stay deterministic regardless of
  /// cross-shard timing. Not owned; must outlive the cursor.
  const std::atomic<double>* shared_bound = nullptr;
};

class HybridTree {
 public:
  /// Creates an empty tree in `file` (which must be fresh). The tree keeps
  /// a reference to `file`; the caller owns it and must keep it alive.
  static Result<std::unique_ptr<HybridTree>> Create(
      const HybridTreeOptions& options, PagedFile* file);

  /// Opens a tree previously persisted via Flush(). Options are read back
  /// from the metadata page; `buffer_pool_pages` overrides the pool
  /// capacity (0 = unbounded, the persisted default — runtime knobs are
  /// not stored in the metadata page). With ElsMode::kInMemory the ELS
  /// sidecar is rebuilt by one DFS over the tree (codes are exact after
  /// the rebuild).
  static Result<std::unique_ptr<HybridTree>> Open(
      PagedFile* file, size_t buffer_pool_pages = 0);

  /// Inserts a point (coordinates must lie in the normalized feature space
  /// [0,1]^dim). Duplicate (point, id) pairs are allowed.
  Status Insert(std::span<const float> point, uint64_t id);

  /// Inserts ids.size() points in one pass. `points` is row-major:
  /// points.size() == ids.size() * dim(), row i holding the coordinates
  /// of ids[i]. The whole batch is validated before any mutation (the
  /// write-side validate-before-I/O contract). The descent groups points
  /// by target leaf at every level, so each visited node is deserialized
  /// and re-serialized once per GROUP instead of once per point, all
  /// dirtied pages form one dirty set for the next batched flush, and
  /// under HT_DEBUG_VALIDATE the validator runs once per batch instead of
  /// once per point. The stored set — and therefore every query result —
  /// is identical to an equivalent loop of Insert() calls; the internal
  /// split structure may differ (points are placed in group order).
  /// Mutation: requires the exclusive-write half of the protocol, exactly
  /// like Insert.
  Status InsertBatch(std::span<const float> points,
                     std::span<const uint64_t> ids);

  /// Deletes one entry matching (point, id) exactly; NotFound if absent.
  /// Underflowing nodes are eliminated and their entries reinserted (§3.5).
  Status Delete(std::span<const float> point, uint64_t id);

  /// All ids whose vectors lie inside `query` (closed box).
  Result<std::vector<uint64_t>> SearchBox(const Box& query) const;

  // --- zero-allocation query variants --------------------------------------
  // The *Into overloads are the steady-state hot path: `out` is cleared and
  // filled (capacity reused), and `scratch` — which may be nullptr, at the
  // cost of per-query allocation — holds every traversal buffer. Reusing
  // both across queries makes the search loop allocation-free after one
  // warm-up query (see core/search_scratch.h for the ownership rules).
  // Results are identical to the value-returning APIs, which are thin
  // wrappers over these.

  /// SearchBox into a caller-owned buffer.
  Status SearchBoxInto(const Box& query, SearchScratch* scratch,
                       std::vector<uint64_t>* out) const;

  /// SearchRange into a caller-owned buffer.
  Status SearchRangeInto(std::span<const float> center, double radius,
                         const DistanceMetric& metric, SearchScratch* scratch,
                         std::vector<uint64_t>* out) const;

  /// SearchKnn into a caller-owned buffer ((distance, id), ascending).
  Status SearchKnnInto(std::span<const float> center, size_t k,
                       const DistanceMetric& metric, SearchScratch* scratch,
                       std::vector<std::pair<double, uint64_t>>* out) const;

  /// SearchKnnApprox into a caller-owned buffer.
  Status SearchKnnApproxInto(
      std::span<const float> center, size_t k, const DistanceMetric& metric,
      double epsilon, SearchScratch* scratch,
      std::vector<std::pair<double, uint64_t>>* out) const;

  /// Bounded/approximate k-NN into a caller-owned buffer: epsilon and the
  /// leaf-visit budget per `limits` (see KnnSearchLimits — default limits
  /// make this bit-identical to SearchKnnInto). `info`, when non-null,
  /// receives visit/termination accounting. This is the primitive the
  /// value-returning and *Into k-NN entry points wrap.
  Status SearchKnnBoundedInto(
      std::span<const float> center, size_t k, const DistanceMetric& metric,
      const KnnSearchLimits& limits, SearchScratch* scratch,
      std::vector<std::pair<double, uint64_t>>* out,
      KnnSearchInfo* info = nullptr) const;

  /// All ids stored at exactly `point` (point query; §3.5 lists point
  /// queries among the supported feature-based queries).
  Result<std::vector<uint64_t>> SearchPoint(
      std::span<const float> point) const;

  /// Number of objects inside `query` without materializing the id list.
  Result<uint64_t> CountBox(const Box& query) const;

  /// Visits every stored (id, vector) pair (unspecified order). Used for
  /// exports and integrity audits; reads each page exactly once.
  Status ScanAll(const std::function<void(uint64_t, std::span<const float>)>&
                     visit) const;

  /// All ids within `radius` of `center` under `metric`.
  Result<std::vector<uint64_t>> SearchRange(
      std::span<const float> center, double radius,
      const DistanceMetric& metric) const;

  /// The k nearest neighbors of `center` as (distance, id), ascending.
  /// Best-first branch-and-bound (Hjaltason–Samet) over live regions.
  Result<std::vector<std::pair<double, uint64_t>>> SearchKnn(
      std::span<const float> center, size_t k,
      const DistanceMetric& metric) const;

  /// (1+epsilon)-approximate k-NN (the paper's future-work item): subtrees
  /// are pruned when MINDIST * (1 + epsilon) exceeds the current k-th
  /// candidate, so every reported distance is within a (1+epsilon) factor
  /// of the true k-th nearest distance. epsilon = 0 is exact.
  Result<std::vector<std::pair<double, uint64_t>>> SearchKnnApprox(
      std::span<const float> center, size_t k, const DistanceMetric& metric,
      double epsilon) const;

  /// Incremental nearest-neighbor cursor ("distance browsing"): yields
  /// entries strictly in ascending distance order, fetching pages lazily —
  /// ideal when the consumer stops after an unknown number of results
  /// (e.g., filtering by a predicate). The cursor holds no page pins; the
  /// tree must not be mutated while a cursor is live, and `metric` must
  /// outlive the cursor. With KnnCursorOptions the cursor carries a
  /// running k-th-distance bound (its own stream, optionally tightened by
  /// an external shared radius) that reaches the quantized
  /// filter-then-refine page scan — byte-identical results for any
  /// consumer honoring the declared limit. A cursor is single-threaded:
  /// one cursor is driven by one consumer, so its fields need no guards;
  /// the only cross-thread state it touches is the shared_bound atomic.
  class KnnCursor {
   public:
    /// The next nearest (distance, id), or nullopt when exhausted.
    Result<std::optional<std::pair<double, uint64_t>>> Next();

    /// Data pages scanned so far (approximation accounting).
    uint64_t leaf_visits() const { return leaf_visits_; }
    /// True when an approximation knob (epsilon / visit budget) skipped
    /// work the exact traversal would have done. Always false for
    /// default-constructed options.
    bool early_terminated() const { return early_terminated_; }

   private:
    friend class HybridTree;
    struct Item {
      double dist;
      bool is_entry;
      uint64_t id;      // valid when is_entry
      PageId page;      // valid when !is_entry
      bool operator>(const Item& o) const { return dist > o.dist; }
    };
    KnnCursor(const HybridTree* tree, std::span<const float> center,
              const DistanceMetric* metric, const KnnCursorOptions& opts);

    /// k-th smallest entry distance enqueued so far (+inf until `limit`
    /// entries have been seen, or always with no declared limit).
    double SelfBound() const;
    /// Entry-filtering bound: SelfBound tightened by the shared radius.
    double ScanBound() const;
    /// Subtree-pruning bound: ScanBound in fully exact mode, SelfBound
    /// only when a knob is active (keeps budgeted traversals independent
    /// of cross-shard timing — see KnnCursorOptions::shared_bound).
    double ExpandBound() const;
    /// Feeds one enqueued entry distance into the self-bound heap.
    void RecordEntry(double d);

    const HybridTree* tree_;
    std::vector<float> center_;
    const DistanceMetric* metric_;
    KnnCursorOptions opts_;
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> queue_;
    std::vector<double> best_;           // max-heap: `limit` best distances
    std::vector<const KdNode*> stack_;   // intra-node kd walk
    SearchScratch scratch_;              // page-scan + quant-filter buffers
    uint64_t leaf_visits_ = 0;
    bool early_terminated_ = false;
  };
  KnnCursor OpenKnnCursor(std::span<const float> center,
                          const DistanceMetric& metric) const;
  /// Cursor with a declared result bound and approximation knobs (see
  /// KnnCursorOptions). Default options == the overload above.
  KnnCursor OpenKnnCursor(std::span<const float> center,
                          const DistanceMetric& metric,
                          const KnnCursorOptions& opts) const;

  /// Writes all dirty pages + metadata to the backing file.
  Status Flush();

  uint64_t size() const { return count_; }
  uint32_t height() const { return height_; }
  const HybridTreeOptions& options() const { return options_; }
  PageId root_page() const { return root_; }

  /// Buffer pool, exposed for access accounting by the harness
  /// (pool().stats().logical_reads is "disk accesses").
  BufferPool& pool() { return *pool_; }
  const BufferPool& pool() const { return *pool_; }

  /// Enables (or disables) concurrent read mode: the buffer pool switches
  /// to its lock-striped mode and the parsed-node cache starts taking its
  /// shared_mutex, after which any number of threads may run the const
  /// query methods concurrently (shared-read half of the protocol). The
  /// caller keeps the exclusive-write half: no Insert/Delete/Flush while
  /// queries are in flight, and the mode switch itself requires that no
  /// query is running. Single-threaded performance is unaffected while the
  /// mode is off (no locks are taken anywhere on the read path).
  Status SetConcurrentReads(bool on);
  bool concurrent_reads() const { return concurrent_reads_; }

  /// Sets the frontier-driven prefetch depth (see
  /// HybridTreeOptions::prefetch_depth). Like SetConcurrentReads, flip it
  /// only under write exclusivity (no query in flight); queries read the
  /// value without synchronization.
  void SetPrefetchDepth(size_t depth) { options_.prefetch_depth = depth; }
  size_t prefetch_depth() const { return options_.prefetch_depth; }

  /// Maximum entries per data node at the current configuration.
  size_t data_node_capacity() const { return data_capacity_; }

  /// Number of data pages with a cached quantized sidecar (test support).
  size_t CachedQuantPages() const { return quant_store_.CachedPages(); }

  /// Structural statistics (Table 1 analogue). Traverses the whole tree.
  Result<TreeStats> ComputeStats();

  /// Verifies structural invariants (containment, utilization, ELS
  /// conservativeness, serialized sizes, entry count). Test support.
  Status CheckInvariants();

  /// Debug: prints the tree structure with kd regions and decoded live
  /// boxes (test/diagnostic support).
  void DumpTree();

  /// Recomputes every ELS code exactly from the data below it (one DFS).
  /// Called by Open() in kInMemory mode; also usable to re-tighten codes
  /// grown stale by deletions.
  Status RebuildEls();

 private:
  friend Result<std::unique_ptr<HybridTree>> BulkLoad(
      const HybridTreeOptions& options, PagedFile* file, const Dataset& data,
      const BulkLoadOptions& bulk);
  /// Deep validation (src/core/validator.h) reads private node I/O and
  /// tree metadata; CheckInvariants() delegates to it.
  friend class TreeValidator;

  HybridTree(const HybridTreeOptions& options, PagedFile* file);

  bool els_enabled() const {
    return options_.els_mode != ElsMode::kOff && options_.els_bits > 0;
  }
  bool els_in_page() const {
    return options_.els_mode == ElsMode::kInPage && options_.els_bits > 0;
  }

  // --- node I/O -----------------------------------------------------------
  // The HT_REQUIRES/HT_REQUIRES_SHARED(rw_contract_) annotations below make
  // the shared-read / exclusive-write protocol (file comment) checkable:
  // write-path helpers demand the exclusive role, read-path helpers the
  // shared role, and a const search that strays onto a write helper fails
  // the thread-safety build. Public entry points acquire the role
  // internally (SharedRole/ExclusiveRole guards), so the contract is not
  // viral to callers; the Role itself compiles to nothing.
  Result<DataNode> ReadDataNode(PageId id) HT_REQUIRES(rw_contract_);
  Status WriteDataNode(PageId id, const DataNode& node)
      HT_REQUIRES(rw_contract_);
  Result<IndexNode> ReadIndexNode(PageId id) HT_REQUIRES(rw_contract_);
  /// Read-path variant: returns the parsed node from the in-memory cache
  /// (decoded live boxes precomputed), deserializing `page_data` on a miss.
  /// Does NOT fetch from the pool — the caller already did (and paid the
  /// logical read). Mutating paths must not use this. Safe to call from
  /// concurrent readers when concurrent_reads_ is on.
  Result<std::shared_ptr<const IndexNode>> ReadIndexNodeCached(
      PageId id, const uint8_t* page_data, size_t page_size) const
      HT_REQUIRES_SHARED(rw_contract_);
  /// Drops `id` from the parsed-node cache (write paths, before rewriting
  /// or freeing the page).
  void InvalidateCachedNode(PageId id) HT_REQUIRES(rw_contract_);
  Status WriteIndexNode(PageId id, IndexNode& node) HT_REQUIRES(rw_contract_);
  Result<NodeKind> PeekKind(PageId id) HT_REQUIRES(rw_contract_);
  Status WriteMeta() HT_REQUIRES(rw_contract_);

  // --- insertion ----------------------------------------------------------
  struct SplitResult {
    bool split = false;
    uint32_t dim = 0;
    float lsp = 0.0f;
    float rsp = 0.0f;
    PageId right_page = kInvalidPageId;
    Box left_live;
    Box right_live;
  };
  Result<SplitResult> InsertRec(PageId page, const Box& br,
                                std::span<const float> point, uint64_t id)
      HT_REQUIRES(rw_contract_);
  /// Installs a new root above the old one after a root-level split
  /// (shared by Insert and InsertBatch).
  Status GrowRoot(const SplitResult& s) HT_REQUIRES(rw_contract_);
  /// One InsertBatch recursion step: inserts the batch rows indexed by
  /// `idxs` into the subtree at `page`. On a split of `page`, the rows
  /// not yet placed come back in `leftovers` for the caller to re-route
  /// against the updated structure.
  struct BatchOutcome {
    SplitResult split;
    std::vector<uint32_t> leftovers;
  };
  Result<BatchOutcome> InsertBatchRec(PageId page, const Box& br,
                                      std::span<const float> points,
                                      std::span<const uint64_t> ids,
                                      std::vector<uint32_t> idxs)
      HT_REQUIRES(rw_contract_);
  Result<SplitResult> SplitDataNode(PageId page, DataNode& node,
                                    const Box& br) HT_REQUIRES(rw_contract_);
  Result<SplitResult> SplitIndexNode(PageId page, IndexNode& node,
                                     const Box& br) HT_REQUIRES(rw_contract_);
  /// Recursively builds a kd-tree over child subtrees for one side of an
  /// index-node split.
  struct ChildItem {
    PageId page = kInvalidPageId;
    Box kd_br;
    Box live;
  };
  std::unique_ptr<KdNode> BuildKdTree(std::vector<ChildItem> items,
                                      const Box& region);
  /// Navigation that closes kd gaps (lsp < v < rsp) by minimum enlargement,
  /// re-encoding ELS codes of the widened subtree.
  ChildRef FindLeafForInsert(IndexNode& node, std::span<const float> p,
                             const Box& node_br, bool* dirtied)
      HT_REQUIRES(rw_contract_);
  void ReencodeSubtree(KdNode* n, const Box& old_br, const Box& new_br);
  /// Replaces every empty leaf code with the full-region code so that the
  /// invariant "every leaf carries a code" holds before serialization.
  void EnsureCodes(KdNode* n);

  // --- deletion -----------------------------------------------------------
  struct DeleteOutcome {
    bool found = false;
    bool eliminate_me = false;
    std::vector<DataEntry> orphans;
  };
  Result<DeleteOutcome> DeleteRec(PageId page, const Box& br,
                                  std::span<const float> point, uint64_t id)
      HT_REQUIRES(rw_contract_);
  /// Removes `target` (a kd leaf) from the node's kd tree, widening and
  /// re-encoding the sibling subtree. Returns false if target is the root.
  bool RemoveKdLeaf(IndexNode& node, const Box& node_br, KdNode* target);

  // --- search -------------------------------------------------------------
  // Const and re-entrant: all traversal state lives in the per-query
  // scratch and locals, never on the tree object. `contained` marks that
  // an ancestor's live box was fully inside the query, so every point
  // below qualifies without per-point tests (scan-level pruning). The kd
  // walks share scratch->stack across page-nesting levels via a base
  // marker (each level only pops entries it pushed).
  Status SearchBoxRec(PageId page, const Box& query, bool contained,
                      SearchScratch* scratch, std::vector<uint64_t>* out) const
      HT_REQUIRES_SHARED(rw_contract_);
  Status SearchRangeRec(PageId page, std::span<const float> center,
                        double radius, const DistanceMetric& metric,
                        SearchScratch* scratch,
                        std::vector<uint64_t>* out) const
      HT_REQUIRES_SHARED(rw_contract_);
  /// Recursive body of ScanAll (a member, not a lambda, so the analysis
  /// sees the shared-role requirement).
  Status ScanAllRec(
      PageId page,
      const std::function<void(uint64_t, std::span<const float>)>& fn) const
      HT_REQUIRES_SHARED(rw_contract_);
  /// Quantized filter-then-refine for one data-page scan: computes sound
  /// code lower bounds for all `n` rows of `blk` and collects the rows
  /// with lb <= bound (ascending) into scratch->survivors. Returns false —
  /// and counts an unfiltered scan — when filtering is off, unavailable
  /// for this metric, or pointless (bound is +inf / no rows). On true, the
  /// caller must compute exact distances for the survivor rows only; the
  /// bound soundness guarantees the visible results are byte-identical.
  /// Whenever sidecars are enabled — and the metric can actually use them
  /// (DistanceMetric::SupportsCodeFilter; building one for a metric with
  /// no code-space bound would only cache useless pages) — `*qp_out`
  /// receives this page's sidecar (even when the return is false) so the
  /// caller can route exact distances through its transposed float mirror.
  /// `cursor_path` routes the scan accounting to the cursor_* IoStats
  /// duals instead of the batch counters.
  bool QuantFilter(PageId page, const float* blk, size_t stride, size_t n,
                   std::span<const float> center, const DistanceMetric& metric,
                   double bound, SearchScratch* scratch,
                   std::shared_ptr<const QuantizedPage>* qp_out,
                   bool cursor_path = false) const
      HT_REQUIRES_SHARED(rw_contract_);
  /// One cursor data-page scan: applies QuantFilter under the cursor's
  /// current scan bound, refines survivors exactly (sparse per-row or
  /// dense batch, like the batch k-NN path), and enqueues every entry
  /// whose distance does not exceed the bound. With an infinite bound this
  /// enqueues all rows with exact distances — the legacy cursor scan.
  /// A member (not cursor code) so it can reach SearchScratch internals.
  Status ScanDataPageForCursor(KnnCursor* cursor, PageId page,
                               const uint8_t* data, size_t size) const
      HT_REQUIRES_SHARED(rw_contract_);

  // --- maintenance --------------------------------------------------------
  /// DFS recomputing ELS codes; returns this subtree's exact live box.
  Result<Box> RebuildElsRec(PageId page, const Box& br)
      HT_REQUIRES(rw_contract_);
  /// Kd-walk half of RebuildElsRec: recurses into child subtrees and
  /// re-encodes leaf ELS codes in place (member, not a lambda, so the
  /// analysis sees the exclusive-role requirement).
  Status RebuildElsKd(KdNode* n, const Box& nbr, Box* node_live)
      HT_REQUIRES(rw_contract_);
  Status ComputeStatsRec(PageId page, const Box& br, TreeStats* stats,
                         double* data_util_sum) HT_REQUIRES(rw_contract_);
  /// Kd-walk half of ComputeStatsRec (member, not a lambda, so the
  /// analysis sees the exclusive-role requirement).
  Status ComputeStatsKd(const KdNode* n, const Box& nbr, TreeStats* stats,
                        double* data_util_sum) HT_REQUIRES(rw_contract_);
  Status CollectSubtreeEntries(PageId page, std::vector<DataEntry>* out,
                               std::vector<PageId>* pages)
      HT_REQUIRES(rw_contract_);
  /// Recursive body of DumpTree (member for the same reason as ScanAllRec).
  void DumpTreeRec(PageId page, const Box& br, int depth)
      HT_REQUIRES(rw_contract_);
  /// No-op unless built with -DHT_DEBUG_VALIDATE=ON, in which case it runs
  /// a full TreeValidator pass (including buffer-pool pin accounting) and
  /// aborts on any violation. Called after every mutating operation.
  void DebugValidate();

  HybridTreeOptions options_;
  PagedFile* file_;
  std::unique_ptr<BufferPool> pool_;
  ElsCodec codec_;
  size_t data_capacity_ = 0;
  size_t data_min_count_ = 0;

  PageId meta_page_ = kInvalidPageId;
  PageId root_ = kInvalidPageId;
  uint32_t height_ = 0;  // level of the root (0 = data node)
  uint64_t count_ = 0;

  /// ELS sidecar for ElsMode::kInMemory: page id -> packed leaf codes in
  /// left-to-right leaf order.
  std::unordered_map<PageId, std::vector<uint8_t>> els_sidecar_;

  /// Quantized data-page sidecars for the filter-then-refine scan path
  /// (storage/quant_store.h). Built lazily by const searches, hence
  /// mutable; invalidated wherever a data page is rewritten or freed.
  mutable QuantStore quant_store_;

  /// Insert-path scratch: candidate leaves collected by FindLeafForInsert,
  /// reused across calls (cleared, capacity retained) instead of being
  /// reallocated per visited node. Safe as a member because mutation runs
  /// under the exclusive-write half of the concurrency protocol, and each
  /// use completes before InsertRec recurses into the chosen child.
  std::vector<ChildRef> insert_candidates_;

  /// Parsed-node cache for the read paths (searches, cursors): the decoded
  /// in-memory view of an index page, with each leaf's live box already
  /// decoded. Invalidated whenever the page is written or freed. Access
  /// counts are unaffected (callers fetch the page first regardless).
  /// Guarded by node_cache_mu_ when concurrent_reads_ is on; mutable
  /// because filling the cache is part of the const read path.
  mutable std::unordered_map<PageId, std::shared_ptr<const IndexNode>>
      node_cache_ HT_GUARDED_BY(node_cache_mu_);
  mutable SharedMutex node_cache_mu_{LockRank::kTreeNodeCache,
                                     "HybridTree::node_cache_mu_"};

  /// Concurrent read mode (see SetConcurrentReads). Only flipped under
  /// write exclusivity, so plain (unsynchronized) reads of the flag are
  /// safe: worker threads are created after the flip.
  bool concurrent_reads_ = false;

  /// The shared-read / exclusive-write protocol as a checkable capability.
  /// Not a lock: acquiring it is a compile-time statement ("this code runs
  /// under read-sharing" / "under write exclusivity"), enforced externally
  /// by the serving layer's batch barriers. Entry points acquire it via
  /// SharedRole / ExclusiveRole; helpers declare HT_REQUIRES[_SHARED] on
  /// it so a const search can never reach a mutating helper.
  mutable Role rw_contract_;
};

}  // namespace ht
