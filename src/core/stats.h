// Copyright 2026 The HybridTree Authors.
// Structural statistics of a built tree (the measured analogue of the
// paper's Table 1 / Table 2 property comparison).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ht {

/// Per-level aggregate (level 0 = data nodes).
struct LevelStats {
  uint32_t level = 0;
  uint64_t nodes = 0;
  uint64_t children = 0;   // entries for level 0, child pointers otherwise
  double avg_fanout = 0.0;
};

struct TreeStats {
  uint64_t entry_count = 0;
  uint32_t height = 0;  // 0 = the root is a data node
  uint64_t data_nodes = 0;
  uint64_t index_nodes = 0;

  /// Mean data-node fill (entries / capacity) — the utilization guarantee.
  double avg_data_utilization = 0.0;
  double min_data_utilization = 1.0;

  /// Mean children per index node; "high, independent of k" per Table 1.
  double avg_index_fanout = 0.0;

  /// kd-split accounting: a kd internal node with lsp > rsp is an
  /// overlapping split. Table 1's "degree of overlap: low".
  uint64_t kd_internal_nodes = 0;
  uint64_t overlapping_kd_splits = 0;
  /// Mean of max(0, lsp-rsp)/extent over overlapping internal kd nodes.
  double avg_overlap_fraction = 0.0;

  /// ELS memory-resident sidecar size (ElsMode::kInMemory); the paper
  /// claims <1% of database size at 4-bit precision (8 KiB pages).
  uint64_t els_sidecar_bytes = 0;

  /// Per-level breakdown, root level first.
  std::vector<LevelStats> levels;

  std::string ToString() const;
};

}  // namespace ht
