#include "core/hybrid_tree.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <functional>
#include <numeric>
#include <queue>
#include <tuple>
#include <unordered_map>

#include "common/codec.h"
#include "core/split.h"
#include "core/validator.h"

namespace ht {

namespace {
constexpr uint32_t kMetaMagic = 0x48594254;  // "HYBT"
constexpr uint32_t kMetaVersion = 1;
}  // namespace

// ---------------------------------------------------------------------------
// Construction / metadata
// ---------------------------------------------------------------------------

HybridTree::HybridTree(const HybridTreeOptions& options, PagedFile* file)
    : options_(options),
      file_(file),
      pool_(std::make_unique<BufferPool>(file, options.buffer_pool_pages,
                                         options.cache_policy)),
      codec_(options.dim, options.els_bits) {
  data_capacity_ = DataNode::Capacity(options_.dim, options_.page_size);
  data_min_count_ = std::max<size_t>(
      1, static_cast<size_t>(options_.data_node_min_util *
                             static_cast<double>(data_capacity_)));
  if (2 * data_min_count_ > data_capacity_) {
    data_min_count_ = data_capacity_ / 2;
  }
}

Result<std::unique_ptr<HybridTree>> HybridTree::Create(
    const HybridTreeOptions& options, PagedFile* file) {
  if (options.dim == 0) {
    return Status::InvalidArgument("dimension must be positive");
  }
  if (options.page_size != file->page_size()) {
    return Status::InvalidArgument("options.page_size != file page size");
  }
  if (file->page_count() != 0) {
    return Status::InvalidArgument("Create requires an empty file");
  }
  if (DataNode::Capacity(options.dim, options.page_size) < 4) {
    return Status::InvalidArgument(
        "page too small: a data node must hold at least 4 entries");
  }
  if (options.els_bits > 16) {
    return Status::InvalidArgument("els_bits must be <= 16");
  }
  auto tree = std::unique_ptr<HybridTree>(new HybridTree(options, file));
  // Page 0: metadata. Page 1: the initial (empty) data-node root.
  HT_ASSIGN_OR_RETURN(PageHandle meta, tree->pool_->New());
  HT_CHECK(meta.id() == 0);
  tree->meta_page_ = meta.id();
  HT_ASSIGN_OR_RETURN(PageHandle root, tree->pool_->New());
  tree->root_ = root.id();
  DataNode empty;
  empty.Serialize(root.data(), options.page_size, options.dim);
  root.MarkDirty();
  root.Release();
  meta.Release();
  // Construction is single-threaded by contract; the role makes the
  // WriteMeta requirement explicit to the analysis.
  ExclusiveRole guard(&tree->rw_contract_);
  HT_RETURN_NOT_OK(tree->WriteMeta());
  return tree;
}

Result<std::unique_ptr<HybridTree>> HybridTree::Open(PagedFile* file,
                                                     size_t buffer_pool_pages) {
  if (file->page_count() == 0) {
    return Status::InvalidArgument("Open requires a non-empty file");
  }
  Page meta(file->page_size());
  HT_RETURN_NOT_OK(file->Read(0, &meta));
  Reader r(meta.data(), meta.size());
  const uint8_t kind = r.GetU8();
  if (kind != static_cast<uint8_t>(NodeKind::kMeta)) {
    return Status::Corruption("page 0 is not a hybrid tree meta page");
  }
  const uint32_t magic = r.GetU32();
  const uint32_t version = r.GetU32();
  if (magic != kMetaMagic || version != kMetaVersion) {
    return Status::Corruption("bad hybrid tree magic/version");
  }
  HybridTreeOptions options;
  options.dim = r.GetU32();
  options.page_size = r.GetU32();
  const PageId root = r.GetU32();
  const uint32_t height = r.GetU32();
  const uint64_t count = r.GetU64();
  options.split_policy = static_cast<SplitPolicy>(r.GetU8());
  options.els_mode = static_cast<ElsMode>(r.GetU8());
  options.els_bits = r.GetU8();
  options.query_size_model = static_cast<QuerySizeModel>(r.GetU8());
  options.expected_query_side = r.GetF32();
  options.data_node_min_util = r.GetF32();
  options.index_node_min_util = r.GetF32();
  HT_RETURN_NOT_OK(r.status());
  if (options.page_size != file->page_size()) {
    return Status::Corruption("meta page size mismatch");
  }
  options.buffer_pool_pages = buffer_pool_pages;

  auto tree = std::unique_ptr<HybridTree>(new HybridTree(options, file));
  tree->meta_page_ = 0;
  tree->root_ = root;
  tree->height_ = height;
  tree->count_ = count;
  if (options.els_mode == ElsMode::kInMemory && options.els_bits > 0) {
    // The sidecar is not persisted; rebuild exact codes with one DFS.
    HT_RETURN_NOT_OK(tree->RebuildEls());
  }
  return tree;
}

Status HybridTree::WriteMeta() {
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(meta_page_));
  Writer w(h.data(), h.size());
  w.PutU8(static_cast<uint8_t>(NodeKind::kMeta));
  w.PutU32(kMetaMagic);
  w.PutU32(kMetaVersion);
  w.PutU32(options_.dim);
  w.PutU32(static_cast<uint32_t>(options_.page_size));
  w.PutU32(root_);
  w.PutU32(height_);
  w.PutU64(count_);
  w.PutU8(static_cast<uint8_t>(options_.split_policy));
  w.PutU8(static_cast<uint8_t>(options_.els_mode));
  w.PutU8(static_cast<uint8_t>(options_.els_bits));
  w.PutU8(static_cast<uint8_t>(options_.query_size_model));
  w.PutF32(static_cast<float>(options_.expected_query_side));
  w.PutF32(static_cast<float>(options_.data_node_min_util));
  w.PutF32(static_cast<float>(options_.index_node_min_util));
  h.MarkDirty();
  return Status::OK();
}

Status HybridTree::Flush() {
  ExclusiveRole role(&rw_contract_);
  AccessClassScope ac(AccessClass::kIngest);
  // Ordered, write-ahead flush: first every dirty tree page goes out (in
  // batched round trips, one WriteBatch per buffer-pool shard) and is made
  // durable; only then is the metadata page — root pointer, height, count —
  // written and synced. A flush that dies part-way therefore leaves the old
  // metadata on disk: reopening yields the previous root rather than a new
  // root over pages that never landed. Pages are still rewritten in place
  // (no shadow paging), so the guarantee is "meta never points into the
  // void", not full multi-flush atomicity — see DESIGN.md §6d.
  HT_RETURN_NOT_OK(pool_->FlushAllExcept(meta_page_));
  HT_RETURN_NOT_OK(file_->Sync());
  HT_RETURN_NOT_OK(WriteMeta());
  HT_RETURN_NOT_OK(pool_->FlushPage(meta_page_));
  HT_RETURN_NOT_OK(file_->Sync());
  DebugValidate();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Node I/O helpers
// ---------------------------------------------------------------------------

Result<NodeKind> HybridTree::PeekKind(PageId id) {
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  return PeekNodeKind(h.data());
}

Result<DataNode> HybridTree::ReadDataNode(PageId id) {
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  return DataNode::Deserialize(h.data(), h.size(), options_.dim);
}

Status HybridTree::WriteDataNode(PageId id, const DataNode& node) {
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  node.Serialize(h.data(), h.size(), options_.dim);
  h.MarkDirty();
  quant_store_.Invalidate(id);
  return Status::OK();
}

Result<IndexNode> HybridTree::ReadIndexNode(PageId id) {
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  HT_ASSIGN_OR_RETURN(
      IndexNode node,
      IndexNode::Deserialize(h.data(), h.size(), els_in_page(),
                             codec_.CodeBytes(), options_.dim));
  if (options_.els_mode == ElsMode::kInMemory && options_.els_bits > 0) {
    auto it = els_sidecar_.find(id);
    if (it != els_sidecar_.end()) {
      node.AttachElsBlob(it->second, codec_.CodeBytes());
    }
  }
  return node;
}

void HybridTree::EnsureCodes(KdNode* n) {
  if (n == nullptr) return;
  if (n->IsLeaf()) {
    if (n->els.size() != codec_.CodeBytes()) n->els = codec_.FullCode();
    return;
  }
  EnsureCodes(n->left.get());
  EnsureCodes(n->right.get());
}

Result<std::shared_ptr<const IndexNode>> HybridTree::ReadIndexNodeCached(
    PageId id, const uint8_t* page_data, size_t page_size) const {
  {
    // Conditional guard: the lock is real only in concurrent-read mode;
    // serial mode claims the capability without the runtime lock (the
    // single-threaded contract IS the exclusion).
    ReaderLock lock(&node_cache_mu_, concurrent_reads_);
    auto it = node_cache_.find(id);
    if (it != node_cache_.end()) return it->second;
  }
  HT_ASSIGN_OR_RETURN(
      IndexNode node,
      IndexNode::Deserialize(page_data, page_size, els_in_page(),
                             codec_.CodeBytes(), options_.dim));
  if (options_.els_mode == ElsMode::kInMemory && options_.els_bits > 0) {
    auto sit = els_sidecar_.find(id);
    if (sit != els_sidecar_.end()) {
      node.AttachElsBlob(sit->second, codec_.CodeBytes());
    }
  }
  // Precompute each leaf's decoded live box against its node-local region.
  std::function<void(KdNode*, const Box&)> fill = [&](KdNode* n,
                                                      const Box& nbr) {
    if (n->IsLeaf()) {
      n->cached_live =
          els_enabled() ? codec_.Decode(n->els, nbr) : nbr;
      return;
    }
    fill(n->left.get(), KdLeftBr(nbr, *n));
    fill(n->right.get(), KdRightBr(nbr, *n));
  };
  fill(node.root.get(), Box::UnitCube(options_.dim));
  auto sp = std::make_shared<const IndexNode>(std::move(node));
  // Two readers may race to deserialize the same page; first to publish
  // wins and both views are identical (the page is immutable while
  // readers run). Keep-first semantics match the serial path, where the
  // miss check above guarantees the slot is empty.
  WriterLock lock(&node_cache_mu_, concurrent_reads_);
  auto [it, inserted] = node_cache_.try_emplace(id, std::move(sp));
  return it->second;
}

void HybridTree::InvalidateCachedNode(PageId id) {
  WriterLock lock(&node_cache_mu_, concurrent_reads_);
  node_cache_.erase(id);
}

Status HybridTree::SetConcurrentReads(bool on) {
  // Mode flips happen between batches, under write exclusivity.
  ExclusiveRole role(&rw_contract_);
  if (on == concurrent_reads_) return Status::OK();
  HT_RETURN_NOT_OK(pool_->SetConcurrentMode(on));
  concurrent_reads_ = on;
  return Status::OK();
}

Status HybridTree::WriteIndexNode(PageId id, IndexNode& node) {
  InvalidateCachedNode(id);
  if (els_enabled()) EnsureCodes(node.root.get());
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  node.Serialize(h.data(), h.size(), els_in_page(), codec_.CodeBytes());
  h.MarkDirty();
  if (options_.els_mode == ElsMode::kInMemory && options_.els_bits > 0) {
    els_sidecar_[id] = node.ExtractElsBlob(codec_.CodeBytes());
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ELS helpers
// ---------------------------------------------------------------------------

void HybridTree::ReencodeSubtree(KdNode* n, const Box& old_br,
                                 const Box& new_br) {
  if (!els_enabled() || n == nullptr) return;
  if (n->IsLeaf()) {
    n->els = codec_.Reencode(n->els, old_br, new_br);
    return;
  }
  ReencodeSubtree(n->left.get(), KdLeftBr(old_br, *n), KdLeftBr(new_br, *n));
  ReencodeSubtree(n->right.get(), KdRightBr(old_br, *n),
                  KdRightBr(new_br, *n));
}

// ---------------------------------------------------------------------------
// Insertion
// ---------------------------------------------------------------------------

Status HybridTree::Insert(std::span<const float> point, uint64_t id) {
  ExclusiveRole role(&rw_contract_);
  AccessClassScope ac(AccessClass::kIngest);
  if (point.size() != options_.dim) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  for (float v : point) {
    if (!(v >= 0.0f && v <= 1.0f)) {
      return Status::InvalidArgument(
          "point outside the normalized feature space [0,1]^dim");
    }
  }
  const Box cube = Box::UnitCube(options_.dim);
  HT_ASSIGN_OR_RETURN(SplitResult s, InsertRec(root_, cube, point, id));
  if (s.split) {
    HT_RETURN_NOT_OK(GrowRoot(s));
  }
  ++count_;
  DebugValidate();
  return Status::OK();
}

Status HybridTree::GrowRoot(const SplitResult& s) {
  // Grow the tree: a new root whose kd-tree is a single split.
  const Box cube = Box::UnitCube(options_.dim);
  IndexNode new_root;
  new_root.level = static_cast<uint8_t>(height_ + 1);
  Box left_br = cube;
  if (s.lsp < left_br.hi(s.dim)) left_br.set_hi(s.dim, s.lsp);
  Box right_br = cube;
  if (s.rsp > right_br.lo(s.dim)) right_br.set_lo(s.dim, s.rsp);
  auto lleaf = KdNode::MakeLeaf(
      root_, els_enabled() ? codec_.Encode(s.left_live, left_br) : ElsCode{});
  auto rleaf = KdNode::MakeLeaf(
      s.right_page,
      els_enabled() ? codec_.Encode(s.right_live, right_br) : ElsCode{});
  new_root.root = KdNode::MakeInternal(s.dim, s.lsp, s.rsp, std::move(lleaf),
                                       std::move(rleaf));
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->New());
  const PageId new_root_page = h.id();
  h.Release();
  HT_RETURN_NOT_OK(WriteIndexNode(new_root_page, new_root));
  root_ = new_root_page;
  ++height_;
  return Status::OK();
}

Status HybridTree::InsertBatch(std::span<const float> points,
                               std::span<const uint64_t> ids) {
  ExclusiveRole role(&rw_contract_);
  AccessClassScope ac(AccessClass::kIngest);
  if (ids.empty()) return Status::OK();
  if (points.size() != ids.size() * options_.dim) {
    return Status::InvalidArgument(
        "InsertBatch: points.size() must equal ids.size() * dim");
  }
  // Whole-batch validation before any mutation, mirroring the WriteBatch
  // contract: a bad row cannot leave a half-applied batch behind.
  for (float v : points) {
    if (!(v >= 0.0f && v <= 1.0f)) {
      return Status::InvalidArgument(
          "point outside the normalized feature space [0,1]^dim");
    }
  }
  const Box cube = Box::UnitCube(options_.dim);
  std::vector<uint32_t> remaining(ids.size());
  std::iota(remaining.begin(), remaining.end(), 0u);
  // Every descent places at least one row before any split bubbles rows
  // back up, so this loop makes progress and terminates.
  while (!remaining.empty()) {
    HT_ASSIGN_OR_RETURN(
        BatchOutcome out,
        InsertBatchRec(root_, cube, points, ids, std::move(remaining)));
    if (out.split.split) {
      HT_RETURN_NOT_OK(GrowRoot(out.split));
    }
    remaining = std::move(out.leftovers);
  }
  DebugValidate();
  return Status::OK();
}

Result<HybridTree::BatchOutcome> HybridTree::InsertBatchRec(
    PageId page, const Box& br, std::span<const float> points,
    std::span<const uint64_t> ids, std::vector<uint32_t> idxs) {
  const auto row = [&](uint32_t i) {
    return points.subspan(static_cast<size_t>(i) * options_.dim,
                          options_.dim);
  };
  HT_ASSIGN_OR_RETURN(NodeKind kind, PeekKind(page));
  if (kind == NodeKind::kData) {
    // One deserialize + one serialize for the whole group, instead of one
    // round trip through the codec per point.
    HT_ASSIGN_OR_RETURN(DataNode node, ReadDataNode(page));
    BatchOutcome out;
    for (size_t k = 0; k < idxs.size(); ++k) {
      const auto p = row(idxs[k]);
      node.entries.push_back(
          DataEntry{ids[idxs[k]], std::vector<float>(p.begin(), p.end())});
      if (node.entries.size() > data_capacity_) {
        // Overflow at exactly the same occupancy as a serial Insert. The
        // not-yet-placed rows re-route through the caller against the two
        // new halves.
        HT_ASSIGN_OR_RETURN(out.split, SplitDataNode(page, node, br));
        count_ += k + 1;
        out.leftovers.assign(idxs.begin() + static_cast<ptrdiff_t>(k) + 1,
                             idxs.end());
        return out;
      }
    }
    HT_RETURN_NOT_OK(WriteDataNode(page, node));
    count_ += idxs.size();
    return out;
  }

  HT_ASSIGN_OR_RETURN(IndexNode node, ReadIndexNode(page));
  bool dirtied = false;
  BatchOutcome out;
  std::vector<uint32_t> pending = std::move(idxs);
  while (!pending.empty()) {
    // One routing pass buckets every pending row by its target kd leaf, so
    // each child page is read and re-serialized once per ROUND instead of
    // once per row. A child split replaces only its own bucket's leaf —
    // the other buckets' leaf pointers stay valid — so re-routing is
    // needed only for rows a split bounced back (the next round).
    std::vector<ChildRef> targets;
    std::vector<std::vector<uint32_t>> buckets;
    std::unordered_map<const KdNode*, size_t> bucket_of;
    for (uint32_t idx : pending) {
      const auto p = row(idx);
      ChildRef t = FindLeafForInsert(node, p, br, &dirtied);
      if (els_enabled()) {
        ElsCode grown = codec_.ExtendToInclude(t.leaf->els, t.kd_br, p);
        if (grown != t.leaf->els) {
          t.leaf->els = std::move(grown);
          dirtied = true;
        }
      }
      auto [it, fresh] = bucket_of.try_emplace(t.leaf, buckets.size());
      if (fresh) {
        targets.push_back(t);
        buckets.emplace_back();
      }
      buckets[it->second].push_back(idx);
    }
    std::vector<uint32_t> bounced;
    // A kd_br captured during routing can go stale: a later row's
    // gap-widening moves boundaries (and re-encodes ELS against the new
    // regions). Recompute each leaf's current region when its bucket is
    // processed, so split replacement clips against live geometry.
    auto kd_br_of = [&](const KdNode* leaf) -> Box {
      Box result = br;
      std::function<bool(const KdNode*, const Box&)> walk =
          [&](const KdNode* n, const Box& b) -> bool {
        if (n == leaf) {
          result = b;
          return true;
        }
        if (n->IsLeaf()) return false;
        return walk(n->left.get(), KdLeftBr(b, *n)) ||
               walk(n->right.get(), KdRightBr(b, *n));
      };
      walk(node.root.get(), br);
      return result;
    };
    for (size_t b = 0; b < buckets.size(); ++b) {
      KdNode* const target_leaf = targets[b].leaf;
      const Box target_br = kd_br_of(target_leaf);
      const PageId child_page = target_leaf->child;
      // Children interpret their own kd trees relative to the unit cube
      // (see InsertRec): node-local ELS reference regions cannot go stale.
      HT_ASSIGN_OR_RETURN(
          BatchOutcome cs,
          InsertBatchRec(child_page, Box::UnitCube(options_.dim), points, ids,
                         std::move(buckets[b])));
      if (cs.split.split) {
        // Replace the kd leaf by an internal node over the two halves.
        Box left_br = target_br;
        if (cs.split.lsp < left_br.hi(cs.split.dim)) {
          left_br.set_hi(cs.split.dim, cs.split.lsp);
        }
        Box right_br = target_br;
        if (cs.split.rsp > right_br.lo(cs.split.dim)) {
          right_br.set_lo(cs.split.dim, cs.split.rsp);
        }
        KdNode* leaf = target_leaf;
        leaf->left = KdNode::MakeLeaf(
            child_page,
            els_enabled() ? codec_.Encode(cs.split.left_live, left_br)
                          : ElsCode{});
        leaf->right = KdNode::MakeLeaf(
            cs.split.right_page,
            els_enabled() ? codec_.Encode(cs.split.right_live, right_br)
                          : ElsCode{});
        leaf->split_dim = cs.split.dim;
        leaf->lsp = cs.split.lsp;
        leaf->rsp = cs.split.rsp;
        leaf->child = kInvalidPageId;
        leaf->els.clear();
        dirtied = true;
      }
      bounced.insert(bounced.end(), cs.leftovers.begin(), cs.leftovers.end());
      if (node.SerializedSize(els_in_page()) > options_.page_size) {
        // This node must split; every not-yet-placed row — bounced ones
        // and whole unprocessed buckets — bubbles up and re-routes from
        // the caller once the split is applied there.
        HT_ASSIGN_OR_RETURN(out.split, SplitIndexNode(page, node, br));
        for (size_t rest = b + 1; rest < buckets.size(); ++rest) {
          bounced.insert(bounced.end(), buckets[rest].begin(),
                         buckets[rest].end());
        }
        out.leftovers = std::move(bounced);
        return out;
      }
    }
    pending = std::move(bounced);
  }
  if (dirtied) {
    HT_RETURN_NOT_OK(WriteIndexNode(page, node));
  }
  return out;
}

namespace {
/// Margin-based enlargement: total increase of side lengths needed for
/// `box` to cover `p`. Volume-based enlargement underflows to 0 beyond a
/// few dozen dimensions, margins stay informative at any dimensionality.
double MarginEnlargement(const Box& box, std::span<const float> p) {
  double grow = 0.0;
  for (uint32_t d = 0; d < box.dim(); ++d) {
    if (p[d] < box.lo(d)) grow += box.lo(d) - p[d];
    if (p[d] > box.hi(d)) grow += p[d] - box.hi(d);
  }
  return grow;
}
}  // namespace

ChildRef HybridTree::FindLeafForInsert(IndexNode& node,
                                       std::span<const float> p,
                                       const Box& node_br, bool* dirtied) {
  // §3.5: indexed subspaces are treated as BRs; the insertion target is the
  // child needing minimum enlargement, ties broken by BR size. Collect
  // every leaf whose kd region contains the point (overlaps can yield
  // several) and rank them by live-region enlargement. The candidates
  // buffer is a member reused across the insert descent (cleared, capacity
  // retained) instead of reallocating per visited node.
  std::vector<ChildRef>& candidates = insert_candidates_;
  candidates.clear();
  std::function<void(KdNode*, const Box&)> walk = [&](KdNode* n,
                                                      const Box& br) {
    if (n->IsLeaf()) {
      candidates.push_back(ChildRef{n, br});
      return;
    }
    const float v = p[n->split_dim];
    if (v <= n->lsp) walk(n->left.get(), KdLeftBr(br, *n));
    if (v >= n->rsp) walk(n->right.get(), KdRightBr(br, *n));
  };
  walk(node.root.get(), node_br);

  if (!candidates.empty()) {
    size_t best = 0;
    double best_grow = std::numeric_limits<double>::max();
    double best_margin = std::numeric_limits<double>::max();
    for (size_t i = 0; i < candidates.size(); ++i) {
      const Box live = els_enabled()
                           ? codec_.Decode(candidates[i].leaf->els,
                                           candidates[i].kd_br)
                           : candidates[i].kd_br;
      const double grow = MarginEnlargement(live, p);
      const double margin = live.Margin();
      if (std::tie(grow, margin) < std::tie(best_grow, best_margin)) {
        best_grow = grow;
        best_margin = margin;
        best = i;
      }
    }
    return candidates[best];
  }

  // The point fell into a kd gap (lsp < v < rsp) on every path: admit it by
  // minimally enlarging the nearer boundary — the 1-d specialization of the
  // minimum-enlargement rule. The widened subtree's kd regions change, so
  // its ELS codes are re-encoded against the new reference regions.
  KdNode* n = node.root.get();
  Box br = node_br;
  while (!n->IsLeaf()) {
    const uint32_t d = n->split_dim;
    const float v = p[d];
    const bool can_left = v <= n->lsp;
    const bool can_right = v >= n->rsp;
    if (!can_left && !can_right) {
      if (v - n->lsp <= n->rsp - v) {
        const Box old_br = KdLeftBr(br, *n);
        n->lsp = v;
        ReencodeSubtree(n->left.get(), old_br, KdLeftBr(br, *n));
      } else {
        const Box old_br = KdRightBr(br, *n);
        n->rsp = v;
        ReencodeSubtree(n->right.get(), old_br, KdRightBr(br, *n));
      }
      *dirtied = true;
      continue;  // re-evaluate with the widened boundary
    }
    bool go_left;
    if (can_left && can_right) {
      go_left = (n->lsp - v) >= (v - n->rsp);
    } else {
      go_left = can_left;
    }
    if (go_left) {
      br = KdLeftBr(br, *n);
      n = n->left.get();
    } else {
      br = KdRightBr(br, *n);
      n = n->right.get();
    }
  }
  return ChildRef{n, br};
}

Result<HybridTree::SplitResult> HybridTree::InsertRec(
    PageId page, const Box& br, std::span<const float> point, uint64_t id) {
  HT_ASSIGN_OR_RETURN(NodeKind kind, PeekKind(page));
  if (kind == NodeKind::kData) {
    HT_ASSIGN_OR_RETURN(DataNode node, ReadDataNode(page));
    node.entries.push_back(
        DataEntry{id, std::vector<float>(point.begin(), point.end())});
    if (node.entries.size() <= data_capacity_) {
      HT_RETURN_NOT_OK(WriteDataNode(page, node));
      return SplitResult{};
    }
    return SplitDataNode(page, node, br);
  }

  HT_ASSIGN_OR_RETURN(IndexNode node, ReadIndexNode(page));
  bool dirtied = false;
  ChildRef target = FindLeafForInsert(node, point, br, &dirtied);
  if (els_enabled()) {
    ElsCode grown =
        codec_.ExtendToInclude(target.leaf->els, target.kd_br, point);
    if (grown != target.leaf->els) {
      target.leaf->els = std::move(grown);
      dirtied = true;
    }
  }
  const PageId child_page = target.leaf->child;
  // Children interpret their own kd trees relative to the unit cube:
  // every page's ELS reference regions are node-local (see the class
  // comment), so ancestor boundary changes can never stale them.
  HT_ASSIGN_OR_RETURN(SplitResult cs,
                      InsertRec(child_page, Box::UnitCube(options_.dim),
                                point, id));
  if (cs.split) {
    // Replace the kd leaf by an internal node over the two halves.
    Box left_br = target.kd_br;
    if (cs.lsp < left_br.hi(cs.dim)) left_br.set_hi(cs.dim, cs.lsp);
    Box right_br = target.kd_br;
    if (cs.rsp > right_br.lo(cs.dim)) right_br.set_lo(cs.dim, cs.rsp);
    KdNode* leaf = target.leaf;
    leaf->left = KdNode::MakeLeaf(
        child_page,
        els_enabled() ? codec_.Encode(cs.left_live, left_br) : ElsCode{});
    leaf->right = KdNode::MakeLeaf(
        cs.right_page,
        els_enabled() ? codec_.Encode(cs.right_live, right_br) : ElsCode{});
    leaf->split_dim = cs.dim;
    leaf->lsp = cs.lsp;
    leaf->rsp = cs.rsp;
    leaf->child = kInvalidPageId;
    leaf->els.clear();
    dirtied = true;
  }
  if (node.SerializedSize(els_in_page()) > options_.page_size) {
    return SplitIndexNode(page, node, br);
  }
  if (dirtied) {
    HT_RETURN_NOT_OK(WriteIndexNode(page, node));
  }
  return SplitResult{};
}

Result<HybridTree::SplitResult> HybridTree::SplitDataNode(PageId page,
                                                          DataNode& node,
                                                          const Box& br) {
  // The EDA-optimal dimension is the one along which the node's bounding
  // region is widest (§3.2). The *live* BR (tight box over the stored
  // entries) is the operative region: the kd region also covers dead space
  // whose extent says nothing about where a split can separate data.
  (void)br;
  const Box live = node.ComputeLiveBr(options_.dim);
  DataSplit ds = ChooseDataSplit(live, node.entries, data_min_count_,
                                 options_.split_policy);
  DataNode left, right;
  left.entries.reserve(ds.left.size());
  right.entries.reserve(ds.right.size());
  for (uint32_t i : ds.left) left.entries.push_back(std::move(node.entries[i]));
  for (uint32_t i : ds.right) {
    right.entries.push_back(std::move(node.entries[i]));
  }
  HT_RETURN_NOT_OK(WriteDataNode(page, left));
  HT_ASSIGN_OR_RETURN(PageHandle rh, pool_->New());
  const PageId right_page = rh.id();
  right.Serialize(rh.data(), rh.size(), options_.dim);
  rh.MarkDirty();
  rh.Release();

  SplitResult out;
  out.split = true;
  out.dim = ds.dim;
  out.lsp = ds.pos;
  out.rsp = ds.pos;
  out.right_page = right_page;
  out.left_live = left.ComputeLiveBr(options_.dim);
  out.right_live = right.ComputeLiveBr(options_.dim);
  return out;
}

std::unique_ptr<KdNode> HybridTree::BuildKdTree(std::vector<ChildItem> items,
                                                const Box& region) {
  HT_CHECK(!items.empty());
  if (items.size() == 1) {
    return KdNode::MakeLeaf(items[0].page,
                            els_enabled() ? codec_.Encode(items[0].live, region)
                                          : ElsCode{});
  }
  // Partition by the children's live regions: dead space contributes
  // nothing to the expected accesses, and live boxes give tighter (often
  // overlap-free) split positions. When ELS is off, live == kd region.
  std::vector<Box> live_brs;
  live_brs.reserve(items.size());
  for (const auto& it : items) live_brs.push_back(it.live);
  // Internal kd rebuild aims at balance (1/3 per side) and may use any
  // dimension; unused dimensions price themselves out via full overlap.
  std::vector<uint32_t> all_dims(options_.dim);
  for (uint32_t d = 0; d < options_.dim; ++d) all_dims[d] = d;
  const size_t min_count = std::max<size_t>(1, items.size() / 3);
  IndexSplit is = ChooseIndexSplit(region, live_brs, min_count, all_dims,
                                   options_.split_policy,
                                   options_.query_size_model,
                                   options_.expected_query_side);
  Box left_region = region;
  if (is.parts.lsp < left_region.hi(is.dim)) {
    left_region.set_hi(is.dim, is.parts.lsp);
  }
  Box right_region = region;
  if (is.parts.rsp > right_region.lo(is.dim)) {
    right_region.set_lo(is.dim, is.parts.rsp);
  }
  std::vector<ChildItem> left_items, right_items;
  left_items.reserve(is.parts.left.size());
  right_items.reserve(is.parts.right.size());
  for (uint32_t i : is.parts.left) left_items.push_back(std::move(items[i]));
  for (uint32_t i : is.parts.right) right_items.push_back(std::move(items[i]));
  auto l = BuildKdTree(std::move(left_items), left_region);
  auto r = BuildKdTree(std::move(right_items), right_region);
  return KdNode::MakeInternal(is.dim, is.parts.lsp, is.parts.rsp, std::move(l),
                              std::move(r));
}

Result<HybridTree::SplitResult> HybridTree::SplitIndexNode(PageId page,
                                                           IndexNode& node,
                                                           const Box& br) {
  std::vector<ChildRef> kids;
  kids.reserve(node.NumChildren());
  node.CollectChildren(br, &kids);
  HT_CHECK(kids.size() >= 2);
  std::vector<Box> live_brs;
  std::vector<ChildItem> items;
  live_brs.reserve(kids.size());
  items.reserve(kids.size());
  for (const auto& kid : kids) {
    Box live = els_enabled() ? codec_.Decode(kid.leaf->els, kid.kd_br)
                             : kid.kd_br;
    live_brs.push_back(live);
    items.push_back(ChildItem{kid.leaf->child, kid.kd_br, std::move(live)});
  }
  const size_t min_count = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(options_.index_node_min_util *
                                       static_cast<double>(kids.size()))));
  // Lemma 1: restrict the split dimension to the dimensions already used
  // inside this node; the choice remains EDA-optimal and guarantees that
  // non-discriminating dimensions are never introduced. Children are
  // bipartitioned by their live regions (dead space has no access cost).
  const std::vector<uint32_t> candidates = node.UsedDims(options_.dim);
  IndexSplit is = ChooseIndexSplit(br, live_brs, min_count, candidates,
                                   options_.split_policy,
                                   options_.query_size_model,
                                   options_.expected_query_side);
  HT_CHECK(is.valid);

  // The two new nodes are separate pages; their kd trees are interpreted
  // relative to the unit cube (node-local ELS references), so the parent's
  // (lsp, rsp) clip must NOT be baked into the rebuilt regions.
  const Box local_base = Box::UnitCube(options_.dim);

  std::vector<ChildItem> left_items, right_items;
  Box left_live = Box::Empty(options_.dim);
  Box right_live = Box::Empty(options_.dim);
  for (uint32_t i : is.parts.left) {
    left_live.ExtendToInclude(items[i].live);
    left_items.push_back(std::move(items[i]));
  }
  for (uint32_t i : is.parts.right) {
    right_live.ExtendToInclude(items[i].live);
    right_items.push_back(std::move(items[i]));
  }

  IndexNode left;
  left.level = node.level;
  left.root = BuildKdTree(std::move(left_items), local_base);
  IndexNode right;
  right.level = node.level;
  right.root = BuildKdTree(std::move(right_items), local_base);
  HT_CHECK(left.SerializedSize(els_in_page()) <= options_.page_size);
  HT_CHECK(right.SerializedSize(els_in_page()) <= options_.page_size);

  HT_RETURN_NOT_OK(WriteIndexNode(page, left));
  HT_ASSIGN_OR_RETURN(PageHandle rh, pool_->New());
  const PageId right_page = rh.id();
  rh.Release();
  HT_RETURN_NOT_OK(WriteIndexNode(right_page, right));

  SplitResult out;
  out.split = true;
  out.dim = is.dim;
  out.lsp = is.parts.lsp;
  out.rsp = is.parts.rsp;
  out.right_page = right_page;
  out.left_live = std::move(left_live);
  out.right_live = std::move(right_live);
  return out;
}

// ---------------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------------

Result<std::vector<uint64_t>> HybridTree::SearchBox(const Box& query) const {
  std::vector<uint64_t> out;
  HT_RETURN_NOT_OK(SearchBoxInto(query, /*scratch=*/nullptr, &out));
  return out;
}

Status HybridTree::SearchBoxInto(const Box& query, SearchScratch* scratch,
                                 std::vector<uint64_t>* out) const {
  SharedRole role(&rw_contract_);
  if (query.dim() != options_.dim) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  out->clear();
  SearchScratch local;
  if (scratch == nullptr) scratch = &local;
  scratch->stack.clear();
  scratch->descents.clear();
  return SearchBoxRec(root_, query, /*contained=*/false, scratch, out);
}

Status HybridTree::SearchBoxRec(PageId page, const Box& query, bool contained,
                                SearchScratch* scratch,
                                std::vector<uint64_t>* out) const {
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(page));
  const NodeKind kind = PeekNodeKind(h.data());
  if (kind == NodeKind::kData) {
    DataPageScan scan(h.data(), h.size(), options_.dim);
    if (!scan.ok()) return Status::Corruption("expected data node page");
    const size_t n = scan.count();
    if (contained) {
      // Scan-level pruning: an ancestor's live box was fully inside the
      // query, so every entry qualifies — collect ids without per-point
      // containment tests.
      for (size_t i = 0; i < n; ++i) out->push_back(scan.id(i));
      return Status::OK();
    }
    for (size_t i = 0; i < n; ++i) {
      if (query.ContainsPoint(scan.vec(i))) out->push_back(scan.id(i));
    }
    return Status::OK();
  }
  HT_ASSIGN_OR_RETURN(std::shared_ptr<const IndexNode> node,
                      ReadIndexNodeCached(page, h.data(), h.size()));
  h.Release();

  // Intra-node search is 1-d interval tests on the kd tree (the paper's
  // CPU advantage); the §3.4 two-step check uses the leaf's precomputed
  // decoded live box. Iterative preorder (left first, matching the
  // recursive formulation) over the shared scratch stack: this level only
  // pops entries above its own base, so nested page descents can reuse the
  // same stack. Qualifying children are collected first and descended
  // second, so the whole batch can be prefetched in one round trip; the
  // descent order is the walk's preorder, keeping results byte-identical
  // with prefetch on or off.
  auto& stack = scratch->stack;
  auto& descents = scratch->descents;
  const size_t base = stack.size();
  const size_t dbase = descents.size();
  stack.push_back(node->root.get());
  while (stack.size() > base) {
    const KdNode* n = stack.back();
    stack.pop_back();
    if (n->IsLeaf()) {
      bool child_contained = contained;
      if (!contained) {
        if (els_enabled() && !query.Intersects(n->cached_live)) continue;
        // cached_live is the decoded live box (ELS on) or the kd region
        // (ELS off); either way all data below lies inside it, so full
        // containment lets the whole subtree skip per-point tests.
        child_contained = !options_.disable_batch_kernels &&
                          query.ContainsBox(n->cached_live);
      }
      descents.push_back(SearchScratch::Descent{n->child, child_contained});
      continue;
    }
    const uint32_t d = n->split_dim;
    // Push right before left so the left subtree is processed first.
    if (contained || query.hi(d) >= n->rsp) stack.push_back(n->right.get());
    if (contained || query.lo(d) <= n->lsp) stack.push_back(n->left.get());
  }
  if (options_.prefetch_depth > 0 && descents.size() - dbase > 1) {
    auto& ids = scratch->prefetch_ids;
    ids.clear();
    for (size_t i = dbase; i < descents.size(); ++i) {
      ids.push_back(descents[i].page);
    }
    pool_->Prefetch(ids);
  }
  for (size_t i = dbase; i < descents.size(); ++i) {
    const Status st = SearchBoxRec(descents[i].page, query,
                                   descents[i].contained, scratch, out);
    if (!st.ok()) {
      descents.resize(dbase);  // drop this level's pending entries
      return st;
    }
  }
  descents.resize(dbase);
  return Status::OK();
}

Result<std::vector<uint64_t>> HybridTree::SearchPoint(
    std::span<const float> point) const {
  if (point.size() != options_.dim) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  return SearchBox(Box::FromPoint(point));
}

Result<uint64_t> HybridTree::CountBox(const Box& query) const {
  HT_ASSIGN_OR_RETURN(auto ids, SearchBox(query));
  return static_cast<uint64_t>(ids.size());
}

Status HybridTree::ScanAll(
    const std::function<void(uint64_t, std::span<const float>)>& visit) const {
  SharedRole role(&rw_contract_);
  // A full sweep is the canonical one-touch stream: tag it kScan so the
  // SLRU pool admits its pages to the probationary segment only and the
  // query working set survives (see storage/buffer_pool.h).
  AccessClassScope ac(AccessClass::kScan);
  return ScanAllRec(root_, visit);
}

Status HybridTree::ScanAllRec(
    PageId page,
    const std::function<void(uint64_t, std::span<const float>)>& visit) const {
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(page));
  const NodeKind kind = PeekNodeKind(h.data());
  if (kind == NodeKind::kData) {
    DataPageScan scan(h.data(), h.size(), options_.dim);
    if (!scan.ok()) return Status::Corruption("expected data node page");
    for (size_t i = 0; i < scan.count(); ++i) {
      visit(scan.id(i), scan.vec(i));
    }
    return Status::OK();
  }
  HT_ASSIGN_OR_RETURN(std::shared_ptr<const IndexNode> node,
                      ReadIndexNodeCached(page, h.data(), h.size()));
  h.Release();
  // Read-ahead: an index node commits to visiting every child, so batch
  // the whole fanout into one prefetch round trip before descending
  // (bulk-loaded trees allocate children contiguously, so this coalesces
  // into sequential vectored reads).
  std::vector<PageId> children;
  std::function<void(const KdNode*)> collect = [&](const KdNode* n) {
    if (n->IsLeaf()) {
      children.push_back(n->child);
      return;
    }
    collect(n->left.get());
    collect(n->right.get());
  };
  collect(node->root.get());
  if (options_.prefetch_depth > 0 && children.size() > 1) {
    pool_->Prefetch(children);
  }
  for (PageId child : children) HT_RETURN_NOT_OK(ScanAllRec(child, visit));
  return Status::OK();
}

Result<std::vector<uint64_t>> HybridTree::SearchRange(
    std::span<const float> center, double radius,
    const DistanceMetric& metric) const {
  std::vector<uint64_t> out;
  HT_RETURN_NOT_OK(
      SearchRangeInto(center, radius, metric, /*scratch=*/nullptr, &out));
  return out;
}

Status HybridTree::SearchRangeInto(std::span<const float> center,
                                   double radius,
                                   const DistanceMetric& metric,
                                   SearchScratch* scratch,
                                   std::vector<uint64_t>* out) const {
  SharedRole role(&rw_contract_);
  if (center.size() != options_.dim) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  out->clear();
  SearchScratch local;
  if (scratch == nullptr) scratch = &local;
  scratch->stack.clear();
  scratch->descents.clear();
  return SearchRangeRec(root_, center, radius, metric, scratch, out);
}

namespace {

// Bounded distances for all `n` rows of a data page into `dist`. Prefers
// the sidecar's transposed float mirror (one contiguous load per dimension
// per block instead of a per-row gather); the count % kTBlock tail rows
// stay on the page block and are computed exactly. The mirror holds the
// same float values the page does and the kernels replay the same
// accumulation order, so the two paths agree bit-for-bit wherever the
// bound does not abandon a row — and an abandoned row's output (+inf) and
// its exact distance compare identically against any threshold <= bound.
void BatchPageDistances(const DistanceMetric& metric,
                        std::span<const float> center, const QuantizedPage* qp,
                        const float* blk, size_t stride, size_t n,
                        double bound, double* dist) {
  const size_t nblocks = qp != nullptr ? qp->full_blocks() : 0;
  if (nblocks > 0 && metric.BatchDistanceTransposedWithBound(
                         center, qp->tfloats(), nblocks, bound, dist)) {
    for (size_t i = nblocks * kernels::kTBlock; i < n; ++i) {
      dist[i] = metric.Distance(
          center, std::span<const float>(blk + i * stride, center.size()));
    }
    return;
  }
  metric.BatchDistanceWithBound(center, blk, stride, n, bound, dist);
}

}  // namespace

bool HybridTree::QuantFilter(PageId page, const float* blk, size_t stride,
                             size_t n, std::span<const float> center,
                             const DistanceMetric& metric, double bound,
                             SearchScratch* scratch,
                             std::shared_ptr<const QuantizedPage>* qp_out,
                             bool cursor_path) const {
  // At the scalar dispatch tier the sidecars are pure overhead: the scalar
  // code pass costs more per row than the early-abandoning exact scan it
  // would save, and the transposed float mirror only accelerates SIMD
  // loads. So a scalar-tier scan (no SIMD on this host, or HT_SIMD=scalar)
  // runs exactly the pre-sidecar hot path and builds nothing. A metric
  // with no code-space machinery (SupportsCodeFilter false, e.g. the
  // QuadraticForm fallback) takes the same exit BEFORE the sidecar lookup:
  // building codes it can never filter with would only fill QuantStore
  // with useless pages.
  if (!options_.quant_sidecars || blk == nullptr || n == 0 ||
      !metric.SupportsCodeFilter() ||
      kernels::ActiveTier() == kernels::SimdTier::kScalar) {
    pool_->CountScan(page, n, n, /*filtered=*/false, cursor_path);
    return false;
  }
  // The sidecar is fetched (and lazily built) even when code filtering is
  // off the table: its transposed mirror speeds up the exact batch pass
  // regardless of the bound.
  std::shared_ptr<const QuantizedPage> qp =
      quant_store_.GetOrBuild(page, blk, stride, n, options_.dim,
                              concurrent_reads_);
  if (qp_out != nullptr) *qp_out = qp;
  // Code filtering is pointless when the bound prunes nothing (k-NN heap
  // not yet full): every row would survive.
  if (qp == nullptr || bound >= std::numeric_limits<double>::max()) {
    pool_->CountScan(page, n, n, /*filtered=*/false, cursor_path);
    return false;
  }
  // Survivors in ascending row order, so refinement replays the exact
  // per-row decision sequence of the unfiltered scan.
  auto& surv = scratch->survivors;
  surv.clear();
  // Fast path: the fused mask kernels decide survival in-register and hand
  // back one bit per row — on a 99%-pruned scan the decode below touches
  // one mostly-zero byte per 8 rows instead of 8 double bounds.
  const size_t nmask = (n + kernels::kTBlock - 1) / kernels::kTBlock;
  if (scratch->masks.size() < nmask) scratch->masks.resize(nmask);
  if (metric.CodeFilterMasks(center, qp->view(), bound, &scratch->quant,
                             scratch->masks.data())) {
    for (size_t b = 0; b < nmask; ++b) {
      unsigned m = scratch->masks[b];
      while (m != 0) {
        surv.push_back(static_cast<uint32_t>(
            b * kernels::kTBlock + static_cast<size_t>(std::countr_zero(m))));
        m &= m - 1;
      }
    }
    pool_->CountScan(page, n, surv.size(), /*filtered=*/true, cursor_path);
    return true;
  }
  if (scratch->lb.size() < n) scratch->lb.resize(n);
  if (!metric.CodeLowerBounds(center, qp->view(), &scratch->quant,
                              scratch->lb.data())) {
    pool_->CountScan(page, n, n, /*filtered=*/false, cursor_path);
    return false;
  }
  const double* lb = scratch->lb.data();
  for (size_t i = 0; i < n; ++i) {
    if (lb[i] <= bound) surv.push_back(static_cast<uint32_t>(i));
  }
  pool_->CountScan(page, n, surv.size(), /*filtered=*/true, cursor_path);
  return true;
}

Status HybridTree::SearchRangeRec(PageId page, std::span<const float> center,
                                  double radius, const DistanceMetric& metric,
                                  SearchScratch* scratch,
                                  std::vector<uint64_t>* out) const {
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(page));
  const NodeKind kind = PeekNodeKind(h.data());
  if (kind == NodeKind::kData) {
    DataPageScan scan(h.data(), h.size(), options_.dim);
    if (!scan.ok()) return Status::Corruption("expected data node page");
    const size_t n = scan.count();
    const float* blk =
        options_.disable_batch_kernels ? nullptr : scan.block();
    std::shared_ptr<const QuantizedPage> qp;
    if (QuantFilter(page, blk, scan.stride_floats(), n, center, metric,
                    radius, scratch, &qp)) {
      // Pruned rows have lb > radius, hence distance > radius: they could
      // not have been reported. Survivors are tested exactly like the
      // unfiltered scan, so `out` is byte-identical. Sparse survivor sets
      // refine with per-row exact distances; dense ones fall back to the
      // full-page batch kernel (cheaper than many strided scalar rows).
      const auto& surv = scratch->survivors;
      if (surv.size() * 4 <= n) {
        for (const uint32_t i : surv) {
          if (metric.Distance(center, scan.vec(i)) <= radius) {
            out->push_back(scan.id(i));
          }
        }
      } else {
        if (scratch->dist.size() < n) scratch->dist.resize(n);
        BatchPageDistances(metric, center, qp.get(), blk,
                           scan.stride_floats(), n, radius,
                           scratch->dist.data());
        const double* dist = scratch->dist.data();
        for (const uint32_t i : surv) {
          if (dist[i] <= radius) out->push_back(scan.id(i));
        }
      }
      return Status::OK();
    }
    if (blk != nullptr) {
      // One virtual call per page; rows whose partial sum exceeds the
      // radius are abandoned (their output is > radius, which is all the
      // filter below looks at).
      if (scratch->dist.size() < n) scratch->dist.resize(n);
      BatchPageDistances(metric, center, qp.get(), blk, scan.stride_floats(),
                         n, radius, scratch->dist.data());
      const double* dist = scratch->dist.data();
      for (size_t i = 0; i < n; ++i) {
        if (dist[i] <= radius) out->push_back(scan.id(i));
      }
      return Status::OK();
    }
    for (size_t i = 0; i < n; ++i) {
      if (metric.Distance(center, scan.vec(i)) <= radius) {
        out->push_back(scan.id(i));
      }
    }
    return Status::OK();
  }
  HT_ASSIGN_OR_RETURN(std::shared_ptr<const IndexNode> node,
                      ReadIndexNodeCached(page, h.data(), h.size()));
  h.Release();

  // Pruning happens at the leaves' live boxes (MINDIST > radius); internal
  // kd nodes only route the left-first preorder walk. As in SearchBoxRec,
  // children are collected, batch-prefetched, then descended in preorder.
  auto& stack = scratch->stack;
  auto& descents = scratch->descents;
  const size_t base = stack.size();
  const size_t dbase = descents.size();
  stack.push_back(node->root.get());
  while (stack.size() > base) {
    const KdNode* n = stack.back();
    stack.pop_back();
    if (n->IsLeaf()) {
      if (metric.MinDistToBox(center, n->cached_live) > radius) continue;
      descents.push_back(SearchScratch::Descent{n->child, false});
      continue;
    }
    stack.push_back(n->right.get());
    stack.push_back(n->left.get());
  }
  if (options_.prefetch_depth > 0 && descents.size() - dbase > 1) {
    auto& ids = scratch->prefetch_ids;
    ids.clear();
    for (size_t i = dbase; i < descents.size(); ++i) {
      ids.push_back(descents[i].page);
    }
    pool_->Prefetch(ids);
  }
  for (size_t i = dbase; i < descents.size(); ++i) {
    const Status st = SearchRangeRec(descents[i].page, center, radius, metric,
                                     scratch, out);
    if (!st.ok()) {
      descents.resize(dbase);
      return st;
    }
  }
  descents.resize(dbase);
  return Status::OK();
}

Result<std::vector<std::pair<double, uint64_t>>> HybridTree::SearchKnn(
    std::span<const float> center, size_t k,
    const DistanceMetric& metric) const {
  return SearchKnnApprox(center, k, metric, /*epsilon=*/0.0);
}

Result<std::vector<std::pair<double, uint64_t>>> HybridTree::SearchKnnApprox(
    std::span<const float> center, size_t k, const DistanceMetric& metric,
    double epsilon) const {
  std::vector<std::pair<double, uint64_t>> out;
  HT_RETURN_NOT_OK(
      SearchKnnApproxInto(center, k, metric, epsilon, /*scratch=*/nullptr,
                          &out));
  return out;
}

Status HybridTree::SearchKnnInto(
    std::span<const float> center, size_t k, const DistanceMetric& metric,
    SearchScratch* scratch,
    std::vector<std::pair<double, uint64_t>>* out) const {
  return SearchKnnBoundedInto(center, k, metric, KnnSearchLimits{}, scratch,
                              out);
}

Status HybridTree::SearchKnnApproxInto(
    std::span<const float> center, size_t k, const DistanceMetric& metric,
    double epsilon, SearchScratch* scratch,
    std::vector<std::pair<double, uint64_t>>* out) const {
  KnnSearchLimits limits;
  limits.epsilon = epsilon;
  return SearchKnnBoundedInto(center, k, metric, limits, scratch, out);
}

Status HybridTree::SearchKnnBoundedInto(
    std::span<const float> center, size_t k, const DistanceMetric& metric,
    const KnnSearchLimits& limits, SearchScratch* scratch,
    std::vector<std::pair<double, uint64_t>>* out,
    KnnSearchInfo* info) const {
  SharedRole role(&rw_contract_);
  if (info != nullptr) *info = KnnSearchInfo{};
  if (center.size() != options_.dim) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  if (limits.epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be non-negative");
  }
  out->clear();
  if (k == 0 || count_ == 0) return Status::OK();
  SearchScratch local;
  if (scratch == nullptr) scratch = &local;
  const double epsilon = limits.epsilon;
  const double prune_factor = 1.0 + epsilon;
  const bool eps_active = epsilon > 0.0;
  // 0 = unlimited maps to a budget the visit counter can never reach, so
  // the exact path executes the identical instruction sequence with one
  // never-taken branch per leaf.
  const size_t max_leaves = limits.max_leaf_visits == 0
                                ? std::numeric_limits<size_t>::max()
                                : limits.max_leaf_visits;
  uint64_t leaf_visits = 0;
  bool early_terminated = false;
  const bool use_batch = !options_.disable_batch_kernels;

  // Best-first branch-and-bound (Hjaltason–Samet): a min-heap of pending
  // subtrees ordered by MINDIST to their live region, and a bounded
  // max-heap of the best k candidates seen so far. Both heaps live in the
  // scratch (vector-backed push_heap/pop_heap — operation-for-operation
  // identical to std::priority_queue, but the backing stores are reused
  // across queries).
  auto& frontier = scratch->frontier;
  frontier.clear();
  frontier.push_back(SearchScratch::PageRef{0.0, root_});
  const auto frontier_gt = [](const SearchScratch::PageRef& a,
                              const SearchScratch::PageRef& b) {
    return a.dist > b.dist;
  };

  auto& best = scratch->best;
  best.clear();
  auto kth = [&]() {
    return best.size() < k ? std::numeric_limits<double>::max()
                           : best.front().first;
  };
  auto offer = [&](double d, uint64_t id) {
    if (best.size() < k) {
      best.emplace_back(d, id);
      std::push_heap(best.begin(), best.end());
    } else if (d < best.front().first ||
               (d == best.front().first && id < best.front().second)) {
      std::pop_heap(best.begin(), best.end());
      best.back() = std::make_pair(d, id);
      std::push_heap(best.begin(), best.end());
    }
  };

  const size_t prefetch_depth = options_.prefetch_depth;
  const auto frontier_lt = [](const SearchScratch::PageRef& a,
                              const SearchScratch::PageRef& b) {
    return a.dist < b.dist;
  };

  while (!frontier.empty() && frontier.front().dist * prune_factor <= kth()) {
    std::pop_heap(frontier.begin(), frontier.end(), frontier_gt);
    const SearchScratch::PageRef item = frontier.back();
    frontier.pop_back();
    if (prefetch_depth > 0 && !pool_->Cached(item.page)) {
      // Frontier-driven prefetch: batch the popped page with the next-best
      // prefetch_depth frontier pages that survive the current prune bound
      // (they are the pages the traversal will pop next unless the bound
      // tightens). Gated on the popped page missing the pool: while the
      // traversal pops pages a previous batch brought in, no I/O is issued
      // at all, so blocking round trips collapse to roughly
      // pops / (depth + 1) instead of one per pop.
      auto& ids = scratch->prefetch_ids;
      ids.clear();
      ids.push_back(item.page);
      auto& top = scratch->prefetch_top;
      const size_t b = std::min(prefetch_depth, frontier.size());
      if (b > 0) {
        top.resize(b);
        std::partial_sort_copy(frontier.begin(), frontier.end(), top.begin(),
                               top.end(), frontier_lt);
        const double bound = kth();
        for (const auto& r : top) {
          if (r.dist * prune_factor <= bound) ids.push_back(r.page);
        }
      }
      pool_->Prefetch(ids);
    }
    HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(item.page));
    const NodeKind kind = PeekNodeKind(h.data());
    if (kind == NodeKind::kData) {
      DataPageScan scan(h.data(), h.size(), options_.dim);
      if (!scan.ok()) return Status::Corruption("expected data node page");
      const size_t n = scan.count();
      const float* blk = use_batch ? scan.block() : nullptr;
      std::shared_ptr<const QuantizedPage> qp;
      if (QuantFilter(item.page, blk, scan.stride_floats(), n, center, metric,
                      kth(), scratch, &qp)) {
        // A pruned row has lb > bound (the k-th distance at page entry),
        // hence a true distance strictly above every bound the heap will
        // hold during this page: its offer would have been a no-op — the
        // replacement test is a strict `<`, and the id tie-break needs
        // d == kth, excluded by strictness. Offering only the survivors
        // (ascending) therefore replays the exact heap evolution. Sparse
        // survivor sets refine row-by-row (Distance() accumulates exactly
        // like an unabandoned kernel row); dense ones rerun the full-page
        // kernel with the same entry bound the unfiltered scan would use.
        const auto& surv = scratch->survivors;
        if (surv.size() * 4 <= n) {
          for (const uint32_t i : surv) {
            offer(metric.Distance(center, scan.vec(i)), scan.id(i));
          }
        } else {
          if (scratch->dist.size() < n) scratch->dist.resize(n);
          BatchPageDistances(metric, center, qp.get(), blk,
                             scan.stride_floats(), n, kth(),
                             scratch->dist.data());
          const double* dist = scratch->dist.data();
          for (const uint32_t i : surv) offer(dist[i], scan.id(i));
        }
      } else if (blk != nullptr) {
        // The bound at page entry is the k-th distance before this page;
        // it can only shrink while scanning, so any row abandoned against
        // it could never have entered the heap (and while the heap is not
        // full the bound is +max, i.e. nothing is abandoned). The offers
        // below therefore make exactly the scalar path's decisions.
        if (scratch->dist.size() < n) scratch->dist.resize(n);
        BatchPageDistances(metric, center, qp.get(), blk, scan.stride_floats(),
                           n, kth(), scratch->dist.data());
        const double* dist = scratch->dist.data();
        for (size_t i = 0; i < n; ++i) offer(dist[i], scan.id(i));
      } else {
        for (size_t i = 0; i < n; ++i) {
          offer(metric.Distance(center, scan.vec(i)), scan.id(i));
        }
      }
      ++leaf_visits;
      if (leaf_visits >= max_leaves) {
        // Budget exhausted: stop with the best candidates so far. It
        // counts as early termination only if the frontier still holds a
        // subtree the exact traversal would have visited.
        early_terminated = !frontier.empty() && frontier.front().dist <= kth();
        break;
      }
      continue;
    }
    HT_ASSIGN_OR_RETURN(std::shared_ptr<const IndexNode> node,
                        ReadIndexNodeCached(item.page, h.data(), h.size()));
    h.Release();
    auto& stack = scratch->stack;
    stack.clear();
    stack.push_back(node->root.get());
    while (!stack.empty()) {
      const KdNode* n = stack.back();
      stack.pop_back();
      if (n->IsLeaf()) {
        const double d = metric.MinDistToBox(center, n->cached_live);
        if (d * prune_factor <= kth()) {
          frontier.push_back(SearchScratch::PageRef{d, n->child});
          std::push_heap(frontier.begin(), frontier.end(), frontier_gt);
        } else if (eps_active && d <= kth()) {
          // The epsilon rule skipped a subtree the exact gate would have
          // admitted — the result is now (1+epsilon)-approximate.
          early_terminated = true;
        }
        continue;
      }
      // Left first (preorder), matching the recursive formulation so the
      // frontier receives pushes in the same order.
      stack.push_back(n->right.get());
      stack.push_back(n->left.get());
    }
  }
  // Natural loop exit under epsilon: if the frontier's best subtree passes
  // the exact gate but failed the epsilon gate, the stop was approximate.
  if (eps_active && !frontier.empty() && frontier.front().dist <= kth()) {
    early_terminated = true;
  }
  if (info != nullptr) {
    info->leaf_visits = leaf_visits;
    info->early_terminated = early_terminated;
  }

  out->resize(best.size());
  for (size_t i = best.size(); i-- > 0;) {
    (*out)[i] = best.front();
    std::pop_heap(best.begin(), best.end());
    best.pop_back();
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Deletion
// ---------------------------------------------------------------------------

Status HybridTree::Delete(std::span<const float> point, uint64_t id) {
  ExclusiveRole role(&rw_contract_);
  AccessClassScope ac(AccessClass::kIngest);
  if (point.size() != options_.dim) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  HT_ASSIGN_OR_RETURN(
      DeleteOutcome outcome,
      DeleteRec(root_, Box::UnitCube(options_.dim), point, id));
  if (!outcome.found) {
    return Status::NotFound("no entry matches (point, id)");
  }
  --count_;

  if (outcome.eliminate_me) {
    // The root itself collapsed. Reset it to an empty data node and
    // reinsert the orphans below.
    DataNode empty;
    HT_RETURN_NOT_OK(WriteDataNode(root_, empty));
    els_sidecar_.erase(root_);
    InvalidateCachedNode(root_);
    height_ = 0;
  } else {
    // Shrink the tree while the root is an index node with one child.
    for (;;) {
      HT_ASSIGN_OR_RETURN(NodeKind kind, PeekKind(root_));
      if (kind != NodeKind::kIndex) break;
      HT_ASSIGN_OR_RETURN(IndexNode node, ReadIndexNode(root_));
      if (!node.root->IsLeaf()) break;
      const PageId child = node.root->child;
      els_sidecar_.erase(root_);
      InvalidateCachedNode(root_);
      quant_store_.Invalidate(root_);
      HT_RETURN_NOT_OK(pool_->Free(root_));
      root_ = child;
      --height_;
    }
  }

  // Reinsert orphans from eliminated nodes (eliminate-and-reinsert, §3.5).
  count_ -= outcome.orphans.size();
  for (auto& e : outcome.orphans) {
    HT_RETURN_NOT_OK(Insert(e.vec, e.id));
  }
  DebugValidate();
  return Status::OK();
}

Result<HybridTree::DeleteOutcome> HybridTree::DeleteRec(
    PageId page, const Box& br, std::span<const float> point, uint64_t id) {
  HT_ASSIGN_OR_RETURN(NodeKind kind, PeekKind(page));
  DeleteOutcome out;
  if (kind == NodeKind::kData) {
    HT_ASSIGN_OR_RETURN(DataNode node, ReadDataNode(page));
    for (size_t i = 0; i < node.entries.size(); ++i) {
      const auto& e = node.entries[i];
      if (e.id == id && std::equal(e.vec.begin(), e.vec.end(), point.begin(),
                                   point.end())) {
        node.entries.erase(node.entries.begin() + static_cast<long>(i));
        out.found = true;
        break;
      }
    }
    if (!out.found) return out;
    const bool is_root = (page == root_);
    if (!is_root && node.entries.size() < data_min_count_) {
      out.eliminate_me = true;
      out.orphans = std::move(node.entries);
    } else {
      HT_RETURN_NOT_OK(WriteDataNode(page, node));
    }
    return out;
  }

  HT_ASSIGN_OR_RETURN(IndexNode node, ReadIndexNode(page));
  std::vector<ChildRef> kids;
  kids.reserve(node.NumChildren());
  node.CollectChildren(br, &kids);
  for (const auto& kid : kids) {
    if (!kid.kd_br.ContainsPoint(point)) continue;
    if (els_enabled()) {
      const Box live = codec_.Decode(kid.leaf->els, kid.kd_br);
      if (!live.ContainsPoint(point)) continue;
    }
    HT_ASSIGN_OR_RETURN(
        DeleteOutcome child,
        DeleteRec(kid.leaf->child, Box::UnitCube(options_.dim), point, id));
    if (!child.found) continue;
    out.found = true;
    out.orphans = std::move(child.orphans);
    if (child.eliminate_me) {
      els_sidecar_.erase(kid.leaf->child);
      InvalidateCachedNode(kid.leaf->child);
      quant_store_.Invalidate(kid.leaf->child);
      HT_RETURN_NOT_OK(pool_->Free(kid.leaf->child));
      if (kid.leaf == node.root.get()) {
        // Last child gone: eliminate this node too (parent frees the page).
        out.eliminate_me = true;
        return out;
      }
      HT_CHECK(RemoveKdLeaf(node, br, kid.leaf));
    }
    HT_RETURN_NOT_OK(WriteIndexNode(page, node));
    return out;
  }
  return out;
}

bool HybridTree::RemoveKdLeaf(IndexNode& node, const Box& node_br,
                              KdNode* target) {
  std::function<bool(std::unique_ptr<KdNode>&, const Box&)> rec =
      [&](std::unique_ptr<KdNode>& n, const Box& br) -> bool {
    if (n->IsLeaf()) return false;
    if (n->left.get() == target) {
      // The sibling subtree inherits the whole parent region (its leaf
      // regions widen); re-map its ELS codes.
      const Box old_br = KdRightBr(br, *n);
      auto sib = std::move(n->right);
      ReencodeSubtree(sib.get(), old_br, br);
      n = std::move(sib);
      return true;
    }
    if (n->right.get() == target) {
      const Box old_br = KdLeftBr(br, *n);
      auto sib = std::move(n->left);
      ReencodeSubtree(sib.get(), old_br, br);
      n = std::move(sib);
      return true;
    }
    return rec(n->left, KdLeftBr(br, *n)) || rec(n->right, KdRightBr(br, *n));
  };
  if (node.root.get() == target) return false;
  return rec(node.root, node_br);
}

// ---------------------------------------------------------------------------
// Maintenance: ELS rebuild, stats, invariants
// ---------------------------------------------------------------------------

Status HybridTree::RebuildEls() {
  ExclusiveRole role(&rw_contract_);
  AccessClassScope ac(AccessClass::kScan);
  if (!els_enabled()) return Status::OK();
  HT_ASSIGN_OR_RETURN(Box live,
                      RebuildElsRec(root_, Box::UnitCube(options_.dim)));
  (void)live;
  DebugValidate();
  return Status::OK();
}

Result<Box> HybridTree::RebuildElsRec(PageId page, const Box& br) {
  HT_ASSIGN_OR_RETURN(NodeKind kind, PeekKind(page));
  if (kind == NodeKind::kData) {
    HT_ASSIGN_OR_RETURN(DataNode node, ReadDataNode(page));
    return node.ComputeLiveBr(options_.dim);
  }
  HT_ASSIGN_OR_RETURN(IndexNode node, ReadIndexNode(page));
  Box node_live = Box::Empty(options_.dim);
  // Read-ahead for the Open()-path DFS: every child will be visited, so
  // batch the fanout into one round trip before recursing.
  if (options_.prefetch_depth > 0) {
    std::vector<PageId> children;
    std::function<void(const KdNode*)> collect = [&](const KdNode* n) {
      if (n->IsLeaf()) {
        children.push_back(n->child);
        return;
      }
      collect(n->left.get());
      collect(n->right.get());
    };
    collect(node.root.get());
    if (children.size() > 1) pool_->Prefetch(children);
  }
  HT_RETURN_NOT_OK(RebuildElsKd(node.root.get(), br, &node_live));
  HT_RETURN_NOT_OK(WriteIndexNode(page, node));
  return node_live;
}

Status HybridTree::RebuildElsKd(KdNode* n, const Box& nbr, Box* node_live) {
  if (n->IsLeaf()) {
    HT_ASSIGN_OR_RETURN(Box child_live,
                        RebuildElsRec(n->child, Box::UnitCube(options_.dim)));
    n->els = codec_.Encode(child_live, nbr);
    node_live->ExtendToInclude(child_live);
    return Status::OK();
  }
  HT_RETURN_NOT_OK(RebuildElsKd(n->left.get(), KdLeftBr(nbr, *n), node_live));
  return RebuildElsKd(n->right.get(), KdRightBr(nbr, *n), node_live);
}

Result<TreeStats> HybridTree::ComputeStats() {
  ExclusiveRole role(&rw_contract_);
  AccessClassScope ac(AccessClass::kScan);
  TreeStats stats;
  stats.entry_count = count_;
  stats.height = height_;
  double data_util_sum = 0.0;
  HT_RETURN_NOT_OK(ComputeStatsRec(root_, Box::UnitCube(options_.dim), &stats,
                                   &data_util_sum));
  if (stats.data_nodes > 0) {
    stats.avg_data_utilization =
        data_util_sum / static_cast<double>(stats.data_nodes);
  }
  if (stats.index_nodes > 0) {
    stats.avg_index_fanout /= static_cast<double>(stats.index_nodes);
  }
  if (stats.overlapping_kd_splits > 0) {
    stats.avg_overlap_fraction /=
        static_cast<double>(stats.overlapping_kd_splits);
  }
  for (const auto& [pid, blob] : els_sidecar_) {
    stats.els_sidecar_bytes += blob.size();
  }
  std::sort(stats.levels.begin(), stats.levels.end(),
            [](const LevelStats& a, const LevelStats& b) {
              return a.level > b.level;
            });
  for (auto& lv : stats.levels) {
    lv.avg_fanout = lv.nodes
                        ? static_cast<double>(lv.children) /
                              static_cast<double>(lv.nodes)
                        : 0.0;
  }
  return stats;
}

Status HybridTree::ComputeStatsRec(PageId page, const Box& br,
                                   TreeStats* stats, double* data_util_sum) {
  HT_ASSIGN_OR_RETURN(NodeKind kind, PeekKind(page));
  auto level_slot = [&](uint32_t level) -> LevelStats& {
    for (auto& lv : stats->levels) {
      if (lv.level == level) return lv;
    }
    stats->levels.push_back(LevelStats{level, 0, 0, 0.0});
    return stats->levels.back();
  };
  if (kind == NodeKind::kData) {
    HT_ASSIGN_OR_RETURN(DataNode node, ReadDataNode(page));
    LevelStats& lv = level_slot(0);
    ++lv.nodes;
    lv.children += node.entries.size();
    ++stats->data_nodes;
    const double util = static_cast<double>(node.entries.size()) /
                        static_cast<double>(data_capacity_);
    *data_util_sum += util;
    if (page != root_ && util < stats->min_data_utilization) {
      stats->min_data_utilization = util;
    }
    return Status::OK();
  }
  HT_ASSIGN_OR_RETURN(IndexNode node, ReadIndexNode(page));
  ++stats->index_nodes;
  LevelStats& lv = level_slot(node.level);
  ++lv.nodes;
  lv.children += node.NumChildren();
  stats->avg_index_fanout += static_cast<double>(node.NumChildren());
  return ComputeStatsKd(node.root.get(), br, stats, data_util_sum);
}

Status HybridTree::ComputeStatsKd(const KdNode* n, const Box& nbr,
                                  TreeStats* stats, double* data_util_sum) {
  if (n->IsLeaf()) {
    return ComputeStatsRec(n->child, Box::UnitCube(options_.dim), stats,
                           data_util_sum);
  }
  ++stats->kd_internal_nodes;
  if (n->lsp > n->rsp) {
    ++stats->overlapping_kd_splits;
    const double extent = nbr.Extent(n->split_dim);
    if (extent > 0) {
      stats->avg_overlap_fraction +=
          (static_cast<double>(n->lsp) - n->rsp) / extent;
    }
  }
  HT_RETURN_NOT_OK(ComputeStatsKd(n->left.get(), KdLeftBr(nbr, *n), stats,
                                  data_util_sum));
  return ComputeStatsKd(n->right.get(), KdRightBr(nbr, *n), stats,
                        data_util_sum);
}

Status HybridTree::CheckInvariants() {
  AccessClassScope ac(AccessClass::kScan);
  // The checks live in TreeValidator (src/core/validator.h), which is
  // strictly stronger than the old in-class walk: it also verifies ELS
  // conservativeness against exact subtree live boxes, the codec
  // round-trip contract, child-page uniqueness, and pin accounting.
  TreeValidator validator(this);
  return validator.Validate();
}

void HybridTree::DebugValidate() {
#ifdef HT_DEBUG_VALIDATE
  TreeValidator validator(this);
  HT_CHECK_OK(validator.Validate());
#endif
}

Status HybridTree::CollectSubtreeEntries(PageId page,
                                         std::vector<DataEntry>* out,
                                         std::vector<PageId>* pages) {
  pages->push_back(page);
  HT_ASSIGN_OR_RETURN(NodeKind kind, PeekKind(page));
  if (kind == NodeKind::kData) {
    HT_ASSIGN_OR_RETURN(DataNode node, ReadDataNode(page));
    for (auto& e : node.entries) out->push_back(std::move(e));
    return Status::OK();
  }
  HT_ASSIGN_OR_RETURN(IndexNode node, ReadIndexNode(page));
  std::vector<ChildRef> kids;
  kids.reserve(node.NumChildren());
  node.CollectChildren(Box::UnitCube(options_.dim), &kids);
  for (const auto& kid : kids) {
    HT_RETURN_NOT_OK(CollectSubtreeEntries(kid.leaf->child, out, pages));
  }
  return Status::OK();
}


HybridTree::KnnCursor::KnnCursor(const HybridTree* tree,
                                 std::span<const float> center,
                                 const DistanceMetric* metric,
                                 const KnnCursorOptions& opts)
    : tree_(tree),
      center_(center.begin(), center.end()),
      metric_(metric),
      opts_(opts) {
  if (opts_.limit > 0) best_.reserve(opts_.limit);
  if (tree_->count_ > 0) {
    queue_.push(Item{0.0, false, 0, tree_->root_});
  }
}

double HybridTree::KnnCursor::SelfBound() const {
  return (opts_.limit > 0 && best_.size() == opts_.limit)
             ? best_.front()
             : std::numeric_limits<double>::max();
}

double HybridTree::KnnCursor::ScanBound() const {
  double b = SelfBound();
  if (opts_.shared_bound != nullptr) {
    // Relaxed: a monotonically tightening pruning hint with no associated
    // data — a stale (too large) radius only weakens pruning, never
    // correctness (the same contract as serve's SharedTopK bound mirror).
    b = std::min(b, opts_.shared_bound->load(std::memory_order_relaxed));
  }
  return b;
}

double HybridTree::KnnCursor::ExpandBound() const {
  // With an approximation knob active, WHICH leaves get scanned decides
  // the result (the budget truncates the stream), so expansion may only
  // consult the deterministic self bound — never the racy cross-shard
  // radius. In fully exact mode any sound bound is fair game: a pruned
  // subtree provably cannot contribute to the declared-limit prefix.
  if (opts_.epsilon == 0.0 && opts_.max_leaf_visits == 0) return ScanBound();
  return SelfBound();
}

void HybridTree::KnnCursor::RecordEntry(double d) {
  if (opts_.limit == 0) return;
  if (best_.size() < opts_.limit) {
    best_.push_back(d);
    std::push_heap(best_.begin(), best_.end());
  } else if (d < best_.front()) {
    std::pop_heap(best_.begin(), best_.end());
    best_.back() = d;
    std::push_heap(best_.begin(), best_.end());
  }
}

HybridTree::KnnCursor HybridTree::OpenKnnCursor(
    std::span<const float> center, const DistanceMetric& metric) const {
  return OpenKnnCursor(center, metric, KnnCursorOptions{});
}

HybridTree::KnnCursor HybridTree::OpenKnnCursor(
    std::span<const float> center, const DistanceMetric& metric,
    const KnnCursorOptions& opts) const {
  HT_CHECK(center.size() == options_.dim);
  HT_CHECK(opts.epsilon >= 0.0);
  return KnnCursor(this, center, &metric, opts);
}

Status HybridTree::ScanDataPageForCursor(KnnCursor* cursor, PageId page,
                                         const uint8_t* data,
                                         size_t size) const {
  DataPageScan scan(data, size, options_.dim);
  if (!scan.ok()) return Status::Corruption("expected data node page");
  const size_t n = scan.count();
  const float* blk = options_.disable_batch_kernels ? nullptr : scan.block();
  const DistanceMetric& metric = *cursor->metric_;
  const std::span<const float> center(cursor->center_);
  // The running bound at page entry: the cursor's own k-th distance,
  // tightened by the shared cross-shard radius. An entry strictly beyond
  // it can never be used by a consumer honoring the declared limit (there
  // are already `limit` entries at or under the bound, all emitted first),
  // so it is pruned; ties at the bound are kept so downstream id
  // tie-breaking sees every boundary candidate. With no declared bound
  // this is +inf: every entry is enqueued with its exact distance — the
  // legacy cursor scan, bit for bit.
  const double bound = cursor->ScanBound();
  SearchScratch* scratch = &cursor->scratch_;
  const auto push_entry = [&](double d, uint64_t id) {
    if (d <= bound) {
      cursor->RecordEntry(d);
      cursor->queue_.push(KnnCursor::Item{d, true, id, kInvalidPageId});
    }
  };
  std::shared_ptr<const QuantizedPage> qp;
  if (QuantFilter(page, blk, scan.stride_floats(), n, center, metric, bound,
                  scratch, &qp, /*cursor_path=*/true)) {
    // A pruned row has lb > bound, hence a true distance strictly above
    // the bound: push_entry would have dropped it anyway. Refinement
    // mirrors the batch k-NN path: sparse survivor sets row-by-row, dense
    // ones through the full-page kernel with the same entry bound.
    const auto& surv = scratch->survivors;
    if (surv.size() * 4 <= n) {
      for (const uint32_t i : surv) {
        push_entry(metric.Distance(center, scan.vec(i)), scan.id(i));
      }
    } else {
      if (scratch->dist.size() < n) scratch->dist.resize(n);
      BatchPageDistances(metric, center, qp.get(), blk, scan.stride_floats(),
                         n, bound, scratch->dist.data());
      const double* dist = scratch->dist.data();
      for (const uint32_t i : surv) push_entry(dist[i], scan.id(i));
    }
    return Status::OK();
  }
  if (blk != nullptr) {
    // Unfiltered batch scan. With an infinite bound the kernels never
    // abandon a row, so the distances match the unbounded batch kernel
    // bit for bit; with a finite bound an abandoned row's +inf output and
    // its exact distance make the same push_entry decision.
    if (scratch->dist.size() < n) scratch->dist.resize(n);
    BatchPageDistances(metric, center, qp.get(), blk, scan.stride_floats(), n,
                       bound, scratch->dist.data());
    const double* dist = scratch->dist.data();
    for (size_t i = 0; i < n; ++i) push_entry(dist[i], scan.id(i));
  } else {
    for (size_t i = 0; i < n; ++i) {
      push_entry(metric.Distance(center, scan.vec(i)), scan.id(i));
    }
  }
  return Status::OK();
}

Result<std::optional<std::pair<double, uint64_t>>>
HybridTree::KnnCursor::Next() {
  // The cursor is a read-path client: each pull runs under the tree's
  // shared role (the caller must not mutate the tree between pulls).
  SharedRole role(&tree_->rw_contract_);
  const size_t max_leaves = opts_.max_leaf_visits == 0
                                ? std::numeric_limits<size_t>::max()
                                : opts_.max_leaf_visits;
  // Distance browsing: entries and subtrees share one priority queue keyed
  // by (lower-bound) distance; when an entry surfaces, its distance is
  // exact and no unexpanded subtree can beat it.
  while (!queue_.empty()) {
    const Item item = queue_.top();
    if (item.is_entry) {
      queue_.pop();
      return std::optional<std::pair<double, uint64_t>>(
          std::make_pair(item.dist, item.id));
    }
    if (leaf_visits_ >= max_leaves) {
      // Visit budget exhausted: no further page may be scanned, so every
      // pending subtree is dead — only already-materialized entries flow
      // out. (Unreachable without a budget.)
      queue_.pop();
      if (item.dist <= SelfBound()) early_terminated_ = true;
      continue;
    }
    const double eb = ExpandBound();
    if (item.dist * (1.0 + opts_.epsilon) > eb) {
      // Pruned subtree. In exact mode everything below it lies strictly
      // beyond the running bound (its entries would all be dropped at scan
      // time), so the declared-limit prefix is unchanged; with epsilon > 0
      // this is the (1+epsilon)-approximate skip.
      queue_.pop();
      if (opts_.epsilon > 0.0 && item.dist <= eb) early_terminated_ = true;
      continue;
    }
    queue_.pop();
    HT_ASSIGN_OR_RETURN(PageHandle h, tree_->pool_->Fetch(item.page));
    const NodeKind kind = PeekNodeKind(h.data());
    if (kind == NodeKind::kData) {
      ++leaf_visits_;
      HT_RETURN_NOT_OK(
          tree_->ScanDataPageForCursor(this, item.page, h.data(), h.size()));
      continue;
    }
    HT_ASSIGN_OR_RETURN(
        std::shared_ptr<const IndexNode> node,
        tree_->ReadIndexNodeCached(item.page, h.data(), h.size()));
    h.Release();
    stack_.clear();
    stack_.push_back(node->root.get());
    while (!stack_.empty()) {
      const KdNode* n = stack_.back();
      stack_.pop_back();
      if (n->IsLeaf()) {
        const double d = metric_->MinDistToBox(center_, n->cached_live);
        if (d * (1.0 + opts_.epsilon) <= eb) {
          queue_.push(Item{d, false, 0, n->child});
        } else if (opts_.epsilon > 0.0 && d <= eb) {
          early_terminated_ = true;
        }
        continue;
      }
      stack_.push_back(n->right.get());
      stack_.push_back(n->left.get());
    }
  }
  return std::optional<std::pair<double, uint64_t>>();
}

void HybridTree::DumpTree() {
  // Uses the mutating node readers (exact on-disk view, no cache fill), so
  // it runs under the exclusive role like any other maintenance pass.
  ExclusiveRole role(&rw_contract_);
  DumpTreeRec(root_, Box::UnitCube(options_.dim), 0);
}

void HybridTree::DumpTreeRec(PageId page, const Box& br, int depth) {
  auto kind = PeekKind(page).ValueOrDie();
  if (kind == NodeKind::kData) {
    auto node = ReadDataNode(page).ValueOrDie();
    std::printf("%*sdata page=%u n=%zu live=%s region=%s\n", depth * 2, "",
                page, node.entries.size(),
                node.ComputeLiveBr(options_.dim).ToString().c_str(),
                br.ToString().c_str());
    return;
  }
  auto node = ReadIndexNode(page).ValueOrDie();
  std::printf("%*sindex page=%u level=%d children=%zu region=%s\n",
              depth * 2, "", page, node.level, node.NumChildren(),
              br.ToString().c_str());
  std::vector<ChildRef> kids;
  node.CollectChildren(br, &kids);
  for (auto& kid : kids) {
    Box live = els_enabled() ? codec_.Decode(kid.leaf->els, kid.kd_br)
                             : kid.kd_br;
    std::printf("%*s-> child=%u kd=%s els=%s\n", depth * 2 + 1, "",
                kid.leaf->child, kid.kd_br.ToString().c_str(),
                live.ToString().c_str());
    DumpTreeRec(kid.leaf->child, Box::UnitCube(options_.dim), depth + 1);
  }
}

}  // namespace ht
