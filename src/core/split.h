// Copyright 2026 The HybridTree Authors.
// Node-splitting algorithms (§3.2 data nodes, §3.3 index nodes).
//
// Both splits minimize the increase in the expected number of disk
// accesses (EDA) under uniformly distributed box queries:
//   * data nodes split cleanly, so the EDA increase along dimension d is
//     r / (s_d + r) — minimized by the maximum-extent dimension,
//     independent of the query side r and of the data distribution;
//   * index nodes may need overlap w_d >= 0, giving (w_d + r)/(s_d + r),
//     which depends on r; the split pre-computes the best (lsp, rsp) per
//     dimension with the 1-d bipartition algorithm, then picks the
//     dimension with the least expected cost under the query-size model.

#pragma once

#include <cstdint>
#include <vector>

#include "core/node.h"
#include "core/options.h"
#include "geometry/box.h"

namespace ht {

// ---------------------------------------------------------------------------
// Data node splits
// ---------------------------------------------------------------------------

struct DataSplit {
  uint32_t dim = 0;
  /// Clean split position: lsp == rsp == pos. Entries with v <= pos go
  /// left; v > pos go right (except in the degenerate duplicate case, where
  /// assignment is by the index sets below).
  float pos = 0.0f;
  std::vector<uint32_t> left;   // entry indices
  std::vector<uint32_t> right;  // entry indices
  /// True when the node could not be split cleanly by value (all entries
  /// identical along every usable dimension); the partition is then by
  /// count and the two BRs coincide at `pos`.
  bool degenerate = false;
};

/// Chooses the split for an over-full data node. `br` is the node's kd
/// region, `min_count` the utilization floor per side (>= 1).
/// kEdaOptimal: max-extent dimension, position closest to the middle of the
/// BR extent; kVamSplit: max-variance dimension, position closest to the
/// median.
DataSplit ChooseDataSplit(const Box& br, const std::vector<DataEntry>& entries,
                          size_t min_count, SplitPolicy policy);

// ---------------------------------------------------------------------------
// Index node splits
// ---------------------------------------------------------------------------

/// A 1-d projection of a child's kd region on a candidate split dimension.
struct Segment {
  float lo = 0.0f;
  float hi = 0.0f;
};

struct Bipartition {
  std::vector<uint32_t> left;   // segment indices
  std::vector<uint32_t> right;  // segment indices
  float lsp = 0.0f;             // max hi over the left group
  float rsp = 0.0f;             // min lo over the right group
  double overlap = 0.0;         // max(0, lsp - rsp)
};

/// The paper's O(n log n) 1-d bipartitioning (§3.3): sort segments by left
/// boundary ascending and right boundary descending; alternately draw from
/// the two lists into the left/right groups until each holds `min_count`;
/// distribute the remainder to whichever group needs the least elongation.
Bipartition BipartitionSegments(const std::vector<Segment>& segs,
                                size_t min_count);

/// Expected EDA increase of splitting with overlap `w` along a dimension of
/// extent `s`, under the given query-size model (`r` used when fixed):
/// fixed:    (w + r) / (s + r)
/// uniform:  integral_0^1 (w+r)/(s+r) dr = 1 + (w - s) ln((s+1)/s)
double IndexSplitCost(double s, double w, QuerySizeModel model, double r);

struct IndexSplit {
  uint32_t dim = 0;
  Bipartition parts;
  bool valid = false;
};

/// Chooses the split dimension + bipartition for an over-full index node.
/// `child_brs` are the children's kd regions inside `br`; `candidate_dims`
/// is the set D_n of dimensions used inside the node (Lemma 1 — restricting
/// to D_n is still EDA-optimal and guarantees implicit elimination of
/// non-discriminating dimensions); kVamSplit instead picks the dimension
/// with maximal variance of the children's centers.
IndexSplit ChooseIndexSplit(const Box& br, const std::vector<Box>& child_brs,
                            size_t min_count,
                            const std::vector<uint32_t>& candidate_dims,
                            SplitPolicy policy, QuerySizeModel model,
                            double r);

}  // namespace ht
