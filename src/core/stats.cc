#include "core/stats.h"

#include <cstdio>

namespace ht {

std::string TreeStats::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "entries=%llu height=%u data_nodes=%llu index_nodes=%llu "
      "data_util(avg=%.3f,min=%.3f) fanout=%.1f kd_splits=%llu "
      "overlapping=%llu overlap_frac=%.4f els_bytes=%llu",
      static_cast<unsigned long long>(entry_count), height,
      static_cast<unsigned long long>(data_nodes),
      static_cast<unsigned long long>(index_nodes), avg_data_utilization,
      min_data_utilization, avg_index_fanout,
      static_cast<unsigned long long>(kd_internal_nodes),
      static_cast<unsigned long long>(overlapping_kd_splits),
      avg_overlap_fraction,
      static_cast<unsigned long long>(els_sidecar_bytes));
  std::string out = buf;
  for (const auto& lv : levels) {
    std::snprintf(buf, sizeof(buf),
                  "\n  level %u: nodes=%llu children=%llu fanout=%.1f",
                  lv.level, static_cast<unsigned long long>(lv.nodes),
                  static_cast<unsigned long long>(lv.children), lv.avg_fanout);
    out += buf;
  }
  return out;
}

}  // namespace ht
