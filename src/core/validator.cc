// Copyright 2026 The HybridTree Authors.

#include "core/validator.h"

#include <cmath>
#include <functional>
#include <string>

#include "common/macros.h"
#include "core/hybrid_tree.h"
#include "core/node.h"

namespace ht {

namespace {

std::string PageTag(PageId page) { return "page " + std::to_string(page); }

}  // namespace

TreeValidator::TreeValidator(HybridTree* tree, ValidateOptions opts)
    : tree_(tree), opts_(opts) {}

Status TreeValidator::Validate() {
  // Validation reads the tree through the mutating node readers (exact
  // on-disk view, no read-path cache fills), so it runs under the
  // exclusive role. The role is annotation-only: re-acquiring it here
  // under a mutator's DebugValidate is a runtime no-op.
  ExclusiveRole role(&tree_->rw_contract_);
  if (opts_.pins) {
    // A validation pass runs between operations; any pin held here was
    // leaked by whatever ran before us (AssertNoPins attributes it to the
    // Fetch call site when pin tracking is on).
    HT_RETURN_NOT_OK(tree_->pool_->AssertNoPins());
  }

  visited_.clear();
  data_pages_.clear();
  visited_.insert(tree_->root_);
  const Box cube = Box::UnitCube(tree_->options_.dim);
  Subtree root;
  HT_RETURN_NOT_OK(ValidateRec(tree_->root_, cube, cube, tree_->height_,
                               /*is_root=*/true, &root));
  if (opts_.occupancy && root.entries != tree_->count_) {
    return Status::Corruption(
        "entry count mismatch: tree says " + std::to_string(tree_->count_) +
        ", traversal found " + std::to_string(root.entries));
  }
  if (opts_.quant) {
    // Per-page content matching happened during the walk; what remains is
    // the reverse direction — a sidecar cached for a page that is no
    // longer a data page of this tree is stale (a missed invalidation).
    for (PageId id : tree_->quant_store_.Snapshot()) {
      if (!data_pages_.contains(id)) {
        return Status::Corruption("page " + std::to_string(id) +
                                  ": quantized sidecar cached for a page "
                                  "that is not a live data page");
      }
    }
  }

  if (opts_.pins) {
    // Every page the walk touched must have been unpinned again — the
    // validator itself must not leak.
    HT_RETURN_NOT_OK(tree_->pool_->AssertNoPins());
  }
  return Status::OK();
}

Status TreeValidator::ValidateRec(PageId page, const Box& kd_br,
                                  const Box& live, uint32_t expected_level,
                                  bool is_root, Subtree* out) {
  HT_ASSIGN_OR_RETURN(NodeKind kind, tree_->PeekKind(page));
  switch (kind) {
    case NodeKind::kData:
      if (expected_level != 0) {
        return Status::Corruption(PageTag(page) + ": data node at level " +
                                  std::to_string(expected_level));
      }
      return ValidateDataNode(page, kd_br, live, is_root, out);
    case NodeKind::kIndex:
      if (expected_level == 0) {
        return Status::Corruption(PageTag(page) + ": index node at level 0");
      }
      return ValidateIndexNode(page, kd_br, live, expected_level, out);
    case NodeKind::kMeta:
      return Status::Corruption(PageTag(page) + ": meta page inside the tree");
  }
  return Status::Corruption(PageTag(page) + ": unknown node kind");
}

Status TreeValidator::ValidateDataNode(PageId page, const Box& kd_br,
                                       const Box& live, bool is_root,
                                       Subtree* out) {
  HT_ASSIGN_OR_RETURN(DataNode node, tree_->ReadDataNode(page));
  if (opts_.occupancy) {
    if (node.entries.size() > tree_->data_capacity_) {
      return Status::Corruption(
          PageTag(page) + ": data node over capacity (" +
          std::to_string(node.entries.size()) + " > " +
          std::to_string(tree_->data_capacity_) + ")");
    }
    if (!is_root && node.entries.size() < tree_->data_min_count_) {
      return Status::Corruption(
          PageTag(page) + ": data node under utilization floor (" +
          std::to_string(node.entries.size()) + " < " +
          std::to_string(tree_->data_min_count_) + ")");
    }
  }
  const uint32_t dim = tree_->options_.dim;
  for (const auto& e : node.entries) {
    if (e.vec.size() != dim) {
      return Status::Corruption(PageTag(page) + ": entry " +
                                std::to_string(e.id) +
                                " has wrong dimensionality");
    }
    for (float v : e.vec) {
      if (!std::isfinite(v)) {
        return Status::Corruption(PageTag(page) + ": entry " +
                                  std::to_string(e.id) +
                                  " has a non-finite coordinate");
      }
    }
    if (opts_.structure && !kd_br.ContainsPoint(e.vec)) {
      return Status::Corruption(
          PageTag(page) + ": entry " + std::to_string(e.id) +
          " outside its kd region " + kd_br.ToString() + " at " +
          Box::FromPoint(e.vec).ToString());
    }
    if (opts_.els && !live.ContainsPoint(e.vec)) {
      return Status::Corruption(
          PageTag(page) + ": entry " + std::to_string(e.id) +
          " outside its live region " + live.ToString() + " at " +
          Box::FromPoint(e.vec).ToString());
    }
  }
  out->exact_live = node.ComputeLiveBr(dim);
  out->entries = node.entries.size();
  data_pages_.insert(page);
  if (opts_.quant) {
    if (auto qp = tree_->quant_store_.Lookup(page)) {
      // A cached sidecar must be exactly what rebuilding from the current
      // page image would produce — grid, codes, and padding bytes. A
      // mismatch means a write path skipped invalidation, which would
      // silently break the filter's soundness on the next scan.
      HT_ASSIGN_OR_RETURN(PageHandle h, tree_->pool_->Fetch(page));
      DataPageScan scan(h.data(), h.size(), dim);
      if (!scan.ok()) {
        return Status::Corruption(PageTag(page) +
                                  ": unscannable data page with a sidecar");
      }
      if (!qp->Matches(scan.block(), scan.stride_floats(), scan.count(),
                       dim)) {
        return Status::Corruption(
            PageTag(page) +
            ": quantized sidecar does not match page contents (stale)");
      }
    }
  }
  return Status::OK();
}

Status TreeValidator::ValidateIndexNode(PageId page, const Box& kd_br,
                                        const Box& live,
                                        uint32_t expected_level,
                                        Subtree* out) {
  HT_ASSIGN_OR_RETURN(IndexNode node, tree_->ReadIndexNode(page));
  if (opts_.structure) {
    if (node.level != expected_level) {
      return Status::Corruption(
          PageTag(page) + ": index node level " + std::to_string(node.level) +
          ", expected " + std::to_string(expected_level));
    }
    if (node.SerializedSize(tree_->els_in_page()) > tree_->options_.page_size) {
      return Status::Corruption(PageTag(page) + ": index node over page size");
    }
    if (node.NumChildren() < 1) {
      return Status::Corruption(PageTag(page) + ": index node without children");
    }
  }
  if (opts_.els && tree_->options_.els_mode == ElsMode::kInMemory &&
      tree_->els_enabled()) {
    auto it = tree_->els_sidecar_.find(page);
    if (it != tree_->els_sidecar_.end() &&
        it->second.size() != node.NumChildren() * tree_->codec_.CodeBytes()) {
      return Status::Corruption(
          PageTag(page) + ": ELS sidecar blob size " +
          std::to_string(it->second.size()) + " != " +
          std::to_string(node.NumChildren()) + " children * " +
          std::to_string(tree_->codec_.CodeBytes()) + " code bytes");
    }
  }

  // One recursive walk of the intra-node kd-tree. `nbr` is the node-LOCAL
  // region (descends from the unit cube, not from kd_br): ELS codes are
  // encoded relative to local leaf regions, while the data below must lie
  // in the intersection of every ancestor's constraints — so both are
  // threaded separately.
  out->exact_live = Box::Empty(tree_->options_.dim);
  out->entries = 0;
  return ValidateKd(node.root.get(), Box::UnitCube(tree_->options_.dim), page,
                    kd_br, live, expected_level, out);
}

Status TreeValidator::ValidateKd(const KdNode* n, const Box& nbr, PageId page,
                                 const Box& kd_br, const Box& live,
                                 uint32_t expected_level, Subtree* out) {
  const size_t code_bytes = tree_->codec_.CodeBytes();
  if ((n->left == nullptr) != (n->right == nullptr)) {
    return Status::Corruption(PageTag(page) +
                              ": kd node with exactly one child");
  }
  if (n->IsLeaf()) {
    HT_RETURN_NOT_OK(ClaimChildPage(page, n->child));
    if (opts_.els && tree_->els_enabled() && !n->els.empty() &&
        n->els.size() != code_bytes) {
      return Status::Corruption(
          PageTag(page) + ": ELS code of " + std::to_string(n->els.size()) +
          " bytes, expected " + std::to_string(code_bytes));
    }
    const bool decode = tree_->els_enabled();
    const Box dec = decode ? tree_->codec_.Decode(n->els, nbr) : nbr;
    const Box child_kd = kd_br.Intersection(nbr);
    const Box child_live = live.Intersection(dec);
    Subtree child;
    HT_RETURN_NOT_OK(ValidateRec(n->child, child_kd, child_live,
                                 expected_level - 1, /*is_root=*/false,
                                 &child));
    if (opts_.els && decode && child.entries > 0) {
      // The decoded code must cover the exact live box of everything
      // stored below (conservativeness of the stored code)...
      if (!dec.ContainsBox(child.exact_live)) {
        return Status::Corruption(
            PageTag(page) + ": decoded ELS box " + dec.ToString() +
            " does not contain the subtree's exact live box " +
            child.exact_live.ToString());
      }
      // ...and re-encoding that box must round-trip conservatively (the
      // codec contract, checked against live data instead of synthetic
      // boxes).
      const Box clipped = child.exact_live.Intersection(nbr);
      const Box redec =
          tree_->codec_.Decode(tree_->codec_.Encode(child.exact_live, nbr),
                               nbr);
      if (!clipped.IsEmpty() && !redec.ContainsBox(clipped)) {
        return Status::Corruption(
            PageTag(page) + ": ELS round-trip lost space: " +
            redec.ToString() + " does not contain " + clipped.ToString());
      }
    }
    out->exact_live.ExtendToInclude(child.exact_live);
    out->entries += child.entries;
    return Status::OK();
  }
  if (opts_.structure) {
    const uint32_t d = n->split_dim;
    if (d >= tree_->options_.dim) {
      return Status::Corruption(PageTag(page) + ": kd split dim " +
                                std::to_string(d) + " out of range");
    }
    if (n->lsp < nbr.lo(d) || n->rsp > nbr.hi(d)) {
      return Status::Corruption(
          PageTag(page) + ": kd split positions (lsp=" +
          std::to_string(n->lsp) + ", rsp=" + std::to_string(n->rsp) +
          ") outside region " + nbr.ToString() + " on dim " +
          std::to_string(d));
    }
  }
  HT_RETURN_NOT_OK(ValidateKd(n->left.get(), KdLeftBr(nbr, *n), page, kd_br,
                              live, expected_level, out));
  return ValidateKd(n->right.get(), KdRightBr(nbr, *n), page, kd_br, live,
                    expected_level, out);
}

Status TreeValidator::ClaimChildPage(PageId parent, PageId child) {
  if (!opts_.structure) {
    visited_.insert(child);
    return Status::OK();
  }
  if (child == kInvalidPageId) {
    return Status::Corruption(PageTag(parent) + ": kd leaf with invalid child");
  }
  if (child == tree_->meta_page_) {
    return Status::Corruption(PageTag(parent) +
                              ": kd leaf points at the meta page");
  }
  if (child >= tree_->file_->page_count()) {
    return Status::Corruption(PageTag(parent) + ": kd leaf child " +
                              std::to_string(child) + " beyond file end (" +
                              std::to_string(tree_->file_->page_count()) +
                              " pages)");
  }
  if (!visited_.insert(child).second) {
    return Status::Corruption(PageTag(parent) + ": child " +
                              std::to_string(child) +
                              " referenced more than once (cycle or shared "
                              "subtree)");
  }
  return Status::OK();
}

}  // namespace ht
