#include "core/els.h"

#include <algorithm>
#include <cmath>

#include "geometry/quantize.h"

namespace ht {

namespace els_detail {

void PutBits(std::vector<uint8_t>& buf, size_t bit_off, uint32_t value,
             uint32_t nbits) {
  for (uint32_t i = 0; i < nbits; ++i) {
    const size_t bit = bit_off + i;
    const size_t byte = bit / 8;
    const uint32_t shift = bit % 8;
    HT_DCHECK(byte < buf.size());
    if ((value >> i) & 1u) {
      buf[byte] = static_cast<uint8_t>(buf[byte] | (1u << shift));
    } else {
      buf[byte] = static_cast<uint8_t>(buf[byte] & ~(1u << shift));
    }
  }
}

uint32_t GetBits(const std::vector<uint8_t>& buf, size_t bit_off,
                 uint32_t nbits) {
  // Word-based extraction: a <=16-bit field spans at most 3 bytes; gather
  // up to 4 bytes around the offset and shift/mask once. This sits on the
  // search hot path (ELS decode per child visited).
  const size_t byte = bit_off / 8;
  const uint32_t shift = static_cast<uint32_t>(bit_off % 8);
  uint32_t window = 0;
  const size_t avail = buf.size() - byte;
  HT_DCHECK(byte < buf.size());
  switch (avail < 4 ? avail : 4) {
    case 4:
      window |= static_cast<uint32_t>(buf[byte + 3]) << 24;
      [[fallthrough]];
    case 3:
      window |= static_cast<uint32_t>(buf[byte + 2]) << 16;
      [[fallthrough]];
    case 2:
      window |= static_cast<uint32_t>(buf[byte + 1]) << 8;
      [[fallthrough]];
    default:
      window |= static_cast<uint32_t>(buf[byte]);
  }
  return (window >> shift) &
         (nbits >= 32 ? 0xffffffffu : ((1u << nbits) - 1u));
}

}  // namespace els_detail

ElsCode ElsCodec::Encode(const Box& live, const Box& ref) const {
  if (bits_ == 0) return {};
  HT_DCHECK(live.dim() == dim_ && ref.dim() == dim_);
  ElsCode code(CodeBytes(), 0);
  size_t off = 0;
  for (uint32_t d = 0; d < dim_; ++d) {
    // Clip the live box to the reference region first: points outside the
    // kd region belong to a different child (overlap), so the code only
    // needs to cover the part inside `ref`.
    const float l = std::max(live.lo(d), ref.lo(d));
    const float h = std::min(live.hi(d), ref.hi(d));
    els_detail::PutBits(
        code, off, quant::QuantizeLo(l, ref.lo(d), ref.hi(d), bits_), bits_);
    off += bits_;
    // QuantizeHi ranges over [1, 2^bits]; store cell-1 so it fits in
    // `bits` bits. Decode adds the 1 back.
    els_detail::PutBits(
        code, off, quant::QuantizeHi(h, ref.lo(d), ref.hi(d), bits_) - 1,
        bits_);
    off += bits_;
  }
  return code;
}

Box ElsCodec::Decode(const ElsCode& code, const Box& ref) const {
  if (bits_ == 0 || code.empty()) return ref;
  HT_DCHECK(code.size() == CodeBytes());
  const uint32_t cells = 1u << bits_;
  std::vector<float> lo(dim_), hi(dim_);
  size_t off = 0;
  for (uint32_t d = 0; d < dim_; ++d) {
    const double w =
        (static_cast<double>(ref.hi(d)) - ref.lo(d)) / cells;
    const uint32_t cl = els_detail::GetBits(code, off, bits_);
    off += bits_;
    const uint32_t ch = els_detail::GetBits(code, off, bits_) + 1;
    off += bits_;
    lo[d] = static_cast<float>(ref.lo(d) + cl * w);
    hi[d] = static_cast<float>(ref.lo(d) + ch * w);
    // Guard against float rounding pushing boundaries outside ref.
    lo[d] = std::max(lo[d], ref.lo(d));
    hi[d] = std::min(hi[d], ref.hi(d));
    if (hi[d] < lo[d]) hi[d] = lo[d];
  }
  return Box::FromBounds(std::move(lo), std::move(hi));
}

bool ElsCodec::DecodedIntersects(const ElsCode& code, const Box& ref,
                                 const Box& query) const {
  if (bits_ == 0 || code.empty()) return query.Intersects(ref);
  HT_DCHECK(code.size() == CodeBytes());
  const uint32_t cells = 1u << bits_;
  size_t off = 0;
  for (uint32_t d = 0; d < dim_; ++d) {
    const double w = (static_cast<double>(ref.hi(d)) - ref.lo(d)) / cells;
    const uint32_t cl = els_detail::GetBits(code, off, bits_);
    off += bits_;
    const uint32_t ch = els_detail::GetBits(code, off, bits_) + 1;
    off += bits_;
    float lo = static_cast<float>(ref.lo(d) + cl * w);
    float hi = static_cast<float>(ref.lo(d) + ch * w);
    if (lo < ref.lo(d)) lo = ref.lo(d);
    if (hi > ref.hi(d)) hi = ref.hi(d);
    if (hi < lo) hi = lo;
    if (query.hi(d) < lo || query.lo(d) > hi) return false;
  }
  return true;
}

ElsCode ElsCodec::Reencode(const ElsCode& code, const Box& old_ref,
                           const Box& new_ref) const {
  if (bits_ == 0) return {};
  return Encode(Decode(code, old_ref), new_ref);
}

ElsCode ElsCodec::FullCode() const {
  if (bits_ == 0) return {};
  ElsCode code(CodeBytes(), 0);
  const uint32_t max_cell = (1u << bits_) - 1;  // stored hi = cell - 1
  size_t off = 0;
  for (uint32_t d = 0; d < dim_; ++d) {
    els_detail::PutBits(code, off, 0, bits_);
    off += bits_;
    els_detail::PutBits(code, off, max_cell, bits_);
    off += bits_;
  }
  return code;
}

ElsCode ElsCodec::ExtendToInclude(const ElsCode& code, const Box& ref,
                                  std::span<const float> p) const {
  if (bits_ == 0) return {};
  Box live = Decode(code, ref);
  live.ExtendToInclude(p);
  return Encode(live, ref);
}

}  // namespace ht
