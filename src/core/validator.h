// Copyright 2026 The HybridTree Authors.
// Deep structural validator for the hybrid tree.
//
// TreeValidator walks the whole tree once and checks every invariant the
// structure promises, strictly stronger than the containment checks the
// old HybridTree::CheckInvariants performed (which now delegates here):
//
//   * Structure: node kinds are valid, index-node levels decrease by one
//     toward the data level, every kd internal node has both children,
//     split dimensions are in range, lsp/rsp lie inside the node-local kd
//     region, serialized sizes fit the page, and every child PageId is
//     valid, distinct tree-wide, and never the meta page (a cycle or a
//     shared subtree is reported as corruption, not walked twice).
//   * ELS: every code has exactly CodeBytes() bytes (or is empty); the
//     decoded box of each child contains the child subtree's *exact* live
//     box, computed bottom-up from the stored vectors during the same DFS
//     (not just the per-point containment the old check did); and the
//     codec round-trip contract Decode(Encode(live, ref), ref) ⊇ live∩ref
//     holds for the real live boxes in the tree. In kInMemory mode the
//     sidecar blob sizes are checked against the node fanout.
//   * Occupancy: data nodes respect capacity and (non-root) the
//     utilization floor; entry vectors have the right dimensionality and
//     finite coordinates; the traversal's entry count matches size().
//   * Pins: with ValidateOptions::pins set, the buffer pool must report
//     zero pinned frames both before and after the walk
//     (BufferPool::AssertNoPins), attributing any leak to the Fetch call
//     site when pin tracking is on.
//
// Under -DHT_DEBUG_VALIDATE=ON builds, HybridTree runs a full pass after
// every mutating operation (Insert / Delete / RebuildEls / Flush), so
// property and soak tests validate continuously instead of only at the
// end.

#pragma once

#include <cstdint>
#include <unordered_set>

#include "common/status.h"
#include "core/hybrid_tree.h"
#include "geometry/box.h"
#include "storage/page.h"

namespace ht {

/// Selects which check groups a validation pass runs. Everything defaults
/// to on; tests disable groups to pinpoint a specific failure.
struct ValidateOptions {
  bool structure = true;  ///< kinds, levels, kd splits, sizes, child ids
  bool els = true;        ///< code sizes, decoded ⊇ exact live, round-trip
  bool occupancy = true;  ///< capacity, utilization floor, entry counts
  bool pins = true;       ///< buffer pool reports no pinned frames
  bool quant = true;      ///< quantized sidecars match page contents, no
                          ///< sidecar outlives its data page
};

/// One-shot deep validation pass over a HybridTree. Stateless between
/// calls: construct, Validate(), discard (or reuse; each Validate() call
/// resets the traversal state).
class TreeValidator {
 public:
  explicit TreeValidator(HybridTree* tree, ValidateOptions opts = {});

  /// Runs the pass. Returns OK or the first Corruption/Internal found.
  /// Acquires the tree's exclusive role itself (validation reads via the
  /// mutating node readers), so callers — tests or DebugValidate — just
  /// call it; the role is an annotation-only capability, never a lock.
  Status Validate();

 private:
  /// Everything the parent needs to know about a validated subtree.
  struct Subtree {
    Box exact_live;     // tight box of every stored vector below
    uint64_t entries = 0;
  };

  Status ValidateRec(PageId page, const Box& kd_br, const Box& live,
                     uint32_t expected_level, bool is_root, Subtree* out)
      HT_REQUIRES(tree_->rw_contract_);
  Status ValidateDataNode(PageId page, const Box& kd_br, const Box& live,
                          bool is_root, Subtree* out)
      HT_REQUIRES(tree_->rw_contract_);
  Status ValidateIndexNode(PageId page, const Box& kd_br, const Box& live,
                           uint32_t expected_level, Subtree* out)
      HT_REQUIRES(tree_->rw_contract_);
  /// Recursive intra-node kd walk of ValidateIndexNode (member, not a
  /// lambda, so the analysis sees the role requirement).
  Status ValidateKd(const KdNode* n, const Box& nbr, PageId page,
                    const Box& kd_br, const Box& live, uint32_t expected_level,
                    Subtree* out) HT_REQUIRES(tree_->rw_contract_);
  /// Registers a child page id: in range, not the meta page, first visit.
  Status ClaimChildPage(PageId parent, PageId child);

  HybridTree* tree_;
  ValidateOptions opts_;
  std::unordered_set<PageId> visited_;
  /// Data pages seen by the current walk (quant check: every cached
  /// sidecar must belong to one of these).
  std::unordered_set<PageId> data_pages_;
};

}  // namespace ht
