// Copyright 2026 The HybridTree Authors.
// Encoded Live Space (ELS), §3.4 of the paper.
//
// SP-based structures index dead space: regions of the partitioning that
// contain no data. The hybrid tree stores, per child of an index node, a
// conservative approximation of the child's live bounding region encoded on
// a 2^bits grid relative to the child's kd region. The code costs
// 2 * dim * bits bits per child instead of 2 * dim * 32 for exact BRs, so
// fanout stays (nearly) independent of dimensionality while most dead space
// is eliminated from the search.

#pragma once

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "geometry/box.h"

namespace ht {

/// Packed ELS code bytes for one child. Empty when bits == 0 (ELS off).
using ElsCode = std::vector<uint8_t>;

/// Encoder/decoder for ELS codes at a fixed (dim, bits) configuration.
///
/// Conservativeness contract: Decode(Encode(live, ref), ref) always
/// contains `live` (clipped to `ref`), so pruning with a decoded box never
/// drops a true result. Lower boundaries round down, upper boundaries round
/// up to the enclosing grid line.
class ElsCodec {
 public:
  ElsCodec(uint32_t dim, uint32_t bits) : dim_(dim), bits_(bits) {
    HT_CHECK(bits <= 16);
  }

  uint32_t dim() const { return dim_; }
  uint32_t bits() const { return bits_; }

  /// Bytes per code: 2 boundaries * dim * bits, rounded up to whole bytes.
  size_t CodeBytes() const { return (2 * dim_ * bits_ + 7) / 8; }

  /// Encodes the live box `live` relative to the reference region `ref`.
  ElsCode Encode(const Box& live, const Box& ref) const;

  /// Decodes a code produced by Encode back to a (conservative) box.
  /// An empty code (ELS off) decodes to `ref` itself.
  Box Decode(const ElsCode& code, const Box& ref) const;

  /// Equivalent to query.Intersects(Decode(code, ref)) with per-dimension
  /// early exit and no allocation — the §3.4 two-step overlap check's
  /// second step, on the search hot path.
  bool DecodedIntersects(const ElsCode& code, const Box& ref,
                         const Box& query) const;

  /// Re-encodes `code` (valid relative to `old_ref`) relative to `new_ref`.
  /// Used when index-node restructuring changes a child's kd region. The
  /// result is conservative with respect to the decoded old box.
  ElsCode Reencode(const ElsCode& code, const Box& old_ref,
                   const Box& new_ref) const;

  /// Returns a copy of `code` grown (if needed) to cover point `p`.
  ElsCode ExtendToInclude(const ElsCode& code, const Box& ref,
                          std::span<const float> p) const;

  /// The code that decodes to the full reference region (lo cell 0, hi cell
  /// 2^bits) — independent of the region itself.
  ElsCode FullCode() const;

 private:
  uint32_t dim_;
  uint32_t bits_;
};

/// Bit-packing helpers (exposed for tests).
namespace els_detail {
void PutBits(std::vector<uint8_t>& buf, size_t bit_off, uint32_t value,
             uint32_t nbits);
uint32_t GetBits(const std::vector<uint8_t>& buf, size_t bit_off,
                 uint32_t nbits);
}  // namespace els_detail

}  // namespace ht
