// Copyright 2026 The HybridTree Authors.
// Server: the thin request layer over a ShardedIndex — per-tenant
// admission control, deadline propagation, and live metrics.
//
// Request lifecycle:
//   1. Arrival stamps the request's wall-clock budget (deadline_seconds).
//   2. AdmissionController::Admit — token bucket (reject: rate overload)
//      then bounded in-flight wait (expire: queued past the budget).
//   3. The REMAINING budget — original minus admission queueing delay —
//      is what goes into the per-shard ExecOptions::deadline_seconds,
//      so a request that burned its budget in the queue expires instead
//      of fanning out with a deadline it can no longer meet.
//   4. Scatter-gather on the index; per-query latency and outcome land in
//      the tenant's metrics; per-shard I/O accumulates in the index.
//
// Execute() is safe from any thread EXCEPT the serving pool's own workers
// (ShardedIndex's rule). Cancel() flips a server-wide flag observed by
// every in-flight scatter; Snapshot() is cheap enough to poll live.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "exec/query_executor.h"
#include "serve/admission.h"
#include "serve/metrics.h"
#include "serve/sharded_index.h"

namespace ht {

/// One tenant request: a query plus its identity and wall-clock budget.
struct Request {
  std::string tenant;
  Query query;
  /// Required for kRange / kKnn; must outlive Execute().
  const DistanceMetric* metric = nullptr;
  /// Total budget from arrival, in seconds; 0 = no deadline.
  double deadline_seconds = 0.0;
  /// Per-request k-NN recall override: when set, knn_epsilon and
  /// knn_max_leaf_visits below replace the tenant's default recall tier
  /// (TenantQuota::knn_*) for this request only — e.g. an interactive
  /// caller requesting exact results on a tenant that defaults to a fast
  /// approximate tier, or vice versa.
  bool has_recall_override = false;
  double knn_epsilon = 0.0;
  size_t knn_max_leaf_visits = 0;
};

struct ServerOptions {
  /// Budget applied when a request carries none; 0 = none.
  double default_deadline_seconds = 0.0;
  /// Per-tenant completed-latency ring capacity (percentile window).
  size_t latency_window = 8192;
};

class Server {
 public:
  /// Neither the index nor (transitively) its pool is owned; both must
  /// outlive the server.
  explicit Server(ShardedIndex* index, ServerOptions options = {});
  HT_DISALLOW_COPY_AND_ASSIGN(Server);

  /// Installs `tenant`'s admission quota.
  void SetQuota(const std::string& tenant, const TenantQuota& quota);

  /// Runs one request end to end (admission -> scatter-gather -> merge).
  /// The QueryResult's status distinguishes ResourceExhausted (rejected),
  /// DeadlineExceeded (expired), Cancelled, and real failures; ids /
  /// neighbors are populated in canonical order on OK.
  QueryResult Execute(const Request& request);

  /// Flags every in-flight and future request as cancelled until
  /// ResetCancel(). Callable from any thread.
  void Cancel() { cancel_.store(true, std::memory_order_relaxed); }
  void ResetCancel() { cancel_.store(false, std::memory_order_relaxed); }

  /// Live metrics: per-tenant counters + latency percentiles, per-shard
  /// serving I/O. Thread-safe, callable while traffic runs.
  MetricsSnapshot Snapshot() const;

  /// Zeroes counters, latency windows, the QPS window, and the index's
  /// serving I/O counters (for post-warmup measurement).
  void ResetMetrics();

  ShardedIndex* index() const { return index_; }

  /// The remaining-budget rule (exposed for direct unit testing): a
  /// budget of 0 means "no deadline" and stays 0; otherwise the original
  /// budget minus the admission queueing delay. A result <= 0 means the
  /// request expired in the queue and must not fan out.
  static double RemainingBudget(double budget_seconds, double waited_seconds) {
    if (budget_seconds <= 0.0) return 0.0;
    return budget_seconds - waited_seconds;
  }

 private:
  struct TenantState {
    /// Relaxed throughout: independent monotonic counters — snapshots
    /// tolerate torn cross-counter views (each value is itself exact),
    /// and no counter orders any other data.
    std::atomic<uint64_t> admitted{0};
    std::atomic<uint64_t> completed{0};
    std::atomic<uint64_t> rejected{0};
    std::atomic<uint64_t> expired{0};
    std::atomic<uint64_t> cancelled{0};
    std::atomic<uint64_t> failed{0};
    /// Bounded ring of completed-query latencies (seconds).
    Mutex latency_mu{LockRank::kServerTenantStats,
                     "Server::TenantState::latency_mu"};
    std::vector<double> latency_ring HT_GUARDED_BY(latency_mu);
    size_t latency_next HT_GUARDED_BY(latency_mu) = 0;
    size_t latency_count HT_GUARDED_BY(latency_mu) = 0;
    /// Per-tenant I/O (including the per-access-class cache counters),
    /// accumulated from each request's scatter tasks via
    /// ExecOptions::request_io.
    Mutex io_mu{LockRank::kServerTenantStats, "Server::TenantState::io_mu"};
    IoStats io HT_GUARDED_BY(io_mu);
    /// k-NN approximation accounting (ExecOptions::knn_stats). Relaxed:
    /// independent monotonic counters, same contract as the outcome
    /// counters above.
    std::atomic<uint64_t> knn_leaf_visits{0};
    std::atomic<uint64_t> knn_early_terminations{0};
    /// The tenant's default recall tier, copied from TenantQuota by
    /// SetQuota. Relaxed: independent configuration values read once per
    /// request — a stale read applies the previous tier to one in-flight
    /// request, which is indistinguishable from the request having
    /// arrived before the quota change.
    std::atomic<double> default_knn_epsilon{0.0};
    std::atomic<size_t> default_knn_max_leaf_visits{0};
  };

  TenantState* GetTenant(const std::string& tenant);
  void RecordOutcome(TenantState* state, const Status& status,
                     double seconds);

  ShardedIndex* index_;
  ServerOptions options_;
  AdmissionController admission_;
  /// Relaxed: a pure flag with no payload to publish; scatter tasks poll
  /// it and a slightly late observation only delays cancellation.
  std::atomic<bool> cancel_{false};

  /// Tenant map: read-mostly after warmup; states are pointer-stable.
  /// Held shared across the per-tenant stat locks in Snapshot (the
  /// map(1100) -> stats(800) nesting in the lock-rank table).
  mutable SharedMutex tenants_mu_{LockRank::kServerTenantMap,
                                  "Server::tenants_mu_"};
  std::unordered_map<std::string, std::unique_ptr<TenantState>> tenants_
      HT_GUARDED_BY(tenants_mu_);

  /// QPS window start (seconds, steady clock). Relaxed: written only by
  /// ResetMetrics/construction, read by Snapshot; a stale read skews the
  /// reported window by at most one reset race, never breaks anything.
  std::atomic<double> window_start_;
};

}  // namespace ht
