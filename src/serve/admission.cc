#include "serve/admission.h"

#include <algorithm>
#include <chrono>

namespace ht {

namespace {

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Effective bucket capacity: an explicit burst wins; otherwise a
/// configured rate gets max(1, rate) so it can always admit one request.
double BurstOf(const TenantQuota& quota) {
  if (quota.burst > 0.0) return quota.burst;
  return std::max(1.0, quota.rate_qps);
}

}  // namespace

void AdmissionTicket::Release() {
  if (controller_ != nullptr) {
    controller_->ReleaseSlot(static_cast<AdmissionController::TenantState*>(
        tenant_));
    controller_ = nullptr;
    tenant_ = nullptr;
  }
}

AdmissionController::AdmissionController(Clock clock)
    : clock_(clock ? std::move(clock) : Clock(SteadySeconds)) {}

AdmissionController::~AdmissionController() = default;

void AdmissionController::SetQuota(const std::string& tenant,
                                   const TenantQuota& quota) {
  TenantState* state = GetTenant(tenant);
  MutexLock lock(&state->mu);
  state->quota = quota;
  state->tokens = BurstOf(quota);  // bucket starts full
  state->last_refill = clock_();
}

AdmissionController::TenantState* AdmissionController::GetTenant(
    const std::string& tenant) {
  MutexLock lock(&tenants_mu_);
  std::unique_ptr<TenantState>& slot = tenants_[tenant];
  if (slot == nullptr) {
    slot = std::make_unique<TenantState>();
    // Uncontended by construction (the pointer has not escaped yet), but
    // last_refill is guarded, and map-lock(1000) -> tenant-lock(900) is
    // the documented order anyway.
    MutexLock init(&slot->mu);
    slot->last_refill = clock_();
  }
  return slot.get();
}

void AdmissionController::ReleaseSlot(TenantState* state) {
  {
    MutexLock lock(&state->mu);
    if (state->in_flight > 0) --state->in_flight;
  }
  state->slot_free.NotifyOne();
}

Result<AdmissionTicket> AdmissionController::Admit(const std::string& tenant,
                                                   double max_wait_seconds) {
  TenantState* state = GetTenant(tenant);
  MutexLock lock(&state->mu);

  // Rate gate first: overload is rejected immediately, not queued.
  if (state->quota.rate_qps > 0.0) {
    const double now = clock_();
    const double burst = BurstOf(state->quota);
    state->tokens =
        std::min(burst, state->tokens + (now - state->last_refill) *
                                            state->quota.rate_qps);
    state->last_refill = now;
    if (state->tokens < 1.0) {
      return Status::ResourceExhausted("tenant over admission rate: " +
                                       tenant);
    }
    state->tokens -= 1.0;
  }

  // Concurrency gate: wait (bounded) for an in-flight slot. The wait is
  // the admission queueing delay the ticket reports back to the server.
  double waited = 0.0;
  if (state->quota.max_in_flight > 0) {
    const double cap = max_wait_seconds > 0.0
                           ? max_wait_seconds
                           : state->quota.max_queue_seconds;
    const auto wait_start = std::chrono::steady_clock::now();
    const auto wait_deadline =
        wait_start + std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(std::max(0.0, cap)));
    while (state->in_flight >= state->quota.max_in_flight) {
      if (state->slot_free.WaitUntil(lock, wait_deadline) ==
              std::cv_status::timeout &&
          state->in_flight >= state->quota.max_in_flight) {
        return Status::DeadlineExceeded(
            "tenant in-flight queue wait exceeded budget: " + tenant);
      }
    }
    waited = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           wait_start)
                 .count();
    ++state->in_flight;
  }

  AdmissionTicket ticket;
  if (state->quota.max_in_flight > 0) {
    ticket.controller_ = this;
    ticket.tenant_ = state;
  }
  ticket.queue_wait_seconds_ = waited;
  return ticket;
}

}  // namespace ht
