#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/timing.h"

namespace ht {

namespace {

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Server::Server(ShardedIndex* index, ServerOptions options)
    : index_(index), options_(options) {
  window_start_.store(SteadySeconds(), std::memory_order_relaxed);
}

void Server::SetQuota(const std::string& tenant, const TenantQuota& quota) {
  admission_.SetQuota(tenant, quota);
  TenantState* state = GetTenant(tenant);  // pre-create so the snapshot
                                           // lists quota'd tenants
  // The recall tier rides on the quota but is read per-request on the
  // serve path, so it lives in TenantState as relaxed atomics (see the
  // field comments for the staleness contract).
  state->default_knn_epsilon.store(quota.knn_epsilon,
                                   std::memory_order_relaxed);
  state->default_knn_max_leaf_visits.store(quota.knn_max_leaf_visits,
                                           std::memory_order_relaxed);
}

Server::TenantState* Server::GetTenant(const std::string& tenant) {
  {
    ReaderLock lock(&tenants_mu_);
    auto it = tenants_.find(tenant);
    if (it != tenants_.end()) return it->second.get();
  }
  WriterLock lock(&tenants_mu_);
  std::unique_ptr<TenantState>& slot = tenants_[tenant];
  if (slot == nullptr) {
    slot = std::make_unique<TenantState>();
    // Uncontended by construction (the pointer has not escaped yet), but
    // the ring is guarded, and map(1100) -> stats(800) is the documented
    // nesting anyway.
    MutexLock init(&slot->latency_mu);
    slot->latency_ring.assign(std::max<size_t>(1, options_.latency_window),
                              0.0);
  }
  return slot.get();
}

void Server::RecordOutcome(TenantState* state, const Status& status,
                           double seconds) {
  if (status.ok()) {
    state->completed.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(&state->latency_mu);
    state->latency_ring[state->latency_next] = seconds;
    state->latency_next = (state->latency_next + 1) % state->latency_ring.size();
    state->latency_count =
        std::min(state->latency_count + 1, state->latency_ring.size());
  } else if (status.IsCancelled()) {
    state->cancelled.fetch_add(1, std::memory_order_relaxed);
  } else if (status.IsDeadlineExceeded()) {
    state->expired.fetch_add(1, std::memory_order_relaxed);
  } else {
    state->failed.fetch_add(1, std::memory_order_relaxed);
  }
}

QueryResult Server::Execute(const Request& request) {
  QueryResult result;
  TenantState* state = GetTenant(request.tenant);
  const double budget = request.deadline_seconds > 0.0
                            ? request.deadline_seconds
                            : options_.default_deadline_seconds;
  WallTimer timer;

  // Admission: reject (rate) or queue briefly (in-flight), bounded by the
  // request's own budget.
  Result<AdmissionTicket> admit_r = admission_.Admit(request.tenant, budget);
  if (!admit_r.ok()) {
    result.status = admit_r.status();
    if (result.status.IsDeadlineExceeded()) {
      state->expired.fetch_add(1, std::memory_order_relaxed);
    } else {
      state->rejected.fetch_add(1, std::memory_order_relaxed);
    }
    return result;
  }
  AdmissionTicket ticket = std::move(admit_r).ValueUnsafe();
  state->admitted.fetch_add(1, std::memory_order_relaxed);

  // Deadline propagation: shards get the REMAINING budget, not the
  // original — admission queueing already spent part of it.
  ExecOptions exec;
  exec.cancel = &cancel_;
  // Per-request I/O lands in a local sink (scatter tasks write their own
  // slots), then folds into the tenant's counters after the barrier.
  IoStats request_io;
  exec.request_io = &request_io;
  // Recall tier: the per-request override wins; otherwise the tenant's
  // default (exact, unlimited for unconfigured tenants). The k-NN visit
  // accounting lands in a local sink like request_io, then folds into the
  // tenant's counters after the scatter barrier.
  KnnExecStats request_knn;
  exec.knn_stats = &request_knn;
  if (request.has_recall_override) {
    exec.knn_epsilon = request.knn_epsilon;
    exec.knn_max_leaf_visits = request.knn_max_leaf_visits;
  } else {
    exec.knn_epsilon =
        state->default_knn_epsilon.load(std::memory_order_relaxed);
    exec.knn_max_leaf_visits =
        state->default_knn_max_leaf_visits.load(std::memory_order_relaxed);
  }
  if (budget > 0.0) {
    const double remaining =
        RemainingBudget(budget, ticket.queue_wait_seconds());
    if (remaining <= 0.0) {
      result.status =
          Status::DeadlineExceeded("deadline consumed by admission queueing");
      state->expired.fetch_add(1, std::memory_order_relaxed);
      return result;
    }
    exec.deadline_seconds = remaining;
  }

  switch (request.query.type) {
    case Query::Type::kBox:
      result.status = index_->SearchBox(request.query.box, exec, &result.ids);
      break;
    case Query::Type::kRange:
      if (request.metric == nullptr) {
        result.status =
            Status::InvalidArgument("range request without a metric");
        break;
      }
      result.status =
          index_->SearchRange(request.query.center, request.query.radius,
                              *request.metric, exec, &result.ids);
      break;
    case Query::Type::kKnn:
      if (request.metric == nullptr) {
        result.status =
            Status::InvalidArgument("knn request without a metric");
        break;
      }
      result.status =
          index_->SearchKnn(request.query.center, request.query.k,
                            *request.metric, exec, &result.neighbors);
      break;
  }
  result.seconds = timer.Seconds();
  RecordOutcome(state, result.status, result.seconds);
  {
    MutexLock lock(&state->io_mu);
    state->io.Accumulate(request_io);
  }
  state->knn_leaf_visits.fetch_add(request_knn.leaf_visits,
                                   std::memory_order_relaxed);
  state->knn_early_terminations.fetch_add(request_knn.early_terminations,
                                          std::memory_order_relaxed);
  // Count-gated global cache rebalance (no-op without a CacheManager):
  // every N-th request recomputes per-shard capacity targets from the
  // observed demand misses.
  index_->MaybeRebalanceCache();
  return result;
}

MetricsSnapshot Server::Snapshot() const {
  MetricsSnapshot snap;
  snap.window_seconds =
      SteadySeconds() - window_start_.load(std::memory_order_relaxed);

  {
    ReaderLock lock(&tenants_mu_);
    snap.tenants.reserve(tenants_.size());
    for (const auto& [name, state] : tenants_) {
      TenantMetrics t;
      t.tenant = name;
      t.admitted = state->admitted.load(std::memory_order_relaxed);
      t.completed = state->completed.load(std::memory_order_relaxed);
      t.rejected = state->rejected.load(std::memory_order_relaxed);
      t.expired = state->expired.load(std::memory_order_relaxed);
      t.cancelled = state->cancelled.load(std::memory_order_relaxed);
      t.failed = state->failed.load(std::memory_order_relaxed);
      if (snap.window_seconds > 0.0) {
        t.qps = static_cast<double>(t.completed) / snap.window_seconds;
      }
      {
        MutexLock ring_lock(&state->latency_mu);
        std::vector<double> samples(
            state->latency_ring.begin(),
            state->latency_ring.begin() +
                static_cast<ptrdiff_t>(state->latency_count));
        t.latency = SummarizeLatencies(std::move(samples));
      }
      {
        MutexLock io_lock(&state->io_mu);
        t.io = state->io;
      }
      t.knn_leaf_visits =
          state->knn_leaf_visits.load(std::memory_order_relaxed);
      t.knn_early_terminations =
          state->knn_early_terminations.load(std::memory_order_relaxed);
      t.quant_prune_rate = t.io.QuantPruneRate();
      snap.tenants.push_back(std::move(t));
    }
  }
  std::sort(snap.tenants.begin(), snap.tenants.end(),
            [](const TenantMetrics& a, const TenantMetrics& b) {
              return a.tenant < b.tenant;
            });

  snap.per_shard_io.reserve(index_->shards());
  snap.per_shard_cache.reserve(index_->shards());
  for (size_t s = 0; s < index_->shards(); ++s) {
    snap.per_shard_io.push_back(index_->shard_io(s));
    snap.total_io.Accumulate(snap.per_shard_io.back());
    snap.per_shard_cache.push_back(index_->shard_cache(s));
  }
  return snap;
}

void Server::ResetMetrics() {
  WriterLock lock(&tenants_mu_);
  for (auto& [name, state] : tenants_) {
    state->admitted.store(0, std::memory_order_relaxed);
    state->completed.store(0, std::memory_order_relaxed);
    state->rejected.store(0, std::memory_order_relaxed);
    state->expired.store(0, std::memory_order_relaxed);
    state->cancelled.store(0, std::memory_order_relaxed);
    state->failed.store(0, std::memory_order_relaxed);
    state->knn_leaf_visits.store(0, std::memory_order_relaxed);
    state->knn_early_terminations.store(0, std::memory_order_relaxed);
    {
      MutexLock ring_lock(&state->latency_mu);
      state->latency_next = 0;
      state->latency_count = 0;
    }
    MutexLock io_lock(&state->io_mu);
    state->io.Reset();
  }
  index_->ResetIo();
  window_start_.store(SteadySeconds(), std::memory_order_relaxed);
}

}  // namespace ht
