// Copyright 2026 The HybridTree Authors.
// Live serving metrics: per-tenant traffic counters + latency percentiles
// and per-shard I/O, exported as a point-in-time MetricsSnapshot.
//
// The outcome taxonomy mirrors exec::BatchReport so the whole stack
// counts the same way, with two admission-side outcomes added in front:
//
//   rejected   — refused by the token bucket (rate overload), never ran
//   expired    — deadline exceeded: while queued for an in-flight slot,
//                after admission with no budget left, or mid-scatter
//   cancelled  — server-side cancel observed by a shard task
//   completed  — ran to completion, counted into the latency window
//   failed     — any other non-OK status (I/O error, corruption, ...)
//
// rejected vs expired is the load-shedding signal: rejected traffic was
// turned away cheaply at the front door, expired traffic burned queue or
// scatter time first. Benchmarks (bench_serve) assert both are visible.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/latency.h"
#include "storage/buffer_pool.h"
#include "storage/io_stats.h"

namespace ht {

/// One tenant's cumulative counters since server start (or ResetMetrics),
/// plus percentiles over the retained latency window.
struct TenantMetrics {
  std::string tenant;
  uint64_t admitted = 0;
  uint64_t completed = 0;
  uint64_t rejected = 0;
  uint64_t expired = 0;
  uint64_t cancelled = 0;
  uint64_t failed = 0;
  /// completed / window_seconds of the enclosing snapshot.
  double qps = 0.0;
  /// Over the tenant's retained completed-latency window (a bounded ring;
  /// percentiles describe recent traffic, not all-time).
  LatencySummary latency;
  /// I/O attributed to this tenant's requests (scatter-task sums),
  /// including the per-access-class cache hit/miss/eviction counters.
  IoStats io;
  /// k-NN approximation accounting: data pages scanned by the tenant's
  /// k-NN traversals, and how many shard traversals a recall knob
  /// (epsilon / leaf-visit budget) cut short of the exact search.
  uint64_t knn_leaf_visits = 0;
  uint64_t knn_early_terminations = 0;
  /// Fraction of this tenant's scanned rows the quantized filter pruned
  /// before a full-precision distance (batch + cursor paths combined;
  /// IoStats::QuantPruneRate over `io`). 0 when nothing was scanned.
  double quant_prune_rate = 0.0;
};

/// Point-in-time view of the whole server.
struct MetricsSnapshot {
  /// Seconds since server start / last ResetMetrics.
  double window_seconds = 0.0;
  /// Sorted by tenant name.
  std::vector<TenantMetrics> tenants;
  /// Serving-attributed I/O per shard (ShardedIndex::shard_io): logical/
  /// physical reads, batch_reads/batch_writes round trips, and
  /// prefetch_issued/prefetch_hits — build I/O excluded.
  std::vector<IoStats> per_shard_io;
  /// Sum over per_shard_io.
  IoStats total_io;
  /// Per-shard buffer-pool cache gauges (eviction policy, current capacity
  /// target — as rebalanced by the CacheManager when one is attached —
  /// occupancy, and segment sizes). Indexed like per_shard_io.
  std::vector<BufferPool::CacheSnapshot> per_shard_cache;

  /// Convenience sums over tenants.
  uint64_t TotalCompleted() const {
    uint64_t n = 0;
    for (const TenantMetrics& t : tenants) n += t.completed;
    return n;
  }
  uint64_t TotalRejected() const {
    uint64_t n = 0;
    for (const TenantMetrics& t : tenants) n += t.rejected;
    return n;
  }
  uint64_t TotalExpired() const {
    uint64_t n = 0;
    for (const TenantMetrics& t : tenants) n += t.expired;
    return n;
  }
};

}  // namespace ht
