// Copyright 2026 The HybridTree Authors.
// ShardedIndex: one logical dataset partitioned into N per-shard hybrid
// trees, queried scatter-gather on a shared exec ThreadPool.
//
// Partitioning reuses the parallel bulk loader's deterministic
// PartitionSubset cuts (kd-region, the default) or a splitmix64 hash of
// the row id (the skew fallback) — see serve/partition.h. Each shard is
// bulk-loaded with shard-local ids and a local→global id map, flipped
// into concurrent-read mode once at build, and never mutated afterwards:
// the serving tier is read-only by construction, so any number of
// requests may scatter over the shards concurrently.
//
// Scatter-gather and determinism: every search fans one task per shard
// out to the pool, gathers per-shard results, and merges them into a
// CANONICAL order — box/range ids ascending, k-NN by (distance, id)
// ascending — so the answer is identical to a single unsharded tree over
// the same data (canonicalized the same way) at every shard count,
// partitioner, and pool size. Equal-distance ties are broken by global id
// everywhere, which is what makes the k-NN result set well-defined even
// when the tie straddles the k-th boundary.
//
// Cross-shard k-NN bound tightening: shard tasks share one bounded top-k
// (mutex-guarded binary heap ordered by (distance, id)) whose k-th
// distance is mirrored in a lock-free atomic radius. Each task walks its
// shard with an incremental best-first cursor (HybridTree::KnnCursor,
// ascending distances) and stops as soon as its next candidate lies
// beyond the shared radius — so whichever shard finds good neighbors
// first prunes every other shard's traversal. Stopping is exact: the
// radius only tightens, and a cursor past it can never contribute to the
// final top-k (candidates at exactly the radius keep streaming, which
// preserves id tie-breaking). The result is still canonical-deterministic
// under any thread interleaving; only the amount of pruning varies.
//
// Deadlines and cancellation ride in via exec::ExecOptions: tasks check
// both before touching their shard, and the k-NN loop re-checks between
// cursor pops. A shard that starts after the deadline fails the whole
// request with DeadlineExceeded — a partial scatter is a wrong answer,
// not a slow one. ExecOptions::io_pool is ignored here; attach a
// dedicated prefetch pool at build time via ShardedIndexOptions::io_pool
// instead (the serving tier holds concurrent-read mode open, so the
// executor stays attached for the index's lifetime).
//
// Threading: safe to call from any thread EXCEPT the serving pool's own
// workers (a scatter blocked on its own pool's queue would deadlock).
// With a null pool the scatter degrades to an in-caller serial loop —
// same results, test convenience.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "core/bulk_load.h"
#include "core/hybrid_tree.h"
#include "data/dataset.h"
#include "exec/query_executor.h"
#include "exec/thread_pool.h"
#include "geometry/box.h"
#include "geometry/metrics.h"
#include "serve/partition.h"
#include "storage/cache_manager.h"
#include "storage/io_stats.h"
#include "storage/paged_file.h"

namespace ht {

struct ShardedIndexOptions {
  /// Number of shards (>= 1).
  size_t shards = 4;
  ShardPartitioner partitioner = ShardPartitioner::kKdRegion;
  /// Per-shard BulkLoadOptions passthrough: target fill and stage-1
  /// threads (the parallel loader inside each shard build).
  double fill = 0.9;
  size_t bulk_threads = 0;
  /// Backing file per shard; default MemPagedFile. The index owns the
  /// returned files.
  std::function<std::unique_ptr<PagedFile>(size_t shard)> file_factory;
  /// Optional dedicated prefetch pool, attached to every shard's buffer
  /// pool for the index's lifetime (must be distinct from the query pool
  /// passed to Build, and must outlive the index). Pair with
  /// prefetch_depth in the tree options to overlap cold reads.
  ThreadPool* io_pool = nullptr;
  /// Optional global cache budget: every shard's buffer pool registers
  /// with this manager at build (as "shard<N>") and unregisters in the
  /// destructor, so one memory budget is shared — and periodically
  /// rebalanced by observed demand misses — across all shards (and across
  /// multiple indexes sharing the manager). Not owned; must outlive the
  /// index. When set, it overrides tree_options.buffer_pool_pages with the
  /// manager's split. nullptr = independent per-shard capacities.
  CacheManager* cache_manager = nullptr;
};

class ShardedIndex {
 public:
  /// Partitions `data`, bulk-loads one tree per shard, and flips every
  /// shard into concurrent-read mode. `pool` runs the scatter tasks (not
  /// owned; may be nullptr for serial in-caller execution; replaceable
  /// later via set_pool under the caller's quiescence).
  static Result<std::unique_ptr<ShardedIndex>> Build(
      const HybridTreeOptions& tree_options,
      const ShardedIndexOptions& shard_options, const Dataset& data,
      ThreadPool* pool);

  ~ShardedIndex();
  HT_DISALLOW_COPY_AND_ASSIGN(ShardedIndex);

  /// All global ids inside `query`, ascending. Scatter-gather over every
  /// shard; honours options.deadline_seconds / options.cancel.
  Status SearchBox(const Box& query, const ExecOptions& options,
                   std::vector<uint64_t>* out) const;

  /// All global ids within `radius` of `center` under `metric`, ascending.
  Status SearchRange(std::span<const float> center, double radius,
                     const DistanceMetric& metric, const ExecOptions& options,
                     std::vector<uint64_t>* out) const;

  /// The k nearest neighbors as (distance, global id), ascending by
  /// (distance, id) — ties broken by id. Cross-shard bound tightening via
  /// the shared atomic radius (see file comment).
  Status SearchKnn(std::span<const float> center, size_t k,
                   const DistanceMetric& metric, const ExecOptions& options,
                   std::vector<std::pair<double, uint64_t>>* out) const;

  size_t shards() const { return shards_.size(); }
  uint64_t size() const { return total_count_; }
  const HybridTreeOptions& tree_options() const { return tree_options_; }

  /// Shard tree / row count, exposed for stats and tests.
  const HybridTree& shard_tree(size_t s) const { return *shards_[s]->tree; }
  size_t shard_rows(size_t s) const {
    return shards_[s]->local_to_global.size();
  }

  /// I/O attributed to serving on shard `s` since build (or the last
  /// ResetIo): per-task IoStatsScope sums, so build I/O is excluded and
  /// the batched-read/prefetch counters reflect query traffic only.
  IoStats shard_io(size_t s) const;
  void ResetIo();

  /// Point-in-time cache gauges of shard `s`'s buffer pool (policy,
  /// current capacity target, occupancy, segment sizes, counters).
  BufferPool::CacheSnapshot shard_cache(size_t s) const {
    return shards_[s]->tree->pool().SnapshotCache();
  }

  /// Count-gated CacheManager rebalance hook; the server calls this once
  /// per executed request. No-op without a cache manager.
  void MaybeRebalanceCache() const {
    if (shard_options_.cache_manager != nullptr) {
      shard_options_.cache_manager->MaybeRebalance();
    }
  }

  ThreadPool* pool() const { return pool_; }
  /// Swaps the scatter pool. Caller must guarantee no search is in flight
  /// (same exclusivity rule as every other mode switch in the library).
  void set_pool(ThreadPool* pool) { pool_ = pool; }

 private:
  struct Shard {
    std::unique_ptr<PagedFile> file;
    std::unique_ptr<HybridTree> tree;
    /// Shard-local id (bulk-load row index) -> global id.
    std::vector<uint64_t> local_to_global;
    /// Serving-attributed I/O, accumulated per scatter task. Leaf-level
    /// within the serve tier (never held across a tree or pool call).
    mutable Mutex io_mu{LockRank::kServeScatter, "ShardedIndex::Shard::io_mu"};
    mutable IoStats io HT_GUARDED_BY(io_mu);
  };

  ShardedIndex() = default;

  /// Fans `fn(shard_index)` out to the pool (or runs it inline when the
  /// pool is null), one task per shard, each wrapped in deadline/cancel
  /// checks and an IoStatsScope that lands in the shard's io counter.
  /// Returns the merged status: Cancelled beats DeadlineExceeded beats
  /// the first other failure.
  Status RunOnShards(const ExecOptions& options,
                     const std::function<Status(size_t)>& fn) const;

  /// Scratch free-list: scatter tasks borrow a SearchScratch for the
  /// duration of one per-shard search, so steady-state serving stays
  /// allocation-light without tying scratches to pool worker identity.
  std::unique_ptr<SearchScratch> AcquireScratch() const;
  void ReleaseScratch(std::unique_ptr<SearchScratch> scratch) const;

  HybridTreeOptions tree_options_;
  ShardedIndexOptions shard_options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  uint64_t total_count_ = 0;
  ThreadPool* pool_ = nullptr;

  mutable Mutex scratch_mu_{LockRank::kServeScatter,
                            "ShardedIndex::scratch_mu_"};
  mutable std::vector<std::unique_ptr<SearchScratch>> scratch_pool_
      HT_GUARDED_BY(scratch_mu_);
};

}  // namespace ht
