#include "serve/sharded_index.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "common/timing.h"

namespace ht {

namespace {

/// Per-request completion barrier for tasks on a SHARED pool:
/// ThreadPool::Wait() drains the whole queue (every concurrent request's
/// tasks), so each scatter counts down its own latch instead.
class Latch {
 public:
  explicit Latch(size_t n) : remaining_(n) {}

  void Done() {
    MutexLock lock(&mu_);
    if (--remaining_ == 0) cv_.NotifyAll();
  }

  void Wait() {
    MutexLock lock(&mu_);
    while (remaining_ != 0) cv_.Wait(lock);
  }

 private:
  Mutex mu_{LockRank::kServeScatter, "Latch::mu_"};
  CondVar cv_;
  size_t remaining_ HT_GUARDED_BY(mu_);
};

/// Merged request status: Cancelled beats hard failures (the caller asked
/// to stop) beats DeadlineExceeded beats OK. A partial scatter never
/// reports success.
Status MergeShardStatuses(const std::vector<Status>& statuses) {
  const Status* expired = nullptr;
  const Status* failed = nullptr;
  for (const Status& st : statuses) {
    if (st.ok()) continue;
    if (st.IsCancelled()) return st;
    if (st.IsDeadlineExceeded()) {
      if (expired == nullptr) expired = &st;
    } else if (failed == nullptr) {
      failed = &st;
    }
  }
  if (failed != nullptr) return *failed;
  if (expired != nullptr) return *expired;
  return Status::OK();
}

/// Shared bounded top-k of the scatter-gather k-NN: a mutex-guarded
/// max-heap ordered by (distance, global id) — so equal-distance ties are
/// broken by id and the retained set is the canonical k smallest pairs of
/// everything offered, independent of offer interleaving — plus a
/// lock-free mirror of the k-th distance for cheap cross-shard pruning.
/// The mirror may lag (only ever too LARGE), which costs pruning, never
/// correctness.
class SharedTopK {
 public:
  explicit SharedTopK(size_t k) : k_(k) {}

  void Offer(double dist, uint64_t id) {
    const std::pair<double, uint64_t> cand(dist, id);
    MutexLock lock(&mu_);
    if (heap_.size() < k_) {
      heap_.push_back(cand);
      std::push_heap(heap_.begin(), heap_.end());
      if (heap_.size() == k_) {
        bound_.store(heap_.front().first, std::memory_order_relaxed);
      }
    } else if (cand < heap_.front()) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.back() = cand;
      std::push_heap(heap_.begin(), heap_.end());
      bound_.store(heap_.front().first, std::memory_order_relaxed);
    }
  }

  /// Current k-th distance, or +inf while fewer than k candidates exist.
  /// A cursor whose NEXT distance exceeds this can stop: its remaining
  /// stream is ascending and the bound only tightens, so nothing it would
  /// yield can displace a retained (distance, id) pair. Candidates AT the
  /// bound keep streaming, which is what preserves id tie-breaking across
  /// the k-th boundary.
  double Bound() const { return bound_.load(std::memory_order_relaxed); }

  /// The bound mirror itself, for handing to KnnCursorOptions::shared_bound
  /// so per-shard cursors prune against the live cross-shard radius. Same
  /// relaxed-read contract as Bound(). Valid for this object's lifetime.
  const std::atomic<double>* BoundPtr() const { return &bound_; }

  /// Drains the heap into (distance, id)-ascending order.
  std::vector<std::pair<double, uint64_t>> TakeSorted() {
    MutexLock lock(&mu_);
    std::sort(heap_.begin(), heap_.end());
    return std::move(heap_);
  }

 private:
  const size_t k_;
  Mutex mu_{LockRank::kServeScatter, "SharedTopK::mu_"};
  std::vector<std::pair<double, uint64_t>> heap_
      HT_GUARDED_BY(mu_);  // max-heap by (dist, id)
  /// Relaxed on both sides: the mirror is a monotone pruning hint with no
  /// associated data — a stale read only weakens pruning (see Bound()),
  /// and the heap itself is only touched under mu_.
  std::atomic<double> bound_{std::numeric_limits<double>::infinity()};
};

}  // namespace

Result<std::unique_ptr<ShardedIndex>> ShardedIndex::Build(
    const HybridTreeOptions& tree_options,
    const ShardedIndexOptions& shard_options, const Dataset& data,
    ThreadPool* pool) {
  if (shard_options.io_pool != nullptr && shard_options.io_pool == pool) {
    return Status::InvalidArgument(
        "io_pool must be distinct from the scatter pool (prefetch fills "
        "queued behind the shard tasks waiting on them would deadlock)");
  }
  HT_ASSIGN_OR_RETURN(
      std::vector<std::vector<uint32_t>> parts,
      PartitionRows(data, tree_options, shard_options.partitioner,
                    shard_options.shards));

  std::unique_ptr<ShardedIndex> index(new ShardedIndex());
  index->tree_options_ = tree_options;
  index->shard_options_ = shard_options;
  index->pool_ = pool;
  index->total_count_ = data.size();

  for (size_t s = 0; s < parts.size(); ++s) {
    auto shard = std::make_unique<Shard>();
    shard->file = shard_options.file_factory
                      ? shard_options.file_factory(s)
                      : std::make_unique<MemPagedFile>(tree_options.page_size);
    Dataset shard_data(data.dim(), parts[s].size());
    shard->local_to_global.reserve(parts[s].size());
    for (size_t i = 0; i < parts[s].size(); ++i) {
      auto row = data.Row(parts[s][i]);
      std::copy(row.begin(), row.end(), shard_data.MutableRow(i).begin());
      shard->local_to_global.push_back(parts[s][i]);
    }
    BulkLoadOptions bulk;
    bulk.fill = shard_options.fill;
    bulk.threads = shard_options.bulk_threads;
    HT_ASSIGN_OR_RETURN(
        shard->tree, BulkLoad(tree_options, shard->file.get(), shard_data,
                              bulk));
    // The serving tier is read-only: concurrent-read mode stays on for the
    // life of the index, so requests never pay a mode switch.
    HT_RETURN_NOT_OK(shard->tree->SetConcurrentReads(true));
    if (shard_options.io_pool != nullptr) {
      ThreadPool* io = shard_options.io_pool;
      shard->tree->pool().SetPrefetchExecutor([io](std::function<void()> f) {
        return io
            ->Submit([fill = std::move(f)]() mutable {
              fill();
              return Status::OK();
            })
            .ok();
      });
    }
    if (shard_options.cache_manager != nullptr) {
      // Register AFTER the bulk load so the manager's even split (and any
      // later rebalance) applies to serving traffic, not the build.
      shard_options.cache_manager->Register("shard" + std::to_string(s),
                                            &shard->tree->pool());
    }
    index->shards_.push_back(std::move(shard));
  }
  return index;
}

ShardedIndex::~ShardedIndex() {
  // Unregister from the cache manager first so a concurrent rebalance can
  // never retarget a pool that is being torn down.
  if (shard_options_.cache_manager != nullptr) {
    for (auto& shard : shards_) {
      shard_options_.cache_manager->Unregister(&shard->tree->pool());
    }
  }
  // Detach prefetch executors next: detaching blocks until in-flight
  // fills drain, and those fills reference the shard buffer pools.
  if (shard_options_.io_pool != nullptr) {
    for (auto& shard : shards_) {
      shard->tree->pool().SetPrefetchExecutor(nullptr);
    }
  }
}

std::unique_ptr<SearchScratch> ShardedIndex::AcquireScratch() const {
  {
    MutexLock lock(&scratch_mu_);
    if (!scratch_pool_.empty()) {
      std::unique_ptr<SearchScratch> s = std::move(scratch_pool_.back());
      scratch_pool_.pop_back();
      return s;
    }
  }
  return std::make_unique<SearchScratch>();
}

void ShardedIndex::ReleaseScratch(
    std::unique_ptr<SearchScratch> scratch) const {
  MutexLock lock(&scratch_mu_);
  scratch_pool_.push_back(std::move(scratch));
}

IoStats ShardedIndex::shard_io(size_t s) const {
  MutexLock lock(&shards_[s]->io_mu);
  return shards_[s]->io;
}

void ShardedIndex::ResetIo() {
  for (auto& shard : shards_) {
    MutexLock lock(&shard->io_mu);
    shard->io.Reset();
  }
}

Status ShardedIndex::RunOnShards(
    const ExecOptions& options,
    const std::function<Status(size_t)>& fn) const {
  const size_t n = shards_.size();
  WallTimer timer;
  const double deadline = options.deadline_seconds;
  const std::atomic<bool>* cancel = options.cancel;
  std::vector<Status> statuses(n);
  // Per-task I/O, one private slot per shard (no locking); summed into
  // options.request_io after the barrier for per-request attribution.
  std::vector<IoStats> task_io(n);

  auto run_one = [&](size_t s) {
    // Late starts fail fast: a shard task dequeued after cancellation or
    // past the deadline must not produce a partial (= wrong) answer.
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      statuses[s] = Status::Cancelled("request cancelled");
      return;
    }
    if (deadline > 0.0 && timer.Seconds() > deadline) {
      statuses[s] =
          Status::DeadlineExceeded("deadline exceeded before shard search");
      return;
    }
    IoStats io;
    {
      IoStatsScope scope(&io);
      statuses[s] = fn(s);
    }
    {
      MutexLock lock(&shards_[s]->io_mu);
      shards_[s]->io.Accumulate(io);
    }
    task_io[s] = io;
  };

  if (pool_ == nullptr) {
    for (size_t s = 0; s < n; ++s) run_one(s);
  } else {
    Latch latch(n);
    for (size_t s = 0; s < n; ++s) {
      Status submit = pool_->Submit([&, s]() -> Status {
        run_one(s);
        latch.Done();
        return Status::OK();
      });
      if (!submit.ok()) {
        statuses[s] = submit;
        latch.Done();
      }
    }
    latch.Wait();
  }
  if (options.request_io != nullptr) {
    for (const IoStats& io : task_io) options.request_io->Accumulate(io);
  }
  return MergeShardStatuses(statuses);
}

Status ShardedIndex::SearchBox(const Box& query, const ExecOptions& options,
                               std::vector<uint64_t>* out) const {
  if (out == nullptr) {
    return Status::InvalidArgument("SearchBox requires an output vector");
  }
  out->clear();
  std::vector<std::vector<uint64_t>> per_shard(shards_.size());
  HT_RETURN_NOT_OK(RunOnShards(options, [&](size_t s) -> Status {
    const Shard& shard = *shards_[s];
    std::unique_ptr<SearchScratch> scratch = AcquireScratch();
    Status st = shard.tree->SearchBoxInto(query, scratch.get(), &per_shard[s]);
    ReleaseScratch(std::move(scratch));
    HT_RETURN_NOT_OK(st);
    for (uint64_t& id : per_shard[s]) id = shard.local_to_global[id];
    return Status::OK();
  }));
  for (const auto& v : per_shard) out->insert(out->end(), v.begin(), v.end());
  std::sort(out->begin(), out->end());
  return Status::OK();
}

Status ShardedIndex::SearchRange(std::span<const float> center, double radius,
                                 const DistanceMetric& metric,
                                 const ExecOptions& options,
                                 std::vector<uint64_t>* out) const {
  if (out == nullptr) {
    return Status::InvalidArgument("SearchRange requires an output vector");
  }
  out->clear();
  std::vector<std::vector<uint64_t>> per_shard(shards_.size());
  HT_RETURN_NOT_OK(RunOnShards(options, [&](size_t s) -> Status {
    const Shard& shard = *shards_[s];
    std::unique_ptr<SearchScratch> scratch = AcquireScratch();
    Status st = shard.tree->SearchRangeInto(center, radius, metric,
                                            scratch.get(), &per_shard[s]);
    ReleaseScratch(std::move(scratch));
    HT_RETURN_NOT_OK(st);
    for (uint64_t& id : per_shard[s]) id = shard.local_to_global[id];
    return Status::OK();
  }));
  for (const auto& v : per_shard) out->insert(out->end(), v.begin(), v.end());
  std::sort(out->begin(), out->end());
  return Status::OK();
}

Status ShardedIndex::SearchKnn(
    std::span<const float> center, size_t k, const DistanceMetric& metric,
    const ExecOptions& options,
    std::vector<std::pair<double, uint64_t>>* out) const {
  if (out == nullptr) {
    return Status::InvalidArgument("SearchKnn requires an output vector");
  }
  out->clear();
  if (k == 0) return Status::OK();
  if (options.knn_epsilon < 0.0) {
    return Status::InvalidArgument("knn_epsilon must be non-negative");
  }

  SharedTopK top(k);
  WallTimer timer;
  const double deadline = options.deadline_seconds;
  const std::atomic<bool>* cancel = options.cancel;
  // Budget-split policy: the request's total leaf-visit budget divides
  // evenly across shards, rounding UP — ceil keeps the per-shard slice
  // from being rounded to zero and never under-provisions the request
  // total (at most shards-1 extra visits). Each shard's slice is private,
  // which is what keeps budgeted results deterministic: no shard's visit
  // count depends on another shard's progress.
  const size_t budget = options.knn_max_leaf_visits;
  const size_t per_shard_budget =
      budget == 0 ? 0 : (budget + shards_.size() - 1) / shards_.size();
  KnnCursorOptions copts;
  copts.limit = k;
  copts.epsilon = options.knn_epsilon;
  copts.max_leaf_visits = per_shard_budget;
  copts.shared_bound = top.BoundPtr();
  // Per-task approximation accounting, one private slot per shard (no
  // locking); summed into options.knn_stats after the scatter barrier.
  std::vector<KnnExecStats> task_knn(shards_.size());

  Status run = RunOnShards(options, [&](size_t s) -> Status {
    const Shard& shard = *shards_[s];
    if (shard.tree->size() == 0) return Status::OK();
    HybridTree::KnnCursor cursor =
        shard.tree->OpenKnnCursor(center, metric, copts);
    Status st = Status::OK();
    for (;;) {
      if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
        st = Status::Cancelled("request cancelled");
        break;
      }
      if (deadline > 0.0 && timer.Seconds() > deadline) {
        st = Status::DeadlineExceeded("deadline exceeded mid k-NN");
        break;
      }
      auto next_or = cursor.Next();
      if (!next_or.ok()) {
        st = next_or.status();
        break;
      }
      const auto& next = next_or.ValueOrDie();
      if (!next.has_value()) break;
      // Cross-shard bound tightening: the cursor streams ascending, so
      // once its next candidate lies strictly beyond the shared k-th
      // distance nothing further from this shard can make the top-k.
      if (next->first > top.Bound()) break;
      top.Offer(next->first, shard.local_to_global[next->second]);
    }
    task_knn[s].leaf_visits = cursor.leaf_visits();
    if (cursor.early_terminated()) task_knn[s].early_terminations = 1;
    return st;
  });
  if (options.knn_stats != nullptr) {
    for (const KnnExecStats& kn : task_knn) options.knn_stats->Accumulate(kn);
  }
  HT_RETURN_NOT_OK(run);
  *out = top.TakeSorted();
  return Status::OK();
}

}  // namespace ht
