// Copyright 2026 The HybridTree Authors.
// Per-tenant admission control for the serving layer: a token bucket
// (sustained rate + burst) gates REQUEST RATE, a bounded in-flight count
// gates CONCURRENCY, and the two compose into the classic
// reject-or-briefly-queue front door:
//
//   * No token available        -> ResourceExhausted, immediately. Rate
//     overload is rejected, never queued — queueing it would just move
//     the overload into memory.
//   * In-flight slots all busy  -> the request WAITS (bounded by its own
//     deadline budget and the quota's max_queue_seconds); if a slot frees
//     in time it proceeds, otherwise DeadlineExceeded. This wait is the
//     "admission queueing delay" the server subtracts from the request's
//     deadline before fanning out to shards.
//
// Every Admit reports how long it queued, and releases its in-flight slot
// through an RAII ticket so early returns can't leak concurrency.
//
// Time is injected (a seconds-valued clock callable) so tests drive the
// token bucket deterministically; the in-flight wait uses the real
// condition-variable clock regardless (it synchronizes actual threads).

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/macros.h"
#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"

namespace ht {

/// Per-tenant limits. The zero-value means "unlimited" for every field, so
/// an unconfigured tenant is admitted unconditionally (open by default;
/// flip by configuring quotas for everyone).
struct TenantQuota {
  /// Sustained admission rate in requests/second; 0 = unlimited.
  double rate_qps = 0.0;
  /// Token-bucket capacity (burst size) in requests; 0 picks
  /// max(1, rate_qps) so a configured rate always admits one-at-a-time.
  double burst = 0.0;
  /// Maximum requests past admission but not yet finished; 0 = unlimited.
  size_t max_in_flight = 0;
  /// Longest a request may queue for an in-flight slot when it carries no
  /// deadline of its own (deadline-bearing requests wait at most their
  /// remaining budget). Guards against unbounded queueing; 0 disables
  /// waiting entirely (full == immediate DeadlineExceeded).
  double max_queue_seconds = 1.0;
  /// Default k-NN recall tier for the tenant: requests that carry no
  /// per-request recall override run with this epsilon and leaf-visit
  /// budget (semantics in core KnnSearchLimits / exec ExecOptions). The
  /// zero values keep the open-by-default rule: an unconfigured tenant
  /// gets exact, unlimited k-NN.
  double knn_epsilon = 0.0;
  size_t knn_max_leaf_visits = 0;
};

class AdmissionController;

/// RAII in-flight slot: releases on destruction. Movable, not copyable.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  AdmissionTicket(AdmissionTicket&& other) noexcept { MoveFrom(other); }
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(other);
    }
    return *this;
  }
  ~AdmissionTicket() { Release(); }

  /// Seconds this admission spent queued for an in-flight slot — the
  /// delay the server must subtract from the request's deadline budget.
  double queue_wait_seconds() const { return queue_wait_seconds_; }

  void Release();

 private:
  friend class AdmissionController;
  void MoveFrom(AdmissionTicket& other) {
    controller_ = other.controller_;
    tenant_ = other.tenant_;
    queue_wait_seconds_ = other.queue_wait_seconds_;
    other.controller_ = nullptr;
    other.tenant_ = nullptr;
  }

  AdmissionController* controller_ = nullptr;
  void* tenant_ = nullptr;  // opaque TenantState*
  double queue_wait_seconds_ = 0.0;
};

class AdmissionController {
 public:
  /// Seconds-valued monotonic clock; defaults to steady_clock.
  using Clock = std::function<double()>;

  explicit AdmissionController(Clock clock = {});
  ~AdmissionController();
  HT_DISALLOW_COPY_AND_ASSIGN(AdmissionController);

  /// Installs (or replaces) `tenant`'s quota. The token bucket starts
  /// full. Callable anytime; in-flight counts carry over.
  void SetQuota(const std::string& tenant, const TenantQuota& quota);

  /// Admits one request for `tenant` or fails with ResourceExhausted (no
  /// token) / DeadlineExceeded (queued past `max_wait_seconds` for an
  /// in-flight slot). `max_wait_seconds` is the request's remaining
  /// deadline budget; <= 0 means "no deadline" and defers to the quota's
  /// max_queue_seconds. Unknown tenants get the default (unlimited)
  /// quota. The ticket holds the in-flight slot.
  Result<AdmissionTicket> Admit(const std::string& tenant,
                                double max_wait_seconds = 0.0);

 private:
  friend class AdmissionTicket;

  struct TenantState {
    Mutex mu{LockRank::kAdmissionTenant, "AdmissionController::TenantState::mu"};
    CondVar slot_free;
    TenantQuota quota HT_GUARDED_BY(mu);
    double tokens HT_GUARDED_BY(mu) = 0.0;
    double last_refill HT_GUARDED_BY(mu) = 0.0;
    size_t in_flight HT_GUARDED_BY(mu) = 0;
  };

  TenantState* GetTenant(const std::string& tenant);
  void ReleaseSlot(TenantState* state);

  Clock clock_;
  /// Guards only the map; never held together with a TenantState::mu
  /// (GetTenant returns a stable pointer, callers lock it afterwards) —
  /// ranked above it anyway for defense in depth.
  Mutex tenants_mu_{LockRank::kAdmissionTenantMap,
                    "AdmissionController::tenants_mu_"};
  /// Node-based map: TenantState addresses are stable across inserts, so
  /// tickets and waiters hold plain pointers.
  std::map<std::string, std::unique_ptr<TenantState>> tenants_
      HT_GUARDED_BY(tenants_mu_);
};

}  // namespace ht
