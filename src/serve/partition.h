// Copyright 2026 The HybridTree Authors.
// Shard partitioners for the serving layer: assign every row of one
// logical dataset to one of N shards.
//
// Two policies:
//  * kKdRegion — recursive EDA-guided cuts via the bulk loader's
//    PartitionSubset (core/bulk_load.h). Shards are axis-aligned spatial
//    regions in kd order, so point-local queries touch few shards and the
//    per-shard trees get tight live regions. A pure function of the data:
//    the assignment never depends on shard-build order or threads.
//  * kHash — splitmix64 of the row id modulo N. Region-free and
//    perfectly balanced even under adversarial spatial skew; every query
//    fans out to all shards. The fallback when kd regions would be
//    lopsided (e.g., heavily duplicated keys).
//
// Both return exactly `shards` subsets (possibly empty) whose union is
// [0, data.size()), each sorted ascending within kKdRegion's kd order /
// ascending row id for kHash — deterministic either way.

#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/options.h"
#include "data/dataset.h"

namespace ht {

/// Row-to-shard assignment policy (see file comment).
enum class ShardPartitioner : uint8_t {
  kKdRegion = 0,
  kHash = 1,
};

/// The splitmix64 finalizer used by kHash (exposed for tests that want to
/// predict shard membership).
uint64_t HashShardMix(uint64_t id);

/// Partitions rows [0, data.size()) into exactly `shards` subsets under
/// `partitioner`. `options` supplies the split policy and utilization
/// floor for kKdRegion cuts (ignored by kHash). InvalidArgument when
/// shards == 0 or the dataset dimensionality mismatches options.dim.
Result<std::vector<std::vector<uint32_t>>> PartitionRows(
    const Dataset& data, const HybridTreeOptions& options,
    ShardPartitioner partitioner, size_t shards);

}  // namespace ht
