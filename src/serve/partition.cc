#include "serve/partition.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "core/bulk_load.h"

namespace ht {

namespace {

/// Recursive kd-region sharding: cut the subset with the bulk loader's
/// deterministic PartitionSubset, sending max(1, shards/2) shards left —
/// the same left-count rule PartitionSubset's cut placement assumes — and
/// recurse. Emits subsets in kd (left-to-right) order.
void KdShardRec(const Dataset& data, const HybridTreeOptions& options,
                std::vector<uint32_t> ids, size_t shards,
                std::vector<std::vector<uint32_t>>* out) {
  if (shards <= 1) {
    out->push_back(std::move(ids));
    return;
  }
  const size_t left_shards = std::max<size_t>(1, shards / 2);
  if (ids.size() < 2) {
    // Too few rows to cut: everything lands in the first shard of this
    // branch, the rest come out empty (still exactly `shards` subsets).
    out->push_back(std::move(ids));
    for (size_t s = 1; s < shards; ++s) out->emplace_back();
    return;
  }
  // Align the cut to the per-shard granularity: PartitionSubset splits at
  // the max(1, n_leaves/2)-leaf boundary, so target_leaf = ceil(n/shards)
  // makes "leaf" mean "shard" and the cut land at the left_shards line.
  // capacity = target_leaf routes its duplicate-block fallback through the
  // same min-utilization floor a data node would get.
  const size_t target_leaf =
      std::max<size_t>(1, (ids.size() + shards - 1) / shards);
  const size_t cut =
      PartitionSubset(data, options, target_leaf, target_leaf, ids);
  std::vector<uint32_t> left(ids.begin(),
                             ids.begin() + static_cast<ptrdiff_t>(cut));
  std::vector<uint32_t> right(ids.begin() + static_cast<ptrdiff_t>(cut),
                              ids.end());
  ids.clear();
  ids.shrink_to_fit();
  KdShardRec(data, options, std::move(left), left_shards, out);
  KdShardRec(data, options, std::move(right), shards - left_shards, out);
}

}  // namespace

uint64_t HashShardMix(uint64_t id) {
  uint64_t z = id + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Result<std::vector<std::vector<uint32_t>>> PartitionRows(
    const Dataset& data, const HybridTreeOptions& options,
    ShardPartitioner partitioner, size_t shards) {
  if (shards == 0) {
    return Status::InvalidArgument("shard count must be at least 1");
  }
  if (data.dim() != options.dim) {
    return Status::InvalidArgument("dataset dimensionality mismatch");
  }
  std::vector<std::vector<uint32_t>> out;
  out.reserve(shards);
  switch (partitioner) {
    case ShardPartitioner::kKdRegion: {
      std::vector<uint32_t> all(data.size());
      std::iota(all.begin(), all.end(), 0u);
      KdShardRec(data, options, std::move(all), shards, &out);
      break;
    }
    case ShardPartitioner::kHash: {
      out.resize(shards);
      for (size_t i = 0; i < data.size(); ++i) {
        out[HashShardMix(i) % shards].push_back(static_cast<uint32_t>(i));
      }
      break;
    }
  }
  HT_CHECK(out.size() == shards);
  return out;
}

}  // namespace ht
