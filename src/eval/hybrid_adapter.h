// Copyright 2026 The HybridTree Authors.
// SpatialIndex adapter over HybridTree so the harness can drive it
// uniformly alongside the baselines.

#pragma once

#include <memory>

#include "baselines/spatial_index.h"
#include "core/hybrid_tree.h"

namespace ht {

class HybridIndexAdapter final : public SpatialIndex {
 public:
  static Result<std::unique_ptr<HybridIndexAdapter>> Create(
      const HybridTreeOptions& options, PagedFile* file) {
    HT_ASSIGN_OR_RETURN(auto tree, HybridTree::Create(options, file));
    return std::unique_ptr<HybridIndexAdapter>(
        new HybridIndexAdapter(std::move(tree)));
  }

  std::string Name() const override {
    return tree_->options().split_policy == SplitPolicy::kVamSplit
               ? "Hybrid(VAM)"
               : "HybridTree";
  }
  Status Insert(std::span<const float> point, uint64_t id) override {
    return tree_->Insert(point, id);
  }
  Status Delete(std::span<const float> point, uint64_t id) override {
    return tree_->Delete(point, id);
  }
  Result<std::vector<uint64_t>> SearchBox(const Box& query) override {
    return tree_->SearchBox(query);
  }
  Result<std::vector<uint64_t>> SearchRange(
      std::span<const float> center, double radius,
      const DistanceMetric& metric) override {
    return tree_->SearchRange(center, radius, metric);
  }
  Result<std::vector<std::pair<double, uint64_t>>> SearchKnn(
      std::span<const float> center, size_t k,
      const DistanceMetric& metric) override {
    return tree_->SearchKnn(center, k, metric);
  }
  uint64_t size() const override { return tree_->size(); }
  BufferPool& pool() override { return tree_->pool(); }

  HybridTree& tree() { return *tree_; }

 private:
  explicit HybridIndexAdapter(std::unique_ptr<HybridTree> tree)
      : tree_(std::move(tree)) {}
  std::unique_ptr<HybridTree> tree_;
};

}  // namespace ht
