// Copyright 2026 The HybridTree Authors.
// Experiment harness: builds indexes over datasets, runs calibrated query
// workloads, and reports the paper's figures of merit — average disk
// accesses, average CPU time, and costs normalized against sequential scan
// (§4: normalized I/O cost of linear scan is 0.1 because sequential pages
// cost one tenth of a random access; normalized CPU cost of linear scan is
// 1.0).

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/spatial_index.h"
#include "common/result.h"
#include "data/dataset.h"
#include "data/workload.h"
#include "storage/paged_file.h"

namespace ht {

/// Which index structure to build.
enum class IndexKind {
  kHybrid,
  kHybridVam,
  kHybridNoEls,
  kSrTree,
  kHbTree,
  kKdbTree,
  kRStarTree,
  kSeqScan,
};

std::string IndexKindName(IndexKind kind);

/// Build-time configuration shared across structures.
struct BuildConfig {
  size_t page_size = kDefaultPageSize;
  /// Hybrid tree only. The paper runs 4-bit ELS against ancestor-clipped
  /// reference regions; our references are node-local (robustly immune to
  /// ancestor boundary changes — see core/hybrid_tree.h), which needs ~2
  /// extra bits for the same effective resolution. Figure 5(c) sweeps this.
  uint32_t els_bits = 8;
  double expected_query_side = 0.1;
};

/// An index together with the backing file it lives in.
struct IndexBundle {
  std::unique_ptr<MemPagedFile> file;
  std::unique_ptr<SpatialIndex> index;
  double build_seconds = 0.0;
  /// File-level I/O incurred by construction — `writes` counts page-store
  /// round trips, `batch_writes` the WriteBatch trips that coalesced them.
  IoStats build_io;
};

/// Builds `kind` over `data` (row ids become object ids).
Result<IndexBundle> BuildIndex(IndexKind kind, const Dataset& data,
                               const BuildConfig& config);

/// Per-workload measured costs.
struct QueryCosts {
  double avg_accesses = 0.0;    // logical page reads per query
  double avg_physical = 0.0;    // physical (pool-miss) reads per query
  double hit_rate = 0.0;        // buffer-pool hit rate over the workload
  double avg_cpu_seconds = 0.0; // process CPU time per query
  double avg_results = 0.0;
  size_t queries = 0;
};

/// Runs every box query, averaging accesses/CPU. Results are checked for
/// cardinality consistency across structures by the caller if desired.
Result<QueryCosts> RunBoxWorkload(SpatialIndex* index,
                                  const std::vector<Box>& queries);

/// Runs distance-range queries under `metric`.
Result<QueryCosts> RunRangeWorkload(
    SpatialIndex* index, const std::vector<std::vector<float>>& centers,
    double radius, const DistanceMetric& metric);

/// Runs k-NN queries under `metric`.
Result<QueryCosts> RunKnnWorkload(
    SpatialIndex* index, const std::vector<std::vector<float>>& centers,
    size_t k, const DistanceMetric& metric);

/// Paper-style normalization against the sequential scan of the same data:
/// io = random accesses / sequential pages (0.1 for the scan itself);
/// cpu = cpu / scan cpu (1.0 for the scan itself).
struct NormalizedCosts {
  double io = 0.0;
  double cpu = 0.0;
};
NormalizedCosts Normalize(const QueryCosts& costs, bool sequential_io,
                          uint64_t scan_pages, const QueryCosts& scan_costs);

/// Environment-variable override helpers for bench defaults.
size_t EnvSize(const char* name, size_t fallback);

/// Fixed-width table printing for the bench binaries.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void AddRow(const std::vector<std::string>& cells);
  void Print() const;

  static std::string Num(double v, int precision = 4);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ht
