#include "eval/harness.h"

#include <cstdio>
#include <cstdlib>

#include "baselines/hb_tree.h"
#include "baselines/kdb_tree.h"
#include "baselines/rstar_tree.h"
#include "baselines/seqscan.h"
#include "baselines/sr_tree.h"
#include "common/timing.h"
#include "eval/hybrid_adapter.h"

namespace ht {

std::string IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kHybrid:
      return "HybridTree";
    case IndexKind::kHybridVam:
      return "Hybrid(VAM)";
    case IndexKind::kHybridNoEls:
      return "Hybrid(noELS)";
    case IndexKind::kSrTree:
      return "SR-tree";
    case IndexKind::kHbTree:
      return "hB-tree";
    case IndexKind::kKdbTree:
      return "KDB-tree";
    case IndexKind::kRStarTree:
      return "R*-tree";
    case IndexKind::kSeqScan:
      return "SeqScan";
  }
  return "?";
}

Result<IndexBundle> BuildIndex(IndexKind kind, const Dataset& data,
                               const BuildConfig& config) {
  IndexBundle bundle;
  bundle.file = std::make_unique<MemPagedFile>(config.page_size);
  WallTimer timer;
  switch (kind) {
    case IndexKind::kHybrid:
    case IndexKind::kHybridVam:
    case IndexKind::kHybridNoEls: {
      HybridTreeOptions options;
      options.dim = data.dim();
      options.page_size = config.page_size;
      options.expected_query_side = config.expected_query_side;
      if (kind == IndexKind::kHybridVam) {
        options.split_policy = SplitPolicy::kVamSplit;
      }
      if (kind == IndexKind::kHybridNoEls) {
        options.els_mode = ElsMode::kOff;
        options.els_bits = 0;
      } else {
        options.els_mode = ElsMode::kInMemory;
        options.els_bits = config.els_bits;
      }
      HT_ASSIGN_OR_RETURN(auto idx,
                          HybridIndexAdapter::Create(options,
                                                     bundle.file.get()));
      bundle.index = std::move(idx);
      break;
    }
    case IndexKind::kSrTree: {
      HT_ASSIGN_OR_RETURN(auto idx,
                          SrTree::Create(data.dim(), bundle.file.get()));
      bundle.index = std::move(idx);
      break;
    }
    case IndexKind::kHbTree: {
      HT_ASSIGN_OR_RETURN(auto idx,
                          HbTree::Create(data.dim(), bundle.file.get()));
      bundle.index = std::move(idx);
      break;
    }
    case IndexKind::kKdbTree: {
      HT_ASSIGN_OR_RETURN(auto idx,
                          KdbTree::Create(data.dim(), bundle.file.get()));
      bundle.index = std::move(idx);
      break;
    }
    case IndexKind::kRStarTree: {
      HT_ASSIGN_OR_RETURN(auto idx,
                          RStarTree::Create(data.dim(), bundle.file.get()));
      bundle.index = std::move(idx);
      break;
    }
    case IndexKind::kSeqScan: {
      HT_ASSIGN_OR_RETURN(auto idx,
                          SeqScan::Create(data.dim(), bundle.file.get()));
      bundle.index = std::move(idx);
      break;
    }
  }
  for (size_t i = 0; i < data.size(); ++i) {
    HT_RETURN_NOT_OK(bundle.index->Insert(data.Row(i), i));
  }
  bundle.build_seconds = timer.Seconds();
  bundle.build_io = bundle.file->stats();
  return bundle;
}

namespace {
template <typename RunOne>
Result<QueryCosts> RunWorkload(SpatialIndex* index, size_t n, RunOne run) {
  QueryCosts costs;
  costs.queries = n;
  uint64_t total_accesses = 0;
  uint64_t total_physical = 0;
  uint64_t total_results = 0;
  for (size_t q = 0; q < n; ++q) {
    index->pool().ResetStats();
    HT_ASSIGN_OR_RETURN(size_t results, run(q));
    const IoStats io = index->pool().stats();
    total_accesses += io.logical_reads;
    total_physical += io.physical_reads;
    total_results += results;
  }
  // Timing pass: the queries are single-threaded and CPU-bound (all pages
  // are memory-resident), so wall time equals CPU time — and unlike
  // CLOCK_PROCESS_CPUTIME_ID (10 ms jiffies on many VMs) the steady clock
  // has nanosecond resolution. Repeat the workload until enough time has
  // accumulated for a stable average.
  WallTimer timer;
  size_t reps = 0;
  do {
    for (size_t q = 0; q < n; ++q) {
      HT_ASSIGN_OR_RETURN(size_t results, run(q));
      (void)results;
    }
    ++reps;
  } while (timer.Seconds() < 0.05 && reps < 1000);
  costs.avg_accesses =
      static_cast<double>(total_accesses) / static_cast<double>(n);
  costs.avg_physical =
      static_cast<double>(total_physical) / static_cast<double>(n);
  {
    IoStats window;
    window.logical_reads = total_accesses;
    window.physical_reads = total_physical;
    costs.hit_rate = window.HitRate();
  }
  costs.avg_cpu_seconds =
      timer.Seconds() / (static_cast<double>(reps) * static_cast<double>(n));
  costs.avg_results =
      static_cast<double>(total_results) / static_cast<double>(n);
  return costs;
}
}  // namespace

Result<QueryCosts> RunBoxWorkload(SpatialIndex* index,
                                  const std::vector<Box>& queries) {
  return RunWorkload(index, queries.size(), [&](size_t q) -> Result<size_t> {
    HT_ASSIGN_OR_RETURN(auto hits, index->SearchBox(queries[q]));
    return hits.size();
  });
}

Result<QueryCosts> RunRangeWorkload(
    SpatialIndex* index, const std::vector<std::vector<float>>& centers,
    double radius, const DistanceMetric& metric) {
  return RunWorkload(index, centers.size(), [&](size_t q) -> Result<size_t> {
    HT_ASSIGN_OR_RETURN(auto hits,
                        index->SearchRange(centers[q], radius, metric));
    return hits.size();
  });
}

Result<QueryCosts> RunKnnWorkload(
    SpatialIndex* index, const std::vector<std::vector<float>>& centers,
    size_t k, const DistanceMetric& metric) {
  return RunWorkload(index, centers.size(), [&](size_t q) -> Result<size_t> {
    HT_ASSIGN_OR_RETURN(auto hits, index->SearchKnn(centers[q], k, metric));
    return hits.size();
  });
}

NormalizedCosts Normalize(const QueryCosts& costs, bool sequential_io,
                          uint64_t scan_pages, const QueryCosts& scan_costs) {
  NormalizedCosts out;
  if (sequential_io) {
    // Sequential accesses are ~10x cheaper than random (paper §4).
    out.io = 0.1 * costs.avg_accesses / static_cast<double>(scan_pages);
  } else {
    out.io = costs.avg_accesses / static_cast<double>(scan_pages);
  }
  out.cpu = scan_costs.avg_cpu_seconds > 0
                ? costs.avg_cpu_seconds / scan_costs.avg_cpu_seconds
                : 0.0;
  return out;
}

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || parsed == 0) return fallback;
  return static_cast<size_t>(parsed);
}

// --- TablePrinter -----------------------------------------------------------

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("|");
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  auto print_sep = [&]() {
    std::printf("+");
    for (size_t c = 0; c < headers_.size(); ++c) {
      for (size_t i = 0; i < widths[c] + 2; ++i) std::printf("-");
      std::printf("+");
    }
    std::printf("\n");
  };
  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

}  // namespace ht
