// Copyright 2026 The HybridTree Authors.
// Common interface over all index structures in the evaluation (hybrid
// tree, SR-tree, hB-tree, KDB-tree, R*-tree, sequential scan), so the
// benchmark harness can drive them uniformly.

#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "geometry/box.h"
#include "geometry/metrics.h"
#include "storage/buffer_pool.h"

namespace ht {

class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  virtual std::string Name() const = 0;

  virtual Status Insert(std::span<const float> point, uint64_t id) = 0;

  /// Returns NotSupported where the structure lacks the operation (e.g.,
  /// deletion in the hB-tree, whose eliminate phase the original paper
  /// leaves unspecified for multi-parent nodes).
  virtual Status Delete(std::span<const float> point, uint64_t id) {
    (void)point;
    (void)id;
    return Status::NotSupported(Name() + " does not implement Delete");
  }

  virtual Result<std::vector<uint64_t>> SearchBox(const Box& query) = 0;

  virtual Result<std::vector<uint64_t>> SearchRange(
      std::span<const float> center, double radius,
      const DistanceMetric& metric) {
    (void)center;
    (void)radius;
    (void)metric;
    return Status::NotSupported(Name() + " does not support distance search");
  }

  virtual Result<std::vector<std::pair<double, uint64_t>>> SearchKnn(
      std::span<const float> center, size_t k, const DistanceMetric& metric) {
    (void)center;
    (void)k;
    (void)metric;
    return Status::NotSupported(Name() + " does not support k-NN search");
  }

  virtual uint64_t size() const = 0;

  /// Buffer pool used for node I/O; stats().logical_reads across a query is
  /// the "disk accesses" unit the paper plots.
  virtual BufferPool& pool() = 0;

  /// True when this structure's page reads are sequential (the paper costs
  /// sequential I/O at 1/10 of a random access).
  virtual bool sequential_io() const { return false; }
};

}  // namespace ht
