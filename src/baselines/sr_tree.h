// Copyright 2026 The HybridTree Authors.
// SR-tree (Katayama & Satoh, SIGMOD 1997): the paper's DP-based
// competitor. Each index entry carries BOTH a bounding rectangle and a
// bounding sphere (centroid + radius); the region is their intersection,
// which is tighter than either alone. Insertion is SS-tree style (descend
// toward the nearest centroid); splits pick the dimension with maximal
// centroid variance. The doubled region storage makes index entries even
// larger than R-tree entries (12·dim + 12 bytes), so fanout degrades
// quickly with dimensionality — a key reason it loses to the hybrid tree
// at high d (paper Figure 6).

#pragma once

#include <memory>

#include "baselines/spatial_index.h"
#include "core/node.h"
#include "storage/paged_file.h"

namespace ht {

struct SrStats {
  uint64_t data_nodes = 0;
  uint64_t index_nodes = 0;
  double avg_leaf_utilization = 0.0;
  double avg_index_fanout = 0.0;
  size_t index_capacity = 0;
};

class SrTree final : public SpatialIndex {
 public:
  static Result<std::unique_ptr<SrTree>> Create(uint32_t dim, PagedFile* file);

  std::string Name() const override { return "SR-tree"; }
  Status Insert(std::span<const float> point, uint64_t id) override;
  Status Delete(std::span<const float> point, uint64_t id) override;
  Result<std::vector<uint64_t>> SearchBox(const Box& query) override;
  Result<std::vector<uint64_t>> SearchRange(
      std::span<const float> center, double radius,
      const DistanceMetric& metric) override;
  Result<std::vector<std::pair<double, uint64_t>>> SearchKnn(
      std::span<const float> center, size_t k,
      const DistanceMetric& metric) override;

  uint64_t size() const override { return count_; }
  BufferPool& pool() override { return *pool_; }

  Result<SrStats> ComputeStats();
  Status CheckInvariants();
  size_t leaf_capacity() const { return leaf_capacity_; }
  size_t index_capacity() const { return index_capacity_; }

  /// An index entry: rectangle + sphere + weight (points beneath) + child.
  struct SREntry {
    Box rect;
    std::vector<float> center;
    float radius = 0.0f;
    uint32_t weight = 0;
    PageId child = kInvalidPageId;
  };
  struct SRNode {
    uint8_t level = 1;
    std::vector<SREntry> entries;
  };

 private:
  SrTree(uint32_t dim, PagedFile* file);

  Result<DataNode> ReadLeaf(PageId id);
  Status WriteLeaf(PageId id, const DataNode& node);
  Result<SRNode> ReadIndex(PageId id);
  Result<SRNode> DecodeIndex(const uint8_t* data, size_t size) const;
  Status WriteIndex(PageId id, const SRNode& node);
  Result<NodeKind> PeekKind(PageId id);

  /// Exact summary of a leaf (centroid of points, tight radius, live rect).
  SREntry SummarizeLeaf(const DataNode& node, PageId page) const;
  /// Exact summary of an index node from its entries.
  SREntry SummarizeIndex(const SRNode& node, PageId page) const;

  struct InsertOut {
    SREntry self;  // updated summary of the descended node
    bool split = false;
    SREntry sibling;  // valid when split
  };
  Result<InsertOut> InsertRec(PageId page, std::span<const float> point,
                              uint64_t id);

  /// SS-tree split: max-variance dimension, min total variance partition.
  template <typename GetCoord>
  static std::pair<std::vector<uint32_t>, std::vector<uint32_t>>
  VarianceSplit(size_t n, uint32_t dim, size_t min_count, GetCoord coord);

  Status CollectEntries(PageId page, std::vector<DataEntry>* out,
                        std::vector<PageId>* pages);
  Status ComputeStatsRec(PageId page, SrStats* stats, double* leaf_util);
  Status CheckInvariantsRec(PageId page, const SREntry& region, bool is_root,
                            uint32_t expected_level, uint64_t* entries_seen);

  uint32_t dim_;
  size_t page_size_;
  std::unique_ptr<BufferPool> pool_;
  size_t leaf_capacity_ = 0;
  size_t index_capacity_ = 0;
  size_t leaf_min_ = 0;
  size_t index_min_ = 0;
  PageId root_ = kInvalidPageId;
  uint32_t height_ = 0;
  uint64_t count_ = 0;
};

/// Serialized SR-tree index page kind byte.
inline constexpr uint8_t kSrIndexKind = 5;

}  // namespace ht
