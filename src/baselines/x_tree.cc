#include "baselines/x_tree.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>
#include <queue>

#include "common/codec.h"

namespace ht {

namespace {
// Page header: kind u8, level u8, count u16 (entries in THIS page),
// next u32 (continuation page or kInvalidPageId).
constexpr size_t kXHeaderBytes = 8;

/// Log-volume of a box (underflow-safe); -inf for empty.
double LogVolume(const Box& b) {
  double s = 0.0;
  for (uint32_t d = 0; d < b.dim(); ++d) {
    const double e = b.Extent(d);
    if (e <= 0.0) return -std::numeric_limits<double>::infinity();
    s += std::log(e);
  }
  return s;
}

/// overlap(l, r) / volume(union box of both) computed in log space.
double OverlapRatio(const Box& l, const Box& r) {
  const Box inter = l.Intersection(r);
  if (inter.IsEmpty()) return 0.0;
  Box uni = l;
  uni.ExtendToInclude(r);
  const double li = LogVolume(inter);
  const double lu = LogVolume(uni);
  if (!std::isfinite(lu)) {
    // Degenerate union (e.g., identical points): the groups coincide along
    // some dimension. Inseparable iff the intersection is just as
    // degenerate.
    return std::isfinite(li) ? 0.0 : 1.0;
  }
  if (!std::isfinite(li)) return 0.0;
  return std::exp(li - lu);
}
}  // namespace

XTree::XTree(uint32_t dim, PagedFile* file)
    : dim_(dim),
      page_size_(file->page_size()),
      pool_(std::make_unique<BufferPool>(file, 0)) {
  leaf_per_page_ = (page_size_ - kXHeaderBytes) / (8 + 4 * size_t{dim});
  dir_per_page_ =
      (page_size_ - kXHeaderBytes) / (8 * size_t{dim} + sizeof(uint32_t));
}

Result<std::unique_ptr<XTree>> XTree::Create(uint32_t dim, PagedFile* file) {
  if (file->page_count() != 0) {
    return Status::InvalidArgument("XTree::Create requires an empty file");
  }
  auto tree = std::unique_ptr<XTree>(new XTree(dim, file));
  if (tree->leaf_per_page_ < 4 || tree->dir_per_page_ < 2) {
    return Status::InvalidArgument("page too small for an X-tree node");
  }
  HT_ASSIGN_OR_RETURN(PageHandle h, tree->pool_->New());
  tree->root_ = h.id();
  h.Release();
  Node empty;
  HT_RETURN_NOT_OK(tree->WriteNode(tree->root_, empty));
  return tree;
}

// --- chain I/O ---------------------------------------------------------------

Result<XTree::Node> XTree::ReadNode(PageId first) {
  Node node;
  PageId page = first;
  bool got_level = false;
  while (page != kInvalidPageId) {
    HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(page));
    Reader r(h.data(), h.size());
    if (r.GetU8() != kXNodeKind) {
      return Status::Corruption("expected X-tree page");
    }
    const uint8_t level = r.GetU8();
    const uint16_t count = r.GetU16();
    const PageId next = r.GetU32();
    if (!got_level) {
      node.level = level;
      got_level = true;
    } else if (node.level != level) {
      return Status::Corruption("X-tree chain level mismatch");
    }
    for (uint16_t i = 0; i < count; ++i) {
      if (node.level == 0) {
        DataEntry e;
        e.id = r.GetU64();
        e.vec.resize(dim_);
        for (uint32_t d = 0; d < dim_; ++d) e.vec[d] = r.GetF32();
        node.points.push_back(std::move(e));
      } else {
        std::vector<float> lo(dim_), hi(dim_);
        for (uint32_t d = 0; d < dim_; ++d) lo[d] = r.GetF32();
        for (uint32_t d = 0; d < dim_; ++d) hi[d] = r.GetF32();
        DirEntry e;
        e.br = Box::FromBounds(std::move(lo), std::move(hi));
        e.child = r.GetU32();
        node.children.push_back(std::move(e));
      }
    }
    HT_RETURN_NOT_OK(r.status());
    page = next;
  }
  return node;
}

size_t XTree::PagesNeeded(const Node& node) const {
  const size_t per = node.level == 0 ? leaf_per_page_ : dir_per_page_;
  return std::max<size_t>(1, (node.entry_count() + per - 1) / per);
}

Status XTree::WriteNode(PageId first, const Node& node) {
  const size_t per = node.level == 0 ? leaf_per_page_ : dir_per_page_;
  const size_t pages = PagesNeeded(node);
  // Walk/extend the chain, writing `per` entries per page.
  PageId page = first;
  PageId prev = kInvalidPageId;
  size_t written = 0;
  for (size_t p = 0; p < pages; ++p) {
    if (page == kInvalidPageId) {
      HT_ASSIGN_OR_RETURN(PageHandle nh, pool_->New());
      page = nh.id();
      nh.Release();
      // Link from the previous page.
      HT_ASSIGN_OR_RETURN(PageHandle ph, pool_->Fetch(prev));
      Writer lw(ph.data() + 4, 4);
      lw.PutU32(page);
      ph.MarkDirty();
    }
    HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(page));
    // Read current next pointer before overwriting.
    Reader pr(h.data(), h.size());
    pr.GetU8();
    pr.GetU8();
    pr.GetU16();
    PageId old_next = pr.GetU32();
    if (h.data()[0] != kXNodeKind) old_next = kInvalidPageId;  // fresh page

    const size_t take = std::min(per, node.entry_count() - written);
    Writer w(h.data(), h.size());
    w.PutU8(kXNodeKind);
    w.PutU8(node.level);
    w.PutU16(static_cast<uint16_t>(take));
    const bool last = (p + 1 == pages);
    w.PutU32(last ? kInvalidPageId : old_next);
    for (size_t i = 0; i < take; ++i, ++written) {
      if (node.level == 0) {
        const DataEntry& e = node.points[written];
        w.PutU64(e.id);
        for (uint32_t d = 0; d < dim_; ++d) w.PutF32(e.vec[d]);
      } else {
        const DirEntry& e = node.children[written];
        for (uint32_t d = 0; d < dim_; ++d) w.PutF32(e.br.lo(d));
        for (uint32_t d = 0; d < dim_; ++d) w.PutF32(e.br.hi(d));
        w.PutU32(e.child);
      }
    }
    h.MarkDirty();
    prev = page;
    page = last ? old_next : old_next;
    if (last) {
      // Free any surplus tail pages from a previously longer chain.
      PageId tail = old_next;
      while (tail != kInvalidPageId) {
        HT_ASSIGN_OR_RETURN(PageHandle th, pool_->Fetch(tail));
        Reader tr(th.data(), th.size());
        tr.GetU8();
        tr.GetU8();
        tr.GetU16();
        const PageId nxt = tr.GetU32();
        th.Release();
        HT_RETURN_NOT_OK(pool_->Free(tail));
        tail = nxt;
      }
      break;
    }
  }
  return Status::OK();
}

Status XTree::FreeChain(PageId first) {
  PageId page = first;
  while (page != kInvalidPageId) {
    HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(page));
    Reader r(h.data(), h.size());
    r.GetU8();
    r.GetU8();
    r.GetU16();
    const PageId next = r.GetU32();
    h.Release();
    HT_RETURN_NOT_OK(pool_->Free(page));
    page = next;
  }
  return Status::OK();
}

// --- insertion ---------------------------------------------------------------

Box XTree::NodeBr(const Node& node) const {
  Box br = Box::Empty(dim_);
  if (node.level == 0) {
    for (const auto& e : node.points) br.ExtendToInclude(e.vec);
  } else {
    for (const auto& e : node.children) br.ExtendToInclude(e.br);
  }
  return br;
}

size_t XTree::ChooseSubtree(const Node& node,
                            std::span<const float> point) const {
  // Minimum margin enlargement, ties by smaller margin (volume-based
  // enlargement underflows at high d).
  size_t best = 0;
  double best_grow = std::numeric_limits<double>::max();
  double best_margin = std::numeric_limits<double>::max();
  for (size_t j = 0; j < node.children.size(); ++j) {
    const Box& b = node.children[j].br;
    double grow = 0.0;
    for (uint32_t d = 0; d < dim_; ++d) {
      if (point[d] < b.lo(d)) grow += b.lo(d) - point[d];
      if (point[d] > b.hi(d)) grow += point[d] - b.hi(d);
    }
    const double margin = b.Margin();
    if (std::tie(grow, margin) < std::tie(best_grow, best_margin)) {
      best_grow = grow;
      best_margin = margin;
      best = j;
    }
  }
  return best;
}

Result<XTree::SplitOut> XTree::MaybeSplit(PageId page, Node& node) {
  const size_t n = node.entry_count();
  const size_t min_fill = std::max<size_t>(
      1, n / 3);  // X-tree MIN_FANOUT ~ 35%

  // Candidate split: for each axis, sort by lo and take the best balanced
  // distribution; track the minimum overlap ratio found.
  std::vector<Box> boxes;
  boxes.reserve(n);
  if (node.level == 0) {
    for (const auto& e : node.points) boxes.push_back(Box::FromPoint(e.vec));
  } else {
    for (const auto& e : node.children) boxes.push_back(e.br);
  }
  double best_ratio = std::numeric_limits<double>::max();
  uint32_t best_axis = 0;
  size_t best_k = min_fill;
  std::vector<uint32_t> best_order;
  std::vector<uint32_t> order(n);
  for (uint32_t d = 0; d < dim_; ++d) {
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return boxes[a].lo(d) < boxes[b].lo(d);
    });
    std::vector<Box> prefix(n, boxes[order[0]]);
    for (size_t i = 1; i < n; ++i) {
      prefix[i] = prefix[i - 1];
      prefix[i].ExtendToInclude(boxes[order[i]]);
    }
    std::vector<Box> suffix(n, boxes[order[n - 1]]);
    for (size_t i = n - 1; i-- > 0;) {
      suffix[i] = suffix[i + 1];
      suffix[i].ExtendToInclude(boxes[order[i]]);
    }
    for (size_t k = min_fill; k + min_fill <= n; ++k) {
      const double ratio = OverlapRatio(prefix[k - 1], suffix[k]);
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best_axis = d;
        best_k = k;
        best_order = order;
      }
      if (best_ratio == 0.0 && best_axis == d) break;
    }
    (void)best_axis;
  }

  SplitOut out;
  const size_t chain = PagesNeeded(node);
  // A node whose best split still overlaps beyond MAX_OVERLAP becomes a
  // supernode (applies to leaves too: a page of near-identical points is
  // inseparable) — until the chain cap forces a split regardless.
  if (best_ratio > kMaxOverlap && chain < kMaxChainPages) {
    return out;  // no split: caller keeps the (super)node
  }

  Node left, right;
  left.level = right.level = node.level;
  for (size_t i = 0; i < n; ++i) {
    Node& side = i < best_k ? left : right;
    if (node.level == 0) {
      side.points.push_back(std::move(node.points[best_order[i]]));
    } else {
      side.children.push_back(std::move(node.children[best_order[i]]));
    }
  }
  HT_RETURN_NOT_OK(WriteNode(page, left));
  HT_ASSIGN_OR_RETURN(PageHandle rh, pool_->New());
  const PageId right_page = rh.id();
  rh.Release();
  HT_RETURN_NOT_OK(WriteNode(right_page, right));
  out.split = true;
  out.left_br = NodeBr(left);
  out.right_br = NodeBr(right);
  out.right_page = right_page;
  return out;
}

Status XTree::Insert(std::span<const float> point, uint64_t id) {
  if (point.size() != dim_) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  HT_ASSIGN_OR_RETURN(SplitOut s, InsertRec(root_, point, id));
  if (s.split) {
    HT_ASSIGN_OR_RETURN(Node old_root, ReadNode(root_));
    Node new_root;
    new_root.level = static_cast<uint8_t>(old_root.level + 1);
    new_root.children.push_back(DirEntry{s.left_br, root_});
    new_root.children.push_back(DirEntry{s.right_br, s.right_page});
    HT_ASSIGN_OR_RETURN(PageHandle h, pool_->New());
    const PageId new_root_page = h.id();
    h.Release();
    HT_RETURN_NOT_OK(WriteNode(new_root_page, new_root));
    root_ = new_root_page;
  }
  ++count_;
  return Status::OK();
}

Result<XTree::SplitOut> XTree::InsertRec(PageId page,
                                         std::span<const float> point,
                                         uint64_t id) {
  HT_ASSIGN_OR_RETURN(Node node, ReadNode(page));
  if (node.level == 0) {
    node.points.push_back(
        DataEntry{id, std::vector<float>(point.begin(), point.end())});
    if (node.points.size() <= leaf_per_page_) {
      HT_RETURN_NOT_OK(WriteNode(page, node));
      return SplitOut{};
    }
    HT_ASSIGN_OR_RETURN(SplitOut s, MaybeSplit(page, node));
    if (!s.split) {
      HT_RETURN_NOT_OK(WriteNode(page, node));  // inseparable: grow chain
    }
    return s;
  }

  const size_t j = ChooseSubtree(node, point);
  HT_ASSIGN_OR_RETURN(SplitOut cs,
                      InsertRec(node.children[j].child, point, id));
  node.children[j].br.ExtendToInclude(point);
  if (cs.split) {
    node.children[j].br = cs.left_br;
    node.children.push_back(DirEntry{cs.right_br, cs.right_page});
  }
  if (node.children.size() > dir_per_page_) {
    HT_ASSIGN_OR_RETURN(SplitOut s, MaybeSplit(page, node));
    if (s.split) return s;
    // Supernode: keep everything in a longer chain.
  }
  HT_RETURN_NOT_OK(WriteNode(page, node));
  return SplitOut{};
}

// --- deletion ----------------------------------------------------------------

Status XTree::Delete(std::span<const float> point, uint64_t id) {
  if (point.size() != dim_) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  bool found = false;
  std::function<Status(PageId)> rec = [&](PageId page) -> Status {
    HT_ASSIGN_OR_RETURN(Node node, ReadNode(page));
    if (node.level == 0) {
      for (size_t i = 0; i < node.points.size(); ++i) {
        const auto& e = node.points[i];
        if (e.id == id && std::equal(e.vec.begin(), e.vec.end(),
                                     point.begin(), point.end())) {
          node.points.erase(node.points.begin() + static_cast<long>(i));
          found = true;
          return WriteNode(page, node);
        }
      }
      return Status::OK();
    }
    for (const auto& e : node.children) {
      if (!e.br.ContainsPoint(point)) continue;
      HT_RETURN_NOT_OK(rec(e.child));
      if (found) return Status::OK();
    }
    return Status::OK();
  };
  HT_RETURN_NOT_OK(rec(root_));
  if (!found) return Status::NotFound("no entry matches (point, id)");
  --count_;
  return Status::OK();
}

// --- search ------------------------------------------------------------------

Result<std::vector<uint64_t>> XTree::SearchBox(const Box& query) {
  std::vector<uint64_t> out;
  std::function<Status(PageId)> rec = [&](PageId page) -> Status {
    HT_ASSIGN_OR_RETURN(Node node, ReadNode(page));
    if (node.level == 0) {
      for (const auto& e : node.points) {
        if (query.ContainsPoint(e.vec)) out.push_back(e.id);
      }
      return Status::OK();
    }
    for (const auto& e : node.children) {
      if (query.Intersects(e.br)) {
        HT_RETURN_NOT_OK(rec(e.child));
      }
    }
    return Status::OK();
  };
  HT_RETURN_NOT_OK(rec(root_));
  return out;
}

Result<std::vector<uint64_t>> XTree::SearchRange(
    std::span<const float> center, double radius,
    const DistanceMetric& metric) {
  std::vector<uint64_t> out;
  std::function<Status(PageId)> rec = [&](PageId page) -> Status {
    HT_ASSIGN_OR_RETURN(Node node, ReadNode(page));
    if (node.level == 0) {
      for (const auto& e : node.points) {
        if (metric.Distance(center, e.vec) <= radius) out.push_back(e.id);
      }
      return Status::OK();
    }
    for (const auto& e : node.children) {
      if (metric.MinDistToBox(center, e.br) <= radius) {
        HT_RETURN_NOT_OK(rec(e.child));
      }
    }
    return Status::OK();
  };
  HT_RETURN_NOT_OK(rec(root_));
  return out;
}

Result<std::vector<std::pair<double, uint64_t>>> XTree::SearchKnn(
    std::span<const float> center, size_t k, const DistanceMetric& metric) {
  std::vector<std::pair<double, uint64_t>> results;
  if (k == 0 || count_ == 0) return results;
  struct PqItem {
    double dist;
    PageId page;
    bool operator>(const PqItem& o) const { return dist > o.dist; }
  };
  std::priority_queue<PqItem, std::vector<PqItem>, std::greater<PqItem>> pq;
  pq.push(PqItem{0.0, root_});
  std::priority_queue<std::pair<double, uint64_t>> best;
  auto kth = [&]() {
    return best.size() < k ? std::numeric_limits<double>::max()
                           : best.top().first;
  };
  while (!pq.empty() && pq.top().dist <= kth()) {
    PqItem item = pq.top();
    pq.pop();
    HT_ASSIGN_OR_RETURN(Node node, ReadNode(item.page));
    if (node.level == 0) {
      for (const auto& e : node.points) {
        const double d = metric.Distance(center, e.vec);
        if (best.size() < k) {
          best.emplace(d, e.id);
        } else if (d < best.top().first) {
          best.pop();
          best.emplace(d, e.id);
        }
      }
      continue;
    }
    for (const auto& e : node.children) {
      const double d = metric.MinDistToBox(center, e.br);
      if (d <= kth()) pq.push(PqItem{d, e.child});
    }
  }
  results.resize(best.size());
  for (size_t i = best.size(); i-- > 0;) {
    results[i] = best.top();
    best.pop();
  }
  return results;
}

// --- stats / invariants --------------------------------------------------------

Result<XTreeStats> XTree::ComputeStats() {
  XTreeStats stats;
  double fanout_sum = 0.0;
  HT_RETURN_NOT_OK(ComputeStatsRec(root_, &stats, &fanout_sum));
  if (stats.dir_nodes > 0) {
    stats.avg_dir_fanout = fanout_sum / static_cast<double>(stats.dir_nodes);
  }
  return stats;
}

Status XTree::ComputeStatsRec(PageId page, XTreeStats* stats,
                              double* fanout_sum) {
  HT_ASSIGN_OR_RETURN(Node node, ReadNode(page));
  const size_t pages = PagesNeeded(node);
  stats->total_pages += pages;
  if (pages > 1) ++stats->supernodes;
  stats->max_chain_pages = std::max<uint64_t>(stats->max_chain_pages, pages);
  if (node.level == 0) {
    ++stats->leaf_nodes;
    return Status::OK();
  }
  ++stats->dir_nodes;
  *fanout_sum += static_cast<double>(node.children.size());
  for (const auto& e : node.children) {
    HT_RETURN_NOT_OK(ComputeStatsRec(e.child, stats, fanout_sum));
  }
  return Status::OK();
}

Status XTree::CheckInvariants() {
  uint64_t seen = 0;
  HT_RETURN_NOT_OK(
      CheckInvariantsRec(root_, Box::UnitCube(dim_), true, &seen));
  if (seen != count_) return Status::Corruption("X-tree entry count mismatch");
  return Status::OK();
}

Status XTree::CheckInvariantsRec(PageId page, const Box& br, bool is_root,
                                 uint64_t* seen) {
  HT_ASSIGN_OR_RETURN(Node node, ReadNode(page));
  if (node.level == 0) {
    for (const auto& e : node.points) {
      if (!br.ContainsPoint(e.vec)) {
        return Status::Corruption("X-tree entry outside parent box");
      }
    }
    *seen += node.points.size();
    return Status::OK();
  }
  if (node.children.empty() && !is_root) {
    return Status::Corruption("empty X-tree directory node");
  }
  for (const auto& e : node.children) {
    if (!br.ContainsBox(e.br)) {
      return Status::Corruption("X-tree child box outside parent box");
    }
    HT_RETURN_NOT_OK(CheckInvariantsRec(e.child, e.br, false, seen));
  }
  return Status::OK();
}

}  // namespace ht
