#include "baselines/rstar_tree.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>
#include <queue>

#include "common/codec.h"

namespace ht {

namespace {
constexpr size_t kIndexHeaderBytes = 4;  // kind u8, level u8, count u16
constexpr double kReinsertFraction = 0.3;

Box EntriesBr(const std::vector<RStarTree::IEntry>&);
}  // namespace

RStarTree::RStarTree(uint32_t dim, PagedFile* file)
    : dim_(dim),
      page_size_(file->page_size()),
      pool_(std::make_unique<BufferPool>(file, 0)) {
  leaf_capacity_ = DataNode::Capacity(dim, page_size_);
  // Index entry: 2*dim f32 box + u32 child. This is where DP-based
  // structures lose fanout at high dimensionality.
  index_capacity_ = (page_size_ - kIndexHeaderBytes) /
                    (2 * sizeof(float) * dim + sizeof(uint32_t));
  leaf_min_ = std::max<size_t>(1, static_cast<size_t>(0.4 * leaf_capacity_));
  index_min_ = std::max<size_t>(2, static_cast<size_t>(0.4 * index_capacity_));
  if (2 * leaf_min_ > leaf_capacity_) leaf_min_ = leaf_capacity_ / 2;
  if (2 * index_min_ > index_capacity_) index_min_ = index_capacity_ / 2;
}

Result<std::unique_ptr<RStarTree>> RStarTree::Create(uint32_t dim,
                                                     PagedFile* file) {
  if (file->page_count() != 0) {
    return Status::InvalidArgument("RStarTree::Create requires an empty file");
  }
  auto tree = std::unique_ptr<RStarTree>(new RStarTree(dim, file));
  if (tree->leaf_capacity_ < 4 || tree->index_capacity_ < 4) {
    return Status::InvalidArgument(
        "page too small for an R*-tree node at this dimensionality");
  }
  HT_ASSIGN_OR_RETURN(PageHandle h, tree->pool_->New());
  tree->root_ = h.id();
  DataNode empty;
  empty.Serialize(h.data(), h.size(), dim);
  h.MarkDirty();
  return tree;
}

// --- node I/O ---------------------------------------------------------------

Result<NodeKind> RStarTree::PeekKind(PageId id) {
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  return PeekNodeKind(h.data());
}

Result<DataNode> RStarTree::ReadLeaf(PageId id) {
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  return DataNode::Deserialize(h.data(), h.size(), dim_);
}

Status RStarTree::WriteLeaf(PageId id, const DataNode& node) {
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  node.Serialize(h.data(), h.size(), dim_);
  h.MarkDirty();
  return Status::OK();
}

Result<RStarTree::INode> RStarTree::ReadIndex(PageId id) {
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  return DecodeIndex(h.data(), h.size());
}

Result<RStarTree::INode> RStarTree::DecodeIndex(const uint8_t* data,
                                                size_t size) const {
  Reader r(data, size);
  if (r.GetU8() != kRIndexKind) {
    return Status::Corruption("expected R-tree index page");
  }
  INode node;
  node.level = r.GetU8();
  const uint16_t n = r.GetU16();
  node.entries.resize(n);
  for (uint16_t i = 0; i < n; ++i) {
    std::vector<float> lo(dim_), hi(dim_);
    for (uint32_t d = 0; d < dim_; ++d) lo[d] = r.GetF32();
    for (uint32_t d = 0; d < dim_; ++d) hi[d] = r.GetF32();
    node.entries[i].br = Box::FromBounds(std::move(lo), std::move(hi));
    node.entries[i].child = r.GetU32();
  }
  HT_RETURN_NOT_OK(r.status());
  return node;
}

Status RStarTree::WriteIndex(PageId id, const INode& node) {
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  Writer w(h.data(), h.size());
  w.PutU8(kRIndexKind);
  w.PutU8(node.level);
  w.PutU16(static_cast<uint16_t>(node.entries.size()));
  for (const auto& e : node.entries) {
    for (uint32_t d = 0; d < dim_; ++d) w.PutF32(e.br.lo(d));
    for (uint32_t d = 0; d < dim_; ++d) w.PutF32(e.br.hi(d));
    w.PutU32(e.child);
  }
  h.MarkDirty();
  return Status::OK();
}

// --- insertion --------------------------------------------------------------

namespace {
Box EntriesBr(const std::vector<RStarTree::IEntry>& entries) {
  HT_CHECK(!entries.empty());
  Box br = entries[0].br;
  for (size_t i = 1; i < entries.size(); ++i) br.ExtendToInclude(entries[i].br);
  return br;
}
}  // namespace

size_t RStarTree::ChooseSubtree(const INode& node,
                                std::span<const float> point) const {
  HT_CHECK(!node.entries.empty());
  if (node.level == 1) {
    // Children are leaves: minimize overlap enlargement (R* refinement).
    size_t best = 0;
    double best_overlap = std::numeric_limits<double>::max();
    double best_area_delta = std::numeric_limits<double>::max();
    double best_area = std::numeric_limits<double>::max();
    for (size_t j = 0; j < node.entries.size(); ++j) {
      Box grown = node.entries[j].br;
      grown.ExtendToInclude(point);
      double overlap_delta = 0.0;
      for (size_t k = 0; k < node.entries.size(); ++k) {
        if (k == j) continue;
        overlap_delta += grown.OverlapVolume(node.entries[k].br) -
                         node.entries[j].br.OverlapVolume(node.entries[k].br);
      }
      const double area = node.entries[j].br.Volume();
      const double area_delta = grown.Volume() - area;
      if (std::tie(overlap_delta, area_delta, area) <
          std::tie(best_overlap, best_area_delta, best_area)) {
        best_overlap = overlap_delta;
        best_area_delta = area_delta;
        best_area = area;
        best = j;
      }
    }
    return best;
  }
  // Higher levels: minimize area enlargement, ties by area.
  size_t best = 0;
  double best_delta = std::numeric_limits<double>::max();
  double best_area = std::numeric_limits<double>::max();
  for (size_t j = 0; j < node.entries.size(); ++j) {
    const double area = node.entries[j].br.Volume();
    const double delta = node.entries[j].br.EnlargementForPoint(point);
    if (std::tie(delta, area) < std::tie(best_delta, best_area)) {
      best_delta = delta;
      best_area = area;
      best = j;
    }
  }
  return best;
}

/// Generic R* split over a set of boxes: returns the partition (indices)
/// minimizing margin-then-overlap-then-area.
namespace {
struct GenericSplit {
  std::vector<uint32_t> left;
  std::vector<uint32_t> right;
};

GenericSplit RStarSplitBoxes(const std::vector<Box>& boxes, size_t min_count) {
  const size_t n = boxes.size();
  const uint32_t dim = boxes[0].dim();
  HT_CHECK(n >= 2 * min_count);

  // Axis choice: minimum sum of margins across all distributions of both
  // sort orders.
  uint32_t best_axis = 0;
  bool best_axis_by_hi = false;
  double best_margin_sum = std::numeric_limits<double>::max();
  std::vector<uint32_t> order(n);
  for (uint32_t d = 0; d < dim; ++d) {
    for (int by_hi = 0; by_hi < 2; ++by_hi) {
      std::iota(order.begin(), order.end(), 0u);
      std::stable_sort(order.begin(), order.end(),
                       [&](uint32_t a, uint32_t b) {
                         return by_hi ? boxes[a].hi(d) < boxes[b].hi(d)
                                      : boxes[a].lo(d) < boxes[b].lo(d);
                       });
      // Prefix/suffix unions.
      std::vector<Box> prefix(n, boxes[order[0]]);
      for (size_t i = 1; i < n; ++i) {
        prefix[i] = prefix[i - 1];
        prefix[i].ExtendToInclude(boxes[order[i]]);
      }
      std::vector<Box> suffix(n, boxes[order[n - 1]]);
      for (size_t i = n - 1; i-- > 0;) {
        suffix[i] = suffix[i + 1];
        suffix[i].ExtendToInclude(boxes[order[i]]);
      }
      double margin_sum = 0.0;
      for (size_t k = min_count; k + min_count <= n; ++k) {
        margin_sum += prefix[k - 1].Margin() + suffix[k].Margin();
      }
      if (margin_sum < best_margin_sum) {
        best_margin_sum = margin_sum;
        best_axis = d;
        best_axis_by_hi = by_hi != 0;
      }
    }
  }

  // Index choice on the winning axis/order: minimum overlap, ties area.
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return best_axis_by_hi ? boxes[a].hi(best_axis) < boxes[b].hi(best_axis)
                           : boxes[a].lo(best_axis) < boxes[b].lo(best_axis);
  });
  std::vector<Box> prefix(n, boxes[order[0]]);
  for (size_t i = 1; i < n; ++i) {
    prefix[i] = prefix[i - 1];
    prefix[i].ExtendToInclude(boxes[order[i]]);
  }
  std::vector<Box> suffix(n, boxes[order[n - 1]]);
  for (size_t i = n - 1; i-- > 0;) {
    suffix[i] = suffix[i + 1];
    suffix[i].ExtendToInclude(boxes[order[i]]);
  }
  size_t best_k = min_count;
  double best_overlap = std::numeric_limits<double>::max();
  double best_area = std::numeric_limits<double>::max();
  for (size_t k = min_count; k + min_count <= n; ++k) {
    const double overlap = prefix[k - 1].OverlapVolume(suffix[k]);
    const double area = prefix[k - 1].Volume() + suffix[k].Volume();
    if (std::tie(overlap, area) < std::tie(best_overlap, best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_k = k;
    }
  }
  GenericSplit out;
  out.left.assign(order.begin(), order.begin() + static_cast<long>(best_k));
  out.right.assign(order.begin() + static_cast<long>(best_k), order.end());
  return out;
}
}  // namespace

RStarTree::SplitOut RStarTree::SplitLeaf(DataNode& node, DataNode* right) {
  std::vector<Box> boxes;
  boxes.reserve(node.entries.size());
  for (const auto& e : node.entries) boxes.push_back(Box::FromPoint(e.vec));
  GenericSplit gs = RStarSplitBoxes(boxes, leaf_min_);
  DataNode left;
  for (uint32_t i : gs.left) left.entries.push_back(std::move(node.entries[i]));
  for (uint32_t i : gs.right) {
    right->entries.push_back(std::move(node.entries[i]));
  }
  node = std::move(left);
  SplitOut out;
  out.split = true;
  out.left_br = node.ComputeLiveBr(dim_);
  out.right_br = right->ComputeLiveBr(dim_);
  return out;
}

RStarTree::SplitOut RStarTree::SplitIndex(INode& node, INode* right) {
  std::vector<Box> boxes;
  boxes.reserve(node.entries.size());
  for (const auto& e : node.entries) boxes.push_back(e.br);
  GenericSplit gs = RStarSplitBoxes(boxes, index_min_);
  INode left;
  left.level = node.level;
  right->level = node.level;
  for (uint32_t i : gs.left) left.entries.push_back(std::move(node.entries[i]));
  for (uint32_t i : gs.right) {
    right->entries.push_back(std::move(node.entries[i]));
  }
  node = std::move(left);
  SplitOut out;
  out.split = true;
  out.left_br = EntriesBr(node.entries);
  out.right_br = EntriesBr(right->entries);
  return out;
}

Status RStarTree::Insert(std::span<const float> point, uint64_t id) {
  if (point.size() != dim_) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  InsertCtx ctx;
  DataEntry first{id, std::vector<float>(point.begin(), point.end())};
  ctx.pending.push_back(std::move(first));
  while (!ctx.pending.empty()) {
    DataEntry e = std::move(ctx.pending.back());
    ctx.pending.pop_back();
    HT_ASSIGN_OR_RETURN(SplitOut s, InsertRec(root_, e.vec, e.id, &ctx));
    if (s.split) {
      INode new_root;
      new_root.level = static_cast<uint8_t>(height_ + 1);
      new_root.entries.push_back(IEntry{s.left_br, root_});
      new_root.entries.push_back(IEntry{s.right_br, s.right_page});
      HT_ASSIGN_OR_RETURN(PageHandle h, pool_->New());
      const PageId new_root_page = h.id();
      h.Release();
      HT_RETURN_NOT_OK(WriteIndex(new_root_page, new_root));
      root_ = new_root_page;
      ++height_;
    }
  }
  ++count_;
  return Status::OK();
}

Result<RStarTree::SplitOut> RStarTree::InsertRec(PageId page,
                                                 std::span<const float> point,
                                                 uint64_t id, InsertCtx* ctx) {
  HT_ASSIGN_OR_RETURN(NodeKind kind, PeekKind(page));
  if (kind == NodeKind::kData) {
    HT_ASSIGN_OR_RETURN(DataNode node, ReadLeaf(page));
    node.entries.push_back(
        DataEntry{id, std::vector<float>(point.begin(), point.end())});
    if (node.entries.size() <= leaf_capacity_) {
      HT_RETURN_NOT_OK(WriteLeaf(page, node));
      SplitOut out;
      out.left_br = node.ComputeLiveBr(dim_);
      return out;
    }
    // Overflow treatment: forced reinsert once per insertion (R* §4.3),
    // never at the root.
    if (!ctx->leaf_reinsert_done && page != root_) {
      ctx->leaf_reinsert_done = true;
      ++reinsertions_;
      const Box br = node.ComputeLiveBr(dim_);
      std::vector<float> center(dim_);
      for (uint32_t d = 0; d < dim_; ++d) {
        center[d] = br.lo(d) + br.Extent(d) / 2;
      }
      L2Metric l2;
      std::stable_sort(node.entries.begin(), node.entries.end(),
                       [&](const DataEntry& a, const DataEntry& b) {
                         return l2.Distance(a.vec, center) >
                                l2.Distance(b.vec, center);
                       });
      const size_t p = std::max<size_t>(
          1, static_cast<size_t>(kReinsertFraction * node.entries.size()));
      for (size_t i = 0; i < p; ++i) {
        ctx->pending.push_back(std::move(node.entries[i]));
      }
      node.entries.erase(node.entries.begin(),
                         node.entries.begin() + static_cast<long>(p));
      HT_RETURN_NOT_OK(WriteLeaf(page, node));
      SplitOut out;
      out.left_br = node.ComputeLiveBr(dim_);
      out.reinserting = true;
      return out;
    }
    ++splits_;
    DataNode right;
    SplitOut out = SplitLeaf(node, &right);
    HT_RETURN_NOT_OK(WriteLeaf(page, node));
    HT_ASSIGN_OR_RETURN(PageHandle rh, pool_->New());
    right.Serialize(rh.data(), rh.size(), dim_);
    rh.MarkDirty();
    out.right_page = rh.id();
    return out;
  }

  HT_ASSIGN_OR_RETURN(INode node, ReadIndex(page));
  const size_t j = ChooseSubtree(node, point);
  HT_ASSIGN_OR_RETURN(SplitOut cs,
                      InsertRec(node.entries[j].child, point, id, ctx));
  node.entries[j].br = cs.left_br;
  if (cs.split) {
    node.entries.push_back(IEntry{cs.right_br, cs.right_page});
  }
  if (node.entries.size() > index_capacity_) {
    ++splits_;
    INode right;
    SplitOut out = SplitIndex(node, &right);
    HT_RETURN_NOT_OK(WriteIndex(page, node));
    HT_ASSIGN_OR_RETURN(PageHandle rh, pool_->New());
    const PageId right_page = rh.id();
    rh.Release();
    HT_RETURN_NOT_OK(WriteIndex(right_page, right));
    out.right_page = right_page;
    return out;
  }
  HT_RETURN_NOT_OK(WriteIndex(page, node));
  SplitOut out;
  out.left_br = EntriesBr(node.entries);
  return out;
}

// --- deletion ---------------------------------------------------------------

Status RStarTree::Delete(std::span<const float> point, uint64_t id) {
  if (point.size() != dim_) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  struct Outcome {
    bool found = false;
    bool eliminate_me = false;
    Box br;
  };
  std::vector<DataEntry> orphans;
  std::function<Result<Outcome>(PageId)> rec =
      [&](PageId page) -> Result<Outcome> {
    Outcome out;
    HT_ASSIGN_OR_RETURN(NodeKind kind, PeekKind(page));
    if (kind == NodeKind::kData) {
      HT_ASSIGN_OR_RETURN(DataNode node, ReadLeaf(page));
      for (size_t i = 0; i < node.entries.size(); ++i) {
        const auto& e = node.entries[i];
        if (e.id == id && std::equal(e.vec.begin(), e.vec.end(),
                                     point.begin(), point.end())) {
          node.entries.erase(node.entries.begin() + static_cast<long>(i));
          out.found = true;
          break;
        }
      }
      if (!out.found) return out;
      if (page != root_ && node.entries.size() < leaf_min_) {
        out.eliminate_me = true;
        for (auto& e : node.entries) orphans.push_back(std::move(e));
      } else {
        HT_RETURN_NOT_OK(WriteLeaf(page, node));
        out.br = node.ComputeLiveBr(dim_);
      }
      return out;
    }
    HT_ASSIGN_OR_RETURN(INode node, ReadIndex(page));
    for (size_t i = 0; i < node.entries.size(); ++i) {
      if (!node.entries[i].br.ContainsPoint(point)) continue;
      HT_ASSIGN_OR_RETURN(Outcome child, rec(node.entries[i].child));
      if (!child.found) continue;
      out.found = true;
      if (child.eliminate_me) {
        HT_RETURN_NOT_OK(pool_->Free(node.entries[i].child));
        node.entries.erase(node.entries.begin() + static_cast<long>(i));
      } else {
        node.entries[i].br = child.br;
      }
      if (page != root_ && node.entries.size() < index_min_) {
        out.eliminate_me = true;
        std::vector<PageId> pages;
        for (const auto& e : node.entries) {
          HT_RETURN_NOT_OK(CollectEntries(e.child, &orphans, &pages));
        }
        for (PageId p : pages) HT_RETURN_NOT_OK(pool_->Free(p));
      } else if (node.entries.empty()) {
        // Root index lost its last child: reset to an empty leaf.
        DataNode empty;
        HT_RETURN_NOT_OK(WriteLeaf(page, empty));
        height_ = 0;
      } else {
        HT_RETURN_NOT_OK(WriteIndex(page, node));
        out.br = EntriesBr(node.entries);
      }
      return out;
    }
    return out;
  };

  HT_ASSIGN_OR_RETURN(Outcome out, rec(root_));
  if (!out.found) return Status::NotFound("no entry matches (point, id)");
  --count_;
  // Shrink the root while it is an index node with a single child.
  for (;;) {
    HT_ASSIGN_OR_RETURN(NodeKind kind, PeekKind(root_));
    if (kind == NodeKind::kData) break;
    HT_ASSIGN_OR_RETURN(INode node, ReadIndex(root_));
    if (node.entries.size() != 1) break;
    const PageId child = node.entries[0].child;
    HT_RETURN_NOT_OK(pool_->Free(root_));
    root_ = child;
    --height_;
  }
  count_ -= orphans.size();
  for (auto& e : orphans) {
    HT_RETURN_NOT_OK(Insert(e.vec, e.id));
  }
  return Status::OK();
}

Status RStarTree::CollectEntries(PageId page, std::vector<DataEntry>* out,
                                 std::vector<PageId>* pages) {
  pages->push_back(page);
  HT_ASSIGN_OR_RETURN(NodeKind kind, PeekKind(page));
  if (kind == NodeKind::kData) {
    HT_ASSIGN_OR_RETURN(DataNode node, ReadLeaf(page));
    for (auto& e : node.entries) out->push_back(std::move(e));
    return Status::OK();
  }
  HT_ASSIGN_OR_RETURN(INode node, ReadIndex(page));
  for (const auto& e : node.entries) {
    HT_RETURN_NOT_OK(CollectEntries(e.child, out, pages));
  }
  return Status::OK();
}

// --- search -----------------------------------------------------------------

Result<std::vector<uint64_t>> RStarTree::SearchBox(const Box& query) {
  std::vector<uint64_t> out;
  std::function<Status(PageId)> rec = [&](PageId page) -> Status {
    HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(page));
    const NodeKind kind = PeekNodeKind(h.data());
    if (kind == NodeKind::kData) {
      DataPageScan scan(h.data(), h.size(), dim_);
      if (!scan.ok()) return Status::Corruption("expected data page");
      for (size_t i = 0; i < scan.count(); ++i) {
        if (query.ContainsPoint(scan.vec(i))) out.push_back(scan.id(i));
      }
      return Status::OK();
    }
    HT_ASSIGN_OR_RETURN(INode node, DecodeIndex(h.data(), h.size()));
    h.Release();
    for (const auto& e : node.entries) {
      if (query.Intersects(e.br)) {
        HT_RETURN_NOT_OK(rec(e.child));
      }
    }
    return Status::OK();
  };
  HT_RETURN_NOT_OK(rec(root_));
  return out;
}

Result<std::vector<uint64_t>> RStarTree::SearchRange(
    std::span<const float> center, double radius,
    const DistanceMetric& metric) {
  std::vector<uint64_t> out;
  std::function<Status(PageId)> rec = [&](PageId page) -> Status {
    HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(page));
    const NodeKind kind = PeekNodeKind(h.data());
    if (kind == NodeKind::kData) {
      DataPageScan scan(h.data(), h.size(), dim_);
      if (!scan.ok()) return Status::Corruption("expected data page");
      for (size_t i = 0; i < scan.count(); ++i) {
        if (metric.Distance(center, scan.vec(i)) <= radius) {
          out.push_back(scan.id(i));
        }
      }
      return Status::OK();
    }
    HT_ASSIGN_OR_RETURN(INode node, DecodeIndex(h.data(), h.size()));
    h.Release();
    for (const auto& e : node.entries) {
      if (metric.MinDistToBox(center, e.br) <= radius) {
        HT_RETURN_NOT_OK(rec(e.child));
      }
    }
    return Status::OK();
  };
  HT_RETURN_NOT_OK(rec(root_));
  return out;
}

Result<std::vector<std::pair<double, uint64_t>>> RStarTree::SearchKnn(
    std::span<const float> center, size_t k, const DistanceMetric& metric) {
  std::vector<std::pair<double, uint64_t>> results;
  if (k == 0 || count_ == 0) return results;
  struct PqItem {
    double dist;
    PageId page;
    bool operator>(const PqItem& o) const { return dist > o.dist; }
  };
  std::priority_queue<PqItem, std::vector<PqItem>, std::greater<PqItem>> pq;
  pq.push(PqItem{0.0, root_});
  std::priority_queue<std::pair<double, uint64_t>> best;
  auto kth = [&]() {
    return best.size() < k ? std::numeric_limits<double>::max()
                           : best.top().first;
  };
  while (!pq.empty() && pq.top().dist <= kth()) {
    PqItem item = pq.top();
    pq.pop();
    HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(item.page));
    const NodeKind kind = PeekNodeKind(h.data());
    if (kind == NodeKind::kData) {
      DataPageScan scan(h.data(), h.size(), dim_);
      if (!scan.ok()) return Status::Corruption("expected data page");
      for (size_t i = 0; i < scan.count(); ++i) {
        const double d = metric.Distance(center, scan.vec(i));
        if (best.size() < k) {
          best.emplace(d, scan.id(i));
        } else if (d < best.top().first) {
          best.pop();
          best.emplace(d, scan.id(i));
        }
      }
      continue;
    }
    HT_ASSIGN_OR_RETURN(INode node, DecodeIndex(h.data(), h.size()));
    h.Release();
    for (const auto& e : node.entries) {
      const double d = metric.MinDistToBox(center, e.br);
      if (d <= kth()) pq.push(PqItem{d, e.child});
    }
  }
  results.resize(best.size());
  for (size_t i = best.size(); i-- > 0;) {
    results[i] = best.top();
    best.pop();
  }
  return results;
}

// --- stats / invariants -----------------------------------------------------

Result<RStarStats> RStarTree::ComputeStats() {
  RStarStats stats;
  stats.index_capacity = index_capacity_;
  stats.forced_reinsertions = reinsertions_;
  stats.splits = splits_;
  double leaf_util = 0.0, overlap_sum = 0.0;
  uint64_t overlap_nodes = 0;
  HT_RETURN_NOT_OK(ComputeStatsRec(root_, &stats, &leaf_util, &overlap_sum,
                                   &overlap_nodes));
  if (stats.data_nodes > 0) {
    stats.avg_leaf_utilization =
        leaf_util / static_cast<double>(stats.data_nodes);
  }
  if (stats.index_nodes > 0) {
    stats.avg_index_fanout /= static_cast<double>(stats.index_nodes);
  }
  if (overlap_nodes > 0) {
    stats.avg_sibling_overlap =
        overlap_sum / static_cast<double>(overlap_nodes);
  }
  return stats;
}

Status RStarTree::ComputeStatsRec(PageId page, RStarStats* stats,
                                  double* leaf_util, double* overlap_sum,
                                  uint64_t* overlap_nodes) {
  HT_ASSIGN_OR_RETURN(NodeKind kind, PeekKind(page));
  if (kind == NodeKind::kData) {
    HT_ASSIGN_OR_RETURN(DataNode node, ReadLeaf(page));
    ++stats->data_nodes;
    *leaf_util += static_cast<double>(node.entries.size()) /
                  static_cast<double>(leaf_capacity_);
    return Status::OK();
  }
  HT_ASSIGN_OR_RETURN(INode node, ReadIndex(page));
  ++stats->index_nodes;
  stats->avg_index_fanout += static_cast<double>(node.entries.size());
  if (node.entries.size() >= 2) {
    // Volumes underflow toward zero in high dimensions, so measure overlap
    // as the fraction of sibling pairs whose boxes intersect at all.
    size_t intersecting = 0, pairs = 0;
    for (size_t i = 0; i < node.entries.size(); ++i) {
      for (size_t j = i + 1; j < node.entries.size(); ++j) {
        ++pairs;
        if (node.entries[i].br.Intersects(node.entries[j].br)) ++intersecting;
      }
    }
    *overlap_sum +=
        static_cast<double>(intersecting) / static_cast<double>(pairs);
    ++*overlap_nodes;
  }
  for (const auto& e : node.entries) {
    HT_RETURN_NOT_OK(
        ComputeStatsRec(e.child, stats, leaf_util, overlap_sum, overlap_nodes));
  }
  return Status::OK();
}

Status RStarTree::CheckInvariants() {
  uint64_t entries_seen = 0;
  HT_RETURN_NOT_OK(CheckInvariantsRec(root_, Box::UnitCube(dim_),
                                      /*is_root=*/true, height_,
                                      &entries_seen));
  if (entries_seen != count_) {
    return Status::Corruption("R* entry count mismatch");
  }
  return Status::OK();
}

Status RStarTree::CheckInvariantsRec(PageId page, const Box& br, bool is_root,
                                     uint32_t expected_level,
                                     uint64_t* entries_seen) {
  HT_ASSIGN_OR_RETURN(NodeKind kind, PeekKind(page));
  if (kind == NodeKind::kData) {
    if (expected_level != 0) {
      return Status::Corruption("R* leaf at nonzero level");
    }
    HT_ASSIGN_OR_RETURN(DataNode node, ReadLeaf(page));
    if (node.entries.size() > leaf_capacity_) {
      return Status::Corruption("R* leaf over capacity");
    }
    if (!is_root && node.entries.size() < leaf_min_) {
      return Status::Corruption("R* leaf under minimum fill");
    }
    for (const auto& e : node.entries) {
      if (!br.ContainsPoint(e.vec)) {
        return Status::Corruption("R* entry outside parent box");
      }
    }
    *entries_seen += node.entries.size();
    return Status::OK();
  }
  HT_ASSIGN_OR_RETURN(INode node, ReadIndex(page));
  if (node.level != expected_level) {
    return Status::Corruption("R* level mismatch");
  }
  if (node.entries.size() > index_capacity_) {
    return Status::Corruption("R* index node over capacity");
  }
  if (!is_root && node.entries.size() < index_min_) {
    return Status::Corruption("R* index node under minimum fill");
  }
  for (const auto& e : node.entries) {
    if (!br.ContainsBox(e.br)) {
      return Status::Corruption("R* child box outside parent box");
    }
    HT_RETURN_NOT_OK(CheckInvariantsRec(e.child, e.br, false,
                                        expected_level - 1, entries_seen));
  }
  return Status::OK();
}

}  // namespace ht
