#include "baselines/kdb_tree.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>
#include <queue>

namespace ht {

KdbTree::KdbTree(uint32_t dim, PagedFile* file)
    : dim_(dim),
      page_size_(file->page_size()),
      pool_(std::make_unique<BufferPool>(file, 0)) {
  data_capacity_ = DataNode::Capacity(dim, page_size_);
}

Result<std::unique_ptr<KdbTree>> KdbTree::Create(uint32_t dim,
                                                 PagedFile* file) {
  if (file->page_count() != 0) {
    return Status::InvalidArgument("KdbTree::Create requires an empty file");
  }
  if (DataNode::Capacity(dim, file->page_size()) < 4) {
    return Status::InvalidArgument("page too small for a KDB data node");
  }
  auto tree = std::unique_ptr<KdbTree>(new KdbTree(dim, file));
  HT_ASSIGN_OR_RETURN(PageHandle h, tree->pool_->New());
  tree->root_ = h.id();
  DataNode empty;
  empty.Serialize(h.data(), h.size(), dim);
  h.MarkDirty();
  return tree;
}

// --- node I/O ---------------------------------------------------------------

Result<NodeKind> KdbTree::PeekKind(PageId id) {
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  return PeekNodeKind(h.data());
}

Result<DataNode> KdbTree::ReadDataNode(PageId id) {
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  return DataNode::Deserialize(h.data(), h.size(), dim_);
}

Status KdbTree::WriteDataNode(PageId id, const DataNode& node) {
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  node.Serialize(h.data(), h.size(), dim_);
  h.MarkDirty();
  return Status::OK();
}

Result<IndexNode> KdbTree::ReadIndexNode(PageId id) {
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  return IndexNode::Deserialize(h.data(), h.size(), /*els_in_page=*/false, 0, dim_);
}

Status KdbTree::WriteIndexNode(PageId id, const IndexNode& node) {
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  node.Serialize(h.data(), h.size(), /*els_in_page=*/false, 0);
  h.MarkDirty();
  return Status::OK();
}

// --- insertion --------------------------------------------------------------

Status KdbTree::Insert(std::span<const float> point, uint64_t id) {
  if (point.size() != dim_) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  for (float v : point) {
    if (!(v >= 0.0f && v <= 1.0f)) {
      return Status::InvalidArgument("point outside [0,1]^dim");
    }
  }
  const Box cube = Box::UnitCube(dim_);
  HT_ASSIGN_OR_RETURN(SplitResult s, InsertRec(root_, cube, point, id));
  if (s.split) {
    IndexNode new_root;
    new_root.level = 1;  // level is informational only for the KDB-tree
    new_root.root =
        KdNode::MakeInternal(s.dim, s.pos, s.pos, KdNode::MakeLeaf(root_),
                             KdNode::MakeLeaf(s.right_page));
    HT_ASSIGN_OR_RETURN(PageHandle h, pool_->New());
    const PageId new_root_page = h.id();
    h.Release();
    HT_RETURN_NOT_OK(WriteIndexNode(new_root_page, new_root));
    root_ = new_root_page;
  }
  ++count_;
  return Status::OK();
}

Result<KdbTree::SplitResult> KdbTree::InsertRec(PageId page, const Box& br,
                                                std::span<const float> point,
                                                uint64_t id) {
  HT_ASSIGN_OR_RETURN(NodeKind kind, PeekKind(page));
  if (kind == NodeKind::kData) {
    HT_ASSIGN_OR_RETURN(DataNode node, ReadDataNode(page));
    node.entries.push_back(
        DataEntry{id, std::vector<float>(point.begin(), point.end())});
    if (node.entries.size() <= data_capacity_) {
      HT_RETURN_NOT_OK(WriteDataNode(page, node));
      return SplitResult{};
    }
    return SplitDataPage(page, node, br);
  }

  HT_ASSIGN_OR_RETURN(IndexNode node, ReadIndexNode(page));
  // Clean navigation: v <= pos goes left.
  KdNode* n = node.root.get();
  Box region = br;
  while (!n->IsLeaf()) {
    if (point[n->split_dim] <= n->lsp) {
      region = KdLeftBr(region, *n);
      n = n->left.get();
    } else {
      region = KdRightBr(region, *n);
      n = n->right.get();
    }
  }
  HT_ASSIGN_OR_RETURN(SplitResult cs, InsertRec(n->child, region, point, id));
  if (!cs.split) return SplitResult{};
  n->left = KdNode::MakeLeaf(n->child);
  n->right = KdNode::MakeLeaf(cs.right_page);
  n->split_dim = cs.dim;
  n->lsp = cs.pos;
  n->rsp = cs.pos;
  n->child = kInvalidPageId;
  if (node.SerializedSize(false) > page_size_) {
    return SplitIndexPage(page, node, br);
  }
  HT_RETURN_NOT_OK(WriteIndexNode(page, node));
  return SplitResult{};
}

Result<KdbTree::SplitResult> KdbTree::SplitDataPage(PageId page,
                                                    DataNode& node,
                                                    const Box& br) {
  // Max-extent dimension, median position — falling back across dimensions
  // when every position would leave a side empty (duplicates).
  std::vector<uint32_t> order(dim_);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return br.Extent(a) > br.Extent(b);
  });
  for (uint32_t d : order) {
    std::vector<float> vals;
    vals.reserve(node.entries.size());
    for (const auto& e : node.entries) vals.push_back(e.vec[d]);
    std::sort(vals.begin(), vals.end());
    const float pos = vals[vals.size() / 2 - 1];  // left gets v <= pos
    if (pos >= vals.back()) continue;             // right side would be empty
    // pos >= min value, so the left side is non-empty too; moving entries
    // out of `node` is safe from here on.
    DataNode left, right;
    for (auto& e : node.entries) {
      (e.vec[d] <= pos ? left : right).entries.push_back(std::move(e));
    }
    HT_RETURN_NOT_OK(WriteDataNode(page, left));
    HT_ASSIGN_OR_RETURN(PageHandle rh, pool_->New());
    right.Serialize(rh.data(), rh.size(), dim_);
    rh.MarkDirty();
    SplitResult out;
    out.split = true;
    out.dim = d;
    out.pos = pos;
    out.right_page = rh.id();
    return out;
  }
  return Status::Internal(
      "KDB-tree cannot split a page of identical points (clean splits only)");
}

Result<KdbTree::SplitResult> KdbTree::SplitIndexPage(PageId page,
                                                     IndexNode& node,
                                                     const Box& br) {
  // Candidate planes: the split positions already present in this node.
  // Pick the one closest to the middle of the region (normalized), which
  // minimizes elongation; cascades happen only for straddling subtrees.
  struct Candidate {
    uint32_t dim;
    float pos;
    double score;
  };
  std::vector<Candidate> candidates;
  std::function<void(const KdNode*)> collect = [&](const KdNode* n) {
    if (n->IsLeaf()) return;
    const double extent = br.Extent(n->split_dim);
    if (extent > 0) {
      const double mid = br.lo(n->split_dim) + extent / 2;
      candidates.push_back(Candidate{
          n->split_dim, n->lsp, std::fabs(n->lsp - mid) / extent});
    }
    collect(n->left.get());
    collect(n->right.get());
  };
  collect(node.root.get());
  if (candidates.empty()) {
    return Status::Internal("KDB index node with no split planes");
  }
  const auto best = std::min_element(
      candidates.begin(), candidates.end(),
      [](const Candidate& a, const Candidate& b) { return a.score < b.score; });

  HT_ASSIGN_OR_RETURN(CutParts parts,
                      CutKd(std::move(node.root), br, best->dim, best->pos));
  HT_CHECK(parts.left != nullptr && parts.right != nullptr);
  IndexNode left;
  left.level = node.level;
  left.root = std::move(parts.left);
  IndexNode right;
  right.level = node.level;
  right.root = std::move(parts.right);
  HT_RETURN_NOT_OK(WriteIndexNode(page, left));
  HT_ASSIGN_OR_RETURN(PageHandle rh, pool_->New());
  const PageId right_page = rh.id();
  rh.Release();
  HT_RETURN_NOT_OK(WriteIndexNode(right_page, right));

  SplitResult out;
  out.split = true;
  out.dim = best->dim;
  out.pos = best->pos;
  out.right_page = right_page;
  return out;
}

Result<KdbTree::CutParts> KdbTree::CutKd(std::unique_ptr<KdNode> n,
                                         const Box& region, uint32_t dim,
                                         float pos) {
  CutParts out;
  if (region.hi(dim) <= pos) {
    out.left = std::move(n);
    return out;
  }
  if (region.lo(dim) >= pos) {
    out.right = std::move(n);
    return out;
  }
  if (n->IsLeaf()) {
    // Straddling child: forced cascading split (the KDB-tree's cost of
    // keeping partitions strictly disjoint).
    ++cascading_splits_;
    const PageId left_page = n->child;
    HT_ASSIGN_OR_RETURN(PageId right_page,
                        SplitSubtreePage(left_page, region, dim, pos));
    out.left = KdNode::MakeLeaf(left_page);
    out.right = KdNode::MakeLeaf(right_page);
    return out;
  }
  if (n->split_dim == dim && n->lsp == pos) {
    out.left = std::move(n->left);
    out.right = std::move(n->right);
    return out;
  }
  const Box left_region = KdLeftBr(region, *n);
  const Box right_region = KdRightBr(region, *n);
  const uint32_t ndim = n->split_dim;
  const float npos = n->lsp;
  HT_ASSIGN_OR_RETURN(CutParts l,
                      CutKd(std::move(n->left), left_region, dim, pos));
  HT_ASSIGN_OR_RETURN(CutParts r,
                      CutKd(std::move(n->right), right_region, dim, pos));
  auto combine = [&](std::unique_ptr<KdNode> a,
                     std::unique_ptr<KdNode> b) -> std::unique_ptr<KdNode> {
    if (a == nullptr) return b;
    if (b == nullptr) return a;
    return KdNode::MakeInternal(ndim, npos, npos, std::move(a), std::move(b));
  };
  out.left = combine(std::move(l.left), std::move(r.left));
  out.right = combine(std::move(l.right), std::move(r.right));
  return out;
}

Result<PageId> KdbTree::SplitSubtreePage(PageId page, const Box& region,
                                         uint32_t dim, float pos) {
  HT_ASSIGN_OR_RETURN(NodeKind kind, PeekKind(page));
  if (kind == NodeKind::kData) {
    HT_ASSIGN_OR_RETURN(DataNode node, ReadDataNode(page));
    DataNode left, right;
    for (auto& e : node.entries) {
      (e.vec[dim] <= pos ? left : right).entries.push_back(std::move(e));
    }
    // Either side may be empty — Robinson's "empty nodes".
    HT_RETURN_NOT_OK(WriteDataNode(page, left));
    HT_ASSIGN_OR_RETURN(PageHandle rh, pool_->New());
    right.Serialize(rh.data(), rh.size(), dim_);
    rh.MarkDirty();
    return rh.id();
  }
  HT_ASSIGN_OR_RETURN(IndexNode node, ReadIndexNode(page));
  HT_ASSIGN_OR_RETURN(CutParts parts,
                      CutKd(std::move(node.root), region, dim, pos));
  // Region straddles pos, but all content may still fall on one side; an
  // empty index node is represented as an empty data page.
  auto write_side = [&](std::unique_ptr<KdNode> part,
                        PageId target) -> Status {
    if (part == nullptr) {
      DataNode empty;
      return WriteDataNode(target, empty);
    }
    IndexNode side;
    side.level = node.level;
    side.root = std::move(part);
    return WriteIndexNode(target, side);
  };
  HT_RETURN_NOT_OK(write_side(std::move(parts.left), page));
  HT_ASSIGN_OR_RETURN(PageHandle rh, pool_->New());
  const PageId right_page = rh.id();
  rh.Release();
  HT_RETURN_NOT_OK(write_side(std::move(parts.right), right_page));
  return right_page;
}

// --- deletion ---------------------------------------------------------------

Status KdbTree::Delete(std::span<const float> point, uint64_t id) {
  if (point.size() != dim_) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  // Clean partitions: the entry lives on exactly one root-to-leaf path.
  PageId page = root_;
  for (;;) {
    HT_ASSIGN_OR_RETURN(NodeKind kind, PeekKind(page));
    if (kind == NodeKind::kData) break;
    HT_ASSIGN_OR_RETURN(IndexNode node, ReadIndexNode(page));
    const KdNode* n = node.root.get();
    while (!n->IsLeaf()) {
      n = point[n->split_dim] <= n->lsp ? n->left.get() : n->right.get();
    }
    page = n->child;
  }
  HT_ASSIGN_OR_RETURN(DataNode node, ReadDataNode(page));
  for (size_t i = 0; i < node.entries.size(); ++i) {
    const auto& e = node.entries[i];
    if (e.id == id && std::equal(e.vec.begin(), e.vec.end(), point.begin(),
                                 point.end())) {
      node.entries.erase(node.entries.begin() + static_cast<long>(i));
      HT_RETURN_NOT_OK(WriteDataNode(page, node));
      --count_;
      // No re-balancing: the KDB-tree offers no utilization guarantee.
      return Status::OK();
    }
  }
  return Status::NotFound("no entry matches (point, id)");
}

// --- search -----------------------------------------------------------------

Result<std::vector<uint64_t>> KdbTree::SearchBox(const Box& query) {
  std::vector<uint64_t> out;
  std::function<Status(PageId)> rec = [&](PageId page) -> Status {
    HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(page));
    const NodeKind kind = PeekNodeKind(h.data());
    if (kind == NodeKind::kData) {
      DataPageScan scan(h.data(), h.size(), dim_);
      if (!scan.ok()) return Status::Corruption("expected data page");
      for (size_t i = 0; i < scan.count(); ++i) {
        if (query.ContainsPoint(scan.vec(i))) out.push_back(scan.id(i));
      }
      return Status::OK();
    }
    HT_ASSIGN_OR_RETURN(IndexNode node, IndexNode::Deserialize(
                                            h.data(), h.size(), false, 0, dim_));
    h.Release();
    std::function<Status(const KdNode*)> walk =
        [&](const KdNode* n) -> Status {
      if (n->IsLeaf()) return rec(n->child);
      if (query.lo(n->split_dim) <= n->lsp) {
        HT_RETURN_NOT_OK(walk(n->left.get()));
      }
      if (query.hi(n->split_dim) > n->lsp) {
        HT_RETURN_NOT_OK(walk(n->right.get()));
      }
      return Status::OK();
    };
    return walk(node.root.get());
  };
  HT_RETURN_NOT_OK(rec(root_));
  return out;
}

Result<std::vector<uint64_t>> KdbTree::SearchRange(
    std::span<const float> center, double radius,
    const DistanceMetric& metric) {
  std::vector<uint64_t> out;
  std::function<Status(PageId, const Box&)> rec = [&](PageId page,
                                                      const Box& br) -> Status {
    HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(page));
    const NodeKind kind = PeekNodeKind(h.data());
    if (kind == NodeKind::kData) {
      DataPageScan scan(h.data(), h.size(), dim_);
      if (!scan.ok()) return Status::Corruption("expected data page");
      for (size_t i = 0; i < scan.count(); ++i) {
        if (metric.Distance(center, scan.vec(i)) <= radius) {
          out.push_back(scan.id(i));
        }
      }
      return Status::OK();
    }
    HT_ASSIGN_OR_RETURN(IndexNode node, IndexNode::Deserialize(
                                            h.data(), h.size(), false, 0, dim_));
    h.Release();
    std::function<Status(const KdNode*, const Box&)> walk =
        [&](const KdNode* n, const Box& nbr) -> Status {
      if (n->IsLeaf()) {
        if (metric.MinDistToBox(center, nbr) > radius) return Status::OK();
        return rec(n->child, nbr);
      }
      HT_RETURN_NOT_OK(walk(n->left.get(), KdLeftBr(nbr, *n)));
      return walk(n->right.get(), KdRightBr(nbr, *n));
    };
    return walk(node.root.get(), br);
  };
  HT_RETURN_NOT_OK(rec(root_, Box::UnitCube(dim_)));
  return out;
}

Result<std::vector<std::pair<double, uint64_t>>> KdbTree::SearchKnn(
    std::span<const float> center, size_t k, const DistanceMetric& metric) {
  std::vector<std::pair<double, uint64_t>> results;
  if (k == 0 || count_ == 0) return results;
  struct PqItem {
    double dist;
    PageId page;
    Box br;
    bool operator>(const PqItem& o) const { return dist > o.dist; }
  };
  std::priority_queue<PqItem, std::vector<PqItem>, std::greater<PqItem>> pq;
  pq.push(PqItem{0.0, root_, Box::UnitCube(dim_)});
  std::priority_queue<std::pair<double, uint64_t>> best;
  auto kth = [&]() {
    return best.size() < k ? std::numeric_limits<double>::max()
                           : best.top().first;
  };
  while (!pq.empty() && pq.top().dist <= kth()) {
    PqItem item = pq.top();
    pq.pop();
    HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(item.page));
    const NodeKind kind = PeekNodeKind(h.data());
    if (kind == NodeKind::kData) {
      DataPageScan scan(h.data(), h.size(), dim_);
      if (!scan.ok()) return Status::Corruption("expected data page");
      for (size_t i = 0; i < scan.count(); ++i) {
        const double d = metric.Distance(center, scan.vec(i));
        if (best.size() < k) {
          best.emplace(d, scan.id(i));
        } else if (d < best.top().first) {
          best.pop();
          best.emplace(d, scan.id(i));
        }
      }
      continue;
    }
    HT_ASSIGN_OR_RETURN(IndexNode node, IndexNode::Deserialize(
                                            h.data(), h.size(), false, 0, dim_));
    h.Release();
    std::function<void(const KdNode*, const Box&)> walk =
        [&](const KdNode* n, const Box& nbr) {
          if (n->IsLeaf()) {
            const double d = metric.MinDistToBox(center, nbr);
            if (d <= kth()) pq.push(PqItem{d, n->child, nbr});
            return;
          }
          walk(n->left.get(), KdLeftBr(nbr, *n));
          walk(n->right.get(), KdRightBr(nbr, *n));
        };
    walk(node.root.get(), item.br);
  }
  results.resize(best.size());
  for (size_t i = best.size(); i-- > 0;) {
    results[i] = best.top();
    best.pop();
  }
  return results;
}

// --- stats / invariants -----------------------------------------------------

Result<KdbStats> KdbTree::ComputeStats() {
  KdbStats stats;
  stats.cascading_splits = cascading_splits_;
  double util_sum = 0.0;
  HT_RETURN_NOT_OK(ComputeStatsRec(root_, &stats, &util_sum));
  if (stats.data_nodes > 0) {
    stats.avg_data_utilization =
        util_sum / static_cast<double>(stats.data_nodes);
  }
  if (stats.index_nodes > 0) {
    stats.avg_index_fanout /= static_cast<double>(stats.index_nodes);
  }
  return stats;
}

Status KdbTree::ComputeStatsRec(PageId page, KdbStats* stats,
                                double* util_sum) {
  HT_ASSIGN_OR_RETURN(NodeKind kind, PeekKind(page));
  if (kind == NodeKind::kData) {
    HT_ASSIGN_OR_RETURN(DataNode node, ReadDataNode(page));
    ++stats->data_nodes;
    if (node.entries.empty()) ++stats->empty_data_nodes;
    const double util = static_cast<double>(node.entries.size()) /
                        static_cast<double>(data_capacity_);
    *util_sum += util;
    if (page != root_ && util < stats->min_data_utilization) {
      stats->min_data_utilization = util;
    }
    return Status::OK();
  }
  HT_ASSIGN_OR_RETURN(IndexNode node, ReadIndexNode(page));
  ++stats->index_nodes;
  stats->avg_index_fanout += static_cast<double>(node.NumChildren());
  std::vector<ChildRef> kids;
  node.CollectChildren(Box::UnitCube(dim_), &kids);
  for (const auto& kid : kids) {
    HT_RETURN_NOT_OK(ComputeStatsRec(kid.leaf->child, stats, util_sum));
  }
  return Status::OK();
}

Status KdbTree::CheckInvariants() {
  uint64_t entries_seen = 0;
  HT_RETURN_NOT_OK(
      CheckInvariantsRec(root_, Box::UnitCube(dim_), &entries_seen));
  if (entries_seen != count_) {
    return Status::Corruption("KDB entry count mismatch");
  }
  return Status::OK();
}

Status KdbTree::CheckInvariantsRec(PageId page, const Box& br,
                                   uint64_t* entries_seen) {
  HT_ASSIGN_OR_RETURN(NodeKind kind, PeekKind(page));
  if (kind == NodeKind::kData) {
    HT_ASSIGN_OR_RETURN(DataNode node, ReadDataNode(page));
    if (node.entries.size() > data_capacity_) {
      return Status::Corruption("KDB data node over capacity");
    }
    for (const auto& e : node.entries) {
      if (!br.ContainsPoint(e.vec)) {
        return Status::Corruption("KDB entry outside its region");
      }
    }
    *entries_seen += node.entries.size();
    return Status::OK();
  }
  HT_ASSIGN_OR_RETURN(IndexNode node, ReadIndexNode(page));
  if (node.SerializedSize(false) > page_size_) {
    return Status::Corruption("KDB index node over page size");
  }
  std::function<Status(const KdNode*, const Box&)> walk =
      [&](const KdNode* n, const Box& nbr) -> Status {
    if (n->IsLeaf()) return CheckInvariantsRec(n->child, nbr, entries_seen);
    if (n->lsp != n->rsp) {
      return Status::Corruption("KDB split must be clean (lsp == rsp)");
    }
    HT_RETURN_NOT_OK(walk(n->left.get(), KdLeftBr(nbr, *n)));
    return walk(n->right.get(), KdRightBr(nbr, *n));
  };
  return walk(node.root.get(), br);
}

}  // namespace ht
