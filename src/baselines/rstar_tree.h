// Copyright 2026 The HybridTree Authors.
// R*-tree (Beckmann, Kriegel, Schneider, Seeger 1990): the canonical
// data-partitioning (bounding-box hierarchy) baseline. Table 1's "R-tree"
// row: all k dimensions participate in every split, fanout shrinks
// linearly with dimensionality (each index entry stores a full 2k-float
// box), and sibling boxes may overlap arbitrarily.
//
// Implemented features: ChooseSubtree with overlap-enlargement at the leaf
// level, the R* margin-driven split (axis by minimum margin sum, index by
// minimum overlap), forced reinsertion of the 30% leaf entries farthest
// from the node center on first leaf overflow per insertion, deletion with
// condense-and-reinsert, and box / distance-range / k-NN search.

#pragma once

#include <memory>

#include "baselines/spatial_index.h"
#include "core/node.h"
#include "storage/paged_file.h"

namespace ht {

struct RStarStats {
  uint64_t data_nodes = 0;
  uint64_t index_nodes = 0;
  double avg_leaf_utilization = 0.0;
  double avg_index_fanout = 0.0;
  size_t index_capacity = 0;  // entries per index page (shrinks with dim!)
  uint64_t forced_reinsertions = 0;
  uint64_t splits = 0;
  /// Mean fraction of sibling-box pairs that intersect (Table 1 "degree of
  /// overlap: high"); volume-based measures underflow at high d.
  double avg_sibling_overlap = 0.0;
};

class RStarTree final : public SpatialIndex {
 public:
  static Result<std::unique_ptr<RStarTree>> Create(uint32_t dim,
                                                   PagedFile* file);

  std::string Name() const override { return "R*-tree"; }
  Status Insert(std::span<const float> point, uint64_t id) override;
  Status Delete(std::span<const float> point, uint64_t id) override;
  Result<std::vector<uint64_t>> SearchBox(const Box& query) override;
  Result<std::vector<uint64_t>> SearchRange(
      std::span<const float> center, double radius,
      const DistanceMetric& metric) override;
  Result<std::vector<std::pair<double, uint64_t>>> SearchKnn(
      std::span<const float> center, size_t k,
      const DistanceMetric& metric) override;

  uint64_t size() const override { return count_; }
  BufferPool& pool() override { return *pool_; }

  Result<RStarStats> ComputeStats();
  Status CheckInvariants();
  size_t leaf_capacity() const { return leaf_capacity_; }
  size_t index_capacity() const { return index_capacity_; }

  /// An index-page entry: child bounding box + child page. Public so the
  /// SR-tree (which extends this machinery) and tests can build on it.
  struct IEntry {
    Box br;
    PageId child = kInvalidPageId;
  };
  struct INode {
    uint8_t level = 1;
    std::vector<IEntry> entries;
  };

 protected:
  RStarTree(uint32_t dim, PagedFile* file);

  Result<DataNode> ReadLeaf(PageId id);
  Status WriteLeaf(PageId id, const DataNode& node);
  Result<INode> ReadIndex(PageId id);
  Result<INode> DecodeIndex(const uint8_t* data, size_t size) const;
  Status WriteIndex(PageId id, const INode& node);
  Result<NodeKind> PeekKind(PageId id);

  struct SplitOut {
    bool split = false;
    Box left_br;   // updated box of the original page
    Box right_br;  // box of the new page
    PageId right_page = kInvalidPageId;
    bool reinserting = false;  // entries were removed for reinsertion
  };
  struct InsertCtx {
    bool leaf_reinsert_done = false;
    std::vector<DataEntry> pending;  // leaf entries to reinsert
  };
  Result<SplitOut> InsertRec(PageId page, std::span<const float> point,
                             uint64_t id, InsertCtx* ctx);
  SplitOut SplitLeaf(DataNode& node, DataNode* right);
  SplitOut SplitIndex(INode& node, INode* right);

  /// R* ChooseSubtree among index entries for a point at the given level.
  size_t ChooseSubtree(const INode& node, std::span<const float> point) const;

  Status CondenseAfterDelete(std::vector<DataEntry>* orphans);

  Status ComputeStatsRec(PageId page, RStarStats* stats, double* leaf_util,
                         double* overlap_sum, uint64_t* overlap_nodes);
  Status CheckInvariantsRec(PageId page, const Box& br, bool is_root,
                            uint32_t expected_level, uint64_t* entries_seen);
  Status CollectEntries(PageId page, std::vector<DataEntry>* out,
                        std::vector<PageId>* pages);

  uint32_t dim_;
  size_t page_size_;
  std::unique_ptr<BufferPool> pool_;
  size_t leaf_capacity_ = 0;
  size_t index_capacity_ = 0;
  size_t leaf_min_ = 0;
  size_t index_min_ = 0;
  PageId root_ = kInvalidPageId;
  uint32_t height_ = 0;
  uint64_t count_ = 0;
  uint64_t reinsertions_ = 0;
  uint64_t splits_ = 0;
};

/// Serialized R-tree index page kind byte.
inline constexpr uint8_t kRIndexKind = 4;

}  // namespace ht
