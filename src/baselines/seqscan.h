// Copyright 2026 The HybridTree Authors.
// Sequential scan baseline: entries packed into consecutive pages, every
// query reads them all. Beyond 10-15 dimensions this is the bar to beat
// [Beyer et al.; Weber et al.], which is why the paper normalizes all I/O
// costs against it (sequential pages cost 1/10 of a random access).

#pragma once

#include <memory>
#include <vector>

#include "baselines/spatial_index.h"
#include "core/node.h"
#include "storage/paged_file.h"

namespace ht {

class SeqScan final : public SpatialIndex {
 public:
  /// `file` must be empty; the scan owns its page layout.
  static Result<std::unique_ptr<SeqScan>> Create(uint32_t dim,
                                                 PagedFile* file);

  std::string Name() const override { return "SeqScan"; }
  Status Insert(std::span<const float> point, uint64_t id) override;
  Status Delete(std::span<const float> point, uint64_t id) override;
  Result<std::vector<uint64_t>> SearchBox(const Box& query) override;
  Result<std::vector<uint64_t>> SearchRange(
      std::span<const float> center, double radius,
      const DistanceMetric& metric) override;
  Result<std::vector<std::pair<double, uint64_t>>> SearchKnn(
      std::span<const float> center, size_t k,
      const DistanceMetric& metric) override;

  uint64_t size() const override { return count_; }
  BufferPool& pool() override { return *pool_; }
  bool sequential_io() const override { return true; }

  /// Number of data pages a full scan reads.
  uint64_t data_pages() const { return pages_.size(); }

 private:
  SeqScan(uint32_t dim, PagedFile* file);

  template <typename Visit>
  Status ScanAll(Visit visit);

  uint32_t dim_;
  std::unique_ptr<BufferPool> pool_;
  std::vector<PageId> pages_;
  size_t capacity_per_page_;
  size_t last_page_count_ = 0;
  uint64_t count_ = 0;
};

}  // namespace ht
