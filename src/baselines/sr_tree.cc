#include "baselines/sr_tree.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>
#include <queue>

#include "common/codec.h"

namespace ht {

namespace {
constexpr size_t kHeaderBytes = 4;

double Dist2(std::span<const float> a, std::span<const float> b) {
  double s = 0.0;
  for (size_t d = 0; d < a.size(); ++d) {
    const double diff = static_cast<double>(a[d]) - b[d];
    s += diff * diff;
  }
  return std::sqrt(s);
}
}  // namespace

SrTree::SrTree(uint32_t dim, PagedFile* file)
    : dim_(dim),
      page_size_(file->page_size()),
      pool_(std::make_unique<BufferPool>(file, 0)) {
  leaf_capacity_ = DataNode::Capacity(dim, page_size_);
  // rect (8*dim) + center (4*dim) + radius(4) + weight(4) + child(4).
  index_capacity_ =
      (page_size_ - kHeaderBytes) / (12 * static_cast<size_t>(dim) + 12);
  leaf_min_ = std::max<size_t>(1, static_cast<size_t>(0.4 * leaf_capacity_));
  index_min_ = std::max<size_t>(2, static_cast<size_t>(0.4 * index_capacity_));
  if (2 * leaf_min_ > leaf_capacity_) leaf_min_ = leaf_capacity_ / 2;
  if (2 * index_min_ > index_capacity_) index_min_ = index_capacity_ / 2;
}

Result<std::unique_ptr<SrTree>> SrTree::Create(uint32_t dim, PagedFile* file) {
  if (file->page_count() != 0) {
    return Status::InvalidArgument("SrTree::Create requires an empty file");
  }
  auto tree = std::unique_ptr<SrTree>(new SrTree(dim, file));
  if (tree->leaf_capacity_ < 4 || tree->index_capacity_ < 4) {
    return Status::InvalidArgument(
        "page too small for an SR-tree node at this dimensionality");
  }
  HT_ASSIGN_OR_RETURN(PageHandle h, tree->pool_->New());
  tree->root_ = h.id();
  DataNode empty;
  empty.Serialize(h.data(), h.size(), dim);
  h.MarkDirty();
  return tree;
}

// --- node I/O ---------------------------------------------------------------

Result<NodeKind> SrTree::PeekKind(PageId id) {
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  return PeekNodeKind(h.data());
}

Result<DataNode> SrTree::ReadLeaf(PageId id) {
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  return DataNode::Deserialize(h.data(), h.size(), dim_);
}

Status SrTree::WriteLeaf(PageId id, const DataNode& node) {
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  node.Serialize(h.data(), h.size(), dim_);
  h.MarkDirty();
  return Status::OK();
}

Result<SrTree::SRNode> SrTree::ReadIndex(PageId id) {
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  return DecodeIndex(h.data(), h.size());
}

Result<SrTree::SRNode> SrTree::DecodeIndex(const uint8_t* data,
                                           size_t size) const {
  Reader r(data, size);
  if (r.GetU8() != kSrIndexKind) {
    return Status::Corruption("expected SR-tree index page");
  }
  SRNode node;
  node.level = r.GetU8();
  const uint16_t n = r.GetU16();
  node.entries.resize(n);
  for (uint16_t i = 0; i < n; ++i) {
    SREntry& e = node.entries[i];
    std::vector<float> lo(dim_), hi(dim_);
    for (uint32_t d = 0; d < dim_; ++d) lo[d] = r.GetF32();
    for (uint32_t d = 0; d < dim_; ++d) hi[d] = r.GetF32();
    e.rect = Box::FromBounds(std::move(lo), std::move(hi));
    e.center.resize(dim_);
    for (uint32_t d = 0; d < dim_; ++d) e.center[d] = r.GetF32();
    e.radius = r.GetF32();
    e.weight = r.GetU32();
    e.child = r.GetU32();
  }
  HT_RETURN_NOT_OK(r.status());
  return node;
}

Status SrTree::WriteIndex(PageId id, const SRNode& node) {
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  Writer w(h.data(), h.size());
  w.PutU8(kSrIndexKind);
  w.PutU8(node.level);
  w.PutU16(static_cast<uint16_t>(node.entries.size()));
  for (const auto& e : node.entries) {
    for (uint32_t d = 0; d < dim_; ++d) w.PutF32(e.rect.lo(d));
    for (uint32_t d = 0; d < dim_; ++d) w.PutF32(e.rect.hi(d));
    for (uint32_t d = 0; d < dim_; ++d) w.PutF32(e.center[d]);
    w.PutF32(e.radius);
    w.PutU32(e.weight);
    w.PutU32(e.child);
  }
  h.MarkDirty();
  return Status::OK();
}

// --- summaries --------------------------------------------------------------

SrTree::SREntry SrTree::SummarizeLeaf(const DataNode& node,
                                      PageId page) const {
  SREntry e;
  e.child = page;
  e.weight = static_cast<uint32_t>(node.entries.size());
  e.rect = node.ComputeLiveBr(dim_);
  e.center.assign(dim_, 0.0f);
  if (node.entries.empty()) return e;
  std::vector<double> acc(dim_, 0.0);
  for (const auto& de : node.entries) {
    for (uint32_t d = 0; d < dim_; ++d) acc[d] += de.vec[d];
  }
  for (uint32_t d = 0; d < dim_; ++d) {
    e.center[d] = static_cast<float>(acc[d] / node.entries.size());
  }
  double r = 0.0;
  for (const auto& de : node.entries) {
    r = std::max(r, Dist2(e.center, de.vec));
  }
  // Small epsilon absorbs float32 rounding of the stored center.
  e.radius = static_cast<float>(r) + 1e-6f;
  return e;
}

SrTree::SREntry SrTree::SummarizeIndex(const SRNode& node,
                                       PageId page) const {
  HT_CHECK(!node.entries.empty());
  SREntry e;
  e.child = page;
  e.rect = node.entries[0].rect;
  uint64_t total = 0;
  std::vector<double> acc(dim_, 0.0);
  for (const auto& c : node.entries) {
    e.rect.ExtendToInclude(c.rect);
    total += c.weight;
    for (uint32_t d = 0; d < dim_; ++d) {
      acc[d] += static_cast<double>(c.center[d]) * c.weight;
    }
  }
  e.weight = static_cast<uint32_t>(total);
  e.center.resize(dim_);
  for (uint32_t d = 0; d < dim_; ++d) {
    e.center[d] = static_cast<float>(total ? acc[d] / total : 0.0);
  }
  double r = 0.0;
  for (const auto& c : node.entries) {
    r = std::max(r, Dist2(e.center, c.center) + c.radius);
  }
  e.radius = static_cast<float>(r) + 1e-6f;
  return e;
}

// --- insertion --------------------------------------------------------------

template <typename GetCoord>
std::pair<std::vector<uint32_t>, std::vector<uint32_t>> SrTree::VarianceSplit(
    size_t n, uint32_t dim, size_t min_count, GetCoord coord) {
  // Dimension with maximal variance of the member coordinates.
  uint32_t best_dim = 0;
  double best_var = -1.0;
  for (uint32_t d = 0; d < dim; ++d) {
    double mean = 0.0;
    for (size_t i = 0; i < n; ++i) mean += coord(i, d);
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double diff = coord(i, d) - mean;
      var += diff * diff;
    }
    if (var > best_var) {
      best_var = var;
      best_dim = d;
    }
  }
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return coord(a, best_dim) < coord(b, best_dim);
  });
  // Split position minimizing the summed per-group variance along best_dim.
  size_t best_k = min_count;
  double best_cost = std::numeric_limits<double>::max();
  for (size_t k = min_count; k + min_count <= n; ++k) {
    double cost = 0.0;
    for (int side = 0; side < 2; ++side) {
      const size_t lo = side == 0 ? 0 : k;
      const size_t hi = side == 0 ? k : n;
      double mean = 0.0;
      for (size_t i = lo; i < hi; ++i) mean += coord(order[i], best_dim);
      mean /= static_cast<double>(hi - lo);
      for (size_t i = lo; i < hi; ++i) {
        const double diff = coord(order[i], best_dim) - mean;
        cost += diff * diff;
      }
    }
    if (cost < best_cost) {
      best_cost = cost;
      best_k = k;
    }
  }
  return {std::vector<uint32_t>(order.begin(),
                                order.begin() + static_cast<long>(best_k)),
          std::vector<uint32_t>(order.begin() + static_cast<long>(best_k),
                                order.end())};
}

Status SrTree::Insert(std::span<const float> point, uint64_t id) {
  if (point.size() != dim_) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  HT_ASSIGN_OR_RETURN(InsertOut out, InsertRec(root_, point, id));
  if (out.split) {
    SRNode new_root;
    new_root.level = static_cast<uint8_t>(height_ + 1);
    new_root.entries.push_back(std::move(out.self));
    new_root.entries.push_back(std::move(out.sibling));
    HT_ASSIGN_OR_RETURN(PageHandle h, pool_->New());
    const PageId new_root_page = h.id();
    h.Release();
    HT_RETURN_NOT_OK(WriteIndex(new_root_page, new_root));
    root_ = new_root_page;
    ++height_;
  }
  ++count_;
  return Status::OK();
}

Result<SrTree::InsertOut> SrTree::InsertRec(PageId page,
                                            std::span<const float> point,
                                            uint64_t id) {
  HT_ASSIGN_OR_RETURN(NodeKind kind, PeekKind(page));
  if (kind == NodeKind::kData) {
    HT_ASSIGN_OR_RETURN(DataNode node, ReadLeaf(page));
    node.entries.push_back(
        DataEntry{id, std::vector<float>(point.begin(), point.end())});
    InsertOut out;
    if (node.entries.size() <= leaf_capacity_) {
      HT_RETURN_NOT_OK(WriteLeaf(page, node));
      out.self = SummarizeLeaf(node, page);
      return out;
    }
    auto [left_idx, right_idx] = VarianceSplit(
        node.entries.size(), dim_, leaf_min_,
        [&](size_t i, uint32_t d) { return node.entries[i].vec[d]; });
    DataNode left, right;
    for (uint32_t i : left_idx) left.entries.push_back(std::move(node.entries[i]));
    for (uint32_t i : right_idx) {
      right.entries.push_back(std::move(node.entries[i]));
    }
    HT_RETURN_NOT_OK(WriteLeaf(page, left));
    HT_ASSIGN_OR_RETURN(PageHandle rh, pool_->New());
    right.Serialize(rh.data(), rh.size(), dim_);
    rh.MarkDirty();
    out.split = true;
    out.self = SummarizeLeaf(left, page);
    out.sibling = SummarizeLeaf(right, rh.id());
    return out;
  }

  HT_ASSIGN_OR_RETURN(SRNode node, ReadIndex(page));
  // SS-tree descent: nearest centroid.
  size_t j = 0;
  double best = std::numeric_limits<double>::max();
  for (size_t i = 0; i < node.entries.size(); ++i) {
    const double d = Dist2(node.entries[i].center, point);
    if (d < best) {
      best = d;
      j = i;
    }
  }
  HT_ASSIGN_OR_RETURN(InsertOut child,
                      InsertRec(node.entries[j].child, point, id));
  node.entries[j] = std::move(child.self);
  if (child.split) {
    node.entries.push_back(std::move(child.sibling));
  }
  InsertOut out;
  if (node.entries.size() <= index_capacity_) {
    HT_RETURN_NOT_OK(WriteIndex(page, node));
    out.self = SummarizeIndex(node, page);
    return out;
  }
  auto [left_idx, right_idx] = VarianceSplit(
      node.entries.size(), dim_, index_min_,
      [&](size_t i, uint32_t d) { return node.entries[i].center[d]; });
  SRNode left, right;
  left.level = right.level = node.level;
  for (uint32_t i : left_idx) left.entries.push_back(std::move(node.entries[i]));
  for (uint32_t i : right_idx) {
    right.entries.push_back(std::move(node.entries[i]));
  }
  HT_RETURN_NOT_OK(WriteIndex(page, left));
  HT_ASSIGN_OR_RETURN(PageHandle rh, pool_->New());
  const PageId right_page = rh.id();
  rh.Release();
  HT_RETURN_NOT_OK(WriteIndex(right_page, right));
  out.split = true;
  out.self = SummarizeIndex(left, page);
  out.sibling = SummarizeIndex(right, right_page);
  return out;
}

// --- deletion ---------------------------------------------------------------

Status SrTree::Delete(std::span<const float> point, uint64_t id) {
  if (point.size() != dim_) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  struct Outcome {
    bool found = false;
    bool eliminate_me = false;
    SREntry self;
  };
  std::vector<DataEntry> orphans;
  std::function<Result<Outcome>(PageId)> rec =
      [&](PageId page) -> Result<Outcome> {
    Outcome out;
    HT_ASSIGN_OR_RETURN(NodeKind kind, PeekKind(page));
    if (kind == NodeKind::kData) {
      HT_ASSIGN_OR_RETURN(DataNode node, ReadLeaf(page));
      for (size_t i = 0; i < node.entries.size(); ++i) {
        const auto& e = node.entries[i];
        if (e.id == id && std::equal(e.vec.begin(), e.vec.end(),
                                     point.begin(), point.end())) {
          node.entries.erase(node.entries.begin() + static_cast<long>(i));
          out.found = true;
          break;
        }
      }
      if (!out.found) return out;
      if (page != root_ && node.entries.size() < leaf_min_) {
        out.eliminate_me = true;
        for (auto& e : node.entries) orphans.push_back(std::move(e));
      } else {
        HT_RETURN_NOT_OK(WriteLeaf(page, node));
        out.self = SummarizeLeaf(node, page);
      }
      return out;
    }
    HT_ASSIGN_OR_RETURN(SRNode node, ReadIndex(page));
    for (size_t i = 0; i < node.entries.size(); ++i) {
      const auto& e = node.entries[i];
      if (!e.rect.ContainsPoint(point)) continue;
      if (Dist2(e.center, point) > e.radius) continue;
      HT_ASSIGN_OR_RETURN(Outcome child, rec(e.child));
      if (!child.found) continue;
      out.found = true;
      if (child.eliminate_me) {
        HT_RETURN_NOT_OK(pool_->Free(node.entries[i].child));
        node.entries.erase(node.entries.begin() + static_cast<long>(i));
      } else {
        node.entries[i] = std::move(child.self);
      }
      if (page != root_ && node.entries.size() < index_min_) {
        out.eliminate_me = true;
        std::vector<PageId> pages;
        for (const auto& c : node.entries) {
          HT_RETURN_NOT_OK(CollectEntries(c.child, &orphans, &pages));
        }
        for (PageId p : pages) HT_RETURN_NOT_OK(pool_->Free(p));
      } else if (node.entries.empty()) {
        DataNode empty;
        HT_RETURN_NOT_OK(WriteLeaf(page, empty));
        height_ = 0;
      } else {
        HT_RETURN_NOT_OK(WriteIndex(page, node));
        out.self = SummarizeIndex(node, page);
      }
      return out;
    }
    return out;
  };
  HT_ASSIGN_OR_RETURN(Outcome out, rec(root_));
  if (!out.found) return Status::NotFound("no entry matches (point, id)");
  --count_;
  for (;;) {
    HT_ASSIGN_OR_RETURN(NodeKind kind, PeekKind(root_));
    if (kind == NodeKind::kData) break;
    HT_ASSIGN_OR_RETURN(SRNode node, ReadIndex(root_));
    if (node.entries.size() != 1) break;
    const PageId child = node.entries[0].child;
    HT_RETURN_NOT_OK(pool_->Free(root_));
    root_ = child;
    --height_;
  }
  count_ -= orphans.size();
  for (auto& e : orphans) {
    HT_RETURN_NOT_OK(Insert(e.vec, e.id));
  }
  return Status::OK();
}

Status SrTree::CollectEntries(PageId page, std::vector<DataEntry>* out,
                              std::vector<PageId>* pages) {
  pages->push_back(page);
  HT_ASSIGN_OR_RETURN(NodeKind kind, PeekKind(page));
  if (kind == NodeKind::kData) {
    HT_ASSIGN_OR_RETURN(DataNode node, ReadLeaf(page));
    for (auto& e : node.entries) out->push_back(std::move(e));
    return Status::OK();
  }
  HT_ASSIGN_OR_RETURN(SRNode node, ReadIndex(page));
  for (const auto& e : node.entries) {
    HT_RETURN_NOT_OK(CollectEntries(e.child, out, pages));
  }
  return Status::OK();
}

// --- search -----------------------------------------------------------------

Result<std::vector<uint64_t>> SrTree::SearchBox(const Box& query) {
  std::vector<uint64_t> out;
  L2Metric l2;
  std::function<Status(PageId)> rec = [&](PageId page) -> Status {
    HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(page));
    const NodeKind kind = PeekNodeKind(h.data());
    if (kind == NodeKind::kData) {
      DataPageScan scan(h.data(), h.size(), dim_);
      if (!scan.ok()) return Status::Corruption("expected data page");
      for (size_t i = 0; i < scan.count(); ++i) {
        if (query.ContainsPoint(scan.vec(i))) out.push_back(scan.id(i));
      }
      return Status::OK();
    }
    HT_ASSIGN_OR_RETURN(SRNode node, DecodeIndex(h.data(), h.size()));
    h.Release();
    for (const auto& e : node.entries) {
      if (!query.Intersects(e.rect)) continue;
      // Sphere check: a box whose Euclidean distance to the centroid
      // exceeds the radius cannot contain a member.
      if (l2.MinDistToBox(e.center, query) > e.radius) continue;
      HT_RETURN_NOT_OK(rec(e.child));
    }
    return Status::OK();
  };
  HT_RETURN_NOT_OK(rec(root_));
  return out;
}

Result<std::vector<uint64_t>> SrTree::SearchRange(
    std::span<const float> center, double radius,
    const DistanceMetric& metric) {
  std::vector<uint64_t> out;
  std::function<Status(PageId)> rec = [&](PageId page) -> Status {
    HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(page));
    const NodeKind kind = PeekNodeKind(h.data());
    if (kind == NodeKind::kData) {
      DataPageScan scan(h.data(), h.size(), dim_);
      if (!scan.ok()) return Status::Corruption("expected data page");
      for (size_t i = 0; i < scan.count(); ++i) {
        if (metric.Distance(center, scan.vec(i)) <= radius) {
          out.push_back(scan.id(i));
        }
      }
      return Status::OK();
    }
    HT_ASSIGN_OR_RETURN(SRNode node, DecodeIndex(h.data(), h.size()));
    h.Release();
    for (const auto& e : node.entries) {
      const double mind =
          std::max(metric.MinDistToBox(center, e.rect),
                   metric.MinDistToSphere(center, e.center, e.radius));
      if (mind <= radius) {
        HT_RETURN_NOT_OK(rec(e.child));
      }
    }
    return Status::OK();
  };
  HT_RETURN_NOT_OK(rec(root_));
  return out;
}

Result<std::vector<std::pair<double, uint64_t>>> SrTree::SearchKnn(
    std::span<const float> center, size_t k, const DistanceMetric& metric) {
  std::vector<std::pair<double, uint64_t>> results;
  if (k == 0 || count_ == 0) return results;
  struct PqItem {
    double dist;
    PageId page;
    bool operator>(const PqItem& o) const { return dist > o.dist; }
  };
  std::priority_queue<PqItem, std::vector<PqItem>, std::greater<PqItem>> pq;
  pq.push(PqItem{0.0, root_});
  std::priority_queue<std::pair<double, uint64_t>> best;
  auto kth = [&]() {
    return best.size() < k ? std::numeric_limits<double>::max()
                           : best.top().first;
  };
  while (!pq.empty() && pq.top().dist <= kth()) {
    PqItem item = pq.top();
    pq.pop();
    HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(item.page));
    const NodeKind kind = PeekNodeKind(h.data());
    if (kind == NodeKind::kData) {
      DataPageScan scan(h.data(), h.size(), dim_);
      if (!scan.ok()) return Status::Corruption("expected data page");
      for (size_t i = 0; i < scan.count(); ++i) {
        const double d = metric.Distance(center, scan.vec(i));
        if (best.size() < k) {
          best.emplace(d, scan.id(i));
        } else if (d < best.top().first) {
          best.pop();
          best.emplace(d, scan.id(i));
        }
      }
      continue;
    }
    HT_ASSIGN_OR_RETURN(SRNode node, DecodeIndex(h.data(), h.size()));
    h.Release();
    for (const auto& e : node.entries) {
      const double d =
          std::max(metric.MinDistToBox(center, e.rect),
                   metric.MinDistToSphere(center, e.center, e.radius));
      if (d <= kth()) pq.push(PqItem{d, e.child});
    }
  }
  results.resize(best.size());
  for (size_t i = best.size(); i-- > 0;) {
    results[i] = best.top();
    best.pop();
  }
  return results;
}

// --- stats / invariants -----------------------------------------------------

Result<SrStats> SrTree::ComputeStats() {
  SrStats stats;
  stats.index_capacity = index_capacity_;
  double leaf_util = 0.0;
  HT_RETURN_NOT_OK(ComputeStatsRec(root_, &stats, &leaf_util));
  if (stats.data_nodes > 0) {
    stats.avg_leaf_utilization =
        leaf_util / static_cast<double>(stats.data_nodes);
  }
  if (stats.index_nodes > 0) {
    stats.avg_index_fanout /= static_cast<double>(stats.index_nodes);
  }
  return stats;
}

Status SrTree::ComputeStatsRec(PageId page, SrStats* stats,
                               double* leaf_util) {
  HT_ASSIGN_OR_RETURN(NodeKind kind, PeekKind(page));
  if (kind == NodeKind::kData) {
    HT_ASSIGN_OR_RETURN(DataNode node, ReadLeaf(page));
    ++stats->data_nodes;
    *leaf_util += static_cast<double>(node.entries.size()) /
                  static_cast<double>(leaf_capacity_);
    return Status::OK();
  }
  HT_ASSIGN_OR_RETURN(SRNode node, ReadIndex(page));
  ++stats->index_nodes;
  stats->avg_index_fanout += static_cast<double>(node.entries.size());
  for (const auto& e : node.entries) {
    HT_RETURN_NOT_OK(ComputeStatsRec(e.child, stats, leaf_util));
  }
  return Status::OK();
}

Status SrTree::CheckInvariants() {
  uint64_t entries_seen = 0;
  SREntry whole;
  whole.rect = Box::UnitCube(dim_);
  whole.center.assign(dim_, 0.5f);
  whole.radius = static_cast<float>(std::sqrt(static_cast<double>(dim_)));
  HT_RETURN_NOT_OK(
      CheckInvariantsRec(root_, whole, true, height_, &entries_seen));
  if (entries_seen != count_) {
    return Status::Corruption("SR entry count mismatch");
  }
  return Status::OK();
}

Status SrTree::CheckInvariantsRec(PageId page, const SREntry& region,
                                  bool is_root, uint32_t expected_level,
                                  uint64_t* entries_seen) {
  HT_ASSIGN_OR_RETURN(NodeKind kind, PeekKind(page));
  if (kind == NodeKind::kData) {
    if (expected_level != 0) {
      return Status::Corruption("SR leaf at nonzero level");
    }
    HT_ASSIGN_OR_RETURN(DataNode node, ReadLeaf(page));
    if (node.entries.size() > leaf_capacity_) {
      return Status::Corruption("SR leaf over capacity");
    }
    if (!is_root && node.entries.size() < leaf_min_) {
      return Status::Corruption("SR leaf under minimum fill");
    }
    for (const auto& e : node.entries) {
      if (!region.rect.ContainsPoint(e.vec)) {
        return Status::Corruption("SR entry outside rect");
      }
      if (Dist2(region.center, e.vec) > region.radius + 1e-4) {
        return Status::Corruption("SR entry outside sphere");
      }
    }
    *entries_seen += node.entries.size();
    return Status::OK();
  }
  HT_ASSIGN_OR_RETURN(SRNode node, ReadIndex(page));
  if (node.level != expected_level) {
    return Status::Corruption("SR level mismatch");
  }
  if (node.entries.size() > index_capacity_) {
    return Status::Corruption("SR index node over capacity");
  }
  for (const auto& e : node.entries) {
    if (!region.rect.ContainsBox(e.rect)) {
      return Status::Corruption("SR child rect outside parent rect");
    }
    HT_RETURN_NOT_OK(
        CheckInvariantsRec(e.child, e, false, expected_level - 1,
                           entries_seen));
  }
  return Status::OK();
}

}  // namespace ht
