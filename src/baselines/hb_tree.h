// Copyright 2026 The HybridTree Authors.
// hB-tree (Lomet & Salzberg, TODS 1990): the SP-based baseline of the
// paper. Nodes organize their space with intra-node kd-trees and split by
// *extracting* a corner region whose content fraction lies in [1/3, 2/3];
// the extracted corner is described by a chain of (dim, pos, side)
// constraints. The split is then POSTED: in every parent node, every
// kd-leaf referencing the split node is replaced by the constraint chain,
// whose non-extracted sides keep referencing the old node — so a node ends
// up referenced from several kd-leaves ("holey bricks", the storage
// redundancy Table 1 charges the hB-tree with). Posting can overflow a
// parent, which then splits by kd-subtree extraction and posts upward in
// turn.
//
// Faithful subset (see DESIGN.md §5): insert + box/range/k-NN search with
// clean kd navigation and per-query visited-page deduplication; the
// node-to-parents map is kept in memory. Deletion is not implemented (the
// original leaves consolidation across multi-parent references
// unspecified; the paper's experiments never delete, and exclude the
// hB-tree from its distance experiments).

#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "baselines/spatial_index.h"
#include "core/node.h"
#include "storage/paged_file.h"

namespace ht {

struct HbStats {
  uint64_t data_nodes = 0;
  uint64_t index_nodes = 0;
  double avg_data_utilization = 0.0;
  double min_data_utilization = 1.0;
  double avg_index_fanout = 0.0;  // distinct children per index node
  /// kd-leaves beyond one per distinct child — the redundant references.
  uint64_t redundant_refs = 0;
  uint64_t multi_step_splits = 0;  // splits needing > 1 constraint
  uint64_t multi_parent_nodes = 0;  // nodes referenced from >1 parent page
};

class HbTree final : public SpatialIndex {
 public:
  static Result<std::unique_ptr<HbTree>> Create(uint32_t dim, PagedFile* file);

  std::string Name() const override { return "hB-tree"; }
  Status Insert(std::span<const float> point, uint64_t id) override;
  Result<std::vector<uint64_t>> SearchBox(const Box& query) override;
  Result<std::vector<uint64_t>> SearchRange(
      std::span<const float> center, double radius,
      const DistanceMetric& metric) override;
  Result<std::vector<std::pair<double, uint64_t>>> SearchKnn(
      std::span<const float> center, size_t k,
      const DistanceMetric& metric) override;

  uint64_t size() const override { return count_; }
  BufferPool& pool() override { return *pool_; }

  Result<HbStats> ComputeStats();
  Status CheckInvariants();
  /// Verifies that the in-memory parent map matches the actual references
  /// found by a full traversal (test support).
  Status VerifyParentIndex();
  size_t data_node_capacity() const { return data_capacity_; }

 private:
  HbTree(uint32_t dim, PagedFile* file);

  Result<DataNode> ReadDataNode(PageId id);
  Status WriteDataNode(PageId id, const DataNode& node);
  Result<IndexNode> ReadIndexNode(PageId id);
  Status WriteIndexNode(PageId id, const IndexNode& node);
  Result<NodeKind> PeekKind(PageId id);

  /// One half-space constraint of an extracted corner.
  struct Constraint {
    uint32_t dim = 0;
    float pos = 0.0f;
    bool extracted_is_left = false;  // extracted side is {v <= pos}
  };
  struct SplitInfo {
    std::vector<Constraint> path;
    PageId new_page = kInvalidPageId;
  };

  /// The corner box described by a constraint chain within the data space.
  Box CornerBox(const std::vector<Constraint>& path) const;

  /// Splits an over-full data page by iterated-median corner extraction.
  Result<SplitInfo> SplitDataNode(PageId page, DataNode& node);
  /// Splits an over-full index page by kd-subtree extraction.
  Result<SplitInfo> SplitIndexNode(PageId page, IndexNode& node);

  /// Grafts `path` at every kd-leaf of `node` referencing `old_child`
  /// whose region intersects the corner; returns the number of grafts.
  size_t GraftChains(IndexNode* node, PageId old_child,
                     const SplitInfo& info);

  /// Posts a split of `child` to all its parents (grafting chains),
  /// splitting parents that overflow and posting those splits recursively.
  /// Grows a new root when `child` is the root.
  Status PostSplit(PageId child, SplitInfo info);

  static std::unique_ptr<KdNode> BuildChain(
      const std::vector<Constraint>& path, PageId old_child,
      PageId new_child, size_t next = 0);

  /// BuildChain restricted to the grafting leaf's region: constraints that
  /// do not cut the region produce no kd node (avoiding dead references
  /// with empty regions).
  static std::unique_ptr<KdNode> BuildChainClipped(
      const std::vector<Constraint>& path, PageId old_child,
      PageId new_child, const Box& region, size_t next = 0);

  /// Parent-map maintenance: recompute the parent sets of every child of
  /// `page` from its current kd-leaves.
  Status ReindexParents(PageId page, const IndexNode& node);

  Status ComputeStatsRec(PageId page, HbStats* stats, double* util_sum,
                         std::unordered_set<PageId>* seen);

  uint32_t dim_;
  size_t page_size_;
  std::unique_ptr<BufferPool> pool_;
  size_t data_capacity_ = 0;
  PageId root_ = kInvalidPageId;
  uint64_t count_ = 0;
  uint64_t multi_step_splits_ = 0;
  /// child page -> parent index pages referencing it (deduplicated).
  std::unordered_map<PageId, std::vector<PageId>> parents_;
};

}  // namespace ht
