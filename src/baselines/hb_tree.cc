#include "baselines/hb_tree.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>
#include <queue>

namespace ht {

HbTree::HbTree(uint32_t dim, PagedFile* file)
    : dim_(dim),
      page_size_(file->page_size()),
      pool_(std::make_unique<BufferPool>(file, 0)) {
  data_capacity_ = DataNode::Capacity(dim, page_size_);
}

Result<std::unique_ptr<HbTree>> HbTree::Create(uint32_t dim, PagedFile* file) {
  if (file->page_count() != 0) {
    return Status::InvalidArgument("HbTree::Create requires an empty file");
  }
  if (DataNode::Capacity(dim, file->page_size()) < 4) {
    return Status::InvalidArgument("page too small for an hB data node");
  }
  auto tree = std::unique_ptr<HbTree>(new HbTree(dim, file));
  HT_ASSIGN_OR_RETURN(PageHandle h, tree->pool_->New());
  tree->root_ = h.id();
  DataNode empty;
  empty.Serialize(h.data(), h.size(), dim);
  h.MarkDirty();
  return tree;
}

// --- node I/O ---------------------------------------------------------------

Result<NodeKind> HbTree::PeekKind(PageId id) {
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  return PeekNodeKind(h.data());
}

Result<DataNode> HbTree::ReadDataNode(PageId id) {
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  return DataNode::Deserialize(h.data(), h.size(), dim_);
}

Status HbTree::WriteDataNode(PageId id, const DataNode& node) {
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  node.Serialize(h.data(), h.size(), dim_);
  h.MarkDirty();
  return Status::OK();
}

Result<IndexNode> HbTree::ReadIndexNode(PageId id) {
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  return IndexNode::Deserialize(h.data(), h.size(), false, 0, dim_);
}

Status HbTree::WriteIndexNode(PageId id, const IndexNode& node) {
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(id));
  node.Serialize(h.data(), h.size(), false, 0);
  h.MarkDirty();
  return Status::OK();
}

// --- split posting ----------------------------------------------------------

std::unique_ptr<KdNode> HbTree::BuildChain(const std::vector<Constraint>& path,
                                           PageId old_child, PageId new_child,
                                           size_t next) {
  if (next == path.size()) {
    return KdNode::MakeLeaf(new_child);
  }
  const Constraint& c = path[next];
  auto deeper = BuildChain(path, old_child, new_child, next + 1);
  auto keep = KdNode::MakeLeaf(old_child);
  if (c.extracted_is_left) {
    return KdNode::MakeInternal(c.dim, c.pos, c.pos, std::move(deeper),
                                std::move(keep));
  }
  return KdNode::MakeInternal(c.dim, c.pos, c.pos, std::move(keep),
                              std::move(deeper));
}

std::unique_ptr<KdNode> HbTree::BuildChainClipped(
    const std::vector<Constraint>& path, PageId old_child, PageId new_child,
    const Box& region, size_t next) {
  if (next == path.size()) {
    return KdNode::MakeLeaf(new_child);
  }
  const Constraint& c = path[next];
  if (c.extracted_is_left) {
    if (region.hi(c.dim) <= c.pos) {
      // The whole leaf region lies on the extracted side: the keep-side
      // test is redundant here; omitting it avoids creating a kd-leaf with
      // an empty region (a dead reference that would pollute later
      // subtree-extraction splits).
      return BuildChainClipped(path, old_child, new_child, region, next + 1);
    }
    if (region.lo(c.dim) > c.pos) {
      // Entirely on the keep side: nothing of this corner is reachable
      // through this leaf (can happen with boundary-touching regions).
      return KdNode::MakeLeaf(old_child);
    }
    Box deeper_region = region;
    deeper_region.set_hi(c.dim, c.pos);
    auto deeper =
        BuildChainClipped(path, old_child, new_child, deeper_region, next + 1);
    return KdNode::MakeInternal(c.dim, c.pos, c.pos, std::move(deeper),
                                KdNode::MakeLeaf(old_child));
  }
  if (region.lo(c.dim) > c.pos) {
    // Entirely on the extracted side (v > pos holds for every point; the
    // boundary v == pos belongs to the keep side, so strict comparison).
    return BuildChainClipped(path, old_child, new_child, region, next + 1);
  }
  if (region.hi(c.dim) <= c.pos) {
    return KdNode::MakeLeaf(old_child);
  }
  Box deeper_region = region;
  deeper_region.set_lo(c.dim, c.pos);
  auto deeper =
      BuildChainClipped(path, old_child, new_child, deeper_region, next + 1);
  return KdNode::MakeInternal(c.dim, c.pos, c.pos,
                              KdNode::MakeLeaf(old_child), std::move(deeper));
}

Box HbTree::CornerBox(const std::vector<Constraint>& path) const {
  Box corner = Box::UnitCube(dim_);
  for (const Constraint& c : path) {
    if (c.extracted_is_left) {
      if (c.pos < corner.hi(c.dim)) corner.set_hi(c.dim, c.pos);
    } else {
      if (c.pos > corner.lo(c.dim)) corner.set_lo(c.dim, c.pos);
    }
  }
  return corner;
}

size_t HbTree::GraftChains(IndexNode* node, PageId old_child,
                           const SplitInfo& info) {
  const Box corner = CornerBox(info.path);
  // Leaf regions computed from the unit cube over-approximate the true
  // regions (ancestor constraints live in higher tree levels), so the
  // intersection test is conservative: we may graft where unnecessary,
  // never skip where necessary.
  std::vector<ChildRef> kids;
  node->CollectChildren(Box::UnitCube(dim_), &kids);
  size_t grafts = 0;
  for (const ChildRef& kid : kids) {
    if (kid.leaf->child != old_child) continue;
    if (!kid.kd_br.Intersects(corner)) continue;
    auto chain = BuildChainClipped(info.path, old_child, info.new_page,
                                   kid.kd_br);
    if (chain->IsLeaf() && chain->child == old_child) continue;  // no cut
    KdNode* leaf = kid.leaf;
    if (chain->IsLeaf()) {
      // The whole leaf region lies inside the corner: the reference simply
      // moves to the new page.
      leaf->child = chain->child;
    } else {
      leaf->split_dim = chain->split_dim;
      leaf->lsp = chain->lsp;
      leaf->rsp = chain->rsp;
      leaf->left = std::move(chain->left);
      leaf->right = std::move(chain->right);
      leaf->child = kInvalidPageId;
    }
    ++grafts;
  }
  return grafts;
}

namespace {
std::unordered_set<PageId> DistinctChildren(const IndexNode& node,
                                            uint32_t dim) {
  std::vector<ChildRef> kids;
  node.CollectChildren(Box::UnitCube(dim), &kids);
  std::unordered_set<PageId> out;
  for (const auto& kid : kids) out.insert(kid.leaf->child);
  return out;
}

void AddParent(std::unordered_map<PageId, std::vector<PageId>>* parents,
               PageId child, PageId parent) {
  auto& v = (*parents)[child];
  if (std::find(v.begin(), v.end(), parent) == v.end()) v.push_back(parent);
}

void RemoveParent(std::unordered_map<PageId, std::vector<PageId>>* parents,
                  PageId child, PageId parent) {
  auto it = parents->find(child);
  if (it == parents->end()) return;
  auto& v = it->second;
  v.erase(std::remove(v.begin(), v.end(), parent), v.end());
}
}  // namespace

Status HbTree::ReindexParents(PageId page, const IndexNode& node) {
  for (PageId child : DistinctChildren(node, dim_)) {
    AddParent(&parents_, child, page);
  }
  return Status::OK();
}

Status HbTree::PostSplit(PageId child, SplitInfo info) {
  if (child == root_) {
    IndexNode new_root;
    new_root.level = 1;
    new_root.root = BuildChain(info.path, child, info.new_page);
    HT_ASSIGN_OR_RETURN(PageHandle h, pool_->New());
    const PageId new_root_page = h.id();
    h.Release();
    HT_RETURN_NOT_OK(WriteIndexNode(new_root_page, new_root));
    root_ = new_root_page;
    AddParent(&parents_, child, new_root_page);
    AddParent(&parents_, info.new_page, new_root_page);
    return Status::OK();
  }

  const std::vector<PageId> parent_list = parents_[child];
  HT_CHECK(!parent_list.empty());
  size_t total_grafts = 0;
  for (PageId p : parent_list) {
    HT_ASSIGN_OR_RETURN(IndexNode node, ReadIndexNode(p));
    const size_t grafts = GraftChains(&node, child, info);
    if (grafts == 0) continue;  // this parent's regions avoid the corner
    total_grafts += grafts;
    AddParent(&parents_, info.new_page, p);
    if (!DistinctChildren(node, dim_).count(child)) {
      // Every reference moved wholesale into the corner side.
      RemoveParent(&parents_, child, p);
    }
    if (node.SerializedSize(false) > page_size_) {
      HT_ASSIGN_OR_RETURN(SplitInfo pinfo, SplitIndexNode(p, node));
      HT_RETURN_NOT_OK(PostSplit(p, std::move(pinfo)));
    } else {
      HT_RETURN_NOT_OK(WriteIndexNode(p, node));
    }
  }
  if (total_grafts == 0) {
    // A stale subtree (accumulated dead references) can yield a corner no
    // live route intersects. Fall back to grafting the full chain at every
    // reference in the first parent so the new page stays reachable.
    const PageId p = parent_list.front();
    HT_ASSIGN_OR_RETURN(IndexNode node, ReadIndexNode(p));
    std::vector<ChildRef> kids;
    node.CollectChildren(Box::UnitCube(dim_), &kids);
    for (const ChildRef& kid : kids) {
      if (kid.leaf->child != child) continue;
      auto chain = BuildChain(info.path, child, info.new_page);
      KdNode* leaf = kid.leaf;
      leaf->split_dim = chain->split_dim;
      leaf->lsp = chain->lsp;
      leaf->rsp = chain->rsp;
      leaf->left = std::move(chain->left);
      leaf->right = std::move(chain->right);
      leaf->child = kInvalidPageId;
      ++total_grafts;
      break;
    }
    HT_CHECK(total_grafts >= 1);
    AddParent(&parents_, info.new_page, p);
    if (node.SerializedSize(false) > page_size_) {
      HT_ASSIGN_OR_RETURN(SplitInfo pinfo, SplitIndexNode(p, node));
      HT_RETURN_NOT_OK(PostSplit(p, std::move(pinfo)));
    } else {
      HT_RETURN_NOT_OK(WriteIndexNode(p, node));
    }
  }
  return Status::OK();
}

// --- insertion --------------------------------------------------------------

Status HbTree::Insert(std::span<const float> point, uint64_t id) {
  if (point.size() != dim_) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  for (float v : point) {
    if (!(v >= 0.0f && v <= 1.0f)) {
      return Status::InvalidArgument("point outside [0,1]^dim");
    }
  }
  // Clean kd navigation to the unique data page for this point.
  PageId page = root_;
  for (;;) {
    HT_ASSIGN_OR_RETURN(NodeKind kind, PeekKind(page));
    if (kind == NodeKind::kData) break;
    HT_ASSIGN_OR_RETURN(IndexNode node, ReadIndexNode(page));
    const KdNode* n = node.root.get();
    while (!n->IsLeaf()) {
      n = point[n->split_dim] <= n->lsp ? n->left.get() : n->right.get();
    }
    page = n->child;
  }
  HT_ASSIGN_OR_RETURN(DataNode node, ReadDataNode(page));
  node.entries.push_back(
      DataEntry{id, std::vector<float>(point.begin(), point.end())});
  if (node.entries.size() <= data_capacity_) {
    HT_RETURN_NOT_OK(WriteDataNode(page, node));
  } else {
    HT_ASSIGN_OR_RETURN(SplitInfo info, SplitDataNode(page, node));
    HT_RETURN_NOT_OK(PostSplit(page, std::move(info)));
  }
  ++count_;
  return Status::OK();
}

Result<HbTree::SplitInfo> HbTree::SplitDataNode(PageId page, DataNode& node) {
  // Iterated-median corner extraction: refine the candidate set S by
  // median splits (descending into the larger half) until its fraction is
  // within [1/3, 2/3] of the node.
  const size_t total = node.entries.size();
  std::vector<uint32_t> member(total);
  std::iota(member.begin(), member.end(), 0u);
  std::vector<Constraint> path;
  std::vector<float> vals;
  while (member.size() * 3 > total * 2) {
    Box sbr = Box::Empty(dim_);
    for (uint32_t i : member) sbr.ExtendToInclude(node.entries[i].vec);
    std::vector<uint32_t> dims(dim_);
    std::iota(dims.begin(), dims.end(), 0u);
    std::stable_sort(dims.begin(), dims.end(), [&](uint32_t a, uint32_t b) {
      return sbr.Extent(a) > sbr.Extent(b);
    });
    bool progressed = false;
    for (uint32_t d : dims) {
      vals.clear();
      for (uint32_t i : member) vals.push_back(node.entries[i].vec[d]);
      std::sort(vals.begin(), vals.end());
      const float pos = vals[vals.size() / 2 - 1];
      if (pos >= vals.back()) continue;  // all equal along d
      std::vector<uint32_t> left, right;
      for (uint32_t i : member) {
        (node.entries[i].vec[d] <= pos ? left : right).push_back(i);
      }
      const bool take_left = left.size() >= right.size();
      path.push_back(Constraint{d, pos, take_left});
      member = take_left ? std::move(left) : std::move(right);
      progressed = true;
      break;
    }
    if (!progressed) {
      return Status::Internal(
          "hB-tree cannot extract a corner from identical points");
    }
  }
  if (path.size() > 1) ++multi_step_splits_;

  std::vector<bool> extracted(total, false);
  for (uint32_t i : member) extracted[i] = true;
  DataNode keep, out;
  for (size_t i = 0; i < total; ++i) {
    (extracted[i] ? out : keep).entries.push_back(std::move(node.entries[i]));
  }
  HT_RETURN_NOT_OK(WriteDataNode(page, keep));
  HT_ASSIGN_OR_RETURN(PageHandle rh, pool_->New());
  out.Serialize(rh.data(), rh.size(), dim_);
  rh.MarkDirty();
  SplitInfo info;
  info.path = std::move(path);
  info.new_page = rh.id();
  return info;
}

Result<HbTree::SplitInfo> HbTree::SplitIndexNode(PageId page,
                                                 IndexNode& node) {
  // Extract the kd-subtree whose leaf fraction lies in [1/3, 2/3],
  // recording the walk as the constraint path.
  std::function<size_t(const KdNode*)> leaf_count =
      [&](const KdNode* m) -> size_t {
    if (m->IsLeaf()) return 1;
    return leaf_count(m->left.get()) + leaf_count(m->right.get());
  };
  const size_t total = leaf_count(node.root.get());
  HT_CHECK(total >= 2);

  const std::unordered_set<PageId> old_children = DistinctChildren(node, dim_);

  std::vector<Constraint> path;
  KdNode* parent = nullptr;
  bool parent_took_left = false;
  KdNode* cur = node.root.get();
  size_t cur_leaves = total;
  while (cur_leaves * 3 > total * 2) {
    HT_CHECK(!cur->IsLeaf());
    const size_t left_leaves = leaf_count(cur->left.get());
    const size_t right_leaves = cur_leaves - left_leaves;
    const bool take_left = left_leaves >= right_leaves;
    path.push_back(Constraint{cur->split_dim, cur->lsp, take_left});
    parent = cur;
    parent_took_left = take_left;
    cur = take_left ? cur->left.get() : cur->right.get();
    cur_leaves = take_left ? left_leaves : right_leaves;
  }
  if (path.size() > 1) ++multi_step_splits_;
  HT_CHECK(parent != nullptr);

  // Detach the extracted subtree; the sibling takes the parent's place.
  std::unique_ptr<KdNode> sub =
      parent_took_left ? std::move(parent->left) : std::move(parent->right);
  std::unique_ptr<KdNode> sibling =
      parent_took_left ? std::move(parent->right) : std::move(parent->left);
  parent->split_dim = sibling->split_dim;
  parent->lsp = sibling->lsp;
  parent->rsp = sibling->rsp;
  parent->child = sibling->child;
  parent->els = std::move(sibling->els);
  parent->left = std::move(sibling->left);
  parent->right = std::move(sibling->right);

  IndexNode out;
  out.level = node.level;
  out.root = std::move(sub);
  HT_RETURN_NOT_OK(WriteIndexNode(page, node));
  HT_ASSIGN_OR_RETURN(PageHandle rh, pool_->New());
  const PageId new_page = rh.id();
  rh.Release();
  HT_RETURN_NOT_OK(WriteIndexNode(new_page, out));

  // Parent-map maintenance: children now referenced from the new page gain
  // it; children no longer referenced from `page` lose it.
  const std::unordered_set<PageId> keep_children =
      DistinctChildren(node, dim_);
  for (PageId c : DistinctChildren(out, dim_)) {
    AddParent(&parents_, c, new_page);
  }
  for (PageId c : old_children) {
    if (!keep_children.count(c)) RemoveParent(&parents_, c, page);
  }

  SplitInfo info;
  info.path = std::move(path);
  info.new_page = new_page;
  return info;
}

// --- search -----------------------------------------------------------------

Result<std::vector<uint64_t>> HbTree::SearchBox(const Box& query) {
  std::vector<uint64_t> out;
  std::unordered_set<PageId> visited;
  std::function<Status(PageId)> rec = [&](PageId page) -> Status {
    if (!visited.insert(page).second) return Status::OK();
    HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(page));
    const NodeKind kind = PeekNodeKind(h.data());
    if (kind == NodeKind::kData) {
      DataPageScan scan(h.data(), h.size(), dim_);
      if (!scan.ok()) return Status::Corruption("expected data page");
      for (size_t i = 0; i < scan.count(); ++i) {
        if (query.ContainsPoint(scan.vec(i))) out.push_back(scan.id(i));
      }
      return Status::OK();
    }
    HT_ASSIGN_OR_RETURN(IndexNode node, IndexNode::Deserialize(
                                            h.data(), h.size(), false, 0, dim_));
    h.Release();
    std::function<Status(const KdNode*)> walk =
        [&](const KdNode* n) -> Status {
      if (n->IsLeaf()) return rec(n->child);
      if (query.lo(n->split_dim) <= n->lsp) {
        HT_RETURN_NOT_OK(walk(n->left.get()));
      }
      if (query.hi(n->split_dim) > n->lsp) {
        HT_RETURN_NOT_OK(walk(n->right.get()));
      }
      return Status::OK();
    };
    return walk(node.root.get());
  };
  HT_RETURN_NOT_OK(rec(root_));
  return out;
}

Result<std::vector<uint64_t>> HbTree::SearchRange(
    std::span<const float> center, double radius,
    const DistanceMetric& metric) {
  std::vector<uint64_t> out;
  std::unordered_set<PageId> visited;
  std::function<Status(PageId, const Box&)> rec =
      [&](PageId page, const Box& br) -> Status {
    if (metric.MinDistToBox(center, br) > radius) return Status::OK();
    if (!visited.insert(page).second) return Status::OK();
    HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(page));
    const NodeKind kind = PeekNodeKind(h.data());
    if (kind == NodeKind::kData) {
      DataPageScan scan(h.data(), h.size(), dim_);
      if (!scan.ok()) return Status::Corruption("expected data page");
      for (size_t i = 0; i < scan.count(); ++i) {
        if (metric.Distance(center, scan.vec(i)) <= radius) {
          out.push_back(scan.id(i));
        }
      }
      return Status::OK();
    }
    HT_ASSIGN_OR_RETURN(IndexNode node, IndexNode::Deserialize(
                                            h.data(), h.size(), false, 0, dim_));
    h.Release();
    std::function<Status(const KdNode*, const Box&)> walk =
        [&](const KdNode* n, const Box& nbr) -> Status {
      if (n->IsLeaf()) return rec(n->child, nbr);
      HT_RETURN_NOT_OK(walk(n->left.get(), KdLeftBr(nbr, *n)));
      return walk(n->right.get(), KdRightBr(nbr, *n));
    };
    return walk(node.root.get(), br);
  };
  HT_RETURN_NOT_OK(rec(root_, Box::UnitCube(dim_)));
  return out;
}

Result<std::vector<std::pair<double, uint64_t>>> HbTree::SearchKnn(
    std::span<const float> center, size_t k, const DistanceMetric& metric) {
  std::vector<std::pair<double, uint64_t>> results;
  if (k == 0 || count_ == 0) return results;
  struct PqItem {
    double dist;
    PageId page;
    Box br;
    bool operator>(const PqItem& o) const { return dist > o.dist; }
  };
  std::priority_queue<PqItem, std::vector<PqItem>, std::greater<PqItem>> pq;
  pq.push(PqItem{0.0, root_, Box::UnitCube(dim_)});
  std::priority_queue<std::pair<double, uint64_t>> best;
  std::unordered_set<PageId> visited;
  auto kth = [&]() {
    return best.size() < k ? std::numeric_limits<double>::max()
                           : best.top().first;
  };
  while (!pq.empty() && pq.top().dist <= kth()) {
    PqItem item = pq.top();
    pq.pop();
    if (!visited.insert(item.page).second) continue;
    HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(item.page));
    const NodeKind kind = PeekNodeKind(h.data());
    if (kind == NodeKind::kData) {
      DataPageScan scan(h.data(), h.size(), dim_);
      if (!scan.ok()) return Status::Corruption("expected data page");
      for (size_t i = 0; i < scan.count(); ++i) {
        const double d = metric.Distance(center, scan.vec(i));
        if (best.size() < k) {
          best.emplace(d, scan.id(i));
        } else if (d < best.top().first) {
          best.pop();
          best.emplace(d, scan.id(i));
        }
      }
      continue;
    }
    HT_ASSIGN_OR_RETURN(IndexNode node, IndexNode::Deserialize(
                                            h.data(), h.size(), false, 0, dim_));
    h.Release();
    std::function<void(const KdNode*, const Box&)> walk =
        [&](const KdNode* n, const Box& nbr) {
          if (n->IsLeaf()) {
            const double d = metric.MinDistToBox(center, nbr);
            if (d <= kth()) pq.push(PqItem{d, n->child, nbr});
            return;
          }
          walk(n->left.get(), KdLeftBr(nbr, *n));
          walk(n->right.get(), KdRightBr(nbr, *n));
        };
    walk(node.root.get(), item.br);
  }
  results.resize(best.size());
  for (size_t i = best.size(); i-- > 0;) {
    results[i] = best.top();
    best.pop();
  }
  return results;
}

// --- stats / invariants -----------------------------------------------------

Result<HbStats> HbTree::ComputeStats() {
  HbStats stats;
  stats.multi_step_splits = multi_step_splits_;
  double util_sum = 0.0;
  std::unordered_set<PageId> seen;
  HT_RETURN_NOT_OK(ComputeStatsRec(root_, &stats, &util_sum, &seen));
  if (stats.data_nodes > 0) {
    stats.avg_data_utilization =
        util_sum / static_cast<double>(stats.data_nodes);
  }
  if (stats.index_nodes > 0) {
    stats.avg_index_fanout /= static_cast<double>(stats.index_nodes);
  }
  for (const auto& [child, ps] : parents_) {
    if (ps.size() > 1) ++stats.multi_parent_nodes;
  }
  return stats;
}

Status HbTree::ComputeStatsRec(PageId page, HbStats* stats, double* util_sum,
                               std::unordered_set<PageId>* seen) {
  if (!seen->insert(page).second) return Status::OK();
  HT_ASSIGN_OR_RETURN(NodeKind kind, PeekKind(page));
  if (kind == NodeKind::kData) {
    HT_ASSIGN_OR_RETURN(DataNode node, ReadDataNode(page));
    ++stats->data_nodes;
    const double util = static_cast<double>(node.entries.size()) /
                        static_cast<double>(data_capacity_);
    *util_sum += util;
    if (page != root_ && util < stats->min_data_utilization) {
      stats->min_data_utilization = util;
    }
    return Status::OK();
  }
  HT_ASSIGN_OR_RETURN(IndexNode node, ReadIndexNode(page));
  ++stats->index_nodes;
  std::vector<ChildRef> kids;
  node.CollectChildren(Box::UnitCube(dim_), &kids);
  std::unordered_set<PageId> distinct;
  for (const auto& kid : kids) distinct.insert(kid.leaf->child);
  stats->avg_index_fanout += static_cast<double>(distinct.size());
  stats->redundant_refs += kids.size() - distinct.size();
  for (PageId child : distinct) {
    HT_RETURN_NOT_OK(ComputeStatsRec(child, stats, util_sum, seen));
  }
  return Status::OK();
}

Status HbTree::VerifyParentIndex() {
  std::unordered_map<PageId, std::vector<PageId>> actual;
  std::unordered_set<PageId> seen;
  std::function<Status(PageId)> rec = [&](PageId page) -> Status {
    if (!seen.insert(page).second) return Status::OK();
    HT_ASSIGN_OR_RETURN(NodeKind kind, PeekKind(page));
    if (kind == NodeKind::kData) return Status::OK();
    HT_ASSIGN_OR_RETURN(IndexNode node, ReadIndexNode(page));
    for (PageId c : DistinctChildren(node, dim_)) {
      AddParent(&actual, c, page);
      HT_RETURN_NOT_OK(rec(c));
    }
    return Status::OK();
  };
  HT_RETURN_NOT_OK(rec(root_));
  for (auto& [c, ps] : actual) {
    for (PageId p : ps) {
      const auto it = parents_.find(c);
      if (it == parents_.end() ||
          std::find(it->second.begin(), it->second.end(), p) ==
              it->second.end()) {
        return Status::Corruption("parents_ missing " + std::to_string(p) +
                                  " as parent of " + std::to_string(c));
      }
    }
  }
  return Status::OK();
}

Status HbTree::CheckInvariants() {
  // 1. Every stored entry must be reachable by clean navigation from the
  //    root (split posting preserved routing), and the total must match.
  uint64_t entries_seen = 0;
  std::unordered_set<PageId> seen;
  std::vector<std::pair<PageId, DataEntry>> all;
  std::function<Status(PageId)> collect = [&](PageId page) -> Status {
    if (!seen.insert(page).second) return Status::OK();
    HT_ASSIGN_OR_RETURN(NodeKind kind, PeekKind(page));
    if (kind == NodeKind::kData) {
      HT_ASSIGN_OR_RETURN(DataNode node, ReadDataNode(page));
      if (node.entries.size() > data_capacity_) {
        return Status::Corruption("hB data node over capacity");
      }
      entries_seen += node.entries.size();
      for (const auto& e : node.entries) all.emplace_back(page, e);
      return Status::OK();
    }
    HT_ASSIGN_OR_RETURN(IndexNode node, ReadIndexNode(page));
    if (node.SerializedSize(false) > page_size_) {
      return Status::Corruption("hB index node over page size");
    }
    std::function<Status(const KdNode*)> walk =
        [&](const KdNode* n) -> Status {
      if (n->IsLeaf()) return collect(n->child);
      if (n->lsp != n->rsp) {
        return Status::Corruption("hB split must be clean");
      }
      HT_RETURN_NOT_OK(walk(n->left.get()));
      return walk(n->right.get());
    };
    return walk(node.root.get());
  };
  HT_RETURN_NOT_OK(collect(root_));
  if (entries_seen != count_) {
    return Status::Corruption("hB entry count mismatch");
  }
  for (const auto& [home, e] : all) {
    PageId page = root_;
    for (;;) {
      HT_ASSIGN_OR_RETURN(NodeKind kind, PeekKind(page));
      if (kind == NodeKind::kData) break;
      HT_ASSIGN_OR_RETURN(IndexNode node, ReadIndexNode(page));
      const KdNode* n = node.root.get();
      while (!n->IsLeaf()) {
        n = e.vec[n->split_dim] <= n->lsp ? n->left.get() : n->right.get();
      }
      page = n->child;
    }
    if (page != home) {
      return Status::Corruption("hB entry routed to the wrong data page");
    }
  }
  return Status::OK();
}

}  // namespace ht
