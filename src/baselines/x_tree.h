// Copyright 2026 The HybridTree Authors.
// X-tree (Berchtold, Keim, Kriegel, VLDB 1996): the other DP-based
// high-dimensional structure the paper's classification discusses (§2).
// An R-tree variant that refuses to create badly-overlapping directory
// nodes: when neither the topological (R*) split nor an overlap-free split
// is acceptable, the node becomes a SUPERNODE — it grows by another page
// instead of splitting. At high dimensionality supernodes proliferate and
// the X-tree gracefully degrades toward a sequential scan (each supernode
// read costs its chain length in accesses), which is exactly the behaviour
// its authors report and a nice measured contrast to the hybrid tree.
//
// Nodes are chains of fixed-size pages: {kind, level, count, next} per
// page. Reading a node fetches the whole chain (one logical access per
// page). Deletion is plain entry removal (no rebalancing), matching the
// evaluation needs; the original paper treats deletes as future work too.

#pragma once

#include <memory>

#include "baselines/spatial_index.h"
#include "core/node.h"
#include "storage/paged_file.h"

namespace ht {

struct XTreeStats {
  uint64_t leaf_nodes = 0;
  uint64_t dir_nodes = 0;
  uint64_t supernodes = 0;      // nodes with chain length > 1
  uint64_t max_chain_pages = 1;
  uint64_t total_pages = 0;
  double avg_dir_fanout = 0.0;
};

class XTree final : public SpatialIndex {
 public:
  static Result<std::unique_ptr<XTree>> Create(uint32_t dim, PagedFile* file);

  std::string Name() const override { return "X-tree"; }
  Status Insert(std::span<const float> point, uint64_t id) override;
  Status Delete(std::span<const float> point, uint64_t id) override;
  Result<std::vector<uint64_t>> SearchBox(const Box& query) override;
  Result<std::vector<uint64_t>> SearchRange(
      std::span<const float> center, double radius,
      const DistanceMetric& metric) override;
  Result<std::vector<std::pair<double, uint64_t>>> SearchKnn(
      std::span<const float> center, size_t k,
      const DistanceMetric& metric) override;

  uint64_t size() const override { return count_; }
  BufferPool& pool() override { return *pool_; }

  Result<XTreeStats> ComputeStats();
  Status CheckInvariants();

  size_t leaf_entries_per_page() const { return leaf_per_page_; }
  size_t dir_entries_per_page() const { return dir_per_page_; }

 private:
  /// In-memory node: either leaf entries (points) or directory entries.
  struct DirEntry {
    Box br;
    PageId child = kInvalidPageId;
  };
  struct Node {
    uint8_t level = 0;  // 0 = leaf
    std::vector<DataEntry> points;   // level == 0
    std::vector<DirEntry> children;  // level > 0
    size_t entry_count() const {
      return level == 0 ? points.size() : children.size();
    }
  };

  XTree(uint32_t dim, PagedFile* file);

  /// Max pages a node may grow to before a split is forced regardless of
  /// overlap (bounds worst-case chain reads).
  static constexpr size_t kMaxChainPages = 16;
  /// Directory splits whose halves overlap more than this fraction of
  /// their union volume become supernodes instead (X-tree's MAX_OVERLAP).
  static constexpr double kMaxOverlap = 0.2;

  Result<Node> ReadNode(PageId first);
  /// Writes `node` into the chain starting at `first`, growing or
  /// shrinking the chain as needed.
  Status WriteNode(PageId first, const Node& node);
  Status FreeChain(PageId first);

  size_t PagesNeeded(const Node& node) const;

  struct SplitOut {
    bool split = false;
    Box left_br;
    Box right_br;
    PageId right_page = kInvalidPageId;
  };
  Result<SplitOut> InsertRec(PageId page, std::span<const float> point,
                             uint64_t id);
  /// Attempts a split; returns split=false when the node should become (or
  /// stay) a supernode.
  Result<SplitOut> MaybeSplit(PageId page, Node& node);

  Box NodeBr(const Node& node) const;
  size_t ChooseSubtree(const Node& node, std::span<const float> point) const;

  Status ComputeStatsRec(PageId page, XTreeStats* stats, double* fanout_sum);
  Status CheckInvariantsRec(PageId page, const Box& br, bool is_root,
                            uint64_t* seen);

  uint32_t dim_;
  size_t page_size_;
  std::unique_ptr<BufferPool> pool_;
  size_t leaf_per_page_ = 0;
  size_t dir_per_page_ = 0;
  PageId root_ = kInvalidPageId;
  uint64_t count_ = 0;
};

/// Serialized X-tree page kind byte.
inline constexpr uint8_t kXNodeKind = 6;

}  // namespace ht
