#include "baselines/seqscan.h"

#include <algorithm>

namespace ht {

SeqScan::SeqScan(uint32_t dim, PagedFile* file)
    : dim_(dim), pool_(std::make_unique<BufferPool>(file, 0)) {
  capacity_per_page_ = DataNode::Capacity(dim, file->page_size());
}

Result<std::unique_ptr<SeqScan>> SeqScan::Create(uint32_t dim,
                                                 PagedFile* file) {
  if (file->page_count() != 0) {
    return Status::InvalidArgument("SeqScan::Create requires an empty file");
  }
  if (DataNode::Capacity(dim, file->page_size()) == 0) {
    return Status::InvalidArgument("page too small for one entry");
  }
  return std::unique_ptr<SeqScan>(new SeqScan(dim, file));
}

Status SeqScan::Insert(std::span<const float> point, uint64_t id) {
  if (point.size() != dim_) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  if (pages_.empty() || last_page_count_ == capacity_per_page_) {
    HT_ASSIGN_OR_RETURN(PageHandle h, pool_->New());
    DataNode fresh;
    fresh.Serialize(h.data(), h.size(), dim_);
    h.MarkDirty();
    pages_.push_back(h.id());
    last_page_count_ = 0;
  }
  HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(pages_.back()));
  HT_ASSIGN_OR_RETURN(DataNode node,
                      DataNode::Deserialize(h.data(), h.size(), dim_));
  node.entries.push_back(
      DataEntry{id, std::vector<float>(point.begin(), point.end())});
  node.Serialize(h.data(), h.size(), dim_);
  h.MarkDirty();
  last_page_count_ = node.entries.size();
  ++count_;
  return Status::OK();
}

Status SeqScan::Delete(std::span<const float> point, uint64_t id) {
  // Scan for the entry; replace it with the globally last entry to keep
  // pages densely packed.
  for (size_t p = 0; p < pages_.size(); ++p) {
    HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(pages_[p]));
    HT_ASSIGN_OR_RETURN(DataNode node,
                        DataNode::Deserialize(h.data(), h.size(), dim_));
    for (size_t i = 0; i < node.entries.size(); ++i) {
      const auto& e = node.entries[i];
      if (e.id != id || !std::equal(e.vec.begin(), e.vec.end(), point.begin(),
                                    point.end())) {
        continue;
      }
      // Fetch the last entry from the last page.
      HT_ASSIGN_OR_RETURN(PageHandle lh, pool_->Fetch(pages_.back()));
      HT_ASSIGN_OR_RETURN(DataNode last,
                          DataNode::Deserialize(lh.data(), lh.size(), dim_));
      if (pages_[p] == pages_.back()) {
        last.entries.erase(last.entries.begin() + static_cast<long>(i));
        last.Serialize(lh.data(), lh.size(), dim_);
        lh.MarkDirty();
      } else {
        node.entries[i] = std::move(last.entries.back());
        last.entries.pop_back();
        node.Serialize(h.data(), h.size(), dim_);
        h.MarkDirty();
        last.Serialize(lh.data(), lh.size(), dim_);
        lh.MarkDirty();
      }
      last_page_count_ = last.entries.size();
      if (last.entries.empty() && pages_.size() > 1) {
        const PageId dead = pages_.back();
        pages_.pop_back();
        // Both handles may pin the dead page (they alias when the entry
        // was found in the last page); release before freeing.
        lh.Release();
        h.Release();
        HT_RETURN_NOT_OK(pool_->Free(dead));
        last_page_count_ = capacity_per_page_;
      }
      --count_;
      return Status::OK();
    }
  }
  return Status::NotFound("no entry matches (point, id)");
}

template <typename Visit>
Status SeqScan::ScanAll(Visit visit) {
  // Zero-copy page scans: the whole point of the baseline is raw
  // sequential throughput.
  for (PageId pid : pages_) {
    HT_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(pid));
    DataPageScan scan(h.data(), h.size(), dim_);
    if (!scan.ok()) return Status::Corruption("expected data page");
    for (size_t i = 0; i < scan.count(); ++i) visit(scan, i);
  }
  return Status::OK();
}

Result<std::vector<uint64_t>> SeqScan::SearchBox(const Box& query) {
  std::vector<uint64_t> out;
  HT_RETURN_NOT_OK(ScanAll([&](const DataPageScan& s, size_t i) {
    if (query.ContainsPoint(s.vec(i))) out.push_back(s.id(i));
  }));
  return out;
}

Result<std::vector<uint64_t>> SeqScan::SearchRange(
    std::span<const float> center, double radius,
    const DistanceMetric& metric) {
  std::vector<uint64_t> out;
  HT_RETURN_NOT_OK(ScanAll([&](const DataPageScan& s, size_t i) {
    if (metric.Distance(center, s.vec(i)) <= radius) out.push_back(s.id(i));
  }));
  return out;
}

Result<std::vector<std::pair<double, uint64_t>>> SeqScan::SearchKnn(
    std::span<const float> center, size_t k, const DistanceMetric& metric) {
  std::vector<std::pair<double, uint64_t>> all;
  HT_RETURN_NOT_OK(ScanAll([&](const DataPageScan& s, size_t i) {
    all.emplace_back(metric.Distance(center, s.vec(i)), s.id(i));
  }));
  if (k > all.size()) k = all.size();
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(k),
                    all.end());
  all.resize(k);
  return all;
}

}  // namespace ht
