// Copyright 2026 The HybridTree Authors.
// KDB-tree (Robinson 1981): the disk-based space-partitioning structure
// with strictly disjoint 1-d splits that the hybrid tree relaxes.
//
// Splits must be "clean": when an index node splits along (dim, pos),
// every child whose region straddles the plane must itself be split —
// the downward cascading splits that cost the KDB-tree its utilization
// guarantee and create empty nodes (paper §3.1, Table 1). Cascades and
// empty nodes are counted so the Table-1 bench can report them.
//
// Like the hybrid tree we represent the intra-node partitioning as a
// kd-tree (with lsp == rsp always); only straddling subtrees cascade.

#pragma once

#include <memory>

#include "baselines/spatial_index.h"
#include "core/node.h"
#include "storage/paged_file.h"

namespace ht {

struct KdbStats {
  uint64_t data_nodes = 0;
  uint64_t index_nodes = 0;
  uint64_t empty_data_nodes = 0;
  double avg_data_utilization = 0.0;
  double min_data_utilization = 1.0;
  double avg_index_fanout = 0.0;
  uint64_t cascading_splits = 0;  // forced child splits, cumulative
};

class KdbTree final : public SpatialIndex {
 public:
  static Result<std::unique_ptr<KdbTree>> Create(uint32_t dim,
                                                 PagedFile* file);

  std::string Name() const override { return "KDB-tree"; }
  Status Insert(std::span<const float> point, uint64_t id) override;
  Status Delete(std::span<const float> point, uint64_t id) override;
  Result<std::vector<uint64_t>> SearchBox(const Box& query) override;
  Result<std::vector<uint64_t>> SearchRange(
      std::span<const float> center, double radius,
      const DistanceMetric& metric) override;
  Result<std::vector<std::pair<double, uint64_t>>> SearchKnn(
      std::span<const float> center, size_t k,
      const DistanceMetric& metric) override;

  uint64_t size() const override { return count_; }
  BufferPool& pool() override { return *pool_; }

  Result<KdbStats> ComputeStats();
  Status CheckInvariants();
  size_t data_node_capacity() const { return data_capacity_; }

 private:
  KdbTree(uint32_t dim, PagedFile* file);

  Result<DataNode> ReadDataNode(PageId id);
  Status WriteDataNode(PageId id, const DataNode& node);
  Result<IndexNode> ReadIndexNode(PageId id);
  Status WriteIndexNode(PageId id, const IndexNode& node);
  Result<NodeKind> PeekKind(PageId id);

  struct SplitResult {
    bool split = false;
    uint32_t dim = 0;
    float pos = 0.0f;
    PageId right_page = kInvalidPageId;
  };
  Result<SplitResult> InsertRec(PageId page, const Box& br,
                                std::span<const float> point, uint64_t id);
  Result<SplitResult> SplitDataPage(PageId page, DataNode& node,
                                    const Box& br);
  Result<SplitResult> SplitIndexPage(PageId page, IndexNode& node,
                                     const Box& br);

  /// Splits the subtree rooted at `page` cleanly along (dim, pos),
  /// cascading into children whose regions straddle the plane. `page` is
  /// reused for the left half; the returned id holds the right half.
  Result<PageId> SplitSubtreePage(PageId page, const Box& region,
                                  uint32_t dim, float pos);

  /// Cuts a kd-tree along the plane. Exactly one of the returned parts may
  /// be null when the whole subtree lies on one side.
  struct CutParts {
    std::unique_ptr<KdNode> left;
    std::unique_ptr<KdNode> right;
  };
  Result<CutParts> CutKd(std::unique_ptr<KdNode> n, const Box& region,
                         uint32_t dim, float pos);

  Status ComputeStatsRec(PageId page, KdbStats* stats, double* util_sum);
  Status CheckInvariantsRec(PageId page, const Box& br,
                            uint64_t* entries_seen);

  uint32_t dim_;
  size_t page_size_;
  std::unique_ptr<BufferPool> pool_;
  size_t data_capacity_ = 0;
  PageId root_ = kInvalidPageId;
  uint64_t count_ = 0;
  uint64_t cascading_splits_ = 0;
};

}  // namespace ht
