file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7cd_distance.dir/bench/bench_fig7cd_distance.cc.o"
  "CMakeFiles/bench_fig7cd_distance.dir/bench/bench_fig7cd_distance.cc.o.d"
  "bench/bench_fig7cd_distance"
  "bench/bench_fig7cd_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7cd_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
