# Empty dependencies file for bench_fig7cd_distance.
# This may be replaced when dependencies are built.
