file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5c_els_bits.dir/bench/bench_fig5c_els_bits.cc.o"
  "CMakeFiles/bench_fig5c_els_bits.dir/bench/bench_fig5c_els_bits.cc.o.d"
  "bench/bench_fig5c_els_bits"
  "bench/bench_fig5c_els_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5c_els_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
