# Empty compiler generated dependencies file for bench_fig5c_els_bits.
# This may be replaced when dependencies are built.
