file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_intranode.dir/bench/bench_micro_intranode.cc.o"
  "CMakeFiles/bench_micro_intranode.dir/bench/bench_micro_intranode.cc.o.d"
  "bench/bench_micro_intranode"
  "bench/bench_micro_intranode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_intranode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
