# Empty dependencies file for bench_micro_intranode.
# This may be replaced when dependencies are built.
