file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_els.dir/bench/bench_micro_els.cc.o"
  "CMakeFiles/bench_micro_els.dir/bench/bench_micro_els.cc.o.d"
  "bench/bench_micro_els"
  "bench/bench_micro_els.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_els.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
