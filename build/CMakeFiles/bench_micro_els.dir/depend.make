# Empty dependencies file for bench_micro_els.
# This may be replaced when dependencies are built.
