# Empty dependencies file for bench_ext_bulkload.
# This may be replaced when dependencies are built.
