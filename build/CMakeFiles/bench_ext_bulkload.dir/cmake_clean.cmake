file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_bulkload.dir/bench/bench_ext_bulkload.cc.o"
  "CMakeFiles/bench_ext_bulkload.dir/bench/bench_ext_bulkload.cc.o.d"
  "bench/bench_ext_bulkload"
  "bench/bench_ext_bulkload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_bulkload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
