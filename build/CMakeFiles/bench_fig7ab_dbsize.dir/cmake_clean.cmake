file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7ab_dbsize.dir/bench/bench_fig7ab_dbsize.cc.o"
  "CMakeFiles/bench_fig7ab_dbsize.dir/bench/bench_fig7ab_dbsize.cc.o.d"
  "bench/bench_fig7ab_dbsize"
  "bench/bench_fig7ab_dbsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7ab_dbsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
