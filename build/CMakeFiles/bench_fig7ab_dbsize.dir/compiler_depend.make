# Empty compiler generated dependencies file for bench_fig7ab_dbsize.
# This may be replaced when dependencies are built.
