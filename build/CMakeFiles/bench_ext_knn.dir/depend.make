# Empty dependencies file for bench_ext_knn.
# This may be replaced when dependencies are built.
