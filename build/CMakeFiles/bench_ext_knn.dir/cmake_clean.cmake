file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_knn.dir/bench/bench_ext_knn.cc.o"
  "CMakeFiles/bench_ext_knn.dir/bench/bench_ext_knn.cc.o.d"
  "bench/bench_ext_knn"
  "bench/bench_ext_knn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
