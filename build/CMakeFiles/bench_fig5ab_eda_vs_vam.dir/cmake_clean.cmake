file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5ab_eda_vs_vam.dir/bench/bench_fig5ab_eda_vs_vam.cc.o"
  "CMakeFiles/bench_fig5ab_eda_vs_vam.dir/bench/bench_fig5ab_eda_vs_vam.cc.o.d"
  "bench/bench_fig5ab_eda_vs_vam"
  "bench/bench_fig5ab_eda_vs_vam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5ab_eda_vs_vam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
