# Empty compiler generated dependencies file for bench_fig5ab_eda_vs_vam.
# This may be replaced when dependencies are built.
