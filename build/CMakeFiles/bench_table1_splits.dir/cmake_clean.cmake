file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_splits.dir/bench/bench_table1_splits.cc.o"
  "CMakeFiles/bench_table1_splits.dir/bench/bench_table1_splits.cc.o.d"
  "bench/bench_table1_splits"
  "bench/bench_table1_splits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_splits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
