# Empty compiler generated dependencies file for bench_fig6ab_fourier.
# This may be replaced when dependencies are built.
