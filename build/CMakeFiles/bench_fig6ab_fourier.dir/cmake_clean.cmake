file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6ab_fourier.dir/bench/bench_fig6ab_fourier.cc.o"
  "CMakeFiles/bench_fig6ab_fourier.dir/bench/bench_fig6ab_fourier.cc.o.d"
  "bench/bench_fig6ab_fourier"
  "bench/bench_fig6ab_fourier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6ab_fourier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
