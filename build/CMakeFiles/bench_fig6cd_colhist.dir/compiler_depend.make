# Empty compiler generated dependencies file for bench_fig6cd_colhist.
# This may be replaced when dependencies are built.
