file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6cd_colhist.dir/bench/bench_fig6cd_colhist.cc.o"
  "CMakeFiles/bench_fig6cd_colhist.dir/bench/bench_fig6cd_colhist.cc.o.d"
  "bench/bench_fig6cd_colhist"
  "bench/bench_fig6cd_colhist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6cd_colhist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
