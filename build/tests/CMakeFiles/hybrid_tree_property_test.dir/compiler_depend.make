# Empty compiler generated dependencies file for hybrid_tree_property_test.
# This may be replaced when dependencies are built.
