# Empty compiler generated dependencies file for seqscan_test.
# This may be replaced when dependencies are built.
