file(REMOVE_RECURSE
  "CMakeFiles/seqscan_test.dir/seqscan_test.cc.o"
  "CMakeFiles/seqscan_test.dir/seqscan_test.cc.o.d"
  "seqscan_test"
  "seqscan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seqscan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
