file(REMOVE_RECURSE
  "CMakeFiles/hb_tree_test.dir/hb_tree_test.cc.o"
  "CMakeFiles/hb_tree_test.dir/hb_tree_test.cc.o.d"
  "hb_tree_test"
  "hb_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hb_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
