file(REMOVE_RECURSE
  "CMakeFiles/cross_structure_test.dir/cross_structure_test.cc.o"
  "CMakeFiles/cross_structure_test.dir/cross_structure_test.cc.o.d"
  "cross_structure_test"
  "cross_structure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_structure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
