file(REMOVE_RECURSE
  "CMakeFiles/els_test.dir/els_test.cc.o"
  "CMakeFiles/els_test.dir/els_test.cc.o.d"
  "els_test"
  "els_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/els_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
