# Empty dependencies file for els_test.
# This may be replaced when dependencies are built.
