# Empty compiler generated dependencies file for x_tree_test.
# This may be replaced when dependencies are built.
