file(REMOVE_RECURSE
  "CMakeFiles/x_tree_test.dir/x_tree_test.cc.o"
  "CMakeFiles/x_tree_test.dir/x_tree_test.cc.o.d"
  "x_tree_test"
  "x_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
