file(REMOVE_RECURSE
  "CMakeFiles/knn_extensions_test.dir/knn_extensions_test.cc.o"
  "CMakeFiles/knn_extensions_test.dir/knn_extensions_test.cc.o.d"
  "knn_extensions_test"
  "knn_extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knn_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
