# Empty dependencies file for knn_extensions_test.
# This may be replaced when dependencies are built.
