# Empty dependencies file for quadratic_metric_test.
# This may be replaced when dependencies are built.
