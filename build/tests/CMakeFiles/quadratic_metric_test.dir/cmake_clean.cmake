file(REMOVE_RECURSE
  "CMakeFiles/quadratic_metric_test.dir/quadratic_metric_test.cc.o"
  "CMakeFiles/quadratic_metric_test.dir/quadratic_metric_test.cc.o.d"
  "quadratic_metric_test"
  "quadratic_metric_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quadratic_metric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
