
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/quadratic_metric_test.cc" "tests/CMakeFiles/quadratic_metric_test.dir/quadratic_metric_test.cc.o" "gcc" "tests/CMakeFiles/quadratic_metric_test.dir/quadratic_metric_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ht_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ht_data.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/ht_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ht_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ht_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
