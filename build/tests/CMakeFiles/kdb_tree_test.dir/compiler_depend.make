# Empty compiler generated dependencies file for kdb_tree_test.
# This may be replaced when dependencies are built.
