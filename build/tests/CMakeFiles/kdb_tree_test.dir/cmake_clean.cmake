file(REMOVE_RECURSE
  "CMakeFiles/kdb_tree_test.dir/kdb_tree_test.cc.o"
  "CMakeFiles/kdb_tree_test.dir/kdb_tree_test.cc.o.d"
  "kdb_tree_test"
  "kdb_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdb_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
