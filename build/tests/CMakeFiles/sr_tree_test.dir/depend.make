# Empty dependencies file for sr_tree_test.
# This may be replaced when dependencies are built.
