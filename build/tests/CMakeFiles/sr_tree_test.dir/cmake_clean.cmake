file(REMOVE_RECURSE
  "CMakeFiles/sr_tree_test.dir/sr_tree_test.cc.o"
  "CMakeFiles/sr_tree_test.dir/sr_tree_test.cc.o.d"
  "sr_tree_test"
  "sr_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sr_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
