# Empty dependencies file for shape_search.
# This may be replaced when dependencies are built.
