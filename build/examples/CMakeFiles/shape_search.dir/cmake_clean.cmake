file(REMOVE_RECURSE
  "CMakeFiles/shape_search.dir/shape_search.cpp.o"
  "CMakeFiles/shape_search.dir/shape_search.cpp.o.d"
  "shape_search"
  "shape_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shape_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
