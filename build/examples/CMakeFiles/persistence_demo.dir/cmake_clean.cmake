file(REMOVE_RECURSE
  "CMakeFiles/persistence_demo.dir/persistence_demo.cpp.o"
  "CMakeFiles/persistence_demo.dir/persistence_demo.cpp.o.d"
  "persistence_demo"
  "persistence_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistence_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
