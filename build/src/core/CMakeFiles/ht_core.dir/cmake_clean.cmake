file(REMOVE_RECURSE
  "CMakeFiles/ht_core.dir/bulk_load.cc.o"
  "CMakeFiles/ht_core.dir/bulk_load.cc.o.d"
  "CMakeFiles/ht_core.dir/els.cc.o"
  "CMakeFiles/ht_core.dir/els.cc.o.d"
  "CMakeFiles/ht_core.dir/hybrid_tree.cc.o"
  "CMakeFiles/ht_core.dir/hybrid_tree.cc.o.d"
  "CMakeFiles/ht_core.dir/node.cc.o"
  "CMakeFiles/ht_core.dir/node.cc.o.d"
  "CMakeFiles/ht_core.dir/split.cc.o"
  "CMakeFiles/ht_core.dir/split.cc.o.d"
  "CMakeFiles/ht_core.dir/stats.cc.o"
  "CMakeFiles/ht_core.dir/stats.cc.o.d"
  "libht_core.a"
  "libht_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
