
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bulk_load.cc" "src/core/CMakeFiles/ht_core.dir/bulk_load.cc.o" "gcc" "src/core/CMakeFiles/ht_core.dir/bulk_load.cc.o.d"
  "/root/repo/src/core/els.cc" "src/core/CMakeFiles/ht_core.dir/els.cc.o" "gcc" "src/core/CMakeFiles/ht_core.dir/els.cc.o.d"
  "/root/repo/src/core/hybrid_tree.cc" "src/core/CMakeFiles/ht_core.dir/hybrid_tree.cc.o" "gcc" "src/core/CMakeFiles/ht_core.dir/hybrid_tree.cc.o.d"
  "/root/repo/src/core/node.cc" "src/core/CMakeFiles/ht_core.dir/node.cc.o" "gcc" "src/core/CMakeFiles/ht_core.dir/node.cc.o.d"
  "/root/repo/src/core/split.cc" "src/core/CMakeFiles/ht_core.dir/split.cc.o" "gcc" "src/core/CMakeFiles/ht_core.dir/split.cc.o.d"
  "/root/repo/src/core/stats.cc" "src/core/CMakeFiles/ht_core.dir/stats.cc.o" "gcc" "src/core/CMakeFiles/ht_core.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ht_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ht_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/ht_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
