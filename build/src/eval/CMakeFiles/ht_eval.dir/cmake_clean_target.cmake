file(REMOVE_RECURSE
  "libht_eval.a"
)
