# Empty compiler generated dependencies file for ht_eval.
# This may be replaced when dependencies are built.
