file(REMOVE_RECURSE
  "CMakeFiles/ht_eval.dir/harness.cc.o"
  "CMakeFiles/ht_eval.dir/harness.cc.o.d"
  "libht_eval.a"
  "libht_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
