# Empty compiler generated dependencies file for ht_storage.
# This may be replaced when dependencies are built.
