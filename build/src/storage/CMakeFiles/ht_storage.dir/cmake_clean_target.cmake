file(REMOVE_RECURSE
  "libht_storage.a"
)
