file(REMOVE_RECURSE
  "CMakeFiles/ht_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/ht_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/ht_storage.dir/paged_file.cc.o"
  "CMakeFiles/ht_storage.dir/paged_file.cc.o.d"
  "libht_storage.a"
  "libht_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
