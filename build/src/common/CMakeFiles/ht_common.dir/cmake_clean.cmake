file(REMOVE_RECURSE
  "CMakeFiles/ht_common.dir/status.cc.o"
  "CMakeFiles/ht_common.dir/status.cc.o.d"
  "libht_common.a"
  "libht_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
