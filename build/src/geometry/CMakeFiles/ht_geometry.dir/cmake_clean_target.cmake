file(REMOVE_RECURSE
  "libht_geometry.a"
)
