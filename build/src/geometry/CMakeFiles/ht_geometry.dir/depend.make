# Empty dependencies file for ht_geometry.
# This may be replaced when dependencies are built.
