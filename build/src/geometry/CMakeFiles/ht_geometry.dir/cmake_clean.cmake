file(REMOVE_RECURSE
  "CMakeFiles/ht_geometry.dir/box.cc.o"
  "CMakeFiles/ht_geometry.dir/box.cc.o.d"
  "libht_geometry.a"
  "libht_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
