# Empty compiler generated dependencies file for ht_data.
# This may be replaced when dependencies are built.
