file(REMOVE_RECURSE
  "libht_data.a"
)
