file(REMOVE_RECURSE
  "CMakeFiles/ht_data.dir/dataset.cc.o"
  "CMakeFiles/ht_data.dir/dataset.cc.o.d"
  "CMakeFiles/ht_data.dir/generators.cc.o"
  "CMakeFiles/ht_data.dir/generators.cc.o.d"
  "CMakeFiles/ht_data.dir/workload.cc.o"
  "CMakeFiles/ht_data.dir/workload.cc.o.d"
  "libht_data.a"
  "libht_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
