file(REMOVE_RECURSE
  "CMakeFiles/ht_baselines.dir/hb_tree.cc.o"
  "CMakeFiles/ht_baselines.dir/hb_tree.cc.o.d"
  "CMakeFiles/ht_baselines.dir/kdb_tree.cc.o"
  "CMakeFiles/ht_baselines.dir/kdb_tree.cc.o.d"
  "CMakeFiles/ht_baselines.dir/rstar_tree.cc.o"
  "CMakeFiles/ht_baselines.dir/rstar_tree.cc.o.d"
  "CMakeFiles/ht_baselines.dir/seqscan.cc.o"
  "CMakeFiles/ht_baselines.dir/seqscan.cc.o.d"
  "CMakeFiles/ht_baselines.dir/sr_tree.cc.o"
  "CMakeFiles/ht_baselines.dir/sr_tree.cc.o.d"
  "CMakeFiles/ht_baselines.dir/x_tree.cc.o"
  "CMakeFiles/ht_baselines.dir/x_tree.cc.o.d"
  "libht_baselines.a"
  "libht_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
