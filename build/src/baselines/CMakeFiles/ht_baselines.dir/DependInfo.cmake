
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/hb_tree.cc" "src/baselines/CMakeFiles/ht_baselines.dir/hb_tree.cc.o" "gcc" "src/baselines/CMakeFiles/ht_baselines.dir/hb_tree.cc.o.d"
  "/root/repo/src/baselines/kdb_tree.cc" "src/baselines/CMakeFiles/ht_baselines.dir/kdb_tree.cc.o" "gcc" "src/baselines/CMakeFiles/ht_baselines.dir/kdb_tree.cc.o.d"
  "/root/repo/src/baselines/rstar_tree.cc" "src/baselines/CMakeFiles/ht_baselines.dir/rstar_tree.cc.o" "gcc" "src/baselines/CMakeFiles/ht_baselines.dir/rstar_tree.cc.o.d"
  "/root/repo/src/baselines/seqscan.cc" "src/baselines/CMakeFiles/ht_baselines.dir/seqscan.cc.o" "gcc" "src/baselines/CMakeFiles/ht_baselines.dir/seqscan.cc.o.d"
  "/root/repo/src/baselines/sr_tree.cc" "src/baselines/CMakeFiles/ht_baselines.dir/sr_tree.cc.o" "gcc" "src/baselines/CMakeFiles/ht_baselines.dir/sr_tree.cc.o.d"
  "/root/repo/src/baselines/x_tree.cc" "src/baselines/CMakeFiles/ht_baselines.dir/x_tree.cc.o" "gcc" "src/baselines/CMakeFiles/ht_baselines.dir/x_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ht_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ht_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/ht_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ht_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
