// Tests for the dataset generators: they must produce the statistical
// character the paper's datasets exhibit (see DESIGN.md §4).

#include "data/generators.h"

#include <gtest/gtest.h>

#include <numeric>

namespace ht {
namespace {

std::vector<double> PerDimVariance(const Dataset& d) {
  std::vector<double> mean(d.dim(), 0.0), var(d.dim(), 0.0);
  for (size_t i = 0; i < d.size(); ++i) {
    auto r = d.Row(i);
    for (uint32_t k = 0; k < d.dim(); ++k) mean[k] += r[k];
  }
  for (auto& m : mean) m /= static_cast<double>(d.size());
  for (size_t i = 0; i < d.size(); ++i) {
    auto r = d.Row(i);
    for (uint32_t k = 0; k < d.dim(); ++k) {
      const double diff = r[k] - mean[k];
      var[k] += diff * diff;
    }
  }
  for (auto& v : var) v /= static_cast<double>(d.size());
  return var;
}

TEST(GeneratorsTest, UniformCoversCube) {
  Rng rng(41);
  Dataset d = GenUniform(5000, 4, rng);
  EXPECT_EQ(d.size(), 5000u);
  auto var = PerDimVariance(d);
  for (double v : var) EXPECT_NEAR(v, 1.0 / 12.0, 0.01);
}

TEST(GeneratorsTest, ClusteredStaysInCube) {
  Rng rng(43);
  Dataset d = GenClustered(2000, 6, 5, 0.05, rng);
  for (size_t i = 0; i < d.size(); ++i) {
    for (uint32_t k = 0; k < 6; ++k) {
      EXPECT_GE(d.Row(i)[k], 0.0f);
      EXPECT_LE(d.Row(i)[k], 1.0f);
    }
  }
}

double MeanNearestNeighborDistance(const Dataset& d, size_t probes, Rng& rng) {
  double total = 0.0;
  for (size_t p = 0; p < probes; ++p) {
    const size_t i = rng.NextBelow(d.size());
    double best = 1e18;
    for (size_t j = 0; j < d.size(); ++j) {
      if (j == i) continue;
      double s = 0.0;
      for (uint32_t k = 0; k < d.dim(); ++k) {
        const double diff = d.Row(i)[k] - d.Row(j)[k];
        s += diff * diff;
      }
      if (s < best) best = s;
    }
    total += std::sqrt(best);
  }
  return total / static_cast<double>(probes);
}

TEST(GeneratorsTest, ClusteredIsClumpierThanUniform) {
  Rng rng(44);
  Dataset clustered = GenClustered(2000, 6, 5, 0.03, rng);
  Dataset uniform = GenUniform(2000, 6, rng);
  const double nn_clustered = MeanNearestNeighborDistance(clustered, 100, rng);
  const double nn_uniform = MeanNearestNeighborDistance(uniform, 100, rng);
  EXPECT_LT(nn_clustered, 0.7 * nn_uniform);
}

TEST(GeneratorsTest, FourierIsNormalizedAndEnergyDecays) {
  Rng rng(47);
  Dataset d = GenFourier(3000, 16, rng);
  ASSERT_EQ(d.dim(), 16u);
  for (size_t i = 0; i < d.size(); ++i) {
    for (uint32_t k = 0; k < 16; ++k) {
      EXPECT_GE(d.Row(i)[k], 0.0f);
      EXPECT_LE(d.Row(i)[k], 1.0f);
    }
  }
  // The real FOURIER data's defining property: variance decays with the
  // coefficient index (smooth boundaries have low-pass spectra). Compare
  // the first complex coefficient pair against the last.
  // Note: variances are post-normalization, so we check the *spread* of the
  // underlying data via discriminative power after normalization. The first
  // coefficients should still carry more variance than the last.
  auto var = PerDimVariance(d);
  const double head = var[0] + var[1];
  const double tail = var[14] + var[15];
  EXPECT_GT(head, tail * 0.8)
      << "expected leading Fourier coefficients to dominate";
}

TEST(GeneratorsTest, ColhistRowsAreDistributions) {
  Rng rng(53);
  for (uint32_t bins : {16u, 32u, 64u}) {
    Dataset d = GenColhist(500, bins, rng);
    ASSERT_EQ(d.dim(), bins);
    for (size_t i = 0; i < d.size(); ++i) {
      double sum = 0.0;
      for (uint32_t k = 0; k < bins; ++k) {
        EXPECT_GE(d.Row(i)[k], 0.0f);
        EXPECT_LE(d.Row(i)[k], 1.0f);
        sum += d.Row(i)[k];
      }
      EXPECT_NEAR(sum, 1.0, 1e-4);
    }
  }
}

TEST(GeneratorsTest, ColhistIsSkewedAcrossBins) {
  Rng rng(59);
  Dataset d = GenColhist(3000, 64, rng);
  // Zipf-popular bins accumulate much more mass than the median bin.
  std::vector<double> mass(64, 0.0);
  for (size_t i = 0; i < d.size(); ++i) {
    for (uint32_t k = 0; k < 64; ++k) mass[k] += d.Row(i)[k];
  }
  std::sort(mass.begin(), mass.end());
  EXPECT_GT(mass[63], 4.0 * mass[32]);
}

TEST(GeneratorsTest, DeterministicGivenSeed) {
  Rng a(61), b(61);
  Dataset da = GenColhist(50, 16, a);
  Dataset db = GenColhist(50, 16, b);
  for (size_t i = 0; i < 50; ++i) {
    for (uint32_t k = 0; k < 16; ++k) {
      ASSERT_FLOAT_EQ(da.Row(i)[k], db.Row(i)[k]);
    }
  }
}

}  // namespace
}  // namespace ht
