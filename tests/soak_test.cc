// Randomized end-to-end soak: a single hybrid tree endures interleaved
// inserts, deletes, box/range/k-NN queries, metric switches, flush/reopen
// cycles and ELS rebuilds, with a shadow copy verifying every answer and
// periodic invariant checks. Exercises the §3.5 claim that the tree is
// "completely dynamic" with operations "interspersed ... without requiring
// any reorganization".

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/hybrid_tree.h"
#include "data/generators.h"
#include "data/workload.h"

namespace ht {
namespace {

class SoakTest : public ::testing::TestWithParam<ElsMode> {};

TEST_P(SoakTest, MixedWorkloadAgainstShadow) {
  const ElsMode mode = GetParam();
  const uint32_t dim = 5;
  const std::string path =
      std::string(::testing::TempDir()) + "/soak_" +
      std::to_string(static_cast<int>(mode)) + ".htf";

  Rng rng(2201 + static_cast<int>(mode));
  auto file = DiskPagedFile::Create(path, 1024).ValueOrDie();
  HybridTreeOptions o;
  o.dim = dim;
  o.page_size = 1024;
  o.els_mode = mode;
  o.els_bits = mode == ElsMode::kOff ? 0 : 4;
  auto tree = HybridTree::Create(o, file.get()).ValueOrDie();
  // Any pin leaked by the mixed workload below gets attributed to its
  // Fetch call site by CheckInvariants' pin accounting.
  tree->pool().SetPinTracking(true);

  std::map<uint64_t, std::vector<float>> shadow;  // id -> vector
  uint64_t next_id = 0;
  const L1Metric l1;
  const L2Metric l2;
  const LInfMetric linf;
  const DistanceMetric* metrics[] = {&l1, &l2, &linf};

  auto shadow_box = [&](const Box& q) {
    std::vector<uint64_t> out;
    for (const auto& [id, v] : shadow) {
      if (q.ContainsPoint(v)) out.push_back(id);
    }
    return out;
  };

  for (int step = 0; step < 6000; ++step) {
    const uint64_t op = rng.NextBelow(100);
    if (op < 55 || shadow.size() < 50) {
      // Insert.
      std::vector<float> v(dim);
      for (auto& x : v) x = static_cast<float>(rng.NextDouble());
      ASSERT_TRUE(tree->Insert(v, next_id).ok()) << step;
      shadow.emplace(next_id, std::move(v));
      ++next_id;
    } else if (op < 75) {
      // Delete a random present entry.
      auto it = shadow.begin();
      std::advance(it, rng.NextBelow(shadow.size()));
      ASSERT_TRUE(tree->Delete(it->second, it->first).ok()) << step;
      shadow.erase(it);
    } else if (op < 85) {
      // Box query.
      std::vector<float> c(dim);
      for (auto& x : c) x = static_cast<float>(rng.NextDouble());
      Box q = MakeBoxQuery(c, 0.2 + 0.4 * rng.NextDouble());
      auto got = tree->SearchBox(q).ValueOrDie();
      std::sort(got.begin(), got.end());
      ASSERT_EQ(got, shadow_box(q)) << step;
    } else if (op < 93) {
      // Range query under a random metric.
      const DistanceMetric& m = *metrics[rng.NextBelow(3)];
      auto it = shadow.begin();
      std::advance(it, rng.NextBelow(shadow.size()));
      const double radius = 0.1 + 0.4 * rng.NextDouble();
      auto got = tree->SearchRange(it->second, radius, m).ValueOrDie();
      std::sort(got.begin(), got.end());
      std::vector<uint64_t> want;
      for (const auto& [id, v] : shadow) {
        if (m.Distance(it->second, v) <= radius) want.push_back(id);
      }
      ASSERT_EQ(got, want) << step << " metric " << m.Name();
    } else {
      // k-NN distances.
      const DistanceMetric& m = *metrics[rng.NextBelow(3)];
      auto it = shadow.begin();
      std::advance(it, rng.NextBelow(shadow.size()));
      const size_t k = 1 + rng.NextBelow(8);
      auto got = tree->SearchKnn(it->second, k, m).ValueOrDie();
      std::vector<double> want;
      for (const auto& [id, v] : shadow) {
        want.push_back(m.Distance(it->second, v));
      }
      std::sort(want.begin(), want.end());
      ASSERT_EQ(got.size(), std::min(k, shadow.size())) << step;
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got[i].first, want[i], 1e-9) << step;
      }
    }

    if (step % 911 == 910) {
      ASSERT_TRUE(tree->CheckInvariants().ok()) << "step " << step;
    }
    if (step % 1777 == 1776) {
      // Flush, drop everything, reopen — mid-workload durability.
      ASSERT_TRUE(tree->Flush().ok());
      tree.reset();
      file = DiskPagedFile::Open(path).ValueOrDie();
      tree = HybridTree::Open(file.get()).ValueOrDie();
      tree->pool().SetPinTracking(true);
      ASSERT_EQ(tree->size(), shadow.size()) << "step " << step;
      ASSERT_TRUE(tree->CheckInvariants().ok()) << "step " << step;
    }
  }
  EXPECT_EQ(tree->size(), shadow.size());
  ASSERT_TRUE(tree->CheckInvariants().ok());
  // Full-scan cross-check at the end.
  std::map<uint64_t, std::vector<float>> scanned;
  HT_CHECK_OK(tree->ScanAll([&](uint64_t id, std::span<const float> v) {
    scanned.emplace(id, std::vector<float>(v.begin(), v.end()));
  }));
  EXPECT_EQ(scanned, shadow);
}

INSTANTIATE_TEST_SUITE_P(ElsModes, SoakTest,
                         ::testing::Values(ElsMode::kOff, ElsMode::kInMemory,
                                           ElsMode::kInPage));

}  // namespace
}  // namespace ht
