// Remaining corners: IoStats arithmetic, SpatialIndex interface defaults,
// Box degenerate cases, workload determinism.

#include <gtest/gtest.h>

#include "baselines/spatial_index.h"
#include "data/generators.h"
#include "data/workload.h"
#include "storage/io_stats.h"

namespace ht {
namespace {

TEST(IoStatsTest, DeltaSubtractsEveryCounter) {
  IoStats before;
  before.logical_reads = 10;
  before.physical_reads = 4;
  before.writes = 2;
  before.allocations = 1;
  before.frees = 0;
  before.evictions = 3;
  IoStats after = before;
  after.logical_reads += 7;
  after.physical_reads += 5;
  after.writes += 1;
  after.allocations += 2;
  after.frees += 4;
  after.evictions += 6;
  IoStats d = after.Delta(before);
  EXPECT_EQ(d.logical_reads, 7u);
  EXPECT_EQ(d.physical_reads, 5u);
  EXPECT_EQ(d.writes, 1u);
  EXPECT_EQ(d.allocations, 2u);
  EXPECT_EQ(d.frees, 4u);
  EXPECT_EQ(d.evictions, 6u);
  d.Reset();
  EXPECT_EQ(d.logical_reads, 0u);
}

/// A minimal SpatialIndex implementation to exercise the interface's
/// default NotSupported behaviour.
class StubIndex final : public SpatialIndex {
 public:
  StubIndex() : file_(256), pool_(&file_, 0) {}
  std::string Name() const override { return "Stub"; }
  Status Insert(std::span<const float>, uint64_t) override {
    return Status::OK();
  }
  Result<std::vector<uint64_t>> SearchBox(const Box&) override {
    return std::vector<uint64_t>{};
  }
  uint64_t size() const override { return 0; }
  BufferPool& pool() override { return pool_; }

 private:
  MemPagedFile file_;
  BufferPool pool_;
};

TEST(SpatialIndexTest, DefaultsAreNotSupported) {
  StubIndex stub;
  const std::vector<float> p = {0.5f};
  L2Metric l2;
  EXPECT_EQ(stub.Delete(p, 1).code(), StatusCode::kNotSupported);
  EXPECT_EQ(stub.SearchRange(p, 0.1, l2).status().code(),
            StatusCode::kNotSupported);
  EXPECT_EQ(stub.SearchKnn(p, 3, l2).status().code(),
            StatusCode::kNotSupported);
  EXPECT_FALSE(stub.sequential_io());
}

TEST(BoxTest, IntersectionOfDisjointIsEmpty) {
  Box a = Box::FromBounds({0.0f}, {0.4f});
  Box b = Box::FromBounds({0.6f}, {1.0f});
  EXPECT_TRUE(a.Intersection(b).IsEmpty());
  EXPECT_FALSE(a.Intersection(a).IsEmpty());
}

TEST(BoxTest, ZeroDimBoxIsEmpty) {
  Box b;
  EXPECT_EQ(b.dim(), 0u);
  EXPECT_TRUE(b.IsEmpty());
}

TEST(WorkloadTest, CalibrationIsDeterministicGivenSeed) {
  Rng a(3001), b(3001);
  Dataset d1 = GenUniform(3000, 3, a);
  Dataset d2 = GenUniform(3000, 3, b);
  Rng ca(3002), cb(3002);
  EXPECT_DOUBLE_EQ(CalibrateBoxSide(d1, 0.01, 10, ca),
                   CalibrateBoxSide(d2, 0.01, 10, cb));
}

TEST(WorkloadTest, HigherSelectivityNeedsLargerSide) {
  Rng rng(3003);
  Dataset d = GenUniform(5000, 4, rng);
  Rng c1(3004), c2(3004);
  const double small = CalibrateBoxSide(d, 0.005, 15, c1);
  const double large = CalibrateBoxSide(d, 0.05, 15, c2);
  EXPECT_LT(small, large);
}

}  // namespace
}  // namespace ht
