// Tests for the R*-tree baseline.

#include "baselines/rstar_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/generators.h"
#include "data/workload.h"

namespace ht {
namespace {

TEST(RStarTreeTest, IndexCapacityShrinksWithDimensionality) {
  // Table 1: DP-based fanout decreases linearly with k.
  MemPagedFile f8(4096), f16(4096), f64(4096);
  auto t8 = RStarTree::Create(8, &f8).ValueOrDie();
  auto t16 = RStarTree::Create(16, &f16).ValueOrDie();
  auto t64 = RStarTree::Create(64, &f64).ValueOrDie();
  EXPECT_GT(t8->index_capacity(), t16->index_capacity());
  EXPECT_GT(t16->index_capacity(), t64->index_capacity());
  EXPECT_LT(t64->index_capacity(), 10u);  // severely degraded at 64-d
}

TEST(RStarTreeTest, MatchesBruteForceBoxSearch) {
  Rng rng(457);
  Dataset data = GenUniform(3000, 4, rng);
  MemPagedFile file(512);
  auto tree = RStarTree::Create(4, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data.Row(i), i).ok()) << i;
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());
  for (int q = 0; q < 30; ++q) {
    auto centers = MakeQueryCenters(data, 1, rng);
    Box query = MakeBoxQuery(centers[0], 0.3);
    auto got = tree->SearchBox(query).ValueOrDie();
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, BruteForceBox(data, query)) << q;
  }
}

TEST(RStarTreeTest, RangeAndKnnMatchBruteForce) {
  Rng rng(461);
  Dataset data = GenClustered(2000, 3, 4, 0.07, rng);
  MemPagedFile file(512);
  auto tree = RStarTree::Create(3, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data.Row(i), i).ok());
  }
  L2Metric l2;
  L1Metric l1;
  for (int q = 0; q < 10; ++q) {
    auto centers = MakeQueryCenters(data, 1, rng);
    auto got = tree->SearchRange(centers[0], 0.25, l2).ValueOrDie();
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, BruteForceRange(data, centers[0], 0.25, l2));
    auto got_k = tree->SearchKnn(centers[0], 10, l1).ValueOrDie();
    auto want_k = BruteForceKnn(data, centers[0], 10, l1);
    ASSERT_EQ(got_k.size(), want_k.size());
    for (size_t i = 0; i < got_k.size(); ++i) {
      ASSERT_NEAR(got_k[i].first, want_k[i].first, 1e-9);
    }
  }
}

TEST(RStarTreeTest, ForcedReinsertionsOccur) {
  Rng rng(463);
  Dataset data = GenClustered(3000, 4, 5, 0.05, rng);
  MemPagedFile file(512);
  auto tree = RStarTree::Create(4, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data.Row(i), i).ok());
  }
  RStarStats stats = tree->ComputeStats().ValueOrDie();
  EXPECT_GT(stats.forced_reinsertions, 0u);
  EXPECT_GT(stats.splits, 0u);
  EXPECT_GT(stats.avg_leaf_utilization, 0.4);
}

TEST(RStarTreeTest, SiblingOverlapExistsAtHighDim) {
  // Table 1: "degree of overlap: high" for BR hierarchies on real-ish
  // correlated data.
  Rng rng(467);
  Dataset data = GenColhist(3000, 16, rng);
  data.NormalizeUnitCube();
  MemPagedFile file(1024);
  auto tree = RStarTree::Create(16, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data.Row(i), i).ok());
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());
  RStarStats stats = tree->ComputeStats().ValueOrDie();
  EXPECT_GT(stats.index_nodes, 0u);
}

TEST(RStarTreeTest, DeleteCondensesAndStaysCorrect) {
  Rng rng(479);
  Dataset data = GenUniform(1200, 3, rng);
  MemPagedFile file(512);
  auto tree = RStarTree::Create(3, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data.Row(i), i).ok());
  }
  std::set<uint64_t> deleted;
  for (size_t i = 0; i < data.size(); i += 2) {
    ASSERT_TRUE(tree->Delete(data.Row(i), i).ok()) << i;
    deleted.insert(i);
  }
  EXPECT_EQ(tree->size(), data.size() - deleted.size());
  ASSERT_TRUE(tree->CheckInvariants().ok());
  Box q = MakeBoxQuery(data.Row(1), 0.4);
  std::vector<uint64_t> expect;
  for (uint64_t id : BruteForceBox(data, q)) {
    if (!deleted.count(id)) expect.push_back(id);
  }
  auto got = tree->SearchBox(q).ValueOrDie();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expect);
  EXPECT_TRUE(tree->Delete(data.Row(0), 0).IsNotFound());
}

TEST(RStarTreeTest, DeleteEverythingThenReuse) {
  Rng rng(487);
  Dataset data = GenUniform(600, 2, rng);
  MemPagedFile file(512);
  auto tree = RStarTree::Create(2, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data.Row(i), i).ok());
  }
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Delete(data.Row(i), i).ok()) << i;
  }
  EXPECT_EQ(tree->size(), 0u);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data.Row(i), i).ok());
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());
}

}  // namespace
}  // namespace ht
