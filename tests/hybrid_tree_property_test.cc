// Property tests: parameterized sweeps over dimensionality, page size,
// split policy, ELS configuration and dataset shape. Every configuration
// must (a) satisfy the structural invariants, (b) answer box queries
// exactly, and (c) answer range/k-NN queries exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>

#include "core/hybrid_tree.h"
#include "data/generators.h"
#include "data/workload.h"

namespace ht {
namespace {

struct Config {
  uint32_t dim;
  size_t page_size;
  SplitPolicy policy;
  ElsMode els_mode;
  uint32_t els_bits;
  int dataset;  // 0 uniform, 1 clustered, 2 colhist-like
  size_t n;
};

std::string ConfigName(const ::testing::TestParamInfo<Config>& info) {
  const Config& c = info.param;
  std::string s = "d" + std::to_string(c.dim) + "_p" +
                  std::to_string(c.page_size) + "_";
  s += c.policy == SplitPolicy::kEdaOptimal ? "eda" : "vam";
  s += c.els_mode == ElsMode::kOff
           ? "_noels"
           : (c.els_mode == ElsMode::kInMemory ? "_elsmem" : "_elspage");
  s += std::to_string(c.els_bits);
  s += "_ds" + std::to_string(c.dataset);
  return s;
}

Dataset MakeData(const Config& c, Rng& rng) {
  switch (c.dataset) {
    case 0:
      return GenUniform(c.n, c.dim, rng);
    case 1:
      return GenClustered(c.n, c.dim, 5, 0.07, rng);
    default:
      return GenColhist(c.n, c.dim, rng);
  }
}

class HybridTreeSweep : public ::testing::TestWithParam<Config> {};

TEST_P(HybridTreeSweep, InvariantsAndExactQueries) {
  const Config& c = GetParam();
  Rng rng(977 + c.dim * 13 + c.page_size + c.els_bits);
  Dataset data = MakeData(c, rng);

  HybridTreeOptions o;
  o.dim = c.dim;
  o.page_size = c.page_size;
  o.split_policy = c.policy;
  o.els_mode = c.els_mode;
  o.els_bits = c.els_bits;
  MemPagedFile file(c.page_size);
  auto tree = HybridTree::Create(o, &file).ValueOrDie();
  // Pin tracking attributes any page-pin leak to its Fetch call site;
  // CheckInvariants (and, under HT_DEBUG_VALIDATE, every mutating op)
  // asserts the pool is fully unpinned.
  tree->pool().SetPinTracking(true);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data.Row(i), i).ok()) << i;
  }
  ASSERT_EQ(tree->size(), data.size());
  ASSERT_TRUE(tree->CheckInvariants().ok());

  // Box queries vs brute force.
  for (int q = 0; q < 10; ++q) {
    auto centers = MakeQueryCenters(data, 1, rng);
    Box query = MakeBoxQuery(centers[0], 0.2 + 0.3 * rng.NextDouble());
    auto expect = BruteForceBox(data, query);
    auto got = tree->SearchBox(query).ValueOrDie();
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, expect) << "box query " << q;
  }

  // Range queries (L1, the paper's distance experiment metric).
  L1Metric l1;
  for (int q = 0; q < 5; ++q) {
    auto centers = MakeQueryCenters(data, 1, rng);
    const double radius = 0.1 + 0.3 * rng.NextDouble();
    auto expect = BruteForceRange(data, centers[0], radius, l1);
    auto got = tree->SearchRange(centers[0], radius, l1).ValueOrDie();
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, expect) << "range query " << q;
  }

  // k-NN distances.
  L2Metric l2;
  for (int q = 0; q < 5; ++q) {
    auto centers = MakeQueryCenters(data, 1, rng);
    auto expect = BruteForceKnn(data, centers[0], 10, l2);
    auto got = tree->SearchKnn(centers[0], 10, l2).ValueOrDie();
    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_NEAR(got[i].first, expect[i].first, 1e-9) << "knn " << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndPages, HybridTreeSweep,
    ::testing::Values(
        Config{2, 512, SplitPolicy::kEdaOptimal, ElsMode::kInMemory, 4, 0, 1500},
        Config{3, 512, SplitPolicy::kEdaOptimal, ElsMode::kInMemory, 4, 1, 1500},
        Config{4, 1024, SplitPolicy::kEdaOptimal, ElsMode::kInMemory, 4, 0, 1500},
        Config{8, 1024, SplitPolicy::kEdaOptimal, ElsMode::kInMemory, 4, 1, 1200},
        Config{16, 2048, SplitPolicy::kEdaOptimal, ElsMode::kInMemory, 4, 2, 1200},
        Config{32, 4096, SplitPolicy::kEdaOptimal, ElsMode::kInMemory, 4, 2, 1000}),
    ConfigName);

INSTANTIATE_TEST_SUITE_P(
    Policies, HybridTreeSweep,
    ::testing::Values(
        Config{4, 512, SplitPolicy::kVamSplit, ElsMode::kInMemory, 4, 0, 1500},
        Config{8, 1024, SplitPolicy::kVamSplit, ElsMode::kInMemory, 4, 2, 1200},
        Config{16, 2048, SplitPolicy::kVamSplit, ElsMode::kOff, 0, 1, 1000}),
    ConfigName);

INSTANTIATE_TEST_SUITE_P(
    ElsConfigs, HybridTreeSweep,
    ::testing::Values(
        Config{4, 512, SplitPolicy::kEdaOptimal, ElsMode::kOff, 0, 0, 1500},
        Config{4, 512, SplitPolicy::kEdaOptimal, ElsMode::kInMemory, 1, 0, 1500},
        Config{4, 512, SplitPolicy::kEdaOptimal, ElsMode::kInMemory, 8, 0, 1500},
        Config{4, 512, SplitPolicy::kEdaOptimal, ElsMode::kInMemory, 16, 0, 1500},
        Config{4, 1024, SplitPolicy::kEdaOptimal, ElsMode::kInPage, 4, 0, 1500},
        Config{8, 2048, SplitPolicy::kEdaOptimal, ElsMode::kInPage, 8, 2, 1000}),
    ConfigName);

/// ELS pruning must never drop results, and must pay off the way Figure
/// 5(c) reports: a steep improvement from no ELS to ~4 bits, then a
/// plateau. (Access counts are not strictly monotone in precision because
/// split decisions read the decoded live boxes, so the tree *structure*
/// itself varies slightly with precision.)
TEST(HybridTreeElsProperty, ElsPrunesDeadSpace) {
  Rng rng(991);
  // High-dimensional sparse histograms: kd regions carry substantial dead
  // space, the regime §3.4 targets ("this effect increases at higher
  // dimensionality").
  Dataset data = GenColhist(4000, 16, rng);
  data.NormalizeUnitCube();
  auto centers = MakeQueryCenters(data, 40, rng);
  const double side = CalibrateBoxSide(data, 0.01, 20, rng);

  std::map<uint32_t, uint64_t> accesses_by_bits;
  for (uint32_t bits : {0u, 2u, 4u, 8u, 16u}) {
    HybridTreeOptions o;
    o.dim = 16;
    o.page_size = 1024;
    o.els_mode = bits == 0 ? ElsMode::kOff : ElsMode::kInMemory;
    o.els_bits = bits;
    MemPagedFile file(o.page_size);
    auto tree = HybridTree::Create(o, &file).ValueOrDie();
    for (size_t i = 0; i < data.size(); ++i) {
      ASSERT_TRUE(tree->Insert(data.Row(i), i).ok());
    }
    uint64_t accesses = 0;
    for (const auto& c : centers) {
      Box q = MakeBoxQuery(c, side);
      auto expect = BruteForceBox(data, q);
      tree->pool().ResetStats();
      auto got = tree->SearchBox(q).ValueOrDie();
      accesses += tree->pool().stats().logical_reads;
      std::sort(got.begin(), got.end());
      ASSERT_EQ(got, expect) << "bits=" << bits;
    }
    accesses_by_bits[bits] = accesses;
  }
  // 4 bits must eliminate a large share of the dead-space accesses...
  EXPECT_LT(accesses_by_bits[4], 0.7 * accesses_by_bits[0]);
  // ...and further precision only fine-tunes (plateau within 25%).
  EXPECT_LT(accesses_by_bits[8], 1.25 * accesses_by_bits[4]);
  EXPECT_LT(accesses_by_bits[16], 1.25 * accesses_by_bits[4]);
}

/// Implicit dimensionality reduction (Lemma 1): a constant dimension is
/// never used for splitting anywhere in the tree.
TEST(HybridTreeLemma1, NonDiscriminatingDimensionNeverSplit) {
  Rng rng(997);
  const uint32_t dim = 6;
  Dataset data(dim, 3000);
  for (size_t i = 0; i < data.size(); ++i) {
    auto row = data.MutableRow(i);
    for (uint32_t d = 0; d < dim; ++d) {
      // Dimension 2 carries no information.
      row[d] = d == 2 ? 0.5f : static_cast<float>(rng.NextDouble());
    }
  }
  HybridTreeOptions o;
  o.dim = dim;
  o.page_size = 512;
  MemPagedFile file(o.page_size);
  auto tree = HybridTree::Create(o, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data.Row(i), i).ok());
  }
  // Inspect every index node: dimension 2 must be absent from every
  // intra-node kd-tree. (Data node splits pick the max-extent dimension,
  // which is never the constant one; Lemma 1 extends this to index nodes.)
  // We verify through the public stats API by rebuilding UsedDims via a
  // search-visible proxy: a box query that constrains ONLY dimension 2
  // must touch every data node (no split can prune it).
  TreeStats stats = tree->ComputeStats().ValueOrDie();
  std::vector<float> lo(dim, 0.0f), hi(dim, 1.0f);
  lo[2] = 0.49f;
  hi[2] = 0.51f;
  // Disable ELS pruning for this structural probe by re-creating the tree
  // without ELS: the access count then reflects kd structure only.
  HybridTreeOptions o2 = o;
  o2.els_mode = ElsMode::kOff;
  o2.els_bits = 0;
  MemPagedFile file2(o2.page_size);
  auto tree2 = HybridTree::Create(o2, &file2).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree2->Insert(data.Row(i), i).ok());
  }
  TreeStats stats2 = tree2->ComputeStats().ValueOrDie();
  tree2->pool().ResetStats();
  auto got = tree2->SearchBox(Box::FromBounds(lo, hi)).ValueOrDie();
  EXPECT_EQ(got.size(), data.size());  // every point matches on dim 2
  EXPECT_EQ(tree2->pool().stats().logical_reads,
            stats2.data_nodes + stats2.index_nodes);
  (void)stats;
}

/// The utilization guarantee (Table 1: "node utilization guarantee: yes")
/// holds across dataset shapes and page sizes after pure insertion.
class UtilizationSweep
    : public ::testing::TestWithParam<std::tuple<int, size_t>> {};

TEST_P(UtilizationSweep, DataNodesMeetFloor) {
  const int dataset = std::get<0>(GetParam());
  const size_t page = std::get<1>(GetParam());
  Rng rng(1009 + dataset + page);
  const uint32_t dim = 6;
  Dataset data = dataset == 0 ? GenUniform(2500, dim, rng)
                              : (dataset == 1
                                     ? GenClustered(2500, dim, 4, 0.05, rng)
                                     : GenColhist(2500, dim + 10, rng)
                                           .Prefix(dim));
  // COLHIST prefix rows are not normalized per-dim; renormalize to [0,1].
  data.NormalizeUnitCube();
  HybridTreeOptions o;
  o.dim = dim;
  o.page_size = page;
  MemPagedFile file(page);
  auto tree = HybridTree::Create(o, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data.Row(i), i).ok());
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());
  TreeStats s = tree->ComputeStats().ValueOrDie();
  const double cap = static_cast<double>(tree->data_node_capacity());
  EXPECT_GE(s.min_data_utilization * cap + 1e-6,
            std::floor(o.data_node_min_util * cap));
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndPages, UtilizationSweep,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(size_t{512}, size_t{1024},
                                         size_t{4096})));

}  // namespace
}  // namespace ht
