// Tests for the approximate k-NN knobs (epsilon, leaf-visit budgets) and
// the bound-carrying KnnCursor:
//
//  * Exact-mode identity: default KnnSearchLimits / KnnCursorOptions are
//    byte-identical to the pre-existing exact paths at every SIMD tier.
//  * The (1+epsilon) guarantee against brute force, and monotone recall
//    as epsilon grows.
//  * Exact leaf-visit budget accounting (batch and cursor), including the
//    early_terminated flag semantics.
//  * Sharded approximate search: deterministic under any pool size, and
//    identical to the unsharded bounded search at a fixed per-shard
//    budget.
//  * Sidecar gating: metrics without a code-space bound (QuadraticForm)
//    build no sidecars; cursor scans charge the cursor_* IoStats
//    counters, not the batch ones.
//  * Server recall tiers: tenant defaults apply, per-request overrides
//    win, and the k-NN accounting reaches MetricsSnapshot.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "common/rng.h"
#include "core/bulk_load.h"
#include "core/hybrid_tree.h"
#include "data/generators.h"
#include "data/workload.h"
#include "exec/thread_pool.h"
#include "geometry/kernels/kernels.h"
#include "geometry/metrics.h"
#include "serve/server.h"
#include "serve/sharded_index.h"
#include "storage/paged_file.h"

namespace ht {
namespace {

constexpr uint32_t kDim = 16;
constexpr size_t kPoints = 4000;
constexpr size_t kK = 10;
constexpr size_t kQueries = 20;

std::vector<kernels::SimdTier> SupportedTiers() {
  std::vector<kernels::SimdTier> tiers;
  for (kernels::SimdTier t :
       {kernels::SimdTier::kScalar, kernels::SimdTier::kAvx2,
        kernels::SimdTier::kAvx512}) {
    if (kernels::TierSupported(t)) tiers.push_back(t);
  }
  return tiers;
}

class ScopedTier {
 public:
  explicit ScopedTier(kernels::SimdTier tier) { kernels::ForceTier(tier); }
  ~ScopedTier() { kernels::ClearForcedTier(); }
};

struct Fixture {
  MemPagedFile file{4096};
  std::unique_ptr<HybridTree> tree;
  Dataset data;
  std::vector<std::vector<float>> centers;

  explicit Fixture(bool quant = true) {
    Rng rng(20260809);
    data = GenFourier(kPoints, kDim, rng);
    HybridTreeOptions o;
    o.dim = kDim;
    o.page_size = 4096;
    o.quant_sidecars = quant;
    tree = BulkLoad(o, &file, data, BulkLoadOptions{}).ValueOrDie();
    centers = MakeQueryCenters(data, kQueries, rng);
  }
};

double RecallAtK(const std::vector<std::pair<double, uint64_t>>& got,
                 const std::vector<std::pair<double, uint64_t>>& truth) {
  std::set<uint64_t> want;
  for (const auto& [d, id] : truth) want.insert(id);
  size_t hits = 0;
  for (const auto& [d, id] : got) hits += want.count(id);
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

// --- exact-mode identity ----------------------------------------------------

TEST(KnnApproxExactMode, BoundedSearchIsByteIdenticalAcrossTiers) {
  Fixture f;
  L2Metric l2;
  for (const kernels::SimdTier tier : SupportedTiers()) {
    ScopedTier forced(tier);
    for (const auto& c : f.centers) {
      auto want = f.tree->SearchKnn(c, kK, l2).ValueOrDie();
      SearchScratch scratch;
      std::vector<std::pair<double, uint64_t>> got;
      KnnSearchInfo info;
      ASSERT_TRUE(f.tree
                      ->SearchKnnBoundedInto(c, kK, l2, KnnSearchLimits{},
                                             &scratch, &got, &info)
                      .ok());
      EXPECT_EQ(got, want) << "tier " << kernels::TierName(tier);
      EXPECT_FALSE(info.early_terminated);
      EXPECT_GT(info.leaf_visits, 0u);
    }
  }
}

TEST(KnnApproxExactMode, BoundCarryingCursorIsByteIdenticalAcrossTiers) {
  Fixture f;
  L2Metric l2;
  for (const kernels::SimdTier tier : SupportedTiers()) {
    ScopedTier forced(tier);
    for (const auto& c : f.centers) {
      auto want = f.tree->SearchKnn(c, kK, l2).ValueOrDie();
      // Plain cursor (no options) and bound-carrying cursor (limit = k)
      // must both reproduce the exact stream prefix bit for bit.
      auto plain = f.tree->OpenKnnCursor(c, l2);
      KnnCursorOptions copts;
      copts.limit = kK;
      auto bounded = f.tree->OpenKnnCursor(c, l2, copts);
      for (size_t i = 0; i < want.size(); ++i) {
        auto p = plain.Next().ValueOrDie();
        auto b = bounded.Next().ValueOrDie();
        ASSERT_TRUE(p.has_value() && b.has_value()) << i;
        EXPECT_EQ(*p, want[i]) << "plain, tier " << kernels::TierName(tier);
        EXPECT_EQ(*b, want[i]) << "bounded, tier " << kernels::TierName(tier);
      }
      EXPECT_FALSE(bounded.early_terminated());
    }
  }
}

// --- the (1+epsilon) guarantee ---------------------------------------------

TEST(KnnApproxEpsilon, GuaranteeHoldsAndRecallIsMonotone) {
  Fixture f;
  L2Metric l2;
  const double epsilons[] = {0.0, 0.1, 0.5, 1.0, 2.0};
  std::vector<double> recalls;
  std::vector<uint64_t> visits;
  for (const double epsilon : epsilons) {
    double recall_sum = 0.0;
    uint64_t visit_sum = 0;
    for (const auto& c : f.centers) {
      auto want = BruteForceKnn(f.data, c, kK, l2);
      SearchScratch scratch;
      std::vector<std::pair<double, uint64_t>> got;
      KnnSearchInfo info;
      KnnSearchLimits limits;
      limits.epsilon = epsilon;
      ASSERT_TRUE(f.tree
                      ->SearchKnnBoundedInto(c, kK, l2, limits, &scratch,
                                             &got, &info)
                      .ok());
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_LE(got[i].first, (1.0 + epsilon) * want[i].first + 1e-12)
            << "epsilon " << epsilon << " rank " << i;
      }
      recall_sum += RecallAtK(got, want);
      visit_sum += info.leaf_visits;
    }
    recalls.push_back(recall_sum / kQueries);
    visits.push_back(visit_sum);
  }
  EXPECT_EQ(recalls[0], 1.0);  // epsilon 0 is exact
  for (size_t i = 1; i < recalls.size(); ++i) {
    EXPECT_LE(recalls[i], recalls[i - 1] + 1e-12)
        << "recall must not increase with epsilon";
    EXPECT_LE(visits[i], visits[i - 1]) << "work must not grow with epsilon";
  }
}

TEST(KnnApproxEpsilon, CursorHonorsTheGuarantee) {
  Fixture f;
  L2Metric l2;
  const double epsilon = 0.5;
  for (const auto& c : f.centers) {
    auto want = BruteForceKnn(f.data, c, kK, l2);
    KnnCursorOptions copts;
    copts.limit = kK;
    copts.epsilon = epsilon;
    auto cursor = f.tree->OpenKnnCursor(c, l2, copts);
    double prev = -1.0;
    for (size_t i = 0; i < kK; ++i) {
      auto next = cursor.Next().ValueOrDie();
      ASSERT_TRUE(next.has_value()) << i;
      EXPECT_GE(next->first, prev);  // still ascending
      prev = next->first;
      EXPECT_LE(next->first, (1.0 + epsilon) * want[i].first + 1e-12) << i;
    }
  }
}

// --- leaf-visit budgets -----------------------------------------------------

TEST(KnnApproxBudget, BatchAccountingIsExact) {
  Fixture f;
  L2Metric l2;
  for (const auto& c : f.centers) {
    auto want = f.tree->SearchKnn(c, kK, l2).ValueOrDie();
    SearchScratch scratch;
    std::vector<std::pair<double, uint64_t>> got;
    KnnSearchInfo info;
    ASSERT_TRUE(f.tree
                    ->SearchKnnBoundedInto(c, kK, l2, KnnSearchLimits{},
                                           &scratch, &got, &info)
                    .ok());
    const uint64_t natural = info.leaf_visits;
    ASSERT_GT(natural, 2u);

    // A budget below the natural visit count is consumed exactly and
    // reported as an early termination.
    for (const uint64_t budget : {uint64_t{1}, natural / 2, natural - 1}) {
      KnnSearchLimits limits;
      limits.max_leaf_visits = budget;
      ASSERT_TRUE(f.tree
                      ->SearchKnnBoundedInto(c, kK, l2, limits, &scratch,
                                             &got, &info)
                      .ok());
      EXPECT_EQ(info.leaf_visits, budget);
      EXPECT_TRUE(info.early_terminated) << "budget " << budget;
      EXPECT_EQ(got.size(), want.size());
    }

    // A budget at or above the natural count changes nothing.
    for (const uint64_t budget : {natural, natural + 100}) {
      KnnSearchLimits limits;
      limits.max_leaf_visits = budget;
      ASSERT_TRUE(f.tree
                      ->SearchKnnBoundedInto(c, kK, l2, limits, &scratch,
                                             &got, &info)
                      .ok());
      EXPECT_EQ(info.leaf_visits, natural);
      EXPECT_FALSE(info.early_terminated) << "budget " << budget;
      EXPECT_EQ(got, want);
    }
  }
}

TEST(KnnApproxBudget, CursorConsumesItsBudgetThenDrainsMaterialized) {
  Fixture f;
  L2Metric l2;
  const size_t budget = 3;
  KnnCursorOptions copts;
  copts.limit = kK;
  copts.max_leaf_visits = budget;
  auto cursor = f.tree->OpenKnnCursor(f.centers[0], l2, copts);
  double prev = -1.0;
  size_t yielded = 0;
  for (;;) {
    auto next = cursor.Next().ValueOrDie();
    if (!next.has_value()) break;
    EXPECT_GE(next->first, prev);
    prev = next->first;
    ++yielded;
  }
  EXPECT_EQ(cursor.leaf_visits(), budget);
  EXPECT_TRUE(cursor.early_terminated());
  EXPECT_GT(yielded, 0u);
}

// --- sharded approximate search --------------------------------------------

TEST(KnnApproxSharded, MatchesUnshardedAtFixedPerShardBudget) {
  Fixture f;
  L2Metric l2;
  const size_t budget = 6;
  ShardedIndexOptions so;
  so.shards = 1;  // one shard: the per-shard budget IS the budget
  auto index = ShardedIndex::Build(
                   HybridTreeOptions{.dim = kDim, .page_size = 4096}, so,
                   f.data, nullptr)
                   .ValueOrDie();
  ExecOptions exec;
  exec.knn_max_leaf_visits = budget;
  for (const auto& c : f.centers) {
    SearchScratch scratch;
    std::vector<std::pair<double, uint64_t>> want;
    KnnSearchLimits limits;
    limits.max_leaf_visits = budget;
    ASSERT_TRUE(
        f.tree->SearchKnnBoundedInto(c, kK, l2, limits, &scratch, &want)
            .ok());
    std::sort(want.begin(), want.end());
    std::vector<std::pair<double, uint64_t>> got;
    ASSERT_TRUE(index->SearchKnn(c, kK, l2, exec, &got).ok());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want);
  }
}

TEST(KnnApproxSharded, BudgetedResultsAreDeterministicAcrossPools) {
  Fixture f;
  L2Metric l2;
  ShardedIndexOptions so;
  so.shards = 3;
  auto index = ShardedIndex::Build(
                   HybridTreeOptions{.dim = kDim, .page_size = 4096}, so,
                   f.data, nullptr)
                   .ValueOrDie();
  ExecOptions exec;
  exec.knn_max_leaf_visits = 9;  // ceil(9/3) = 3 leaves per shard
  exec.knn_epsilon = 0.25;
  KnnExecStats stats;
  exec.knn_stats = &stats;

  // Reference run: inline scatter (no pool).
  std::vector<std::vector<std::pair<double, uint64_t>>> ref;
  for (const auto& c : f.centers) {
    std::vector<std::pair<double, uint64_t>> got;
    ASSERT_TRUE(index->SearchKnn(c, kK, l2, exec, &got).ok());
    ref.push_back(std::move(got));
  }
  EXPECT_GT(stats.leaf_visits, 0u);
  EXPECT_LE(stats.leaf_visits, uint64_t{3} * 3 * kQueries);
  EXPECT_GT(stats.early_terminations, 0u);

  // Budgeted + epsilon results must not depend on scatter interleaving:
  // every pool size, twice each, yields the identical answer.
  for (const size_t threads : {size_t{1}, size_t{3}, size_t{8}}) {
    ThreadPool pool(threads);
    index->set_pool(&pool);
    for (int round = 0; round < 2; ++round) {
      for (size_t i = 0; i < f.centers.size(); ++i) {
        std::vector<std::pair<double, uint64_t>> got;
        ASSERT_TRUE(index->SearchKnn(f.centers[i], kK, l2, exec, &got).ok());
        EXPECT_EQ(got, ref[i])
            << threads << " threads, round " << round << ", query " << i;
      }
    }
    index->set_pool(nullptr);
  }
}

// --- sidecar gating and cursor I/O accounting -------------------------------

TEST(KnnApproxSidecars, MetricsWithoutCodeBoundsBuildNoSidecars) {
  if (kernels::BestSupportedTier() == kernels::SimdTier::kScalar) {
    GTEST_SKIP() << "quant filter disabled at scalar tier";
  }
  Fixture f(/*quant=*/true);
  std::vector<double> eye(kDim * kDim, 0.0);
  for (uint32_t d = 0; d < kDim; ++d) eye[d * kDim + d] = 1.0;
  QuadraticFormMetric qf(kDim, std::move(eye));
  ASSERT_FALSE(qf.SupportsCodeFilter());
  (void)f.tree->SearchKnn(f.centers[0], kK, qf).ValueOrDie();
  // The capability check short-circuits BEFORE QuantStore::GetOrBuild, so
  // a quadratic-form-only workload caches no useless sidecar pages.
  EXPECT_EQ(f.tree->CachedQuantPages(), 0u);

  L2Metric l2;
  ASSERT_TRUE(l2.SupportsCodeFilter());
  (void)f.tree->SearchKnn(f.centers[0], kK, l2).ValueOrDie();
  EXPECT_GT(f.tree->CachedQuantPages(), 0u);
}

TEST(KnnApproxSidecars, CursorScansChargeCursorCounters) {
  if (kernels::BestSupportedTier() == kernels::SimdTier::kScalar) {
    GTEST_SKIP() << "quant filter disabled at scalar tier";
  }
  Fixture f(/*quant=*/true);
  L2Metric l2;
  f.tree->pool().ResetStats();

  // Drain well past k so the self-bound engages (it is +inf until `limit`
  // entries have been enqueued).
  KnnCursorOptions copts;
  copts.limit = kK;
  for (const auto& c : f.centers) {
    auto cursor = f.tree->OpenKnnCursor(c, l2, copts);
    for (size_t i = 0; i < kK; ++i) {
      ASSERT_TRUE(cursor.Next().ValueOrDie().has_value());
    }
  }
  const IoStats after_cursor = f.tree->pool().stats();
  EXPECT_GT(after_cursor.cursor_scan_points, 0u);
  EXPECT_GT(after_cursor.cursor_quant_pruned, 0u);
  EXPECT_GT(after_cursor.QuantPruneRate(), 0.0);
  // Cursor scans charge the cursor_* duals, never the batch counters.
  EXPECT_EQ(after_cursor.scan_points, 0u);
  EXPECT_EQ(after_cursor.quant_pruned, 0u);

  // A batch k-NN over the same tree lands in the batch counters, so the
  // two paths stay distinguishable in one IoStats.
  (void)f.tree->SearchKnn(f.centers[0], kK, l2).ValueOrDie();
  const IoStats after_batch = f.tree->pool().stats();
  EXPECT_GT(after_batch.scan_points, 0u);
  EXPECT_EQ(after_batch.cursor_scan_points, after_cursor.cursor_scan_points);
}

// --- server recall tiers ----------------------------------------------------

TEST(KnnApproxServer, TenantTiersOverridesAndMetrics) {
  Rng rng(20260809);
  Dataset data = GenFourier(kPoints, kDim, rng);
  auto centers = MakeQueryCenters(data, kQueries, rng);
  L2Metric l2;
  ShardedIndexOptions so;
  so.shards = 2;
  auto index = ShardedIndex::Build(
                   HybridTreeOptions{.dim = kDim, .page_size = 4096}, so,
                   data, nullptr)
                   .ValueOrDie();
  Server server(index.get());

  // "fast" runs a budgeted approximate tier; "exact" is unconfigured.
  TenantQuota fast;
  fast.knn_epsilon = 0.5;
  fast.knn_max_leaf_visits = 4;
  server.SetQuota("fast", fast);

  std::vector<std::vector<std::pair<double, uint64_t>>> exact_ref;
  for (const auto& c : centers) {
    Request r;
    r.tenant = "exact";
    r.query = Query::MakeKnn(c, kK);
    r.metric = &l2;
    QueryResult res = server.Execute(r);
    ASSERT_TRUE(res.status.ok());
    exact_ref.push_back(std::move(res.neighbors));
  }
  for (const auto& c : centers) {
    Request r;
    r.tenant = "fast";
    r.query = Query::MakeKnn(c, kK);
    r.metric = &l2;
    QueryResult res = server.Execute(r);
    ASSERT_TRUE(res.status.ok());
    EXPECT_EQ(res.neighbors.size(), kK);
  }
  // Snapshot before the override phase: the budgeted tenant has done
  // strictly less k-NN work per query than the exact one so far.
  {
    MetricsSnapshot mid = server.Snapshot();
    ASSERT_EQ(mid.tenants.size(), 2u);
    const TenantMetrics& fast_mid =
        mid.tenants[0].tenant == "fast" ? mid.tenants[0] : mid.tenants[1];
    const TenantMetrics& exact_mid =
        mid.tenants[0].tenant == "exact" ? mid.tenants[0] : mid.tenants[1];
    EXPECT_GT(fast_mid.knn_leaf_visits, 0u);
    EXPECT_LT(fast_mid.knn_leaf_visits, exact_mid.knn_leaf_visits);
  }

  // A per-request override restores exact results on the fast tenant.
  for (size_t i = 0; i < centers.size(); ++i) {
    Request r;
    r.tenant = "fast";
    r.query = Query::MakeKnn(centers[i], kK);
    r.metric = &l2;
    r.has_recall_override = true;  // epsilon 0, unlimited visits
    QueryResult res = server.Execute(r);
    ASSERT_TRUE(res.status.ok());
    EXPECT_EQ(res.neighbors, exact_ref[i]) << "override, query " << i;
  }

  MetricsSnapshot snap = server.Snapshot();
  ASSERT_EQ(snap.tenants.size(), 2u);
  const TenantMetrics& fast_m =
      snap.tenants[0].tenant == "fast" ? snap.tenants[0] : snap.tenants[1];
  const TenantMetrics& exact_m =
      snap.tenants[0].tenant == "exact" ? snap.tenants[0] : snap.tenants[1];
  EXPECT_GT(exact_m.knn_leaf_visits, 0u);
  EXPECT_EQ(exact_m.knn_early_terminations, 0u);
  EXPECT_GT(fast_m.knn_leaf_visits, 0u);
  EXPECT_GT(fast_m.knn_early_terminations, 0u);
  // Override requests ran exact: they added no early terminations.
  EXPECT_LE(fast_m.knn_early_terminations, uint64_t{2} * kQueries);
  if (kernels::BestSupportedTier() != kernels::SimdTier::kScalar) {
    EXPECT_GT(fast_m.quant_prune_rate, 0.0);
  }

  server.ResetMetrics();
  snap = server.Snapshot();
  for (const TenantMetrics& t : snap.tenants) {
    EXPECT_EQ(t.knn_leaf_visits, 0u);
    EXPECT_EQ(t.knn_early_terminations, 0u);
  }
}

}  // namespace
}  // namespace ht
