// TreeValidator: the deep invariant checker must accept healthy trees in
// every ELS mode and through every mutation pattern, reject semantic
// page corruptions that Deserialize alone cannot see, and account for
// buffer-pool pins.

#include "core/validator.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "core/hybrid_tree.h"
#include "data/generators.h"

namespace ht {
namespace {

constexpr size_t kPageSize = 1024;

std::unique_ptr<HybridTree> BuildTree(MemPagedFile* file, const Dataset& data,
                                      ElsMode mode) {
  HybridTreeOptions o;
  o.dim = data.dim();
  o.page_size = kPageSize;
  o.els_mode = mode;
  auto tree = HybridTree::Create(o, file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    HT_CHECK_OK(tree->Insert(data.Row(i), i));
  }
  return tree;
}

Dataset SomeData() {
  Rng rng(4242);
  return GenUniform(1500, 4, rng);
}

TEST(ValidatorTest, CleanTreePassesInEveryElsMode) {
  for (ElsMode mode : {ElsMode::kOff, ElsMode::kInPage, ElsMode::kInMemory}) {
    MemPagedFile file(kPageSize);
    Dataset data = SomeData();
    auto tree = BuildTree(&file, data, mode);
    TreeValidator v(tree.get());
    EXPECT_TRUE(v.Validate().ok()) << "mode " << static_cast<int>(mode);
  }
}

TEST(ValidatorTest, PassesAfterDeletionsAndRebuild) {
  MemPagedFile file(kPageSize);
  Dataset data = SomeData();
  auto tree = BuildTree(&file, data, ElsMode::kInMemory);
  // Deletions exercise eliminate-and-reinsert and kd-leaf removal.
  for (size_t i = 0; i < data.size(); i += 3) {
    HT_CHECK_OK(tree->Delete(data.Row(i), i));
    if (i % 300 == 0) {
      EXPECT_TRUE(tree->CheckInvariants().ok());
    }
  }
  EXPECT_TRUE(tree->CheckInvariants().ok());
  HT_CHECK_OK(tree->RebuildEls());
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

TEST(ValidatorTest, PassesAfterPersistenceRoundTrip) {
  MemPagedFile file(kPageSize);
  Dataset data = SomeData();
  {
    auto tree = BuildTree(&file, data, ElsMode::kInPage);
    HT_CHECK_OK(tree->Flush());
  }
  auto tree = HybridTree::Open(&file).ValueOrDie();
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

// --- seeded corruption: semantic damage Deserialize cannot reject -------

struct CorruptFixture {
  MemPagedFile file{kPageSize};
  Dataset data = SomeData();
  std::unique_ptr<HybridTree> tree;

  CorruptFixture() {
    tree = BuildTree(&file, data, ElsMode::kInPage);
    HT_CHECK_OK(tree->Flush());
  }

  /// First page (≠ meta, ≠ skip) whose kind byte matches, searching the
  /// flushed backing file directly.
  PageId FindPage(NodeKind kind, PageId skip = kInvalidPageId) {
    for (PageId id = 1; id < file.page_count(); ++id) {
      if (id == skip) continue;
      Page p(kPageSize);
      HT_CHECK_OK(file.Read(id, &p));
      if (PeekNodeKind(p.data()) == kind) return id;
    }
    return kInvalidPageId;
  }

  void Patch(PageId id, size_t offset, std::span<const uint8_t> bytes) {
    Page p(kPageSize);
    HT_CHECK_OK(file.Read(id, &p));
    std::memcpy(p.data() + offset, bytes.data(), bytes.size());
    HT_CHECK_OK(file.Write(id, p));
  }

  void PatchF32(PageId id, size_t offset, float v) {
    uint8_t b[4];
    std::memcpy(b, &v, sizeof(v));  // little-endian hosts (the fast path)
    Patch(id, offset, b);
  }

  /// Reopens from the (corrupted) backing file so no cached parse or
  /// buffer-pool frame hides the damage.
  Status ReopenAndValidate() {
    auto reopened = HybridTree::Open(&file);
    if (!reopened.ok()) return reopened.status();
    return reopened.ValueOrDie()->CheckInvariants();
  }
};

TEST(ValidatorTest, DetectsEntryMovedOutsideItsRegion) {
  CorruptFixture f;
  const PageId page = f.FindPage(NodeKind::kData);
  ASSERT_NE(page, kInvalidPageId);
  // Data page layout: 4-byte header, then id u64 + dim * f32 per entry;
  // entry 0's first coordinate lives at offset 12. 100.0 is far outside
  // the unit cube, so some enclosing kd or live region must exclude it.
  f.PatchF32(page, 12, 100.0f);
  Status s = f.ReopenAndValidate();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(ValidatorTest, DetectsNonFiniteCoordinate) {
  CorruptFixture f;
  const PageId page = f.FindPage(NodeKind::kData);
  ASSERT_NE(page, kInvalidPageId);
  f.PatchF32(page, 12, std::numeric_limits<float>::quiet_NaN());
  Status s = f.ReopenAndValidate();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(ValidatorTest, DetectsWrongEntryCount) {
  CorruptFixture f;
  const PageId page = f.FindPage(NodeKind::kData);
  ASSERT_NE(page, kInvalidPageId);
  // The count field (u16 at offset 2) claims one entry fewer: the tree-wide
  // entry tally no longer matches size() even though the page itself
  // deserializes fine.
  Page p(kPageSize);
  HT_CHECK_OK(f.file.Read(page, &p));
  uint16_t count;
  std::memcpy(&count, p.data() + 2, 2);
  ASSERT_GT(count, 0);
  --count;
  const uint8_t b[2] = {static_cast<uint8_t>(count & 0xff),
                        static_cast<uint8_t>(count >> 8)};
  f.Patch(page, 2, b);
  Status s = f.ReopenAndValidate();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

// --- option groups and pin accounting ------------------------------------

TEST(ValidatorTest, PinLeakFailsValidationUntilReleased) {
  MemPagedFile file(kPageSize);
  Dataset data = SomeData();
  auto tree = BuildTree(&file, data, ElsMode::kInMemory);
  tree->pool().SetPinTracking(true);

  {
    PageHandle h = tree->pool().Fetch(tree->root_page()).ValueOrDie();
    Status s = tree->CheckInvariants();
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.message().find("pin"), std::string::npos) << s.ToString();

    // The structural walk itself is still clean: pins off, rest on.
    ValidateOptions opts;
    opts.pins = false;
    TreeValidator no_pins(tree.get(), opts);
    EXPECT_TRUE(no_pins.Validate().ok());
  }
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

TEST(ValidatorTest, DisabledGroupsSkipTheirChecks) {
  CorruptFixture f;
  const PageId page = f.FindPage(NodeKind::kData);
  ASSERT_NE(page, kInvalidPageId);
  f.PatchF32(page, 12, 100.0f);
  auto reopened = HybridTree::Open(&f.file).ValueOrDie();

  // Containment violations are reported by the structure/els groups;
  // with both off (plus occupancy's count tally), the pass goes quiet.
  ValidateOptions opts;
  opts.structure = false;
  opts.els = false;
  TreeValidator v(reopened.get(), opts);
  EXPECT_TRUE(v.Validate().ok());

  TreeValidator strict(reopened.get());
  EXPECT_FALSE(strict.Validate().ok());
}

}  // namespace
}  // namespace ht
