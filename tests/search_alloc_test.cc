// Zero-allocation guarantee for the steady-state query hot path.
//
// Replaces global operator new/delete with counting versions, warms the
// tree's caches and a caller-owned SearchScratch with one pass of queries,
// then asserts that re-running the same queries through the *Into APIs
// performs zero heap allocations: all traversal state lives in the scratch
// and the caller's output vectors, the buffer pool is warm, the node cache
// hits, and Status OK / batch kernels never allocate.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.h"
#include "core/hybrid_tree.h"
#include "data/generators.h"
#include "geometry/metrics.h"

namespace {
std::atomic<size_t> g_allocations{0};
}  // namespace

// GCC flags free() inside a replaced operator delete as a mismatched
// pair under some inlining decisions (notably -fsanitize=undefined); the
// replacement new allocates with malloc, so the pairing is correct.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace ht {
namespace {

TEST(SearchAllocTest, SteadyStateQueriesDoNotAllocate) {
  const uint32_t dim = 16;
  Rng rng(808);
  Dataset data = GenFourier(5000, dim, rng);

  HybridTreeOptions o;
  o.dim = dim;
  o.page_size = 4096;
  MemPagedFile file(o.page_size);
  auto tree = HybridTree::Create(o, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data.Row(i), i).ok());
  }

  // Fixed query set, reused verbatim in the measured pass so the warmed
  // buffer capacities provably suffice.
  constexpr int kQueries = 8;
  std::vector<std::vector<float>> centers(kQueries);
  std::vector<Box> boxes;
  for (int q = 0; q < kQueries; ++q) {
    std::vector<float> lo(dim), hi(dim);
    centers[q].resize(dim);
    for (uint32_t d = 0; d < dim; ++d) {
      centers[q][d] = static_cast<float>(rng.NextDouble());
      lo[d] = centers[q][d] - 0.15f;
      hi[d] = centers[q][d] + 0.15f;
    }
    boxes.push_back(Box::FromBounds(lo, hi));
  }

  L2Metric l2;
  SearchScratch scratch;
  std::vector<uint64_t> ids;
  std::vector<std::pair<double, uint64_t>> neighbors;

  auto run_all = [&]() {
    for (int q = 0; q < kQueries; ++q) {
      ASSERT_TRUE(tree->SearchBoxInto(boxes[q], &scratch, &ids).ok());
      ASSERT_TRUE(
          tree->SearchRangeInto(centers[q], 0.8, l2, &scratch, &ids).ok());
      ASSERT_TRUE(
          tree->SearchKnnInto(centers[q], 20, l2, &scratch, &neighbors).ok());
      ASSERT_FALSE(neighbors.empty());
    }
  };

  // Warm-up: populates the buffer pool, the parsed-node cache, the
  // scratch buffers and the output vectors.
  run_all();
  run_all();

  const size_t before = g_allocations.load(std::memory_order_relaxed);
  run_all();
  const size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations in the steady-state loop";
}

}  // namespace
}  // namespace ht
