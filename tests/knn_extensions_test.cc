// Tests for the k-NN extensions: the incremental cursor (distance
// browsing) and (1+epsilon)-approximate search (the paper's future work).

#include <gtest/gtest.h>

#include <set>

#include "core/hybrid_tree.h"
#include "data/generators.h"
#include "data/workload.h"

namespace ht {
namespace {

struct Fixture {
  MemPagedFile file{1024};
  std::unique_ptr<HybridTree> tree;
  Dataset data;

  explicit Fixture(size_t n = 3000, uint32_t dim = 6) {
    Rng rng(1701);
    data = GenClustered(n, dim, 5, 0.07, rng);
    HybridTreeOptions o;
    o.dim = dim;
    o.page_size = 1024;
    tree = HybridTree::Create(o, &file).ValueOrDie();
    for (size_t i = 0; i < data.size(); ++i) {
      HT_CHECK_OK(tree->Insert(data.Row(i), i));
    }
  }
};

TEST(KnnCursorTest, YieldsAscendingExactDistances) {
  Fixture f;
  L2Metric l2;
  auto cursor = f.tree->OpenKnnCursor(f.data.Row(0), l2);
  auto want = BruteForceKnn(f.data, f.data.Row(0), 50, l2);
  double prev = -1.0;
  for (size_t i = 0; i < 50; ++i) {
    auto next = cursor.Next().ValueOrDie();
    ASSERT_TRUE(next.has_value()) << i;
    EXPECT_GE(next->first, prev);
    EXPECT_NEAR(next->first, want[i].first, 1e-9) << i;
    prev = next->first;
  }
}

TEST(KnnCursorTest, DrainsTheWholeTree) {
  Fixture f(800, 3);
  L1Metric l1;
  auto cursor = f.tree->OpenKnnCursor(f.data.Row(5), l1);
  std::set<uint64_t> seen;
  double prev = -1.0;
  for (;;) {
    auto next = cursor.Next().ValueOrDie();
    if (!next.has_value()) break;
    EXPECT_GE(next->first, prev);
    prev = next->first;
    EXPECT_TRUE(seen.insert(next->second).second) << "duplicate id";
  }
  EXPECT_EQ(seen.size(), f.data.size());
}

TEST(KnnCursorTest, EmptyTree) {
  MemPagedFile file(1024);
  HybridTreeOptions o;
  o.dim = 2;
  o.page_size = 1024;
  auto tree = HybridTree::Create(o, &file).ValueOrDie();
  L2Metric l2;
  auto cursor = tree->OpenKnnCursor(std::vector<float>{0.5f, 0.5f}, l2);
  EXPECT_FALSE(cursor.Next().ValueOrDie().has_value());
}

TEST(KnnCursorTest, LazyFetchingReadsFewerPagesForFewResults) {
  Fixture f;
  L2Metric l2;
  f.tree->pool().ResetStats();
  auto cursor = f.tree->OpenKnnCursor(f.data.Row(0), l2);
  for (int i = 0; i < 3; ++i) (void)cursor.Next().ValueOrDie();
  const uint64_t few = f.tree->pool().stats().logical_reads;
  TreeStats s = f.tree->ComputeStats().ValueOrDie();
  EXPECT_LT(few, (s.data_nodes + s.index_nodes) / 2);
}

TEST(ApproxKnnTest, EpsilonZeroIsExact) {
  Fixture f;
  L2Metric l2;
  for (int q = 0; q < 10; ++q) {
    auto exact = f.tree->SearchKnn(f.data.Row(q), 10, l2).ValueOrDie();
    auto approx =
        f.tree->SearchKnnApprox(f.data.Row(q), 10, l2, 0.0).ValueOrDie();
    ASSERT_EQ(exact.size(), approx.size());
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_DOUBLE_EQ(exact[i].first, approx[i].first);
    }
  }
}

TEST(ApproxKnnTest, GuaranteeHoldsAndAccessesDrop) {
  Fixture f(6000, 8);
  L2Metric l2;
  Rng rng(1702);
  auto centers = MakeQueryCenters(f.data, 30, rng);
  const double epsilon = 0.5;
  uint64_t exact_reads = 0, approx_reads = 0;
  for (const auto& c : centers) {
    auto want = BruteForceKnn(f.data, c, 10, l2);
    f.tree->pool().ResetStats();
    auto exact = f.tree->SearchKnn(c, 10, l2).ValueOrDie();
    exact_reads += f.tree->pool().stats().logical_reads;
    f.tree->pool().ResetStats();
    auto approx = f.tree->SearchKnnApprox(c, 10, l2, epsilon).ValueOrDie();
    approx_reads += f.tree->pool().stats().logical_reads;
    ASSERT_EQ(approx.size(), want.size());
    // (1+eps) guarantee: the i-th reported distance is within (1+eps) of
    // the true i-th distance.
    for (size_t i = 0; i < approx.size(); ++i) {
      ASSERT_LE(approx[i].first, (1.0 + epsilon) * want[i].first + 1e-12);
    }
  }
  EXPECT_LT(approx_reads, exact_reads);
}

TEST(ApproxKnnTest, RejectsNegativeEpsilon) {
  Fixture f(100, 3);
  L2Metric l2;
  EXPECT_TRUE(f.tree->SearchKnnApprox(f.data.Row(0), 3, l2, -0.1)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace ht
